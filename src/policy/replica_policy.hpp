// Replica-selection baselines from §6.2 of the paper.
//
//  * Nearest — static network-distance selection (what topology-aware
//    HDFS/GFS do); ties broken uniformly at random, which in large
//    deployments makes it effectively random selection (§1).
//  * HDFS rack-aware — same-host, then same-rack, then uniform random; the
//    configuration used for the prototype comparison (§6.7).
//  * Sinbad-R — the paper's read-variant of Sinbad: picks the replica whose
//    core-facing uplinks have the most estimated headroom, estimating
//    higher-tier utilization from end-host NIC counters + topology (Sinbad's
//    own approach), with the search restricted to the client's pod when the
//    client shares a pod with any replica.
//  * Random — control.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/tree.hpp"
#include "sdn/fabric.hpp"
#include "sdn/stats_poller.hpp"

namespace mayflower::policy {

class ReplicaPolicy {
 public:
  virtual ~ReplicaPolicy() = default;

  // Picks one of `replicas` (non-empty) for `client` to read from.
  virtual net::NodeId choose(net::NodeId client,
                             const std::vector<net::NodeId>& replicas) = 0;

  virtual const char* name() const = 0;
};

class RandomReplica final : public ReplicaPolicy {
 public:
  explicit RandomReplica(Rng& rng) : rng_(&rng) {}
  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas) override;
  const char* name() const override { return "random"; }

 private:
  Rng* rng_;
};

class NearestReplica final : public ReplicaPolicy {
 public:
  NearestReplica(const net::Topology& topo, Rng& rng)
      : topo_(&topo), rng_(&rng) {}
  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas) override;
  const char* name() const override { return "nearest"; }

 private:
  const net::Topology* topo_;
  Rng* rng_;
};

class HdfsRackAwareReplica final : public ReplicaPolicy {
 public:
  HdfsRackAwareReplica(const net::Topology& topo, Rng& rng)
      : topo_(&topo), rng_(&rng) {}
  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas) override;
  const char* name() const override { return "hdfs-rack-aware"; }

 private:
  const net::Topology* topo_;
  Rng* rng_;
};

// Sinbad-R. Periodically samples every host's uplink byte counter (end-host
// NIC telemetry) and derives per-tier utilization estimates.
class SinbadRReplica final : public ReplicaPolicy {
 public:
  SinbadRReplica(const net::ThreeTier& tree, sdn::SdnFabric& fabric, Rng& rng,
                 sim::SimTime poll_interval = sim::SimTime::from_seconds(1.0));

  void start() { poller_.start(); }
  void stop() { poller_.stop(); }

  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas) override;
  const char* name() const override { return "sinbad-r"; }

  // Estimated *available* bytes/s on replica's core-facing bottleneck given
  // the client location (exposed for tests).
  double headroom(net::NodeId replica, net::NodeId client) const;

 private:
  void sample();

  const net::ThreeTier* tree_;
  sdn::SdnFabric* fabric_;
  Rng* rng_;
  sdn::StatsPoller poller_;
  // Measured tx rate of each host's uplink, bytes/s (indexed by host order
  // within tree_->hosts).
  std::vector<double> host_tx_rate_;
  std::vector<double> last_bytes_;
  sim::SimTime last_sample_;
};

}  // namespace mayflower::policy
