// Replica-selection baselines from §6.2 of the paper.
//
//  * Nearest — static network-distance selection (what topology-aware
//    HDFS/GFS do); ties broken uniformly at random, which in large
//    deployments makes it effectively random selection (§1).
//  * HDFS rack-aware — same-host, then same-rack, then uniform random; the
//    configuration used for the prototype comparison (§6.7).
//  * Sinbad-R — the paper's read-variant of Sinbad: picks the replica whose
//    core-facing uplinks have the most estimated headroom, estimating
//    higher-tier utilization from end-host NIC counters + topology (Sinbad's
//    own approach), with the search restricted to the client's pod when the
//    client shares a pod with any replica.
//  * Random — control.
//
// Every policy decides against a NetworkView: the static policies only need
// it for interface uniformity, while Sinbad-R reads the per-uplink tx rates
// a LinkRateMonitor published into the snapshot. Policies hold no telemetry
// of their own — the same view that drives path selection drives replica
// selection, so one decision batch sees one consistent network.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/network_view.hpp"
#include "net/tree.hpp"

namespace mayflower::policy {

class ReplicaPolicy {
 public:
  virtual ~ReplicaPolicy() = default;

  // Picks one of `replicas` (non-empty) for `client` to read from, using
  // `view` as the sole source of network state.
  virtual net::NodeId choose(net::NodeId client,
                             const std::vector<net::NodeId>& replicas,
                             const net::NetworkView& view) = 0;

  virtual const char* name() const = 0;
};

class RandomReplica final : public ReplicaPolicy {
 public:
  explicit RandomReplica(Rng& rng) : rng_(&rng) {}
  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas,
                     const net::NetworkView& view) override;
  const char* name() const override { return "random"; }

 private:
  Rng* rng_;
};

class NearestReplica final : public ReplicaPolicy {
 public:
  NearestReplica(const net::Topology& topo, Rng& rng)
      : topo_(&topo), rng_(&rng) {}
  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas,
                     const net::NetworkView& view) override;
  const char* name() const override { return "nearest"; }

 private:
  const net::Topology* topo_;
  Rng* rng_;
};

class HdfsRackAwareReplica final : public ReplicaPolicy {
 public:
  HdfsRackAwareReplica(const net::Topology& topo, Rng& rng)
      : topo_(&topo), rng_(&rng) {}
  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas,
                     const net::NetworkView& view) override;
  const char* name() const override { return "hdfs-rack-aware"; }

 private:
  const net::Topology* topo_;
  Rng* rng_;
};

// Sinbad-R. Stateless over the view: per-tier utilization estimates derive
// from the host-uplink tx rates the snapshot carries (a LinkRateMonitor
// polls the NIC counters and publishes into every rebuilt view).
class SinbadRReplica final : public ReplicaPolicy {
 public:
  SinbadRReplica(const net::ThreeTier& tree, Rng& rng)
      : tree_(&tree), rng_(&rng) {}

  net::NodeId choose(net::NodeId client,
                     const std::vector<net::NodeId>& replicas,
                     const net::NetworkView& view) override;
  const char* name() const override { return "sinbad-r"; }

  // Estimated *available* bytes/s on replica's core-facing bottleneck given
  // the client location (exposed for tests).
  double headroom(net::NodeId replica, net::NodeId client,
                  const net::NetworkView& view) const;

 private:
  double host_tx_rate(std::size_t host_idx,
                      const net::NetworkView& view) const;

  const net::ThreeTier* tree_;
  Rng* rng_;
};

}  // namespace mayflower::policy
