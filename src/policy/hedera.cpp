#include "policy/hedera.hpp"

#include <algorithm>

namespace mayflower::policy {

HederaScheduler::HederaScheduler(sdn::SdnFabric& fabric, HederaConfig config)
    : fabric_(&fabric),
      config_(config),
      paths_(fabric.topology()),
      views_(fabric),
      poller_(fabric.events(), config.tick, [this] { tick(); }) {
  views_.set_include_flow_stats(true);
  last_tick_ = fabric.events().now();
}

void HederaScheduler::track(sdn::Cookie cookie, net::NodeId src,
                            net::NodeId dst, double bytes) {
  Tracked t;
  t.src = src;
  t.dst = dst;
  t.bytes = bytes;
  t.window_start = fabric_->events().now();
  tracked_.emplace(cookie, t);
}

void HederaScheduler::untrack(sdn::Cookie cookie) { tracked_.erase(cookie); }

void HederaScheduler::tick() {
  const sim::SimTime now = fabric_->events().now();
  const double dt = (now - last_tick_).seconds();
  last_tick_ = now;
  if (dt <= 0.0) return;

  // One telemetry snapshot per round: byte counters advance continuously
  // and carry no epoch, so force the rebuild by hand. Every read below —
  // rates, current paths, liveness of candidates — comes from this view;
  // reroutes issued during the round are path installs, which don't touch
  // the telemetry the round is judging.
  views_.invalidate();
  const net::NetworkView& view = views_.view();

  // Refresh measured rates from the flow byte counters; drop finished flows.
  // Each flow's byte delta is divided by ITS observation window (tracking
  // time or last measurement, whichever is later) — a flow tracked
  // mid-interval has only run for part of the tick, and smearing its bytes
  // over the full dt underestimated fresh flows and delayed their elephant
  // detection by up to one extra tick.
  std::vector<sdn::Cookie> gone;
  for (auto& [cookie, t] : tracked_) {
    const net::NetworkView::FlowStats* rec = view.flow_stats(cookie);
    if (rec == nullptr) {
      gone.push_back(cookie);
      continue;
    }
    const double window = (now - t.window_start).seconds();
    if (window <= 0.0) continue;  // tracked this very instant: nothing ran yet
    t.measured_rate = (rec->bytes_sent - t.last_poll_bytes) / window;
    t.last_poll_bytes = rec->bytes_sent;
    t.window_start = now;
  }
  for (const sdn::Cookie cookie : gone) tracked_.erase(cookie);

  // Controller-side reservations: each tracked flow reserves its measured
  // rate on every link of its current path.
  const net::Topology& topo = fabric_->topology();
  std::vector<double> reserved(topo.link_count(), 0.0);
  for (const auto& [cookie, t] : tracked_) {
    const net::NetworkView::FlowStats* rec = view.flow_stats(cookie);
    if (rec == nullptr) continue;
    for (const net::LinkId l : rec->path.links) {
      reserved[l] += t.measured_rate;
    }
  }

  // Natural demand estimation (Hedera §"demand estimation", simplified):
  // each flow would ideally run at its fair share of the tighter of its two
  // host NICs, independent of the core fabric.
  std::unordered_map<net::NodeId, int> flows_at_host;
  for (const auto& [cookie, t] : tracked_) {
    ++flows_at_host[t.src];
    ++flows_at_host[t.dst];
  }
  auto nic_capacity = [&](net::NodeId host) {
    const auto& ups = topo.out_links(host);
    return ups.empty() ? 0.0 : topo.link(ups.front()).capacity_bps;
  };
  auto natural_demand = [&](const Tracked& t) {
    const double src_share =
        nic_capacity(t.src) / std::max(flows_at_host[t.src], 1);
    const double dst_share =
        nic_capacity(t.dst) / std::max(flows_at_host[t.dst], 1);
    return std::min(src_share, dst_share);
  };

  // Elephants, largest first (Hedera schedules big flows first).
  std::vector<sdn::Cookie> elephants;
  for (const auto& [cookie, t] : tracked_) {
    const net::NetworkView::FlowStats* rec = view.flow_stats(cookie);
    if (rec == nullptr || rec->path.links.empty()) continue;
    const double edge_cap = topo.link(rec->path.links.front()).capacity_bps;
    if (t.measured_rate >= config_.elephant_fraction * edge_cap) {
      elephants.push_back(cookie);
    }
  }
  // at(), not operator[]: a comparator must never mutate the container it
  // is ordering (operator[] default-inserts on a missing key).
  std::sort(elephants.begin(), elephants.end(),
            [&](sdn::Cookie a, sdn::Cookie b) {
              return tracked_.at(a).measured_rate >
                     tracked_.at(b).measured_rate;
            });

  for (const sdn::Cookie cookie : elephants) {
    const Tracked& t = tracked_[cookie];
    const net::NetworkView::FlowStats* rec = view.flow_stats(cookie);
    if (rec == nullptr) continue;
    const double demand = natural_demand(t);
    const double reservation = t.measured_rate;

    // Residual headroom for this flow on a candidate path (its own current
    // reservation is excluded where the candidate overlaps).
    auto residual = [&](const net::Path& p) {
      double r = net::kInfiniteDemand;
      for (const net::LinkId l : p.links) {
        double used = reserved[l];
        if (rec->path.contains_link(l)) used -= reservation;
        r = std::min(r, topo.link(l).capacity_bps - used);
      }
      return r;
    };
    // A path can never serve more than its thinnest link.
    auto effective_demand = [&](const net::Path& p) {
      double cap = net::kInfiniteDemand;
      for (const net::LinkId l : p.links) {
        cap = std::min(cap, topo.link(l).capacity_bps);
      }
      return std::min(demand, cap);
    };

    const double current_residual = residual(rec->path);
    if (current_residual >= effective_demand(rec->path)) continue;
    for (const net::Path& p : paths_.get(t.src, t.dst)) {
      if (p.links == rec->path.links) continue;
      const double r = residual(p);
      // Global First Fit: the first path that serves the (path-capped)
      // demand and strictly improves on the current placement.
      if (r >= effective_demand(p) && r > current_residual) {
        for (const net::LinkId l : rec->path.links) {
          reserved[l] -= reservation;
        }
        fabric_->reroute_flow(cookie, p);
        for (const net::LinkId l : p.links) reserved[l] += reservation;
        ++reroutes_;
        break;
      }
    }
  }
}

}  // namespace mayflower::policy
