// Hedera-style centralized dynamic flow scheduling (Al-Fares et al., NSDI
// 2010 — reference [6] of the paper). This is the "datacenter-wide dynamic
// network flow scheduler" of §1 that Mayflower's co-design argues against:
// it periodically detects elephant flows and re-places them on the least
// loaded equal-cost path, but — critically — only *between the pre-selected
// endpoints*. It cannot exploit replica redundancy.
//
// Faithful simplifications: elephants are flows whose measured rate exceeds
// a fraction of the edge capacity (Hedera's 10% rule); placement is Global
// First Fit over the flow's equal-cost shortest paths using the controller's
// own estimated link reservations, refreshed from per-flow byte counters
// each tick. Each tick reads one NetworkView snapshot (flow telemetry
// included) and issues reroutes against it — measurement and decision are
// decoupled exactly like every other consumer in the decision pipeline.
#pragma once

#include <unordered_map>

#include "common/rng.hpp"
#include "net/ecmp.hpp"
#include "policy/replica_policy.hpp"
#include "policy/scheme.hpp"

namespace mayflower::policy {

struct HederaConfig {
  sim::SimTime tick = sim::SimTime::from_seconds(5.0);  // Hedera's period
  double elephant_fraction = 0.10;  // of the host link capacity
};

class HederaScheduler {
 public:
  HederaScheduler(sdn::SdnFabric& fabric, HederaConfig config);

  // Registers a transfer the scheduler may later move. The initial path is
  // whatever the caller installed (typically ECMP).
  void track(sdn::Cookie cookie, net::NodeId src, net::NodeId dst,
             double bytes);
  void untrack(sdn::Cookie cookie);

  void start() { poller_.start(); }
  void stop() { poller_.stop(); }

  // One scheduling round (also runs on the timer).
  void tick();

  std::uint64_t reroutes() const { return reroutes_; }

  // The rate the last tick measured for a tracked flow (tests/inspection).
  double measured_rate(sdn::Cookie cookie) const {
    return tracked_.at(cookie).measured_rate;
  }

 private:
  struct Tracked {
    net::NodeId src;
    net::NodeId dst;
    double bytes;
    double last_poll_bytes = 0.0;
    double measured_rate = 0.0;
    // When this flow's current measurement window opened: tracking time at
    // first, then the time of the last tick that measured it. Dividing a
    // mid-interval flow's byte delta by the full tick dt instead used to
    // underestimate fresh flows (by up to the whole elephant margin),
    // delaying their detection by up to one extra tick.
    sim::SimTime window_start;
  };

  sdn::SdnFabric* fabric_;
  HederaConfig config_;
  net::PathCache paths_;
  sdn::ViewBuilder views_;
  sdn::StatsPoller poller_;
  std::unordered_map<sdn::Cookie, Tracked> tracked_;
  sim::SimTime last_tick_;
  std::uint64_t reroutes_ = 0;
};

// Replica policy + ECMP initial placement + Hedera re-placement: the
// conventional "independent network flow scheduler" configuration. The
// planning boilerplate lives in ExternalReplicaScheme; this subclass only
// hands planned transfers to the scheduler.
class ReplicaPlusHedera final : public ExternalReplicaScheme {
 public:
  ReplicaPlusHedera(ReplicaPolicy& replica, sdn::SdnFabric& fabric,
                    HederaScheduler& scheduler, std::string name,
                    std::uint64_t ecmp_salt = 0)
      : ExternalReplicaScheme(replica, fabric, std::move(name), ecmp_salt),
        scheduler_(&scheduler) {}

  void on_flow_complete(sdn::Cookie cookie) override {
    scheduler_->untrack(cookie);
  }

 protected:
  void on_planned(const ReadAssignment& assignment,
                  net::NodeId client) override {
    scheduler_->track(assignment.cookie, assignment.replica, client,
                      assignment.bytes);
  }

 private:
  HederaScheduler* scheduler_;
};

}  // namespace mayflower::policy
