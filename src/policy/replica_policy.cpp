#include "policy/replica_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace mayflower::policy {
namespace {

net::NodeId pick_uniform(Rng& rng, const std::vector<net::NodeId>& choices) {
  MAYFLOWER_ASSERT(!choices.empty());
  return choices[rng.next_below(choices.size())];
}

}  // namespace

net::NodeId RandomReplica::choose(net::NodeId /*client*/,
                                  const std::vector<net::NodeId>& replicas,
                                  const net::NetworkView& /*view*/) {
  return pick_uniform(*rng_, replicas);
}

net::NodeId NearestReplica::choose(net::NodeId client,
                                   const std::vector<net::NodeId>& replicas,
                                   const net::NetworkView& /*view*/) {
  MAYFLOWER_ASSERT(!replicas.empty());
  int best = std::numeric_limits<int>::max();
  std::vector<net::NodeId> ties;
  for (const net::NodeId r : replicas) {
    const int d = r == client ? 0 : topo_->hop_distance(r, client);
    MAYFLOWER_ASSERT_MSG(d >= 0, "replica unreachable from client");
    if (d < best) {
      best = d;
      ties.clear();
    }
    if (d == best) ties.push_back(r);
  }
  return pick_uniform(*rng_, ties);
}

net::NodeId HdfsRackAwareReplica::choose(
    net::NodeId client, const std::vector<net::NodeId>& replicas,
    const net::NetworkView& /*view*/) {
  MAYFLOWER_ASSERT(!replicas.empty());
  // Node-local, then rack-local, then uniform random (HDFS default).
  for (const net::NodeId r : replicas) {
    if (r == client) return r;
  }
  std::vector<net::NodeId> rack_local;
  for (const net::NodeId r : replicas) {
    if (topo_->same_rack(r, client)) rack_local.push_back(r);
  }
  if (!rack_local.empty()) return pick_uniform(*rng_, rack_local);
  return pick_uniform(*rng_, replicas);
}

double SinbadRReplica::host_tx_rate(std::size_t host_idx,
                                    const net::NetworkView& view) const {
  return view.tx_rate_bps(tree_->host_uplink(tree_->hosts[host_idx]));
}

double SinbadRReplica::headroom(net::NodeId replica, net::NodeId client,
                                const net::NetworkView& view) const {
  const auto& cfg = tree_->config;
  // Host index within the rack-major host list.
  const auto it =
      std::find(tree_->hosts.begin(), tree_->hosts.end(), replica);
  MAYFLOWER_ASSERT(it != tree_->hosts.end());
  const auto host_idx =
      static_cast<std::size_t>(it - tree_->hosts.begin());

  const double host_rate = host_tx_rate(host_idx, view);
  double result = cfg.host_link_bps - host_rate;

  if (tree_->rack_of(replica) == tree_->rack_of(client)) {
    return result;  // traffic never leaves the rack
  }

  // Rack tier: Sinbad estimates from end-host counters + topology — the
  // rack's aggregate host tx spread over its uplinks.
  const auto rack = static_cast<std::size_t>(tree_->rack_of(replica));
  double rack_tx = 0.0;
  for (std::size_t i = rack * cfg.hosts_per_rack;
       i < (rack + 1) * cfg.hosts_per_rack; ++i) {
    rack_tx += host_tx_rate(i, view);
  }
  const double per_uplink = rack_tx / cfg.aggs_per_pod;
  result = std::min(result, cfg.rack_uplink_bps - per_uplink);

  if (tree_->pod_of(replica) == tree_->pod_of(client)) {
    return result;  // stays inside the pod
  }

  // Core tier: the pod's aggregate host tx spread over its agg->core links.
  const auto pod = static_cast<std::size_t>(tree_->pod_of(replica));
  const std::size_t hosts_per_pod = cfg.racks_per_pod * cfg.hosts_per_rack;
  double pod_tx = 0.0;
  for (std::size_t i = pod * hosts_per_pod; i < (pod + 1) * hosts_per_pod;
       ++i) {
    pod_tx += host_tx_rate(i, view);
  }
  const double per_core_link =
      pod_tx / (cfg.aggs_per_pod * cfg.cores);
  result = std::min(result, cfg.agg_uplink_bps - per_core_link);
  return result;
}

net::NodeId SinbadRReplica::choose(net::NodeId client,
                                   const std::vector<net::NodeId>& replicas,
                                   const net::NetworkView& view) {
  MAYFLOWER_ASSERT(!replicas.empty());
  // Pod restriction (§6.2): if the client shares a pod with any replica,
  // only those replicas are considered.
  std::vector<net::NodeId> pool;
  for (const net::NodeId r : replicas) {
    if (tree_->pod_of(r) == tree_->pod_of(client)) pool.push_back(r);
  }
  if (pool.empty()) pool = replicas;

  double best = 0.0;
  std::vector<net::NodeId> ties;
  for (const net::NodeId r : pool) {
    const double h = headroom(r, client, view);
    const double tol = 1e-9 * (1.0 + std::fabs(best));
    if (ties.empty() || h > best + tol) {
      best = h;
      ties.assign(1, r);
    } else if (h >= best - tol) {
      ties.push_back(r);
    }
  }
  return pick_uniform(*rng_, ties);
}

}  // namespace mayflower::policy
