// Write placement policies (§3.3 extension, Sinbad for writes).
//
// Where a read policy picks which EXISTING replica to fetch from, a write
// placement ranks which hosts should RECEIVE a new replica. Both are
// stateless over a NetworkView: the same snapshot that routes flows scores
// placements, so one decision batch sees one consistent network.
//
//  * model    — the believed-share ranking the Flowserver has always used
//               for collaborative placement: each candidate scores the
//               max-min share a new write flow from the writer would get
//               over its best path (writer-local candidates score the
//               zero-hop rate). Exact same definition as the historical
//               Flowserver::best_write_target — extraction, not a rewrite.
//  * measured — Sinbad-faithful: candidates score the MEASURED headroom
//               (capacity minus LinkRateMonitor tx rate, bottlenecked over
//               the best writer->candidate path) instead of the model's
//               believed shares. Immune to belief drift between polls;
//               blind to flows the monitor has not sampled yet.
//  * static   — no advisor at all: the nameserver keeps the paper's random
//               fault-domain-constrained placement. Represented by kStatic
//               in the selector enum; there is no WritePlacement object.
//
// rank() returns the tied-best band, never a single winner: ties are common
// on an idle fabric and the CALLER must break them with its own seeded Rng,
// or every file's replicas stack onto the same few hosts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flowserver/writechain.hpp"
#include "net/network_view.hpp"
#include "net/paths.hpp"

namespace mayflower::policy {

enum class WritePlacementKind { kStatic, kModel, kMeasured };

const char* to_string(WritePlacementKind kind);
// Parses "static" | "model" | "measured"; nullopt on anything else.
std::optional<WritePlacementKind> parse_write_placement(const std::string& s);

class WritePlacement {
 public:
  virtual ~WritePlacement() = default;

  // Ranks `candidates` (non-empty) as homes for a new replica written by
  // `writer` and returns the tied-best band (original order preserved,
  // never empty).
  virtual std::vector<net::NodeId> rank(
      net::NodeId writer, const std::vector<net::NodeId>& candidates,
      const net::NetworkView& view) = 0;

  virtual const char* name() const = 0;
};

class ModelWritePlacement final : public WritePlacement {
 public:
  ModelWritePlacement(const flowserver::BandwidthModel& model,
                      net::PathCache& paths)
      : model_(&model), paths_(&paths) {}

  std::vector<net::NodeId> rank(net::NodeId writer,
                                const std::vector<net::NodeId>& candidates,
                                const net::NetworkView& view) override;
  const char* name() const override { return "model"; }

 private:
  const flowserver::BandwidthModel* model_;
  net::PathCache* paths_;
};

class MeasuredWritePlacement final : public WritePlacement {
 public:
  explicit MeasuredWritePlacement(net::PathCache& paths) : paths_(&paths) {}

  std::vector<net::NodeId> rank(net::NodeId writer,
                                const std::vector<net::NodeId>& candidates,
                                const net::NetworkView& view) override;
  const char* name() const override { return "measured"; }

  // Measured bytes/s still available on the best writer->candidate path:
  // max over paths of (min over links of capacity - tx rate). Writer-local
  // candidates return kLocalHeadroom (no fabric crossing). Exposed for
  // tests.
  units::Bps headroom(net::NodeId writer, net::NodeId candidate,
                      const net::NetworkView& view) const;

  // Above any link rate a monitor can report, below the tie tolerance's
  // overflow range: writer-local placement always wins when offered.
  static constexpr units::Bps kLocalHeadroom{1e30};

 private:
  net::PathCache* paths_;
};

}  // namespace mayflower::policy
