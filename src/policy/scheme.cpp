#include "policy/scheme.hpp"

namespace mayflower::policy {

std::vector<ReadAssignment> ReplicaPlusEcmp::plan_read(
    net::NodeId client, const std::vector<net::NodeId>& replicas,
    double bytes) {
  const net::NodeId r = replica_->choose(client, replicas);
  const auto& candidates = paths_.get(r, client);
  MAYFLOWER_ASSERT_MSG(!candidates.empty(), "replica unreachable");

  ReadAssignment a;
  a.cookie = fabric_->new_cookie();
  // The cookie stands in for the flow's ephemeral port in the ECMP hash:
  // stable for the flow, varying across flows.
  a.path = hasher_.choose(candidates, r, client, a.cookie);
  a.replica = r;
  a.bytes = bytes;
  a.est_bw_bps = 0.0;  // ECMP has no bandwidth model
  fabric_->install_path(a.cookie, a.path);
  return {a};
}

}  // namespace mayflower::policy
