#include "policy/scheme.hpp"

#include "common/assert.hpp"

namespace mayflower::policy {

std::vector<ReadAssignment> ExternalReplicaScheme::plan_read(
    net::NodeId client, const std::vector<net::NodeId>& replicas,
    double bytes) {
  if (replicas.empty()) return {};  // nothing to read from
  const net::NetworkView& view = views_.view();

  // Liveness filter against the snapshot, order preserved: fault-free this
  // is the identity, so the replica policy's tie-break rng stream is
  // untouched; with links down it narrows the choice to replicas the client
  // can actually reach.
  std::vector<net::NodeId> live;
  for (const net::NodeId r : replicas) {
    for (const net::Path& p : paths_.get(r, client)) {
      if (view.path_alive(p)) {
        live.push_back(r);
        break;
      }
    }
  }
  if (live.empty()) return {};  // every replica unreachable right now

  const net::NodeId r = replica_->choose(client, live, view);
  std::vector<const net::Path*> alive;
  for (const net::Path& p : paths_.get(r, client)) {
    if (view.path_alive(p)) alive.push_back(&p);
  }
  MAYFLOWER_ASSERT(!alive.empty());  // r passed the filter above

  ReadAssignment a;
  a.cookie = fabric_->new_cookie();
  // The cookie stands in for the flow's ephemeral port in the ECMP hash:
  // stable for the flow, varying across flows.
  a.path = *alive[hasher_.choose_index(alive.size(), r, client, a.cookie)];
  a.replica = r;
  a.bytes = bytes;
  a.est_bw_bps = 0.0;  // ECMP has no bandwidth model
  fabric_->install_path(a.cookie, a.path);
  on_planned(a, client);
  return {std::move(a)};
}

}  // namespace mayflower::policy
