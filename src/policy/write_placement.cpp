#include "policy/write_placement.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mayflower::policy {

const char* to_string(WritePlacementKind kind) {
  switch (kind) {
    case WritePlacementKind::kStatic: return "static";
    case WritePlacementKind::kModel: return "model";
    case WritePlacementKind::kMeasured: return "measured";
  }
  return "?";
}

std::optional<WritePlacementKind> parse_write_placement(const std::string& s) {
  if (s == "static") return WritePlacementKind::kStatic;
  if (s == "model") return WritePlacementKind::kModel;
  if (s == "measured") return WritePlacementKind::kMeasured;
  return std::nullopt;
}

std::vector<net::NodeId> ModelWritePlacement::rank(
    net::NodeId writer, const std::vector<net::NodeId>& candidates,
    const net::NetworkView& view) {
  return flowserver::rank_write_targets_by_model(*model_, *paths_, writer,
                                                 candidates, view);
}

units::Bps MeasuredWritePlacement::headroom(net::NodeId writer,
                                            net::NodeId candidate,
                                            const net::NetworkView& view) const {
  if (candidate == writer) return kLocalHeadroom;
  double best = 0.0;
  for (const net::Path& p : paths_->get(writer, candidate)) {
    if (!view.path_alive(p)) continue;
    double bottleneck = kLocalHeadroom.value();
    for (const net::LinkId l : p.links) {
      const double free =
          std::max(0.0, view.capacity_bps(l) - view.tx_rate_bps(l));
      bottleneck = std::min(bottleneck, free);
    }
    best = std::max(best, bottleneck);
  }
  return units::Bps{best};
}

std::vector<net::NodeId> MeasuredWritePlacement::rank(
    net::NodeId writer, const std::vector<net::NodeId>& candidates,
    const net::NetworkView& view) {
  MAYFLOWER_ASSERT(!candidates.empty());
  std::vector<units::Bps> scores;
  scores.reserve(candidates.size());
  for (const net::NodeId candidate : candidates) {
    scores.push_back(headroom(writer, candidate, view));
  }
  return flowserver::tied_best_targets(candidates, scores);
}

}  // namespace mayflower::policy
