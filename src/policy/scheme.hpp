// Read-scheduling schemes: the five systems compared in §6 plus ablation
// variants, all behind one interface the experiment harness drives.
//
//   mayflower           — co-designed replica+path selection (the paper)
//   sinbad-r mayflower  — Sinbad-R replica, Mayflower path scheduler
//   sinbad-r ecmp       — Sinbad-R replica, ECMP hashing
//   nearest mayflower   — nearest replica, Mayflower path scheduler
//   nearest ecmp        — nearest replica, ECMP hashing
//   hdfs-*              — HDFS rack-aware replica selection (Fig. 8)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flowserver/flowserver.hpp"
#include "net/ecmp.hpp"
#include "policy/replica_policy.hpp"

namespace mayflower::policy {

using flowserver::ReadAssignment;

class Scheme {
 public:
  virtual ~Scheme() = default;

  // Plans a read of `bytes` for `client`; installs paths and returns the
  // subflows to start. The caller starts each via
  // fabric.start_flow(a.cookie, a.path, a.bytes, ...) and reports each
  // completion through on_flow_complete().
  virtual std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) = 0;

  virtual void on_flow_complete(sdn::Cookie cookie) = 0;

  virtual const std::string& name() const = 0;
};

// The full co-design: every plan is delegated to the Flowserver.
class MayflowerScheme final : public Scheme {
 public:
  explicit MayflowerScheme(flowserver::Flowserver& server,
                           std::string name = "mayflower")
      : server_(&server), name_(std::move(name)) {}

  std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) override {
    return server_->select_for_read(client, replicas, bytes);
  }

  void on_flow_complete(sdn::Cookie cookie) override {
    server_->flow_dropped(cookie);
  }

  const std::string& name() const override { return name_; }

 private:
  flowserver::Flowserver* server_;
  std::string name_;
};

// External replica policy + Mayflower's path scheduler ("Nearest Mayflower",
// "Sinbad-R Mayflower", "HDFS-Mayflower"): the Flowserver optimizes the path
// but the optimization space is limited to the pre-selected replica (§6.2).
class ReplicaPlusMayflowerPath final : public Scheme {
 public:
  ReplicaPlusMayflowerPath(ReplicaPolicy& replica,
                           flowserver::Flowserver& server, std::string name)
      : replica_(&replica), server_(&server), name_(std::move(name)) {}

  std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) override {
    const net::NodeId r = replica_->choose(client, replicas);
    ReadAssignment a = server_->select_path_for_replica(client, r, bytes);
    if (a.cookie == 0) return {};  // chosen replica unreachable right now
    return {std::move(a)};
  }

  void on_flow_complete(sdn::Cookie cookie) override {
    server_->flow_dropped(cookie);
  }

  const std::string& name() const override { return name_; }

 private:
  ReplicaPolicy* replica_;
  flowserver::Flowserver* server_;
  std::string name_;
};

// External replica policy + ECMP hashing across equal-cost shortest paths.
class ReplicaPlusEcmp final : public Scheme {
 public:
  ReplicaPlusEcmp(ReplicaPolicy& replica, sdn::SdnFabric& fabric,
                  std::string name, std::uint64_t ecmp_salt = 0)
      : replica_(&replica),
        fabric_(&fabric),
        paths_(fabric.topology()),
        hasher_(ecmp_salt),
        name_(std::move(name)) {}

  std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) override;

  void on_flow_complete(sdn::Cookie /*cookie*/) override {}

  const std::string& name() const override { return name_; }

 private:
  ReplicaPolicy* replica_;
  sdn::SdnFabric* fabric_;
  net::PathCache paths_;
  net::EcmpHasher hasher_;
  std::string name_;
};

}  // namespace mayflower::policy
