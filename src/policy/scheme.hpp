// Read-scheduling schemes: the five systems compared in §6 plus ablation
// variants, all behind one interface the experiment harness drives.
//
//   mayflower           — co-designed replica+path selection (the paper)
//   sinbad-r mayflower  — Sinbad-R replica, Mayflower path scheduler
//   sinbad-r ecmp       — Sinbad-R replica, ECMP hashing
//   nearest mayflower   — nearest replica, Mayflower path scheduler
//   nearest ecmp        — nearest replica, ECMP hashing
//   hdfs-*              — HDFS rack-aware replica selection (Fig. 8)
//
// Every scheme decides against a NetworkView snapshot. Flowserver-backed
// schemes ride the server's admission queue (plan_read_async enqueues; a
// decision batch drains against one view); the ECMP/Hedera baselines share
// one ExternalReplicaScheme planner that builds its view through a
// sdn::ViewBuilder.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flowserver/flowserver.hpp"
#include "net/ecmp.hpp"
#include "policy/replica_policy.hpp"
#include "sdn/view_builder.hpp"

namespace mayflower::policy {

using flowserver::ReadAssignment;

class Scheme {
 public:
  using PlanCallback = flowserver::Flowserver::PlanCallback;

  virtual ~Scheme() = default;

  // Plans a read of `bytes` for `client`; installs paths and returns the
  // subflows to start. The caller starts each via
  // fabric.start_flow(a.cookie, a.path, a.bytes, ...) and reports each
  // completion through on_flow_complete(). An empty plan means no listed
  // replica is reachable right now (never an assert — callers retry).
  virtual std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) = 0;

  // Batched variant: the plan is delivered through `done`, possibly later
  // (Flowserver-backed schemes queue the request and decide a whole batch
  // against one view snapshot). The default adapter is batch-of-one: it
  // runs the synchronous planner inline, so baselines without an admission
  // queue behave identically either way.
  virtual void plan_read_async(net::NodeId client,
                               const std::vector<net::NodeId>& replicas,
                               double bytes, PlanCallback done) {
    done(plan_read(client, replicas, bytes));
  }

  virtual void on_flow_complete(sdn::Cookie cookie) = 0;

  virtual const std::string& name() const = 0;
};

// The full co-design: every plan is delegated to the Flowserver.
class MayflowerScheme final : public Scheme {
 public:
  explicit MayflowerScheme(flowserver::Flowserver& server,
                           std::string name = "mayflower")
      : server_(&server), name_(std::move(name)) {}

  std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) override {
    return server_->select_for_read(client, replicas, bytes);
  }

  void plan_read_async(net::NodeId client,
                       const std::vector<net::NodeId>& replicas, double bytes,
                       PlanCallback done) override {
    server_->enqueue_read(client, replicas, bytes, std::move(done));
  }

  void on_flow_complete(sdn::Cookie cookie) override {
    server_->flow_dropped(cookie);
  }

  const std::string& name() const override { return name_; }

 private:
  flowserver::Flowserver* server_;
  std::string name_;
};

// External replica policy + Mayflower's path scheduler ("Nearest Mayflower",
// "Sinbad-R Mayflower", "HDFS-Mayflower"): the Flowserver optimizes the path
// but the optimization space is limited to the pre-selected replica (§6.2).
// The replica choice runs INSIDE the Flowserver's decision batch, against
// the same view snapshot the path selection reads.
class ReplicaPlusMayflowerPath final : public Scheme {
 public:
  ReplicaPlusMayflowerPath(ReplicaPolicy& replica,
                           flowserver::Flowserver& server, std::string name)
      : replica_(&replica), server_(&server), name_(std::move(name)) {}

  std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) override {
    std::vector<ReadAssignment> out;
    server_->enqueue_read(
        client, replicas, bytes,
        [&out](std::vector<ReadAssignment> plan) { out = std::move(plan); },
        chooser());
    server_->drain();  // no-op when the enqueue already size-triggered
    return out;
  }

  void plan_read_async(net::NodeId client,
                       const std::vector<net::NodeId>& replicas, double bytes,
                       PlanCallback done) override {
    server_->enqueue_read(client, replicas, bytes, std::move(done), chooser());
  }

  void on_flow_complete(sdn::Cookie cookie) override {
    server_->flow_dropped(cookie);
  }

  const std::string& name() const override { return name_; }

 private:
  flowserver::Flowserver::ReplicaChooser chooser() {
    return [this](net::NodeId client, const std::vector<net::NodeId>& live,
                  const net::NetworkView& view) {
      return replica_->choose(client, live, view);
    };
  }

  ReplicaPolicy* replica_;
  flowserver::Flowserver* server_;
  std::string name_;
};

// Shared planner for the non-Flowserver baselines (external replica policy +
// ECMP hashing over equal-cost shortest paths): one place holds the
// view-driven boilerplate — liveness filtering, replica choice, ECMP path
// hash, path install — and subclasses hook the planned assignment (Hedera
// registers it for re-placement).
class ExternalReplicaScheme : public Scheme {
 public:
  ExternalReplicaScheme(ReplicaPolicy& replica, sdn::SdnFabric& fabric,
                        std::string name, std::uint64_t ecmp_salt)
      : replica_(&replica),
        fabric_(&fabric),
        views_(fabric),
        paths_(fabric.topology()),
        hasher_(ecmp_salt),
        name_(std::move(name)) {}

  // Publishes NIC tx rates into the scheme's views (required when the
  // replica policy is utilization-driven, e.g. Sinbad-R).
  void set_rate_monitor(const sdn::LinkRateMonitor* monitor) {
    views_.set_rate_monitor(monitor);
  }

  std::vector<ReadAssignment> plan_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes) final;

  void on_flow_complete(sdn::Cookie /*cookie*/) override {}

  const std::string& name() const final { return name_; }

 protected:
  // Called once per planned assignment, before it is returned.
  virtual void on_planned(const ReadAssignment& assignment,
                          net::NodeId client) {
    (void)assignment;
    (void)client;
  }

 private:
  ReplicaPolicy* replica_;
  sdn::SdnFabric* fabric_;
  sdn::ViewBuilder views_;
  net::PathCache paths_;
  net::EcmpHasher hasher_;
  std::string name_;
};

// External replica policy + ECMP hashing across equal-cost shortest paths.
class ReplicaPlusEcmp final : public ExternalReplicaScheme {
 public:
  ReplicaPlusEcmp(ReplicaPolicy& replica, sdn::SdnFabric& fabric,
                  std::string name, std::uint64_t ecmp_salt = 0)
      : ExternalReplicaScheme(replica, fabric, std::move(name), ecmp_salt) {}
};

}  // namespace mayflower::policy
