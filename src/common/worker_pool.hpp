// Fixed-size worker pool for decision-batch parallelism.
//
// parallel_for(count, fn) distributes indices [0, count) over the pool's
// threads via an atomic work counter; the calling thread participates as
// worker 0 and the call returns only when every index ran (a full barrier).
// Threads are spawned once at construction and parked on a condition
// variable between rounds, so a drain-per-batch caller pays no thread
// creation on the hot path.
//
// Determinism contract: WHICH worker runs WHICH index is scheduling-
// dependent, so `fn` must write results only into per-index slots (and read
// only immutable shared state or per-worker scratch keyed by `worker`).
// Under that contract the result of a round is byte-identical at any thread
// count — the property the Flowserver's threaded decision pipeline builds
// on (DESIGN.md §11).
//
// A pool constructed with threads <= 1 runs every round inline and spawns
// nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace mayflower::common {

class WorkerPool {
 public:
  // Runs one index of a round. `worker` is in [0, threads()); index order
  // and worker assignment are unspecified.
  using TaskFn = std::function<void(std::size_t worker, std::size_t index)>;

  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t threads() const { return threads_; }

  // Runs fn(worker, i) for every i in [0, count); returns after all ran.
  // Not reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t count, const TaskFn& fn) EXCLUDES(mu_);

  // Rounds completed (telemetry for tests).
  std::uint64_t rounds() const { return rounds_.load(); }

 private:
  void worker_loop(std::size_t worker) EXCLUDES(mu_);
  // Pulls indices from next_ until the round is exhausted.
  void run_indices(std::size_t worker, const TaskFn& fn, std::size_t count);

  const std::size_t threads_;

  Mutex mu_;
  CondVar work_cv_;               // spawned workers wait here between rounds
  CondVar done_cv_;               // the caller waits here for round completion
  std::uint64_t round_ GUARDED_BY(mu_) = 0;
  const TaskFn* job_ GUARDED_BY(mu_) = nullptr;
  std::size_t job_count_ GUARDED_BY(mu_) = 0;
  std::size_t busy_workers_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::atomic<std::size_t> next_{0};   // next unclaimed index of the round
  std::atomic<std::uint64_t> rounds_{0};
  std::vector<std::thread> workers_;   // threads_ - 1 spawned threads
};

}  // namespace mayflower::common
