// Small string helpers shared by the harness report printers and the KV store.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mayflower {

std::vector<std::string> split(std::string_view text, char sep);

// printf-style std::string formatting (GCC 12 has no <format>).
std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

bool starts_with(std::string_view text, std::string_view prefix);

// "1.50 GB", "256.00 MB", ... for report output.
std::string human_bytes(double bytes);

// "12.3 ms", "4.56 s", ... for report output.
std::string human_seconds(double seconds);

}  // namespace mayflower
