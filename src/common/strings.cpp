#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace mayflower {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string human_bytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= 1e9) {
    v /= 1e9;
    unit = "GB";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "MB";
  } else if (v >= 1e3) {
    v /= 1e3;
    unit = "KB";
  }
  return strfmt("%.2f %s", v, unit);
}

std::string human_seconds(double seconds) {
  if (seconds < 1e-3) return strfmt("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return strfmt("%.2f ms", seconds * 1e3);
  return strfmt("%.2f s", seconds);
}

}  // namespace mayflower
