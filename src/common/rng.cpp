#include "common/rng.hpp"

#include <cmath>
#include <limits>

namespace mayflower {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MAYFLOWER_ASSERT(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MAYFLOWER_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double lambda) {
  MAYFLOWER_ASSERT(lambda > 0.0);
  // Guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return -std::log(u) / lambda;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MAYFLOWER_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MAYFLOWER_ASSERT_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  MAYFLOWER_ASSERT_MSG(total > 0.0, "weights must not all be zero");
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off due to rounding
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
  MAYFLOWER_ASSERT(n > 0);
  MAYFLOWER_ASSERT(skew > 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // exact upper bound despite rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // First index with cdf >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t k) const {
  MAYFLOWER_ASSERT(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace mayflower
