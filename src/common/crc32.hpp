// CRC-32 (IEEE 802.3 polynomial, reflected) used to frame write-ahead-log
// records in the nameserver's key-value store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mayflower {

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace mayflower
