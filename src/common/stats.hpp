// Summary statistics used by the evaluation harness.
//
// The paper reports, per experiment: average and 95th-percentile job
// completion time, 95% confidence intervals via the Student-t distribution
// (Fig. 6), and 95% CIs for *normalized ratios* via Fieller's method
// (Figs. 4, 5). All three are implemented here.
#pragma once

#include <cstddef>
#include <vector>

namespace mayflower {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Percentile by linear interpolation between closest ranks; `q` in [0, 1].
// `sorted` must be ascending and non-empty.
double percentile_sorted(const std::vector<double>& sorted, double q);

Summary summarize(std::vector<double> samples);

// Two-sided critical value of the Student-t distribution at confidence
// `conf` (e.g. 0.95) with `dof` degrees of freedom. Exact for dof >= 1 via
// numeric inversion of the regularized incomplete beta function.
double student_t_critical(double conf, std::size_t dof);

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

// 95%-style CI for the mean of `samples` using Student-t.
Interval mean_confidence_interval(const std::vector<double>& samples,
                                  double conf = 0.95);

// Fieller's method: confidence interval for the ratio mean(a)/mean(b) of two
// independent samples. Returns the interval around the ratio; if the interval
// is unbounded (g >= 1, i.e. the denominator is not significantly nonzero)
// the result degenerates to [ratio, ratio] with `bounded = false`.
struct RatioInterval {
  double ratio = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  bool bounded = true;
};

RatioInterval fieller_ratio_interval(const std::vector<double>& numer,
                                     const std::vector<double>& denom,
                                     double conf = 0.95);

}  // namespace mayflower
