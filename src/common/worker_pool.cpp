#include "common/worker_pool.hpp"

#include "common/assert.hpp"

namespace mayflower::common {

WorkerPool::WorkerPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run_indices(std::size_t worker, const TaskFn& fn,
                             std::size_t count) {
  for (std::size_t i = next_.fetch_add(1); i < count;
       i = next_.fetch_add(1)) {
    fn(worker, i);
  }
}

void WorkerPool::parallel_for(std::size_t count, const TaskFn& fn) {
  if (count == 0) return;
  if (threads_ == 1) {
    // Inline fast path: same visible behavior (worker 0 runs everything).
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    rounds_.fetch_add(1);
    return;
  }
  {
    MutexLock lock(mu_);
    MAYFLOWER_ASSERT_MSG(job_ == nullptr, "parallel_for is not reentrant");
    job_ = &fn;
    job_count_ = count;
    next_.store(0);
    busy_workers_ = threads_ - 1;
    ++round_;
  }
  work_cv_.notify_all();

  run_indices(0, fn, count);  // the caller is worker 0

  MutexLock lock(mu_);
  while (busy_workers_ != 0) done_cv_.wait(mu_);
  job_ = nullptr;
  rounds_.fetch_add(1);
}

void WorkerPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_round = 0;
  for (;;) {
    const TaskFn* fn = nullptr;
    std::size_t count = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && round_ == seen_round) work_cv_.wait(mu_);
      if (shutdown_) return;
      seen_round = round_;
      fn = job_;
      count = job_count_;
    }
    run_indices(worker, *fn, count);
    {
      MutexLock lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace mayflower::common
