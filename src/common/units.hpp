// Size and rate units.
//
// Conventions used throughout the project:
//   * data sizes are in bytes (double where fluid-model fractions occur,
//     std::uint64_t where they are exact counts);
//   * link capacities and flow rates are in bytes per second;
//   * simulated time is SimTime (nanoseconds, see sim/time.hpp).
#pragma once

#include <cstdint>

namespace mayflower {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

// Network gear is specified in bits/s; convert at the boundary.
constexpr double bits_per_sec(double bps) { return bps / 8.0; }
constexpr double kbps(double v) { return bits_per_sec(v * 1e3); }
constexpr double mbps(double v) { return bits_per_sec(v * 1e6); }
constexpr double gbps(double v) { return bits_per_sec(v * 1e9); }

constexpr double megabits(double v) { return v * 1e6 / 8.0; }  // -> bytes
constexpr double mebibytes(double v) { return v * 1024.0 * 1024.0; }

namespace units {

// Strong typedefs for unit-carrying quantities. A Bps never adds to a Bytes
// and a raw double never silently becomes either: construction is explicit,
// so bandwidth/byte mixups at API seams are compile errors. Seeded at the
// Flowserver <-> policy ranking seam (tied_best_targets scores, measured
// headroom, chain-planner request sizes); adopt at new seams as they appear.
class Bps {
 public:
  constexpr Bps() = default;
  constexpr explicit Bps(double bytes_per_sec) : v_(bytes_per_sec) {}
  constexpr double value() const { return v_; }

  friend constexpr bool operator==(Bps a, Bps b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Bps a, Bps b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Bps a, Bps b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Bps a, Bps b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Bps a, Bps b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Bps a, Bps b) { return a.v_ >= b.v_; }

 private:
  double v_ = 0.0;
};

class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double bytes) : v_(bytes) {}
  constexpr double value() const { return v_; }

  friend constexpr bool operator==(Bytes a, Bytes b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Bytes a, Bytes b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Bytes a, Bytes b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Bytes a, Bytes b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Bytes a, Bytes b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Bytes a, Bytes b) { return a.v_ >= b.v_; }

 private:
  double v_ = 0.0;
};

static_assert(Bps{2.0} > Bps{1.0} && Bps{1.0}.value() == 1.0);
static_assert(Bytes{mebibytes(1)} == Bytes{1048576.0});

}  // namespace units

}  // namespace mayflower
