// Size and rate units.
//
// Conventions used throughout the project:
//   * data sizes are in bytes (double where fluid-model fractions occur,
//     std::uint64_t where they are exact counts);
//   * link capacities and flow rates are in bytes per second;
//   * simulated time is SimTime (nanoseconds, see sim/time.hpp).
#pragma once

#include <cstdint>

namespace mayflower {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

// Network gear is specified in bits/s; convert at the boundary.
constexpr double bits_per_sec(double bps) { return bps / 8.0; }
constexpr double kbps(double v) { return bits_per_sec(v * 1e3); }
constexpr double mbps(double v) { return bits_per_sec(v * 1e6); }
constexpr double gbps(double v) { return bits_per_sec(v * 1e9); }

constexpr double megabits(double v) { return v * 1e6 / 8.0; }  // -> bytes
constexpr double mebibytes(double v) { return v * 1024.0 * 1024.0; }

}  // namespace mayflower
