#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mayflower {
namespace {

double ln_gamma(double x) { return std::lgamma(x); }

// Regularized incomplete beta function I_x(a, b) via the continued-fraction
// expansion (Lentz's algorithm), as in Numerical Recipes.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double inc_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double bt = std::exp(ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) +
                             a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

// Two-sided tail probability of |T| > t for Student-t with `dof` dof.
double student_t_two_tail(double t, double dof) {
  const double x = dof / (dof + t * t);
  return inc_beta(dof / 2.0, 0.5, x);
}

}  // namespace

double percentile_sorted(const std::vector<double>& sorted, double q) {
  MAYFLOWER_ASSERT(!sorted.empty());
  MAYFLOWER_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  s.p99 = percentile_sorted(samples, 0.99);
  return s;
}

double student_t_critical(double conf, std::size_t dof) {
  MAYFLOWER_ASSERT(conf > 0.0 && conf < 1.0);
  MAYFLOWER_ASSERT(dof >= 1);
  const double alpha = 1.0 - conf;
  const double n = static_cast<double>(dof);
  // Bisection on t: two_tail is monotonically decreasing in t.
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_two_tail(hi, n) > alpha && hi < 1e8) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_two_tail(mid, n) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

Interval mean_confidence_interval(const std::vector<double>& samples,
                                  double conf) {
  MAYFLOWER_ASSERT(!samples.empty());
  const Summary s = summarize(samples);
  if (samples.size() < 2) return {s.mean, s.mean};
  const double t = student_t_critical(conf, samples.size() - 1);
  const double half =
      t * s.stddev / std::sqrt(static_cast<double>(samples.size()));
  return {s.mean - half, s.mean + half};
}

RatioInterval fieller_ratio_interval(const std::vector<double>& numer,
                                     const std::vector<double>& denom,
                                     double conf) {
  MAYFLOWER_ASSERT(!numer.empty() && !denom.empty());
  const Summary a = summarize(numer);
  const Summary b = summarize(denom);
  RatioInterval out;
  MAYFLOWER_ASSERT_MSG(b.mean != 0.0, "denominator mean must be nonzero");
  out.ratio = a.mean / b.mean;
  if (numer.size() < 2 || denom.size() < 2) {
    out.lo = out.hi = out.ratio;
    return out;
  }
  // Independent samples: cov(a, b) = 0. Standard errors of the means.
  const double se_a2 = (a.stddev * a.stddev) / static_cast<double>(numer.size());
  const double se_b2 = (b.stddev * b.stddev) / static_cast<double>(denom.size());
  const std::size_t dof = numer.size() + denom.size() - 2;
  const double t = student_t_critical(conf, dof);
  const double g = t * t * se_b2 / (b.mean * b.mean);
  if (g >= 1.0) {
    // Denominator not significantly different from zero: interval unbounded.
    out.lo = out.hi = out.ratio;
    out.bounded = false;
    return out;
  }
  const double center = out.ratio / (1.0 - g);
  const double disc = se_a2 / (b.mean * b.mean) +
                      (out.ratio * out.ratio) * se_b2 / (b.mean * b.mean) -
                      g * se_a2 / (b.mean * b.mean);
  const double half = (t / (1.0 - g)) * std::sqrt(std::max(0.0, disc));
  out.lo = center - half;
  out.hi = center + half;
  return out;
}

}  // namespace mayflower
