// Thread-safety-annotated synchronization primitives.
//
// Wraps the standard mutex/condvar in Clang Thread Safety Analysis
// capabilities so lock misuse is a COMPILE error under
// `clang++ -Wthread-safety` (wired into CMake; see the root CMakeLists),
// not a ThreadSanitizer report after the race already ran. On compilers
// without the attributes (GCC builds this repo by default) every macro
// expands to nothing and Mutex degrades to a plain std::mutex wrapper.
//
// Usage is the canonical Clang pattern:
//
//   class Queue {
//    public:
//     void push(Item it) EXCLUDES(mu_) { MutexLock lock(mu_); ... }
//    private:
//     mutable Mutex mu_;
//     std::deque<Item> items_ GUARDED_BY(mu_);
//   };
//
// The invariant linter (tools/lint_invariants.py --check=guards) additionally
// enforces that every Mutex member has at least one GUARDED_BY referring to
// it — an unannotated mutex protects nothing the compiler can see.
//
// Concurrency contract of this codebase (DESIGN.md §11): the simulation is
// single-threaded by design; these primitives guard exactly the structures a
// decision worker pool shares with the control thread (admission queue, path
// cache, state table, metrics/tracer, fabric flow tables).
#pragma once

#include <condition_variable>
#include <mutex>

// --- Clang Thread Safety Analysis attribute macros -------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MAYFLOWER_TSA(x) __attribute__((x))
#endif
#endif
#ifndef MAYFLOWER_TSA
#define MAYFLOWER_TSA(x)  // not Clang: annotations compile away
#endif

#define CAPABILITY(x) MAYFLOWER_TSA(capability(x))
#define SCOPED_CAPABILITY MAYFLOWER_TSA(scoped_lockable)
#define GUARDED_BY(x) MAYFLOWER_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) MAYFLOWER_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) MAYFLOWER_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MAYFLOWER_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) MAYFLOWER_TSA(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) MAYFLOWER_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) MAYFLOWER_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) MAYFLOWER_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) MAYFLOWER_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MAYFLOWER_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) MAYFLOWER_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS MAYFLOWER_TSA(no_thread_safety_analysis)

namespace mayflower::common {

// A standard mutex carrying the "mutex" capability. BasicLockable, so it
// works with CondVar below and with std::scoped_lock where needed.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock whose scope the analysis tracks (std::lock_guard is invisible to
// Clang TSA because the standard library is not annotated).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over Mutex. wait() must be called with `mu` held (the
// REQUIRES annotation makes Clang enforce exactly that); it atomically
// releases and reacquires around the block, as usual.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mayflower::common
