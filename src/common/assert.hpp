// Lightweight contract checking used across the codebase.
//
// MAYFLOWER_ASSERT is active in all build types: simulation correctness bugs
// must fail loudly in benchmarks too, and the checks are cheap relative to the
// surrounding work (max-min solves, event dispatch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mayflower {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "assertion failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace mayflower

#define MAYFLOWER_ASSERT(expr)                                         \
  (static_cast<bool>(expr)                                             \
       ? static_cast<void>(0)                                          \
       : ::mayflower::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define MAYFLOWER_ASSERT_MSG(expr, msg)                              \
  (static_cast<bool>(expr)                                           \
       ? static_cast<void>(0)                                        \
       : ::mayflower::assert_fail(#expr, __FILE__, __LINE__, (msg)))
