// Tiny command-line flag parser for the CLI tools.
//
// Accepts --key=value, --key value, and bare boolean switches (--verbose).
// Remaining arguments are positional. Typed getters fall back to defaults
// and record a parse error instead of throwing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mayflower {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  // Comma-separated doubles, e.g. --locality=0.5,0.3,0.2.
  std::vector<double> get_double_list(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // True if every flag given on the command line appears in `known`;
  // otherwise fills `unknown` with the first offender.
  bool validate(const std::vector<std::string>& known,
                std::string* unknown) const;

  // Errors accumulated by typed getters (bad integers etc.).
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> errors_;
};

}  // namespace mayflower
