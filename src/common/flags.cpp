#include "common/flags.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace mayflower {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --key value, unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("--" + name + " expects an integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return v;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("--" + name + " expects a number, got '" + it->second +
                      "'");
    return fallback;
  }
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  errors_.push_back("--" + name + " expects a boolean, got '" + v + "'");
  return fallback;
}

std::vector<double> Flags::get_double_list(const std::string& name) const {
  std::vector<double> out;
  const auto it = values_.find(name);
  if (it == values_.end()) return out;
  for (const std::string& part : split(it->second, ',')) {
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    if (end == nullptr || *end != '\0' || part.empty()) {
      errors_.push_back("--" + name + ": bad element '" + part + "'");
      continue;
    }
    out.push_back(v);
  }
  return out;
}

bool Flags::validate(const std::vector<std::string>& known,
                     std::string* unknown) const {
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (unknown != nullptr) *unknown = key;
      return false;
    }
  }
  return true;
}

}  // namespace mayflower
