// Deterministic pseudo-random number generation and the sampling
// distributions used by the workload generator (§6.1.1 of the paper):
// Poisson job arrivals, Zipf file popularity, and uniform placement draws.
//
// We use xoshiro256** seeded via splitmix64: fast, high quality, and —
// unlike std::mt19937 + std::*_distribution — bit-for-bit reproducible
// across standard libraries, which keeps experiment outputs stable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace mayflower {

// splitmix64: used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d61796670ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
      s += 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool bernoulli(double p) { return next_double() < p; }

  // Exponential inter-arrival time with rate lambda (events per unit time).
  double exponential(double lambda);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  // Pick an index according to `weights` (non-negative, not all zero).
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

// Zipf-distributed ranks over {0, .., n-1}: P(k) proportional to 1/(k+1)^s.
// The paper uses skew s = 1.1 for file read popularity (§6.1.1).
// Sampling is done by inverse transform over the precomputed CDF (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double skew() const { return skew_; }

  // Probability mass of rank k (for tests).
  double pmf(std::size_t k) const;

 private:
  double skew_ = 0.0;
  std::vector<double> cdf_;
};

// Open-loop Poisson arrival process: next() returns successive absolute
// arrival times (seconds) with exponential gaps at rate `lambda`.
class PoissonProcess {
 public:
  PoissonProcess(double lambda, std::uint64_t seed)
      : lambda_(lambda), rng_(seed) {
    MAYFLOWER_ASSERT_MSG(lambda > 0.0, "arrival rate must be positive");
  }

  double next() {
    now_ += rng_.exponential(lambda_);
    return now_;
  }

  double rate() const { return lambda_; }

 private:
  double lambda_;
  double now_ = 0.0;
  Rng rng_;
};

}  // namespace mayflower
