// RFC 4122 version-4 UUIDs. The dataserver names on-disk file directories by
// the file's UUID (§3.3.2 of the paper).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace mayflower {

class Rng;

class Uuid {
 public:
  Uuid() = default;  // nil UUID

  static Uuid generate(Rng& rng);

  // Parses the canonical 8-4-4-4-12 hex form; returns nil UUID on failure
  // (check with is_nil(); nil never round-trips from generate()).
  static Uuid parse(const std::string& text);

  std::string to_string() const;
  bool is_nil() const;

  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  friend auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

struct UuidHash {
  std::size_t operator()(const Uuid& u) const;
};

}  // namespace mayflower
