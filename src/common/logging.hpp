// Minimal leveled logger. Benchmarks run with LogLevel::kWarn so harness
// output stays parseable; tests can raise verbosity per-fixture.
#pragma once

#include <string_view>

namespace mayflower {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// printf-style; checked by the compiler.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define MAYFLOWER_LOG_DEBUG(...) ::mayflower::log(::mayflower::LogLevel::kDebug, __VA_ARGS__)
#define MAYFLOWER_LOG_INFO(...) ::mayflower::log(::mayflower::LogLevel::kInfo, __VA_ARGS__)
#define MAYFLOWER_LOG_WARN(...) ::mayflower::log(::mayflower::LogLevel::kWarn, __VA_ARGS__)
#define MAYFLOWER_LOG_ERROR(...) ::mayflower::log(::mayflower::LogLevel::kError, __VA_ARGS__)

}  // namespace mayflower
