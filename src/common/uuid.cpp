#include "common/uuid.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace mayflower {
namespace {

constexpr char kHex[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Uuid Uuid::generate(Rng& rng) {
  Uuid u;
  for (int i = 0; i < 16; i += 8) {
    const std::uint64_t word = rng.next_u64();
    std::memcpy(u.bytes_.data() + i, &word, 8);
  }
  u.bytes_[6] = static_cast<std::uint8_t>((u.bytes_[6] & 0x0f) | 0x40);  // v4
  u.bytes_[8] = static_cast<std::uint8_t>((u.bytes_[8] & 0x3f) | 0x80);  // RFC variant
  return u;
}

Uuid Uuid::parse(const std::string& text) {
  if (text.size() != 36) return {};
  Uuid u;
  std::size_t byte = 0;
  for (std::size_t i = 0; i < text.size();) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (text[i] != '-') return {};
      ++i;
      continue;
    }
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) return {};
    u.bytes_[byte++] = static_cast<std::uint8_t>((hi << 4) | lo);
    i += 2;
  }
  return u;
}

std::string Uuid::to_string() const {
  std::string out;
  out.reserve(36);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
    out.push_back(kHex[bytes_[i] >> 4]);
    out.push_back(kHex[bytes_[i] & 0x0f]);
  }
  return out;
}

bool Uuid::is_nil() const {
  for (auto b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

std::size_t UuidHash::operator()(const Uuid& u) const {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::memcpy(&a, u.bytes().data(), 8);
  std::memcpy(&b, u.bytes().data() + 8, 8);
  return static_cast<std::size_t>(splitmix64(a ^ splitmix64(b)));
}

}  // namespace mayflower
