// Write-path decisions: replication-chain planning and write-target ranking.
//
// A replicated append moves the same bytes over a CHAIN of hops
// (writer -> primary -> replica -> replica). The planner routes every hop
// against one NetworkView snapshot — hop i+1's selection sees hop i's
// committed bump, exactly like the second round of a §4.3 split read — and
// then sizes the chain as one jointly-scheduled unit: every hop's believed
// share is SETBW'd down to the chain bottleneck, the rate at which a
// cut-through pipeline actually moves (each relay forwards bytes as they
// stream in, so the chain finishes together at min over hops of b_i, the
// write-side mirror of the split-read "finish together" sizing).
//
// The ranking half is the placement primitive extracted from the historical
// Flowserver::best_write_target: score every candidate host as a home for a
// new replica, keep the tied-best band, let the caller break ties with its
// own seeded Rng. policy::WritePlacement implementations reuse it so the
// model-based ranking has exactly one definition.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "flowserver/selector.hpp"

namespace mayflower::flowserver {

// The tied-best band of `candidates` under `scores` (parallel arrays):
// every candidate whose score is within a relative 1e-9 tolerance of the
// best, original order preserved. Ties are common (an idle fabric offers
// every candidate the same share) and MUST break randomly downstream:
// deterministic ties would stack every file's replicas onto the same few
// hosts. Scores are strong-typed bandwidths so a caller cannot hand the
// ranking a byte count (or any other unit) by accident.
std::vector<net::NodeId> tied_best_targets(
    const std::vector<net::NodeId>& candidates,
    const std::vector<units::Bps>& scores);

// Model-based write-target ranking: each candidate scores the max-min share
// a new write flow from `writer` would get over its best path (writer-local
// candidates score the zero-hop rate). Returns the tied-best band.
std::vector<net::NodeId> rank_write_targets_by_model(
    const BandwidthModel& model, net::PathCache& paths, net::NodeId writer,
    const std::vector<net::NodeId>& candidates, const net::NetworkView& view);

// One planned hop of a replication chain.
struct ChainHopPlan {
  Candidate candidate;      // hop path: nodes[i] -> nodes[i+1]
  double planned_bps = 0.0;  // chain-bottleneck share the sizing assumed
};

// Plans the hop flows of one replication chain. Mirrors MultiReadPlanner's
// two pipelines: a committing variant for the legacy serial path and a
// read-only variant for the threaded snapshot path, decision-identical by
// construction.
class WriteChainPlanner {
 public:
  explicit WriteChainPlanner(ReplicaPathSelector& selector)
      : selector_(&selector) {}

  // Routes and commits hops nodes[0]->nodes[1]->... in order (write-through
  // to table AND `view`, so hop i+1 sees hop i), then SETBWs every hop to
  // the chain bottleneck. `cookies` must provide nodes.size()-1 ids; the
  // first plans.size() are consumed in order. An unreachable hop TRUNCATES
  // the chain: the routed prefix is returned and the fs layer degrades the
  // remaining hops to the settled-relay contract (short replicas are
  // repaired by re-replication, client acks never strand).
  std::vector<ChainHopPlan> plan_and_commit(
      net::NetworkView& view, const std::vector<net::NodeId>& nodes,
      units::Bytes bytes, const std::vector<sdn::Cookie>& cookies,
      sim::SimTime now, SelectStats* stats = nullptr);

  // Read-only variant for the threaded snapshot pipeline: plans against
  // `scratch` — a worker-private copy of the batch snapshot — inside a view
  // tentative scope rolled back before returning. The chosen hops and the
  // bottleneck share are decision-identical to plan_and_commit from the
  // same snapshot; the caller replays the commits serially via
  // commit_plans().
  std::vector<ChainHopPlan> plan_readonly(
      net::NetworkView& scratch, const std::vector<net::NodeId>& nodes,
      units::Bytes bytes, const std::vector<sdn::Cookie>& cookies,
      SelectStats* stats = nullptr) const;

  // Serial commit replay for plans produced by plan_readonly: the same
  // commit + SETBW transcript plan_and_commit writes, against the
  // authoritative table and the batch view.
  void commit_plans(net::NetworkView& view,
                    const std::vector<ChainHopPlan>& plans, units::Bytes bytes,
                    const std::vector<sdn::Cookie>& cookies, sim::SimTime now);

 private:
  ReplicaPathSelector* selector_;
};

}  // namespace mayflower::flowserver
