#include "flowserver/multiread.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mayflower::flowserver {

std::vector<SubflowPlan> MultiReadPlanner::plan_and_commit(
    net::NetworkView& view, net::NodeId client,
    const std::vector<net::NodeId>& replicas, double request_bytes,
    const std::vector<sdn::Cookie>& cookies, sim::SimTime now,
    SelectStats* stats) {
  MAYFLOWER_ASSERT(cookies.size() >= 2);

  auto best1 = selector_->select(view, client, replicas, request_bytes,
                                 stats);
  if (!best1.has_value()) return {};  // every replica currently unreachable

  // Commit subflow 1 with the full request size; in the single-read outcome
  // this is exactly the final state ("add a temporary flow in path p1 and
  // temporarily update the bandwidth shares", §4.3).
  selector_->commit(view, *best1, cookies[0], request_bytes, now);
  const double b1 = best1->est_bw_bps;

  // A zero-hop path cannot be beaten by adding a network subflow.
  if (!best1->path.links.empty()) {
    std::vector<net::NodeId> others;
    for (const net::NodeId r : replicas) {
      if (r != best1->replica) others.push_back(r);
    }
    if (!others.empty()) {
      const auto best2 =
          selector_->select(view, client, others, request_bytes, stats);
      if (best2.has_value() && !best2->path.links.empty()) {
        // Tentatively commit subflow 2 (it may bump subflow 1 on shared
        // links). The undo logs — table and view in lockstep — record only
        // the entries this commit touches, so an unprofitable split rolls
        // back in O(touched).
        selector_->begin_tentative(view);
        selector_->commit(view, *best2, cookies[1], request_bytes, now);
        // Subflow 1's adjusted share after subflow 2 lands. bumped holds at
        // most ONE entry per flow: flows_on_path deduplicates, and
        // reduced_share already mins over every link the two paths share —
        // a second match would mean the invariant broke and the shares
        // diverged, so assert it rather than silently taking the last one.
        double b1_adjusted = b1;
        bool matched = false;
        for (const auto& [cookie, bw] : best2->bumped) {
          if (cookie != cookies[0]) continue;
          MAYFLOWER_ASSERT_MSG(!matched,
                               "subflow 1 bumped twice by one candidate");
          matched = true;
          b1_adjusted = bw;
        }
        const double b2 = best2->est_bw_bps;
        const double combined = b1_adjusted + b2;
        if (combined > b1) {
          selector_->commit_tentative(view);
          const double s1 = request_bytes * b1_adjusted / combined;
          const double s2 = request_bytes - s1;
          selector_->setbw(view, cookies[0], b1_adjusted, now);
          selector_->resize(view, cookies[0], s1, now);
          selector_->resize(view, cookies[1], s2, now);

          std::vector<SubflowPlan> plans(2);
          plans[0].candidate = std::move(*best1);
          plans[0].bytes = s1;
          plans[0].planned_bps = b1_adjusted;
          plans[1].candidate = std::move(*best2);
          plans[1].bytes = s2;
          plans[1].planned_bps = b2;
          return plans;
        }
        // Rejected: undo subflow 2's registration and every share it bumped;
        // table and view are back to the single-read outcome.
        selector_->rollback_tentative(view);
      }
    }
  }

  std::vector<SubflowPlan> plans(1);
  plans[0].candidate = std::move(*best1);
  plans[0].bytes = request_bytes;
  plans[0].planned_bps = b1;
  return plans;
}

std::vector<SubflowPlan> MultiReadPlanner::plan_readonly(
    net::NetworkView& scratch, net::NodeId client,
    const std::vector<net::NodeId>& replicas, double request_bytes,
    const std::vector<sdn::Cookie>& cookies, SelectStats* stats) const {
  MAYFLOWER_ASSERT(cookies.size() >= 2);

  auto best1 =
      selector_->select(scratch, client, replicas, request_bytes, stats);
  if (!best1.has_value()) return {};

  std::vector<SubflowPlan> plans;
  const double b1 = best1->est_bw_bps;

  // Same decision procedure as plan_and_commit, but every mutation lands in
  // the scratch view's tentative scope and is rolled back before returning:
  // round 2 must see subflow 1's bump, and nothing else must see anything.
  scratch.begin_tentative();
  apply_candidate(scratch, *best1, cookies[0], request_bytes);

  if (!best1->path.links.empty()) {
    std::vector<net::NodeId> others;
    for (const net::NodeId r : replicas) {
      if (r != best1->replica) others.push_back(r);
    }
    if (!others.empty()) {
      const auto best2 =
          selector_->select(scratch, client, others, request_bytes, stats);
      if (best2.has_value() && !best2->path.links.empty()) {
        // Subflow 1's adjusted share if subflow 2 landed. best2 itself never
        // needs applying: the accept/reject test and the split sizing are
        // pure arithmetic over (b1_adjusted, b2).
        double b1_adjusted = b1;
        bool matched = false;
        for (const auto& [cookie, bw] : best2->bumped) {
          if (cookie != cookies[0]) continue;
          MAYFLOWER_ASSERT_MSG(!matched,
                               "subflow 1 bumped twice by one candidate");
          matched = true;
          b1_adjusted = bw;
        }
        const double b2 = best2->est_bw_bps;
        const double combined = b1_adjusted + b2;
        if (combined > b1) {
          const double s1 = request_bytes * b1_adjusted / combined;
          const double s2 = request_bytes - s1;
          plans.resize(2);
          plans[0].candidate = std::move(*best1);
          plans[0].bytes = s1;
          plans[0].planned_bps = b1_adjusted;
          plans[1].candidate = std::move(*best2);
          plans[1].bytes = s2;
          plans[1].planned_bps = b2;
        }
      }
    }
  }
  scratch.rollback_tentative();

  if (plans.empty()) {
    plans.resize(1);
    plans[0].candidate = std::move(*best1);
    plans[0].bytes = request_bytes;
    plans[0].planned_bps = b1;
  }
  return plans;
}

}  // namespace mayflower::flowserver
