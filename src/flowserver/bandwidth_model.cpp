#include "flowserver/bandwidth_model.hpp"

#include <algorithm>

#include "net/fair_share.hpp"

namespace mayflower::flowserver {

double BandwidthModel::link_share_with_extra(
    const net::NetworkView& view, net::LinkId link, double extra_demand,
    const net::NetworkView::Flow* report, double* report_share) const {
  // Indexed lookup: only the flows actually crossing `link`, in cookie
  // order, rather than a scan over the whole view.
  const auto flows = view.flows_on_link(link);
  std::vector<double> demands;
  demands.reserve(flows.size() + 1);
  std::size_t report_index = flows.size();  // sentinel
  for (std::size_t i = 0; i < flows.size(); ++i) {
    demands.push_back(flows[i]->bw_bps);
    if (report != nullptr && flows[i]->key == report->key) {
      report_index = i;
    }
  }
  demands.push_back(extra_demand);
  const std::vector<double> shares =
      net::waterfill_link(view.capacity_bps(link), demands);
  if (report_share != nullptr) {
    *report_share = report_index < flows.size() ? shares[report_index] : -1.0;
  }
  return shares.back();
}

double BandwidthModel::new_flow_share(const net::NetworkView& view,
                                      const net::Path& path) const {
  if (path.links.empty()) return zero_hop_bps_;
  double share = net::kInfiniteDemand;
  for (const net::LinkId l : path.links) {
    share = std::min(share, link_share_with_extra(view, l,
                                                  net::kInfiniteDemand,
                                                  nullptr, nullptr));
  }
  return share;
}

double BandwidthModel::reduced_share(const net::NetworkView& view,
                                     const net::NetworkView::Flow& f,
                                     const net::Path& path,
                                     double new_flow_bps) const {
  double share = f.bw_bps;
  for (const net::LinkId l : path.links) {
    if (!f.path.contains_link(l)) continue;
    double f_share = -1.0;
    link_share_with_extra(view, l, new_flow_bps, &f, &f_share);
    if (f_share >= 0.0) share = std::min(share, f_share);
  }
  return share;
}

}  // namespace mayflower::flowserver
