#include "flowserver/writechain.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace mayflower::flowserver {

std::vector<net::NodeId> tied_best_targets(
    const std::vector<net::NodeId>& candidates,
    const std::vector<units::Bps>& scores) {
  MAYFLOWER_ASSERT(!candidates.empty());
  MAYFLOWER_ASSERT(candidates.size() == scores.size());
  std::vector<net::NodeId> ties;
  double best_score = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double score = scores[i].value();
    const double tol = 1e-9 * (1.0 + best_score);
    if (ties.empty() || score > best_score + tol) {
      best_score = score;
      ties.assign(1, candidates[i]);
    } else if (score >= best_score - tol) {
      ties.push_back(candidates[i]);
    }
  }
  return ties;
}

std::vector<net::NodeId> rank_write_targets_by_model(
    const BandwidthModel& model, net::PathCache& paths, net::NodeId writer,
    const std::vector<net::NodeId>& candidates, const net::NetworkView& view) {
  std::vector<units::Bps> scores;
  scores.reserve(candidates.size());
  for (const net::NodeId candidate : candidates) {
    double share = 0.0;
    if (candidate == writer) {
      share = model.zero_hop_bps();
    } else {
      for (const net::Path& p : paths.get(writer, candidate)) {
        share = std::max(share, model.new_flow_share(view, p));
      }
    }
    scores.push_back(units::Bps{share});
  }
  return tied_best_targets(candidates, scores);
}

std::vector<ChainHopPlan> WriteChainPlanner::plan_and_commit(
    net::NetworkView& view, const std::vector<net::NodeId>& nodes,
    units::Bytes bytes, const std::vector<sdn::Cookie>& cookies,
    sim::SimTime now, SelectStats* stats) {
  MAYFLOWER_ASSERT(nodes.size() >= 2);
  MAYFLOWER_ASSERT(cookies.size() >= nodes.size() - 1);

  std::vector<ChainHopPlan> plans;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const net::NodeId from = nodes[i];
    const net::NodeId to = nodes[i + 1];
    MAYFLOWER_ASSERT_MSG(from != to, "chain hops must join distinct hosts");
    // selector paths run replica -> client, so the hop's source plays the
    // replica and its destination the client.
    const std::vector<net::NodeId> source{from};
    auto best = selector_->select(view, to, source, bytes.value(), stats);
    // Unreachable hop: truncate. Downstream hops could only be fed through
    // this one, so routing them anyway would plan flows no data ever rides.
    if (!best.has_value()) break;
    selector_->commit(view, *best, cookies[plans.size()], bytes.value(),
                      now);
    ChainHopPlan hop;
    hop.candidate = std::move(*best);
    plans.push_back(std::move(hop));
  }
  if (plans.empty()) return plans;

  // Joint chain sizing: a cut-through pipeline moves at its slowest hop, so
  // every hop's believed share drops to the bottleneck — the state a poll
  // would eventually report anyway, asserted up front like split sizing.
  double bottleneck = plans[0].candidate.est_bw_bps;
  for (const ChainHopPlan& hop : plans) {
    bottleneck = std::min(bottleneck, hop.candidate.est_bw_bps);
  }
  for (std::size_t i = 0; i < plans.size(); ++i) {
    plans[i].planned_bps = bottleneck;
    selector_->setbw(view, cookies[i], bottleneck, now);
  }
  return plans;
}

std::vector<ChainHopPlan> WriteChainPlanner::plan_readonly(
    net::NetworkView& scratch, const std::vector<net::NodeId>& nodes,
    units::Bytes bytes, const std::vector<sdn::Cookie>& cookies,
    SelectStats* stats) const {
  MAYFLOWER_ASSERT(nodes.size() >= 2);
  MAYFLOWER_ASSERT(cookies.size() >= nodes.size() - 1);

  // Same decision procedure as plan_and_commit, but every registration lands
  // in the scratch view's tentative scope and rolls back before returning:
  // hop i+1 must see hop i's bump, and nothing else must see anything.
  std::vector<ChainHopPlan> plans;
  scratch.begin_tentative();
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const net::NodeId from = nodes[i];
    const net::NodeId to = nodes[i + 1];
    MAYFLOWER_ASSERT_MSG(from != to, "chain hops must join distinct hosts");
    const std::vector<net::NodeId> source{from};
    auto best =
        selector_->select(scratch, to, source, bytes.value(), stats);
    if (!best.has_value()) break;
    apply_candidate(scratch, *best, cookies[plans.size()], bytes.value());
    ChainHopPlan hop;
    hop.candidate = std::move(*best);
    plans.push_back(std::move(hop));
  }
  scratch.rollback_tentative();
  if (plans.empty()) return plans;

  double bottleneck = plans[0].candidate.est_bw_bps;
  for (const ChainHopPlan& hop : plans) {
    bottleneck = std::min(bottleneck, hop.candidate.est_bw_bps);
  }
  for (ChainHopPlan& hop : plans) hop.planned_bps = bottleneck;
  return plans;
}

void WriteChainPlanner::commit_plans(net::NetworkView& view,
                                     const std::vector<ChainHopPlan>& plans,
                                     units::Bytes bytes,
                                     const std::vector<sdn::Cookie>& cookies,
                                     sim::SimTime now) {
  MAYFLOWER_ASSERT(cookies.size() >= plans.size());
  // Exactly plan_and_commit's mutation transcript: register every hop at
  // its estimated share (stale-share clamp included), then the bottleneck
  // SETBW pass.
  for (std::size_t i = 0; i < plans.size(); ++i) {
    selector_->commit(view, plans[i].candidate, cookies[i], bytes.value(),
                      now);
  }
  for (std::size_t i = 0; i < plans.size(); ++i) {
    selector_->setbw(view, cookies[i], plans[i].planned_bps, now);
  }
}

}  // namespace mayflower::flowserver
