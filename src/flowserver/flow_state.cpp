#include "flowserver/flow_state.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mayflower::flowserver {

void FlowStateTable::add(sdn::Cookie cookie, net::Path path,
                         double size_bytes, double est_bw_bps,
                         sim::SimTime now) {
  common::MutexLock lock(mu_);
  MAYFLOWER_ASSERT_MSG(flows_.find(cookie) == flows_.end(),
                       "cookie already tracked");
  MAYFLOWER_ASSERT(size_bytes > 0.0 && est_bw_bps > 0.0);
  record_undo(cookie);
  ++version_;
  TrackedFlow f;
  f.cookie = cookie;
  f.path = std::move(path);
  f.size_bytes = size_bytes;
  f.remaining_bytes = size_bytes;
  f.bw_bps = est_bw_bps;
  f.last_poll_time = now;
  if (freeze_enabled_) {
    f.frozen = true;
    f.freeze_until = now + sim::SimTime::from_seconds(size_bytes / est_bw_bps);
  }
  const auto it = flows_.emplace(cookie, std::move(f)).first;
  index_.add(cookie, it->second.path.links);
  if (trace_ != nullptr) {
    trace_->flow_planned(cookie, now.seconds(), size_bytes, est_bw_bps);
  }
}

void FlowStateTable::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    trace_ = nullptr;
    freeze_suppressed_ = obs::Counter{};
    return;
  }
  trace_ = &hub->trace;
  freeze_suppressed_ =
      hub->metrics.counter("flowserver.table.freeze_suppressed");
}

std::size_t FlowStateTable::frozen_count(sim::SimTime now) const {
  common::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [cookie, f] : flows_) {
    if (f.frozen && now <= f.freeze_until) ++n;
  }
  return n;
}

void FlowStateTable::drop(sdn::Cookie cookie) {
  common::MutexLock lock(mu_);
  const auto it = flows_.find(cookie);
  if (it == flows_.end()) return;
  record_undo(cookie);
  ++version_;
  index_.remove(cookie, it->second.path.links);
  flows_.erase(it);
}

TrackedFlow* FlowStateTable::find_mutable(sdn::Cookie cookie) {
  const auto it = flows_.find(cookie);
  return it == flows_.end() ? nullptr : &it->second;
}

const TrackedFlow* FlowStateTable::find(sdn::Cookie cookie) const {
  common::MutexLock lock(mu_);
  const auto it = flows_.find(cookie);
  return it == flows_.end() ? nullptr : &it->second;
}

void FlowStateTable::set_bw(sdn::Cookie cookie, double bw_bps,
                            sim::SimTime now) {
  common::MutexLock lock(mu_);
  TrackedFlow* f = find_mutable(cookie);
  MAYFLOWER_ASSERT_MSG(f != nullptr, "set_bw on unknown flow");
  MAYFLOWER_ASSERT(bw_bps > 0.0);
  record_undo(cookie);
  ++version_;
  f->bw_bps = bw_bps;
  if (freeze_enabled_) {
    f->frozen = true;
    f->freeze_until =
        now + sim::SimTime::from_seconds(f->remaining_bytes / bw_bps);
  }
  if (trace_ != nullptr) trace_->flow_bw_set(cookie, bw_bps);
}

void FlowStateTable::resize(sdn::Cookie cookie, double new_size_bytes,
                            sim::SimTime now) {
  common::MutexLock lock(mu_);
  TrackedFlow* f = find_mutable(cookie);
  MAYFLOWER_ASSERT_MSG(f != nullptr, "resize on unknown flow");
  MAYFLOWER_ASSERT(new_size_bytes > 0.0);
  record_undo(cookie);
  ++version_;
  f->size_bytes = new_size_bytes;
  f->remaining_bytes = new_size_bytes;
  if (freeze_enabled_ && f->frozen) {
    f->freeze_until =
        now + sim::SimTime::from_seconds(new_size_bytes / f->bw_bps);
  }
  if (trace_ != nullptr) trace_->flow_resized(cookie, new_size_bytes);
}

void FlowStateTable::update_from_stats(sdn::Cookie cookie,
                                       double cumulative_bytes,
                                       sim::SimTime now) {
  common::MutexLock lock(mu_);
  TrackedFlow* f = find_mutable(cookie);
  if (f == nullptr) return;  // raced with a drop; counters can arrive late
  record_undo(cookie);
  ++version_;

  // Remaining size always tracks the counter (§4: "remaining sizes of the
  // existing flows are measured through flow stats"), clamped at zero when
  // a sample overshoots the tracked size (multi-read resize can shrink the
  // size below what the counter already carried).
  f->remaining_bytes =
      std::max(f->size_bytes - cumulative_bytes, 0.0);

  const double dt = (now - f->last_poll_time).seconds();
  const double delta = cumulative_bytes - f->last_poll_bytes;
  f->last_poll_bytes = cumulative_bytes;
  f->last_poll_time = now;
  if (dt <= 0.0) return;

  const bool accept = !f->frozen || now > f->freeze_until;
  if (accept) {
    const double measured = delta / dt;
    if (measured > 0.0) {
      f->bw_bps = measured;
    }
    f->frozen = false;
  } else {
    // UPDATEBW suppressed: the frozen estimate outranks the measurement.
    ++freeze_suppressed_total_;
    freeze_suppressed_.inc();
    if (trace_ != nullptr) trace_->freeze_hit(cookie);
  }
}

std::vector<const TrackedFlow*> FlowStateTable::flows_on_link(
    net::LinkId link) const {
  common::MutexLock lock(mu_);
  std::vector<const TrackedFlow*> out;
  const std::vector<net::LinkIndex::Key>& keys = index_.on_link(link);
  out.reserve(keys.size());
  for (const net::LinkIndex::Key k : keys) {
    out.push_back(&flows_.at(k));
  }
  return out;
}

std::vector<const TrackedFlow*> FlowStateTable::flows_on_path(
    const net::Path& path) const {
  common::MutexLock lock(mu_);
  std::vector<const TrackedFlow*> out;
  const std::vector<net::LinkIndex::Key> keys = index_.on_links(path.links);
  out.reserve(keys.size());
  for (const net::LinkIndex::Key k : keys) {
    out.push_back(&flows_.at(k));
  }
  return out;
}

void FlowStateTable::begin_tentative() {
  common::MutexLock lock(mu_);
  MAYFLOWER_ASSERT_MSG(!tentative_, "tentative scopes do not nest");
  tentative_ = true;
  undo_.clear();
}

void FlowStateTable::commit_tentative() {
  common::MutexLock lock(mu_);
  MAYFLOWER_ASSERT_MSG(tentative_, "no tentative scope open");
  tentative_ = false;
  undo_.clear();
}

void FlowStateTable::rollback_tentative() {
  common::MutexLock lock(mu_);
  MAYFLOWER_ASSERT_MSG(tentative_, "no tentative scope open");
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    auto& [cookie, prior] = *it;
    const auto cur = flows_.find(cookie);
    if (cur != flows_.end()) {
      index_.remove(cookie, cur->second.path.links);
      flows_.erase(cur);
    }
    if (prior.has_value()) {
      const auto ins = flows_.emplace(cookie, std::move(*prior)).first;
      index_.add(cookie, ins->second.path.links);
    } else if (trace_ != nullptr) {
      // The scope inserted this entry; rolling back abandons the planned
      // flow (a rejected multi-read leg) — close its trace record.
      trace_->flow_abandoned(cookie);
    }
  }
  tentative_ = false;
  undo_.clear();
  ++version_;
}

void FlowStateTable::snapshot_into(net::NetworkView& view) const {
  common::MutexLock lock(mu_);
  for (const auto& [cookie, f] : flows_) {
    net::NetworkView::Flow v;
    v.key = cookie;
    v.path = f.path;
    v.size_bytes = f.size_bytes;
    v.remaining_bytes = f.remaining_bytes;
    v.bw_bps = f.bw_bps;
    view.load_flow(std::move(v));
  }
}

void FlowStateTable::record_undo(sdn::Cookie cookie) {
  if (!tentative_) return;
  for (const auto& [seen, prior] : undo_) {
    if (seen == cookie) return;  // first-touch state already captured
  }
  const auto it = flows_.find(cookie);
  if (it == flows_.end()) {
    undo_.emplace_back(cookie, std::nullopt);
  } else {
    undo_.emplace_back(cookie, it->second);
  }
}

}  // namespace mayflower::flowserver
