#include "flowserver/flow_state.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/assert.hpp"

namespace mayflower::flowserver {

FlowStateTable::FlowStateTable() {
  shards_.push_back(std::make_unique<Shard>());
}

void FlowStateTable::set_shard_map(net::ShardMap map) {
  MAYFLOWER_ASSERT_MSG(size() == 0 && !tentative_.load(),
                       "install the shard map before tracking flows");
  shard_map_ = std::move(map);
  shards_.clear();
  for (std::uint32_t s = 0; s < shard_map_.shard_count(); ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  common::MutexLock lock(route_mu_);
  route_.clear();
}

FlowStateTable::Shard* FlowStateTable::shard_for(sdn::Cookie cookie) const {
  if (shards_.size() == 1) return shards_[0].get();
  common::MutexLock lock(route_mu_);
  const auto it = route_.find(cookie);
  return it == route_.end() ? nullptr : shards_[it->second].get();
}

void FlowStateTable::add(sdn::Cookie cookie, net::Path path,
                         double size_bytes, double est_bw_bps,
                         sim::SimTime now) {
  const std::uint32_t s = shard_map_.shard_of_path(path);
  if (shards_.size() > 1) {
    common::MutexLock route_lock(route_mu_);
    MAYFLOWER_ASSERT_MSG(route_.find(cookie) == route_.end(),
                         "cookie already tracked");
    route_.emplace(cookie, s);
  }
  Shard& sh = *shards_[s];
  common::MutexLock lock(sh.mu);
  MAYFLOWER_ASSERT_MSG(sh.flows.find(cookie) == sh.flows.end(),
                       "cookie already tracked");
  MAYFLOWER_ASSERT(size_bytes > 0.0 && est_bw_bps > 0.0);
  record_undo(sh, cookie);
  ++sh.version;
  TrackedFlow f;
  f.cookie = cookie;
  f.path = std::move(path);
  f.size_bytes = size_bytes;
  f.remaining_bytes = size_bytes;
  f.bw_bps = est_bw_bps;
  f.last_poll_time = now;
  if (freeze_enabled_) {
    f.frozen = true;
    f.freeze_until = now + sim::SimTime::from_seconds(size_bytes / est_bw_bps);
  }
  const auto it = sh.flows.emplace(cookie, std::move(f)).first;
  sh.index.add(cookie, it->second.path.links);
  if (trace_ != nullptr) {
    trace_->flow_planned(cookie, now.seconds(), size_bytes, est_bw_bps);
  }
}

void FlowStateTable::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    trace_ = nullptr;
    freeze_suppressed_ = obs::Counter{};
    return;
  }
  trace_ = &hub->trace;
  freeze_suppressed_ =
      hub->metrics.counter("flowserver.table.freeze_suppressed");
}

std::size_t FlowStateTable::frozen_count(sim::SimTime now) const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    for (const auto& [cookie, f] : sh->flows) {
      if (f.frozen && now <= f.freeze_until) ++n;
    }
  }
  return n;
}

std::uint64_t FlowStateTable::freeze_suppressed_total() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    n += sh->freeze_suppressed;
  }
  return n;
}

void FlowStateTable::drop(sdn::Cookie cookie) {
  Shard* sh = shard_for(cookie);
  if (sh == nullptr) return;
  {
    common::MutexLock lock(sh->mu);
    const auto it = sh->flows.find(cookie);
    if (it == sh->flows.end()) return;
    record_undo(*sh, cookie);
    ++sh->version;
    sh->index.remove(cookie, it->second.path.links);
    sh->flows.erase(it);
  }
  if (shards_.size() > 1) {
    common::MutexLock route_lock(route_mu_);
    route_.erase(cookie);
  }
}

const TrackedFlow* FlowStateTable::find(sdn::Cookie cookie) const {
  const Shard* sh = shard_for(cookie);
  if (sh == nullptr) return nullptr;
  common::MutexLock lock(sh->mu);
  const auto it = sh->flows.find(cookie);
  return it == sh->flows.end() ? nullptr : &it->second;
}

std::size_t FlowStateTable::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    n += sh->flows.size();
  }
  return n;
}

std::uint64_t FlowStateTable::version() const {
  std::uint64_t v = 0;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    v += sh->version;
  }
  return v;
}

std::uint64_t FlowStateTable::shard_version(std::uint32_t s) const {
  MAYFLOWER_ASSERT(s < shards_.size());
  common::MutexLock lock(shards_[s]->mu);
  return shards_[s]->version;
}

void FlowStateTable::setbw(sdn::Cookie cookie, double bw_bps,
                            sim::SimTime now) {
  Shard* sh = shard_for(cookie);
  MAYFLOWER_ASSERT_MSG(sh != nullptr, "setbw on unknown flow");
  common::MutexLock lock(sh->mu);
  const auto it = sh->flows.find(cookie);
  MAYFLOWER_ASSERT_MSG(it != sh->flows.end(), "setbw on unknown flow");
  MAYFLOWER_ASSERT(bw_bps > 0.0);
  record_undo(*sh, cookie);
  ++sh->version;
  TrackedFlow& f = it->second;
  f.bw_bps = bw_bps;
  if (freeze_enabled_) {
    f.frozen = true;
    f.freeze_until =
        now + sim::SimTime::from_seconds(f.remaining_bytes / bw_bps);
  }
  if (trace_ != nullptr) trace_->flow_bw_set(cookie, bw_bps);
}

void FlowStateTable::resize(sdn::Cookie cookie, double new_size_bytes,
                            sim::SimTime now) {
  Shard* sh = shard_for(cookie);
  MAYFLOWER_ASSERT_MSG(sh != nullptr, "resize on unknown flow");
  common::MutexLock lock(sh->mu);
  const auto it = sh->flows.find(cookie);
  MAYFLOWER_ASSERT_MSG(it != sh->flows.end(), "resize on unknown flow");
  MAYFLOWER_ASSERT(new_size_bytes > 0.0);
  record_undo(*sh, cookie);
  ++sh->version;
  TrackedFlow& f = it->second;
  f.size_bytes = new_size_bytes;
  f.remaining_bytes = new_size_bytes;
  if (freeze_enabled_ && f.frozen) {
    f.freeze_until =
        now + sim::SimTime::from_seconds(new_size_bytes / f.bw_bps);
  }
  if (trace_ != nullptr) trace_->flow_resized(cookie, new_size_bytes);
}

void FlowStateTable::update_from_stats(sdn::Cookie cookie,
                                       double cumulative_bytes,
                                       sim::SimTime now) {
  Shard* sh = shard_for(cookie);
  if (sh == nullptr) return;  // raced with a drop; counters can arrive late
  common::MutexLock lock(sh->mu);
  const auto it = sh->flows.find(cookie);
  if (it == sh->flows.end()) return;
  record_undo(*sh, cookie);
  ++sh->version;
  TrackedFlow& f = it->second;

  // Remaining size always tracks the counter (§4: "remaining sizes of the
  // existing flows are measured through flow stats"), clamped at zero when
  // a sample overshoots the tracked size (multi-read resize can shrink the
  // size below what the counter already carried).
  f.remaining_bytes = std::max(f.size_bytes - cumulative_bytes, 0.0);

  const double dt = (now - f.last_poll_time).seconds();
  const double delta = cumulative_bytes - f.last_poll_bytes;
  f.last_poll_bytes = cumulative_bytes;
  f.last_poll_time = now;
  if (dt <= 0.0) return;

  const bool accept = !f.frozen || now > f.freeze_until;
  if (accept) {
    const double measured = delta / dt;
    if (measured > 0.0) {
      f.bw_bps = measured;
    }
    f.frozen = false;
  } else {
    // UPDATEBW suppressed: the frozen estimate outranks the measurement.
    ++sh->freeze_suppressed;
    freeze_suppressed_.inc();
    if (trace_ != nullptr) trace_->freeze_hit(cookie);
  }
}

std::vector<const TrackedFlow*> FlowStateTable::collect_sorted(
    std::vector<std::pair<sdn::Cookie, const TrackedFlow*>> hits) const {
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<const TrackedFlow*> out;
  out.reserve(hits.size());
  for (const auto& [cookie, f] : hits) out.push_back(f);
  return out;
}

std::vector<const TrackedFlow*> FlowStateTable::flows_on_link(
    net::LinkId link) const {
  if (shards_.size() == 1) {
    const Shard& sh = *shards_[0];
    common::MutexLock lock(sh.mu);
    std::vector<const TrackedFlow*> out;
    const std::vector<net::LinkIndex::Key>& keys = sh.index.on_link(link);
    out.reserve(keys.size());
    for (const net::LinkIndex::Key k : keys) {
      out.push_back(&sh.flows.at(k));
    }
    return out;
  }
  // Core/agg links carry flows from many shards; each shard's index keeps
  // its keys ascending, so a merge-and-sort restores the global cookie
  // order the unsharded table returned.
  std::vector<std::pair<sdn::Cookie, const TrackedFlow*>> hits;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    for (const net::LinkIndex::Key k : sh->index.on_link(link)) {
      hits.emplace_back(k, &sh->flows.at(k));
    }
  }
  return collect_sorted(std::move(hits));
}

std::vector<const TrackedFlow*> FlowStateTable::flows_on_path(
    const net::Path& path) const {
  if (shards_.size() == 1) {
    const Shard& sh = *shards_[0];
    common::MutexLock lock(sh.mu);
    std::vector<const TrackedFlow*> out;
    const std::vector<net::LinkIndex::Key> keys =
        sh.index.on_links(path.links);
    out.reserve(keys.size());
    for (const net::LinkIndex::Key k : keys) {
      out.push_back(&sh.flows.at(k));
    }
    return out;
  }
  std::vector<std::pair<sdn::Cookie, const TrackedFlow*>> hits;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    for (const net::LinkIndex::Key k : sh->index.on_links(path.links)) {
      hits.emplace_back(k, &sh->flows.at(k));
    }
  }
  return collect_sorted(std::move(hits));
}

void FlowStateTable::begin_tentative() {
  MAYFLOWER_ASSERT_MSG(!tentative_.load(), "tentative scopes do not nest");
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    sh->undo.clear();
  }
  tentative_.store(true);
}

void FlowStateTable::commit_tentative() {
  MAYFLOWER_ASSERT_MSG(tentative_.load(), "no tentative scope open");
  tentative_.store(false);
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    sh->undo.clear();
  }
}

void FlowStateTable::rollback_tentative() {
  MAYFLOWER_ASSERT_MSG(tentative_.load(), "no tentative scope open");
  // shard id, cookie, present-after-restore: route fixups applied below.
  std::vector<std::tuple<std::uint32_t, sdn::Cookie, bool>> route_fix;
  bool touched = false;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    common::MutexLock lock(sh.mu);
    if (sh.undo.empty()) continue;
    touched = true;
    for (auto it = sh.undo.rbegin(); it != sh.undo.rend(); ++it) {
      auto& [cookie, prior] = *it;
      const auto cur = sh.flows.find(cookie);
      if (cur != sh.flows.end()) {
        sh.index.remove(cookie, cur->second.path.links);
        sh.flows.erase(cur);
      }
      if (prior.has_value()) {
        const auto ins = sh.flows.emplace(cookie, std::move(*prior)).first;
        sh.index.add(cookie, ins->second.path.links);
      } else if (trace_ != nullptr) {
        // The scope inserted this entry; rolling back abandons the planned
        // flow (a rejected multi-read leg) — close its trace record.
        trace_->flow_abandoned(cookie);
      }
      if (shards_.size() > 1) {
        route_fix.emplace_back(s, cookie, prior.has_value());
      }
    }
    ++sh.version;  // only shards the scope touched move
    sh.undo.clear();
  }
  if (!touched) {
    // Legacy contract: a rollback always advances the table version, even
    // when the scope mutated nothing.
    common::MutexLock lock(shards_[0]->mu);
    ++shards_[0]->version;
  }
  if (!route_fix.empty()) {
    common::MutexLock route_lock(route_mu_);
    for (const auto& [s, cookie, present] : route_fix) {
      if (present) {
        route_[cookie] = s;
      } else {
        route_.erase(cookie);
      }
    }
  }
  tentative_.store(false);
}

std::size_t FlowStateTable::tentative_touched() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    n += sh->undo.size();
  }
  return n;
}

void FlowStateTable::snapshot_into(net::NetworkView& view) const {
  for (const auto& sh : shards_) {
    common::MutexLock lock(sh->mu);
    for (const auto& [cookie, f] : sh->flows) {
      net::NetworkView::Flow v;
      v.key = cookie;
      v.path = f.path;
      v.size_bytes = f.size_bytes;
      v.remaining_bytes = f.remaining_bytes;
      v.bw_bps = f.bw_bps;
      view.load_flow(std::move(v));
    }
  }
}

void FlowStateTable::snapshot_shard_into(net::NetworkView& view,
                                         std::uint32_t s) const {
  MAYFLOWER_ASSERT(s < shards_.size());
  const Shard& sh = *shards_[s];
  common::MutexLock lock(sh.mu);
  for (const auto& [cookie, f] : sh.flows) {
    net::NetworkView::Flow v;
    v.key = cookie;
    v.path = f.path;
    v.size_bytes = f.size_bytes;
    v.remaining_bytes = f.remaining_bytes;
    v.bw_bps = f.bw_bps;
    view.load_flow(std::move(v));
  }
}

void FlowStateTable::record_undo(Shard& sh, sdn::Cookie cookie) {
  if (!tentative_.load()) return;
  for (const auto& [seen, prior] : sh.undo) {
    if (seen == cookie) return;  // first-touch state already captured
  }
  const auto it = sh.flows.find(cookie);
  if (it == sh.flows.end()) {
    sh.undo.emplace_back(cookie, std::nullopt);
  } else {
    sh.undo.emplace_back(cookie, it->second);
  }
}

}  // namespace mayflower::flowserver
