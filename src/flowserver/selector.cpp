#include "flowserver/selector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mayflower::flowserver {

Candidate evaluate_path(const BandwidthModel& model,
                        const FlowStateTable& table, net::NodeId replica,
                        const net::Path& path, double request_bytes) {
  MAYFLOWER_ASSERT(request_bytes > 0.0);
  Candidate c;
  c.replica = replica;
  c.path = path;
  c.est_bw_bps = model.new_flow_share(path);
  MAYFLOWER_ASSERT_MSG(c.est_bw_bps > 0.0, "estimated share must be positive");
  c.cost.own_time = request_bytes / c.est_bw_bps;

  // flows_on_path is indexed (union of per-link flow sets, cookie order), so
  // the impact term costs O(flows actually sharing the path), not O(table).
  for (const TrackedFlow* f : table.flows_on_path(path)) {
    const double cur = f->bw_bps;
    const double reduced = model.reduced_share(*f, path, c.est_bw_bps);
    if (reduced < cur) {
      const double r = f->remaining_bytes;
      c.cost.impact += r / reduced - r / cur;
      c.bumped.emplace_back(f->cookie, reduced);
    }
  }
  c.cost.total = c.cost.own_time + c.cost.impact;
  return c;
}

std::optional<Candidate> ReplicaPathSelector::select(
    net::NodeId client, const std::vector<net::NodeId>& replicas,
    double request_bytes, SelectStats* stats) const {
  std::optional<Candidate> best;
  for (const net::NodeId replica : replicas) {
    // Data flows replica -> client; paths are enumerated in that direction.
    for (const net::Path& p : paths_->get(replica, client)) {
      if (path_filter_ && !path_filter_(p)) continue;
      Candidate c =
          evaluate_path(model_, *table_, replica, p, request_bytes);
      if (stats != nullptr) ++stats->candidates_evaluated;
      if (!impact_aware_) c.cost.total = c.cost.own_time;
      if (!best.has_value() || c.cost.total < best->cost.total) {
        best = std::move(c);
      }
    }
  }
  return best;
}

void ReplicaPathSelector::commit(const Candidate& chosen, sdn::Cookie cookie,
                                 double request_bytes, sim::SimTime now) {
  for (const auto& [bumped_cookie, new_bw] : chosen.bumped) {
    const TrackedFlow* f = table_->find(bumped_cookie);
    if (f == nullptr) continue;  // finished between select() and commit()
    // The reduced share was computed from the table as of select(). A stats
    // poll (or another commit) interleaved since then may have *lowered* the
    // flow's share below our estimate; SETBW must never raise a flow above
    // what the fabric currently gives it, so clamp to the fresher value.
    table_->set_bw(bumped_cookie, std::min(f->bw_bps, new_bw), now);
  }
  table_->add(cookie, chosen.path, request_bytes, chosen.est_bw_bps, now);
}

}  // namespace mayflower::flowserver
