#include "flowserver/selector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mayflower::flowserver {

Candidate evaluate_path(const BandwidthModel& model,
                        const net::NetworkView& view, net::NodeId replica,
                        const net::Path& path, double request_bytes) {
  MAYFLOWER_ASSERT(request_bytes > 0.0);
  Candidate c;
  c.replica = replica;
  c.path = path;
  c.est_bw_bps = model.new_flow_share(view, path);
  MAYFLOWER_ASSERT_MSG(c.est_bw_bps > 0.0, "estimated share must be positive");
  c.cost.own_time = request_bytes / c.est_bw_bps;

  // flows_on_path is indexed (union of per-link flow sets, cookie order), so
  // the impact term costs O(flows actually sharing the path), not O(table).
  for (const net::NetworkView::Flow* f : view.flows_on_path(path)) {
    const double cur = f->bw_bps;
    const double reduced = model.reduced_share(view, *f, path, c.est_bw_bps);
    if (reduced < cur) {
      const double r = f->remaining_bytes;
      c.cost.impact += r / reduced - r / cur;
      c.bumped.emplace_back(f->key, reduced);
    }
  }
  c.cost.total = c.cost.own_time + c.cost.impact;
  return c;
}

void apply_candidate(net::NetworkView& view, const Candidate& chosen,
                     sdn::Cookie cookie, double request_bytes) {
  for (const auto& [bumped_cookie, new_bps] : chosen.bumped) {
    if (view.find(bumped_cookie) != nullptr) {
      view.set_flow_bps(bumped_cookie, new_bps);
    }
  }
  view.add_flow(cookie, chosen.path, request_bytes, chosen.est_bw_bps);
}

net::NetworkView make_decision_view(const net::Topology& topo,
                                    const FlowStateTable& table,
                                    std::uint64_t epoch,
                                    sim::SimTime built_at) {
  net::NetworkView view;
  view.reset_links(topo);
  table.snapshot_into(view);
  view.stamp(epoch, built_at);
  return view;
}

std::optional<Candidate> ReplicaPathSelector::select(
    const net::NetworkView& view, net::NodeId client,
    const std::vector<net::NodeId>& replicas, double request_bytes,
    SelectStats* stats) const {
  std::optional<Candidate> best;
  for (const net::NodeId replica : replicas) {
    // Data flows replica -> client; paths are enumerated in that direction.
    for (const net::Path& p : paths_->get(replica, client)) {
      if (!view.path_alive(p)) continue;
      Candidate c = evaluate_path(model_, view, replica, p, request_bytes);
      if (stats != nullptr) ++stats->candidates_evaluated;
      if (!impact_aware_) c.cost.total = c.cost.own_time;
      if (!best.has_value() || c.cost.total < best->cost.total) {
        best = std::move(c);
      }
    }
  }
  return best;
}

void ReplicaPathSelector::commit(net::NetworkView& view,
                                 const Candidate& chosen, sdn::Cookie cookie,
                                 double request_bytes, sim::SimTime now) {
  for (const auto& [bumped_cookie, new_bps] : chosen.bumped) {
    const TrackedFlow* f = table_->find(bumped_cookie);
    if (f == nullptr) continue;  // finished between select() and commit()
    // The reduced share was computed from the snapshot the selection read. A
    // stats poll (or another commit) interleaved since the snapshot was
    // taken may have *lowered* the flow's share below our estimate; SETBW
    // must never raise a flow above what the fabric currently gives it, so
    // clamp against the authoritative table, not the (possibly stale) view.
    const double clamped = std::min(f->bw_bps, new_bps);
    table_->setbw(bumped_cookie, clamped, now);
    if (view.find(bumped_cookie) != nullptr) {
      view.set_flow_bps(bumped_cookie, clamped);
    }
  }
  table_->add(cookie, chosen.path, request_bytes, chosen.est_bw_bps, now);
  view.add_flow(cookie, chosen.path, request_bytes, chosen.est_bw_bps);
}

void ReplicaPathSelector::setbw(net::NetworkView& view, sdn::Cookie cookie,
                                 double bw_bps, sim::SimTime now) {
  table_->setbw(cookie, bw_bps, now);
  view.set_flow_bps(cookie, bw_bps);
}

void ReplicaPathSelector::resize(net::NetworkView& view, sdn::Cookie cookie,
                                 double new_size_bytes, sim::SimTime now) {
  table_->resize(cookie, new_size_bytes, now);
  view.resize_flow(cookie, new_size_bytes);
}

void ReplicaPathSelector::begin_tentative(net::NetworkView& view) {
  table_->begin_tentative();
  view.begin_tentative();
}

void ReplicaPathSelector::commit_tentative(net::NetworkView& view) {
  table_->commit_tentative();
  view.commit_tentative();
}

void ReplicaPathSelector::rollback_tentative(net::NetworkView& view) {
  table_->rollback_tentative();
  view.rollback_tentative();
}

}  // namespace mayflower::flowserver
