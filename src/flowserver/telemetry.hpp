// Adaptive, budgeted flow telemetry (the Floware direction: balanced,
// budget-bound flow monitoring in SDNs). The legacy poll sweep applies every
// flow's byte-counter sample every interval — cost linear in flow count. This
// layer classifies flows as ELEPHANTS or MICE from per-poll byte-count deltas
// (Hedera's 10%-of-edge-capacity rule, with a hysteresis band so borderline
// flows don't flap), applies elephant samples every collection cycle, defers
// mouse samples to a configurable long period, and caps the samples applied
// in any one staggered tick at a controller-side budget.
//
// Deferring a sample costs nothing at the switch — byte counters are
// cumulative, so the next applied sample simply measures the rate over the
// whole deferred window. What it costs is belief freshness, and that cost is
// exactly what bench/micro_telemetry measures via the estimator audit.
//
// The class is pure bookkeeping: it never touches the fabric or the table,
// so the decision/state boundary holds and unit tests can drive it with
// synthetic rates. With the default config (no budget, mouse period 1) the
// layer reports inactive and the Flowserver's sweep takes the legacy path
// untouched — byte-identical decisions and metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "sdn/switch.hpp"

namespace mayflower::flowserver {

struct TelemetryConfig {
  // Max measurement samples applied per staggered poll tick; 0 = unlimited.
  // With poll_groups G the per-cycle ceiling is budget x G — the budget is
  // the per-tick knob precisely so the staggered sweep spreads a cycle's
  // sample load evenly across its ticks.
  std::size_t samples_budget = 0;
  // A mouse's samples are applied every this-many collection cycles
  // (phase-staggered by cookie so the mouse sweep is balanced, not bursty).
  // 1 = every cycle (legacy cadence).
  std::size_t mouse_period = 1;
  // Promote to elephant at >= this fraction of the flow's edge (host uplink)
  // capacity — Hedera's 10% rule.
  double elephant_fraction = 0.10;
  // Demote to mouse only below this smaller fraction (hysteresis band
  // between the two thresholds holds the current class)...
  double mouse_fraction = 0.05;
  // ...and only after this many consecutive below-band samples.
  std::size_t demote_after = 2;
};

class AdaptiveTelemetry {
 public:
  enum class FlowClass : std::uint8_t { kElephant, kMouse };
  enum class Verdict : std::uint8_t { kApply, kDeferMouse, kDeferBudget };

  explicit AdaptiveTelemetry(TelemetryConfig config);

  // False with the default config: the caller must then keep the legacy
  // full-rate sweep (and pays zero classification overhead).
  bool active() const {
    return config_.samples_budget > 0 || config_.mouse_period > 1;
  }

  // Opens one staggered poll tick: resets the per-tick budget. `cycle` is
  // the collection-cycle index ((ticks - 1) / poll_groups).
  void begin_tick(std::uint64_t cycle);

  // Decides one offered measurement sample. `window_rate_bps` is the flow's
  // byte delta over the window since its last APPLIED sample;
  // `edge_capacity_bps` is its host-uplink capacity (<= 0: unknown, class is
  // left untouched). kApply consumes budget and updates the classification;
  // both defer verdicts leave the flow's poll bookkeeping untouched so the
  // next applied sample integrates over the longer window.
  Verdict admit(sdn::Cookie cookie, double window_rate_bps,
                double edge_capacity_bps);

  // Drops a finished flow's classification state.
  void forget(sdn::Cookie cookie);

  // --- accounting (tests, metrics, report lines) -------------------------
  std::size_t tracked() const { return state_.size(); }
  std::size_t elephants() const { return elephants_; }
  std::size_t mice() const { return state_.size() - elephants_; }
  std::size_t applied_this_tick() const { return applied_this_tick_; }
  std::uint64_t deferred_mouse() const { return deferred_mouse_; }
  std::uint64_t deferred_budget() const { return deferred_budget_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t demotions() const { return demotions_; }
  const TelemetryConfig& config() const { return config_; }

  FlowClass flow_class(sdn::Cookie cookie) const;

 private:
  struct FlowState {
    // New flows start as elephants: a fresh flow's rate is unknown and its
    // belief is a planner estimate, so it gets full-rate polling until it
    // proves slow (demote_after consecutive below-band samples).
    FlowClass cls = FlowClass::kElephant;
    std::uint32_t slow_streak = 0;
    // First cycle this flow's next sample is due. Elephants are always due;
    // a budget deferral leaves the flow due, so it retries next tick.
    std::uint64_t next_due_cycle = 0;
  };

  void classify(FlowState& st, double rate, double cap);

  TelemetryConfig config_;
  // Keyed by cookie (ordered, not pointer-derived) — determinism-safe.
  std::map<sdn::Cookie, FlowState> state_;
  std::uint64_t cycle_ = 0;
  std::size_t applied_this_tick_ = 0;
  std::size_t elephants_ = 0;
  std::uint64_t deferred_mouse_ = 0;
  std::uint64_t deferred_budget_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace mayflower::flowserver
