// Path bandwidth estimation (§4.2).
//
// The Flowserver never sees ground-truth rates; it models them from (a) the
// believed per-flow shares in a NetworkView snapshot and (b) per-link
// max-min water-filling:
//
//  * the share a NEW flow would get on a path = its water-filled share on the
//    path's bottleneck link, where existing flows demand their current
//    believed bandwidth and the new flow demands infinity;
//  * the reduced share of an EXISTING flow after the new flow (now demanding
//    its bottleneck share b_j) is added = its water-filled share on the links
//    of the path it crosses (NEWBANDWIDTH in Pseudocode 2).
//
// Per the paper's "simplifying bandwidth estimations", only the candidate
// path's links are modelled; secondary effects on other paths are ignored and
// corrected by the periodic stats resync. The model is stateless apart from
// the zero-hop rate: every fact it consumes comes from the view, so all
// decisions in one batch read identical state.
#pragma once

#include "net/network_view.hpp"
#include "net/paths.hpp"

namespace mayflower::flowserver {

class BandwidthModel {
 public:
  BandwidthModel() = default;

  // MAXMINSHARE(p.links): estimated share of a new elastic flow on `path`.
  // Zero-hop paths return `zero_hop_bps`.
  double new_flow_share(const net::NetworkView& view,
                        const net::Path& path) const;

  // NEWBANDWIDTH(f, p, est_bw): share of existing flow `f` after a new flow
  // with demand `new_flow_bps` joins every link of `path`. Never exceeds the
  // flow's current believed share.
  double reduced_share(const net::NetworkView& view,
                       const net::NetworkView::Flow& f, const net::Path& path,
                       double new_flow_bps) const;

  void set_zero_hop_bps(double bps) { zero_hop_bps_ = bps; }
  double zero_hop_bps() const { return zero_hop_bps_; }

 private:
  // Water-fill one link among the view's believed flows plus one extra
  // demand; returns the extra flow's share and optionally one believed
  // flow's share.
  double link_share_with_extra(const net::NetworkView& view, net::LinkId link,
                               double extra_demand,
                               const net::NetworkView::Flow* report,
                               double* report_share) const;

  double zero_hop_bps_ = 12e9;
};

}  // namespace mayflower::flowserver
