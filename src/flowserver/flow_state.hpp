// The Flowserver's view of every Mayflower-related flow in the network.
//
// Implements the bandwidth bookkeeping of Pseudocode 2 (§4.2):
//  * SETBW — after a selection commits, bumped flows get their *estimated*
//    share written and enter the update-freeze state for a period
//    proportional to their expected completion time (T = now + remaining/bw);
//  * UPDATEBW — a stats-poll measurement overwrites the estimate only if the
//    flow is not frozen or its freeze has expired.
//
// A per-link reverse index (net::LinkIndex) makes flows_on_link /
// flows_on_path O(flows actually crossing the links) instead of a scan over
// the whole table — the lookups the bandwidth model issues for every
// candidate link of every selection.
//
// Tentative mutations for the multi-read planner (§4.3) are supported by a
// bounded undo log: begin_tentative() starts recording the prior state of
// each mutated entry (first touch only), rollback_tentative() restores them
// in O(touched). The table itself is intentionally non-copyable — the old
// whole-table snapshot/restore escape hatch is gone.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "net/link_index.hpp"
#include "net/network_view.hpp"
#include "net/paths.hpp"
#include "obs/observability.hpp"
#include "sdn/switch.hpp"
#include "sim/time.hpp"

namespace mayflower::flowserver {

struct TrackedFlow {
  sdn::Cookie cookie = 0;
  net::Path path;
  double size_bytes = 0.0;
  double remaining_bytes = 0.0;
  double bw_bps = 0.0;  // current share: estimate or last accepted measurement
  bool frozen = false;
  sim::SimTime freeze_until;

  // Poll bookkeeping for measuring bandwidth as delta(bytes)/delta(t).
  double last_poll_bytes = 0.0;
  sim::SimTime last_poll_time;
};

class FlowStateTable {
 public:
  FlowStateTable() = default;
  FlowStateTable(const FlowStateTable&) = delete;
  FlowStateTable& operator=(const FlowStateTable&) = delete;

  // Registers a newly scheduled flow with its estimated share; the new flow
  // starts frozen (its estimate must survive until the next poll cycle).
  // When `freeze_enabled` is false (ablation) flows are never frozen.
  void add(sdn::Cookie cookie, net::Path path, double size_bytes,
           double est_bw_bps, sim::SimTime now) EXCLUDES(mu_);

  // Flow finished or was cancelled (the "drop request" the paper tracks).
  void drop(sdn::Cookie cookie) EXCLUDES(mu_);

  // SETBW: overwrite the share estimate and freeze (Pseudocode 2, 19-23).
  void set_bw(sdn::Cookie cookie, double bw_bps, sim::SimTime now)
      EXCLUDES(mu_);

  // Adjusts a just-registered flow's size (multi-read split sizing, §4.3).
  // Refreshes the freeze horizon to match the new expected completion.
  void resize(sdn::Cookie cookie, double new_size_bytes, sim::SimTime now)
      EXCLUDES(mu_);

  // UPDATEBW: apply one stats-poll sample (Pseudocode 2, 12-18). The
  // remaining size is always refreshed from the counter, clamped at zero
  // when the sample overshoots the tracked size; the bandwidth only when
  // not frozen (or the freeze expired).
  void update_from_stats(sdn::Cookie cookie, double cumulative_bytes,
                         sim::SimTime now) EXCLUDES(mu_);

  void set_freeze_enabled(bool enabled) { freeze_enabled_ = enabled; }
  bool freeze_enabled() const { return freeze_enabled_; }

  // Attaches the flow tracer (plan registrations, resizes, SETBW, freeze
  // suppressions, abandoned tentative legs) and the freeze-suppression
  // counter. Null detaches.
  void set_obs(obs::Observability* hub);

  // Entries whose share is a frozen estimate at `now` (freeze not expired).
  std::size_t frozen_count(sim::SimTime now) const EXCLUDES(mu_);

  // Cumulative poll updates the freeze state suppressed (UPDATEBW rejected).
  std::uint64_t freeze_suppressed_total() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return freeze_suppressed_total_;
  }

  const TrackedFlow* find(sdn::Cookie cookie) const EXCLUDES(mu_);
  bool contains(sdn::Cookie cookie) const { return find(cookie) != nullptr; }
  std::size_t size() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return flows_.size();
  }

  // Monotonic mutation counter: bumped by every state-changing operation
  // (add/drop/set_bw/resize/update_from_stats/rollback). A NetworkView built
  // from this table is stale once version() moves past the value recorded at
  // build time — unless the mutations were the decision batch's own
  // write-through commits, which the Flowserver accounts for.
  std::uint64_t version() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return version_;
  }

  // Copies every tracked flow into `view` (key order) — the belief section
  // of a decision snapshot.
  void snapshot_into(net::NetworkView& view) const EXCLUDES(mu_);

  // Flows crossing `link`, in cookie order (deterministic). O(flows on link).
  std::vector<const TrackedFlow*> flows_on_link(net::LinkId link) const
      EXCLUDES(mu_);

  // All flows crossing any link of `path`, deduplicated, cookie order.
  std::vector<const TrackedFlow*> flows_on_path(const net::Path& path) const
      EXCLUDES(mu_);

  // --- tentative mutation scope (multi-read planning, §4.3) --------------
  //
  // Between begin_tentative() and commit/rollback, every mutation records
  // the entry's prior state on first touch. rollback_tentative() restores
  // exactly those entries (insertions removed, drops re-inserted, updates
  // reverted) in reverse order; commit_tentative() discards the log. Scopes
  // do not nest.
  void begin_tentative() EXCLUDES(mu_);
  void commit_tentative() EXCLUDES(mu_);
  void rollback_tentative() EXCLUDES(mu_);
  bool tentative_active() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return tentative_;
  }
  // Entries the open scope has touched so far (log length; bounds rollback).
  std::size_t tentative_touched() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return undo_.size();
  }

 private:
  TrackedFlow* find_mutable(sdn::Cookie cookie) REQUIRES(mu_);
  // Records `cookie`'s current state (or absence) before its first mutation
  // inside an open tentative scope.
  void record_undo(sdn::Cookie cookie) REQUIRES(mu_);

  // Concurrency: the table is written only by the control thread (commits,
  // polls, drops); decision workers read the immutable NetworkView snapshot,
  // never the table. The mutex makes that contract checkable — every member
  // below is GUARDED_BY it, so an unlocked access from a future worker path
  // is a compile error under -Wthread-safety (and the TSan lane would catch
  // the same dynamically). Lock order: mu_ before any obs mutex (the trace
  // hooks fire under mu_; the tracer never calls back into the table).
  mutable common::Mutex mu_;
  std::map<sdn::Cookie, TrackedFlow> flows_ GUARDED_BY(mu_);
  net::LinkIndex index_ GUARDED_BY(mu_);  // link -> cookies crossing it
  bool freeze_enabled_ = true;            // set once at wiring time
  std::uint64_t version_ GUARDED_BY(mu_) = 0;

  obs::FlowTracer* trace_ = nullptr;  // set once at wiring time
  obs::Counter freeze_suppressed_;
  std::uint64_t freeze_suppressed_total_ GUARDED_BY(mu_) = 0;

  bool tentative_ GUARDED_BY(mu_) = false;
  std::vector<std::pair<sdn::Cookie, std::optional<TrackedFlow>>> undo_
      GUARDED_BY(mu_);
};

}  // namespace mayflower::flowserver
