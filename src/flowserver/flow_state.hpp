// The Flowserver's view of every Mayflower-related flow in the network.
//
// Implements the bandwidth bookkeeping of Pseudocode 2 (§4.2):
//  * SETBW — after a selection commits, bumped flows get their *estimated*
//    share written and enter the update-freeze state for a period
//    proportional to their expected completion time (T = now + remaining/bw);
//  * UPDATEBW — a stats-poll measurement overwrites the estimate only if the
//    flow is not frozen or its freeze has expired.
//
// The table is PARTITIONED BY EDGE SWITCH (net::ShardMap): every flow lives
// in the shard of its source host's edge switch — the same key the fabric's
// per-edge poll index uses — under that shard's own mutex, flow map, link
// index and version counter. A poll of edge E or a drop of an E-sourced flow
// moves only shard E's version, so a snapshot consumer reloads one shard
// instead of the whole table. The default layout is a single shard (the
// legacy global table) with identical semantics and no routing overhead.
//
// A per-link reverse index (net::LinkIndex) per shard keeps flows_on_link /
// flows_on_path at O(flows actually crossing the links); with multiple
// shards the per-shard results are merged in cookie order, so the answer is
// byte-identical to the unsharded table's.
//
// Tentative mutations for the multi-read planner (§4.3) are supported by a
// bounded undo log per shard: begin_tentative() starts recording the prior
// state of each mutated entry (first touch only), rollback_tentative()
// restores them in O(touched), bumping only the versions of shards the
// scope actually touched. The table itself is intentionally non-copyable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "net/link_index.hpp"
#include "net/network_view.hpp"
#include "net/paths.hpp"
#include "net/shard_map.hpp"
#include "obs/observability.hpp"
#include "sdn/switch.hpp"
#include "sim/time.hpp"

namespace mayflower::flowserver {

struct TrackedFlow {
  sdn::Cookie cookie = 0;
  net::Path path;
  double size_bytes = 0.0;
  double remaining_bytes = 0.0;
  double bw_bps = 0.0;  // current share: estimate or last accepted measurement
  bool frozen = false;
  sim::SimTime freeze_until;

  // Poll bookkeeping for measuring bandwidth as delta(bytes)/delta(t).
  double last_poll_bytes = 0.0;
  sim::SimTime last_poll_time;
};

class FlowStateTable {
 public:
  FlowStateTable();
  FlowStateTable(const FlowStateTable&) = delete;
  FlowStateTable& operator=(const FlowStateTable&) = delete;

  // Installs the edge-switch partition. Must run at wiring time, before any
  // flow is tracked; the default single-shard layout needs no call.
  void set_shard_map(net::ShardMap map);
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const net::ShardMap& shard_map() const { return shard_map_; }

  // Registers a newly scheduled flow with its estimated share; the new flow
  // starts frozen (its estimate must survive until the next poll cycle).
  // When `freeze_enabled` is false (ablation) flows are never frozen.
  void add(sdn::Cookie cookie, net::Path path, double size_bytes,
           double est_bw_bps, sim::SimTime now);

  // Flow finished or was cancelled (the "drop request" the paper tracks).
  void drop(sdn::Cookie cookie);

  // SETBW: overwrite the share estimate and freeze (Pseudocode 2, 19-23).
  void setbw(sdn::Cookie cookie, double bw_bps, sim::SimTime now);

  // Adjusts a just-registered flow's size (multi-read split sizing, §4.3).
  // Refreshes the freeze horizon to match the new expected completion.
  void resize(sdn::Cookie cookie, double new_size_bytes, sim::SimTime now);

  // UPDATEBW: apply one stats-poll sample (Pseudocode 2, 12-18). The
  // remaining size is always refreshed from the counter, clamped at zero
  // when the sample overshoots the tracked size; the bandwidth only when
  // not frozen (or the freeze expired).
  void update_from_stats(sdn::Cookie cookie, double cumulative_bytes,
                         sim::SimTime now);

  void set_freeze_enabled(bool enabled) { freeze_enabled_ = enabled; }
  bool freeze_enabled() const { return freeze_enabled_; }

  // Attaches the flow tracer (plan registrations, resizes, SETBW, freeze
  // suppressions, abandoned tentative legs) and the freeze-suppression
  // counter. Null detaches.
  void set_obs(obs::Observability* hub);

  // Entries whose share is a frozen estimate at `now` (freeze not expired).
  std::size_t frozen_count(sim::SimTime now) const;

  // Cumulative poll updates the freeze state suppressed (UPDATEBW rejected).
  std::uint64_t freeze_suppressed_total() const;

  const TrackedFlow* find(sdn::Cookie cookie) const;
  bool contains(sdn::Cookie cookie) const { return find(cookie) != nullptr; }
  std::size_t size() const;

  // Monotonic mutation counter: the sum of every shard's version, bumped by
  // every state-changing operation (add/drop/setbw/resize/
  // update_from_stats/rollback). A NetworkView built from this table is
  // stale once version() moves past the value recorded at build time —
  // unless the mutations were the decision batch's own write-through
  // commits, which the Flowserver accounts for.
  std::uint64_t version() const;

  // Per-shard mutation counter: moves only when a flow IN that shard is
  // mutated, so a snapshot consumer reloads exactly the shards that changed.
  std::uint64_t shard_version(std::uint32_t s) const;

  // Copies every tracked flow into `view` — the belief section of a
  // decision snapshot.
  void snapshot_into(net::NetworkView& view) const;

  // Copies only shard `s`'s flows into `view` (per-shard reload; pair with
  // view.unload_shard(s)).
  void snapshot_shard_into(net::NetworkView& view, std::uint32_t s) const;

  // Flows crossing `link`, in cookie order (deterministic). O(flows on link)
  // per shard holding any.
  std::vector<const TrackedFlow*> flows_on_link(net::LinkId link) const;

  // All flows crossing any link of `path`, deduplicated, cookie order.
  std::vector<const TrackedFlow*> flows_on_path(const net::Path& path) const;

  // --- tentative mutation scope (multi-read planning, §4.3) --------------
  //
  // Between begin_tentative() and commit/rollback, every mutation records
  // the entry's prior state on first touch, in the undo log of the entry's
  // OWN shard. rollback_tentative() restores exactly those entries
  // (insertions removed, drops re-inserted, updates reverted) in O(touched),
  // bumping only the touched shards' versions; commit_tentative() discards
  // the logs. Scopes do not nest.
  void begin_tentative();
  void commit_tentative();
  void rollback_tentative();
  bool tentative_active() const { return tentative_.load(); }
  // Entries the open scope has touched so far (log length; bounds rollback).
  std::size_t tentative_touched() const;

 private:
  // One partition of the table. All hot state sits behind the shard's own
  // mutex so workers touching disjoint shards never contend.
  struct Shard {
    mutable common::Mutex mu;
    std::map<sdn::Cookie, TrackedFlow> flows GUARDED_BY(mu);
    net::LinkIndex index GUARDED_BY(mu);  // link -> cookies crossing it
    std::uint64_t version GUARDED_BY(mu) = 0;
    std::uint64_t freeze_suppressed GUARDED_BY(mu) = 0;
    std::vector<std::pair<sdn::Cookie, std::optional<TrackedFlow>>> undo
        GUARDED_BY(mu);
  };

  // The shard a cookie routes to; shard 0 always when unsharded. Returns
  // nullptr for cookies the table does not track (sharded lookups only —
  // the single-shard layout resolves unknown cookies inside the shard).
  Shard* shard_for(sdn::Cookie cookie) const;
  // Records `cookie`'s current state (or absence) in shard `s`'s undo log
  // before its first mutation inside an open tentative scope.
  void record_undo(Shard& s, sdn::Cookie cookie) REQUIRES(s.mu);
  // Sorted-by-cookie merge used by flows_on_link / flows_on_path.
  std::vector<const TrackedFlow*> collect_sorted(
      std::vector<std::pair<sdn::Cookie, const TrackedFlow*>> hits) const;

  // Concurrency: the table is written only by the control thread (commits,
  // polls, drops); decision workers read the immutable NetworkView snapshot,
  // never the table. The per-shard mutexes make that contract checkable —
  // every shard member is GUARDED_BY its mutex, so an unlocked access from
  // a future worker path is a compile error under -Wthread-safety (and the
  // TSan lane would catch the same dynamically). Lock order: route_mu_
  // before any shard mutex; shard mutexes are never nested with each other
  // (cross-shard reads lock one shard at a time); any obs mutex is a leaf.
  net::ShardMap shard_map_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cookie -> shard routing (sharded layouts only; a single shard routes
  // everything to shard 0 without touching this map).
  mutable common::Mutex route_mu_;
  std::map<sdn::Cookie, std::uint32_t> route_ GUARDED_BY(route_mu_);

  bool freeze_enabled_ = true;  // set once at wiring time
  obs::FlowTracer* trace_ = nullptr;  // set once at wiring time
  obs::Counter freeze_suppressed_;

  // Tentative scope flag. Atomic rather than mutex-guarded: it is flipped
  // only between shard operations by the control thread, and read inside
  // shard-locked mutation paths — guarding it with route_mu_ would invert
  // the route-before-shard lock order.
  std::atomic<bool> tentative_{false};
};

}  // namespace mayflower::flowserver
