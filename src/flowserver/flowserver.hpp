// The Flowserver service (§3.3.3): the filesystem-facing RPC surface of the
// SDN controller application.
//
// Responsibilities, as in the paper:
//  * keep per-flow bandwidth/remaining estimates (FlowStateTable), refreshed
//    by periodic flow-stats polls of the edge switches;
//  * answer replica-selection requests by running the replica–path selection
//    algorithm (plus the multi-read split when profitable) and installing the
//    chosen paths into the switches;
//  * track flow add/drop requests in between polls so estimates stay usable
//    without polling at very short intervals.
//
// The paper implements this as a Floodlight (Java) controller application
// exposed over Thrift; here it is a C++ class against the same narrow
// OpenFlow-ish interface (install paths, poll counters) — see DESIGN.md.
#pragma once

#include <vector>

#include "flowserver/multiread.hpp"
#include "flowserver/selector.hpp"
#include "sdn/fabric.hpp"
#include "common/rng.hpp"
#include "sdn/stats_poller.hpp"

namespace mayflower::flowserver {

struct FlowserverConfig {
  sim::SimTime poll_interval = sim::SimTime::from_seconds(1.0);
  bool multiread_enabled = true;
  bool freeze_enabled = true;   // ablation: disable the update-freeze state
  bool impact_aware = true;     // ablation: drop Eq. 2's existing-flow term
  double zero_hop_bps = 12e9;   // modelled rate for host-local reads
  std::uint64_t seed = 0x5eedULL;  // tie-breaking randomness (placement)
  // Optional observability hub (not owned): selection audits, freeze
  // suppression, poll-cycle work all land here. Null measures nothing.
  obs::Observability* obs = nullptr;
};

// One subflow the client should fetch: `bytes` from `replica` along `path`.
struct ReadAssignment {
  sdn::Cookie cookie = 0;
  net::NodeId replica = net::kInvalidNode;
  net::Path path;           // replica -> client
  double bytes = 0.0;
  double est_bw_bps = 0.0;
};

class Flowserver {
 public:
  Flowserver(sdn::SdnFabric& fabric, FlowserverConfig config);

  Flowserver(const Flowserver&) = delete;
  Flowserver& operator=(const Flowserver&) = delete;

  // Begins periodic stats collection. Idempotent.
  void start();
  void stop();

  // RPC from a client about to read `bytes` replicated on `replicas`:
  // performs replica+path selection (split across two replicas when
  // profitable), installs the paths in the switches, registers the flows.
  // The caller then starts each assignment via fabric().start_flow(cookie,
  // path, bytes, ...) and reports completion with flow_dropped().
  std::vector<ReadAssignment> select_for_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes);

  // Variant with the replica fixed by an external policy (used for the
  // "Nearest Mayflower", "Sinbad-R Mayflower" and "HDFS-Mayflower"
  // comparisons): only the network path is optimized.
  ReadAssignment select_path_for_replica(net::NodeId client,
                                         net::NodeId replica, double bytes);

  // Flow drop notification (read finished or aborted).
  void flow_dropped(sdn::Cookie cookie);

  // Extension (§3.3): Sinbad-like collaborative replica placement. Ranks
  // `candidates` by the max-min share a write flow from `writer` would get
  // over its best path and returns the winner. The paper's nameserver
  // places replicas statically but notes it "would be relatively
  // straightforward" to make the decision collaboratively — this is that
  // hook.
  net::NodeId best_write_target(net::NodeId writer,
                                const std::vector<net::NodeId>& candidates);

  // One stats-collection cycle (also runs on the poll timer).
  void collect_stats();

  sdn::SdnFabric& fabric() { return *fabric_; }
  FlowStateTable& table() { return table_; }
  const FlowserverConfig& config() const { return config_; }

  // Telemetry for tests/benchmarks.
  std::uint64_t selections() const { return selections_; }
  std::uint64_t split_reads() const { return split_reads_; }
  std::uint64_t polls() const { return polls_; }
  // Per-flow counter samples applied across all polls: with the fabric's
  // per-edge index this totals O(active flows) per cycle, independent of the
  // number of edge switches swept.
  std::uint64_t stats_samples() const { return stats_samples_; }

 private:
  ReadAssignment to_assignment(const Candidate& c, sdn::Cookie cookie,
                               double bytes) const;

  // Records one committed selection in the decision-audit trace.
  void audit_decision(const SelectStats& stats, const CostBreakdown& cost,
                      sim::SimTime now, bool split);

  sdn::SdnFabric* fabric_;
  FlowserverConfig config_;
  net::PathCache paths_;
  FlowStateTable table_;
  ReplicaPathSelector selector_;
  MultiReadPlanner planner_;
  sdn::StatsPoller poller_;
  Rng rng_;
  std::vector<net::NodeId> edge_switches_;
  std::uint64_t selections_ = 0;
  std::uint64_t split_reads_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t stats_samples_ = 0;

  // Observability (no-ops until config.obs is set).
  obs::Counter selections_metric_;
  obs::Counter split_reads_metric_;
  obs::Histogram poll_samples_hist_;  // per-cycle samples applied (work/tick)
};

}  // namespace mayflower::flowserver
