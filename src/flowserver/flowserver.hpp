// The Flowserver service (§3.3.3): the filesystem-facing RPC surface of the
// SDN controller application.
//
// Responsibilities, as in the paper:
//  * keep per-flow bandwidth/remaining estimates (FlowStateTable), refreshed
//    by periodic flow-stats polls of the edge switches;
//  * answer replica-selection requests by running the replica–path selection
//    algorithm (plus the multi-read split when profitable) and installing the
//    chosen paths into the switches;
//  * track flow add/drop requests in between polls so estimates stay usable
//    without polling at very short intervals.
//
// Decisions run through a snapshot pipeline: requests enqueue, a decision
// batch drains them against ONE epoch-stamped NetworkView (rebuilt only when
// a poll, drop or fault moved the underlying state), commits write through
// to table and view, and all chosen paths are installed via the fabric's
// bulk API with a single metrics flush. The synchronous entry points are
// batches of one and decision-identical to the historical inline path.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/worker_pool.hpp"
#include "flowserver/multiread.hpp"
#include "flowserver/selector.hpp"
#include "flowserver/telemetry.hpp"
#include "flowserver/writechain.hpp"
#include "sdn/fabric.hpp"
#include "sdn/link_rate_monitor.hpp"
#include "sdn/stats_poller.hpp"

namespace mayflower::flowserver {

struct FlowserverConfig {
  sim::SimTime poll_interval = sim::SimTime::from_seconds(1.0);
  bool multiread_enabled = true;
  bool freeze_enabled = true;   // ablation: disable the update-freeze state
  bool impact_aware = true;     // ablation: drop Eq. 2's existing-flow term
  double zero_hop_bps = 12e9;   // modelled rate for host-local reads
  std::uint64_t seed = 0x5eedULL;  // tie-breaking randomness (placement)
  // Admission batching: a drain fires as soon as `batch_size` requests are
  // queued, or `batch_window` after the first one, whichever comes first.
  // batch_size 1 keeps every entry point synchronous (batch-of-one).
  std::size_t batch_size = 1;
  sim::SimTime batch_window = sim::SimTime::from_millis(5.0);
  // Decision parallelism. 0 (default) keeps the legacy serial pipeline:
  // decisions write through the batch view as they are made, so decision i
  // sees decision i-1. Any value >= 1 selects the snapshot pipeline:
  // candidates are evaluated in parallel against the IMMUTABLE batch-start
  // view (1 = inline on the control thread, N = a worker pool of N) and
  // commits replay serially in batch order — decisions are byte-identical
  // at every thread count by construction, and identical to the legacy
  // pipeline whenever batches hold a single request.
  std::size_t decision_threads = 0;
  // State-plane sharding (the k >= 16 scale path): partition the flow table
  // and the view's believed-flow section by source edge switch
  // (net::ShardMap::by_edge_switch). A poll, drop or fault then stales only
  // the shards it touched and the next rebuild reloads exactly those, so
  // selection cost scales with flows per edge instead of cluster flows.
  // Decisions are byte-identical to the unsharded layout — sharding changes
  // which sections a rebuild copies, never what a query returns.
  bool shard_by_edge = false;
  // Stats-poll rotation: split each poll_interval into this many staggered
  // ticks, each sweeping 1/poll_groups of the edge switches. Every edge is
  // still polled once per interval, but one tick stales only the shards of
  // the edges it swept (pointless without shard_by_edge; 1 = legacy sweep).
  std::size_t poll_groups = 1;
  // Adaptive budgeted telemetry (Floware-style, DESIGN.md §14): classify
  // flows as elephants vs mice from per-poll byte deltas, apply elephant
  // samples every cycle, mouse samples every telemetry.mouse_period cycles,
  // and at most telemetry.samples_budget samples per staggered tick. The
  // default config keeps the layer inactive and the legacy full-rate sweep
  // byte-identical.
  TelemetryConfig telemetry;
  // Export the per-shard rebuild counters (flowserver.shard.*) into the
  // metrics registry. Off by default so a sharded run's metrics JSON stays
  // byte-identical to the unsharded baseline it is diffed against.
  bool shard_metrics = false;
  // Optional observability hub (not owned): selection audits, freeze
  // suppression, poll-cycle work all land here. Null measures nothing.
  obs::Observability* obs = nullptr;
};

// One subflow the client should fetch: `bytes` from `replica` along `path`.
struct ReadAssignment {
  sdn::Cookie cookie = 0;
  net::NodeId replica = net::kInvalidNode;
  net::Path path;           // replica -> client
  double bytes = 0.0;
  double est_bw_bps = 0.0;
};

class Flowserver {
 public:
  // Receives the finished plan for one queued read (empty = unavailable).
  using PlanCallback = std::function<void(std::vector<ReadAssignment>)>;
  // External replica policy hook for the batched path: picks one of
  // `replicas` (all of which have at least one live path to `client` in the
  // view) reading utilization/liveness from the batch's snapshot.
  using ReplicaChooser = std::function<net::NodeId(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      const net::NetworkView& view)>;
  // External write-placement policy hook (policy::WritePlacement): ranks
  // candidate hosts for a new replica against the view and returns the
  // tied-best band; best_write_target() breaks the tie with the seeded Rng.
  // Null keeps the historical model-based ranking.
  using WriteRanker = std::function<std::vector<net::NodeId>(
      net::NodeId writer, const std::vector<net::NodeId>& candidates,
      const net::NetworkView& view)>;

  Flowserver(sdn::SdnFabric& fabric, FlowserverConfig config);

  Flowserver(const Flowserver&) = delete;
  Flowserver& operator=(const Flowserver&) = delete;

  // Begins periodic stats collection. Idempotent.
  void start();
  void stop();

  // --- batched admission ------------------------------------------------

  // Queues one read request. `chooser`, when set, fixes the replica via an
  // external policy (evaluated against the batch's view at decision time);
  // when null the selector optimizes replica and path jointly. The batch
  // drains immediately once config.batch_size requests are queued, else
  // config.batch_window after the first enqueue; `done` runs from the drain
  // with the plan (empty when every replica is unreachable).
  void enqueue_read(net::NodeId client, std::vector<net::NodeId> replicas,
                    double bytes, PlanCallback done,
                    ReplicaChooser chooser = nullptr) EXCLUDES(queue_mu_);

  // Producer-thread-safe enqueue: pushes the request and nothing else — no
  // batch-window timer (the event queue is control-thread-only by design).
  // Posted requests are decided by the next control-thread drain(). This is
  // the only Flowserver entry point callable off the control thread.
  void post_read(net::NodeId client, std::vector<net::NodeId> replicas,
                 double bytes, PlanCallback done = nullptr,
                 ReplicaChooser chooser = nullptr) EXCLUDES(queue_mu_);

  // Queues one replication-chain write: `chain` is the host sequence the
  // bytes traverse (writer, primary, replica, ...; consecutive hosts
  // distinct), at least 2 nodes. The decision enters the same batch as
  // reads — one view, same commit replay — and the plan holds one
  // assignment per routed hop in chain order (path chain[i] -> chain[i+1]),
  // every hop SETBW'd to the chain bottleneck so it finishes together. An
  // unreachable hop truncates the plan; an empty plan means even the first
  // hop is unreachable.
  void enqueue_write(std::vector<net::NodeId> chain, double bytes,
                     PlanCallback done) EXCLUDES(queue_mu_);

  // Producer-thread-safe write enqueue (see post_read).
  void post_write(std::vector<net::NodeId> chain, double bytes,
                  PlanCallback done = nullptr) EXCLUDES(queue_mu_);

  // Decides everything queued right now against one view and installs all
  // chosen paths through the fabric's bulk API. Returns the number of
  // requests decided.
  std::size_t drain() EXCLUDES(queue_mu_);

  std::size_t queued() const EXCLUDES(queue_mu_) {
    common::MutexLock lock(queue_mu_);
    return queue_.size();
  }

  // --- synchronous wrappers (batch-of-one) ------------------------------

  // RPC from a client about to read `bytes` replicated on `replicas`:
  // performs replica+path selection (split across two replicas when
  // profitable), installs the paths in the switches, registers the flows.
  // The caller then starts each assignment via fabric().start_flow(cookie,
  // path, bytes, ...) and reports completion with flow_dropped(). An empty
  // replica list yields an empty plan (kUnavailable), not an assert.
  std::vector<ReadAssignment> select_for_read(
      net::NodeId client, const std::vector<net::NodeId>& replicas,
      double bytes);

  // Variant with the replica fixed by an external policy (used for the
  // "Nearest Mayflower", "Sinbad-R Mayflower" and "HDFS-Mayflower"
  // comparisons): only the network path is optimized.
  ReadAssignment select_path_for_replica(net::NodeId client,
                                         net::NodeId replica, double bytes);

  // Synchronous wrapper (batch-of-one) for enqueue_write.
  std::vector<ReadAssignment> plan_write(const std::vector<net::NodeId>& chain,
                                         double bytes);

  // Flow drop notification (read finished or aborted).
  void flow_dropped(sdn::Cookie cookie);

  // Extension (§3.3): Sinbad-like collaborative replica placement. Ranks
  // `candidates` by the max-min share a write flow from `writer` would get
  // over its best path and returns the winner. The paper's nameserver
  // places replicas statically but notes it "would be relatively
  // straightforward" to make the decision collaboratively — this is that
  // hook.
  net::NodeId best_write_target(net::NodeId writer,
                                const std::vector<net::NodeId>& candidates);

  // Installs/clears the write-placement ranking best_write_target uses.
  void set_write_ranker(WriteRanker ranker) {
    write_ranker_ = std::move(ranker);
  }

  // One stats-collection cycle (also runs on the poll timer).
  void collect_stats();

  // --- the decision snapshot --------------------------------------------

  // The current decision view, rebuilt first if any of its inputs moved:
  // the table's mutation version (polls, drops), the fabric's state epoch
  // (faults) or the rate monitor's sample count. The pipeline's own
  // write-through commits do NOT stale the view.
  const net::NetworkView& view();
  std::uint64_t view_rebuilds() const { return view_rebuilds_; }
  // Forces the next view() to rebuild regardless of epochs.
  void invalidate_view() { view_built_ = false; }

  // Sharded-refresh telemetry. An unsharded server only ever counts full
  // rebuilds; a sharded one counts one full rebuild (the first build or a
  // manual invalidate), then per-shard reloads and link-section refreshes.
  std::uint32_t state_shards() const { return table_.shard_count(); }
  std::uint64_t full_view_rebuilds() const { return full_rebuilds_; }
  std::uint64_t shard_reloads() const { return shard_reloads_; }
  std::uint64_t link_refreshes() const { return link_refreshes_; }

  // Attaches a rate monitor whose per-link tx rates are copied into every
  // view (Sinbad-R's utilization signal). Not owned; null detaches.
  void set_rate_monitor(const sdn::LinkRateMonitor* monitor) {
    monitor_ = monitor;
    view_built_ = false;
  }

  sdn::SdnFabric& fabric() { return *fabric_; }
  FlowStateTable& table() { return table_; }
  const FlowserverConfig& config() const { return config_; }

  // Telemetry for tests/benchmarks.
  std::uint64_t selections() const { return selections_; }
  std::uint64_t split_reads() const { return split_reads_; }
  std::uint64_t write_chains() const { return write_chains_; }
  std::uint64_t write_hops() const { return write_hops_; }
  std::uint64_t write_truncated() const { return write_truncated_; }
  std::uint64_t polls() const { return polls_; }
  // Per-flow counter samples APPLIED across all polls (deferred samples are
  // not counted — they are the saved cost): with the fabric's per-edge index
  // this totals O(applied samples) per cycle, independent of the number of
  // edge switches swept.
  std::uint64_t stats_samples() const { return stats_samples_; }
  // The adaptive telemetry layer's books: classification counts, deferred
  // samples, promotions/demotions. Inactive (all zeros) by default.
  const AdaptiveTelemetry& telemetry() const { return telemetry_; }

 private:
  struct PendingRead {
    net::NodeId client = net::kInvalidNode;
    // Read requests: the replicas holding the data. Write requests: the
    // replication-chain host sequence (writer first).
    std::vector<net::NodeId> replicas;
    double bytes = 0.0;
    bool write = false;      // plan_write decision kind
    ReplicaChooser chooser;  // null: joint replica+path optimization
    PlanCallback done;
  };

  ReadAssignment to_assignment(const Candidate& c, sdn::Cookie cookie,
                               double bytes) const;

  // Records one committed selection in the decision-audit trace.
  void audit_decision(const SelectStats& stats, const CostBreakdown& cost,
                      sim::SimTime now, bool split);

  bool view_stale() const;
  void refresh_view();
  // Re-stamps the view's shard sections at the table's current versions and
  // refreshes seen_table_version_ — how a drain absorbs its own write-through
  // commits without forcing shard reloads that would copy identical state.
  void absorb_table_versions();

  // Replicas with at least one live path to `client` in the current view,
  // original order preserved.
  std::vector<net::NodeId> reachable_replicas(
      net::NodeId client, const std::vector<net::NodeId>& replicas);

  // One decided request: the plan to hand back plus its completion callback.
  struct Decided {
    PlanCallback done;
    std::vector<ReadAssignment> plan;
  };

  // One batch slot of the snapshot pipeline. The serial pre-phase fills the
  // request half (effective replicas, pre-drawn cookies); the parallel
  // evaluate phase fills the result half; the serial replay consumes it.
  struct Slot {
    net::NodeId client = net::kInvalidNode;
    double bytes = 0.0;
    std::vector<net::NodeId> replicas;  // effective (chooser already applied)
    bool unavailable = false;           // no replicas / none reachable
    bool multiread = false;
    bool write = false;                 // replicas holds the chain nodes
    std::vector<sdn::Cookie> cookies;   // pre-drawn (multiread/write slots)
    std::optional<Candidate> best;      // single-path result
    std::vector<SubflowPlan> plans;     // multiread result
    std::vector<ChainHopPlan> chain;    // write result
    SelectStats stats;
  };

  // Decides one queued request against the current view (write-through
  // commits included); installs are deferred to the caller's bulk flush.
  // This is the legacy serial pipeline (decision_threads == 0).
  std::vector<ReadAssignment> decide(PendingRead& req, sim::SimTime now);

  // Registers the flowserver.write.* metric family on first use (control
  // thread only).
  void ensure_write_metrics();

  // Turns a routed chain into plan assignments (est_bw reports the chain
  // bottleneck) and records the write books; shared by both pipelines.
  // `requested_hops` is what the caller asked for — fewer routed hops means
  // the chain was truncated by an unreachable host.
  std::vector<ReadAssignment> finish_chain(
      const std::vector<ChainHopPlan>& plans,
      const std::vector<sdn::Cookie>& cookies, std::size_t requested_hops,
      double bytes, const SelectStats& stats, sim::SimTime now);

  // Snapshot pipeline (decision_threads >= 1): serial pre-phase + parallel
  // evaluation against the immutable batch view + in-order commit replay.
  void decide_snapshot_batch(std::deque<PendingRead>& batch, sim::SimTime now,
                             std::vector<Decided>& results);

  // Did the armed batch-window event survive to its firing time?
  bool drain_generation_is(std::uint64_t gen) const EXCLUDES(queue_mu_) {
    common::MutexLock lock(queue_mu_);
    return gen == drain_gen_;
  }

  sdn::SdnFabric* fabric_;
  FlowserverConfig config_;
  net::PathCache paths_;
  FlowStateTable table_;
  ReplicaPathSelector selector_;
  MultiReadPlanner planner_;
  WriteChainPlanner chain_planner_;
  sdn::StatsPoller poller_;
  Rng rng_;
  WriteRanker write_ranker_;
  std::vector<net::NodeId> edge_switches_;
  std::uint64_t selections_ = 0;
  std::uint64_t split_reads_ = 0;
  std::uint64_t write_chains_ = 0;
  std::uint64_t write_hops_ = 0;
  std::uint64_t write_truncated_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t stats_samples_ = 0;
  AdaptiveTelemetry telemetry_;
  // Totals already flushed into the promotion/demotion counters (the metric
  // handles take deltas once per tick, not one inc per transition).
  std::uint64_t flushed_promotions_ = 0;
  std::uint64_t flushed_demotions_ = 0;

  // Decision snapshot state.
  const sdn::LinkRateMonitor* monitor_ = nullptr;
  net::NetworkView view_;
  bool view_built_ = false;
  std::uint64_t view_epoch_ = 0;
  std::uint64_t view_rebuilds_ = 0;
  std::uint64_t seen_table_version_ = 0;
  std::uint64_t seen_fabric_epoch_ = 0;
  std::uint64_t seen_monitor_samples_ = 0;

  // Sharded-refresh state: per-shard freshness lives in the view's shard
  // stamps (table shard version at copy time); these only count the work.
  bool sharded_ = false;
  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t shard_reloads_ = 0;
  std::uint64_t link_refreshes_ = 0;

  // Admission queue. Guarded so producer threads can post_read() while the
  // control thread drains; everything else in the Flowserver stays
  // control-thread-only. Lock order: queue_mu_ is a leaf — nothing is
  // called while it is held.
  mutable common::Mutex queue_mu_;
  std::deque<PendingRead> queue_ GUARDED_BY(queue_mu_);
  // A batch_window drain event is pending.
  bool drain_armed_ GUARDED_BY(queue_mu_) = false;
  // Invalidates armed events once drained.
  std::uint64_t drain_gen_ GUARDED_BY(queue_mu_) = 0;

  // Snapshot-pipeline workers, created on the first threaded drain.
  std::unique_ptr<common::WorkerPool> pool_;

  // Observability (no-ops until config.obs is set).
  obs::Counter selections_metric_;
  obs::Counter split_reads_metric_;
  obs::Histogram poll_samples_hist_;  // per-cycle samples applied (work/tick)
  // Sharded-refresh metrics (no-ops unless config.shard_metrics is set —
  // they must not perturb sharded-vs-legacy metrics JSON diffs).
  obs::Counter full_rebuilds_metric_;
  obs::Counter shard_reloads_metric_;
  obs::Counter link_refreshes_metric_;
  // Adaptive-telemetry metrics (flowserver.poll.*), registered only when the
  // layer is active so a default run's metrics JSON is untouched.
  obs::Counter poll_applied_metric_;
  obs::Counter poll_deferred_mouse_metric_;
  obs::Counter poll_deferred_budget_metric_;
  obs::Counter poll_promotions_metric_;
  obs::Counter poll_demotions_metric_;
  obs::Gauge poll_elephants_gauge_;
  obs::Gauge poll_mice_gauge_;
  // Write-path metrics (flowserver.write.*), registered lazily on the first
  // planned chain so a run that never plans writes keeps its metrics JSON
  // byte-identical to the pre-write-path baseline.
  bool write_metrics_registered_ = false;
  obs::Counter write_chains_metric_;
  obs::Counter write_hops_metric_;
  obs::Counter write_truncated_metric_;
  obs::Histogram write_bottleneck_hist_;
};

}  // namespace mayflower::flowserver
