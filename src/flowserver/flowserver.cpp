#include "flowserver/flowserver.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/logging.hpp"

namespace mayflower::flowserver {

Flowserver::Flowserver(sdn::SdnFabric& fabric, FlowserverConfig config)
    : fabric_(&fabric),
      config_(config),
      paths_(fabric.topology()),
      selector_(fabric.topology(), paths_, table_),
      planner_(selector_),
      chain_planner_(selector_),
      poller_(fabric.events(), config.poll_interval,
              [this] { collect_stats(); }),
      rng_(config.seed),
      telemetry_(config.telemetry) {
  MAYFLOWER_ASSERT_MSG(config_.batch_size >= 1, "batch_size must be >= 1");
  table_.set_freeze_enabled(config.freeze_enabled);
  selector_.set_impact_aware(config.impact_aware);
  selector_.model().set_zero_hop_bps(config.zero_hop_bps);
  if (config_.obs != nullptr) {
    table_.set_obs(config_.obs);
    poller_.set_metrics(&config_.obs->metrics);
    selections_metric_ = config_.obs->metrics.counter("flowserver.selections");
    split_reads_metric_ =
        config_.obs->metrics.counter("flowserver.split_reads");
    // Per-cycle work: counter samples applied in one collection cycle. In a
    // deterministic simulation this is what "poll tick latency" means — the
    // wall-clock cost is O(samples) through the per-edge index.
    poll_samples_hist_ = config_.obs->metrics.histogram(
        "flowserver.poll.samples_per_tick",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  }
  // Failure awareness: a killed transfer's (frozen) estimate must expire —
  // its bandwidth is free again and SETBW state for it would be stale
  // forever. Path liveness itself reaches decisions through the view's
  // snapshot of fabric state, refreshed whenever the fault epoch moves.
  fabric_->add_flow_failure_listener([this](sdn::Cookie cookie) {
    table_.drop(cookie);
    telemetry_.forget(cookie);
  });
  // "Edge switch" in the polling sense: any switch with attached hosts. This
  // also covers hand-built topologies that do not label tiers.
  const net::Topology& topo = fabric.topology();
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind == net::NodeKind::kHost) continue;
    for (const net::LinkId l : topo.in_links(n)) {
      if (topo.node(topo.link(l).from).kind == net::NodeKind::kHost) {
        edge_switches_.push_back(n);
        break;
      }
    }
  }
  // State-plane sharding: one shard per edge switch (the same edge set the
  // poll sweep above discovered), installed into the empty table and view.
  if (config_.shard_by_edge) {
    net::ShardMap map = net::ShardMap::by_edge_switch(topo);
    sharded_ = map.sharded();
    table_.set_shard_map(map);
    view_.set_shard_map(std::move(map));
  }
  MAYFLOWER_ASSERT_MSG(config_.poll_groups >= 1, "poll_groups must be >= 1");
  if (config_.poll_groups > 1) {
    poller_.set_groups(static_cast<std::uint32_t>(config_.poll_groups));
  }
  if (config_.obs != nullptr && telemetry_.active()) {
    // Registered only when the adaptive layer is on: a default run's metrics
    // JSON must stay byte-identical to the pre-telemetry baseline.
    poll_applied_metric_ =
        config_.obs->metrics.counter("flowserver.poll.applied");
    poll_deferred_mouse_metric_ =
        config_.obs->metrics.counter("flowserver.poll.deferred_mouse");
    poll_deferred_budget_metric_ =
        config_.obs->metrics.counter("flowserver.poll.deferred_budget");
    poll_promotions_metric_ =
        config_.obs->metrics.counter("flowserver.poll.promotions");
    poll_demotions_metric_ =
        config_.obs->metrics.counter("flowserver.poll.demotions");
    poll_elephants_gauge_ =
        config_.obs->metrics.gauge("flowserver.poll.elephants");
    poll_mice_gauge_ = config_.obs->metrics.gauge("flowserver.poll.mice");
  }
  if (config_.obs != nullptr && config_.shard_metrics) {
    config_.obs->metrics.gauge("flowserver.shard.count")
        .set(static_cast<double>(table_.shard_count()));
    full_rebuilds_metric_ =
        config_.obs->metrics.counter("flowserver.shard.full_rebuilds");
    shard_reloads_metric_ =
        config_.obs->metrics.counter("flowserver.shard.reloads");
    link_refreshes_metric_ =
        config_.obs->metrics.counter("flowserver.shard.link_refreshes");
  }
}

void Flowserver::start() { poller_.start(); }
void Flowserver::stop() { poller_.stop(); }

bool Flowserver::view_stale() const {
  return !view_built_ || table_.version() != seen_table_version_ ||
         fabric_->state_epoch() != seen_fabric_epoch_ ||
         (monitor_ != nullptr && monitor_->samples() != seen_monitor_samples_);
}

void Flowserver::absorb_table_versions() {
  if (!sharded_) {
    seen_table_version_ = table_.version();
    return;
  }
  std::uint64_t sum = 0;
  for (std::uint32_t s = 0; s < table_.shard_count(); ++s) {
    const std::uint64_t v = table_.shard_version(s);
    view_.stamp_shard(s, v);
    sum += v;
  }
  seen_table_version_ = sum;
}

void Flowserver::refresh_view() {
  if (!sharded_ || !view_built_) {
    // Full rebuild: the legacy path, and a sharded server's first build (or
    // a manual invalidate — the shard stamps can no longer be trusted).
    view_.reset_links(fabric_->topology());
    fabric_->snapshot_liveness_into(view_);
    if (monitor_ != nullptr) monitor_->snapshot_into(view_);
    table_.snapshot_into(view_);
    absorb_table_versions();
    ++full_rebuilds_;
    full_rebuilds_metric_.inc();
  } else {
    // Incremental sharded refresh: overlay the link sections only if the
    // fabric epoch or the rate monitor moved (O(links), no flow copying),
    // then reload exactly the flow shards whose table version ran past the
    // stamp this view holds. Queries on the result are byte-identical to a
    // full rebuild's: the flows map and link index are global and the index
    // keeps keys sorted, so reload order cannot leak into answers.
    const bool links_stale =
        fabric_->state_epoch() != seen_fabric_epoch_ ||
        (monitor_ != nullptr && monitor_->samples() != seen_monitor_samples_);
    if (links_stale) {
      view_.refresh_link_state(fabric_->topology());
      fabric_->snapshot_liveness_into(view_);
      if (monitor_ != nullptr) monitor_->snapshot_into(view_);
      ++link_refreshes_;
      link_refreshes_metric_.inc();
    }
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < table_.shard_count(); ++s) {
      const std::uint64_t v = table_.shard_version(s);
      if (v != view_.shard_stamp(s)) {
        view_.unload_shard(s);
        table_.snapshot_shard_into(view_, s);
        view_.stamp_shard(s, v);
        ++shard_reloads_;
        shard_reloads_metric_.inc();
      }
      sum += v;
    }
    seen_table_version_ = sum;
  }
  view_.stamp(++view_epoch_, fabric_->events().now());
  seen_fabric_epoch_ = fabric_->state_epoch();
  seen_monitor_samples_ = monitor_ != nullptr ? monitor_->samples() : 0;
  view_built_ = true;
  ++view_rebuilds_;
}

const net::NetworkView& Flowserver::view() {
  if (view_stale()) refresh_view();
  return view_;
}

ReadAssignment Flowserver::to_assignment(const Candidate& c,
                                         sdn::Cookie cookie,
                                         double bytes) const {
  ReadAssignment a;
  a.cookie = cookie;
  a.replica = c.replica;
  a.path = c.path;
  a.bytes = bytes;
  a.est_bw_bps = c.est_bw_bps;
  return a;
}

void Flowserver::audit_decision(const SelectStats& stats,
                                const CostBreakdown& cost, sim::SimTime now,
                                bool split) {
  if (config_.obs == nullptr) return;
  obs::DecisionAudit audit;
  audit.time_sec = now.seconds();
  audit.candidates = static_cast<std::uint32_t>(stats.candidates_evaluated);
  audit.own_time_sec = cost.own_time;
  audit.impact_sec = cost.impact;
  audit.frozen_flows = static_cast<std::uint32_t>(table_.frozen_count(now));
  audit.freeze_suppressed = table_.freeze_suppressed_total();
  audit.split = split;
  config_.obs->trace.decision(audit);
}

std::vector<net::NodeId> Flowserver::reachable_replicas(
    net::NodeId client, const std::vector<net::NodeId>& replicas) {
  std::vector<net::NodeId> live;
  live.reserve(replicas.size());
  for (const net::NodeId r : replicas) {
    for (const net::Path& p : paths_.get(r, client)) {
      if (view_.path_alive(p)) {
        live.push_back(r);
        break;
      }
    }
  }
  return live;
}

void Flowserver::ensure_write_metrics() {
  if (write_metrics_registered_ || config_.obs == nullptr) return;
  write_metrics_registered_ = true;
  // Registered only once a chain is actually planned: a run that never
  // writes keeps its metrics JSON byte-identical to the read-only baseline.
  write_chains_metric_ = config_.obs->metrics.counter("flowserver.write.chains");
  write_hops_metric_ = config_.obs->metrics.counter("flowserver.write.hops");
  write_truncated_metric_ =
      config_.obs->metrics.counter("flowserver.write.truncated");
  write_bottleneck_hist_ = config_.obs->metrics.histogram(
      "flowserver.write.bottleneck_bps",
      {1e6, 1e7, 1e8, 1e9, 1e10});
}

std::vector<ReadAssignment> Flowserver::finish_chain(
    const std::vector<ChainHopPlan>& plans,
    const std::vector<sdn::Cookie>& cookies, std::size_t requested_hops,
    double bytes, const SelectStats& stats, sim::SimTime now) {
  std::vector<ReadAssignment> out;
  out.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ReadAssignment a = to_assignment(plans[i].candidate, cookies[i], bytes);
    // A chain moves as one unit: report the jointly-scheduled rate, not the
    // hop's standalone share.
    a.est_bw_bps = plans[i].planned_bps;
    out.push_back(std::move(a));
  }
  if (plans.size() < requested_hops) {
    ++write_truncated_;
    write_truncated_metric_.inc();
  }
  if (!plans.empty()) {
    ++write_chains_;
    write_hops_ += plans.size();
    write_chains_metric_.inc();
    write_hops_metric_.inc(plans.size());
    write_bottleneck_hist_.observe(plans[0].planned_bps);
    audit_decision(stats, plans[0].candidate.cost, now, false);
  }
  return out;
}

std::vector<ReadAssignment> Flowserver::decide(PendingRead& req,
                                               sim::SimTime now) {
  // Every answered request counts as one selection — including the ones the
  // view proves unserviceable (kUnavailable).
  ++selections_;
  selections_metric_.inc();
  if (req.replicas.empty()) return {};

  if (req.write) {
    ensure_write_metrics();
    // Hop cookies are drawn up front — all of them, even when a later hop
    // proves unreachable — so the Rng/cookie streams match the snapshot
    // pipeline's pre-phase draw exactly.
    std::vector<sdn::Cookie> cookies;
    cookies.reserve(req.replicas.size() - 1);
    for (std::size_t i = 0; i + 1 < req.replicas.size(); ++i) {
      cookies.push_back(fabric_->new_cookie());
    }
    SelectStats stats;
    const auto plans = chain_planner_.plan_and_commit(
        view_, req.replicas, units::Bytes{req.bytes}, cookies, now, &stats);
    return finish_chain(plans, cookies, cookies.size(), req.bytes, stats, now);
  }

  const net::NodeId client = req.client;
  const std::vector<net::NodeId>* replicas = &req.replicas;
  std::vector<net::NodeId> chosen_replica;
  if (req.chooser != nullptr) {
    // External replica policy: it sees only replicas the view can reach, so
    // a policy blind to faults never strands the request on a dead subtree.
    const std::vector<net::NodeId> live =
        reachable_replicas(client, req.replicas);
    if (live.empty()) return {};
    chosen_replica.assign(1, req.chooser(client, live, view_));
    replicas = &chosen_replica;
  }

  std::vector<ReadAssignment> out;
  SelectStats stats;
  if (config_.multiread_enabled && req.chooser == nullptr &&
      replicas->size() > 1) {
    const std::vector<sdn::Cookie> cookies{fabric_->new_cookie(),
                                           fabric_->new_cookie()};
    const auto plans = planner_.plan_and_commit(view_, client, *replicas,
                                                req.bytes, cookies, now,
                                                &stats);
    if (plans.size() == 2) {
      ++split_reads_;
      split_reads_metric_.inc();
      if (config_.obs != nullptr) {
        config_.obs->trace.mark_split(cookies[0]);
        config_.obs->trace.mark_split(cookies[1]);
      }
    }
    for (std::size_t i = 0; i < plans.size(); ++i) {
      out.push_back(
          to_assignment(plans[i].candidate, cookies[i], plans[i].bytes));
    }
    if (!plans.empty()) {
      audit_decision(stats, plans[0].candidate.cost, now, plans.size() == 2);
    }
  } else {
    const auto best =
        selector_.select(view_, client, *replicas, req.bytes, &stats);
    if (best.has_value()) {
      const sdn::Cookie cookie = fabric_->new_cookie();
      selector_.commit(view_, *best, cookie, req.bytes, now);
      out.push_back(to_assignment(*best, cookie, req.bytes));
      audit_decision(stats, best->cost, now, false);
    }
  }
  // Empty result: every replica is unreachable right now (failed links or
  // switches). The caller surfaces kUnavailable and retries after backoff.
  return out;
}

void Flowserver::enqueue_read(net::NodeId client,
                              std::vector<net::NodeId> replicas, double bytes,
                              PlanCallback done, ReplicaChooser chooser) {
  PendingRead p;
  p.client = client;
  p.replicas = std::move(replicas);
  p.bytes = bytes;
  p.chooser = std::move(chooser);
  p.done = std::move(done);
  bool size_triggered = false;
  bool arm_window = false;
  std::uint64_t gen = 0;
  {
    common::MutexLock lock(queue_mu_);
    queue_.push_back(std::move(p));
    size_triggered = queue_.size() >= config_.batch_size;
    if (!size_triggered && !drain_armed_) {
      drain_armed_ = true;
      arm_window = true;
      gen = drain_gen_;
    }
  }
  if (size_triggered) {
    drain();
    return;
  }
  if (arm_window) {
    fabric_->events().schedule_in(config_.batch_window, [this, gen] {
      // A size-triggered drain may have already flushed the batch this
      // event was armed for; in that case the generation moved on.
      if (!drain_generation_is(gen)) return;
      drain();
    });
  }
}

void Flowserver::post_read(net::NodeId client,
                           std::vector<net::NodeId> replicas, double bytes,
                           PlanCallback done, ReplicaChooser chooser) {
  PendingRead p;
  p.client = client;
  p.replicas = std::move(replicas);
  p.bytes = bytes;
  p.chooser = std::move(chooser);
  p.done = std::move(done);
  common::MutexLock lock(queue_mu_);
  queue_.push_back(std::move(p));
}

void Flowserver::enqueue_write(std::vector<net::NodeId> chain, double bytes,
                               PlanCallback done) {
  MAYFLOWER_ASSERT_MSG(chain.size() >= 2, "a write chain needs >= 2 hosts");
  PendingRead p;
  p.client = chain.front();
  p.replicas = std::move(chain);
  p.bytes = bytes;
  p.write = true;
  p.done = std::move(done);
  bool size_triggered = false;
  bool arm_window = false;
  std::uint64_t gen = 0;
  {
    common::MutexLock lock(queue_mu_);
    queue_.push_back(std::move(p));
    size_triggered = queue_.size() >= config_.batch_size;
    if (!size_triggered && !drain_armed_) {
      drain_armed_ = true;
      arm_window = true;
      gen = drain_gen_;
    }
  }
  if (size_triggered) {
    drain();
    return;
  }
  if (arm_window) {
    fabric_->events().schedule_in(config_.batch_window, [this, gen] {
      if (!drain_generation_is(gen)) return;
      drain();
    });
  }
}

void Flowserver::post_write(std::vector<net::NodeId> chain, double bytes,
                            PlanCallback done) {
  MAYFLOWER_ASSERT_MSG(chain.size() >= 2, "a write chain needs >= 2 hosts");
  PendingRead p;
  p.client = chain.front();
  p.replicas = std::move(chain);
  p.bytes = bytes;
  p.write = true;
  p.done = std::move(done);
  common::MutexLock lock(queue_mu_);
  queue_.push_back(std::move(p));
}

std::vector<ReadAssignment> Flowserver::plan_write(
    const std::vector<net::NodeId>& chain, double bytes) {
  std::vector<ReadAssignment> out;
  enqueue_write(chain, bytes, [&out](std::vector<ReadAssignment> plan) {
    out = std::move(plan);
  });
  drain();  // no-op when the enqueue already size-triggered the batch
  return out;
}

std::size_t Flowserver::drain() {
  std::deque<PendingRead> batch;
  {
    common::MutexLock lock(queue_mu_);
    drain_armed_ = false;
    ++drain_gen_;
    if (queue_.empty()) return 0;
    batch.swap(queue_);
  }

  // One snapshot for the whole batch. Stale inputs (a poll, a fault, a drop
  // since the last build) force a rebuild here — never mid-batch.
  view();
  const sim::SimTime now = fabric_->events().now();

  std::vector<Decided> results;
  results.reserve(batch.size());
  if (config_.decision_threads == 0) {
    for (PendingRead& req : batch) {
      Decided d;
      d.done = std::move(req.done);
      d.plan = decide(req, now);
      results.push_back(std::move(d));
    }
  } else {
    decide_snapshot_batch(batch, now, results);
  }

  // Bulk path install: one fabric call, one install-metrics flush for the
  // whole batch. Must precede the callbacks — they start the flows.
  std::vector<sdn::SdnFabric::PathInstall> installs;
  for (const Decided& d : results) {
    for (const ReadAssignment& a : d.plan) {
      installs.push_back({a.cookie, &a.path});
    }
  }
  fabric_->install_paths(installs);

  // The batch's own write-through commits moved the table version; the view
  // already reflects them, so absorb the delta (re-stamping the touched
  // shards) instead of rebuilding.
  absorb_table_versions();

  for (Decided& d : results) {
    if (d.done) d.done(std::move(d.plan));
  }
  return batch.size();
}

void Flowserver::decide_snapshot_batch(std::deque<PendingRead>& batch,
                                       sim::SimTime now,
                                       std::vector<Decided>& results) {
  // --- pre-phase (serial, batch order) ----------------------------------
  // Everything order-sensitive that is NOT the evaluation itself happens
  // here: chooser policies run against the batch view, and multiread slots
  // pre-draw their cookie pair so cookie assignment is independent of which
  // worker later evaluates the slot.
  std::vector<Slot> slots(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PendingRead& req = batch[i];
    Slot& s = slots[i];
    s.client = req.client;
    s.bytes = req.bytes;
    if (req.replicas.empty()) {
      s.unavailable = true;
      continue;
    }
    if (req.write) {
      // Write slots pre-draw every hop cookie here — cookie assignment must
      // not depend on which worker evaluates the chain, and the legacy
      // pipeline burns the same draws even for hops that go unrouted.
      s.write = true;
      s.replicas = req.replicas;
      ensure_write_metrics();
      s.cookies.reserve(s.replicas.size() - 1);
      for (std::size_t h = 0; h + 1 < s.replicas.size(); ++h) {
        s.cookies.push_back(fabric_->new_cookie());
      }
      continue;
    }
    if (req.chooser != nullptr) {
      const std::vector<net::NodeId> live =
          reachable_replicas(req.client, req.replicas);
      if (live.empty()) {
        s.unavailable = true;
        continue;
      }
      s.replicas.assign(1, req.chooser(req.client, live, view_));
      continue;
    }
    s.replicas = req.replicas;
    if (config_.multiread_enabled && s.replicas.size() > 1) {
      s.multiread = true;
      s.cookies = {fabric_->new_cookie(), fabric_->new_cookie()};
    }
  }

  // --- evaluate (parallel, against the immutable batch view) ------------
  // Single-path slots read view_ directly (select() is pure). Multiread
  // slots plan on a worker-private scratch copy, restored after every slot,
  // so each slot sees exactly the batch-start state regardless of which
  // worker runs it or in what order — that is the determinism argument.
  if (pool_ == nullptr) {
    pool_ = std::make_unique<common::WorkerPool>(config_.decision_threads);
  }
  std::vector<net::NetworkView> scratch(config_.decision_threads, view_);
  pool_->parallel_for(
      slots.size(), [this, &slots, &scratch](std::size_t worker,
                                             std::size_t i) {
        Slot& s = slots[i];
        if (s.unavailable) return;
        if (s.write) {
          s.chain = chain_planner_.plan_readonly(scratch[worker], s.replicas,
                                                 units::Bytes{s.bytes},
                                                 s.cookies, &s.stats);
        } else if (s.multiread) {
          s.plans = planner_.plan_readonly(scratch[worker], s.client,
                                           s.replicas, s.bytes, s.cookies,
                                           &s.stats);
        } else {
          s.best = selector_.select(view_, s.client, s.replicas, s.bytes,
                                    &s.stats);
        }
      });

  // --- replay (serial, batch order) --------------------------------------
  // Commits write through table + view with the usual stale-share clamp, so
  // a slot planned against the batch-start snapshot can never raise a flow
  // above what an earlier slot's commit already lowered it to.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Slot& s = slots[i];
    Decided d;
    d.done = std::move(batch[i].done);
    ++selections_;
    selections_metric_.inc();
    if (s.unavailable) {
      results.push_back(std::move(d));
      continue;
    }
    if (s.write) {
      chain_planner_.commit_plans(view_, s.chain, units::Bytes{s.bytes},
                                  s.cookies, now);
      d.plan = finish_chain(s.chain, s.cookies, s.cookies.size(), s.bytes,
                            s.stats, now);
      results.push_back(std::move(d));
      continue;
    }
    if (s.multiread) {
      if (s.plans.size() == 2) {
        // Same commit transcript as the legacy split acceptance: both
        // subflows land with the full request size, then subflow 1 takes
        // its adjusted share and both take their split sizes.
        selector_.commit(view_, s.plans[0].candidate, s.cookies[0], s.bytes,
                         now);
        selector_.commit(view_, s.plans[1].candidate, s.cookies[1], s.bytes,
                         now);
        selector_.setbw(view_, s.cookies[0], s.plans[0].planned_bps, now);
        selector_.resize(view_, s.cookies[0], s.plans[0].bytes, now);
        selector_.resize(view_, s.cookies[1], s.plans[1].bytes, now);
        ++split_reads_;
        split_reads_metric_.inc();
        if (config_.obs != nullptr) {
          config_.obs->trace.mark_split(s.cookies[0]);
          config_.obs->trace.mark_split(s.cookies[1]);
        }
        d.plan.push_back(
            to_assignment(s.plans[0].candidate, s.cookies[0],
                          s.plans[0].bytes));
        d.plan.push_back(
            to_assignment(s.plans[1].candidate, s.cookies[1],
                          s.plans[1].bytes));
        audit_decision(s.stats, s.plans[0].candidate.cost, now, true);
      } else if (s.plans.size() == 1) {
        selector_.commit(view_, s.plans[0].candidate, s.cookies[0], s.bytes,
                         now);
        d.plan.push_back(
            to_assignment(s.plans[0].candidate, s.cookies[0], s.bytes));
        audit_decision(s.stats, s.plans[0].candidate.cost, now, false);
      }
    } else if (s.best.has_value()) {
      // Single-path slots draw their cookie at replay (in batch order),
      // matching the legacy pipeline's draw-on-success behavior.
      const sdn::Cookie cookie = fabric_->new_cookie();
      selector_.commit(view_, *s.best, cookie, s.bytes, now);
      d.plan.push_back(to_assignment(*s.best, cookie, s.bytes));
      audit_decision(s.stats, s.best->cost, now, false);
    }
    results.push_back(std::move(d));
  }
}

std::vector<ReadAssignment> Flowserver::select_for_read(
    net::NodeId client, const std::vector<net::NodeId>& replicas,
    double bytes) {
  std::vector<ReadAssignment> out;
  enqueue_read(client, replicas, bytes,
               [&out](std::vector<ReadAssignment> plan) {
                 out = std::move(plan);
               });
  drain();  // no-op when the enqueue already size-triggered the batch
  return out;
}

ReadAssignment Flowserver::select_path_for_replica(net::NodeId client,
                                                   net::NodeId replica,
                                                   double bytes) {
  const std::vector<ReadAssignment> plan =
      select_for_read(client, {replica}, bytes);
  if (plan.empty()) return ReadAssignment{};  // cookie == 0: unreachable
  return plan[0];
}

void Flowserver::flow_dropped(sdn::Cookie cookie) {
  table_.drop(cookie);
  telemetry_.forget(cookie);
}

net::NodeId Flowserver::best_write_target(
    net::NodeId writer, const std::vector<net::NodeId>& candidates) {
  MAYFLOWER_ASSERT(!candidates.empty());
  const net::NetworkView& v = view();
  // The ranking itself is a stateless policy over the view (the model-based
  // default or an injected policy::WritePlacement); only the tie-break draw
  // lives here. Ties are common (an idle fabric offers every candidate the
  // same share) and MUST break randomly: deterministic ties would stack
  // every file's replicas onto the same few hosts.
  const std::vector<net::NodeId> ties =
      write_ranker_ != nullptr
          ? write_ranker_(writer, candidates, v)
          : rank_write_targets_by_model(selector_.model(), paths_, writer,
                                        candidates, v);
  MAYFLOWER_ASSERT(!ties.empty());
  return ties[rng_.next_below(ties.size())];
}

void Flowserver::collect_stats() {
  ++polls_;
  const std::uint64_t samples_before = stats_samples_;
  const sim::SimTime now = fabric_->events().now();
  // Poll rotation: tick t sweeps the edges whose index lands in group
  // t mod poll_groups, so a full cycle of ticks covers every edge exactly
  // once and each tick stales only the swept edges' shards. poll_groups 1
  // degenerates to the legacy full sweep.
  const std::uint64_t groups = config_.poll_groups;
  const std::uint64_t group = (polls_ - 1) % groups;
  const std::uint64_t cycle = (polls_ - 1) / groups;
  const bool adaptive = telemetry_.active();
  if (adaptive) telemetry_.begin_tick(cycle);

  // This tick's edges, in sweep order. Under a binding samples budget the
  // start position rotates by cycle so flows of later-indexed edges are not
  // systematically the ones past the cutoff.
  std::vector<std::size_t> sweep;
  sweep.reserve(edge_switches_.size() / groups + 1);
  for (std::size_t i = 0; i < edge_switches_.size(); ++i) {
    if (i % groups == group) sweep.push_back(i);
  }
  if (adaptive && config_.telemetry.samples_budget > 0 && !sweep.empty()) {
    std::rotate(sweep.begin(),
                sweep.begin() + static_cast<std::ptrdiff_t>(
                                    cycle % sweep.size()),
                sweep.end());
  }

  for (const std::size_t i : sweep) {
    const net::NodeId edge = edge_switches_[i];
    // A crashed switch answers no polls; its flows were killed with it and
    // the failure listener already dropped their table entries.
    if (!fabric_->switch_up(edge)) continue;
    // Indexed poll: each edge returns exactly its own flows (cookie order),
    // so a full cycle costs O(applied samples), not O(edges x fabric flows).
    for (const sdn::FlowStatsRecord& rec :
         fabric_->poll_edge_flow_stats(edge)) {
      if (!rec.active) {
        // Final counter of a finished flow: the drop request usually beat us
        // here; dropping again is harmless. Final counters bypass the
        // telemetry budget — they arrive as flow-removed notifications, not
        // polled samples, and dropping state must never be deferred.
        ++stats_samples_;
        table_.drop(rec.cookie);
        telemetry_.forget(rec.cookie);
        continue;
      }
      const TrackedFlow* f = table_.find(rec.cookie);
      // Estimator audit: how far is the share the table believes (frozen
      // estimate or last accepted measurement) from the rate the data plane
      // is actually giving the flow right now? Sampled before UPDATEBW so
      // the freeze's effect on belief accuracy is visible — and sampled for
      // DEFERRED flows too, so the audit series keeps full-rate cadence and
      // budget points stay comparable (the audit is experiment
      // instrumentation, not controller work the budget accounts for).
      if (config_.obs != nullptr && rec.rate_bps > 0.0 && f != nullptr) {
        config_.obs->trace.belief_error_sample(
            std::abs(f->bw_bps - rec.rate_bps) / rec.rate_bps);
      }
      if (adaptive && f != nullptr) {
        // Classification signal: the flow's byte delta over the window since
        // its last APPLIED sample (a deferred mouse accumulates window, so
        // its next applied sample still measures the true average rate).
        const double window = (now - f->last_poll_time).seconds();
        const double window_rate =
            window > 0.0 ? (rec.bytes - f->last_poll_bytes) / window
                         : rec.rate_bps;
        const double edge_cap =
            f->path.links.empty()
                ? 0.0
                : fabric_->topology().link(f->path.links.front()).capacity_bps;
        const AdaptiveTelemetry::Verdict verdict =
            telemetry_.admit(rec.cookie, window_rate, edge_cap);
        if (verdict == AdaptiveTelemetry::Verdict::kDeferMouse) {
          poll_deferred_mouse_metric_.inc();
          continue;
        }
        if (verdict == AdaptiveTelemetry::Verdict::kDeferBudget) {
          poll_deferred_budget_metric_.inc();
          continue;
        }
        poll_applied_metric_.inc();
      }
      ++stats_samples_;
      table_.update_from_stats(rec.cookie, rec.bytes, now);
    }
  }
  if (adaptive && config_.obs != nullptr) {
    poll_promotions_metric_.inc(telemetry_.promotions() - flushed_promotions_);
    poll_demotions_metric_.inc(telemetry_.demotions() - flushed_demotions_);
    flushed_promotions_ = telemetry_.promotions();
    flushed_demotions_ = telemetry_.demotions();
    poll_elephants_gauge_.set(static_cast<double>(telemetry_.elephants()));
    poll_mice_gauge_.set(static_cast<double>(telemetry_.mice()));
  }
  poll_samples_hist_.observe(
      static_cast<double>(stats_samples_ - samples_before));
}

}  // namespace mayflower::flowserver
