// Replica–path selection (Pseudocode 1, Eq. 1-2 of §4.2).
//
// Evaluates every shortest path from every candidate replica to the client
// and picks the one minimizing
//
//   cost(p) = d_j / b_j  +  sum over existing flows f on p's links of
//             ( r_f / b'_f  -  r_f / b_f )
//
// i.e. the new request's expected completion time plus the total increase in
// completion time it inflicts on in-flight requests. Every fact a selection
// reads — link capacities, path liveness, believed shares — comes from one
// NetworkView snapshot, so all selections in a decision batch see identical
// state. Committing a selection applies SETBW to every flow whose share
// changed (freezing them) and registers the new flow, writing through to
// BOTH the authoritative FlowStateTable and the batch's view so later
// decisions in the same batch observe it.
#pragma once

#include <optional>
#include <vector>

#include "flowserver/bandwidth_model.hpp"
#include "flowserver/flow_state.hpp"
#include "net/paths.hpp"

namespace mayflower::flowserver {

struct CostBreakdown {
  double total = 0.0;
  double own_time = 0.0;      // d_j / b_j
  double impact = 0.0;        // sum of existing-flow slowdowns
};

struct Candidate {
  net::NodeId replica = net::kInvalidNode;
  net::Path path;
  double est_bw_bps = 0.0;
  CostBreakdown cost;
  // Reduced shares for flows on this path whose bw would change.
  std::vector<std::pair<sdn::Cookie, double>> bumped;
};

// Pure cost evaluation of a single path (FLOWCOST in Pseudocode 2) against
// one snapshot.
Candidate evaluate_path(const BandwidthModel& model,
                        const net::NetworkView& view, net::NodeId replica,
                        const net::Path& path, double request_bytes);

// View-only commit for read-only planning against a scratch snapshot:
// applies the candidate's bumped shares and registers the new flow in
// `view` without touching any table. No stale-share clamp — a scratch view
// IS the snapshot, so there is no fresher state to clamp against.
void apply_candidate(net::NetworkView& view, const Candidate& chosen,
                     sdn::Cookie cookie, double request_bytes);

// Builds a decision view from a table alone: configured capacities, every
// link up, no rates. The Flowserver layers fabric liveness and monitor rates
// on top; fixture-based tests and the walkthrough use it as-is.
net::NetworkView make_decision_view(const net::Topology& topo,
                                    const FlowStateTable& table,
                                    std::uint64_t epoch = 0,
                                    sim::SimTime built_at = sim::SimTime{});

// How a select() arrived at its answer; feeds the decision-audit trace.
struct SelectStats {
  std::uint64_t candidates_evaluated = 0;  // replica×path pairs costed
};

class ReplicaPathSelector {
 public:
  ReplicaPathSelector(const net::Topology& topo, net::PathCache& paths,
                      FlowStateTable& table)
      : topo_(&topo), paths_(&paths), table_(&table) {}

  // Evaluates all shortest paths from every replica to the client against
  // `view`; returns the minimum-cost candidate, or nullopt if no replica is
  // reachable (the view's liveness bits gate every path). Does not mutate
  // any state. `stats` (optional) reports how many candidates were costed.
  std::optional<Candidate> select(const net::NetworkView& view,
                                  net::NodeId client,
                                  const std::vector<net::NodeId>& replicas,
                                  double request_bytes,
                                  SelectStats* stats = nullptr) const;

  // Applies a selection: SETBW on bumped flows, registers the new flow under
  // `cookie` with its estimated share (both frozen per Pseudocode 2). Writes
  // through to the table AND `view`. The stale-share clamp reads the TABLE's
  // current value — the authoritative state at commit time — so a selection
  // made against an older snapshot can never raise a flow above what a
  // fresher poll already lowered it to (min(current, planned)).
  void commit(net::NetworkView& view, const Candidate& chosen,
              sdn::Cookie cookie, double request_bytes, sim::SimTime now);

  // Write-through mutations for the multi-read planner's split sizing.
  void setbw(net::NetworkView& view, sdn::Cookie cookie, double bw_bps,
              sim::SimTime now);
  void resize(net::NetworkView& view, sdn::Cookie cookie,
              double new_size_bytes, sim::SimTime now);

  // Paired tentative scope over table + view (multi-read planning).
  void begin_tentative(net::NetworkView& view);
  void commit_tentative(net::NetworkView& view);
  void rollback_tentative(net::NetworkView& view);

  // Ablation knob: when false the cost drops Eq. 2's second term (impact on
  // existing flows) and greedily maximizes the new flow's own bandwidth.
  void set_impact_aware(bool aware) { impact_aware_ = aware; }
  bool impact_aware() const { return impact_aware_; }

  const BandwidthModel& model() const { return model_; }
  BandwidthModel& model() { return model_; }
  FlowStateTable& table() { return *table_; }
  net::PathCache& paths() { return *paths_; }
  const net::Topology& topology() const { return *topo_; }

 private:
  const net::Topology* topo_;
  net::PathCache* paths_;
  FlowStateTable* table_;
  BandwidthModel model_;
  bool impact_aware_ = true;
};

}  // namespace mayflower::flowserver
