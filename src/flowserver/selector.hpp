// Replica–path selection (Pseudocode 1, Eq. 1-2 of §4.2).
//
// Evaluates every shortest path from every candidate replica to the client
// and picks the one minimizing
//
//   cost(p) = d_j / b_j  +  sum over existing flows f on p's links of
//             ( r_f / b'_f  -  r_f / b_f )
//
// i.e. the new request's expected completion time plus the total increase in
// completion time it inflicts on in-flight requests. Committing a selection
// applies SETBW to every flow whose share changed (freezing them) and
// registers the new flow with its estimated share.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "flowserver/bandwidth_model.hpp"
#include "flowserver/flow_state.hpp"
#include "net/paths.hpp"

namespace mayflower::flowserver {

struct CostBreakdown {
  double total = 0.0;
  double own_time = 0.0;      // d_j / b_j
  double impact = 0.0;        // sum of existing-flow slowdowns
};

struct Candidate {
  net::NodeId replica = net::kInvalidNode;
  net::Path path;
  double est_bw_bps = 0.0;
  CostBreakdown cost;
  // Reduced shares for flows on this path whose bw would change.
  std::vector<std::pair<sdn::Cookie, double>> bumped;
};

// Pure cost evaluation of a single path (FLOWCOST in Pseudocode 2).
Candidate evaluate_path(const BandwidthModel& model,
                        const FlowStateTable& table, net::NodeId replica,
                        const net::Path& path, double request_bytes);

// How a select() arrived at its answer; feeds the decision-audit trace.
struct SelectStats {
  std::uint64_t candidates_evaluated = 0;  // replica×path pairs costed
};

class ReplicaPathSelector {
 public:
  ReplicaPathSelector(const net::Topology& topo, net::PathCache& paths,
                      FlowStateTable& table)
      : topo_(&topo), paths_(&paths), table_(&table), model_(topo, table) {}

  // Evaluates all shortest paths from every replica to the client; returns
  // the minimum-cost candidate, or nullopt if no replica is reachable.
  // Does not mutate any state. `stats` (optional) reports how many
  // candidates were costed.
  std::optional<Candidate> select(net::NodeId client,
                                  const std::vector<net::NodeId>& replicas,
                                  double request_bytes,
                                  SelectStats* stats = nullptr) const;

  // Applies a selection: SETBW on bumped flows, registers the new flow under
  // `cookie` with its estimated share (both frozen per Pseudocode 2).
  void commit(const Candidate& chosen, sdn::Cookie cookie,
              double request_bytes, sim::SimTime now);

  // Ablation knob: when false the cost drops Eq. 2's second term (impact on
  // existing flows) and greedily maximizes the new flow's own bandwidth.
  void set_impact_aware(bool aware) { impact_aware_ = aware; }
  bool impact_aware() const { return impact_aware_; }

  // Liveness filter: paths for which this returns false are skipped (the
  // Flowserver wires in SdnFabric::path_alive, so selection never lands on a
  // down link or crashed switch). Unset = every cached path is eligible.
  void set_path_filter(std::function<bool(const net::Path&)> filter) {
    path_filter_ = std::move(filter);
  }

  const BandwidthModel& model() const { return model_; }
  BandwidthModel& model() { return model_; }
  FlowStateTable& table() { return *table_; }
  net::PathCache& paths() { return *paths_; }
  const net::Topology& topology() const { return *topo_; }

 private:
  const net::Topology* topo_;
  net::PathCache* paths_;
  FlowStateTable* table_;
  BandwidthModel model_;
  bool impact_aware_ = true;
  std::function<bool(const net::Path&)> path_filter_;
};

}  // namespace mayflower::flowserver
