// Multi-replica parallel reads (§4.3).
//
// A read job is split into two subflows only when the combined estimated
// share beats the single best flow:
//   1. pick (replica, path) p1 greedily; tentatively commit it,
//   2. pick p2 from the *remaining* replicas (distinct replica avoids the
//      same server-side bottleneck),
//   3. p2's selection may have bumped subflow 1 to b1'; accept the split iff
//      b1' + b2 > b1, sizing S_i = d * b_i / (b1' + b2) so both subflows
//      finish together; otherwise roll the tentative changes back.
//
// Both selection rounds read the SAME NetworkView; commits write through to
// it, so round 2 sees subflow 1's bump without touching live fabric state.
#pragma once

#include <vector>

#include "flowserver/selector.hpp"

namespace mayflower::flowserver {

struct SubflowPlan {
  Candidate candidate;
  double bytes = 0.0;        // portion of the request read via this subflow
  double planned_bps = 0.0;   // share the split sizing assumed
};

// Plans one read request. Returns 1 entry (single read) or 2 (split read).
// Mutates `selector.table()` (and the view) exactly as if the chosen
// subflows were committed.
class MultiReadPlanner {
 public:
  explicit MultiReadPlanner(ReplicaPathSelector& selector)
      : selector_(&selector) {}

  // Pure planning + commit in one step (commit must be atomic with planning
  // because planning itself tentatively mutates the table). `cookies` must
  // provide at least 2 ids; the number actually used equals the returned
  // plan size. `stats` (optional) accumulates candidates across both
  // selection rounds.
  std::vector<SubflowPlan> plan_and_commit(
      net::NetworkView& view, net::NodeId client,
      const std::vector<net::NodeId>& replicas, double request_bytes,
      const std::vector<sdn::Cookie>& cookies, sim::SimTime now,
      SelectStats* stats = nullptr);

  // Read-only variant for the threaded snapshot pipeline: plans against
  // `scratch` — a worker-private copy of the batch snapshot — and leaves it
  // exactly as found (the whole planning transcript runs inside a view
  // tentative scope and rolls back). Touches no table and no live state, so
  // any number of workers may run it concurrently on their own scratches.
  // The chosen subflows, sizes and planned shares are decision-identical to
  // what plan_and_commit would pick from the same snapshot.
  std::vector<SubflowPlan> plan_readonly(
      net::NetworkView& scratch, net::NodeId client,
      const std::vector<net::NodeId>& replicas, double request_bytes,
      const std::vector<sdn::Cookie>& cookies,
      SelectStats* stats = nullptr) const;

 private:
  ReplicaPathSelector* selector_;
};

}  // namespace mayflower::flowserver
