#include "flowserver/telemetry.hpp"

#include "common/assert.hpp"

namespace mayflower::flowserver {

AdaptiveTelemetry::AdaptiveTelemetry(TelemetryConfig config)
    : config_(config) {
  MAYFLOWER_ASSERT_MSG(config_.mouse_period >= 1, "mouse_period must be >= 1");
  MAYFLOWER_ASSERT_MSG(config_.demote_after >= 1, "demote_after must be >= 1");
  MAYFLOWER_ASSERT_MSG(config_.mouse_fraction <= config_.elephant_fraction,
                       "hysteresis band inverted");
}

void AdaptiveTelemetry::begin_tick(std::uint64_t cycle) {
  cycle_ = cycle;
  applied_this_tick_ = 0;
}

void AdaptiveTelemetry::classify(FlowState& st, double rate, double cap) {
  if (cap <= 0.0) return;  // zero-hop/unknown uplink: hold the current class
  if (rate >= config_.elephant_fraction * cap) {
    st.slow_streak = 0;
    if (st.cls == FlowClass::kMouse) {
      // Promotion is immediate: a mouse running hot must regain full-rate
      // polling the moment a sample shows it (detection latency is already
      // bounded by its sampling period; don't add streak delay on top).
      st.cls = FlowClass::kElephant;
      ++elephants_;
      ++promotions_;
    }
  } else if (rate < config_.mouse_fraction * cap) {
    if (st.cls == FlowClass::kElephant && ++st.slow_streak >=
                                              config_.demote_after) {
      st.cls = FlowClass::kMouse;
      st.slow_streak = 0;
      --elephants_;
      ++demotions_;
    }
  } else {
    // Hysteresis band between the two thresholds: hold the current class so
    // a flow hovering near 10% of its uplink doesn't flap.
    st.slow_streak = 0;
  }
}

AdaptiveTelemetry::Verdict AdaptiveTelemetry::admit(sdn::Cookie cookie,
                                                    double window_rate_bps,
                                                    double edge_capacity_bps) {
  auto [it, inserted] = state_.try_emplace(cookie);
  FlowState& st = it->second;
  if (inserted) ++elephants_;  // newborns are elephants (see FlowState)

  const bool due =
      st.cls == FlowClass::kElephant || cycle_ >= st.next_due_cycle;
  if (!due) {
    ++deferred_mouse_;
    return Verdict::kDeferMouse;
  }
  if (config_.samples_budget > 0 &&
      applied_this_tick_ >= config_.samples_budget) {
    // Budget exhausted for this tick. The flow stays due, so it contends
    // again next tick; under a persistently binding budget the Flowserver's
    // rotating sweep start keeps any one edge from always losing.
    ++deferred_budget_;
    return Verdict::kDeferBudget;
  }

  ++applied_this_tick_;
  const FlowClass before = st.cls;
  classify(st, window_rate_bps, edge_capacity_bps);
  if (st.cls == FlowClass::kMouse) {
    if (before == FlowClass::kElephant) {
      // Freshly demoted: stagger its phase by cookie so one hot cycle's
      // demotions don't all come due in the same future cycle.
      st.next_due_cycle = cycle_ + 1 + (cookie % config_.mouse_period);
    } else {
      st.next_due_cycle = cycle_ + config_.mouse_period;
    }
  } else {
    st.next_due_cycle = cycle_ + 1;
  }
  return Verdict::kApply;
}

void AdaptiveTelemetry::forget(sdn::Cookie cookie) {
  const auto it = state_.find(cookie);
  if (it == state_.end()) return;
  if (it->second.cls == FlowClass::kElephant) --elephants_;
  state_.erase(it);
}

AdaptiveTelemetry::FlowClass AdaptiveTelemetry::flow_class(
    sdn::Cookie cookie) const {
  const auto it = state_.find(cookie);
  MAYFLOWER_ASSERT_MSG(it != state_.end(), "flow is not classified");
  return it->second.cls;
}

}  // namespace mayflower::flowserver
