#include "net/link_index.hpp"

#include <algorithm>

namespace mayflower::net {

const std::vector<LinkIndex::Key> LinkIndex::empty_{};

void LinkIndex::add(Key key, const std::vector<LinkId>& links) {
  for (const LinkId l : links) {
    ensure_size(static_cast<std::size_t>(l) + 1);
    std::vector<Key>& keys = per_link_[l];
    if (keys.empty() || keys.back() < key) {
      keys.push_back(key);  // monotone key allocation: the common case
      continue;
    }
    const auto it = std::lower_bound(keys.begin(), keys.end(), key);
    MAYFLOWER_ASSERT_MSG(it == keys.end() || *it != key,
                         "key already indexed on this link");
    keys.insert(it, key);
  }
}

void LinkIndex::remove(Key key, const std::vector<LinkId>& links) {
  for (const LinkId l : links) {
    MAYFLOWER_ASSERT(l < per_link_.size());
    std::vector<Key>& keys = per_link_[l];
    const auto it = std::lower_bound(keys.begin(), keys.end(), key);
    MAYFLOWER_ASSERT_MSG(it != keys.end() && *it == key,
                         "removing a key the index does not hold");
    keys.erase(it);
  }
}

std::vector<LinkIndex::Key> LinkIndex::on_links(
    const std::vector<LinkId>& links) const {
  std::vector<Key> out;
  for (const LinkId l : links) {
    const std::vector<Key>& keys = on_link(l);
    out.insert(out.end(), keys.begin(), keys.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LinkIndex::clear() {
  for (std::vector<Key>& keys : per_link_) keys.clear();
}

}  // namespace mayflower::net
