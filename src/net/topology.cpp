#include "net/topology.hpp"

#include <deque>

namespace mayflower::net {
namespace {

std::uint64_t pair_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kEdgeSwitch: return "edge";
    case NodeKind::kAggSwitch: return "agg";
    case NodeKind::kCoreSwitch: return "core";
  }
  return "?";
}

NodeId Topology::add_node(NodeKind kind, std::string name, std::int32_t pod,
                          std::int32_t rack) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{kind, std::move(name), pod, rack});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId from, NodeId to, double capacity_bps) {
  MAYFLOWER_ASSERT(from < nodes_.size() && to < nodes_.size());
  MAYFLOWER_ASSERT_MSG(from != to, "self-links are not allowed");
  MAYFLOWER_ASSERT_MSG(capacity_bps > 0.0, "link capacity must be positive");
  MAYFLOWER_ASSERT_MSG(find_link(from, to) == kInvalidLink,
                       "duplicate directed link");
  const auto id = static_cast<LinkId>(links_.size());
  Link l;
  l.from = from;
  l.to = to;
  l.capacity_bps = capacity_bps;
  l.name = nodes_[from].name + "->" + nodes_[to].name;
  links_.push_back(std::move(l));
  out_[from].push_back(id);
  in_[to].push_back(id);
  link_index_[pair_key(from, to)] = id;
  return id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, double capacity_bps) {
  const LinkId forward = add_link(a, b, capacity_bps);
  add_link(b, a, capacity_bps);
  return forward;
}

LinkId Topology::find_link(NodeId from, NodeId to) const {
  const auto it = link_index_.find(pair_key(from, to));
  return it == link_index_.end() ? kInvalidLink : it->second;
}

std::vector<NodeId> Topology::hosts() const {
  return nodes_of_kind(NodeKind::kHost);
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == kind) out.push_back(id);
  }
  return out;
}

int Topology::hop_distance(NodeId from, NodeId to) const {
  MAYFLOWER_ASSERT(from < nodes_.size() && to < nodes_.size());
  if (from == to) return 0;
  std::vector<int> dist(nodes_.size(), -1);
  dist[from] = 0;
  std::deque<NodeId> queue{from};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const LinkId l : out_[u]) {
      const NodeId v = links_[l].to;
      if (dist[v] >= 0) continue;
      dist[v] = dist[u] + 1;
      if (v == to) return dist[v];
      queue.push_back(v);
    }
  }
  return -1;
}

}  // namespace mayflower::net
