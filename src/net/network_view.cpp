#include "net/network_view.hpp"

#include "common/assert.hpp"

namespace mayflower::net {

void NetworkView::reset_links(const Topology& topo) {
  refresh_link_state(topo);
  flows_.clear();
  index_.clear();
  tentative_ = false;
  undo_.clear();
  for (auto& keys : shard_keys_) keys.clear();
  shard_stamp_.assign(shard_stamp_.size(), 0);
}

void NetworkView::refresh_link_state(const Topology& topo) {
  const std::size_t n = topo.link_count();
  capacity_bps_.resize(n);
  up_.assign(n, 1);
  tx_rate_bps_.assign(n, 0.0);
  for (LinkId l = 0; l < static_cast<LinkId>(n); ++l) {
    capacity_bps_[l] = topo.link(l).capacity_bps;
  }
  stats_.clear();
}

void NetworkView::set_shard_map(ShardMap map) {
  MAYFLOWER_ASSERT_MSG(flows_.empty(),
                       "install the shard map before loading flows");
  shard_map_ = std::move(map);
  if (shard_map_.sharded()) {
    shard_keys_.assign(shard_map_.shard_count(), {});
    shard_stamp_.assign(shard_map_.shard_count(), 0);
  } else {
    shard_keys_.clear();
    shard_stamp_.clear();
  }
}

void NetworkView::unload_shard(std::uint32_t s) {
  MAYFLOWER_ASSERT_MSG(!tentative_, "unload_shard inside a tentative scope");
  if (!shard_map_.sharded()) {
    // Single shard: unloading it empties the flow section entirely.
    flows_.clear();
    index_.clear();
    return;
  }
  MAYFLOWER_ASSERT(s < shard_keys_.size());
  for (const std::uint64_t key : shard_keys_[s]) {
    const auto it = flows_.find(key);
    MAYFLOWER_ASSERT_MSG(it != flows_.end(), "shard key list out of sync");
    index_.remove(key, it->second.path.links);
    flows_.erase(it);
  }
  shard_keys_[s].clear();
}

void NetworkView::track_key_added(std::uint64_t key, const Path& path) {
  if (!shard_map_.sharded()) return;
  shard_keys_[shard_map_.shard_of_path(path)].push_back(key);
}

void NetworkView::track_key_removed(std::uint64_t key, const Path& path) {
  if (!shard_map_.sharded()) return;
  std::vector<std::uint64_t>& keys =
      shard_keys_[shard_map_.shard_of_path(path)];
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == key) {
      keys[i] = keys.back();
      keys.pop_back();
      return;
    }
  }
  MAYFLOWER_ASSERT_MSG(false, "shard key list out of sync");
}

void NetworkView::mark_link_down(LinkId link) {
  MAYFLOWER_ASSERT(link < up_.size());
  up_[link] = 0;
}

void NetworkView::set_tx_rate(LinkId link, double bps) {
  MAYFLOWER_ASSERT(link < tx_rate_bps_.size());
  tx_rate_bps_[link] = bps;
}

void NetworkView::set_flow_stats(std::uint64_t key, FlowStats stats) {
  stats_[key] = std::move(stats);
}

void NetworkView::load_flow(Flow f) {
  MAYFLOWER_ASSERT_MSG(flows_.find(f.key) == flows_.end(),
                       "view already holds this flow key");
  const std::uint64_t key = f.key;
  const auto it = flows_.emplace(key, std::move(f)).first;
  index_.add(key, it->second.path.links);
  track_key_added(key, it->second.path);
}

bool NetworkView::link_up(LinkId link) const {
  MAYFLOWER_ASSERT(link < up_.size());
  return up_[link] != 0;
}

double NetworkView::capacity_bps(LinkId link) const {
  MAYFLOWER_ASSERT(link < capacity_bps_.size());
  return capacity_bps_[link];
}

double NetworkView::tx_rate_bps(LinkId link) const {
  MAYFLOWER_ASSERT(link < tx_rate_bps_.size());
  return tx_rate_bps_[link];
}

bool NetworkView::path_alive(const Path& path) const {
  for (const LinkId l : path.links) {
    if (!link_up(l)) return false;
  }
  return true;
}

const NetworkView::Flow* NetworkView::find(std::uint64_t key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<const NetworkView::Flow*> NetworkView::flows_on_link(
    LinkId link) const {
  std::vector<const Flow*> out;
  const std::vector<LinkIndex::Key>& keys = index_.on_link(link);
  out.reserve(keys.size());
  for (const LinkIndex::Key k : keys) {
    out.push_back(&flows_.at(k));
  }
  return out;
}

std::vector<const NetworkView::Flow*> NetworkView::flows_on_path(
    const Path& path) const {
  std::vector<const Flow*> out;
  const std::vector<LinkIndex::Key> keys = index_.on_links(path.links);
  out.reserve(keys.size());
  for (const LinkIndex::Key k : keys) {
    out.push_back(&flows_.at(k));
  }
  return out;
}

const NetworkView::FlowStats* NetworkView::flow_stats(
    std::uint64_t key) const {
  const auto it = stats_.find(key);
  return it == stats_.end() ? nullptr : &it->second;
}

void NetworkView::add_flow(std::uint64_t key, Path path, double size_bytes,
                           double bw_bps) {
  MAYFLOWER_ASSERT_MSG(flows_.find(key) == flows_.end(),
                       "view already holds this flow key");
  MAYFLOWER_ASSERT(size_bytes > 0.0 && bw_bps > 0.0);
  record_undo(key);
  Flow f;
  f.key = key;
  f.path = std::move(path);
  f.size_bytes = size_bytes;
  f.remaining_bytes = size_bytes;
  f.bw_bps = bw_bps;
  const auto it = flows_.emplace(key, std::move(f)).first;
  index_.add(key, it->second.path.links);
  track_key_added(key, it->second.path);
}

void NetworkView::set_flow_bps(std::uint64_t key, double bw_bps) {
  const auto it = flows_.find(key);
  MAYFLOWER_ASSERT_MSG(it != flows_.end(), "set_flow_bps on unknown flow");
  MAYFLOWER_ASSERT(bw_bps > 0.0);
  record_undo(key);
  it->second.bw_bps = bw_bps;
}

void NetworkView::resize_flow(std::uint64_t key, double new_size_bytes) {
  const auto it = flows_.find(key);
  MAYFLOWER_ASSERT_MSG(it != flows_.end(), "resize_flow on unknown flow");
  MAYFLOWER_ASSERT(new_size_bytes > 0.0);
  record_undo(key);
  it->second.size_bytes = new_size_bytes;
  it->second.remaining_bytes = new_size_bytes;
}

void NetworkView::drop_flow(std::uint64_t key) {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;
  record_undo(key);
  index_.remove(key, it->second.path.links);
  track_key_removed(key, it->second.path);
  flows_.erase(it);
}

void NetworkView::begin_tentative() {
  MAYFLOWER_ASSERT_MSG(!tentative_, "tentative scopes do not nest");
  tentative_ = true;
  undo_.clear();
}

void NetworkView::commit_tentative() {
  MAYFLOWER_ASSERT_MSG(tentative_, "no tentative scope open");
  tentative_ = false;
  undo_.clear();
}

void NetworkView::rollback_tentative() {
  MAYFLOWER_ASSERT_MSG(tentative_, "no tentative scope open");
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    auto& [key, prior] = *it;
    const auto cur = flows_.find(key);
    if (cur != flows_.end()) {
      index_.remove(key, cur->second.path.links);
      track_key_removed(key, cur->second.path);
      flows_.erase(cur);
    }
    if (prior.has_value()) {
      const auto ins = flows_.emplace(key, std::move(*prior)).first;
      index_.add(key, ins->second.path.links);
      track_key_added(key, ins->second.path);
    }
  }
  tentative_ = false;
  undo_.clear();
}

void NetworkView::record_undo(std::uint64_t key) {
  if (!tentative_) return;
  for (const auto& [seen, prior] : undo_) {
    if (seen == key) return;  // first-touch state already captured
  }
  const auto it = flows_.find(key);
  if (it == flows_.end()) {
    undo_.emplace_back(key, std::nullopt);
  } else {
    undo_.emplace_back(key, it->second);
  }
}

}  // namespace mayflower::net
