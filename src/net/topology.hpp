// Datacenter topology graph.
//
// Nodes are hosts and switches; links are *directed* (full-duplex cabling is
// modelled as two independent directed links), because read and write traffic
// contend separately per direction — the distinction Sinbad-R relies on
// (§6.2: utilization of links "facing towards the core layer").
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"

namespace mayflower::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

enum class NodeKind : std::uint8_t { kHost, kEdgeSwitch, kAggSwitch, kCoreSwitch };

const char* to_string(NodeKind kind);

struct Node {
  NodeKind kind = NodeKind::kHost;
  std::string name;
  // Locality coordinates; -1 where not applicable (e.g. pod of a core switch).
  std::int32_t pod = -1;
  std::int32_t rack = -1;  // global rack index
};

struct Link {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double capacity_bps = 0.0;  // bytes per second
  std::string name;
};

class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name, std::int32_t pod = -1,
                  std::int32_t rack = -1);

  // Adds a directed link; returns its id.
  LinkId add_link(NodeId from, NodeId to, double capacity_bytes_per_sec);

  // Adds both directions with equal capacity; returns the forward link id.
  LinkId add_duplex(NodeId a, NodeId b, double capacity_bytes_per_sec);

  const Node& node(NodeId id) const {
    MAYFLOWER_ASSERT(id < nodes_.size());
    return nodes_[id];
  }
  const Link& link(LinkId id) const {
    MAYFLOWER_ASSERT(id < links_.size());
    return links_[id];
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  // Outgoing links of `from`.
  const std::vector<LinkId>& out_links(NodeId from) const {
    MAYFLOWER_ASSERT(from < out_.size());
    return out_[from];
  }
  const std::vector<LinkId>& in_links(NodeId to) const {
    MAYFLOWER_ASSERT(to < in_.size());
    return in_[to];
  }

  // Directed link from->to, or kInvalidLink.
  LinkId find_link(NodeId from, NodeId to) const;

  std::vector<NodeId> hosts() const;
  std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  bool same_rack(NodeId a, NodeId b) const {
    return node(a).rack >= 0 && node(a).rack == node(b).rack;
  }
  bool same_pod(NodeId a, NodeId b) const {
    return node(a).pod >= 0 && node(a).pod == node(b).pod;
  }

  // Hop distance (number of links) along shortest path, or -1 if unreachable.
  int hop_distance(NodeId from, NodeId to) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
  std::unordered_map<std::uint64_t, LinkId> link_index_;  // (from<<32|to)
};

}  // namespace mayflower::net
