#include "net/ecmp.hpp"

#include "common/rng.hpp"

namespace mayflower::net {

std::size_t EcmpHasher::choose_index(std::size_t n_paths, NodeId src,
                                     NodeId dst,
                                     std::uint64_t flow_nonce) const {
  MAYFLOWER_ASSERT(n_paths > 0);
  std::uint64_t h = salt_;
  h = splitmix64(h ^ (static_cast<std::uint64_t>(src) << 32 | dst));
  h = splitmix64(h ^ flow_nonce);
  return static_cast<std::size_t>(h % n_paths);
}

const Path& EcmpHasher::choose(const std::vector<Path>& paths, NodeId src,
                               NodeId dst, std::uint64_t flow_nonce) const {
  return paths[choose_index(paths.size(), src, dst, flow_nonce)];
}

}  // namespace mayflower::net
