// Max-min fair bandwidth allocation.
//
// Two entry points:
//  * solve_max_min — global progressive filling over an arbitrary set of
//    flows and links; the fluid simulator's ground truth (what TCP would
//    converge to in steady state).
//  * waterfill_link — single-link max-min with per-flow demands; the
//    primitive the Flowserver's bandwidth model uses per §4.2 ("for each
//    link ... we equally divide the bandwidth across each flow up to the
//    flow's demand while remaining within the link's capacity").
#pragma once

#include <limits>
#include <vector>

#include "net/topology.hpp"

namespace mayflower::net {

inline constexpr double kInfiniteDemand = std::numeric_limits<double>::infinity();

// Relative tolerance the solver uses to decide a link is saturated or a
// demand is met. Exposed so incremental re-solvers (FlowSim's dirty-set
// recompute) apply the exact same criterion when checking whether an
// existing allocation still holds a valid bottleneck certificate.
inline constexpr double kMaxMinEps = 1e-9;

// True when `used` leaves no meaningful headroom on a link of `capacity`
// (matches the freeze criterion inside solve_max_min).
inline bool link_saturated(double used, double capacity) {
  return capacity - used <= kMaxMinEps * capacity + 1e-12;
}

struct FlowDemand {
  std::vector<LinkId> links;          // links traversed (may be empty)
  double demand = kInfiniteDemand;    // bytes/s cap; infinity = elastic
};

// Returns per-flow rates (bytes/s), same order as `flows`. `capacity(l)` must
// be valid for every referenced link. Flows with empty link sets receive
// exactly their demand (or +inf demand is an error — the caller must bound
// zero-hop flows).
std::vector<double> solve_max_min(
    const std::vector<FlowDemand>& flows,
    const std::vector<double>& link_capacity);

// Max-min shares on one link of capacity `capacity` among flows with the
// given demands. Returns per-flow shares, same order.
std::vector<double> waterfill_link(double capacity,
                                   const std::vector<double>& demands);

}  // namespace mayflower::net
