#include "net/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mayflower::net {
namespace {

constexpr double kEps = kMaxMinEps;

}  // namespace

std::vector<double> solve_max_min(const std::vector<FlowDemand>& flows,
                                  const std::vector<double>& link_capacity) {
  const std::size_t n = flows.size();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> active(n, false);

  std::vector<double> remaining = link_capacity;
  std::vector<std::size_t> active_count(link_capacity.size(), 0);

  std::size_t n_active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowDemand& f = flows[i];
    if (f.links.empty()) {
      MAYFLOWER_ASSERT_MSG(std::isfinite(f.demand),
                           "zero-hop flows must have a finite demand");
      rate[i] = f.demand;
      continue;
    }
    if (f.demand <= 0.0) continue;
    active[i] = true;
    ++n_active;
    for (const LinkId l : f.links) {
      MAYFLOWER_ASSERT(l < link_capacity.size());
      ++active_count[l];
    }
  }

  // Progressive filling: raise all active flows' rates in lockstep; freeze a
  // flow when its demand is met or any of its links saturates.
  while (n_active > 0) {
    // Largest uniform increment allowed by links and demands.
    double inc = kInfiniteDemand;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      if (std::isfinite(flows[i].demand)) {
        inc = std::min(inc, flows[i].demand - rate[i]);
      }
      for (const LinkId l : flows[i].links) {
        inc = std::min(inc,
                       remaining[l] / static_cast<double>(active_count[l]));
      }
    }
    MAYFLOWER_ASSERT_MSG(std::isfinite(inc),
                         "active flow with no binding constraint");
    inc = std::max(inc, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      rate[i] += inc;
      for (const LinkId l : flows[i].links) {
        remaining[l] -= inc;
      }
    }

    // Freeze: demand met, or traverses a saturated link.
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      bool freeze = std::isfinite(flows[i].demand) &&
                    rate[i] >= flows[i].demand - kEps;
      if (!freeze) {
        for (const LinkId l : flows[i].links) {
          if (remaining[l] <= kEps * link_capacity[l] + 1e-12) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        active[i] = false;
        --n_active;
        for (const LinkId l : flows[i].links) {
          --active_count[l];
        }
      }
    }
  }
  return rate;
}

std::vector<double> waterfill_link(double capacity,
                                   const std::vector<double>& demands) {
  MAYFLOWER_ASSERT(capacity >= 0.0);
  const std::size_t n = demands.size();
  std::vector<double> share(n, 0.0);
  if (n == 0) return share;

  // Process demands ascending; each unsatisfied flow gets an equal split of
  // what remains, capped by its demand.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a] < demands[b];
  });

  double remaining = capacity;
  std::size_t left = n;
  for (const std::size_t i : order) {
    const double equal = remaining / static_cast<double>(left);
    const double give = std::min(demands[i], equal);
    share[i] = std::max(give, 0.0);
    remaining -= share[i];
    --left;
  }
  return share;
}

}  // namespace mayflower::net
