#include "net/shard_map.hpp"

namespace mayflower::net {

ShardMap ShardMap::by_edge_switch(const Topology& topo) {
  ShardMap map;
  map.shard_of_.assign(topo.node_count(), 0);

  // Pass 1: every switch with at least one attached host gets its own shard
  // (ids 1..E in node order, so the assignment is deterministic).
  std::uint32_t next = 1;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind == NodeKind::kHost) continue;
    for (const LinkId l : topo.in_links(n)) {
      if (topo.node(topo.link(l).from).kind == NodeKind::kHost) {
        map.shard_of_[n] = next++;
        break;
      }
    }
  }
  map.shard_count_ = next;

  // Pass 2: hosts join their edge switch's shard. A host's edge is the
  // first switch its uplinks reach that owns a shard (exactly one in every
  // tree/fat-tree this repo builds).
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind != NodeKind::kHost) continue;
    for (const LinkId l : topo.out_links(n)) {
      const std::uint32_t s = map.shard_of_[topo.link(l).to];
      if (s != 0) {
        map.shard_of_[n] = s;
        break;
      }
    }
  }
  return map;
}

}  // namespace mayflower::net
