// Builder for the 3-tier tree datacenter used throughout the paper's
// evaluation (§6.1, Fig. 3): pods of racks behind shared aggregation
// switches, pods joined by core switches, with configurable per-tier
// oversubscription.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace mayflower::net {

struct ThreeTierConfig {
  std::uint32_t pods = 4;
  std::uint32_t racks_per_pod = 4;
  std::uint32_t hosts_per_rack = 4;
  std::uint32_t aggs_per_pod = 2;
  std::uint32_t cores = 2;

  double host_link_bps = 125e6;        // 1 Gbps edge links, bytes/s
  double rack_uplink_bps = 125e6;      // edge switch -> each agg switch
  double agg_uplink_bps = 62.5e6;      // agg switch -> each core switch

  // Convenience: derive agg uplink capacity so that the end-to-end
  // core-to-rack oversubscription ratio equals `ratio` (the paper evaluates
  // 8:1, 16:1 and 24:1 in Fig. 7), keeping the edge tier's contribution
  // fixed by host/rack uplink capacities.
  static ThreeTierConfig with_oversubscription(double ratio);

  // The realized core-to-rack oversubscription of this config.
  double oversubscription() const;
};

// Index of the built fabric: node ids organized by role and locality.
struct ThreeTier {
  ThreeTierConfig config;
  Topology topo;

  std::vector<NodeId> hosts;                    // all hosts, rack-major order
  std::vector<NodeId> edge_switches;            // per global rack index
  std::vector<std::vector<NodeId>> agg_switches;  // [pod][agg]
  std::vector<NodeId> core_switches;

  NodeId edge_of_host(NodeId host) const;
  // The directed host->edge (access) link of `host`.
  LinkId host_uplink(NodeId host) const;
  // The directed edge->host link of `host`.
  LinkId host_downlink(NodeId host) const;
  // Directed edge->agg uplinks of the rack containing `host`.
  std::vector<LinkId> rack_uplinks(NodeId host) const;

  int pod_of(NodeId node) const { return topo.node(node).pod; }
  int rack_of(NodeId node) const { return topo.node(node).rack; }
};

ThreeTier build_three_tier(const ThreeTierConfig& config);

}  // namespace mayflower::net
