// ECMP path choice (RFC 2992 style).
//
// Real switches hash flow 5-tuples; we hash (src, dst, flow nonce), where the
// nonce stands in for the ephemeral TCP source port. Same nonce => same path
// (per-flow consistency); different flows spread across the equal-cost set.
#pragma once

#include "net/paths.hpp"
#include "net/topology.hpp"

namespace mayflower::net {

class EcmpHasher {
 public:
  // `salt` perturbs the hash so experiments can draw independent ECMP
  // placements without correlating with workload randomness.
  explicit EcmpHasher(std::uint64_t salt = 0) : salt_(salt) {}

  // Picks one path from a non-empty equal-cost set.
  const Path& choose(const std::vector<Path>& paths, NodeId src, NodeId dst,
                     std::uint64_t flow_nonce) const;

  std::size_t choose_index(std::size_t n_paths, NodeId src, NodeId dst,
                           std::uint64_t flow_nonce) const;

 private:
  std::uint64_t salt_;
};

}  // namespace mayflower::net
