#include "net/flow_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mayflower::net {
namespace {

// A flow is complete when its remaining bytes are below this. With ns event
// rounding, residuals are < rate * 1ns; 1e-3 bytes covers any realistic rate.
constexpr double kCompleteEps = 1e-3;

}  // namespace

FlowSim::FlowSim(sim::EventQueue& events, const Topology& topo, Config config)
    : events_(&events), topo_(&topo), config_(config) {
  link_capacity_.reserve(topo.link_count());
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    link_capacity_.push_back(topo.link(l).capacity_bps);
  }
  link_bytes_.assign(topo.link_count(), 0.0);
  last_advance_ = events.now();
}

FlowId FlowSim::start_flow(Path path, double size_bytes,
                           CompletionFn on_complete, std::uint64_t tag,
                           double demand) {
  MAYFLOWER_ASSERT_MSG(!path.nodes.empty(), "path must name its endpoints");
  MAYFLOWER_ASSERT_MSG(path.links.size() + 1 == path.nodes.size(),
                       "malformed path");
  MAYFLOWER_ASSERT(size_bytes > 0.0);
  advance_to_now();

  FlowRecord f;
  f.id = next_id_++;
  f.path = std::move(path);
  f.size_bytes = size_bytes;
  f.remaining_bytes = size_bytes;
  f.demand_bps = f.path.links.empty() ? std::min(demand, config_.zero_hop_bps)
                                      : demand;
  f.tag = tag;
  f.start_time = events_->now();
  const FlowId id = f.id;
  flows_.emplace(id, std::move(f));
  if (on_complete) callbacks_.emplace(id, std::move(on_complete));

  recompute_rates();
  schedule_next_completion();
  return id;
}

bool FlowSim::cancel(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_to_now();
  flows_.erase(it);
  callbacks_.erase(id);
  recompute_rates();
  schedule_next_completion();
  return true;
}

bool FlowSim::reroute(FlowId id, Path new_path) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  MAYFLOWER_ASSERT_MSG(!new_path.nodes.empty() &&
                           new_path.nodes.front() == it->second.src() &&
                           new_path.nodes.back() == it->second.dst(),
                       "reroute must preserve the flow's endpoints");
  advance_to_now();
  it->second.path = std::move(new_path);
  recompute_rates();
  schedule_next_completion();
  return true;
}

void FlowSim::sync() {
  advance_to_now();
}

const FlowRecord* FlowSim::find(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<const FlowRecord*> FlowSim::flows_on_link(LinkId link) const {
  std::vector<const FlowRecord*> out;
  for (const auto& [id, f] : flows_) {
    if (f.path.contains_link(link)) out.push_back(&f);
  }
  return out;
}

double FlowSim::link_tx_bytes(LinkId link) const {
  MAYFLOWER_ASSERT(link < link_bytes_.size());
  return link_bytes_[link];
}

double FlowSim::link_utilization(LinkId link) const {
  MAYFLOWER_ASSERT(link < link_capacity_.size());
  double used = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.path.contains_link(link)) used += f.rate_bps;
  }
  return used / link_capacity_[link];
}

void FlowSim::advance_to_now() {
  const sim::SimTime now = events_->now();
  MAYFLOWER_ASSERT(now >= last_advance_);
  const double dt = (now - last_advance_).seconds();
  last_advance_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, f] : flows_) {
    if (f.rate_bps <= 0.0) continue;
    const double moved = std::min(f.remaining_bytes, f.rate_bps * dt);
    f.remaining_bytes -= moved;
    for (const LinkId l : f.path.links) {
      link_bytes_[l] += moved;
    }
  }
}

void FlowSim::recompute_rates() {
  if (flows_.empty()) return;
  std::vector<FlowDemand> demands;
  demands.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    FlowDemand d;
    d.links = f.path.links;
    d.demand = f.path.links.empty()
                   ? std::min(f.demand_bps, config_.zero_hop_bps)
                   : f.demand_bps;
    demands.push_back(std::move(d));
  }
  const std::vector<double> rates = solve_max_min(demands, link_capacity_);
  std::size_t i = 0;
  for (auto& [id, f] : flows_) {
    f.rate_bps = rates[i++];
  }
}

void FlowSim::schedule_next_completion() {
  events_->cancel(completion_event_);
  completion_event_ = sim::EventId{};
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.rate_bps <= 0.0) continue;
    earliest = std::min(earliest, f.remaining_bytes / f.rate_bps);
  }
  if (!std::isfinite(earliest)) return;
  // Round up to the next nanosecond so the flow is fully drained when the
  // event fires.
  const auto ns = static_cast<std::int64_t>(std::ceil(earliest * 1e9));
  completion_event_ = events_->schedule_in(
      sim::SimTime::from_nanos(std::max<std::int64_t>(ns, 0)),
      [this] { on_completion_event(); });
}

void FlowSim::on_completion_event() {
  completion_event_ = sim::EventId{};
  advance_to_now();

  std::vector<std::pair<FlowRecord, CompletionFn>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kCompleteEps) {
      it->second.remaining_bytes = 0.0;
      FlowRecord finished = std::move(it->second);
      CompletionFn cb;
      if (const auto cit = callbacks_.find(finished.id);
          cit != callbacks_.end()) {
        cb = std::move(cit->second);
        callbacks_.erase(cit);
      }
      done.emplace_back(std::move(finished), std::move(cb));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();

  // Callbacks run last: they may start new flows, which re-enters
  // start_flow() against consistent state.
  for (auto& [record, cb] : done) {
    if (cb) cb(record);
  }
}

}  // namespace mayflower::net
