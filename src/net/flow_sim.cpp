#include "net/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.hpp"

namespace mayflower::net {
namespace {

// A flow is complete when its remaining bytes are below this. With ns event
// rounding, residuals are < rate * 1ns; 1e-3 bytes covers any realistic rate.
constexpr double kCompleteEps = 1e-3;

// Rate-comparison slack for bottleneck certificates, matched to the solver's
// freeze tolerance (relative, with a tiny absolute floor for rates near 0).
double rate_slack(double rate) { return kMaxMinEps * rate + 1e-12; }

}  // namespace

FlowSim::FlowSim(sim::EventQueue& events, const Topology& topo, Config config)
    : events_(&events), topo_(&topo), config_(config), index_(topo.link_count()) {
  link_capacity_.reserve(topo.link_count());
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    link_capacity_.push_back(topo.link(l).capacity_bps);
  }
  base_capacity_ = link_capacity_;
  capacity_factor_.assign(topo.link_count(), 1.0);
  link_up_.assign(topo.link_count(), 1);
  link_bytes_.assign(topo.link_count(), 0.0);
  last_advance_ = events.now();
}

bool FlowSim::path_alive(const Path& path) const {
  for (const LinkId l : path.links) {
    if (!link_up(l)) return false;
  }
  return true;
}

FlowId FlowSim::start_flow(Path path, double size_bytes,
                           CompletionFn on_complete, std::uint64_t tag,
                           double demand) {
  MAYFLOWER_ASSERT_MSG(!path.nodes.empty(), "path must name its endpoints");
  MAYFLOWER_ASSERT_MSG(path.links.size() + 1 == path.nodes.size(),
                       "malformed path");
  MAYFLOWER_ASSERT(size_bytes > 0.0);
  MAYFLOWER_ASSERT_MSG(path_alive(path),
                       "flow started over a down link (check path_alive)");
  advance_to_now();

  FlowRecord f;
  f.id = next_id_++;
  f.path = std::move(path);
  f.size_bytes = size_bytes;
  f.remaining_bytes = size_bytes;
  f.demand_bps = f.path.links.empty() ? std::min(demand, config_.zero_hop_bps)
                                      : demand;
  // Zero-hop flows take exactly their (bounded) demand and never contend;
  // they stay out of the link index and the solver.
  if (f.path.links.empty()) f.rate_bps = f.demand_bps;
  f.tag = tag;
  f.start_time = events_->now();
  const FlowId id = f.id;
  const std::vector<LinkId> seed = f.path.links;
  flows_.emplace(id, std::move(f));
  if (on_complete) callbacks_.emplace(id, std::move(on_complete));
  index_.add(id, seed);

  recompute_after_change(seed);
  schedule_next_completion();
  return id;
}

bool FlowSim::cancel(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_to_now();
  const std::vector<LinkId> seed = std::move(it->second.path.links);
  index_.remove(id, seed);
  flows_.erase(it);
  callbacks_.erase(id);
  recompute_after_change(seed);
  schedule_next_completion();
  return true;
}

bool FlowSim::reroute(FlowId id, Path new_path) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  MAYFLOWER_ASSERT_MSG(!new_path.nodes.empty() &&
                           new_path.nodes.front() == it->second.src() &&
                           new_path.nodes.back() == it->second.dst(),
                       "reroute must preserve the flow's endpoints");
  MAYFLOWER_ASSERT_MSG(path_alive(new_path), "reroute onto a down link");
  advance_to_now();
  // Dirty region spans both placements: the vacated links may speed up the
  // flows left behind, the new links slow their current tenants down.
  std::vector<LinkId> seed = it->second.path.links;
  index_.remove(id, it->second.path.links);
  it->second.path = std::move(new_path);
  index_.add(id, it->second.path.links);
  seed.insert(seed.end(), it->second.path.links.begin(),
              it->second.path.links.end());
  recompute_after_change(seed);
  schedule_next_completion();
  return true;
}

void FlowSim::sync() {
  advance_to_now();
}

const FlowRecord* FlowSim::find(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<const FlowRecord*> FlowSim::flows_on_link(LinkId link) const {
  std::vector<const FlowRecord*> out;
  const std::vector<LinkIndex::Key>& keys = index_.on_link(link);
  out.reserve(keys.size());
  for (const LinkIndex::Key k : keys) {
    out.push_back(&flows_.at(k));
  }
  return out;
}

double FlowSim::link_tx_bytes(LinkId link) const {
  MAYFLOWER_ASSERT(link < link_bytes_.size());
  return link_bytes_[link];
}

double FlowSim::link_utilization(LinkId link) const {
  // Fail loudly instead of silently dividing by zero: an unknown id is a
  // caller bug, and a down (zero-capacity) link has no meaningful
  // utilization — callers must filter by link_up() first.
  MAYFLOWER_ASSERT_MSG(link < link_capacity_.size(), "unknown link");
  MAYFLOWER_ASSERT_MSG(link_capacity_[link] > 0.0,
                       "utilization of a down or zero-capacity link");
  double used = 0.0;
  for (const LinkIndex::Key k : index_.on_link(link)) {
    used += flows_.at(k).rate_bps;
  }
  return used / link_capacity_[link];
}

bool FlowSim::fail_link(LinkId link) {
  MAYFLOWER_ASSERT(link < link_up_.size());
  if (!link_up_[link]) return false;
  advance_to_now();
  link_up_[link] = 0;
  link_capacity_[link] = 0.0;

  // Kill every flow crossing the link. The dirty region spans the victims'
  // full paths: the capacity they vacate elsewhere speeds up their
  // ex-neighbors.
  std::vector<FlowRecord> killed;
  std::vector<LinkId> seed{link};
  const std::vector<LinkIndex::Key> victims = index_.on_link(link);
  for (const LinkIndex::Key id : victims) {
    const auto it = flows_.find(id);
    MAYFLOWER_ASSERT(it != flows_.end());
    FlowRecord dead = std::move(it->second);
    index_.remove(dead.id, dead.path.links);
    seed.insert(seed.end(), dead.path.links.begin(), dead.path.links.end());
    flows_.erase(it);
    callbacks_.erase(dead.id);
    killed.push_back(std::move(dead));
  }
  recompute_after_change(seed);
  schedule_next_completion();

  // Handlers run last (like completion callbacks): they may start new flows
  // against consistent state.
  if (kill_handler_) {
    for (const FlowRecord& dead : killed) kill_handler_(dead);
  }
  return true;
}

bool FlowSim::restore_link(LinkId link) {
  MAYFLOWER_ASSERT(link < link_up_.size());
  if (link_up_[link]) return false;
  link_up_[link] = 1;
  link_capacity_[link] = base_capacity_[link] * capacity_factor_[link];
  // No flow crosses a down link, so no existing rate changes: new capacity
  // only matters to flows started from now on.
  return true;
}

void FlowSim::set_link_capacity_factor(LinkId link, double factor) {
  MAYFLOWER_ASSERT(link < link_up_.size());
  MAYFLOWER_ASSERT_MSG(factor > 0.0 && factor <= 1.0,
                       "capacity factor must be in (0, 1]");
  advance_to_now();
  capacity_factor_[link] = factor;
  if (!link_up_[link]) return;  // applied on restore
  link_capacity_[link] = base_capacity_[link] * factor;
  recompute_after_change({link});
  schedule_next_completion();
}

void FlowSim::advance_to_now() {
  const sim::SimTime now = events_->now();
  MAYFLOWER_ASSERT(now >= last_advance_);
  const double dt = (now - last_advance_).seconds();
  last_advance_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, f] : flows_) {
    if (f.rate_bps <= 0.0) continue;
    const double moved = std::min(f.remaining_bytes, f.rate_bps * dt);
    f.remaining_bytes -= moved;
    for (const LinkId l : f.path.links) {
      link_bytes_[l] += moved;
    }
  }
}

void FlowSim::recompute_after_change(const std::vector<LinkId>& seed_links) {
  if (flows_.empty()) return;
  if (!config_.incremental) {
    recompute_full();
    return;
  }
  recompute_incremental(seed_links);
#ifndef NDEBUG
  MAYFLOWER_ASSERT_MSG(rates_match_full_solve(),
                       "incremental max-min diverged from the full solve");
#endif
}

void FlowSim::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    incremental_solves_ = obs::Counter{};
    full_solves_ = obs::Counter{};
    handoff_solves_ = obs::Counter{};
    return;
  }
  incremental_solves_ = registry->counter("net.flowsim.incremental_solves");
  full_solves_ = registry->counter("net.flowsim.full_solves");
  handoff_solves_ = registry->counter("net.flowsim.handoff_solves");
}

void FlowSim::recompute_full() {
  full_solves_.inc();
  std::vector<FlowDemand> demands;
  demands.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    FlowDemand d;
    d.links = f.path.links;
    d.demand = f.path.links.empty()
                   ? std::min(f.demand_bps, config_.zero_hop_bps)
                   : f.demand_bps;
    demands.push_back(std::move(d));
  }
  const std::vector<double> rates = solve_max_min(demands, link_capacity_);
  std::size_t i = 0;
  for (auto& [id, f] : flows_) {
    f.rate_bps = rates[i++];
  }
}

// Dirty-set max-min. A change only invalidates rates that can no longer hold
// a bottleneck certificate (a saturated link on which the flow's rate is
// maximal, or a met demand). Starting from the flows sharing a link with the
// change, re-solve that subset against residual capacities (everyone else's
// allocation held fixed), then verify certificates across the touched
// region; any flow the candidate allocation leaves uncertified — or any
// fixed-rate flow out-earning an uncertified dirty flow on a saturated link
// — joins the dirty set and the subproblem is re-solved. At the fixpoint the
// allocation is feasible and every flow is bottlenecked, which pins it to
// the unique global max-min solution; flows in untouched connected
// components are never visited.
void FlowSim::recompute_incremental(const std::vector<LinkId>& seed_links) {
  std::vector<FlowId> dirty = index_.on_links(seed_links);  // sorted, unique
  if (dirty.empty()) {
    incremental_solves_.inc();
    return;
  }

  const auto is_dirty = [&dirty](FlowId id) {
    return std::binary_search(dirty.begin(), dirty.end(), id);
  };

  if (scratch_capacity_.size() != link_capacity_.size()) {
    scratch_capacity_.assign(link_capacity_.size(), 0.0);
  }

  std::vector<LinkId> region;    // D: every link some dirty flow crosses
  std::vector<FlowId> expand;
  for (std::size_t round = 0;; ++round) {
    MAYFLOWER_ASSERT_MSG(round <= flows_.size(),
                         "dirty-set expansion failed to converge");
    // When the change stops being local (a saturated mesh can couple most of
    // the network), the subproblem machinery costs more than it saves: hand
    // off to the full solve. The answer is identical either way.
    if (dirty.size() > 64 && 4 * dirty.size() > flows_.size()) {
      handoff_solves_.inc();
      recompute_full();
      return;
    }
    region.clear();
    for (const FlowId id : dirty) {
      const FlowRecord& f = flows_.at(id);
      region.insert(region.end(), f.path.links.begin(), f.path.links.end());
    }
    std::sort(region.begin(), region.end());
    region.erase(std::unique(region.begin(), region.end()), region.end());

    // Residual capacity on region links: whatever the fixed-rate flows
    // (non-dirty tenants) are not already holding.
    for (const LinkId l : region) {
      double fixed = 0.0;
      for (const LinkIndex::Key k : index_.on_link(l)) {
        if (!is_dirty(k)) fixed += flows_.at(k).rate_bps;
      }
      scratch_capacity_[l] = std::max(link_capacity_[l] - fixed, 0.0);
    }

    std::vector<FlowDemand> demands;
    demands.reserve(dirty.size());
    for (const FlowId id : dirty) {
      const FlowRecord& f = flows_.at(id);
      FlowDemand d;
      d.links = f.path.links;
      d.demand = f.demand_bps;
      demands.push_back(std::move(d));
    }
    const std::vector<double> rates = solve_max_min(demands, scratch_capacity_);
    std::size_t i = 0;
    for (const FlowId id : dirty) {
      flows_.at(id).rate_bps = rates[i++];
    }

    // Verify bottleneck certificates over every flow touching the region.
    // Per-link (load, max rate) aggregates are cached for the round.
    std::unordered_map<LinkId, std::pair<double, double>> stats;
    const auto link_stats = [&](LinkId l) -> const std::pair<double, double>& {
      auto it = stats.find(l);
      if (it == stats.end()) {
        double load = 0.0, max_rate = 0.0;
        for (const LinkIndex::Key k : index_.on_link(l)) {
          const double r = flows_.at(k).rate_bps;
          load += r;
          max_rate = std::max(max_rate, r);
        }
        it = stats.emplace(l, std::make_pair(load, max_rate)).first;
      }
      return it->second;
    };
    const auto certified = [&](const FlowRecord& f) {
      if (std::isfinite(f.demand_bps) &&
          f.rate_bps >= f.demand_bps - rate_slack(f.demand_bps)) {
        return true;
      }
      for (const LinkId l : f.path.links) {
        const auto& [load, max_rate] = link_stats(l);
        if (link_saturated(load, link_capacity_[l]) &&
            f.rate_bps >= max_rate - rate_slack(max_rate)) {
          return true;
        }
      }
      return false;
    };

    expand.clear();
    for (const FlowId id : index_.on_links(region)) {
      const FlowRecord& f = flows_.at(id);
      if (certified(f)) continue;
      if (!is_dirty(id)) {
        expand.push_back(id);
        continue;
      }
      // A dirty flow can only lack a certificate because a fixed-rate flow
      // out-earns it on one of its saturated links; pull those flows in
      // (even demand-certified ones — their demand may exceed the new fair
      // share).
      for (const LinkId l : f.path.links) {
        const auto& [load, max_rate] = link_stats(l);
        if (!link_saturated(load, link_capacity_[l])) continue;
        for (const LinkIndex::Key k : index_.on_link(l)) {
          if (is_dirty(k)) continue;
          if (flows_.at(k).rate_bps > f.rate_bps + rate_slack(f.rate_bps)) {
            expand.push_back(k);
          }
        }
      }
    }
    if (expand.empty()) break;
    std::sort(expand.begin(), expand.end());
    expand.erase(std::unique(expand.begin(), expand.end()), expand.end());
    std::vector<FlowId> merged;
    merged.reserve(dirty.size() + expand.size());
    std::set_union(dirty.begin(), dirty.end(), expand.begin(), expand.end(),
                   std::back_inserter(merged));
    MAYFLOWER_ASSERT_MSG(merged.size() > dirty.size(),
                         "dirty-set expansion made no progress");
    dirty = std::move(merged);
  }
  incremental_solves_.inc();
}

bool FlowSim::rates_match_full_solve(double rel_eps) const {
  std::vector<FlowDemand> demands;
  demands.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    FlowDemand d;
    d.links = f.path.links;
    d.demand = f.path.links.empty()
                   ? std::min(f.demand_bps, config_.zero_hop_bps)
                   : f.demand_bps;
    demands.push_back(std::move(d));
  }
  const std::vector<double> want = solve_max_min(demands, link_capacity_);
  std::size_t i = 0;
  for (const auto& [id, f] : flows_) {
    const double w = want[i++];
    if (std::abs(f.rate_bps - w) > rel_eps * (1.0 + std::abs(w))) {
      return false;
    }
  }
  return true;
}

void FlowSim::schedule_next_completion() {
  events_->cancel(completion_event_);
  completion_event_ = sim::EventId{};
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.rate_bps <= 0.0) continue;
    earliest = std::min(earliest, f.remaining_bytes / f.rate_bps);
  }
  if (!std::isfinite(earliest)) return;
  // Round up to the next nanosecond so the flow is fully drained when the
  // event fires. Completions beyond the representable horizon (~292 sim
  // years) are not scheduled; any rate change re-arms the timer.
  const double ns_d = std::ceil(earliest * 1e9);
  if (ns_d >= 9.0e18) return;
  const auto ns = static_cast<std::int64_t>(ns_d);
  completion_event_ = events_->schedule_in(
      sim::SimTime::from_nanos(std::max<std::int64_t>(ns, 0)),
      [this] { on_completion_event(); });
}

void FlowSim::on_completion_event() {
  completion_event_ = sim::EventId{};
  advance_to_now();

  std::vector<std::pair<FlowRecord, CompletionFn>> done;
  std::vector<LinkId> seed;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kCompleteEps) {
      it->second.remaining_bytes = 0.0;
      FlowRecord finished = std::move(it->second);
      index_.remove(finished.id, finished.path.links);
      seed.insert(seed.end(), finished.path.links.begin(),
                  finished.path.links.end());
      CompletionFn cb;
      if (const auto cit = callbacks_.find(finished.id);
          cit != callbacks_.end()) {
        cb = std::move(cit->second);
        callbacks_.erase(cit);
      }
      done.emplace_back(std::move(finished), std::move(cb));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_after_change(seed);
  schedule_next_completion();

  // Callbacks run last: they may start new flows, which re-enters
  // start_flow() against consistent state.
  for (auto& [record, cb] : done) {
    if (cb) cb(record);
  }
}

}  // namespace mayflower::net
