#include "net/tree.hpp"

#include "common/strings.hpp"

namespace mayflower::net {

ThreeTierConfig ThreeTierConfig::with_oversubscription(double ratio) {
  ThreeTierConfig c;
  MAYFLOWER_ASSERT(ratio >= 1.0);
  // Edge tier oversubscription is fixed by the defaults:
  //   o_edge = (hosts_per_rack * host_link) / (aggs_per_pod * rack_uplink).
  const double o_edge =
      (c.hosts_per_rack * c.host_link_bps) / (c.aggs_per_pod * c.rack_uplink_bps);
  const double o_agg = ratio / o_edge;
  MAYFLOWER_ASSERT_MSG(o_agg >= 1.0, "ratio below the edge tier's own ratio");
  // o_agg = (racks_per_pod * rack_uplink) / (cores * agg_uplink).
  c.agg_uplink_bps =
      (c.racks_per_pod * c.rack_uplink_bps) / (c.cores * o_agg);
  return c;
}

double ThreeTierConfig::oversubscription() const {
  const double o_edge =
      (hosts_per_rack * host_link_bps) / (aggs_per_pod * rack_uplink_bps);
  const double o_agg =
      (racks_per_pod * rack_uplink_bps) / (cores * agg_uplink_bps);
  return o_edge * o_agg;
}

ThreeTier build_three_tier(const ThreeTierConfig& config) {
  MAYFLOWER_ASSERT(config.pods > 0 && config.racks_per_pod > 0 &&
                   config.hosts_per_rack > 0 && config.aggs_per_pod > 0 &&
                   config.cores > 0);
  ThreeTier t;
  t.config = config;

  for (std::uint32_t c = 0; c < config.cores; ++c) {
    t.core_switches.push_back(
        t.topo.add_node(NodeKind::kCoreSwitch, strfmt("core%u", c)));
  }

  t.agg_switches.resize(config.pods);
  for (std::uint32_t p = 0; p < config.pods; ++p) {
    for (std::uint32_t a = 0; a < config.aggs_per_pod; ++a) {
      const NodeId agg = t.topo.add_node(
          NodeKind::kAggSwitch, strfmt("agg%u.%u", p, a),
          static_cast<std::int32_t>(p));
      t.agg_switches[p].push_back(agg);
      for (const NodeId core : t.core_switches) {
        t.topo.add_duplex(agg, core, config.agg_uplink_bps);
      }
    }
    for (std::uint32_t r = 0; r < config.racks_per_pod; ++r) {
      const auto global_rack =
          static_cast<std::int32_t>(p * config.racks_per_pod + r);
      const NodeId edge = t.topo.add_node(
          NodeKind::kEdgeSwitch, strfmt("edge%u.%u", p, r),
          static_cast<std::int32_t>(p), global_rack);
      t.edge_switches.push_back(edge);
      for (const NodeId agg : t.agg_switches[p]) {
        t.topo.add_duplex(edge, agg, config.rack_uplink_bps);
      }
      for (std::uint32_t h = 0; h < config.hosts_per_rack; ++h) {
        const NodeId host = t.topo.add_node(
            NodeKind::kHost, strfmt("h%u.%u.%u", p, r, h),
            static_cast<std::int32_t>(p), global_rack);
        t.hosts.push_back(host);
        t.topo.add_duplex(host, edge, config.host_link_bps);
      }
    }
  }
  return t;
}

NodeId ThreeTier::edge_of_host(NodeId host) const {
  const int rack = topo.node(host).rack;
  MAYFLOWER_ASSERT_MSG(rack >= 0, "node has no rack");
  return edge_switches[static_cast<std::size_t>(rack)];
}

LinkId ThreeTier::host_uplink(NodeId host) const {
  const LinkId l = topo.find_link(host, edge_of_host(host));
  MAYFLOWER_ASSERT(l != kInvalidLink);
  return l;
}

LinkId ThreeTier::host_downlink(NodeId host) const {
  const LinkId l = topo.find_link(edge_of_host(host), host);
  MAYFLOWER_ASSERT(l != kInvalidLink);
  return l;
}

std::vector<LinkId> ThreeTier::rack_uplinks(NodeId host) const {
  const NodeId edge = edge_of_host(host);
  const int pod = topo.node(host).pod;
  MAYFLOWER_ASSERT(pod >= 0);
  std::vector<LinkId> out;
  for (const NodeId agg : agg_switches[static_cast<std::size_t>(pod)]) {
    const LinkId l = topo.find_link(edge, agg);
    MAYFLOWER_ASSERT(l != kInvalidLink);
    out.push_back(l);
  }
  return out;
}

}  // namespace mayflower::net
