#include "net/fat_tree.hpp"

#include "common/strings.hpp"

namespace mayflower::net {

FatTree build_fat_tree(const FatTreeConfig& config) {
  MAYFLOWER_ASSERT_MSG(config.k >= 2 && config.k % 2 == 0,
                       "fat-tree arity must be even");
  MAYFLOWER_ASSERT(config.link_bps > 0.0);
  const std::uint32_t half = config.k / 2;

  FatTree t;
  t.config = config;
  // Datacenter-scale builds (k = 16 gives 1,344 nodes, k = 32 gives 9,472)
  // are linear, but reallocation churn on the node/link arrays is visible at
  // k >= 16 — size everything up front from the closed-form counts.
  const std::size_t n_core = static_cast<std::size_t>(half) * half;
  const std::size_t n_hosts = static_cast<std::size_t>(config.k) * half * half;
  t.core_switches.reserve(n_core);
  t.edge_switches.reserve(static_cast<std::size_t>(config.k) * half);
  t.hosts.reserve(n_hosts);

  // Core layer: (k/2)^2 switches. Core c attaches to aggregation switch
  // (c / half) in every pod.
  for (std::uint32_t c = 0; c < half * half; ++c) {
    t.core_switches.push_back(
        t.topo.add_node(NodeKind::kCoreSwitch, strfmt("core%u", c)));
  }

  t.agg_switches.resize(config.k);
  for (std::uint32_t p = 0; p < config.k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      const NodeId agg = t.topo.add_node(NodeKind::kAggSwitch,
                                         strfmt("agg%u.%u", p, a),
                                         static_cast<std::int32_t>(p));
      t.agg_switches[p].push_back(agg);
      for (std::uint32_t j = 0; j < half; ++j) {
        t.topo.add_duplex(agg, t.core_switches[a * half + j],
                          config.link_bps);
      }
    }
    for (std::uint32_t e = 0; e < half; ++e) {
      const auto global_edge = static_cast<std::int32_t>(p * half + e);
      const NodeId edge = t.topo.add_node(NodeKind::kEdgeSwitch,
                                          strfmt("edge%u.%u", p, e),
                                          static_cast<std::int32_t>(p),
                                          global_edge);
      t.edge_switches.push_back(edge);
      for (const NodeId agg : t.agg_switches[p]) {
        t.topo.add_duplex(edge, agg, config.link_bps);
      }
      for (std::uint32_t h = 0; h < half; ++h) {
        const NodeId host = t.topo.add_node(NodeKind::kHost,
                                            strfmt("h%u.%u.%u", p, e, h),
                                            static_cast<std::int32_t>(p),
                                            global_edge);
        t.hosts.push_back(host);
        t.topo.add_duplex(host, edge, config.link_bps);
      }
    }
  }
  // Closed-form structural invariants (Al-Fares §3): k^3/4 hosts, k^2/2
  // edge+agg switches, (k/2)^2 cores, and 3k^3/4 duplex pairs — host-edge,
  // edge-agg and agg-core each contribute k^3/4. Guards the builder against
  // silent mis-wiring at the k >= 16 scales the macro bench sweeps, where
  // hand-inspection is hopeless.
  MAYFLOWER_ASSERT(t.hosts.size() == n_hosts);
  MAYFLOWER_ASSERT(t.core_switches.size() == n_core);
  MAYFLOWER_ASSERT(t.edge_switches.size() ==
                   static_cast<std::size_t>(config.k) * half);
  MAYFLOWER_ASSERT(t.topo.node_count() ==
                   n_hosts + n_core + 2 * static_cast<std::size_t>(config.k) *
                                          half);
  MAYFLOWER_ASSERT(t.topo.link_count() == 2 * 3 * n_hosts);
  return t;
}

ThreeTier three_tier_from_fat_tree(const FatTreeConfig& config) {
  FatTree ft = build_fat_tree(config);
  const std::uint32_t half = config.k / 2;
  ThreeTier t;
  t.config.pods = config.k;
  t.config.racks_per_pod = half;
  t.config.hosts_per_rack = half;
  t.config.aggs_per_pod = half;
  t.config.cores = half * half;
  t.config.host_link_bps = config.link_bps;
  t.config.rack_uplink_bps = config.link_bps;
  t.config.agg_uplink_bps = config.link_bps;
  t.topo = std::move(ft.topo);
  t.hosts = std::move(ft.hosts);
  t.edge_switches = std::move(ft.edge_switches);
  t.agg_switches = std::move(ft.agg_switches);
  t.core_switches = std::move(ft.core_switches);
  return t;
}

}  // namespace mayflower::net
