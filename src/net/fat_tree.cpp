#include "net/fat_tree.hpp"

#include "common/strings.hpp"

namespace mayflower::net {

FatTree build_fat_tree(const FatTreeConfig& config) {
  MAYFLOWER_ASSERT_MSG(config.k >= 2 && config.k % 2 == 0,
                       "fat-tree arity must be even");
  MAYFLOWER_ASSERT(config.link_bps > 0.0);
  const std::uint32_t half = config.k / 2;

  FatTree t;
  t.config = config;

  // Core layer: (k/2)^2 switches. Core c attaches to aggregation switch
  // (c / half) in every pod.
  for (std::uint32_t c = 0; c < half * half; ++c) {
    t.core_switches.push_back(
        t.topo.add_node(NodeKind::kCoreSwitch, strfmt("core%u", c)));
  }

  t.agg_switches.resize(config.k);
  for (std::uint32_t p = 0; p < config.k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      const NodeId agg = t.topo.add_node(NodeKind::kAggSwitch,
                                         strfmt("agg%u.%u", p, a),
                                         static_cast<std::int32_t>(p));
      t.agg_switches[p].push_back(agg);
      for (std::uint32_t j = 0; j < half; ++j) {
        t.topo.add_duplex(agg, t.core_switches[a * half + j],
                          config.link_bps);
      }
    }
    for (std::uint32_t e = 0; e < half; ++e) {
      const auto global_edge = static_cast<std::int32_t>(p * half + e);
      const NodeId edge = t.topo.add_node(NodeKind::kEdgeSwitch,
                                          strfmt("edge%u.%u", p, e),
                                          static_cast<std::int32_t>(p),
                                          global_edge);
      t.edge_switches.push_back(edge);
      for (const NodeId agg : t.agg_switches[p]) {
        t.topo.add_duplex(edge, agg, config.link_bps);
      }
      for (std::uint32_t h = 0; h < half; ++h) {
        const NodeId host = t.topo.add_node(NodeKind::kHost,
                                            strfmt("h%u.%u.%u", p, e, h),
                                            static_cast<std::int32_t>(p),
                                            global_edge);
        t.hosts.push_back(host);
        t.topo.add_duplex(host, edge, config.link_bps);
      }
    }
  }
  return t;
}

}  // namespace mayflower::net
