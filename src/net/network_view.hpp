// NetworkView: an immutable, epoch-stamped snapshot of everything a
// control-plane decision is allowed to read — link capacities and liveness,
// per-link transmit rates (edge-uplink utilization), the controller's
// believed per-flow shares, and optionally per-transfer data-plane telemetry.
//
// A view is built once per decision batch (from the FlowStateTable, the
// fabric's liveness map and a LinkRateMonitor) and every consumer — the
// replica/path selector, the multi-read planner, write placement and all
// replica policies — reads the SAME state at the SAME time. Decisions that
// commit inside a batch write through the view (add_flow / set_flow_bw /
// resize_flow) so later decisions in the batch see earlier ones; mutations
// from outside the decision pipeline (stats polls, drops, faults) instead
// invalidate the view, forcing a rebuild before the next batch.
//
// The flow section mirrors FlowStateTable semantics: a per-link reverse
// index (LinkIndex) keeps flows_on_link / flows_on_path at O(flows actually
// crossing the links) in key order, and a bounded undo log provides the same
// tentative scope the table offers the multi-read planner.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/link_index.hpp"
#include "net/paths.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace mayflower::net {

class NetworkView {
 public:
  // One believed flow, copied from the controller's state table. The key is
  // the fabric cookie (the net layer does not name sdn types).
  struct Flow {
    std::uint64_t key = 0;
    Path path;
    double size_bytes = 0.0;
    double remaining_bytes = 0.0;
    double bw_bps = 0.0;
  };

  // Data-plane telemetry for one active transfer (what an edge switch's
  // per-flow counters legitimately expose); consumed by Hedera-style
  // schedulers that measure rather than believe.
  struct FlowStats {
    double bytes_sent = 0.0;
    Path path;
  };

  // --- build-time population --------------------------------------------

  void stamp(std::uint64_t epoch, sim::SimTime built_at) {
    epoch_ = epoch;
    built_at_ = built_at;
  }

  // Sizes the link sections from the topology: every link up, at its
  // CONFIGURED capacity. Decisions model the fabric the operator built, not
  // the degraded one (degradations are corrected by the stats resync), so
  // capacity here must stay the configured value. Clears flows and stats.
  void reset_links(const Topology& topo);

  void mark_link_down(LinkId link);
  void set_tx_rate(LinkId link, double bps);
  void set_flow_stats(std::uint64_t key, FlowStats stats);
  // Inserts one believed flow verbatim (snapshot population; no undo).
  void load_flow(Flow f);

  // --- network facts ----------------------------------------------------

  std::uint64_t epoch() const { return epoch_; }
  sim::SimTime built_at() const { return built_at_; }
  std::size_t link_count() const { return capacity_bps_.size(); }

  bool link_up(LinkId link) const;
  double capacity_bps(LinkId link) const;
  // Measured transmit rate (bytes/s) of `link`; 0 unless a rate monitor
  // populated it at build time.
  double tx_rate_bps(LinkId link) const;
  // True iff every link of `path` is up (zero-hop paths are always alive).
  bool path_alive(const Path& path) const;

  // --- believed flows ---------------------------------------------------

  const Flow* find(std::uint64_t key) const;
  std::size_t flow_count() const { return flows_.size(); }

  // Flows crossing `link`, in key order (deterministic). O(flows on link).
  std::vector<const Flow*> flows_on_link(LinkId link) const;
  // Flows crossing any link of `path`, deduplicated, key order.
  std::vector<const Flow*> flows_on_path(const Path& path) const;

  // --- data-plane telemetry ---------------------------------------------

  const FlowStats* flow_stats(std::uint64_t key) const;
  const std::map<std::uint64_t, FlowStats>& all_flow_stats() const {
    return stats_;
  }

  // --- write-through mutations (batch commits) --------------------------
  //
  // A decision batch that commits against the authoritative table applies
  // the same mutation here so the rest of the batch sees it. Honors the
  // tentative scope below.

  void add_flow(std::uint64_t key, Path path, double size_bytes,
                double bw_bps);
  void set_flow_bw(std::uint64_t key, double bw_bps);
  void resize_flow(std::uint64_t key, double new_size_bytes);
  void drop_flow(std::uint64_t key);

  // --- tentative scope (multi-read planning) ----------------------------
  //
  // Mirrors FlowStateTable's bounded undo log: first-touch prior state is
  // recorded between begin and commit/rollback; scopes do not nest.

  void begin_tentative();
  void commit_tentative();
  void rollback_tentative();
  bool tentative_active() const { return tentative_; }

 private:
  void record_undo(std::uint64_t key);

  std::uint64_t epoch_ = 0;
  sim::SimTime built_at_;

  std::vector<double> capacity_bps_;
  std::vector<char> up_;
  std::vector<double> tx_rate_bps_;

  std::map<std::uint64_t, Flow> flows_;
  LinkIndex index_;  // link -> keys of believed flows crossing it
  std::map<std::uint64_t, FlowStats> stats_;

  bool tentative_ = false;
  std::vector<std::pair<std::uint64_t, std::optional<Flow>>> undo_;
};

}  // namespace mayflower::net
