// NetworkView: an immutable, epoch-stamped snapshot of everything a
// control-plane decision is allowed to read — link capacities and liveness,
// per-link transmit rates (edge-uplink utilization), the controller's
// believed per-flow shares, and optionally per-transfer data-plane telemetry.
//
// A view is built once per decision batch (from the FlowStateTable, the
// fabric's liveness map and a LinkRateMonitor) and every consumer — the
// replica/path selector, the multi-read planner, write placement and all
// replica policies — reads the SAME state at the SAME time. Decisions that
// commit inside a batch write through the view (add_flow / set_flow_bps /
// resize_flow) so later decisions in the batch see earlier ones; mutations
// from outside the decision pipeline (stats polls, drops, faults) instead
// invalidate the view, forcing a rebuild before the next batch.
//
// The flow section mirrors FlowStateTable semantics: a per-link reverse
// index (LinkIndex) keeps flows_on_link / flows_on_path at O(flows actually
// crossing the links) in key order, and a bounded undo log provides the same
// tentative scope the table offers the multi-read planner.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/link_index.hpp"
#include "net/paths.hpp"
#include "net/shard_map.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace mayflower::net {

class NetworkView {
 public:
  // One believed flow, copied from the controller's state table. The key is
  // the fabric cookie (the net layer does not name sdn types).
  struct Flow {
    std::uint64_t key = 0;
    Path path;
    double size_bytes = 0.0;
    double remaining_bytes = 0.0;
    double bw_bps = 0.0;
  };

  // Data-plane telemetry for one active transfer (what an edge switch's
  // per-flow counters legitimately expose); consumed by Hedera-style
  // schedulers that measure rather than believe.
  struct FlowStats {
    double bytes_sent = 0.0;
    Path path;
  };

  // --- build-time population --------------------------------------------

  void stamp(std::uint64_t epoch, sim::SimTime built_at) {
    epoch_ = epoch;
    built_at_ = built_at;
  }

  // Sizes the link sections from the topology: every link up, at its
  // CONFIGURED capacity. Decisions model the fabric the operator built, not
  // the degraded one (degradations are corrected by the stats resync), so
  // capacity here must stay the configured value. Clears flows and stats.
  void reset_links(const Topology& topo);

  // Re-initializes ONLY the link sections (capacity, liveness, tx rates,
  // data-plane stats) from the topology, leaving the believed-flow section
  // untouched. The sharded rebuild path uses this when the fabric epoch or
  // monitor moved but the flow shards did not: liveness/rates are O(links)
  // to overlay, the flow copy is the cost sharding avoids.
  void refresh_link_state(const Topology& topo);

  // Partitions the believed-flow section by `map` (per-shard key lists and
  // version stamps). Must be installed while the view holds no flows; an
  // unsharded map (the default) keeps the legacy zero-bookkeeping layout.
  void set_shard_map(ShardMap map);
  const ShardMap& shard_map() const { return shard_map_; }
  std::uint32_t shard_count() const { return shard_map_.shard_count(); }

  // Removes every believed flow belonging to shard `s` (the first half of a
  // per-shard reload; snapshotting the table's shard back in is the second).
  // Not legal inside a tentative scope.
  void unload_shard(std::uint32_t s);

  // Per-shard freshness stamp: the table shard version this view's shard
  // section was built from. Written by the view's owner at refresh time.
  std::uint64_t shard_stamp(std::uint32_t s) const {
    MAYFLOWER_ASSERT(s < shard_stamp_.size() || shard_stamp_.empty());
    return shard_stamp_.empty() ? 0 : shard_stamp_[s];
  }
  void stamp_shard(std::uint32_t s, std::uint64_t version) {
    if (shard_stamp_.empty()) shard_stamp_.resize(shard_count(), 0);
    MAYFLOWER_ASSERT(s < shard_stamp_.size());
    shard_stamp_[s] = version;
  }

  void mark_link_down(LinkId link);
  void set_tx_rate(LinkId link, double bps);
  void set_flow_stats(std::uint64_t key, FlowStats stats);
  // Inserts one believed flow verbatim (snapshot population; no undo).
  void load_flow(Flow f);

  // --- network facts ----------------------------------------------------

  std::uint64_t epoch() const { return epoch_; }
  sim::SimTime built_at() const { return built_at_; }
  std::size_t link_count() const { return capacity_bps_.size(); }

  bool link_up(LinkId link) const;
  double capacity_bps(LinkId link) const;
  // Measured transmit rate (bytes/s) of `link`; 0 unless a rate monitor
  // populated it at build time.
  double tx_rate_bps(LinkId link) const;
  // True iff every link of `path` is up (zero-hop paths are always alive).
  bool path_alive(const Path& path) const;

  // --- believed flows ---------------------------------------------------

  const Flow* find(std::uint64_t key) const;
  std::size_t flow_count() const { return flows_.size(); }

  // Flows crossing `link`, in key order (deterministic). O(flows on link).
  std::vector<const Flow*> flows_on_link(LinkId link) const;
  // Flows crossing any link of `path`, deduplicated, key order.
  std::vector<const Flow*> flows_on_path(const Path& path) const;

  // --- data-plane telemetry ---------------------------------------------

  const FlowStats* flow_stats(std::uint64_t key) const;
  const std::map<std::uint64_t, FlowStats>& all_flow_stats() const {
    return stats_;
  }

  // --- write-through mutations (batch commits) --------------------------
  //
  // A decision batch that commits against the authoritative table applies
  // the same mutation here so the rest of the batch sees it. Honors the
  // tentative scope below.

  void add_flow(std::uint64_t key, Path path, double size_bytes,
                double bw_bps);
  void set_flow_bps(std::uint64_t key, double bw_bps);
  void resize_flow(std::uint64_t key, double new_size_bytes);
  void drop_flow(std::uint64_t key);

  // --- tentative scope (multi-read planning) ----------------------------
  //
  // Mirrors FlowStateTable's bounded undo log: first-touch prior state is
  // recorded between begin and commit/rollback; scopes do not nest.

  void begin_tentative();
  void commit_tentative();
  void rollback_tentative();
  bool tentative_active() const { return tentative_; }

 private:
  void record_undo(std::uint64_t key);
  // Shard-key bookkeeping around flow insertion/removal; no-ops unless a
  // sharded map is installed, so the legacy layout pays nothing.
  void track_key_added(std::uint64_t key, const Path& path);
  void track_key_removed(std::uint64_t key, const Path& path);

  std::uint64_t epoch_ = 0;
  sim::SimTime built_at_;

  std::vector<double> capacity_bps_;
  std::vector<char> up_;
  std::vector<double> tx_rate_bps_;

  std::map<std::uint64_t, Flow> flows_;
  LinkIndex index_;  // link -> keys of believed flows crossing it
  std::map<std::uint64_t, FlowStats> stats_;

  // Sharded layout (empty vectors when the map is unsharded): per-shard key
  // lists so unload_shard() is O(flows in the shard), plus per-shard
  // freshness stamps. The flows map and link index above stay GLOBAL — a
  // sharded view answers flows_on_link/flows_on_path byte-identically to an
  // unsharded one; sharding changes only which sections a rebuild touches.
  ShardMap shard_map_;
  std::vector<std::vector<std::uint64_t>> shard_keys_;
  std::vector<std::uint64_t> shard_stamp_;

  bool tentative_ = false;
  std::vector<std::pair<std::uint64_t, std::optional<Flow>>> undo_;
};

}  // namespace mayflower::net
