// Per-link reverse flow index: LinkId -> ordered set of flow keys.
//
// The shared substrate behind every "who crosses this link?" query. The fluid
// simulator (net::FlowSim, keyed by FlowId) and the Flowserver's state table
// (flowserver::FlowStateTable, keyed by sdn::Cookie) both maintain one on
// flow add/drop/reroute, turning per-link lookups from O(total flows) scans
// into O(flows on the link).
//
// Keys on a link are kept sorted ascending, so iteration order is the id /
// cookie order every consumer already relies on for determinism. Keys are
// usually allocated monotonically, which makes the sorted insert an amortized
// push_back.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace mayflower::net {

class LinkIndex {
 public:
  // FlowId and sdn::Cookie are both 64-bit; one key type serves every layer.
  using Key = std::uint64_t;

  LinkIndex() = default;
  explicit LinkIndex(std::size_t link_count) { ensure_size(link_count); }

  // Registers `key` on every link of `links` (a path's link list; entries are
  // distinct within one path). Grows the index if a link id is new.
  void add(Key key, const std::vector<LinkId>& links);

  // Removes `key` from every link of `links`. The key must be present on
  // each (add/remove calls must pair up with the same link list).
  void remove(Key key, const std::vector<LinkId>& links);

  // Keys crossing `link`, ascending. Links the index never saw are empty.
  const std::vector<Key>& on_link(LinkId link) const {
    return link < per_link_.size() ? per_link_[link] : empty_;
  }

  std::size_t count_on(LinkId link) const { return on_link(link).size(); }

  // Union of keys over `links`, deduplicated, ascending.
  std::vector<Key> on_links(const std::vector<LinkId>& links) const;

  void clear();

 private:
  void ensure_size(std::size_t n) {
    if (per_link_.size() < n) per_link_.resize(n);
  }

  std::vector<std::vector<Key>> per_link_;
  static const std::vector<Key> empty_;
};

}  // namespace mayflower::net
