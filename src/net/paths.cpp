#include "net/paths.hpp"

#include <algorithm>
#include <deque>

namespace mayflower::net {
namespace {

void extend_paths(const Topology& topo, const std::vector<int>& dist,
                  NodeId dst, Path& partial, std::vector<Path>& out) {
  const NodeId u = partial.nodes.back();
  if (u == dst) {
    out.push_back(partial);
    return;
  }
  for (const LinkId l : topo.out_links(u)) {
    const NodeId v = topo.link(l).to;
    if (dist[v] != dist[u] + 1) continue;  // not on a shortest path
    partial.links.push_back(l);
    partial.nodes.push_back(v);
    extend_paths(topo, dist, dst, partial, out);
    partial.links.pop_back();
    partial.nodes.pop_back();
  }
}

}  // namespace

bool Path::contains_link(LinkId l) const {
  return std::find(links.begin(), links.end(), l) != links.end();
}

std::vector<Path> shortest_paths(const Topology& topo, NodeId src, NodeId dst) {
  MAYFLOWER_ASSERT(src < topo.node_count() && dst < topo.node_count());
  std::vector<Path> out;
  if (src == dst) {
    Path p;
    p.nodes.push_back(src);
    out.push_back(std::move(p));
    return out;
  }
  // BFS distance labels from src, pruned at dist(dst).
  std::vector<int> dist(topo.node_count(), -1);
  dist[src] = 0;
  std::deque<NodeId> queue{src};
  int limit = -1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (limit >= 0 && dist[u] >= limit) break;
    for (const LinkId l : topo.out_links(u)) {
      const NodeId v = topo.link(l).to;
      if (dist[v] >= 0) continue;
      dist[v] = dist[u] + 1;
      if (v == dst) limit = dist[v];
      queue.push_back(v);
    }
  }
  if (dist[dst] < 0) return out;  // unreachable

  Path partial;
  partial.nodes.push_back(src);
  extend_paths(topo, dist, dst, partial, out);
  return out;
}

const std::vector<Path>& PathCache::get(NodeId src, NodeId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  common::MutexLock lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, shortest_paths(*topo_, src, dst)).first;
  }
  return it->second;
}

}  // namespace mayflower::net
