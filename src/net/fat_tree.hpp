// k-ary fat-tree builder (Al-Fares et al., SIGCOMM 2008 — reference [5]).
//
// The paper's related work (§2.2) notes that full-bisection fabrics like
// fat-trees reduce network congestion — but argues oversubscribed trees
// remain prevalent, which is where Mayflower matters most. This builder
// exists to *test* that sensitivity claim: all algorithms (path
// enumeration, Flowserver selection, ECMP) are topology-generic and run on
// it unchanged.
//
// Structure for even k: k pods; each pod has k/2 edge and k/2 aggregation
// switches; each edge switch serves k/2 hosts and uplinks to every agg in
// its pod; (k/2)^2 core switches, core c connecting to aggregation switch
// (c / (k/2)) of every pod. Hosts: k^3/4. Uniform link speed => full
// bisection bandwidth (1:1).
#pragma once

#include <vector>

#include "net/topology.hpp"
#include "net/tree.hpp"

namespace mayflower::net {

struct FatTreeConfig {
  std::uint32_t k = 4;            // even, >= 2
  double link_bps = 125e6;        // uniform 1 Gbps links
};

struct FatTree {
  FatTreeConfig config;
  Topology topo;
  std::vector<NodeId> hosts;                      // edge-major order
  std::vector<NodeId> edge_switches;              // [pod * k/2 + e]
  std::vector<std::vector<NodeId>> agg_switches;  // [pod][a]
  std::vector<NodeId> core_switches;

  int pod_of(NodeId node) const { return topo.node(node).pod; }
  // Global edge-switch ("rack") index of a host.
  int edge_index_of(NodeId host) const { return topo.node(host).rack; }
};

FatTree build_fat_tree(const FatTreeConfig& config);

// Adapts a built fat-tree into the ThreeTier index the experiment harness,
// workload generator and fault injector consume (hosts in edge-major order,
// edge_switches by global edge index, agg_switches by pod) — the fat-tree
// labels nodes with the same pod/rack scheme, so every ThreeTier helper
// (edge_of_host, host_uplink, rack_uplinks) works unchanged. The embedded
// ThreeTierConfig is descriptive (counts and uniform link speed); the wiring
// is the fat-tree's, i.e. full bisection, not the all-cores-per-agg tree.
ThreeTier three_tier_from_fat_tree(const FatTreeConfig& config);

}  // namespace mayflower::net
