// Equal-cost shortest path enumeration.
//
// Mayflower restricts replica-path selection to the shortest paths between
// endpoints (§4.2), which in a 3-tier tree have lengths 2, 4 or 6 links.
// Enumeration is generic over any Topology (BFS distance labels + DFS over
// tightening edges), so the hand-built Figure-2 topology and property-test
// topologies work unchanged. Results are memoized per (src, dst).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "net/topology.hpp"

namespace mayflower::net {

struct Path {
  std::vector<LinkId> links;
  std::vector<NodeId> nodes;  // links.size() + 1 entries, front=src, back=dst

  std::size_t length() const { return links.size(); }
  bool contains_link(LinkId l) const;
};

// All distinct shortest paths from src to dst (directed). Empty if
// unreachable; a single zero-length path if src == dst.
std::vector<Path> shortest_paths(const Topology& topo, NodeId src, NodeId dst);

// Thread-safe: decision workers enumerate candidate paths concurrently, so
// the memoization map is mutex-guarded. Returned references stay valid for
// the cache's lifetime (unordered_map is node-based; rehash moves nothing).
class PathCache {
 public:
  explicit PathCache(const Topology& topo) : topo_(&topo) {}

  const std::vector<Path>& get(NodeId src, NodeId dst) EXCLUDES(mu_);

 private:
  const Topology* topo_;
  mutable common::Mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Path>> cache_ GUARDED_BY(mu_);
};

}  // namespace mayflower::net
