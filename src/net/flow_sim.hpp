// Fluid (flow-level) network simulator.
//
// Active flows continuously transfer bytes at the max-min fair rates a
// steady-state TCP mesh would converge to; rates are recomputed whenever the
// flow set changes. Between changes, transfers progress linearly, so the
// simulator only needs events at flow starts, cancellations and the earliest
// predicted completion.
//
// Rate maintenance is incremental: a per-link flow index (LinkIndex) tracks
// which flows cross which links, and a change re-solves only the dirty
// region — the flows sharing links with the changed flow, expanded until
// every flow again holds a max-min bottleneck certificate. Untouched
// connected components keep their rates. If the dirty set outgrows a
// quarter of all flows (a heavily saturated mesh can couple most of the
// network), the recompute hands off to the full progressive-filling solve,
// which also remains available as a runtime mode (Config::incremental =
// false) and as an equivalence cross-check (#ifndef NDEBUG, and
// rates_match_full_solve() for tests in any build type).
//
// This is the substitution for the paper's Mininet/Open vSwitch testbed: the
// quantities the evaluation measures (completion times under contention, link
// byte counters) are produced by the same sharing dynamics, deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/fair_share.hpp"
#include "net/link_index.hpp"
#include "net/paths.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

struct FlowRecord {
  FlowId id = kInvalidFlow;
  Path path;                      // empty links => zero-hop (host-local) flow
  double size_bytes = 0.0;
  double remaining_bytes = 0.0;
  double rate_bps = 0.0;          // bytes/s, current allocation
  double demand_bps = kInfiniteDemand;
  std::uint64_t tag = 0;          // opaque caller cookie (job id, RPC id, ...)
  sim::SimTime start_time;

  NodeId src() const { return path.nodes.front(); }
  NodeId dst() const { return path.nodes.back(); }
  double bytes_sent() const { return size_bytes - remaining_bytes; }
};

class FlowSim {
 public:
  struct Config {
    // Rate granted to zero-hop flows (client and server on the same host);
    // stands in for a local read through the page cache.
    double zero_hop_bps = 12e9;
    // When false, every change re-runs the global progressive-filling solve
    // (the pre-index behavior; kept as ground truth for benchmarks/tests).
    bool incremental = true;
  };

  using CompletionFn = std::function<void(const FlowRecord&)>;
  // Invoked (after rates are consistent again) for every flow killed by a
  // link failure. The record carries the progress made up to the failure.
  using KillFn = std::function<void(const FlowRecord&)>;

  FlowSim(sim::EventQueue& events, const Topology& topo, Config config);
  FlowSim(sim::EventQueue& events, const Topology& topo)
      : FlowSim(events, topo, Config{}) {}

  FlowSim(const FlowSim&) = delete;
  FlowSim& operator=(const FlowSim&) = delete;

  // Starts a flow along `path` (nodes must be non-empty; links may be empty
  // for a host-local transfer). `on_complete` runs from the event loop at the
  // completion instant. Returns the flow id.
  FlowId start_flow(Path path, double size_bytes, CompletionFn on_complete,
                    std::uint64_t tag = 0, double demand = kInfiniteDemand);

  // Cancels an in-flight flow (no completion callback). Returns false if the
  // flow already completed or never existed.
  bool cancel(FlowId id);

  // Moves an in-flight flow onto a new path with the same endpoints (what a
  // dynamic flow scheduler like Hedera does when it reroutes an elephant).
  // Progress is preserved; rates recompute immediately. Returns false if the
  // flow no longer exists.
  bool reroute(FlowId id, Path new_path);

  // Advances all byte counters to the current simulation time. Call before
  // reading counters outside of a flow event (e.g. from the stats poller).
  void sync();

  // --- link faults (fault-injection surface) ----------------------------
  //
  // Invariant maintained here: no active flow ever crosses a down link.
  // fail_link() enforces it by killing the flows on the link (progress is
  // kept in the record handed to the kill handler; no completion fires);
  // callers must not start flows over down links (see path_alive()).

  // Takes `link` down: effective capacity drops to zero and every flow
  // crossing it is killed (kill handler runs per flow, after the remaining
  // rates are consistent again). Returns false if the link was already down.
  bool fail_link(LinkId link);

  // Brings a failed link back at its configured capacity (times any set
  // degradation factor). Returns false if the link was not down.
  bool restore_link(LinkId link);

  // Scales a link's capacity by `factor` in (0, 1] of its configured value
  // (a slow/degraded NIC or port). Rates recompute immediately; flows are
  // never killed by degradation. factor = 1 restores full speed.
  void set_link_capacity_factor(LinkId link, double factor);

  bool link_up(LinkId link) const {
    MAYFLOWER_ASSERT(link < link_up_.size());
    return link_up_[link] != 0;
  }

  // True when every link of `path` is up (zero-hop paths are always alive).
  bool path_alive(const Path& path) const;

  // Effective capacity (bytes/s) of `link`: configured capacity times the
  // degradation factor, or 0 while the link is down. Asserts on unknown ids.
  double link_capacity(LinkId link) const {
    MAYFLOWER_ASSERT_MSG(link < link_capacity_.size(), "unknown link");
    return link_capacity_[link];
  }

  void set_kill_handler(KillFn handler) { kill_handler_ = std::move(handler); }

  const FlowRecord* find(FlowId id) const;
  std::size_t active_flow_count() const { return flows_.size(); }

  // Active flows whose path crosses `link`, in id order. O(flows on link).
  std::vector<const FlowRecord*> flows_on_link(LinkId link) const;

  // Cumulative bytes carried by `link` since construction (advance with
  // sync()). Mirrors an OpenFlow port byte counter.
  double link_tx_bytes(LinkId link) const;

  // Instantaneous utilization in [0, 1]: sum of allocated rates / capacity.
  // O(flows on link) through the index.
  double link_utilization(LinkId link) const;

  // Switches between incremental and full recompute at runtime (benchmarks
  // compare the two on identical state). The next change re-solves under the
  // new mode.
  void set_incremental(bool incremental) { config_.incremental = incremental; }

  // True when every stored rate matches a from-scratch progressive-filling
  // solve within `rel_eps` relative tolerance. Always compiled (tests run it
  // explicitly in release builds); also asserted after every incremental
  // recompute in !NDEBUG builds.
  bool rates_match_full_solve(double rel_eps = 1e-6) const;

  // Publishes solve counters (net.flowsim.{incremental,full,handoff}_solves)
  // into `registry`; null detaches. Call before traffic starts.
  void set_metrics(obs::MetricsRegistry* registry);

  const Topology& topology() const { return *topo_; }
  sim::EventQueue& events() { return *events_; }

 private:
  void advance_to_now();
  // Re-solves rates after a change whose affected links are `seed_links`
  // (union of old and new paths of every changed flow).
  void recompute_after_change(const std::vector<LinkId>& seed_links);
  void recompute_full();
  void recompute_incremental(const std::vector<LinkId>& seed_links);
  void schedule_next_completion();
  void on_completion_event();

  sim::EventQueue* events_;
  const Topology* topo_;
  Config config_;

  FlowId next_id_ = 1;
  std::map<FlowId, FlowRecord> flows_;  // ordered => deterministic iteration
  std::map<FlowId, CompletionFn> callbacks_;
  LinkIndex index_;                     // link -> flows crossing it
  // Effective capacities (what the solver sees): base * factor while up,
  // 0 while down. Base capacities come from the topology at construction.
  std::vector<double> link_capacity_;
  std::vector<double> base_capacity_;
  std::vector<double> capacity_factor_;
  std::vector<char> link_up_;
  KillFn kill_handler_;
  std::vector<double> link_bytes_;
  sim::SimTime last_advance_;
  sim::EventId completion_event_;

  // Scratch for recompute_incremental (member to avoid per-event allocation).
  std::vector<double> scratch_capacity_;

  // Observability: how often the incremental path sufficed vs. re-ran the
  // global solve (directly or via the dirty-set handoff).
  obs::Counter incremental_solves_;
  obs::Counter full_solves_;
  obs::Counter handoff_solves_;
};

}  // namespace mayflower::net
