// ShardMap: a static partition of the state plane by edge switch.
//
// The Flowserver's hot structures — the FlowStateTable and the NetworkView's
// believed-flow section — are partitioned by the EDGE SWITCH of a flow's
// source host, the same key the fabric's per-edge poll index already uses.
// A poll of edge E or the drop of a flow sourced under E then stales exactly
// one shard, so a snapshot rebuild after churn touches O(flows per edge)
// state instead of the whole cluster's.
//
// Shard 0 is a catch-all for nodes that hang off no edge switch (cores,
// aggs, hosts in degenerate hand-built topologies); each edge switch and the
// hosts attached to it share one dedicated shard. A default-constructed map
// has a single shard — the unsharded legacy layout — and consumers treat
// that case as "no partitioning" with zero bookkeeping overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "net/paths.hpp"
#include "net/topology.hpp"

namespace mayflower::net {

class ShardMap {
 public:
  // One catch-all shard: the unsharded legacy layout.
  ShardMap() = default;

  // One shard per edge switch — any switch with an attached host, the same
  // "edge" definition the Flowserver's poll sweep uses — plus catch-all
  // shard 0. Hosts map to their edge switch's shard.
  static ShardMap by_edge_switch(const Topology& topo);

  std::uint32_t shard_count() const { return shard_count_; }
  // More than one shard: consumers maintain per-shard bookkeeping.
  bool sharded() const { return shard_count_ > 1; }

  // The shard owning `node` (0 when the map is unsharded or the node is
  // outside the mapped topology).
  std::uint32_t shard_of_node(NodeId node) const {
    if (node >= shard_of_.size()) return 0;
    return shard_of_[node];
  }

  // A flow's shard: the shard of its source node (path.nodes.front()), i.e.
  // the edge switch its source host hangs off. Zero-hop paths shard by the
  // host itself, which maps to the same edge shard. An unsharded map accepts
  // node-less synthetic paths (unit tests build them); a sharded one must be
  // able to route.
  std::uint32_t shard_of_path(const Path& path) const {
    if (!sharded()) return 0;
    MAYFLOWER_ASSERT_MSG(!path.nodes.empty(), "path has no nodes");
    return shard_of_node(path.nodes.front());
  }

 private:
  std::uint32_t shard_count_ = 1;
  std::vector<std::uint32_t> shard_of_;  // by node id; empty => all shard 0
};

}  // namespace mayflower::net
