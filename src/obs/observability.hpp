// The one handle threaded through every layer: a metrics registry plus the
// flow tracer. Constructed by whoever owns a run (the harness config, a
// test, the CLI tool) and passed down as a nullable pointer — a null
// Observability* or a disabled instance both mean "measure nothing".
//
// to_json() is the `--metrics-out` payload for one run: counters, gauges,
// histograms, per-flow traces, decision audits and the derived
// estimator-error percentiles, all deterministic for a fixed seed.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mayflower::obs {

struct Observability {
  explicit Observability(bool enabled = true)
      : metrics(enabled), trace(enabled) {}
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry metrics;
  FlowTracer trace;

  bool enabled() const { return metrics.enabled(); }

  // One JSON object: {"counters":…,"gauges":…,"histograms":…,"flows":…,
  // "decisions":…,"estimator_error":…}.
  std::string to_json() const;
};

}  // namespace mayflower::obs
