// Metrics registry: named counters, gauges and fixed-bucket histograms with
// deterministic (name-sorted) JSON export.
//
// Zero-cost when disabled: a disabled registry hands out null handles —
// registration allocates nothing, and every hot-path operation degenerates
// to a single pointer test. Handles remain valid for the registry's
// lifetime (metric storage is node-based, so addresses are stable).
//
// Nothing in here reads wall-clock time or other nondeterministic inputs:
// two runs of the same seeded simulation produce byte-identical exports,
// which ci.sh diffs (see DESIGN.md "Observability").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"

namespace mayflower::obs {

class MetricsRegistry;

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) *cell_ += n;
  }
  std::uint64_t value() const { return cell_ == nullptr ? 0 : *cell_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) *cell_ = v;
  }
  double value() const { return cell_ == nullptr ? 0.0 : *cell_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

struct HistogramData {
  // Strictly ascending finite upper bounds; bucket i counts samples
  // v <= edges[i] (and above edges[i-1]). An implicit final bucket catches
  // everything above the last edge, so buckets.size() == edges.size() + 1.
  std::vector<double> edges;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // valid only when count > 0
  double max = 0.0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v);
  const HistogramData* data() const { return data_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  // Finds or creates the named metric. Disabled registries return null
  // handles without touching any storage. Registration is mutex-guarded;
  // the returned handles write through raw cell pointers with no locking
  // and are therefore control-thread-only (decision workers never touch
  // metrics — evaluation is pure against the snapshot).
  Counter counter(std::string_view name) EXCLUDES(mu_);
  Gauge gauge(std::string_view name) EXCLUDES(mu_);
  // `edges` must be non-empty and strictly ascending; re-registering an
  // existing histogram ignores `edges` (the first registration wins).
  Histogram histogram(std::string_view name, std::vector<double> edges)
      EXCLUDES(mu_);

  // Inspection (tests, reports). Absent names read as zero.
  std::uint64_t counter_value(std::string_view name) const EXCLUDES(mu_);
  double gauge_value(std::string_view name) const EXCLUDES(mu_);
  const HistogramData* find_histogram(std::string_view name) const
      EXCLUDES(mu_);
  std::size_t metric_count() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Appends {"counters":{...},"gauges":{...},"histograms":{...}} fragments
  // (without the enclosing braces) to `out`, keys sorted by name.
  void write_json(std::string* out) const EXCLUDES(mu_);

 private:
  bool enabled_;
  // Guards the name -> storage maps (registration and whole-registry
  // reads). Individual cells are written through handles without the lock
  // — see the handle contract above. std::map nodes are stable, so handle
  // pointers survive later registrations.
  mutable common::Mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_ GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, HistogramData, std::less<>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace mayflower::obs
