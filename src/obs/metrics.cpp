#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace mayflower::obs {

void Histogram::observe(double v) {
  if (data_ == nullptr) return;
  const auto it =
      std::lower_bound(data_->edges.begin(), data_->edges.end(), v);
  ++data_->buckets[static_cast<std::size_t>(it - data_->edges.begin())];
  if (data_->count == 0) {
    data_->min = v;
    data_->max = v;
  } else {
    data_->min = std::min(data_->min, v);
    data_->max = std::max(data_->max, v);
  }
  ++data_->count;
  data_->sum += v;
}

Counter MetricsRegistry::counter(std::string_view name) {
  common::MutexLock lock(mu_);
  if (!enabled_) return Counter{};
  const auto it = counters_.find(name);
  if (it != counters_.end()) return Counter(&it->second);
  return Counter(&counters_.emplace(std::string(name), 0).first->second);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  common::MutexLock lock(mu_);
  if (!enabled_) return Gauge{};
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return Gauge(&it->second);
  return Gauge(&gauges_.emplace(std::string(name), 0.0).first->second);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> edges) {
  common::MutexLock lock(mu_);
  if (!enabled_) return Histogram{};
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return Histogram(&it->second);
  MAYFLOWER_ASSERT_MSG(!edges.empty(), "histogram needs at least one edge");
  for (std::size_t i = 1; i < edges.size(); ++i) {
    MAYFLOWER_ASSERT_MSG(edges[i - 1] < edges[i],
                         "histogram edges must be strictly ascending");
  }
  HistogramData data;
  data.buckets.assign(edges.size() + 1, 0);
  data.edges = std::move(edges);
  return Histogram(
      &histograms_.emplace(std::string(name), std::move(data)).first->second);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  common::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  common::MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const HistogramData* MetricsRegistry::find_histogram(
    std::string_view name) const {
  common::MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(std::string* out) const {
  common::MutexLock lock(mu_);
  json_key("counters", out);
  out->push_back('{');
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out->push_back(',');
    first = false;
    json_key(name, out);
    json_append(v, out);
  }
  *out += "},";
  json_key("gauges", out);
  out->push_back('{');
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out->push_back(',');
    first = false;
    json_key(name, out);
    json_append(v, out);
  }
  *out += "},";
  json_key("histograms", out);
  out->push_back('{');
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out->push_back(',');
    first = false;
    json_key(name, out);
    out->push_back('{');
    json_key("edges", out);
    json_append(h.edges, out);
    out->push_back(',');
    json_key("buckets", out);
    json_append(h.buckets, out);
    out->push_back(',');
    json_key("count", out);
    json_append(h.count, out);
    out->push_back(',');
    json_key("sum", out);
    json_append(h.sum, out);
    out->push_back(',');
    json_key("min", out);
    json_append(h.count == 0 ? 0.0 : h.min, out);
    out->push_back(',');
    json_key("max", out);
    json_append(h.count == 0 ? 0.0 : h.max, out);
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace mayflower::obs
