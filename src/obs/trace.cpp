#include "obs/trace.hpp"

#include <cmath>

#include "obs/json.hpp"

namespace mayflower::obs {

FlowTraceRecord* FlowTracer::mutable_active(std::uint64_t cookie) {
  const auto it = active_.find(cookie);
  return it == active_.end() ? nullptr : &it->second;
}

const FlowTraceRecord* FlowTracer::find_active(std::uint64_t cookie) const {
  common::MutexLock lock(mu_);
  const auto it = active_.find(cookie);
  return it == active_.end() ? nullptr : &it->second;
}

void FlowTracer::flow_planned(std::uint64_t cookie, double now_sec,
                              double bytes, double planned_bw_bps) {
  common::MutexLock lock(mu_);
  if (!enabled_) return;
  FlowTraceRecord rec;
  rec.cookie = cookie;
  rec.planned_bw_bps = planned_bw_bps;
  rec.planned_bytes = bytes;
  rec.start_sec = now_sec;
  active_[cookie] = rec;
}

void FlowTracer::flow_resized(std::uint64_t cookie, double new_bytes) {
  common::MutexLock lock(mu_);
  FlowTraceRecord* rec = mutable_active(cookie);
  if (rec == nullptr) return;
  ++rec->resizes;
  if (!rec->started) rec->planned_bytes = new_bytes;
}

void FlowTracer::flow_bw_set(std::uint64_t cookie, double bw_bps) {
  common::MutexLock lock(mu_);
  FlowTraceRecord* rec = mutable_active(cookie);
  if (rec == nullptr) return;
  if (rec->started) {
    ++rec->setbw_bumps;  // a later selection revised this flow's share
  } else {
    rec->planned_bw_bps = bw_bps;  // still planning (multi-read adjustment)
  }
}

void FlowTracer::flow_abandoned(std::uint64_t cookie) {
  common::MutexLock lock(mu_);
  active_.erase(cookie);
}

void FlowTracer::freeze_hit(std::uint64_t cookie) {
  common::MutexLock lock(mu_);
  FlowTraceRecord* rec = mutable_active(cookie);
  if (rec != nullptr) ++rec->freeze_hits;
}

void FlowTracer::mark_split(std::uint64_t cookie) {
  common::MutexLock lock(mu_);
  FlowTraceRecord* rec = mutable_active(cookie);
  if (rec != nullptr) rec->split = true;
}

void FlowTracer::flow_started(std::uint64_t cookie, double now_sec) {
  common::MutexLock lock(mu_);
  FlowTraceRecord* rec = mutable_active(cookie);
  if (rec == nullptr) return;
  rec->started = true;
  rec->start_sec = now_sec;
}

void FlowTracer::flow_rerouted(std::uint64_t cookie) {
  common::MutexLock lock(mu_);
  FlowTraceRecord* rec = mutable_active(cookie);
  if (rec != nullptr) ++rec->reroutes;
}

void FlowTracer::finish(std::uint64_t cookie, double now_sec,
                        double moved_bytes, bool killed) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return;
  FlowTraceRecord rec = it->second;
  active_.erase(it);
  rec.end_sec = now_sec;
  rec.moved_bytes = moved_bytes;
  rec.killed = killed;
  const double dur = now_sec - rec.start_sec;
  rec.realized_bw_bps = dur > 0.0 ? moved_bytes / dur : 0.0;
  finished_.push_back(rec);
}

void FlowTracer::flow_completed(std::uint64_t cookie, double now_sec,
                                double moved_bytes) {
  common::MutexLock lock(mu_);
  finish(cookie, now_sec, moved_bytes, /*killed=*/false);
}

void FlowTracer::flow_killed(std::uint64_t cookie, double now_sec,
                             double moved_bytes) {
  common::MutexLock lock(mu_);
  finish(cookie, now_sec, moved_bytes, /*killed=*/true);
}

void FlowTracer::decision(const DecisionAudit& audit) {
  common::MutexLock lock(mu_);
  if (!enabled_) return;
  decisions_.push_back(audit);
}

void FlowTracer::belief_error_sample(double error) {
  common::MutexLock lock(mu_);
  if (!enabled_) return;
  belief_errors_.push_back(error);
}

std::vector<double> FlowTracer::estimator_errors() const {
  common::MutexLock lock(mu_);
  std::vector<double> out;
  out.reserve(finished_.size());
  for (const FlowTraceRecord& rec : finished_) {
    if (rec.killed || rec.realized_bw_bps <= 0.0) continue;
    out.push_back(std::abs(rec.planned_bw_bps - rec.realized_bw_bps) /
                  rec.realized_bw_bps);
  }
  return out;
}

void FlowTracer::write_json(std::string* out) const {
  common::MutexLock lock(mu_);
  json_key("flows", out);
  out->push_back('[');
  for (std::size_t i = 0; i < finished_.size(); ++i) {
    const FlowTraceRecord& r = finished_[i];
    if (i > 0) out->push_back(',');
    out->push_back('{');
    json_key("cookie", out);
    json_append(r.cookie, out);
    out->push_back(',');
    json_key("planned_bw_bps", out);
    json_append(r.planned_bw_bps, out);
    out->push_back(',');
    json_key("planned_bytes", out);
    json_append(r.planned_bytes, out);
    out->push_back(',');
    json_key("start_sec", out);
    json_append(r.start_sec, out);
    out->push_back(',');
    json_key("end_sec", out);
    json_append(r.end_sec, out);
    out->push_back(',');
    json_key("realized_bw_bps", out);
    json_append(r.realized_bw_bps, out);
    out->push_back(',');
    json_key("moved_bytes", out);
    json_append(r.moved_bytes, out);
    out->push_back(',');
    json_key("resizes", out);
    json_append(static_cast<std::uint64_t>(r.resizes), out);
    out->push_back(',');
    json_key("reroutes", out);
    json_append(static_cast<std::uint64_t>(r.reroutes), out);
    out->push_back(',');
    json_key("freeze_hits", out);
    json_append(static_cast<std::uint64_t>(r.freeze_hits), out);
    out->push_back(',');
    json_key("setbw_bumps", out);
    json_append(static_cast<std::uint64_t>(r.setbw_bumps), out);
    out->push_back(',');
    json_key("split", out);
    json_append(r.split, out);
    out->push_back(',');
    json_key("killed", out);
    json_append(r.killed, out);
    out->push_back('}');
  }
  *out += "],";
  json_key("decisions", out);
  out->push_back('[');
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    const DecisionAudit& d = decisions_[i];
    if (i > 0) out->push_back(',');
    out->push_back('{');
    json_key("time_sec", out);
    json_append(d.time_sec, out);
    out->push_back(',');
    json_key("candidates", out);
    json_append(static_cast<std::uint64_t>(d.candidates), out);
    out->push_back(',');
    json_key("own_time_sec", out);
    json_append(d.own_time_sec, out);
    out->push_back(',');
    json_key("impact_sec", out);
    json_append(d.impact_sec, out);
    out->push_back(',');
    json_key("frozen_flows", out);
    json_append(static_cast<std::uint64_t>(d.frozen_flows), out);
    out->push_back(',');
    json_key("freeze_suppressed", out);
    json_append(d.freeze_suppressed, out);
    out->push_back(',');
    json_key("split", out);
    json_append(d.split, out);
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace mayflower::obs
