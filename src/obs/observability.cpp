#include "obs/observability.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace mayflower::obs {

namespace {

// Appends "name":{"count":…,"mean":…,"p50":…,"p90":…,"p99":…,"max":…} for
// one error series. Percentile by linear interpolation between closest
// ranks (same convention as common/stats, re-implemented locally to keep
// obs' dependencies minimal). Sorts its own copy.
void write_error_block(const char* name, std::vector<double> errs,
                       std::string* out) {
  std::sort(errs.begin(), errs.end());
  const auto pct = [&errs](double q) -> double {
    if (errs.empty()) return 0.0;
    const double rank = q * static_cast<double>(errs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, errs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return errs[lo] + (errs[hi] - errs[lo]) * frac;
  };
  double sum = 0.0;
  for (const double e : errs) sum += e;

  json_key(name, out);
  out->push_back('{');
  json_key("count", out);
  json_append(static_cast<std::uint64_t>(errs.size()), out);
  out->push_back(',');
  json_key("mean", out);
  json_append(errs.empty() ? 0.0 : sum / static_cast<double>(errs.size()),
              out);
  out->push_back(',');
  json_key("p50", out);
  json_append(pct(0.50), out);
  out->push_back(',');
  json_key("p90", out);
  json_append(pct(0.90), out);
  out->push_back(',');
  json_key("p99", out);
  json_append(pct(0.99), out);
  out->push_back(',');
  json_key("max", out);
  json_append(errs.empty() ? 0.0 : errs.back(), out);
  out->push_back('}');
}

}  // namespace

std::string Observability::to_json() const {
  std::string out;
  out.push_back('{');
  metrics.write_json(&out);
  out.push_back(',');
  trace.write_json(&out);
  out.push_back(',');
  // Derived error summaries: plan accuracy over completed flows, and the
  // poll-time accuracy of the bandwidth state the Flowserver trusts (the
  // series the update-freeze exists to protect).
  write_error_block("estimator_error", trace.estimator_errors(), &out);
  out.push_back(',');
  write_error_block("belief_error", trace.belief_errors(), &out);
  out.push_back('}');
  return out;
}

}  // namespace mayflower::obs
