// Minimal JSON emission helpers for the observability exports. Writing only
// (the repo never parses JSON); everything is appended to a caller-owned
// string so large exports build in one buffer. Deterministic by
// construction: doubles print with %.17g (round-trip exact), so identical
// values always serialize identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mayflower::obs {

void json_escape(std::string_view s, std::string* out);  // adds quotes

void json_append(double v, std::string* out);
void json_append(std::uint64_t v, std::string* out);
void json_append(bool v, std::string* out);

void json_append(const std::vector<double>& v, std::string* out);
void json_append(const std::vector<std::uint64_t>& v, std::string* out);

// `"key":` (escaped key plus colon).
void json_key(std::string_view key, std::string* out);

}  // namespace mayflower::obs
