#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace mayflower::obs {

void json_escape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void json_append(double v, std::string* out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void json_append(std::uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void json_append(bool v, std::string* out) { *out += v ? "true" : "false"; }

void json_append(const std::vector<double>& v, std::string* out) {
  out->push_back('[');
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out->push_back(',');
    json_append(v[i], out);
  }
  out->push_back(']');
}

void json_append(const std::vector<std::uint64_t>& v, std::string* out) {
  out->push_back('[');
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out->push_back(',');
    json_append(v[i], out);
  }
  out->push_back(']');
}

void json_key(std::string_view key, std::string* out) {
  json_escape(key, out);
  out->push_back(':');
}

}  // namespace mayflower::obs
