// Per-flow lifecycle traces and Flowserver decision audits.
//
// The tracer pairs what the Flowserver *planned* for each transfer — the
// bandwidth share and byte count in effect when the data transfer started,
// i.e. after any multi-read split sizing — with what the data plane
// *realized* (bytes moved over the transfer's lifetime), and records every
// estimate-relevant event in between: multi-read resizes, SETBW bumps by
// later selections, poll updates the freeze state suppressed, reroutes and
// fault kills. Estimator error per completed flow is
//
//     |planned_bps − realized_bw| / realized_bw
//
// which is what the EXPERIMENTS.md estimator-audit bench reports per scheme.
//
// Cookies are plain uint64 so this layer depends on nothing above common/.
// All methods tolerate unknown cookies (flows owned by baseline schemes
// never register here) and no-op when the tracer is disabled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace mayflower::obs {

struct FlowTraceRecord {
  std::uint64_t cookie = 0;
  double planned_bw_bps = 0.0;   // controller estimate when the flow started
  double planned_bytes = 0.0;    // size after split sizing
  double start_sec = 0.0;        // registration time (== transfer start)
  double end_sec = -1.0;         // completion/kill time; -1 while active
  double realized_bw_bps = 0.0;  // moved_bytes / (end - start)
  double moved_bytes = 0.0;
  std::uint32_t resizes = 0;     // multi-read split re-sizings
  std::uint32_t reroutes = 0;
  std::uint32_t freeze_hits = 0;  // poll updates suppressed by the freeze
  std::uint32_t setbw_bumps = 0;  // SETBW from later selections' commits
  bool split = false;             // one leg of a multi-read
  bool killed = false;            // ended by an injected fault, not completion
  bool started = false;
};

// One replica–path selection as the Flowserver saw it (Eq. 2 terms of the
// chosen candidate, how much work the search did, and how much of the state
// it trusted was frozen estimate rather than measurement).
struct DecisionAudit {
  double time_sec = 0.0;
  std::uint32_t candidates = 0;       // (replica, path) pairs evaluated
  double own_time_sec = 0.0;          // d_j / b_j of the chosen candidate
  double impact_sec = 0.0;            // Eq. 2 second term of the chosen one
  std::uint32_t frozen_flows = 0;     // table entries frozen at decision time
  std::uint64_t freeze_suppressed = 0;  // cumulative suppressed poll updates
  bool split = false;                 // decision produced a multi-read
};

class FlowTracer {
 public:
  explicit FlowTracer(bool enabled = true) : enabled_(enabled) {}
  FlowTracer(const FlowTracer&) = delete;
  FlowTracer& operator=(const FlowTracer&) = delete;

  bool enabled() const { return enabled_; }

  // --- registration/planning (FlowStateTable hooks) ----------------------
  void flow_planned(std::uint64_t cookie, double now_sec, double bytes,
                    double planned_bw_bps) EXCLUDES(mu_);
  // Before the transfer starts these revise the plan (multi-read sizing);
  // afterwards they count as SETBW bumps and leave the plan untouched.
  void flow_resized(std::uint64_t cookie, double new_bytes) EXCLUDES(mu_);
  void flow_bw_set(std::uint64_t cookie, double bw_bps) EXCLUDES(mu_);
  // A tentative registration rolled back (rejected multi-read split).
  void flow_abandoned(std::uint64_t cookie) EXCLUDES(mu_);
  void freeze_hit(std::uint64_t cookie) EXCLUDES(mu_);
  void mark_split(std::uint64_t cookie) EXCLUDES(mu_);

  // --- data plane (SdnFabric hooks) --------------------------------------
  void flow_started(std::uint64_t cookie, double now_sec) EXCLUDES(mu_);
  void flow_rerouted(std::uint64_t cookie) EXCLUDES(mu_);
  void flow_completed(std::uint64_t cookie, double now_sec,
                      double moved_bytes) EXCLUDES(mu_);
  void flow_killed(std::uint64_t cookie, double now_sec, double moved_bytes)
      EXCLUDES(mu_);

  void decision(const DecisionAudit& audit) EXCLUDES(mu_);

  // One stats-poll audit sample: |table belief − actual rate| / actual rate
  // for a tracked flow at poll time, *before* UPDATEBW ran. This is the
  // quantity the update-freeze protects — the accuracy of the bandwidth
  // state every selection trusts.
  void belief_error_sample(double error) EXCLUDES(mu_);

  // --- inspection / export -----------------------------------------------
  //
  // The reference-returning readers are control-thread-only: the returned
  // containers are not stabilized against concurrent event hooks (no
  // decision worker ever reaches the tracer, so in practice nothing races
  // with them).
  const std::vector<FlowTraceRecord>& finished() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return finished_;
  }
  const std::vector<DecisionAudit>& decisions() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return decisions_;
  }
  std::size_t active_count() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return active_.size();
  }
  const FlowTraceRecord* find_active(std::uint64_t cookie) const
      EXCLUDES(mu_);

  // |planned − realized| / realized for every completed (not killed) flow
  // with a positive realized bandwidth, in completion order.
  std::vector<double> estimator_errors() const EXCLUDES(mu_);

  // Poll-time belief errors, in sample order.
  const std::vector<double>& belief_errors() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return belief_errors_;
  }

  // Appends "flows":[...],"decisions":[...] fragments to `out`.
  void write_json(std::string* out) const EXCLUDES(mu_);

 private:
  FlowTraceRecord* mutable_active(std::uint64_t cookie) REQUIRES(mu_);
  void finish(std::uint64_t cookie, double now_sec, double moved_bytes,
              bool killed) REQUIRES(mu_);

  bool enabled_;
  // Acquired after FlowStateTable::mu_ (trace hooks fire under the table
  // lock; the tracer never calls back out).
  mutable common::Mutex mu_;
  std::map<std::uint64_t, FlowTraceRecord> active_ GUARDED_BY(mu_);
  std::vector<FlowTraceRecord> finished_
      GUARDED_BY(mu_);  // completion/kill order
  std::vector<DecisionAudit> decisions_ GUARDED_BY(mu_);
  std::vector<double> belief_errors_ GUARDED_BY(mu_);
};

}  // namespace mayflower::obs
