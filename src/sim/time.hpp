// Simulated time: a strong integer-nanosecond type.
//
// The fluid network model computes with double seconds internally, but event
// ordering uses integer nanoseconds so that runs are exactly reproducible and
// never suffer from priority-queue jitter between near-equal doubles.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace mayflower::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime from_nanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime from_micros(double us) {
    return SimTime(static_cast<std::int64_t>(us * 1e3));
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace mayflower::sim
