// Discrete-event simulation kernel.
//
// Single-threaded by design: the whole simulated datacenter (network flows,
// SDN stats polls, RPC deliveries, dataserver disk service) shares one event
// queue, which makes every experiment deterministic for a fixed seed.
//
// Events scheduled for the same instant run in scheduling order (FIFO via a
// monotonically increasing sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mayflower::sim {

using EventFn = std::function<void()>;

// Token for cancelling a scheduled event. Default-constructed ids are invalid.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `at` (must not be in the past).
  EventId schedule_at(SimTime at, EventFn fn);

  // Schedules `fn` after `delay` relative to now().
  EventId schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  // Runs events until the queue is empty. Returns number of events executed.
  std::size_t run();

  // Runs events with time <= deadline; leaves later events pending and
  // advances now() to min(deadline, time of last executed event... precisely:
  // now() ends at deadline if any events remain, else at the last event time).
  std::size_t run_until(SimTime deadline);

  // Executes exactly one event if available. Returns false when empty.
  bool step();

  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_one(Entry& out);
  void skim_front();

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of scheduled-but-not-yet-run-or-cancelled events. Cancel is a simple
  // erase here; the heap drops dead entries lazily at pop time.
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace mayflower::sim
