#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace mayflower::sim {

EventId EventQueue::schedule_at(SimTime at, EventFn fn) {
  MAYFLOWER_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  MAYFLOWER_ASSERT(fn != nullptr);
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.id = next_id_++;
  e.fn = std::move(fn);
  const EventId id{e.id};
  live_.insert(e.id);
  heap_.push(std::move(e));
  return id;
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  // No-op if the event already ran or was cancelled; the heap entry (if any)
  // is dropped lazily in pop_one().
  live_.erase(id.value);
}

bool EventQueue::pop_one(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; moving out is safe because we pop
    // immediately afterwards.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (live_.erase(e.id) == 0) continue;  // cancelled
    out = std::move(e);
    return true;
  }
  return false;
}

void EventQueue::skim_front() {
  while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

std::size_t EventQueue::run() {
  std::size_t n = 0;
  Entry e;
  while (pop_one(e)) {
    now_ = e.at;
    e.fn();
    ++n;
  }
  return n;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t n = 0;
  Entry e;
  while (true) {
    skim_front();
    if (heap_.empty() || heap_.top().at > deadline) break;
    if (!pop_one(e)) break;
    now_ = e.at;
    e.fn();
    ++n;
  }
  if (deadline > now_) now_ = deadline;
  return n;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_one(e)) return false;
  now_ = e.at;
  e.fn();
  return true;
}

}  // namespace mayflower::sim
