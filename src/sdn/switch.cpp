#include "sdn/switch.hpp"

namespace mayflower::sdn {

void Switch::install(Cookie cookie, net::LinkId out_link) {
  table_[cookie] = out_link;
}

bool Switch::remove(Cookie cookie) { return table_.erase(cookie) > 0; }

std::optional<net::LinkId> Switch::lookup(Cookie cookie) const {
  const auto it = table_.find(cookie);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mayflower::sdn
