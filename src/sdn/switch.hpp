// OpenFlow-style switch model: a flow table mapping flow cookies to output
// ports (directed links). The SDN controller installs one entry per switch
// along a selected path before the transfer starts, mirroring how the paper's
// Flowserver "install[s] the flow path for this request in the OpenFlow
// switches" (§3.3).
//
// Byte counters are not stored here: in the fluid model every link of a path
// carries identical bytes, so the fabric answers counter queries from the
// simulator (see SdnFabric::poll_edge_flow_stats / port_bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/topology.hpp"

namespace mayflower::sdn {

// Unique id of one installed end-to-end flow (stands in for the OpenFlow
// cookie / 5-tuple match).
using Cookie = std::uint64_t;

class Switch {
 public:
  explicit Switch(net::NodeId node) : node_(node) {}

  net::NodeId node() const { return node_; }

  // Installs or overwrites the table entry for `cookie`.
  void install(Cookie cookie, net::LinkId out_link);

  // Removes the entry; returns false if absent.
  bool remove(Cookie cookie);

  // Drops every entry (a crashed switch loses its flow table).
  void clear() { table_.clear(); }

  // Output link for `cookie`, if installed.
  std::optional<net::LinkId> lookup(Cookie cookie) const;

  std::size_t table_size() const { return table_.size(); }

 private:
  net::NodeId node_;
  std::unordered_map<Cookie, net::LinkId> table_;
};

}  // namespace mayflower::sdn
