// LinkRateMonitor: periodic sampling of per-link byte counters into
// transmit-rate estimates — the end-host NIC telemetry Sinbad-R relies on
// (§6.2), lifted out of the policy layer so every decision consumer reads
// utilization from the shared NetworkView instead of polling the fabric
// through its own side channel.
//
// Each sample() reads the cumulative tx bytes of every monitored link (in
// the order the links were given, which keeps byte-for-byte determinism with
// the old in-policy sampler) and derives rate = delta(bytes) / delta(t).
// samples() is the monitor's epoch: a view built before the latest sample is
// stale and must be rebuilt.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network_view.hpp"
#include "sdn/fabric.hpp"
#include "sdn/stats_poller.hpp"

namespace mayflower::sdn {

class LinkRateMonitor {
 public:
  // Starts sampling immediately (rates read 0 until the first interval
  // elapses, exactly like a freshly booted telemetry daemon).
  LinkRateMonitor(SdnFabric& fabric, std::vector<net::LinkId> links,
                  sim::SimTime interval);

  LinkRateMonitor(const LinkRateMonitor&) = delete;
  LinkRateMonitor& operator=(const LinkRateMonitor&) = delete;

  // Restarting after a stop() re-baselines the sample window first: byte
  // counters kept advancing while the monitor was down, and without the
  // re-baseline the first post-restart sample would smear the whole stopped
  // interval's traffic into one "rate". Idempotent while running.
  void start();
  void stop() { poller_.stop(); }
  bool running() const { return poller_.running(); }

  // Samples taken so far; the staleness epoch for views carrying rates.
  std::uint64_t samples() const { return samples_; }

  const std::vector<net::LinkId>& links() const { return links_; }
  double tx_rate_bps(net::LinkId link) const;

  // Publishes the latest rates into `view` (set_tx_rate per monitored link).
  void snapshot_into(net::NetworkView& view) const;

 private:
  void sample();

  SdnFabric* fabric_;
  std::vector<net::LinkId> links_;
  // Link -> slot, built once in the constructor: tx_rate_bps() is called per
  // monitored link per view build, so the old O(links) scan was quadratic
  // per snapshot. Lookup only — never iterated, so ordering can't leak.
  std::unordered_map<net::LinkId, std::size_t> slot_of_link_;
  std::vector<double> rate_bps_;
  std::vector<double> last_bytes_;
  sim::SimTime last_sample_;
  StatsPoller poller_;
  std::uint64_t samples_ = 0;
};

}  // namespace mayflower::sdn
