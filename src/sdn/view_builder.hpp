// ViewBuilder: cached NetworkView construction for decision consumers that
// have no FlowStateTable (the ECMP and Hedera schemes). The view carries
// link capacities + liveness from the fabric, tx rates from an optional
// LinkRateMonitor, and (optionally) per-transfer telemetry for
// measurement-driven schedulers.
//
// Rebuilds are epoch-driven: the cached view is reused until the fabric's
// state epoch or the monitor's sample count moves, so a batch of decisions
// between faults/polls shares one snapshot. include_flow_stats() consumers
// additionally invalidate() by hand at the start of each scheduling round —
// flow byte counters advance continuously and carry no epoch.
#pragma once

#include <cstdint>

#include "net/network_view.hpp"
#include "sdn/fabric.hpp"
#include "sdn/link_rate_monitor.hpp"

namespace mayflower::sdn {

class ViewBuilder {
 public:
  explicit ViewBuilder(SdnFabric& fabric) : fabric_(&fabric) {}

  void set_rate_monitor(const LinkRateMonitor* monitor) {
    monitor_ = monitor;
    built_ = false;
  }
  void set_include_flow_stats(bool on) {
    include_flow_stats_ = on;
    built_ = false;
  }

  // The cached snapshot, rebuilt first if stale.
  const net::NetworkView& view();

  void invalidate() { built_ = false; }
  // Full reconstructions (structural: first build, fault epoch moved, or a
  // manual invalidate).
  std::uint64_t rebuilds() const { return rebuilds_; }
  // Monitor-only overlays: the fabric was quiet, so only tx rates were
  // re-copied onto the cached view.
  std::uint64_t monitor_refreshes() const { return monitor_refreshes_; }

 private:
  bool stale() const;

  SdnFabric* fabric_;
  const LinkRateMonitor* monitor_ = nullptr;
  bool include_flow_stats_ = false;

  net::NetworkView view_;
  bool built_ = false;
  std::uint64_t seen_fabric_epoch_ = 0;
  std::uint64_t seen_samples_ = 0;
  std::uint64_t epoch_counter_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t monitor_refreshes_ = 0;
};

}  // namespace mayflower::sdn
