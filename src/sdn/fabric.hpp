// SdnFabric: the simulated data plane plus its OpenFlow-like control surface.
//
// Owns the fluid FlowSim and one Switch per switch node. Transfers are keyed
// by a fabric-unique Cookie. The contract mirrors a real SDN deployment:
//
//   1. the controller installs the path's flow-table entries,
//   2. the endpoint starts the transfer (start_flow), which verifies hop by
//      hop that the installed entries actually forward along the given path,
//   3. edge switches answer periodic stats polls with per-flow and per-port
//      cumulative byte counters,
//   4. on completion/cancel the entries are torn down.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "net/flow_sim.hpp"
#include "net/network_view.hpp"
#include "net/topology.hpp"
#include "obs/observability.hpp"
#include "sdn/switch.hpp"

namespace mayflower::sdn {

// One row of an OpenFlow flow-stats reply from an edge switch.
struct FlowStatsRecord {
  Cookie cookie = 0;
  double bytes = 0.0;        // cumulative bytes forwarded for this flow
  bool active = true;        // false once the flow finished (final counter)
  double rate_bps = 0.0;     // current max-min allocation (0 once finished)
};

struct PortStatsRecord {
  net::LinkId link = net::kInvalidLink;
  double bytes = 0.0;        // cumulative bytes out this port
  double capacity_bps = 0.0;
};

class SdnFabric {
 public:
  SdnFabric(sim::EventQueue& events, const net::Topology& topo);

  // --- control plane ---------------------------------------------------
  //
  // The flow-table surface (install/remove/verify, cookie allocation) is
  // mutex-guarded: decision workers pre-draw cookies and the commit replay
  // installs paths, and both must be safe against a concurrent stress
  // driver. The data plane (start/cancel/reroute, polls, faults) remains
  // control-thread-only — it runs inside the event loop by design.

  Cookie new_cookie() EXCLUDES(table_mu_) {
    common::MutexLock lock(table_mu_);
    return next_cookie_++;
  }

  // Installs `path` for `cookie` in every switch along it.
  void install_path(Cookie cookie, const net::Path& path)
      EXCLUDES(table_mu_);

  // Bulk variant for a decision batch: installs every (cookie, path) pair,
  // flushing trace/metrics once (one counter add of `batch.size()` rather
  // than one RPC-equivalent per path).
  struct PathInstall {
    Cookie cookie = 0;
    const net::Path* path = nullptr;
  };
  void install_paths(const std::vector<PathInstall>& batch)
      EXCLUDES(table_mu_);

  void remove_path(Cookie cookie) EXCLUDES(table_mu_);

  // --- data plane -------------------------------------------------------

  using CompletionFn = std::function<void(Cookie, sim::SimTime start_time)>;
  // Failure notification: the transfer died mid-flight (link/switch failure)
  // or was started over a path that is already dead. The record carries the
  // progress made (remaining_bytes == size_bytes when nothing moved).
  using FailureFn = std::function<void(Cookie, const net::FlowRecord&)>;

  // Starts a transfer of `bytes` along `path`. The path must already be
  // installed (hop-by-hop verified) unless it is zero-hop. Flow-table entries
  // are removed automatically at completion; `on_complete` (optional) fires
  // from the event loop. If the path crosses a down link — now or later —
  // the transfer fails instead: entries are torn down, failure listeners are
  // notified and `on_fail` (optional) fires from the event loop.
  void start_flow(Cookie cookie, const net::Path& path, double bytes,
                  CompletionFn on_complete = nullptr,
                  FailureFn on_fail = nullptr);

  // Cancels an in-flight transfer and tears down its path.
  bool cancel_flow(Cookie cookie);

  // Moves an in-flight transfer onto `new_path` (same endpoints): installs
  // the new flow-table entries, reroutes the simulator flow, removes stale
  // entries. Returns false if the cookie is not active.
  bool reroute_flow(Cookie cookie, const net::Path& new_path);

  bool flow_active(Cookie cookie) const;

  // The simulator record behind an active cookie (nullptr once finished):
  // the controller legitimately knows the path it installed and the byte
  // counter it can poll; rate/remaining are also exposed for convenience.
  const net::FlowRecord* flow_record(Cookie cookie);

  // --- telemetry (what a controller can legitimately see) ---------------

  // Flow stats from one edge switch: flows whose *source host* hangs off
  // `edge_switch` (the paper polls the dataserver-side edge, §4). Served
  // from a per-edge cookie index in O(flows at that edge), cookie order.
  std::vector<FlowStatsRecord> poll_edge_flow_stats(net::NodeId edge_switch);

  // Port counters of one switch (all its outgoing links).
  std::vector<PortStatsRecord> poll_port_stats(net::NodeId switch_node);

  // Cumulative bytes out of one directed link.
  double port_bytes(net::LinkId link);

  // --- faults (what the FaultInjector drives) ---------------------------

  // Takes one directed link down / back up. Flows crossing a failed link
  // are killed: their table entries disappear, failure listeners fire, and
  // the per-flow on_fail callback (if any) runs. Returns false when the
  // link was already in the requested state.
  bool fail_link(net::LinkId link);
  bool restore_link(net::LinkId link);

  // Scales one directed link to `factor` of its configured capacity
  // (degraded port); rates recompute, nothing is killed.
  void set_link_capacity_factor(net::LinkId link, double factor) {
    flow_sim_.set_link_capacity_factor(link, factor);
    ++state_epoch_;
  }

  // Crashes a switch: every adjacent link (that is still up) goes down —
  // killing the flows through it — and its flow table is wiped, as is any
  // pending final-counter state for polls of it. restore_switch() brings
  // back exactly the links the crash took down.
  void fail_switch(net::NodeId node);
  void restore_switch(net::NodeId node);
  bool switch_up(net::NodeId node) const {
    return down_switches_.find(node) == down_switches_.end();
  }

  bool link_up(net::LinkId link) const { return flow_sim_.link_up(link); }
  bool path_alive(const net::Path& path) const {
    return flow_sim_.path_alive(path);
  }

  // --- snapshotting (NetworkView construction) ---------------------------

  // Bumped whenever fabric-visible network state changes out from under a
  // decision view: link/switch failures and restores, capacity degradation.
  // View builders compare this against the epoch they built at.
  std::uint64_t state_epoch() const { return state_epoch_; }

  // Publishes link liveness into `view` (which must already be sized by
  // reset_links — capacities stay the CONFIGURED values the decision model
  // uses; only liveness is overlaid here).
  void snapshot_liveness_into(net::NetworkView& view) const;

  // Publishes per-transfer data-plane telemetry (cumulative bytes sent +
  // installed path, by cookie, in cookie order) into `view`. Syncs the
  // simulator first so counters are current.
  void snapshot_flow_stats_into(net::NetworkView& view);

  // Registers an observer for every flow failure (by cookie); used by the
  // Flowserver to expire its estimates for killed transfers.
  void add_flow_failure_listener(std::function<void(Cookie)> listener) {
    failure_listeners_.push_back(std::move(listener));
  }

  // Attaches the observability hub: control-plane counters (installs,
  // wipes, link/switch faults, polls) land in its registry, and the data
  // plane reports per-flow start/complete/kill/reroute to its tracer.
  // Forwards the registry to the FlowSim for solve counters. Null detaches.
  void set_obs(obs::Observability* hub);

  const net::Topology& topology() const { return *topo_; }
  net::FlowSim& flow_sim() { return flow_sim_; }
  sim::EventQueue& events() { return *events_; }

  // Control-thread-only: returns a reference into the guarded switch map
  // (valid for the fabric's lifetime; unordered_map nodes are stable).
  const Switch& switch_at(net::NodeId node) const EXCLUDES(table_mu_);

 private:
  struct ActiveFlow {
    net::FlowId flow_id = net::kInvalidFlow;
    net::NodeId src_edge = net::kInvalidNode;  // edge switch of source host
    FailureFn on_fail;
  };

  void verify_installed(Cookie cookie, const net::Path& path) const
      EXCLUDES(table_mu_);
  Switch& mutable_switch(net::NodeId node) REQUIRES(table_mu_);
  // Cleanup + notification for a flow the simulator killed (link failure).
  void on_flow_killed(const net::FlowRecord& record);
  void notify_flow_failed(Cookie cookie, const net::FlowRecord& record,
                          FailureFn on_fail);

  // Drops `cookie` from its source edge's poll index (no-op for zero-hop).
  void unindex_edge_flow(net::NodeId src_edge, Cookie cookie);

  sim::EventQueue* events_;
  const net::Topology* topo_;
  net::FlowSim flow_sim_;
  // Guards the flow tables and the cookie counter (see the control-plane
  // note above). Never held across FlowSim calls: fail_link kills flows,
  // whose cleanup re-enters remove_path().
  mutable common::Mutex table_mu_;
  std::unordered_map<net::NodeId, Switch> switches_ GUARDED_BY(table_mu_);
  std::unordered_map<Cookie, ActiveFlow> active_;
  // Poll index: source edge switch -> active cookies polled there (ordered,
  // so stats replies are deterministic and O(flows at the edge)).
  std::map<net::NodeId, std::map<Cookie, net::FlowId>> edge_flows_;
  // Final byte counts of flows that completed since the last poll of their
  // source edge switch (switch counters outlive flow completion briefly).
  std::unordered_map<net::NodeId, std::vector<FlowStatsRecord>> completed_;
  // Crashed switches, each with the adjacent links the crash took down
  // (restore_switch brings back exactly those, not individually-failed ones).
  std::map<net::NodeId, std::vector<net::LinkId>> down_switches_;
  std::vector<std::function<void(Cookie)>> failure_listeners_;
  Cookie next_cookie_ GUARDED_BY(table_mu_) = 1;
  std::uint64_t state_epoch_ = 0;

  // Observability (all handles are no-ops until set_obs()).
  obs::FlowTracer* trace_ = nullptr;
  obs::Counter installs_;
  obs::Counter removes_;
  obs::Counter flows_started_;
  obs::Counter flows_completed_;
  obs::Counter flows_failed_;
  obs::Counter reroutes_;
  obs::Counter link_downs_;
  obs::Counter link_restores_;
  obs::Counter switch_wipes_;
  obs::Counter edge_polls_;
};

}  // namespace mayflower::sdn
