#include "sdn/stats_poller.hpp"

#include "common/assert.hpp"

namespace mayflower::sdn {

StatsPoller::StatsPoller(sim::EventQueue& events, sim::SimTime interval,
                         TickFn on_tick)
    : events_(&events), interval_(interval), on_tick_(std::move(on_tick)) {
  MAYFLOWER_ASSERT(interval_.nanos() > 0);
  MAYFLOWER_ASSERT(on_tick_ != nullptr);
}

StatsPoller::~StatsPoller() { stop(); }

void StatsPoller::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  arm();
}

void StatsPoller::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  events_->cancel(pending_);
  pending_ = sim::EventId{};
}

void StatsPoller::set_groups(std::uint32_t n) {
  MAYFLOWER_ASSERT_MSG(!running_, "set_groups on a running poller");
  MAYFLOWER_ASSERT(n >= 1);
  MAYFLOWER_ASSERT_MSG(interval_.nanos() / n > 0,
                       "interval too fine to split into this many groups");
  groups_ = n;
  subticks_in_cycle_ = 0;
}

void StatsPoller::arm() {
  // Each armed chain carries the epoch it belongs to. A tick callback may
  // call stop() — or stop() then start() — on this very poller; re-arming
  // unconditionally after on_tick_() would silently resurrect a stopped
  // chain (and double-tick after a restart). The epoch check kills the
  // stale chain in both cases.
  const std::uint64_t epoch = epoch_;
  const sim::SimTime tick_gap =
      sim::SimTime::from_nanos(interval_.nanos() / groups_);
  pending_ = events_->schedule_in(tick_gap, [this, epoch] {
    if (!running_ || epoch != epoch_) return;
    ++ticks_;
    ticks_metric_.inc();
    on_tick_();
    // A cycle is complete once the last of its groups_ sub-sweeps has run —
    // counted after the callback (and regardless of a stop() from within it)
    // so cycles() never credits a sweep that hasn't happened yet.
    if (++subticks_in_cycle_ == groups_) {
      subticks_in_cycle_ = 0;
      ++cycles_;
      cycles_metric_.inc();
    }
    if (!running_ || epoch != epoch_) return;  // stopped from within the tick
    arm();
  });
}

}  // namespace mayflower::sdn
