#include "sdn/stats_poller.hpp"

#include "common/assert.hpp"

namespace mayflower::sdn {

StatsPoller::StatsPoller(sim::EventQueue& events, sim::SimTime interval,
                         TickFn on_tick)
    : events_(&events), interval_(interval), on_tick_(std::move(on_tick)) {
  MAYFLOWER_ASSERT(interval_.nanos() > 0);
  MAYFLOWER_ASSERT(on_tick_ != nullptr);
}

StatsPoller::~StatsPoller() { stop(); }

void StatsPoller::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void StatsPoller::stop() {
  if (!running_) return;
  running_ = false;
  events_->cancel(pending_);
  pending_ = sim::EventId{};
}

void StatsPoller::arm() {
  pending_ = events_->schedule_in(interval_, [this] {
    if (!running_) return;
    ++ticks_;
    on_tick_();
    arm();
  });
}

}  // namespace mayflower::sdn
