#include "sdn/link_rate_monitor.hpp"

#include "common/assert.hpp"

namespace mayflower::sdn {

LinkRateMonitor::LinkRateMonitor(SdnFabric& fabric,
                                 std::vector<net::LinkId> links,
                                 sim::SimTime interval)
    : fabric_(&fabric),
      links_(std::move(links)),
      poller_(fabric.events(), interval, [this] { sample(); }) {
  rate_bps_.assign(links_.size(), 0.0);
  last_bytes_.assign(links_.size(), 0.0);
  last_sample_ = fabric.events().now();
  poller_.start();
}

void LinkRateMonitor::sample() {
  const sim::SimTime now = fabric_->events().now();
  const double dt = (now - last_sample_).seconds();
  last_sample_ = now;
  if (dt <= 0.0) return;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double bytes = fabric_->port_bytes(links_[i]);
    rate_bps_[i] = (bytes - last_bytes_[i]) / dt;
    last_bytes_[i] = bytes;
  }
  ++samples_;
}

double LinkRateMonitor::tx_rate_bps(net::LinkId link) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i] == link) return rate_bps_[i];
  }
  MAYFLOWER_ASSERT_MSG(false, "link is not monitored");
  return 0.0;
}

void LinkRateMonitor::snapshot_into(net::NetworkView& view) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    view.set_tx_rate(links_[i], rate_bps_[i]);
  }
}

}  // namespace mayflower::sdn
