#include "sdn/link_rate_monitor.hpp"

#include "common/assert.hpp"

namespace mayflower::sdn {

LinkRateMonitor::LinkRateMonitor(SdnFabric& fabric,
                                 std::vector<net::LinkId> links,
                                 sim::SimTime interval)
    : fabric_(&fabric),
      links_(std::move(links)),
      poller_(fabric.events(), interval, [this] { sample(); }) {
  rate_bps_.assign(links_.size(), 0.0);
  last_bytes_.assign(links_.size(), 0.0);
  slot_of_link_.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const bool fresh = slot_of_link_.emplace(links_[i], i).second;
    MAYFLOWER_ASSERT_MSG(fresh, "duplicate monitored link");
  }
  last_sample_ = fabric.events().now();
  poller_.start();
}

void LinkRateMonitor::start() {
  if (poller_.running()) return;
  // Re-baseline before resuming: rates must reflect only post-restart
  // traffic, not whatever accumulated during the stopped interval.
  last_sample_ = fabric_->events().now();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    last_bytes_[i] = fabric_->port_bytes(links_[i]);
  }
  poller_.start();
}

void LinkRateMonitor::sample() {
  const sim::SimTime now = fabric_->events().now();
  const double dt = (now - last_sample_).seconds();
  last_sample_ = now;
  if (dt <= 0.0) return;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double bytes = fabric_->port_bytes(links_[i]);
    rate_bps_[i] = (bytes - last_bytes_[i]) / dt;
    last_bytes_[i] = bytes;
  }
  ++samples_;
}

double LinkRateMonitor::tx_rate_bps(net::LinkId link) const {
  const auto it = slot_of_link_.find(link);
  MAYFLOWER_ASSERT_MSG(it != slot_of_link_.end(), "link is not monitored");
  return rate_bps_[it->second];
}

void LinkRateMonitor::snapshot_into(net::NetworkView& view) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    view.set_tx_rate(links_[i], rate_bps_[i]);
  }
}

}  // namespace mayflower::sdn
