#include "sdn/fabric.hpp"

#include "common/logging.hpp"

namespace mayflower::sdn {
namespace {

// The access switch of a host: the far end of its (single) uplink.
net::NodeId edge_of(const net::Topology& topo, net::NodeId host) {
  const auto& ups = topo.out_links(host);
  if (ups.empty()) return net::kInvalidNode;
  return topo.link(ups.front()).to;
}

}  // namespace

SdnFabric::SdnFabric(sim::EventQueue& events, const net::Topology& topo)
    : events_(&events), topo_(&topo), flow_sim_(events, topo) {
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind != net::NodeKind::kHost) {
      switches_.emplace(n, Switch(n));
    }
  }
  flow_sim_.set_kill_handler(
      [this](const net::FlowRecord& f) { on_flow_killed(f); });
}

void SdnFabric::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    trace_ = nullptr;
    installs_ = removes_ = flows_started_ = flows_completed_ = obs::Counter{};
    flows_failed_ = reroutes_ = link_downs_ = link_restores_ = obs::Counter{};
    switch_wipes_ = edge_polls_ = obs::Counter{};
    flow_sim_.set_metrics(nullptr);
    return;
  }
  trace_ = &hub->trace;
  obs::MetricsRegistry& reg = hub->metrics;
  installs_ = reg.counter("sdn.fabric.path_installs");
  removes_ = reg.counter("sdn.fabric.path_removes");
  flows_started_ = reg.counter("sdn.fabric.flows_started");
  flows_completed_ = reg.counter("sdn.fabric.flows_completed");
  flows_failed_ = reg.counter("sdn.fabric.flows_failed");
  reroutes_ = reg.counter("sdn.fabric.reroutes");
  link_downs_ = reg.counter("sdn.fabric.link_downs");
  link_restores_ = reg.counter("sdn.fabric.link_restores");
  switch_wipes_ = reg.counter("sdn.fabric.switch_wipes");
  edge_polls_ = reg.counter("sdn.fabric.edge_polls");
  flow_sim_.set_metrics(&reg);
}

Switch& SdnFabric::mutable_switch(net::NodeId node) {
  const auto it = switches_.find(node);
  MAYFLOWER_ASSERT_MSG(it != switches_.end(), "node is not a switch");
  return it->second;
}

const Switch& SdnFabric::switch_at(net::NodeId node) const {
  common::MutexLock lock(table_mu_);
  const auto it = switches_.find(node);
  MAYFLOWER_ASSERT_MSG(it != switches_.end(), "node is not a switch");
  return it->second;
}

void SdnFabric::install_path(Cookie cookie, const net::Path& path) {
  common::MutexLock lock(table_mu_);
  // Each intermediate node forwards onto the next link. The first link
  // leaves the source host (no switch entry needed there).
  for (std::size_t i = 1; i < path.links.size(); ++i) {
    const net::NodeId node = path.nodes[i];
    mutable_switch(node).install(cookie, path.links[i]);
  }
  installs_.inc();
}

void SdnFabric::install_paths(const std::vector<PathInstall>& batch) {
  common::MutexLock lock(table_mu_);
  for (const PathInstall& p : batch) {
    MAYFLOWER_ASSERT(p.path != nullptr);
    for (std::size_t i = 1; i < p.path->links.size(); ++i) {
      const net::NodeId node = p.path->nodes[i];
      mutable_switch(node).install(p.cookie, p.path->links[i]);
    }
  }
  installs_.inc(static_cast<std::uint64_t>(batch.size()));
}

void SdnFabric::remove_path(Cookie cookie) {
  common::MutexLock lock(table_mu_);
  // Removal visits every switch; visiting order is irrelevant (each remove
  // touches only that switch's own table). lint:allow(nondet)
  for (auto& [node, sw] : switches_) {
    sw.remove(cookie);
  }
  removes_.inc();
}

void SdnFabric::verify_installed(Cookie cookie, const net::Path& path) const {
  for (std::size_t i = 1; i < path.links.size(); ++i) {
    const net::NodeId node = path.nodes[i];
    const auto out = switch_at(node).lookup(cookie);
    MAYFLOWER_ASSERT_MSG(out.has_value(),
                         "flow started before its path was installed");
    MAYFLOWER_ASSERT_MSG(*out == path.links[i],
                         "installed entry forwards onto a different link");
  }
}

void SdnFabric::unindex_edge_flow(net::NodeId src_edge, Cookie cookie) {
  if (src_edge == net::kInvalidNode) return;
  const auto it = edge_flows_.find(src_edge);
  MAYFLOWER_ASSERT(it != edge_flows_.end());
  it->second.erase(cookie);
  if (it->second.empty()) edge_flows_.erase(it);
}

void SdnFabric::start_flow(Cookie cookie, const net::Path& path, double bytes,
                           CompletionFn on_complete, FailureFn on_fail) {
  MAYFLOWER_ASSERT_MSG(active_.find(cookie) == active_.end(),
                       "cookie already has an active flow");
  verify_installed(cookie, path);

  if (!flow_sim_.path_alive(path)) {
    // The chosen path is already dead (the scheme did not know): the
    // transfer fails immediately, but asynchronously — callers observe the
    // same event-loop contract as a mid-flight failure.
    net::FlowRecord stillborn;
    stillborn.path = path;
    stillborn.size_bytes = bytes;
    stillborn.remaining_bytes = bytes;
    stillborn.tag = cookie;
    stillborn.start_time = events_->now();
    events_->schedule_in(
        sim::SimTime{},
        [this, cookie, stillborn = std::move(stillborn),
         on_fail = std::move(on_fail)]() mutable {
          remove_path(cookie);
          flows_failed_.inc();
          if (trace_ != nullptr) {
            trace_->flow_killed(cookie, events_->now().seconds(), 0.0);
          }
          notify_flow_failed(cookie, stillborn, std::move(on_fail));
        });
    return;
  }

  ActiveFlow rec;
  rec.src_edge = path.links.empty() ? net::kInvalidNode
                                    : edge_of(*topo_, path.nodes.front());
  rec.on_fail = std::move(on_fail);
  const net::FlowId id = flow_sim_.start_flow(
      path, bytes,
      [this, cookie, on_complete](const net::FlowRecord& f) {
        // Preserve the final counter for the next stats poll, then retire.
        const auto it = active_.find(cookie);
        MAYFLOWER_ASSERT(it != active_.end());
        if (it->second.src_edge != net::kInvalidNode) {
          completed_[it->second.src_edge].push_back(
              FlowStatsRecord{cookie, f.size_bytes, false});
        }
        unindex_edge_flow(it->second.src_edge, cookie);
        active_.erase(it);
        remove_path(cookie);
        flows_completed_.inc();
        if (trace_ != nullptr) {
          trace_->flow_completed(cookie, events_->now().seconds(),
                                 f.size_bytes);
        }
        if (on_complete) on_complete(cookie, f.start_time);
      },
      cookie);
  rec.flow_id = id;
  active_.emplace(cookie, rec);
  if (rec.src_edge != net::kInvalidNode) {
    edge_flows_[rec.src_edge].emplace(cookie, id);
  }
  flows_started_.inc();
  if (trace_ != nullptr) {
    trace_->flow_started(cookie, events_->now().seconds());
  }
}

void SdnFabric::notify_flow_failed(Cookie cookie,
                                   const net::FlowRecord& record,
                                   FailureFn on_fail) {
  for (const auto& listener : failure_listeners_) listener(cookie);
  if (on_fail) on_fail(cookie, record);
}

void SdnFabric::on_flow_killed(const net::FlowRecord& record) {
  // The simulator already removed the flow and re-solved the survivors; the
  // fabric retires the cookie like a completion, minus the final counter (a
  // dead flow's bytes never reached the client).
  const Cookie cookie = record.tag;
  const auto it = active_.find(cookie);
  MAYFLOWER_ASSERT_MSG(it != active_.end(),
                       "killed flow is not an active fabric transfer");
  FailureFn on_fail = std::move(it->second.on_fail);
  unindex_edge_flow(it->second.src_edge, cookie);
  active_.erase(it);
  remove_path(cookie);
  flows_failed_.inc();
  if (trace_ != nullptr) {
    trace_->flow_killed(cookie, events_->now().seconds(),
                        record.bytes_sent());
  }
  notify_flow_failed(cookie, record, std::move(on_fail));
}

bool SdnFabric::fail_link(net::LinkId link) {
  const bool changed = flow_sim_.fail_link(link);
  if (changed) {
    link_downs_.inc();
    ++state_epoch_;
  }
  return changed;
}

bool SdnFabric::restore_link(net::LinkId link) {
  const bool changed = flow_sim_.restore_link(link);
  if (changed) {
    link_restores_.inc();
    ++state_epoch_;
  }
  return changed;
}

void SdnFabric::fail_switch(net::NodeId node) {
  {
    common::MutexLock lock(table_mu_);
    MAYFLOWER_ASSERT_MSG(switches_.find(node) != switches_.end(),
                         "node is not a switch");
  }
  if (!switch_up(node)) return;
  // Mark the switch down before killing flows: failure listeners may
  // re-select paths and must already see it dead.
  std::vector<net::LinkId>& downed = down_switches_[node];
  for (const net::LinkId l : topo_->out_links(node)) {
    if (flow_sim_.fail_link(l)) downed.push_back(l);
  }
  for (const net::LinkId l : topo_->in_links(node)) {
    if (flow_sim_.fail_link(l)) downed.push_back(l);
  }
  // A crash wipes the flow table and whatever counters a poll would have
  // read.
  {
    common::MutexLock lock(table_mu_);
    mutable_switch(node).clear();
  }
  completed_.erase(node);
  switch_wipes_.inc();
  ++state_epoch_;
}

void SdnFabric::restore_switch(net::NodeId node) {
  const auto it = down_switches_.find(node);
  if (it == down_switches_.end()) return;
  const std::vector<net::LinkId> downed = std::move(it->second);
  down_switches_.erase(it);
  for (const net::LinkId l : downed) flow_sim_.restore_link(l);
  ++state_epoch_;
}

bool SdnFabric::cancel_flow(Cookie cookie) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return false;
  flow_sim_.cancel(it->second.flow_id);
  unindex_edge_flow(it->second.src_edge, cookie);
  active_.erase(it);
  remove_path(cookie);
  return true;
}

bool SdnFabric::reroute_flow(Cookie cookie, const net::Path& new_path) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return false;
  // Make-before-break: the new entries land, the flow moves, then the stale
  // entries (those not shared with the new path) disappear.
  remove_path(cookie);
  install_path(cookie, new_path);
  const bool ok = flow_sim_.reroute(it->second.flow_id, new_path);
  MAYFLOWER_ASSERT(ok);
  reroutes_.inc();
  if (trace_ != nullptr) trace_->flow_rerouted(cookie);
  return true;
}

bool SdnFabric::flow_active(Cookie cookie) const {
  return active_.find(cookie) != active_.end();
}

const net::FlowRecord* SdnFabric::flow_record(Cookie cookie) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return nullptr;
  flow_sim_.sync();
  return flow_sim_.find(it->second.flow_id);
}

std::vector<FlowStatsRecord> SdnFabric::poll_edge_flow_stats(
    net::NodeId edge_switch) {
  flow_sim_.sync();
  edge_polls_.inc();
  std::vector<FlowStatsRecord> out;
  // The per-edge index replaces the sweep over every active flow in the
  // fabric: only this switch's flows are read, in cookie order.
  if (const auto eit = edge_flows_.find(edge_switch);
      eit != edge_flows_.end()) {
    out.reserve(eit->second.size());
    for (const auto& [cookie, flow_id] : eit->second) {
      const net::FlowRecord* f = flow_sim_.find(flow_id);
      MAYFLOWER_ASSERT(f != nullptr);
      out.push_back(FlowStatsRecord{cookie, f->bytes_sent(), true,
                                    f->rate_bps});
    }
  }
  if (const auto it = completed_.find(edge_switch); it != completed_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
    completed_.erase(it);
  }
  return out;
}

std::vector<PortStatsRecord> SdnFabric::poll_port_stats(
    net::NodeId switch_node) {
  flow_sim_.sync();
  std::vector<PortStatsRecord> out;
  for (const net::LinkId l : topo_->out_links(switch_node)) {
    out.push_back(PortStatsRecord{l, flow_sim_.link_tx_bytes(l),
                                  topo_->link(l).capacity_bps});
  }
  return out;
}

double SdnFabric::port_bytes(net::LinkId link) {
  flow_sim_.sync();
  return flow_sim_.link_tx_bytes(link);
}

void SdnFabric::snapshot_liveness_into(net::NetworkView& view) const {
  const std::size_t n = topo_->link_count();
  for (net::LinkId l = 0; l < static_cast<net::LinkId>(n); ++l) {
    if (!flow_sim_.link_up(l)) view.mark_link_down(l);
  }
}

void SdnFabric::snapshot_flow_stats_into(net::NetworkView& view) {
  flow_sim_.sync();
  // active_ iterates in hash order, but the view keys its telemetry map by
  // cookie, so the snapshot's CONTENT is deterministic regardless of the
  // order entries land. Zero-hop transfers are included: schedulers that
  // estimate per-host demand count them even though they cross no link.
  // lint:allow(nondet)
  for (const auto& [cookie, rec] : active_) {
    const net::FlowRecord* f = flow_sim_.find(rec.flow_id);
    MAYFLOWER_ASSERT(f != nullptr);
    net::NetworkView::FlowStats stats;
    stats.bytes_sent = f->bytes_sent();
    stats.path = f->path;
    view.set_flow_stats(cookie, std::move(stats));
  }
}

}  // namespace mayflower::sdn
