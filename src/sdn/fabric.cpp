#include "sdn/fabric.hpp"

#include "common/logging.hpp"

namespace mayflower::sdn {
namespace {

// The access switch of a host: the far end of its (single) uplink.
net::NodeId edge_of(const net::Topology& topo, net::NodeId host) {
  const auto& ups = topo.out_links(host);
  if (ups.empty()) return net::kInvalidNode;
  return topo.link(ups.front()).to;
}

}  // namespace

SdnFabric::SdnFabric(sim::EventQueue& events, const net::Topology& topo)
    : events_(&events), topo_(&topo), flow_sim_(events, topo) {
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).kind != net::NodeKind::kHost) {
      switches_.emplace(n, Switch(n));
    }
  }
}

Switch& SdnFabric::mutable_switch(net::NodeId node) {
  const auto it = switches_.find(node);
  MAYFLOWER_ASSERT_MSG(it != switches_.end(), "node is not a switch");
  return it->second;
}

const Switch& SdnFabric::switch_at(net::NodeId node) const {
  const auto it = switches_.find(node);
  MAYFLOWER_ASSERT_MSG(it != switches_.end(), "node is not a switch");
  return it->second;
}

void SdnFabric::install_path(Cookie cookie, const net::Path& path) {
  // Each intermediate node forwards onto the next link. The first link
  // leaves the source host (no switch entry needed there).
  for (std::size_t i = 1; i < path.links.size(); ++i) {
    const net::NodeId node = path.nodes[i];
    mutable_switch(node).install(cookie, path.links[i]);
  }
}

void SdnFabric::remove_path(Cookie cookie) {
  for (auto& [node, sw] : switches_) {
    sw.remove(cookie);
  }
}

void SdnFabric::verify_installed(Cookie cookie, const net::Path& path) const {
  for (std::size_t i = 1; i < path.links.size(); ++i) {
    const net::NodeId node = path.nodes[i];
    const auto out = switch_at(node).lookup(cookie);
    MAYFLOWER_ASSERT_MSG(out.has_value(),
                         "flow started before its path was installed");
    MAYFLOWER_ASSERT_MSG(*out == path.links[i],
                         "installed entry forwards onto a different link");
  }
}

void SdnFabric::unindex_edge_flow(net::NodeId src_edge, Cookie cookie) {
  if (src_edge == net::kInvalidNode) return;
  const auto it = edge_flows_.find(src_edge);
  MAYFLOWER_ASSERT(it != edge_flows_.end());
  it->second.erase(cookie);
  if (it->second.empty()) edge_flows_.erase(it);
}

void SdnFabric::start_flow(Cookie cookie, const net::Path& path, double bytes,
                           CompletionFn on_complete) {
  MAYFLOWER_ASSERT_MSG(active_.find(cookie) == active_.end(),
                       "cookie already has an active flow");
  verify_installed(cookie, path);

  ActiveFlow rec;
  rec.src_edge = path.links.empty() ? net::kInvalidNode
                                    : edge_of(*topo_, path.nodes.front());
  const net::FlowId id = flow_sim_.start_flow(
      path, bytes,
      [this, cookie, on_complete](const net::FlowRecord& f) {
        // Preserve the final counter for the next stats poll, then retire.
        const auto it = active_.find(cookie);
        MAYFLOWER_ASSERT(it != active_.end());
        if (it->second.src_edge != net::kInvalidNode) {
          completed_[it->second.src_edge].push_back(
              FlowStatsRecord{cookie, f.size_bytes, false});
        }
        unindex_edge_flow(it->second.src_edge, cookie);
        active_.erase(it);
        remove_path(cookie);
        if (on_complete) on_complete(cookie, f.start_time);
      },
      cookie);
  rec.flow_id = id;
  active_.emplace(cookie, rec);
  if (rec.src_edge != net::kInvalidNode) {
    edge_flows_[rec.src_edge].emplace(cookie, id);
  }
}

bool SdnFabric::cancel_flow(Cookie cookie) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return false;
  flow_sim_.cancel(it->second.flow_id);
  unindex_edge_flow(it->second.src_edge, cookie);
  active_.erase(it);
  remove_path(cookie);
  return true;
}

bool SdnFabric::reroute_flow(Cookie cookie, const net::Path& new_path) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return false;
  // Make-before-break: the new entries land, the flow moves, then the stale
  // entries (those not shared with the new path) disappear.
  remove_path(cookie);
  install_path(cookie, new_path);
  const bool ok = flow_sim_.reroute(it->second.flow_id, new_path);
  MAYFLOWER_ASSERT(ok);
  return true;
}

bool SdnFabric::flow_active(Cookie cookie) const {
  return active_.find(cookie) != active_.end();
}

const net::FlowRecord* SdnFabric::flow_record(Cookie cookie) {
  const auto it = active_.find(cookie);
  if (it == active_.end()) return nullptr;
  flow_sim_.sync();
  return flow_sim_.find(it->second.flow_id);
}

std::vector<FlowStatsRecord> SdnFabric::poll_edge_flow_stats(
    net::NodeId edge_switch) {
  flow_sim_.sync();
  std::vector<FlowStatsRecord> out;
  // The per-edge index replaces the sweep over every active flow in the
  // fabric: only this switch's flows are read, in cookie order.
  if (const auto eit = edge_flows_.find(edge_switch);
      eit != edge_flows_.end()) {
    out.reserve(eit->second.size());
    for (const auto& [cookie, flow_id] : eit->second) {
      const net::FlowRecord* f = flow_sim_.find(flow_id);
      MAYFLOWER_ASSERT(f != nullptr);
      out.push_back(FlowStatsRecord{cookie, f->bytes_sent(), true});
    }
  }
  if (const auto it = completed_.find(edge_switch); it != completed_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
    completed_.erase(it);
  }
  return out;
}

std::vector<PortStatsRecord> SdnFabric::poll_port_stats(
    net::NodeId switch_node) {
  flow_sim_.sync();
  std::vector<PortStatsRecord> out;
  for (const net::LinkId l : topo_->out_links(switch_node)) {
    out.push_back(PortStatsRecord{l, flow_sim_.link_tx_bytes(l),
                                  topo_->link(l).capacity_bps});
  }
  return out;
}

double SdnFabric::port_bytes(net::LinkId link) {
  flow_sim_.sync();
  return flow_sim_.link_tx_bytes(link);
}

}  // namespace mayflower::sdn
