#include "sdn/view_builder.hpp"

namespace mayflower::sdn {

bool ViewBuilder::stale() const {
  if (!built_) return true;
  if (fabric_->state_epoch() != seen_fabric_epoch_) return true;
  if (monitor_ != nullptr && monitor_->samples() != seen_samples_) {
    return true;
  }
  return false;
}

const net::NetworkView& ViewBuilder::view() {
  if (stale()) {
    const bool monitor_only =
        built_ && fabric_->state_epoch() == seen_fabric_epoch_ &&
        !include_flow_stats_;
    if (monitor_only) {
      // Only the rate monitor moved: capacities and liveness are unchanged
      // (the fabric epoch did not advance), so overlay the fresh tx rates on
      // the cached view instead of rebuilding it — O(monitored links), the
      // monitor-driven analogue of the Flowserver's per-shard reload.
      monitor_->snapshot_into(view_);
      ++monitor_refreshes_;
    } else {
      view_.reset_links(fabric_->topology());
      fabric_->snapshot_liveness_into(view_);
      if (monitor_ != nullptr) monitor_->snapshot_into(view_);
      if (include_flow_stats_) fabric_->snapshot_flow_stats_into(view_);
      ++rebuilds_;
    }
    view_.stamp(++epoch_counter_, fabric_->events().now());
    seen_fabric_epoch_ = fabric_->state_epoch();
    seen_samples_ = monitor_ == nullptr ? 0 : monitor_->samples();
    built_ = true;
  }
  return view_;
}

}  // namespace mayflower::sdn
