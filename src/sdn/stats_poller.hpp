// Periodic task helper: drives the Flowserver's and Sinbad-R's stats
// collection cycles ("periodically fetching from the edge switches the byte
// counters", §3.3.3).
#pragma once

#include <cstdint>
#include <functional>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::sdn {

class StatsPoller {
 public:
  using TickFn = std::function<void()>;

  StatsPoller(sim::EventQueue& events, sim::SimTime interval, TickFn on_tick);
  ~StatsPoller();

  StatsPoller(const StatsPoller&) = delete;
  StatsPoller& operator=(const StatsPoller&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }
  sim::SimTime interval() const { return interval_; }

  // Splits each collection cycle into `n` staggered ticks (fired at
  // interval/n) so a consumer can sweep 1/n of the edge switches per tick —
  // the poll-rotation half of the sharded state plane: every edge is still
  // polled once per interval, but each tick stales only the shards of the
  // edges it actually swept. Must be set while stopped; 1 restores the
  // legacy single-sweep cycle.
  void set_groups(std::uint32_t n);
  std::uint32_t groups() const { return groups_; }

  // Collection cycles fired since construction. Lets consumers (Flowserver
  // telemetry, benches) relate per-poll work — which is O(flows at the
  // polled edges) through the fabric's per-edge index — to cycle count.
  std::uint64_t ticks() const { return ticks_; }

  // Publishes the collection-cycle counter (sdn.poller.ticks) into
  // `registry`. Per-cycle *work* (samples applied) is histogrammed by the
  // consumer, which is what latency means in a deterministic simulation —
  // see DESIGN.md "Observability".
  void set_metrics(obs::MetricsRegistry* registry) {
    ticks_metric_ = registry == nullptr
                        ? obs::Counter{}
                        : registry->counter("sdn.poller.ticks");
  }

 private:
  void arm();

  sim::EventQueue* events_;
  sim::SimTime interval_;
  std::uint32_t groups_ = 1;
  TickFn on_tick_;
  sim::EventId pending_;
  std::uint64_t ticks_ = 0;
  obs::Counter ticks_metric_;
  // Bumped by every start()/stop(); armed events fire only if the epoch
  // still matches, so a stop() from inside a tick callback sticks.
  std::uint64_t epoch_ = 0;
  bool running_ = false;
};

}  // namespace mayflower::sdn
