// Periodic task helper: drives the Flowserver's and Sinbad-R's stats
// collection cycles ("periodically fetching from the edge switches the byte
// counters", §3.3.3).
#pragma once

#include <cstdint>
#include <functional>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::sdn {

class StatsPoller {
 public:
  using TickFn = std::function<void()>;

  StatsPoller(sim::EventQueue& events, sim::SimTime interval, TickFn on_tick);
  ~StatsPoller();

  StatsPoller(const StatsPoller&) = delete;
  StatsPoller& operator=(const StatsPoller&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }
  sim::SimTime interval() const { return interval_; }

  // Splits each collection cycle into `n` staggered ticks (fired at
  // interval/n) so a consumer can sweep 1/n of the edge switches per tick —
  // the poll-rotation half of the sharded state plane: every edge is still
  // polled once per interval, but each tick stales only the shards of the
  // edges it actually swept. Must be set while stopped; 1 restores the
  // legacy single-sweep cycle.
  void set_groups(std::uint32_t n);
  std::uint32_t groups() const { return groups_; }

  // Staggered sub-ticks fired since construction — groups() of them per
  // collection cycle (with groups() == 1 a tick IS a cycle). Use cycles()
  // to compare work per interval across different --poll-groups settings;
  // ticks() counts callback firings.
  std::uint64_t ticks() const { return ticks_; }

  // Completed collection cycles: every edge has been swept exactly
  // cycles() times. Advances once per groups() consecutive ticks, so it is
  // comparable across grouping configurations — ticks() is not (it runs
  // groups() times faster), which is exactly the historical off-by-G bug in
  // work-per-cycle accounting this accessor fixes.
  std::uint64_t cycles() const { return cycles_; }

  // Publishes the sub-tick counter (sdn.poller.ticks) and the cycle counter
  // (sdn.poller.cycles) into `registry`. Per-cycle *work* (samples applied)
  // is histogrammed by the consumer, which is what latency means in a
  // deterministic simulation — see DESIGN.md "Observability".
  void set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
      ticks_metric_ = obs::Counter{};
      cycles_metric_ = obs::Counter{};
      return;
    }
    ticks_metric_ = registry->counter("sdn.poller.ticks");
    cycles_metric_ = registry->counter("sdn.poller.cycles");
  }

 private:
  void arm();

  sim::EventQueue* events_;
  sim::SimTime interval_;
  std::uint32_t groups_ = 1;
  TickFn on_tick_;
  sim::EventId pending_;
  std::uint64_t ticks_ = 0;
  std::uint64_t cycles_ = 0;
  // Sub-ticks into the current cycle; cycles_ advances when this reaches
  // groups_. Reset by set_groups() so a regrouped poller starts a fresh
  // sweep instead of crediting a cycle early.
  std::uint32_t subticks_in_cycle_ = 0;
  obs::Counter ticks_metric_;
  obs::Counter cycles_metric_;
  // Bumped by every start()/stop(); armed events fire only if the epoch
  // still matches, so a stop() from inside a tick callback sticks.
  std::uint64_t epoch_ = 0;
  bool running_ = false;
};

}  // namespace mayflower::sdn
