// The Mayflower nameserver (§3.3.1): file -> chunks and file -> dataservers
// mappings in a persistent KV store (fsync off by default), replica
// placement under fault-domain constraints at create time,
// rebuild-from-dataservers recovery after an unclean restart, and — when
// monitoring is enabled — dataserver liveness probing with failure-driven
// re-replication under the same fault-domain constraints.
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "fs/kv/kvstore.hpp"
#include "fs/rpc/transport.hpp"
#include "net/tree.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::fs {

// Extension hook (§3.3): when set, replica placement is made
// collaboratively — the advisor (in practice the Flowserver) picks the best
// host from each fault-domain-constrained candidate pool for the creating
// writer; when unset, placement is the paper's static random strategy.
using PlacementAdvisorFn = std::function<net::NodeId(
    net::NodeId writer, const std::vector<net::NodeId>& candidates)>;

struct NameserverConfig {
  std::uint64_t chunk_size = 256'000'000;  // paper default: 256 MB blocks
  std::uint32_t default_replication = 3;
  std::filesystem::path kv_dir;  // where the KV store lives
  KvStore::Options kv_options{};
  PlacementAdvisorFn placement_advisor;
};

class Nameserver {
 public:
  Nameserver(Transport& transport, net::NodeId node,
             const net::ThreeTier& tree, NameserverConfig config,
             std::uint64_t seed);
  ~Nameserver();

  Nameserver(const Nameserver&) = delete;
  Nameserver& operator=(const Nameserver&) = delete;

  net::NodeId node() const { return node_; }
  std::size_t file_count() const { return kv_.size(); }

  // Test/inspection access to the mapping (bypasses the RPC path).
  std::optional<FileInfo> lookup(const std::string& name) const;

  // Unclean-restart recovery: discards the (possibly stale) KV contents and
  // rebuilds the mappings by scanning every dataserver (§3.3.1). `done`
  // fires once all scans returned.
  void rebuild_from_dataservers(const std::vector<net::NodeId>& dataservers,
                                std::function<void()> done);

  // --- failure detection + recovery --------------------------------------

  // Starts a fixed-cadence liveness probe (kPing) of `dataservers`. When a
  // cycle's replies are all in, every file still mapped onto a dead server
  // is re-replicated onto a surviving fault domain: the first surviving
  // replica becomes the primary and copies its data to a replacement host on
  // a rack distinct from the survivors' (relaxed only when the tree runs out
  // of racks). Mappings are repaired only after the copy is acknowledged, so
  // a failed copy retries on the next cycle.
  void monitor_dataservers(sim::EventQueue& events,
                           std::vector<net::NodeId> dataservers,
                           sim::SimTime interval);
  void stop_monitoring();

  bool dataserver_alive(net::NodeId ds) const {
    return dead_.find(ds) == dead_.end();
  }

  // Telemetry.
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t rereplications() const { return rereplications_; }
  std::uint64_t lost_files() const { return lost_files_; }

  // Publishes per-method RPC counters (fs.nameserver.rpc.<Method>) plus
  // probe/re-replication totals. Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  void handle(net::NodeId from, Method method, const Bytes& request,
              ResponseFn reply);
  void handle_create(const Bytes& request, ResponseFn reply);
  void handle_delete(const Bytes& request, ResponseFn reply);
  void handle_report_size(const Bytes& request, ResponseFn reply);
  void persist(const FileInfo& info);
  void rebuild_uuid_index();

  void probe_cycle();
  void repair_sweep();
  void rereplicate_file(const FileInfo& info);
  net::NodeId pick_replacement(const std::vector<net::NodeId>& taken);

  Transport* transport_;
  net::NodeId node_;
  const net::ThreeTier* tree_;
  NameserverConfig config_;
  Rng rng_;
  KvStore kv_;
  std::unordered_map<Uuid, std::string, UuidHash> uuid_to_name_;

  // Monitoring state (inert until monitor_dataservers()).
  sim::EventQueue* monitor_events_ = nullptr;
  std::vector<net::NodeId> monitored_;
  sim::SimTime probe_interval_;
  sim::EventId probe_event_;
  std::set<net::NodeId> dead_;  // ordered: deterministic iteration
  // Files with a re-replication copy in flight (sweeps skip them).
  std::unordered_set<Uuid, UuidHash> rerepl_inflight_;
  // Files already counted lost (every replica dead) — avoids re-counting on
  // every sweep; cleared if a replica host comes back.
  std::unordered_set<Uuid, UuidHash> lost_seen_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t rereplications_ = 0;
  std::uint64_t lost_files_ = 0;

  // Observability (no-ops until set_obs()).
  obs::MetricsRegistry* metrics_ = nullptr;  // per-method RPC counters
  obs::Counter probes_metric_;
  obs::Counter rereplications_metric_;
};

}  // namespace mayflower::fs
