// The Mayflower nameserver (§3.3.1): file -> chunks and file -> dataservers
// mappings in a persistent KV store (fsync off by default), replica
// placement under fault-domain constraints at create time, and
// rebuild-from-dataservers recovery after an unclean restart.
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/rng.hpp"
#include "fs/kv/kvstore.hpp"
#include "fs/rpc/transport.hpp"
#include "net/tree.hpp"

namespace mayflower::fs {

// Extension hook (§3.3): when set, replica placement is made
// collaboratively — the advisor (in practice the Flowserver) picks the best
// host from each fault-domain-constrained candidate pool for the creating
// writer; when unset, placement is the paper's static random strategy.
using PlacementAdvisorFn = std::function<net::NodeId(
    net::NodeId writer, const std::vector<net::NodeId>& candidates)>;

struct NameserverConfig {
  std::uint64_t chunk_size = 256'000'000;  // paper default: 256 MB blocks
  std::uint32_t default_replication = 3;
  std::filesystem::path kv_dir;  // where the KV store lives
  KvStore::Options kv_options{};
  PlacementAdvisorFn placement_advisor;
};

class Nameserver {
 public:
  Nameserver(Transport& transport, net::NodeId node,
             const net::ThreeTier& tree, NameserverConfig config,
             std::uint64_t seed);
  ~Nameserver();

  Nameserver(const Nameserver&) = delete;
  Nameserver& operator=(const Nameserver&) = delete;

  net::NodeId node() const { return node_; }
  std::size_t file_count() const { return kv_.size(); }

  // Test/inspection access to the mapping (bypasses the RPC path).
  std::optional<FileInfo> lookup(const std::string& name) const;

  // Unclean-restart recovery: discards the (possibly stale) KV contents and
  // rebuilds the mappings by scanning every dataserver (§3.3.1). `done`
  // fires once all scans returned.
  void rebuild_from_dataservers(const std::vector<net::NodeId>& dataservers,
                                std::function<void()> done);

 private:
  void handle(net::NodeId from, Method method, const Bytes& request,
              ResponseFn reply);
  void handle_create(const Bytes& request, ResponseFn reply);
  void handle_delete(const Bytes& request, ResponseFn reply);
  void handle_report_size(const Bytes& request, ResponseFn reply);
  void persist(const FileInfo& info);
  void rebuild_uuid_index();

  Transport* transport_;
  net::NodeId node_;
  const net::ThreeTier* tree_;
  NameserverConfig config_;
  Rng rng_;
  KvStore kv_;
  std::unordered_map<Uuid, std::string, UuidHash> uuid_to_name_;
};

}  // namespace mayflower::fs
