// The Mayflower nameserver (§3.3.1): file -> chunks and file -> dataservers
// mappings in a persistent KV store (fsync off by default), replica
// placement under fault-domain constraints at create time,
// rebuild-from-dataservers recovery after an unclean restart, and — when
// monitoring is enabled — dataserver liveness probing with failure-driven
// re-replication under the same fault-domain constraints.
//
// Under the sharded metadata plane (src/fs/meta/) the same class serves as
// one shard: the namespace logic lives in meta/shared.hpp, a shard map makes
// the server reject paths it does not own (kWrongShard), a modeled per-RPC
// service time serializes its work so throughput scales with the shard
// count, and the AsyncFS-style create path answers with a provisional handle
// while replica provisioning commits in the background.
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "fs/kv/kvstore.hpp"
#include "fs/meta/async_commit.hpp"
#include "fs/meta/shard_map.hpp"
#include "fs/meta/shared.hpp"
#include "fs/rpc/transport.hpp"
#include "net/tree.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::fs {

struct NameserverConfig {
  std::uint64_t chunk_size = 256'000'000;  // paper default: 256 MB blocks
  std::uint32_t default_replication = 3;
  std::filesystem::path kv_dir;  // where the KV store lives
  KvStore::Options kv_options{};
  PlacementAdvisorFn placement_advisor;

  // --- metadata-plane extensions ----------------------------------------
  // Event queue for deferred work. Required when op_service_time is set or
  // async commits are enabled; unused otherwise.
  sim::EventQueue* events = nullptr;
  // Modeled CPU cost per metadata RPC: when non-zero, requests are serviced
  // one at a time FIFO, each occupying the server for this long before its
  // handler runs. This is what makes a single server a throughput wall and
  // sharding a win; zero (default) keeps the legacy immediate dispatch.
  sim::SimTime op_service_time{};
  // AsyncFS-style background commit of create-time replica provisioning.
  meta::AsyncCommitConfig async{};
  // Prefix for this server's metric names ("fs.nameserver" for the classic
  // single server; the plane scopes each shard as "meta.shard.<i>").
  std::string metric_scope = "fs.nameserver";
};

class Nameserver {
 public:
  Nameserver(Transport& transport, net::NodeId node,
             const net::ThreeTier& tree, NameserverConfig config,
             std::uint64_t seed);
  ~Nameserver();

  Nameserver(const Nameserver&) = delete;
  Nameserver& operator=(const Nameserver&) = delete;

  net::NodeId node() const { return node_; }
  std::size_t file_count() const { return kv_.size(); }

  // Test/inspection access to the mapping (bypasses the RPC path).
  std::optional<FileInfo> lookup(const std::string& name) const;

  // Sharded operation: when set, path-keyed RPCs for paths whose shard this
  // node does not own are refused with kWrongShard. The map is owned by the
  // MetaPlane and shared by every shard, so a failover reassignment is
  // visible here immediately. Null (default) owns the whole namespace.
  void set_shard_map(const meta::ShardMap* map) { shard_map_ = map; }
  bool owns_path(const std::string& name) const {
    return shard_map_ == nullptr || shard_map_->owner_of_path(name) == node_;
  }

  // Fault injection for shard-failover tests: detach() makes the server
  // unreachable (in-flight queued requests answer kUnavailable); attach()
  // brings it back with its KV state intact.
  void detach();
  void attach();
  bool attached() const { return attached_; }

  // Unclean-restart recovery: discards the (possibly stale) KV contents and
  // rebuilds the mappings by scanning every dataserver (§3.3.1). `done`
  // fires once all scans returned.
  void rebuild_from_dataservers(const std::vector<net::NodeId>& dataservers,
                                std::function<void()> done);

  // Shard-failover recovery: non-destructive variant of the rebuild. Scans
  // every dataserver and persists only the files `filter` accepts (the
  // shard ranges this server just adopted), keeping the largest observed
  // size per file and never clobbering an existing newer record.
  void adopt_from_dataservers(std::function<bool(const std::string&)> filter,
                              const std::vector<net::NodeId>& dataservers,
                              std::function<void()> done);

  // --- failure detection + recovery --------------------------------------

  // Starts a fixed-cadence liveness probe (kPing) of `dataservers`. When a
  // cycle's replies are all in, every file still mapped onto a dead server
  // is re-replicated onto a surviving fault domain: the first surviving
  // replica becomes the primary and copies its data to a replacement host on
  // a rack distinct from the survivors' (relaxed only when the tree runs out
  // of racks). Mappings are repaired only after the copy is acknowledged, so
  // a failed copy retries on the next cycle.
  void monitor_dataservers(sim::EventQueue& events,
                           std::vector<net::NodeId> dataservers,
                           sim::SimTime interval);
  void stop_monitoring();

  bool dataserver_alive(net::NodeId ds) const {
    return dead_.find(ds) == dead_.end();
  }

  // Telemetry.
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t rereplications() const { return rereplications_; }
  std::uint64_t lost_files() const { return lost_files_; }
  std::uint64_t ops_served() const { return ops_served_; }
  std::uint64_t wrong_shard_refusals() const { return wrong_shard_refusals_; }
  std::uint64_t adopted_files() const { return adopted_files_; }
  const meta::AsyncCommitter* async_committer() const {
    return committer_.get();
  }

  // Publishes per-method RPC counters (<scope>.rpc.<Method>), the served-op
  // total (<scope>.ops) plus probe/re-replication totals and — when async
  // commits are enabled — the meta.async.* family. Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  void bind_handler();
  void handle(net::NodeId from, Method method, const Bytes& request,
              ResponseFn reply);
  void dispatch(Method method, const Bytes& request, ResponseFn reply);
  void handle_create(const Bytes& request, ResponseFn reply);
  void handle_delete(const Bytes& request, ResponseFn reply);
  void handle_report_size(const Bytes& request, ResponseFn reply);
  // Sends kCreateReplica to every replica of `info`; done(true) once all
  // ack. Shared by the synchronous and asynchronous create paths.
  void provision_replicas(const FileInfo& info,
                          std::function<void(bool)> done);
  void persist(const FileInfo& info);
  void rebuild_uuid_index();

  void probe_cycle();
  void repair_sweep();
  void rereplicate_file(const FileInfo& info);
  net::NodeId pick_replacement(const std::vector<net::NodeId>& taken);

  Transport* transport_;
  net::NodeId node_;
  const net::ThreeTier* tree_;
  NameserverConfig config_;
  Rng rng_;
  KvStore kv_;
  std::unordered_map<Uuid, std::string, UuidHash> uuid_to_name_;

  // Sharded-plane state (inert for the classic single server).
  const meta::ShardMap* shard_map_ = nullptr;
  bool attached_ = true;
  sim::SimTime busy_until_{};  // service-time queue: when the CPU frees up
  std::unique_ptr<meta::AsyncCommitter> committer_;
  // Guards service-queue events scheduled on config_.events against firing
  // after this server is destroyed.
  std::shared_ptr<bool> alive_;

  // Monitoring state (inert until monitor_dataservers()).
  sim::EventQueue* monitor_events_ = nullptr;
  std::vector<net::NodeId> monitored_;
  sim::SimTime probe_interval_;
  sim::EventId probe_event_;
  std::set<net::NodeId> dead_;  // ordered: deterministic iteration
  // Files with a re-replication copy in flight (sweeps skip them).
  std::unordered_set<Uuid, UuidHash> rerepl_inflight_;
  // Files already counted lost (every replica dead) — avoids re-counting on
  // every sweep; cleared if a replica host comes back.
  std::unordered_set<Uuid, UuidHash> lost_seen_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t rereplications_ = 0;
  std::uint64_t lost_files_ = 0;
  std::uint64_t ops_served_ = 0;
  std::uint64_t wrong_shard_refusals_ = 0;
  std::uint64_t adopted_files_ = 0;

  // Observability (no-ops until set_obs()).
  obs::MetricsRegistry* metrics_ = nullptr;  // per-method RPC counters
  obs::Counter ops_metric_;
  obs::Counter probes_metric_;
  obs::Counter rereplications_metric_;
};

}  // namespace mayflower::fs
