#include "fs/cluster.hpp"

#include <unistd.h>

#include <atomic>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace mayflower::fs {
namespace {

// Unique scratch directories for KV stores across concurrently running
// processes/tests.
std::filesystem::path make_scratch_dir(std::uint64_t seed) {
  static std::atomic<std::uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   strfmt("mayflower-cluster-%d-%llu-%llu",
                          static_cast<int>(::getpid()),
                          static_cast<unsigned long long>(seed),
                          static_cast<unsigned long long>(counter++));
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

const char* to_string(FsScheme scheme) {
  switch (scheme) {
    case FsScheme::kMayflower: return "mayflower";
    case FsScheme::kHdfsMayflower: return "hdfs-mayflower";
    case FsScheme::kHdfsEcmp: return "hdfs-ecmp";
    case FsScheme::kNearestEcmp: return "nearest-ecmp";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      tree_(net::build_three_tier(config_.fabric)),
      policy_rng_(splitmix64(config_.seed ^ 0xf51deULL)) {
  // Dedicated metadata/controller nodes: they answer control RPCs only and
  // move no bulk data, so they hang off the topology without data links.
  nameserver_node_ =
      tree_.topo.add_node(net::NodeKind::kHost, "nameserver");
  controller_node_ =
      tree_.topo.add_node(net::NodeKind::kHost, "controller");

  fabric_ = std::make_unique<sdn::SdnFabric>(events_, tree_.topo);
  fabric_->set_obs(config_.obs);
  config_.flowserver.obs = config_.obs;
  transport_ = std::make_unique<SimTransport>(events_, config_.rpc_latency);

  scratch_dir_ = make_scratch_dir(config_.seed);
  if (config_.nameserver.kv_dir.empty()) {
    config_.nameserver.kv_dir = scratch_dir_ / "nameserver-kv";
  }

  // Scheme wiring mirrors the harness (§6.7 prototype comparison).
  const bool wants_flowserver = config_.scheme == FsScheme::kMayflower ||
                                config_.scheme == FsScheme::kHdfsMayflower;
  if (wants_flowserver) {
    flow_server_ =
        std::make_unique<flowserver::Flowserver>(*fabric_, config_.flowserver);
    flow_server_->start();
  }
  const bool rpc_flowserver =
      wants_flowserver && config_.flowserver_over_rpc;
  if (rpc_flowserver) {
    flowserver_service_ = std::make_unique<FlowserverService>(
        *transport_, controller_node_, *flow_server_);
    rpc_planner_ =
        std::make_unique<RpcPlanner>(*transport_, controller_node_);
  }
  switch (config_.scheme) {
    case FsScheme::kMayflower:
      if (rpc_flowserver) {
        // A second RpcPlanner instance, so rpc_planner_ stays available as
        // the clients' write-chain planner (both talk to the same service).
        planner_ =
            std::make_unique<RpcPlanner>(*transport_, controller_node_);
      } else {
        scheme_ = std::make_unique<policy::MayflowerScheme>(*flow_server_);
        planner_ = std::make_unique<LocalSchemePlanner>(*scheme_);
      }
      break;
    case FsScheme::kHdfsMayflower:
      replica_policy_ = std::make_unique<policy::HdfsRackAwareReplica>(
          tree_.topo, policy_rng_);
      if (rpc_flowserver) {
        planner_ = std::make_unique<ReplicaFilteredPlanner>(
            *replica_policy_, *rpc_planner_, *fabric_);
      } else {
        scheme_ = std::make_unique<policy::ReplicaPlusMayflowerPath>(
            *replica_policy_, *flow_server_, "hdfs-mayflower");
        planner_ = std::make_unique<LocalSchemePlanner>(*scheme_);
      }
      break;
    case FsScheme::kHdfsEcmp:
      replica_policy_ = std::make_unique<policy::HdfsRackAwareReplica>(
          tree_.topo, policy_rng_);
      scheme_ = std::make_unique<policy::ReplicaPlusEcmp>(
          *replica_policy_, *fabric_, "hdfs-ecmp", config_.seed);
      planner_ = std::make_unique<LocalSchemePlanner>(*scheme_);
      break;
    case FsScheme::kNearestEcmp:
      replica_policy_ =
          std::make_unique<policy::NearestReplica>(tree_.topo, policy_rng_);
      scheme_ = std::make_unique<policy::ReplicaPlusEcmp>(
          *replica_policy_, *fabric_, "nearest-ecmp", config_.seed);
      planner_ = std::make_unique<LocalSchemePlanner>(*scheme_);
      break;
  }

  // Write-path co-design wiring. Measured placement swaps the Flowserver's
  // write-target ranking for residual-headroom ranking; model keeps the
  // ranker null (the historical believed-share ranking, byte-identical);
  // static disables the create-time advisor outright.
  if (config_.write_placement == policy::WritePlacementKind::kMeasured &&
      flow_server_) {
    measured_paths_ = std::make_unique<net::PathCache>(tree_.topo);
    // Residual headroom needs real per-link rates: monitor every fabric
    // link's port counters (the believed-flow table alone is blind to
    // traffic the Flowserver never planned).
    std::vector<net::LinkId> all_links(tree_.topo.link_count());
    for (net::LinkId l = 0; l < all_links.size(); ++l) all_links[l] = l;
    link_rates_ = std::make_unique<sdn::LinkRateMonitor>(
        *fabric_, std::move(all_links), config_.flowserver.poll_interval);
    flow_server_->set_rate_monitor(link_rates_.get());
    measured_placement_ =
        std::make_unique<policy::MeasuredWritePlacement>(*measured_paths_);
    flow_server_->set_write_ranker(
        [this](net::NodeId writer, const std::vector<net::NodeId>& pool,
               const net::NetworkView& v) {
          return measured_placement_->rank(writer, pool, v);
        });
  }
  if (config_.collaborative_placement && flow_server_ &&
      config_.write_placement != policy::WritePlacementKind::kStatic) {
    config_.nameserver.placement_advisor =
        [this](net::NodeId writer, const std::vector<net::NodeId>& pool) {
          return flow_server_->best_write_target(writer, pool);
        };
  }
  if (config_.write_pipeline && flow_server_) {
    if (rpc_planner_) {
      write_planner_ = rpc_planner_.get();
    } else {
      local_write_planner_ =
          std::make_unique<LocalWritePlanner>(*flow_server_);
      write_planner_ = local_write_planner_.get();
    }
  }
  config_.nameserver.events = &events_;
  if (config_.meta_shards > 0) {
    // Sharded metadata plane: the "nameserver" node becomes the shard-map
    // coordinator, and each shard server hangs off the topology like it —
    // spread round-robin across pods so a pod loss never takes the whole
    // plane (fault-domain placement).
    meta::MetaPlaneConfig mp;
    mp.partition = config_.meta_partition;
    mp.shard_base = config_.nameserver;
    mp.shard_base.op_service_time = config_.meta_service_time;
    mp.shard_base.async.enabled = config_.meta_async;
    mp.dataservers = tree_.hosts;
    for (std::size_t i = 0; i < config_.meta_shards; ++i) {
      const int pod = static_cast<int>(i % config_.fabric.pods);
      meta_shard_nodes_.push_back(tree_.topo.add_node(
          net::NodeKind::kHost, strfmt("metashard%zu", i), pod));
      mp.domains.push_back(pod);
    }
    meta_plane_ = std::make_unique<meta::MetaPlane>(
        *transport_, events_, tree_, nameserver_node_, meta_shard_nodes_,
        std::move(mp), splitmix64(config_.seed ^ 0x9a3e5));
    meta_plane_->set_obs(config_.obs);
  } else {
    config_.nameserver.async.enabled = config_.meta_async;
    config_.nameserver.op_service_time = config_.meta_service_time;
    nameserver_ = std::make_unique<Nameserver>(
        *transport_, nameserver_node_, tree_, config_.nameserver,
        splitmix64(config_.seed ^ 0x9a3e5));
    nameserver_->set_obs(config_.obs);
  }

  dataservers_.reserve(tree_.hosts.size());
  for (std::size_t i = 0; i < tree_.hosts.size(); ++i) {
    DataserverConfig ds = config_.dataserver;
    ds.nameserver = nameserver_node_;
    if (meta_plane_) {
      // Route size reports to the shard owning the file's path.
      ds.nameserver_resolver = [this](const std::string& name) {
        return meta_plane_->owner_node_of(name);
      };
    }
    if (config_.co_designed_writes) ds.write_scheduler = flow_server_.get();
    if (!ds.disk_root.empty()) {
      ds.disk_root = ds.disk_root / strfmt("ds%zu", i);
    }
    dataservers_.push_back(std::make_unique<Dataserver>(
        *transport_, *fabric_, tree_.hosts[i], ds,
        splitmix64(config_.seed ^ (0xd5 + i))));
    dataservers_.back()->set_obs(config_.obs);
  }

  if (config_.heartbeat_interval > sim::SimTime{}) {
    if (meta_plane_) {
      for (std::size_t i = 0; i < meta_plane_->server_count(); ++i) {
        meta_plane_->shard_server(i).monitor_dataservers(
            events_, tree_.hosts, config_.heartbeat_interval);
      }
      meta_plane_->start_monitoring(config_.heartbeat_interval);
    } else {
      nameserver_->monitor_dataservers(events_, tree_.hosts,
                                       config_.heartbeat_interval);
    }
  }
}

Cluster::~Cluster() {
  if (flow_server_) flow_server_->stop();
  // Servers unbind before the transport dies (member order guarantees the
  // reverse-destruction invariants; this is belt-and-braces for clarity).
  clients_.clear();
  routers_.clear();
  dataservers_.clear();
  nameserver_.reset();
  meta_plane_.reset();
  std::error_code ec;
  std::filesystem::remove_all(scratch_dir_, ec);
}

Dataserver& Cluster::dataserver_at(net::NodeId host) {
  for (const auto& ds : dataservers_) {
    if (ds->node() == host) return *ds;
  }
  MAYFLOWER_ASSERT_MSG(false, "no dataserver on that host");
  __builtin_unreachable();
}

fault::FaultInjector& Cluster::fault_injector() {
  if (!fault_injector_) {
    fault_injector_ = std::make_unique<fault::FaultInjector>(*fabric_, tree_);
    fault_injector_->set_metrics(
        config_.obs == nullptr ? nullptr : &config_.obs->metrics);
    fault_injector_->set_hooks(fault::FaultHooks{
        [this](net::NodeId host) { dataserver_at(host).detach(); },
        [this](net::NodeId host) {
          Dataserver& ds = dataserver_at(host);
          ds.restart();  // volatile state is gone; reload from disk
          ds.attach();
        }});
  }
  return *fault_injector_;
}

Client& Cluster::client_at(net::NodeId host) {
  for (const auto& c : clients_) {
    if (c->node() == host) return *c;
  }
  ClientConfig client_config = config_.client;
  if (config_.co_designed_writes && flow_server_ != nullptr) {
    client_config.co_designed_writes = true;
  }
  if (write_planner_ != nullptr) client_config.write_pipeline = true;
  clients_.push_back(std::make_unique<Client>(*transport_, *fabric_,
                                              *planner_, host,
                                              nameserver_node_,
                                              client_config));
  clients_.back()->set_obs(config_.obs);
  if (write_planner_ != nullptr) {
    clients_.back()->set_write_planner(write_planner_);
  }
  if (meta_plane_) {
    meta::MetaRouterConfig router_config;
    router_config.coordinator = nameserver_node_;  // the plane coordinator
    routers_.push_back(std::make_unique<meta::MetaRouter>(
        *transport_, events_, host, router_config));
    routers_.back()->set_obs(config_.obs);
    clients_.back()->set_meta_router(routers_.back().get());
  }
  return *clients_.back();
}

}  // namespace mayflower::fs
