// The Mayflower dataserver (§3.3.2): stores file chunks, serves reads, and —
// when it is a file's primary — orders append requests, applying them
// locally while relaying to the other replica hosts. Appends to one file are
// serviced one at a time; reads proceed concurrently (the last-chunk
// restriction is enforced client-side by the consistency mode).
//
// On-disk layout (when a disk root is configured), mirroring §3.3.2: one
// directory per file named by its UUID, a `meta` file with name/size, and
// numbered chunk files `1`, `2`, ... each holding the encoded extents of
// that chunk. In-memory mode keeps the same structures without the I/O.
#pragma once

#include <deque>
#include <filesystem>
#include <unordered_map>

#include "flowserver/flowserver.hpp"
#include "fs/rpc/transport.hpp"
#include "net/ecmp.hpp"
#include "obs/observability.hpp"
#include "sdn/fabric.hpp"

namespace mayflower::fs {

struct DataserverConfig {
  std::filesystem::path disk_root;  // empty => in-memory only
  // When set, the primary reports new file sizes here (fire-and-forget)
  // after each append, keeping nameserver lookups fresh.
  net::NodeId nameserver = net::kInvalidNode;
  // Sharded metadata plane: when set, size reports are routed per file name
  // to the nameserver shard owning the path (overrides `nameserver`).
  std::function<net::NodeId(const std::string& name)> nameserver_resolver;
  // Extension: when set, append relay flows are routed by the Flowserver
  // (cost-based path selection) instead of ECMP — the write-path co-design
  // the paper leaves as future work.
  flowserver::Flowserver* write_scheduler = nullptr;
};

class Dataserver {
 public:
  Dataserver(Transport& transport, sdn::SdnFabric& fabric, net::NodeId node,
             DataserverConfig config, std::uint64_t seed);
  ~Dataserver();

  Dataserver(const Dataserver&) = delete;
  Dataserver& operator=(const Dataserver&) = delete;

  net::NodeId node() const { return node_; }
  std::size_t file_count() const { return files_.size(); }

  // Inspection for tests.
  const ExtentList* file_data(const Uuid& uuid) const;
  std::uint64_t file_size(const Uuid& uuid) const;

  // Simulates a crash + restart: drops all volatile state and reloads from
  // disk (no-op reload when running in-memory — everything is lost, as a
  // real memory-only server would).
  void restart();

  // Fault injection: detach() makes the server unreachable (RPCs to it fail
  // with kUnavailable) without losing state; attach() brings it back.
  void detach();
  void attach();
  bool attached() const { return attached_; }

  // Telemetry.
  std::uint64_t appends_served() const { return appends_served_; }
  std::uint64_t reads_served() const { return reads_served_; }
  // Relays that never reached their secondary (stillborn — no route — or
  // killed mid-flight) and were settled as degraded instead of acked.
  std::uint64_t relay_failures() const { return relay_failures_; }
  // Appends relayed over a client-carried planned chain (vs legacy fan-out).
  std::uint64_t chain_appends() const { return chain_appends_; }

  // Publishes fs.ds.relay_failed / fs.ds.chain_appends. Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  struct PendingAppend {
    ExtentList data;
    // Flowserver-planned relay hops carried by the client (empty: fan-out).
    std::vector<WireAssignment> chain;
    ResponseFn reply;
  };

  // Shared orchestration state of one pipelined relay chain: hop j ships the
  // bytes secondaries[j-1] -> secondaries[j] (hop 0 leaves this primary).
  // All hop flows run concurrently (cut-through); relay RPC j is sent once
  // hop j's flow completed AND relay j-1 was acked, so a failure at hop k
  // degrades exactly the suffix k..end to the settled-relay contract.
  struct ChainRelay {
    Uuid uuid;
    std::uint64_t offset = 0;
    std::shared_ptr<const Bytes> wire;      // encoded AppendRelayReq, shared
    std::vector<WireAssignment> hops;       // validated prefix of the plan
    std::vector<net::NodeId> targets;       // targets[j] receives relay j
    std::vector<bool> flow_done;
    std::vector<bool> rpc_sent;
    // 0 = pending, 1 = acked, 2 = settled-degraded.
    std::vector<std::uint8_t> state;
    std::size_t settled = 0;
    std::size_t total = 0;  // all secondaries, including uncovered tail
    std::function<void()> finish;
  };

  struct Stored {
    FileInfo info;
    ExtentList data;
    bool append_in_progress = false;
    std::deque<PendingAppend> queue;
  };

  void handle(net::NodeId from, Method method, const Bytes& request,
              ResponseFn reply);
  void handle_append(const Bytes& request, ResponseFn reply);
  void handle_append_relay(const Bytes& request, ResponseFn reply);
  void handle_read(const Bytes& request, ResponseFn reply);
  void handle_replicate_to(const Bytes& request, ResponseFn reply);
  void pump_appends(Stored& file);
  void apply_append(Stored& file, std::uint64_t offset, const ExtentList& data);
  // Legacy relay: one independent flow + RPC per secondary, every flow
  // leaving this primary's uplink.
  void relay_fanout(const Uuid& uuid, std::shared_ptr<const Bytes> wire,
                    double bytes,
                    const std::vector<net::NodeId>& secondaries,
                    std::function<void()> finish);
  // Planned pipelined relay over the client-carried chain.
  void relay_pipelined(const Uuid& uuid, std::uint64_t offset,
                       std::shared_ptr<const Bytes> wire,
                       std::vector<WireAssignment> hops,
                       const std::vector<net::NodeId>& secondaries,
                       std::function<void()> finish);
  // Sends the next eligible relay RPC of the chain, if any.
  void chain_advance(const std::shared_ptr<ChainRelay>& st);
  // Settles hops [k, hops.size()) of the chain as degraded.
  void chain_fail_from(const std::shared_ptr<ChainRelay>& st, std::size_t k);
  void chain_settle(const std::shared_ptr<ChainRelay>& st, std::size_t j,
                    bool ok);
  // One relay gave up before reaching its secondary: count it, log it.
  void count_relay_failure(const Uuid& uuid, net::NodeId secondary);

  // Persistence helpers (no-ops in memory mode).
  void persist_meta(const Stored& file);
  void persist_chunks(const Stored& file, std::uint64_t offset,
                      std::uint64_t length);
  void remove_dir(const Uuid& uuid);
  void load_from_disk();
  std::filesystem::path dir_of(const Uuid& uuid) const;

  Transport* transport_;
  sdn::SdnFabric* fabric_;
  net::NodeId node_;
  DataserverConfig config_;
  net::PathCache paths_;
  net::EcmpHasher ecmp_;
  std::unordered_map<Uuid, Stored, UuidHash> files_;
  bool attached_ = true;
  std::uint64_t appends_served_ = 0;
  std::uint64_t reads_served_ = 0;
  std::uint64_t relay_failures_ = 0;
  std::uint64_t chain_appends_ = 0;

  // Observability (no-ops until set_obs()).
  obs::Counter relay_failed_metric_;
  obs::Counter chain_appends_metric_;
};

}  // namespace mayflower::fs
