// The Mayflower dataserver (§3.3.2): stores file chunks, serves reads, and —
// when it is a file's primary — orders append requests, applying them
// locally while relaying to the other replica hosts. Appends to one file are
// serviced one at a time; reads proceed concurrently (the last-chunk
// restriction is enforced client-side by the consistency mode).
//
// On-disk layout (when a disk root is configured), mirroring §3.3.2: one
// directory per file named by its UUID, a `meta` file with name/size, and
// numbered chunk files `1`, `2`, ... each holding the encoded extents of
// that chunk. In-memory mode keeps the same structures without the I/O.
#pragma once

#include <deque>
#include <filesystem>
#include <unordered_map>

#include "flowserver/flowserver.hpp"
#include "fs/rpc/transport.hpp"
#include "net/ecmp.hpp"
#include "sdn/fabric.hpp"

namespace mayflower::fs {

struct DataserverConfig {
  std::filesystem::path disk_root;  // empty => in-memory only
  // When set, the primary reports new file sizes here (fire-and-forget)
  // after each append, keeping nameserver lookups fresh.
  net::NodeId nameserver = net::kInvalidNode;
  // Sharded metadata plane: when set, size reports are routed per file name
  // to the nameserver shard owning the path (overrides `nameserver`).
  std::function<net::NodeId(const std::string& name)> nameserver_resolver;
  // Extension: when set, append relay flows are routed by the Flowserver
  // (cost-based path selection) instead of ECMP — the write-path co-design
  // the paper leaves as future work.
  flowserver::Flowserver* write_scheduler = nullptr;
};

class Dataserver {
 public:
  Dataserver(Transport& transport, sdn::SdnFabric& fabric, net::NodeId node,
             DataserverConfig config, std::uint64_t seed);
  ~Dataserver();

  Dataserver(const Dataserver&) = delete;
  Dataserver& operator=(const Dataserver&) = delete;

  net::NodeId node() const { return node_; }
  std::size_t file_count() const { return files_.size(); }

  // Inspection for tests.
  const ExtentList* file_data(const Uuid& uuid) const;
  std::uint64_t file_size(const Uuid& uuid) const;

  // Simulates a crash + restart: drops all volatile state and reloads from
  // disk (no-op reload when running in-memory — everything is lost, as a
  // real memory-only server would).
  void restart();

  // Fault injection: detach() makes the server unreachable (RPCs to it fail
  // with kUnavailable) without losing state; attach() brings it back.
  void detach();
  void attach();
  bool attached() const { return attached_; }

  // Telemetry.
  std::uint64_t appends_served() const { return appends_served_; }
  std::uint64_t reads_served() const { return reads_served_; }

 private:
  struct PendingAppend {
    ExtentList data;
    ResponseFn reply;
  };

  struct Stored {
    FileInfo info;
    ExtentList data;
    bool append_in_progress = false;
    std::deque<PendingAppend> queue;
  };

  void handle(net::NodeId from, Method method, const Bytes& request,
              ResponseFn reply);
  void handle_append(const Bytes& request, ResponseFn reply);
  void handle_append_relay(const Bytes& request, ResponseFn reply);
  void handle_read(const Bytes& request, ResponseFn reply);
  void handle_replicate_to(const Bytes& request, ResponseFn reply);
  void pump_appends(Stored& file);
  void apply_append(Stored& file, std::uint64_t offset, const ExtentList& data);

  // Persistence helpers (no-ops in memory mode).
  void persist_meta(const Stored& file);
  void persist_chunks(const Stored& file, std::uint64_t offset,
                      std::uint64_t length);
  void remove_dir(const Uuid& uuid);
  void load_from_disk();
  std::filesystem::path dir_of(const Uuid& uuid) const;

  Transport* transport_;
  sdn::SdnFabric* fabric_;
  net::NodeId node_;
  DataserverConfig config_;
  net::PathCache paths_;
  net::EcmpHasher ecmp_;
  std::unordered_map<Uuid, Stored, UuidHash> files_;
  bool attached_ = true;
  std::uint64_t appends_served_ = 0;
  std::uint64_t reads_served_ = 0;
};

}  // namespace mayflower::fs
