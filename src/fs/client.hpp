// The Mayflower client library (§3.3, §5): an HDFS-like interface
// (create / append / read / delete) with client-side metadata caching and
// Flowserver-assisted replica selection on reads.
//
// Read anatomy (Figure 1): lookup replica locations (cached when possible)
// -> ask the read scheme (Flowserver for Mayflower; Nearest/Sinbad-R/HDFS +
// ECMP for baselines) for replica+path assignments -> ReadFile RPC to each
// chosen dataserver -> bulk bytes arrive as fabric flows -> reassemble.
//
// Consistency (§3.4): sequential mode reads any replica. Strong mode routes
// the portion overlapping the (possibly still growing) last chunk to the
// file's primary; all earlier chunks are immutable and read anywhere.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "fs/meta/router.hpp"
#include "fs/planner.hpp"
#include "fs/rpc/transport.hpp"
#include "obs/observability.hpp"

namespace mayflower::fs {

enum class Consistency { kSequential, kStrong };

struct ClientConfig {
  Consistency consistency = Consistency::kSequential;
  // File-to-dataservers mappings expire after this long (§3.3: "cache
  // expiry times that depend on the mean time between replica migration and
  // node failure").
  sim::SimTime meta_cache_ttl = sim::SimTime::from_seconds(60.0);
  std::uint32_t replication = 3;
  // Extension: route append uploads through the read scheme's path
  // selection (Flowserver for Mayflower clusters) instead of ECMP.
  bool co_designed_writes = false;
  // Extension: plan the WHOLE replication chain with the Flowserver
  // (kPlanWrite) as one jointly-scheduled unit and carry the relay hops in
  // the append RPC, so the primary pipelines the relay instead of fanning
  // out. Requires a write planner (set_write_planner); degrades to the
  // unplanned upload path when the chain is unroutable.
  bool write_pipeline = false;
  // Read fault tolerance: a subrange whose transfer fails (killed flow, no
  // reachable replica) is retried against the surviving replicas after a
  // capped-exponential backoff, at most this many attempts in total.
  std::uint32_t max_read_attempts = 4;
  sim::SimTime read_retry_backoff = sim::SimTime::from_millis(20.0);
};

struct ReadResult {
  ExtentList data;
  std::uint64_t file_size = 0;  // size observed at the serving replica
};

class Client {
 public:
  using CreateFn = std::function<void(Status, const FileInfo&)>;
  using AppendFn = std::function<void(Status, const AppendResp&)>;
  using ReadFn = std::function<void(Status, ReadResult)>;
  using SimpleFn = std::function<void(Status)>;

  Client(Transport& transport, sdn::SdnFabric& fabric, ReadPlanner& planner,
         net::NodeId node, net::NodeId nameserver, ClientConfig config);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  net::NodeId node() const { return node_; }

  using StatFn = std::function<void(Status, const FileInfo&)>;
  using ListFn = std::function<void(Status, std::vector<std::string>)>;

  void create(const std::string& name, CreateFn done);
  void remove(const std::string& name, SimpleFn done);
  // File metadata as the nameserver sees it (size may trail recent appends;
  // reads piggyback the authoritative size). Served from cache when fresh.
  void stat(const std::string& name, StatFn done);
  // All file names known to the nameserver.
  void list(ListFn done);
  void append(const std::string& name, ExtentList data, AppendFn done);
  void read(const std::string& name, std::uint64_t offset,
            std::uint64_t length, ReadFn done);
  // Reads the entire file (at its size as of the lookup).
  void read_file(const std::string& name, ReadFn done);

  // Drops any cached mapping for `name` and bumps its invalidation
  // generation, so an already in-flight lookup response cannot repopulate
  // the cache with the pre-invalidation replica set (a deleted-then-
  // recreated path would otherwise serve stale replicas until the TTL).
  void invalidate_cache(const std::string& name) {
    cache_.erase(name);
    ++cache_gen_[name];
  }

  // Sharded metadata plane: when set, nameserver RPCs are routed per path
  // through the shard map instead of the single `nameserver` node. Not
  // owned; must outlive the client.
  void set_meta_router(meta::MetaRouter* router) { router_ = router; }

  // Write-chain planner for the write_pipeline extension. Not owned; null
  // keeps appends on the legacy upload + fan-out path.
  void set_write_planner(WritePlanner* planner) { write_planner_ = planner; }

  // Telemetry.
  std::uint64_t lookups_sent() const { return lookups_sent_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

  // Publishes client counters (fs.client.lookups / cache_hits /
  // read_retries) and the retry-backoff histogram, whose sum is the total
  // simulated seconds spent backing off. Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  struct CachedMeta {
    FileInfo info;
    sim::SimTime expires;
  };

  void with_meta(const std::string& name, bool allow_cache,
                 std::function<void(Status, const FileInfo&)> fn);
  void cache_put(const FileInfo& info);
  std::uint64_t cache_gen(const std::string& name) const {
    const auto it = cache_gen_.find(name);
    return it == cache_gen_.end() ? 0 : it->second;
  }
  // Issues a path-keyed nameserver RPC — through the shard router when one
  // is set, straight to the single nameserver otherwise.
  void ns_call(const std::string& path, Method method, Bytes request,
               ResponseFn done);
  void do_read(const FileInfo& info, std::uint64_t offset,
               std::uint64_t length, bool retried, ReadFn done);
  // read_file engine: reads [offset, size) per the current metadata, then
  // keeps going while the piggybacked size reveals further appends (§3.3).
  void read_file_from(const std::string& name, std::uint64_t offset,
                      bool retried, int rounds,
                      std::shared_ptr<ExtentList> acc, ReadFn done);
  void read_piece(const FileInfo& info, std::uint64_t offset,
                  std::uint64_t length,
                  const std::vector<net::NodeId>& replicas,
                  std::uint32_t attempt,
                  std::function<void(Status, ExtentList, std::uint64_t)> done);
  void execute_plan(const FileInfo& info, std::uint64_t offset,
                    std::uint64_t length,
                    const std::vector<net::NodeId>& replicas,
                    std::vector<policy::ReadAssignment> plan,
                    std::uint32_t attempt,
                    std::function<void(Status, ExtentList, std::uint64_t)> done);
  void do_append(const FileInfo& info, ExtentList data, bool retried,
                 AppendFn done);
  // Chain-planned append (write_pipeline): plans writer -> primary ->
  // secondaries as one kPlanWrite chain, ships the bytes over the planned
  // upload hop and carries the relay hops in the append RPC.
  void do_append_pipelined(const FileInfo& info, ExtentList data,
                           bool retried, AppendFn done);
  // Ships the bytes over an ECMP-hashed path, then issues the append RPC
  // (the unplanned upload used by the baselines and as the degraded path
  // when chain planning finds no route).
  void do_append_ecmp(const FileInfo& info, ExtentList data, bool retried,
                      AppendFn done);
  // The append RPC itself (+ the stale-mapping retry): `chain` carries the
  // planned relay hops (empty = legacy fan-out at the primary).
  void send_append_rpc(const FileInfo& info, ExtentList data,
                       std::vector<WireAssignment> chain, bool retried,
                       AppendFn done);
  sim::SimTime retry_backoff(std::uint32_t attempt) const;
  // retry_backoff + observability: counts the retry and records the wait.
  sim::SimTime count_retry_backoff(std::uint32_t attempt);

  Transport* transport_;
  sdn::SdnFabric* fabric_;
  ReadPlanner* planner_;
  net::NodeId node_;
  net::NodeId nameserver_;
  ClientConfig config_;
  meta::MetaRouter* router_ = nullptr;
  WritePlanner* write_planner_ = nullptr;
  net::PathCache paths_;
  net::EcmpHasher ecmp_;
  std::unordered_map<std::string, CachedMeta> cache_;
  // Per-name invalidation generation (see invalidate_cache()).
  std::unordered_map<std::string, std::uint64_t> cache_gen_;
  std::uint64_t lookups_sent_ = 0;
  std::uint64_t cache_hits_ = 0;

  // Observability (no-ops until set_obs()).
  obs::Counter lookups_metric_;
  obs::Counter cache_hits_metric_;
  obs::Counter read_retries_metric_;
  obs::Histogram retry_backoff_hist_;  // per-retry wait; sum = total backoff
};

}  // namespace mayflower::fs
