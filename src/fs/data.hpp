// File content representation.
//
// The paper moves multi-hundred-megabyte blocks with sendfile; materializing
// those payloads in a simulation would swamp memory for zero fidelity gain
// (completion time is network-bound by assumption, §3.1). Content is instead
// an *extent*: either real inline bytes (tests, examples, small files) or a
// deterministic pattern (seed + absolute offset + length) whose bytes are
// generated on demand. Both kinds slice, checksum and round-trip through the
// serializer; the full read/append paths work identically for either.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fs/rpc/serializer.hpp"

namespace mayflower::fs {

class Extent {
 public:
  enum class Kind : std::uint8_t { kInline = 1, kPattern = 2 };

  Extent() = default;

  static Extent from_bytes(std::string bytes);
  static Extent pattern(std::uint64_t seed, std::uint64_t size,
                        std::uint64_t offset = 0);

  Kind kind() const { return kind_; }
  std::uint64_t size() const;

  // Sub-range [offset, offset + len) of this extent.
  Extent slice(std::uint64_t offset, std::uint64_t len) const;

  // Byte at position i (0-based within the extent).
  std::uint8_t byte_at(std::uint64_t i) const;

  // Materializes real bytes. Guarded: refuses (returns empty) beyond
  // `limit` to keep simulations from accidentally allocating gigabytes.
  std::string materialize(std::uint64_t limit = 64u << 20) const;

  // CRC-32 of the content, computed without materializing patterns.
  std::uint32_t checksum() const;

  bool content_equals(const Extent& other) const;

  void encode(Writer& w) const;
  static Extent decode(Reader& r);

 private:
  Kind kind_ = Kind::kInline;
  std::string inline_bytes_;
  std::uint64_t seed_ = 0;
  std::uint64_t offset_ = 0;   // absolute offset into the pattern stream
  std::uint64_t size_ = 0;     // pattern length
};

// An ordered run of extents — the unit the read path returns and the append
// path accepts. Total size is the sum of extent sizes.
class ExtentList {
 public:
  ExtentList() = default;
  explicit ExtentList(Extent e) { append(std::move(e)); }

  void append(Extent e);
  void append(const ExtentList& other);

  std::uint64_t size() const { return size_; }
  bool empty() const { return extents_.empty(); }
  const std::vector<Extent>& extents() const { return extents_; }

  // Sub-range [offset, offset + len); len is clamped to the available data.
  ExtentList slice(std::uint64_t offset, std::uint64_t len) const;

  std::uint32_t checksum() const;
  std::string materialize(std::uint64_t limit = 64u << 20) const;
  bool content_equals(const ExtentList& other) const;

  void encode(Writer& w) const;
  static ExtentList decode(Reader& r);

 private:
  std::vector<Extent> extents_;
  std::uint64_t size_ = 0;
};

}  // namespace mayflower::fs
