// AsyncFS-style asynchronous metadata commits (PAPERS.md): the shard
// answers a create with a provisional file handle immediately after the
// local KV write, so the client's data flow starts right away, and the
// replica provisioning completes in the background inside a bounded
// ack/retry window. A commit whose window closes without every ack is
// reconciled loudly: the caller-supplied reconcile hook undoes the
// provisional state and the failure is logged and counted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/observability.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::fs::meta {

struct AsyncCommitConfig {
  bool enabled = false;
  // Per-commit ack/retry window: the attempt is retried on failure until
  // either it acks or max_attempts is exhausted.
  std::uint32_t max_attempts = 3;
  sim::SimTime retry_backoff = sim::SimTime::from_millis(5.0);
};

class AsyncCommitter {
 public:
  // attempt(done): start one provisioning attempt; call done(true) when
  // every ack is in, done(false) to trigger a retry.
  using AttemptFn = std::function<void(std::function<void(bool)> done)>;

  AsyncCommitter(sim::EventQueue& events, AsyncCommitConfig config)
      : events_(&events),
        config_(config),
        alive_(std::make_shared<bool>(true)) {}
  ~AsyncCommitter() { *alive_ = false; }

  AsyncCommitter(const AsyncCommitter&) = delete;
  AsyncCommitter& operator=(const AsyncCommitter&) = delete;

  // Launches a background commit. `committed` fires once all acks are in;
  // `reconcile` fires instead when the retry window is exhausted.
  void launch(std::string label, AttemptFn attempt,
              std::function<void()> committed, std::function<void()> reconcile);

  std::uint64_t inflight() const { return inflight_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t failed() const { return failed_; }

  // Publishes meta.async.{inflight,committed,failed}. Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  void run_attempt(std::shared_ptr<struct Commit> commit);
  void settle(const std::shared_ptr<struct Commit>& commit, bool ok);

  sim::EventQueue* events_;
  AsyncCommitConfig config_;
  // Guards scheduled retries against firing after destruction (the event
  // queue can outlive the owning nameserver).
  std::shared_ptr<bool> alive_;
  std::uint64_t inflight_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t failed_ = 0;

  obs::Gauge inflight_metric_;
  obs::Counter committed_metric_;
  obs::Counter failed_metric_;
};

}  // namespace mayflower::fs::meta
