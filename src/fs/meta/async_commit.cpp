#include "fs/meta/async_commit.hpp"

#include "common/logging.hpp"

namespace mayflower::fs::meta {

struct Commit {
  std::string label;
  AsyncCommitter::AttemptFn attempt;
  std::function<void()> committed;
  std::function<void()> reconcile;
  std::uint32_t attempts_used = 0;
};

void AsyncCommitter::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    inflight_metric_ = obs::Gauge{};
    committed_metric_ = failed_metric_ = obs::Counter{};
    return;
  }
  inflight_metric_ = hub->metrics.gauge("meta.async.inflight");
  committed_metric_ = hub->metrics.counter("meta.async.committed");
  failed_metric_ = hub->metrics.counter("meta.async.failed");
  inflight_metric_.set(static_cast<double>(inflight_));
}

void AsyncCommitter::launch(std::string label, AttemptFn attempt,
                            std::function<void()> committed,
                            std::function<void()> reconcile) {
  auto commit = std::make_shared<Commit>();
  commit->label = std::move(label);
  commit->attempt = std::move(attempt);
  commit->committed = std::move(committed);
  commit->reconcile = std::move(reconcile);
  ++inflight_;
  inflight_metric_.set(static_cast<double>(inflight_));
  run_attempt(std::move(commit));
}

void AsyncCommitter::run_attempt(std::shared_ptr<Commit> commit) {
  ++commit->attempts_used;
  auto alive = alive_;
  commit->attempt([this, alive, commit](bool ok) {
    if (!*alive) return;
    if (ok) {
      settle(commit, true);
      return;
    }
    if (commit->attempts_used >= config_.max_attempts) {
      settle(commit, false);
      return;
    }
    events_->schedule_in(config_.retry_backoff, [this, alive, commit] {
      if (!*alive) return;
      run_attempt(commit);
    });
  });
}

void AsyncCommitter::settle(const std::shared_ptr<Commit>& commit, bool ok) {
  --inflight_;
  inflight_metric_.set(static_cast<double>(inflight_));
  if (ok) {
    ++committed_;
    committed_metric_.inc();
    if (commit->committed) commit->committed();
    return;
  }
  ++failed_;
  failed_metric_.inc();
  MAYFLOWER_LOG_ERROR(
      "meta: async commit of %s failed after %u attempts; reconciling",
      commit->label.c_str(), commit->attempts_used);
  if (commit->reconcile) commit->reconcile();
}

}  // namespace mayflower::fs::meta
