#include "fs/meta/shared.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mayflower::fs::meta {

std::vector<net::NodeId> place_collaboratively(
    const net::ThreeTier& tree, std::size_t replication, net::NodeId writer,
    const PlacementAdvisorFn& advisor) {
  std::vector<net::NodeId> replicas;
  std::vector<int> used_racks;

  auto stage = [&](auto&& predicate) -> bool {
    std::vector<net::NodeId> pool;
    for (const net::NodeId h : tree.hosts) {
      const int rack = tree.rack_of(h);
      if (std::find(used_racks.begin(), used_racks.end(), rack) !=
          used_racks.end()) {
        continue;
      }
      if (predicate(h)) pool.push_back(h);
    }
    if (pool.empty()) return false;
    const net::NodeId pick = advisor(writer, pool);
    replicas.push_back(pick);
    used_racks.push_back(tree.rack_of(pick));
    return true;
  };

  bool ok = stage([](net::NodeId) { return true; });  // primary: any host
  MAYFLOWER_ASSERT(ok);
  const net::NodeId primary = replicas.front();
  if (replication >= 2) {
    ok = stage([&](net::NodeId h) {
      return tree.pod_of(h) == tree.pod_of(primary);
    });
    MAYFLOWER_ASSERT_MSG(ok, "pod too small for the second replica");
  }
  while (replicas.size() < replication) {
    ok = stage([&](net::NodeId h) {
      return tree.pod_of(h) != tree.pod_of(primary);
    });
    if (!ok) ok = stage([](net::NodeId) { return true; });
    MAYFLOWER_ASSERT_MSG(ok, "not enough racks for the replication factor");
  }
  return replicas;
}

}  // namespace mayflower::fs::meta
