#include "fs/meta/shard_map.hpp"

#include "common/logging.hpp"

namespace mayflower::fs::meta {

const char* to_string(Partition mode) {
  switch (mode) {
    case Partition::kHash: return "hash";
    case Partition::kSubtree: return "subtree";
  }
  return "?";
}

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string_view subtree_key(Partition mode, std::string_view path) {
  if (mode == Partition::kHash) return path;
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

std::size_t ShardMap::shard_of_path(std::string_view path) const {
  MAYFLOWER_ASSERT(!owners.empty());
  return stable_hash(subtree_key(mode, path)) % owners.size();
}

void ShardMap::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(mode));
  w.u64(epoch);
  w.list(owners, [](Writer& writer, net::NodeId n) { writer.u32(n); });
}

ShardMap ShardMap::decode(Reader& r) {
  ShardMap map;
  map.mode = static_cast<Partition>(r.u32());
  map.epoch = r.u64();
  map.owners = r.list<net::NodeId>(
      [](Reader& reader) { return static_cast<net::NodeId>(reader.u32()); });
  return map;
}

}  // namespace mayflower::fs::meta
