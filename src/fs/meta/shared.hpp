// Logic shared by every metadata shard: the KV key scheme for file records
// and replica placement. Extracted from the monolithic nameserver so each
// per-shard service stays a thin RPC layer over the same namespace rules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/tree.hpp"

namespace mayflower::fs {

// Extension hook (§3.3): when set, replica placement is made
// collaboratively — the advisor (in practice the Flowserver) picks the best
// host from each fault-domain-constrained candidate pool for the creating
// writer; when unset, placement is the paper's static random strategy.
using PlacementAdvisorFn = std::function<net::NodeId(
    net::NodeId writer, const std::vector<net::NodeId>& candidates)>;

namespace meta {

// KV key for a file record: every shard stores its slice of the namespace
// under the same "f/<name>" scheme, so rebuild/adoption scans are uniform.
inline std::string file_key(const std::string& name) { return "f/" + name; }

// Staged placement under the same fault-domain constraints as
// workload::Catalog::place_replicas, but each stage's winner is chosen by
// the advisor (Flowserver bandwidth ranking) instead of uniformly.
std::vector<net::NodeId> place_collaboratively(
    const net::ThreeTier& tree, std::size_t replication, net::NodeId writer,
    const PlacementAdvisorFn& advisor);

}  // namespace meta
}  // namespace mayflower::fs
