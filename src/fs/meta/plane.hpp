// The sharded metadata plane: owns N nameserver shard servers, the
// authoritative ShardMap, and the coordinator endpoint that hands the map to
// routers (kGetShardMap). When heartbeat monitoring is on, the coordinator
// probes every shard server; a dead server's shard ranges are reassigned to
// survivors (preferring a different fault domain), the map epoch is bumped
// so routers refetch, and each adopting server recovers the adopted ranges
// by scanning the dataservers (the PR 2 rebuild path, filtered to the
// adopted slice). The remaining shards keep serving throughout.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "fs/meta/shard_map.hpp"
#include "fs/nameserver.hpp"
#include "fs/rpc/transport.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::fs::meta {

struct MetaPlaneConfig {
  Partition partition = Partition::kHash;
  // Template for every shard server; kv_dir is the root under which each
  // shard gets its own subdirectory, and events/metric_scope are filled in
  // per shard by the plane.
  NameserverConfig shard_base{};
  // Fault domain (e.g. pod index) of each shard server. Failover prefers an
  // adopting survivor from a different domain than the dead server's, so a
  // domain-wide outage never piles a domain's shards onto its own members.
  // Empty: every server is its own domain.
  std::vector<int> domains;
  // Dataservers to scan when an adopting shard recovers a dead shard's
  // keys. Empty disables adoption (the mapping is rebuilt lazily).
  std::vector<net::NodeId> dataservers;
};

class MetaPlane {
 public:
  MetaPlane(Transport& transport, sim::EventQueue& events,
            const net::ThreeTier& tree, net::NodeId coordinator,
            std::vector<net::NodeId> shard_nodes, MetaPlaneConfig config,
            std::uint64_t seed);
  ~MetaPlane();

  MetaPlane(const MetaPlane&) = delete;
  MetaPlane& operator=(const MetaPlane&) = delete;

  const ShardMap& shard_map() const { return map_; }
  std::size_t server_count() const { return servers_.size(); }
  Nameserver& shard_server(std::size_t i) { return *servers_[i]; }
  net::NodeId coordinator() const { return coordinator_; }
  net::NodeId owner_node_of(const std::string& path) const {
    return map_.owner_of_path(path);
  }

  // Coordinator-side shard liveness probing + failover. Idempotent.
  void start_monitoring(sim::SimTime interval);
  void stop_monitoring();

  // Fault injection for tests: crash detaches the server (its RPCs fail
  // with kUnavailable until the next probe cycle reassigns its shards);
  // restart re-attaches it, but it owns nothing until a future failover
  // assigns shards back to it.
  void crash_server(std::size_t i) { servers_[i]->detach(); }
  void restart_server(std::size_t i) { servers_[i]->attach(); }

  // Telemetry.
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t adoptions_completed() const { return adoptions_completed_; }

  // Publishes meta.shard.count and meta.plane.failovers, and wires every
  // shard server's scoped metrics (meta.shard.<i>.*). Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  void probe_cycle();
  void fail_over(const std::set<std::size_t>& dead_servers);

  Transport* transport_;
  sim::EventQueue* events_;
  net::NodeId coordinator_;
  std::vector<net::NodeId> shard_nodes_;
  MetaPlaneConfig config_;
  ShardMap map_;
  std::vector<std::unique_ptr<Nameserver>> servers_;
  sim::SimTime probe_interval_{};
  sim::EventId probe_event_;
  std::shared_ptr<bool> alive_;
  std::uint64_t failovers_ = 0;
  std::uint64_t adoptions_completed_ = 0;

  obs::Counter failovers_metric_;
};

}  // namespace mayflower::fs::meta
