// Namespace partitioning for the sharded metadata plane (MetaFlow-style
// scalable lookup, PAPERS.md): the file namespace is split across N
// nameserver shards, and every client routes each path-keyed metadata RPC to
// the shard that owns the path.
//
// Two partition modes:
//  - kHash: a stable 64-bit hash of the full path, modulo the shard count.
//    Uniform load, but a directory's files scatter across every shard.
//  - kSubtree: the top-level directory component ("logs/2026/a.part" ->
//    "logs") is hashed instead, so a readdir-style prefix scan of one
//    directory subtree stays single-shard.
//
// The map carries an epoch: failover reassigns dead shards' ranges to
// survivors and bumps the epoch, and routers treat a kWrongShard reply as
// "my cached epoch is stale — refetch".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fs/rpc/serializer.hpp"
#include "net/topology.hpp"

namespace mayflower::fs::meta {

enum class Partition : std::uint8_t {
  kHash = 0,
  kSubtree = 1,
};

const char* to_string(Partition mode);

// Deterministic 64-bit FNV-1a. The partition function is part of the wire
// contract between routers and shards, so it must be identical across
// builds and standard libraries — std::hash is neither.
std::uint64_t stable_hash(std::string_view s);

// The substring a path is partitioned by under `mode` (the whole path in
// hash mode; the first '/'-separated component in subtree mode).
std::string_view subtree_key(Partition mode, std::string_view path);

struct ShardMap {
  Partition mode = Partition::kHash;
  std::uint64_t epoch = 1;
  // owners[i] is the nameserver node currently serving shard i. After a
  // failover several shard indices may map to the same survivor.
  std::vector<net::NodeId> owners;

  std::size_t shard_count() const { return owners.size(); }
  std::size_t shard_of_path(std::string_view path) const;
  net::NodeId owner_of_path(std::string_view path) const {
    return owners[shard_of_path(path)];
  }

  void encode(Writer& w) const;
  static ShardMap decode(Reader& r);
};

// The kGetShardMap response payload (ShardMapResp) lives with every other
// wire message in fs/rpc/messages.hpp, where the rpc-exhaustive contract
// check can see it.

}  // namespace mayflower::fs::meta
