#include "fs/meta/router.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mayflower::fs::meta {

MetaRouter::MetaRouter(Transport& transport, sim::EventQueue& events,
                       net::NodeId self, MetaRouterConfig config)
    : transport_(&transport),
      events_(&events),
      self_(self),
      config_(config),
      alive_(std::make_shared<bool>(true)) {
  MAYFLOWER_ASSERT(config_.coordinator != net::kInvalidNode);
  MAYFLOWER_ASSERT(config_.max_attempts >= 1);
}

MetaRouter::~MetaRouter() { *alive_ = false; }

void MetaRouter::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    map_fetches_metric_ = wrong_shard_metric_ = obs::Counter{};
    lookup_latency_hist_ = obs::Histogram{};
    return;
  }
  map_fetches_metric_ = hub->metrics.counter("meta.router.map_fetches");
  wrong_shard_metric_ =
      hub->metrics.counter("meta.router.wrong_shard_retries");
  // Edges in seconds: one RPC round trip is 400 us, so the ladder spans
  // "served instantly" through "queued behind a busy shard / retried".
  lookup_latency_hist_ = hub->metrics.histogram(
      "meta.lookup_latency_sec", {0.0005, 0.001, 0.002, 0.005, 0.02, 0.1});
}

void MetaRouter::with_map(std::function<void(Status)> fn) {
  if (map_.has_value()) {
    fn(Status::kOk);
    return;
  }
  fetch_waiters_.push_back(std::move(fn));
  if (fetch_inflight_) return;
  fetch_inflight_ = true;
  ++map_fetches_;
  map_fetches_metric_.inc();
  auto alive = alive_;
  transport_->call(
      self_, config_.coordinator, Method::kGetShardMap, Bytes{},
      [this, alive](Status status, Bytes payload) {
        if (!*alive) return;
        fetch_inflight_ = false;
        if (status == Status::kOk) {
          Reader r(payload);
          const ShardMapResp resp = ShardMapResp::decode(r);
          if (r.ok() && !resp.map.owners.empty()) {
            map_ = resp.map;
          } else {
            status = Status::kBadRequest;
          }
        }
        std::vector<std::function<void(Status)>> waiters;
        waiters.swap(fetch_waiters_);
        for (auto& w : waiters) w(status);
      });
}

void MetaRouter::call(const std::string& path, Method method, Bytes request,
                      ResponseFn done) {
  do_call(path, method, std::move(request), 0, std::move(done));
}

void MetaRouter::do_call(const std::string& path, Method method,
                         Bytes request, std::uint32_t attempt,
                         ResponseFn done) {
  with_map([this, path, method, request = std::move(request), attempt,
            done = std::move(done)](Status map_status) mutable {
    if (map_status != Status::kOk) {
      done(Status::kUnavailable, {});
      return;
    }
    const net::NodeId shard = map_->owner_of_path(path);
    const sim::SimTime issued = events_->now();
    auto alive = alive_;
    transport_->call(
        self_, shard, method, request,
        [this, alive, path, method, request, attempt, issued,
         done = std::move(done)](Status status, Bytes payload) mutable {
          if (!*alive) return;
          if (method == Method::kLookupFile) {
            lookup_latency_hist_.observe(
                (events_->now() - issued).seconds());
          }
          if ((status == Status::kWrongShard ||
               status == Status::kUnavailable) &&
              attempt + 1 < config_.max_attempts) {
            // Stale map (shard moved) or a shard mid-failover: drop the
            // cached epoch, wait out the backoff, refetch and retry.
            ++wrong_shard_retries_;
            wrong_shard_metric_.inc();
            invalidate_map();
            events_->schedule_in(
                config_.retry_backoff,
                [this, alive, path, method, request = std::move(request),
                 attempt, done = std::move(done)]() mutable {
                  if (!*alive) return;
                  do_call(path, method, std::move(request), attempt + 1,
                          std::move(done));
                });
            return;
          }
          done(status, std::move(payload));
        });
  });
}

void MetaRouter::list(const std::string& prefix, ListFn done) {
  with_map([this, prefix, done = std::move(done)](Status map_status) mutable {
    if (map_status != Status::kOk) {
      done(Status::kUnavailable, {});
      return;
    }
    // Deduplicated target shards, in shard order for determinism. In
    // subtree mode a prefix that crosses the first '/' fully names its
    // top-level directory, so the whole subtree lives on one shard; a bare
    // partial name could still match several directories and must fan out.
    std::vector<net::NodeId> targets;
    const bool single_shard = map_->mode == Partition::kSubtree &&
                              prefix.find('/') != std::string::npos;
    if (single_shard) {
      targets.push_back(map_->owner_of_path(prefix));
    } else {
      for (const net::NodeId owner : map_->owners) {
        if (std::find(targets.begin(), targets.end(), owner) ==
            targets.end()) {
          targets.push_back(owner);
        }
      }
    }
    struct Merge {
      Status status = Status::kOk;
      std::vector<std::string> names;
      std::size_t outstanding = 0;
    };
    auto st = std::make_shared<Merge>();
    st->outstanding = targets.size();
    auto shared_done = std::make_shared<ListFn>(std::move(done));
    auto alive = alive_;
    for (const net::NodeId shard : targets) {
      transport_->call(
          self_, shard, Method::kListFiles, Bytes{},
          [alive, st, prefix, shared_done](Status status, Bytes payload) {
            if (!*alive) return;
            if (status == Status::kOk) {
              Reader r(payload);
              ListFilesResp resp = ListFilesResp::decode(r);
              if (r.ok()) {
                for (std::string& name : resp.names) {
                  if (prefix.empty() || name.rfind(prefix, 0) == 0) {
                    st->names.push_back(std::move(name));
                  }
                }
              } else if (st->status == Status::kOk) {
                st->status = Status::kBadRequest;
              }
            } else if (st->status == Status::kOk) {
              st->status = status;
            }
            if (--st->outstanding > 0) return;
            std::sort(st->names.begin(), st->names.end());
            (*shared_done)(st->status, std::move(st->names));
          });
    }
  });
}

}  // namespace mayflower::fs::meta
