// Client-side shard routing: resolves path -> owning nameserver shard via a
// cached ShardMap and transparently recovers from staleness. A kWrongShard
// or kUnavailable reply means the cached map's epoch is behind the
// coordinator's (failover moved the shard): the router refetches the map
// and retries, bounded by max_attempts with a fixed backoff between
// refetches so a mid-failover window is ridden out instead of spun on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fs/meta/shard_map.hpp"
#include "fs/rpc/transport.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::fs::meta {

struct MetaRouterConfig {
  net::NodeId coordinator = net::kInvalidNode;
  std::uint32_t max_attempts = 4;
  sim::SimTime retry_backoff = sim::SimTime::from_millis(10.0);
};

class MetaRouter {
 public:
  using ListFn = std::function<void(Status, std::vector<std::string>)>;

  MetaRouter(Transport& transport, sim::EventQueue& events, net::NodeId self,
             MetaRouterConfig config);
  ~MetaRouter();

  MetaRouter(const MetaRouter&) = delete;
  MetaRouter& operator=(const MetaRouter&) = delete;

  // Routes a path-keyed metadata RPC (create/lookup/delete) to the shard
  // owning `path`, fetching the shard map first when none is cached.
  void call(const std::string& path, Method method, Bytes request,
            ResponseFn done);

  // Merged file listing. In subtree mode a non-empty prefix that does not
  // cross a '/' boundary names a single directory subtree, so only its
  // owning shard is asked; otherwise the call fans out to every shard.
  // Names are returned sorted (the merge makes per-shard order meaningless).
  void list(const std::string& prefix, ListFn done);

  // Drops the cached map; the next call refetches (epoch-based refresh).
  void invalidate_map() { map_.reset(); }
  const ShardMap* cached_map() const {
    return map_.has_value() ? &*map_ : nullptr;
  }

  // Telemetry.
  std::uint64_t map_fetches() const { return map_fetches_; }
  std::uint64_t wrong_shard_retries() const { return wrong_shard_retries_; }

  // Publishes meta.router.{map_fetches,wrong_shard_retries} and the
  // client-observed meta.lookup_latency_sec histogram. Null detaches.
  void set_obs(obs::Observability* hub);

 private:
  void with_map(std::function<void(Status)> fn);
  void do_call(const std::string& path, Method method, Bytes request,
               std::uint32_t attempt, ResponseFn done);

  Transport* transport_;
  sim::EventQueue* events_;
  net::NodeId self_;
  MetaRouterConfig config_;
  std::optional<ShardMap> map_;
  bool fetch_inflight_ = false;
  std::vector<std::function<void(Status)>> fetch_waiters_;
  // Guards backoff retries scheduled on the event queue against firing
  // after this router is destroyed.
  std::shared_ptr<bool> alive_;
  std::uint64_t map_fetches_ = 0;
  std::uint64_t wrong_shard_retries_ = 0;

  obs::Counter map_fetches_metric_;
  obs::Counter wrong_shard_metric_;
  obs::Histogram lookup_latency_hist_;
};

}  // namespace mayflower::fs::meta
