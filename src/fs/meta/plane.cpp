#include "fs/meta/plane.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace mayflower::fs::meta {

MetaPlane::MetaPlane(Transport& transport, sim::EventQueue& events,
                     const net::ThreeTier& tree, net::NodeId coordinator,
                     std::vector<net::NodeId> shard_nodes,
                     MetaPlaneConfig config, std::uint64_t seed)
    : transport_(&transport),
      events_(&events),
      coordinator_(coordinator),
      shard_nodes_(std::move(shard_nodes)),
      config_(std::move(config)),
      alive_(std::make_shared<bool>(true)) {
  MAYFLOWER_ASSERT(!shard_nodes_.empty());
  MAYFLOWER_ASSERT(config_.domains.empty() ||
                   config_.domains.size() == shard_nodes_.size());
  MAYFLOWER_ASSERT(!config_.shard_base.kv_dir.empty());

  map_.mode = config_.partition;
  map_.epoch = 1;
  map_.owners = shard_nodes_;  // shard i starts on server i

  servers_.reserve(shard_nodes_.size());
  for (std::size_t i = 0; i < shard_nodes_.size(); ++i) {
    NameserverConfig shard = config_.shard_base;
    shard.kv_dir = config_.shard_base.kv_dir / strfmt("shard%zu", i);
    shard.events = events_;
    shard.metric_scope = strfmt("meta.shard.%zu", i);
    servers_.push_back(std::make_unique<Nameserver>(
        *transport_, shard_nodes_[i], tree, std::move(shard),
        splitmix64(seed ^ (0x5a17ULL + i))));
    servers_.back()->set_shard_map(&map_);
  }

  transport_->bind(coordinator_, [this](net::NodeId /*from*/, Method method,
                                        const Bytes& /*request*/,
                                        ResponseFn reply) {
    switch (method) {
      case Method::kGetShardMap:
        reply(Status::kOk, ShardMapResp{map_}.encode());
        return;
      case Method::kPing:
        reply(Status::kOk, {});
        return;
      default:
        reply(Status::kBadRequest, {});
    }
  });
}

MetaPlane::~MetaPlane() {
  *alive_ = false;
  stop_monitoring();
  transport_->unbind(coordinator_);
}

void MetaPlane::set_obs(obs::Observability* hub) {
  for (auto& server : servers_) server->set_obs(hub);
  if (hub == nullptr) {
    failovers_metric_ = obs::Counter{};
    return;
  }
  hub->metrics.gauge("meta.shard.count")
      .set(static_cast<double>(servers_.size()));
  failovers_metric_ = hub->metrics.counter("meta.plane.failovers");
}

void MetaPlane::start_monitoring(sim::SimTime interval) {
  MAYFLOWER_ASSERT(interval > sim::SimTime{});
  stop_monitoring();
  probe_interval_ = interval;
  probe_event_ =
      events_->schedule_in(probe_interval_, [this] { probe_cycle(); });
}

void MetaPlane::stop_monitoring() {
  if (probe_event_.valid()) events_->cancel(probe_event_);
  probe_event_ = {};
}

void MetaPlane::probe_cycle() {
  probe_event_ =
      events_->schedule_in(probe_interval_, [this] { probe_cycle(); });
  auto pending = std::make_shared<std::size_t>(servers_.size());
  auto dead = std::make_shared<std::set<std::size_t>>();
  auto alive = alive_;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    transport_->call(coordinator_, shard_nodes_[i], Method::kPing, Bytes{},
                     [this, alive, i, pending, dead](Status status, Bytes) {
                       if (!*alive) return;
                       if (status != Status::kOk) dead->insert(i);
                       if (--*pending == 0 && !dead->empty()) {
                         fail_over(*dead);
                       }
                     });
  }
}

void MetaPlane::fail_over(const std::set<std::size_t>& dead_servers) {
  // Survivor pool, and how many shards each already owns (for balance).
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (dead_servers.count(i) == 0) survivors.push_back(i);
  }
  if (survivors.empty()) {
    MAYFLOWER_LOG_ERROR("meta: every shard server is dead; no failover");
    return;
  }
  const auto domain_of = [this](std::size_t server) {
    return config_.domains.empty() ? static_cast<int>(server)
                                   : config_.domains[server];
  };
  const auto server_of_node = [this](net::NodeId node) {
    for (std::size_t i = 0; i < shard_nodes_.size(); ++i) {
      if (shard_nodes_[i] == node) return i;
    }
    MAYFLOWER_ASSERT_MSG(false, "shard owner is not a known server");
    __builtin_unreachable();
  };
  std::vector<std::size_t> owned(servers_.size(), 0);
  for (const net::NodeId owner : map_.owners) ++owned[server_of_node(owner)];

  // Reassign every shard whose owner is dead: balance by current ownership,
  // preferring survivors outside the dead owner's fault domain.
  // adopted[s] collects the shard indices server s takes over.
  std::vector<std::set<std::size_t>> adopted(servers_.size());
  bool moved = false;
  for (std::size_t shard = 0; shard < map_.owners.size(); ++shard) {
    const std::size_t owner = server_of_node(map_.owners[shard]);
    if (dead_servers.count(owner) == 0) continue;
    std::size_t best = survivors.front();
    bool best_cross = false;
    for (const std::size_t s : survivors) {
      const bool cross = domain_of(s) != domain_of(owner);
      if ((cross && !best_cross) ||
          (cross == best_cross && owned[s] < owned[best])) {
        best = s;
        best_cross = cross;
      }
    }
    map_.owners[shard] = shard_nodes_[best];
    ++owned[best];
    adopted[best].insert(shard);
    moved = true;
  }
  if (!moved) return;  // dead servers owned nothing (already failed over)

  ++map_.epoch;
  ++failovers_;
  failovers_metric_.inc();
  MAYFLOWER_LOG_WARN("meta: failover #%llu, shard map epoch now %llu",
                     static_cast<unsigned long long>(failovers_),
                     static_cast<unsigned long long>(map_.epoch));

  if (config_.dataservers.empty()) return;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (adopted[s].empty()) continue;
    auto ranges = std::make_shared<std::set<std::size_t>>(
        std::move(adopted[s]));
    auto alive = alive_;
    servers_[s]->adopt_from_dataservers(
        [this, ranges](const std::string& name) {
          return ranges->count(map_.shard_of_path(name)) != 0;
        },
        config_.dataservers, [this, alive, s] {
          if (!*alive) return;
          ++adoptions_completed_;
          MAYFLOWER_LOG_INFO(
              "meta: server %zu finished adopting failed shard ranges "
              "(%llu files recovered so far)",
              s,
              static_cast<unsigned long long>(
                  servers_[s]->adopted_files()));
        });
  }
}

}  // namespace mayflower::fs::meta
