#include "fs/flowserver_service.hpp"

#include "fs/planner.hpp"

namespace mayflower::fs {
namespace {

WireAssignment to_wire(const flowserver::ReadAssignment& a) {
  WireAssignment w;
  w.cookie = a.cookie;
  w.replica = a.replica;
  w.path_nodes = a.path.nodes;
  w.path_links = a.path.links;
  w.bytes = a.bytes;
  w.est_bw_bps = a.est_bw_bps;
  return w;
}

policy::ReadAssignment from_wire(const WireAssignment& w) {
  policy::ReadAssignment a;
  a.cookie = w.cookie;
  a.replica = w.replica;
  a.path.nodes = w.path_nodes;
  a.path.links = w.path_links;
  a.bytes = w.bytes;
  a.est_bw_bps = w.est_bw_bps;
  return a;
}

}  // namespace

FlowserverService::FlowserverService(Transport& transport, net::NodeId node,
                                     flowserver::Flowserver& server)
    : transport_(&transport), node_(node), server_(&server) {
  transport_->bind(node_, [this](net::NodeId from, Method method,
                                 const Bytes& request, ResponseFn reply) {
    handle(from, method, request, std::move(reply));
  });
}

FlowserverService::~FlowserverService() { transport_->unbind(node_); }

void FlowserverService::handle(net::NodeId /*from*/, Method method,
                               const Bytes& request, ResponseFn reply) {
  switch (method) {
    case Method::kSelectReplicas: {
      Reader r(request);
      const SelectReplicasReq req = SelectReplicasReq::decode(r);
      if (!r.ok() || req.replicas.empty() || req.bytes <= 0.0) {
        reply(Status::kBadRequest, {});
        return;
      }
      ++requests_;
      const auto assignments =
          server_->select_for_read(req.client, req.replicas, req.bytes);
      if (assignments.empty()) {
        // Failures cut off every listed replica; the client backs off and
        // refetches its metadata (the mapping may have moved meanwhile).
        reply(Status::kUnavailable, {});
        return;
      }
      SelectReplicasResp resp;
      for (const auto& a : assignments) {
        resp.assignments.push_back(to_wire(a));
      }
      reply(Status::kOk, resp.encode());
      return;
    }
    case Method::kFlowDropped: {
      Reader r(request);
      const FlowDroppedReq req = FlowDroppedReq::decode(r);
      if (r.ok()) server_->flow_dropped(req.cookie);
      reply(Status::kOk, {});
      return;
    }
    default:
      reply(Status::kBadRequest, {});
  }
}

void RpcPlanner::plan(net::NodeId client,
                      const std::vector<net::NodeId>& replicas, double bytes,
                      PlanFn done) {
  SelectReplicasReq req;
  req.client = client;
  req.replicas = replicas;
  req.bytes = bytes;
  transport_->call(
      client, controller_, Method::kSelectReplicas, req.encode(),
      [done = std::move(done)](Status status, Bytes payload) {
        if (status != Status::kOk) {
          done(status, {});
          return;
        }
        Reader r(payload);
        const SelectReplicasResp resp = SelectReplicasResp::decode(r);
        if (!r.ok()) {
          done(Status::kBadRequest, {});
          return;
        }
        std::vector<policy::ReadAssignment> assignments;
        assignments.reserve(resp.assignments.size());
        for (const WireAssignment& w : resp.assignments) {
          assignments.push_back(from_wire(w));
        }
        done(Status::kOk, std::move(assignments));
      });
}

void RpcPlanner::flow_complete(net::NodeId client, sdn::Cookie cookie) {
  transport_->call(client, controller_, Method::kFlowDropped,
                   FlowDroppedReq{cookie}.encode(), nullptr);
}

}  // namespace mayflower::fs
