#include "fs/flowserver_service.hpp"

#include "common/assert.hpp"
#include "fs/planner.hpp"

namespace mayflower::fs {
namespace {

WireAssignment to_wire(const flowserver::ReadAssignment& a) {
  WireAssignment w;
  w.cookie = a.cookie;
  w.replica = a.replica;
  w.path_nodes = a.path.nodes;
  w.path_links = a.path.links;
  w.bytes = a.bytes;
  w.est_bw_bps = a.est_bw_bps;
  return w;
}

policy::ReadAssignment from_wire(const WireAssignment& w) {
  policy::ReadAssignment a;
  a.cookie = w.cookie;
  a.replica = w.replica;
  a.path.nodes = w.path_nodes;
  a.path.links = w.path_links;
  a.bytes = w.bytes;
  a.est_bw_bps = w.est_bw_bps;
  return a;
}

// A plannable chain: at least one hop, positive size, consecutive hosts
// distinct (enforced here so malformed requests surface as kBadRequest
// instead of tripping the planner's asserts).
bool valid_chain(const PlanWriteReq& req) {
  if (req.chain.size() < 2 || req.bytes <= 0.0) return false;
  for (std::size_t i = 0; i + 1 < req.chain.size(); ++i) {
    if (req.chain[i] == req.chain[i + 1]) return false;
  }
  return true;
}

}  // namespace

FlowserverService::FlowserverService(Transport& transport, net::NodeId node,
                                     flowserver::Flowserver& server)
    : transport_(&transport), node_(node), server_(&server) {
  transport_->bind(node_, [this](net::NodeId from, Method method,
                                 const Bytes& request, ResponseFn reply) {
    handle(from, method, request, std::move(reply));
  });
}

FlowserverService::~FlowserverService() { transport_->unbind(node_); }

void FlowserverService::handle(net::NodeId /*from*/, Method method,
                               const Bytes& request, ResponseFn reply) {
  switch (method) {
    case Method::kSelectReplicas: {
      Reader r(request);
      const SelectReplicasReq req = SelectReplicasReq::decode(r);
      if (!r.ok() || req.replicas.empty() || req.bytes <= 0.0) {
        reply(Status::kBadRequest, {});
        return;
      }
      ++requests_;
      const auto assignments =
          server_->select_for_read(req.client, req.replicas, req.bytes);
      if (assignments.empty()) {
        // Failures cut off every listed replica; the client backs off and
        // refetches its metadata (the mapping may have moved meanwhile).
        reply(Status::kUnavailable, {});
        return;
      }
      SelectReplicasResp resp;
      for (const auto& a : assignments) {
        resp.assignments.push_back(to_wire(a));
      }
      reply(Status::kOk, resp.encode());
      return;
    }
    case Method::kSelectReplicasBatch: {
      Reader r(request);
      const SelectReplicasBatchReq req = SelectReplicasBatchReq::decode(r);
      if (!r.ok() || req.reads.empty()) {
        reply(Status::kBadRequest, {});
        return;
      }
      for (const SelectReplicasReq& one : req.reads) {
        if (one.replicas.empty() || one.bytes <= 0.0) {
          reply(Status::kBadRequest, {});
          return;
        }
      }
      requests_ += req.reads.size();
      // Enqueue every read, then drain: the whole batch is decided against
      // one view snapshot, with one bulk path install per drained batch.
      // Admission callbacks run inside enqueue/drain (never later), so the
      // response is complete before the reply goes out.
      SelectReplicasBatchResp resp;
      resp.plans.resize(req.reads.size());
      std::size_t delivered = 0;
      for (std::size_t i = 0; i < req.reads.size(); ++i) {
        const SelectReplicasReq& one = req.reads[i];
        server_->enqueue_read(
            one.client, one.replicas, one.bytes,
            [&resp, &delivered,
             i](std::vector<flowserver::ReadAssignment> plan) {
              for (const auto& a : plan) {
                resp.plans[i].assignments.push_back(to_wire(a));
              }
              ++delivered;
            });
      }
      server_->drain();  // flush the final partial batch
      MAYFLOWER_ASSERT_MSG(delivered == req.reads.size(),
                           "batched admission left requests undecided");
      reply(Status::kOk, resp.encode());
      return;
    }
    case Method::kPlanWrite: {
      Reader r(request);
      const PlanWriteReq req = PlanWriteReq::decode(r);
      if (!r.ok() || !valid_chain(req)) {
        reply(Status::kBadRequest, {});
        return;
      }
      ++requests_;
      const auto assignments = server_->plan_write(req.chain, req.bytes);
      if (assignments.empty()) {
        // Even the first hop is unreachable; the client degrades to the
        // unplanned upload path and retries planning on its next append.
        reply(Status::kUnavailable, {});
        return;
      }
      SelectReplicasResp resp;
      for (const auto& a : assignments) {
        resp.assignments.push_back(to_wire(a));
      }
      reply(Status::kOk, resp.encode());
      return;
    }
    case Method::kPlanWriteBatch: {
      Reader r(request);
      const PlanWriteBatchReq req = PlanWriteBatchReq::decode(r);
      if (!r.ok() || req.writes.empty()) {
        reply(Status::kBadRequest, {});
        return;
      }
      for (const PlanWriteReq& one : req.writes) {
        if (!valid_chain(one)) {
          reply(Status::kBadRequest, {});
          return;
        }
      }
      requests_ += req.writes.size();
      // Mirror of kSelectReplicasBatch: enqueue every chain, then drain —
      // one view snapshot, one bulk install, callbacks complete before the
      // reply goes out.
      SelectReplicasBatchResp resp;
      resp.plans.resize(req.writes.size());
      std::size_t delivered = 0;
      for (std::size_t i = 0; i < req.writes.size(); ++i) {
        const PlanWriteReq& one = req.writes[i];
        server_->enqueue_write(
            one.chain, one.bytes,
            [&resp, &delivered,
             i](std::vector<flowserver::ReadAssignment> plan) {
              for (const auto& a : plan) {
                resp.plans[i].assignments.push_back(to_wire(a));
              }
              ++delivered;
            });
      }
      server_->drain();  // flush the final partial batch
      MAYFLOWER_ASSERT_MSG(delivered == req.writes.size(),
                           "batched write admission left requests undecided");
      reply(Status::kOk, resp.encode());
      return;
    }
    case Method::kFlowDropped: {
      Reader r(request);
      const FlowDroppedReq req = FlowDroppedReq::decode(r);
      if (r.ok()) server_->flow_dropped(req.cookie);
      reply(Status::kOk, {});
      return;
    }
    default:
      reply(Status::kBadRequest, {});
  }
}

void RpcPlanner::plan(net::NodeId client,
                      const std::vector<net::NodeId>& replicas, double bytes,
                      PlanFn done) {
  SelectReplicasReq req;
  req.client = client;
  req.replicas = replicas;
  req.bytes = bytes;
  transport_->call(
      client, controller_, Method::kSelectReplicas, req.encode(),
      [done = std::move(done)](Status status, Bytes payload) {
        if (status != Status::kOk) {
          done(status, {});
          return;
        }
        Reader r(payload);
        const SelectReplicasResp resp = SelectReplicasResp::decode(r);
        if (!r.ok()) {
          done(Status::kBadRequest, {});
          return;
        }
        std::vector<policy::ReadAssignment> assignments;
        assignments.reserve(resp.assignments.size());
        for (const WireAssignment& w : resp.assignments) {
          assignments.push_back(from_wire(w));
        }
        done(Status::kOk, std::move(assignments));
      });
}

void RpcPlanner::plan_batch(net::NodeId client,
                            const std::vector<SelectReplicasReq>& reads,
                            BatchPlanFn done) {
  SelectReplicasBatchReq req;
  req.reads = reads;
  transport_->call(
      client, controller_, Method::kSelectReplicasBatch, req.encode(),
      [n = reads.size(), done = std::move(done)](Status status,
                                                 Bytes payload) {
        if (status != Status::kOk) {
          done(status, {});
          return;
        }
        Reader r(payload);
        const SelectReplicasBatchResp resp =
            SelectReplicasBatchResp::decode(r);
        if (!r.ok() || resp.plans.size() != n) {
          done(Status::kBadRequest, {});
          return;
        }
        std::vector<std::vector<policy::ReadAssignment>> plans;
        plans.reserve(resp.plans.size());
        for (const SelectReplicasResp& one : resp.plans) {
          std::vector<policy::ReadAssignment> assignments;
          assignments.reserve(one.assignments.size());
          for (const WireAssignment& w : one.assignments) {
            assignments.push_back(from_wire(w));
          }
          plans.push_back(std::move(assignments));
        }
        done(Status::kOk, std::move(plans));
      });
}

void RpcPlanner::plan_write(net::NodeId client,
                            const std::vector<net::NodeId>& chain,
                            double bytes, PlanFn done) {
  PlanWriteReq req;
  req.chain = chain;
  req.bytes = bytes;
  transport_->call(
      client, controller_, Method::kPlanWrite, req.encode(),
      [done = std::move(done)](Status status, Bytes payload) {
        if (status != Status::kOk) {
          done(status, {});
          return;
        }
        Reader r(payload);
        const SelectReplicasResp resp = SelectReplicasResp::decode(r);
        if (!r.ok()) {
          done(Status::kBadRequest, {});
          return;
        }
        std::vector<policy::ReadAssignment> assignments;
        assignments.reserve(resp.assignments.size());
        for (const WireAssignment& w : resp.assignments) {
          assignments.push_back(from_wire(w));
        }
        done(Status::kOk, std::move(assignments));
      });
}

void RpcPlanner::plan_write_batch(net::NodeId client,
                                  const std::vector<PlanWriteReq>& writes,
                                  BatchPlanFn done) {
  PlanWriteBatchReq req;
  req.writes = writes;
  transport_->call(
      client, controller_, Method::kPlanWriteBatch, req.encode(),
      [n = writes.size(), done = std::move(done)](Status status,
                                                  Bytes payload) {
        if (status != Status::kOk) {
          done(status, {});
          return;
        }
        Reader r(payload);
        const SelectReplicasBatchResp resp =
            SelectReplicasBatchResp::decode(r);
        if (!r.ok() || resp.plans.size() != n) {
          done(Status::kBadRequest, {});
          return;
        }
        std::vector<std::vector<policy::ReadAssignment>> plans;
        plans.reserve(resp.plans.size());
        for (const SelectReplicasResp& one : resp.plans) {
          std::vector<policy::ReadAssignment> assignments;
          assignments.reserve(one.assignments.size());
          for (const WireAssignment& w : one.assignments) {
            assignments.push_back(from_wire(w));
          }
          plans.push_back(std::move(assignments));
        }
        done(Status::kOk, std::move(plans));
      });
}

void RpcPlanner::flow_complete(net::NodeId client, sdn::Cookie cookie) {
  transport_->call(client, controller_, Method::kFlowDropped,
                   FlowDroppedReq{cookie}.encode(), nullptr);
}

}  // namespace mayflower::fs
