// RPC front-end for the Flowserver (§5): "The Flowserver implementation is
// not tied to Mayflower, and can be integrated with any distributed
// application through its RPC framework." This binds the select/drop
// methods to a controller node on the cluster transport and translates
// between wire assignments and the in-process Flowserver API.
#pragma once

#include "flowserver/flowserver.hpp"
#include "fs/rpc/transport.hpp"

namespace mayflower::fs {

class FlowserverService {
 public:
  FlowserverService(Transport& transport, net::NodeId node,
                    flowserver::Flowserver& server);
  ~FlowserverService();

  FlowserverService(const FlowserverService&) = delete;
  FlowserverService& operator=(const FlowserverService&) = delete;

  net::NodeId node() const { return node_; }
  std::uint64_t requests_served() const { return requests_; }

 private:
  void handle(net::NodeId from, Method method, const Bytes& request,
              ResponseFn reply);

  Transport* transport_;
  net::NodeId node_;
  flowserver::Flowserver* server_;
  std::uint64_t requests_ = 0;
};

}  // namespace mayflower::fs
