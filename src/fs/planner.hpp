// Read planning abstraction for the client library.
//
// The paper's Flowserver is an RPC service inside the SDN controller (§5):
// clients send (source/destination addresses, data size) and receive a list
// of replicas with the data size to fetch from each. RpcPlanner reproduces
// that hop — selections cost a real round trip — while LocalSchemePlanner
// wraps any in-process policy::Scheme (the ECMP baselines, unit tests).
#pragma once

#include <functional>
#include <memory>

#include "fs/rpc/transport.hpp"
#include "policy/scheme.hpp"

namespace mayflower::fs {

class ReadPlanner {
 public:
  using PlanFn =
      std::function<void(Status, std::vector<policy::ReadAssignment>)>;

  virtual ~ReadPlanner() = default;

  // Plans a read of `bytes` for `client`; delivers the subflow assignments
  // (paths pre-installed in the switches) via `done`.
  virtual void plan(net::NodeId client,
                    const std::vector<net::NodeId>& replicas, double bytes,
                    PlanFn done) = 0;

  // Completion/abort notification for one assignment's cookie.
  virtual void flow_complete(net::NodeId client, sdn::Cookie cookie) = 0;
};

// Synchronous adapter over an in-process scheme.
class LocalSchemePlanner final : public ReadPlanner {
 public:
  explicit LocalSchemePlanner(policy::Scheme& scheme) : scheme_(&scheme) {}

  void plan(net::NodeId client, const std::vector<net::NodeId>& replicas,
            double bytes, PlanFn done) override {
    auto plan = scheme_->plan_read(client, replicas, bytes);
    if (plan.empty()) {
      // No replica is reachable over a live path right now.
      done(Status::kUnavailable, {});
      return;
    }
    done(Status::kOk, std::move(plan));
  }

  void flow_complete(net::NodeId /*client*/, sdn::Cookie cookie) override {
    scheme_->on_flow_complete(cookie);
  }

 private:
  policy::Scheme* scheme_;
};

// Write-chain planning abstraction (the kPlanWrite half of the co-design):
// plans the replication chain of one append as jointly-scheduled hop flows.
// The plan holds one assignment per routed hop in chain order (path
// chain[i] -> chain[i+1], est_bw reporting the chain bottleneck); fewer
// assignments than hops means the chain was truncated at the first
// unreachable host and the tail degrades to the settled-relay contract.
class WritePlanner {
 public:
  using PlanFn = ReadPlanner::PlanFn;

  virtual ~WritePlanner() = default;

  // Plans the chain `chain` (writer first, then primary and secondaries in
  // relay order; consecutive hosts distinct) moving `bytes`.
  virtual void plan_write(net::NodeId client,
                          const std::vector<net::NodeId>& chain, double bytes,
                          PlanFn done) = 0;

  // Completion/abort notification for one hop's cookie.
  virtual void flow_complete(net::NodeId client, sdn::Cookie cookie) = 0;
};

// In-process write planner over the Flowserver itself (non-RPC clusters,
// tests, benches).
class LocalWritePlanner final : public WritePlanner {
 public:
  explicit LocalWritePlanner(flowserver::Flowserver& server)
      : server_(&server) {}

  void plan_write(net::NodeId /*client*/,
                  const std::vector<net::NodeId>& chain, double bytes,
                  PlanFn done) override {
    auto plan = server_->plan_write(chain, bytes);
    if (plan.empty()) {
      done(Status::kUnavailable, {});
      return;
    }
    done(Status::kOk, std::move(plan));
  }

  void flow_complete(net::NodeId /*client*/, sdn::Cookie cookie) override {
    server_->flow_dropped(cookie);
  }

 private:
  flowserver::Flowserver* server_;
};

// Remote planner: selection requests travel as RPCs to the Flowserver
// service on the controller node; drops are fire-and-forget. One instance
// serves both roles — read plans (kSelectReplicas) and write-chain plans
// (kPlanWrite) talk to the same controller.
class RpcPlanner final : public ReadPlanner, public WritePlanner {
 public:
  using PlanFn = ReadPlanner::PlanFn;
  using BatchPlanFn = std::function<void(
      Status, std::vector<std::vector<policy::ReadAssignment>>)>;

  RpcPlanner(Transport& transport, net::NodeId controller)
      : transport_(&transport), controller_(controller) {}

  void plan(net::NodeId client, const std::vector<net::NodeId>& replicas,
            double bytes, PlanFn done) override;

  // Ships `reads` as ONE kSelectReplicasBatch RPC: the Flowserver admits
  // the whole batch against a single view snapshot and plans[i] answers
  // reads[i] (empty = that read is unavailable right now).
  void plan_batch(net::NodeId client,
                  const std::vector<SelectReplicasReq>& reads,
                  BatchPlanFn done);

  void plan_write(net::NodeId client, const std::vector<net::NodeId>& chain,
                  double bytes, PlanFn done) override;

  // Batched variant: one kPlanWriteBatch RPC, one decision batch, one
  // snapshot; plans[i] answers writes[i].
  void plan_write_batch(net::NodeId client,
                        const std::vector<PlanWriteReq>& writes,
                        BatchPlanFn done);

  void flow_complete(net::NodeId client, sdn::Cookie cookie) override;

 private:
  Transport* transport_;
  net::NodeId controller_;
};

// Client-side replica policy composed with a downstream planner: used for
// "HDFS-Mayflower", where the filesystem picks the replica (rack-aware) and
// only the path is delegated to the Flowserver. The policy decides against
// this planner's own view of the fabric (liveness + capacities).
class ReplicaFilteredPlanner final : public ReadPlanner {
 public:
  ReplicaFilteredPlanner(policy::ReplicaPolicy& policy, ReadPlanner& base,
                         sdn::SdnFabric& fabric)
      : policy_(&policy), base_(&base), views_(fabric) {}

  void plan(net::NodeId client, const std::vector<net::NodeId>& replicas,
            double bytes, PlanFn done) override {
    const net::NodeId choice =
        policy_->choose(client, replicas, views_.view());
    base_->plan(client, {choice}, bytes, std::move(done));
  }

  void flow_complete(net::NodeId client, sdn::Cookie cookie) override {
    base_->flow_complete(client, cookie);
  }

 private:
  policy::ReplicaPolicy* policy_;
  ReadPlanner* base_;
  sdn::ViewBuilder views_;
};

}  // namespace mayflower::fs
