// Compact binary serialization for RPC messages — the project's stand-in
// for Apache Thrift (§5). Everything crossing the simulated wire is really
// encoded to bytes and decoded back, so message-shape bugs surface in tests
// exactly as they would in a deployment.
//
// Encoding: little-endian fixed-width scalars, LEB128 varints for lengths,
// length-prefixed strings/blobs. Readers are bounds-checked and never throw;
// failure is sticky (ok() goes false and stays false).
#pragma once

#include <cstdint>
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

namespace mayflower::fs {

using Bytes = std::string;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u16(std::uint16_t v) { fixed(&v, sizeof v); }
  void u32(std::uint32_t v) { fixed(&v, sizeof v); }
  void u64(std::uint64_t v) { fixed(&v, sizeof v); }
  void f64(double v) { fixed(&v, sizeof v); }

  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
  }

  void str(const std::string& s) {
    varint(s.size());
    out_.append(s);
  }

  void boolean(bool b) { u8(b ? 1 : 0); }

  template <typename T, typename Fn>
  void list(const std::vector<T>& items, Fn&& encode_one) {
    varint(items.size());
    for (const T& item : items) encode_one(*this, item);
  }

  const Bytes& bytes() const& { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  void fixed(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(&data) {}

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_->size(); }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    fixed(&v, sizeof v);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    fixed(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    fixed(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    fixed(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0;
    fixed(&v, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (ok_ && shift <= 63) {
      if (pos_ >= data_->size()) {
        ok_ = false;
        return 0;
      }
      const auto byte = static_cast<std::uint8_t>((*data_)[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    ok_ = false;
    return 0;
  }

  std::string str() {
    const std::uint64_t n = varint();
    if (!ok_ || pos_ + n > data_->size()) {
      ok_ = false;
      return {};
    }
    std::string s = data_->substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool boolean() { return u8() != 0; }

  template <typename T, typename Fn>
  std::vector<T> list(Fn&& decode_one) {
    const std::uint64_t n = varint();
    std::vector<T> items;
    // Cap reservation: a corrupt count must not allocate unbounded memory.
    items.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 4096)));
    for (std::uint64_t i = 0; i < n && ok_; ++i) {
      items.push_back(decode_one(*this));
    }
    return items;
  }

 private:
  void fixed(void* p, std::size_t n) {
    if (!ok_ || pos_ + n > data_->size()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_->data() + pos_, n);
    pos_ += n;
  }

  const Bytes* data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mayflower::fs
