#include "fs/rpc/transport.hpp"

#include "common/assert.hpp"

namespace mayflower::fs {

SimTransport::SimTransport(sim::EventQueue& events,
                           sim::SimTime one_way_latency)
    : events_(&events), latency_(one_way_latency) {}

void SimTransport::bind(net::NodeId node, HandlerFn handler) {
  MAYFLOWER_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void SimTransport::unbind(net::NodeId node) { handlers_.erase(node); }

void SimTransport::call(net::NodeId from, net::NodeId to, Method method,
                        Bytes request, ResponseFn on_response) {
  ++calls_;
  events_->schedule_in(
      latency_,
      [this, from, to, method, request = std::move(request),
       on_response = std::move(on_response)]() mutable {
        const auto it = handlers_.find(to);
        if (it == handlers_.end()) {
          if (on_response) {
            events_->schedule_in(latency_,
                                 [on_response = std::move(on_response)] {
                                   on_response(Status::kUnavailable, Bytes{});
                                 });
          }
          return;
        }
        // The reply path schedules its own latency leg back to the caller.
        auto reply = [this, on_response = std::move(on_response)](
                         Status status, Bytes payload) mutable {
          if (!on_response) return;
          events_->schedule_in(
              latency_, [status, payload = std::move(payload),
                         on_response = std::move(on_response)]() mutable {
                on_response(status, std::move(payload));
              });
        };
        it->second(from, method, request, std::move(reply));
      });
}

void LoopbackTransport::bind(net::NodeId node, HandlerFn handler) {
  handlers_[node] = std::move(handler);
}

void LoopbackTransport::unbind(net::NodeId node) { handlers_.erase(node); }

void LoopbackTransport::call(net::NodeId from, net::NodeId to, Method method,
                             Bytes request, ResponseFn on_response) {
  const auto it = handlers_.find(to);
  if (it == handlers_.end()) {
    if (on_response) on_response(Status::kUnavailable, Bytes{});
    return;
  }
  it->second(from, method, request,
             [&on_response](Status status, Bytes payload) {
               if (on_response) on_response(status, std::move(payload));
             });
}

}  // namespace mayflower::fs
