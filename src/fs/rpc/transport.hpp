// RPC transport abstraction.
//
// Servers bind a handler per node; clients call (from, to, method, bytes) and
// receive an asynchronous (status, bytes) response. The filesystem code never
// sees the simulator — SimTransport delivers over the shared event queue with
// a configurable control-message latency, and a synchronous LoopbackTransport
// backs unit tests.
//
// Bulk data intentionally does NOT ride the RPC channel: chunk payload bytes
// travel as flows through the SDN fabric (that contention is the paper's
// subject); RPCs carry only descriptors and metadata.
#pragma once

#include <functional>
#include <unordered_map>

#include "fs/rpc/messages.hpp"
#include "sim/event_queue.hpp"

namespace mayflower::fs {

using ResponseFn = std::function<void(Status, Bytes)>;
// Handler receives (peer, method, request, reply). `reply` must be invoked
// exactly once (possibly asynchronously).
using HandlerFn =
    std::function<void(net::NodeId from, Method method, const Bytes& request,
                       ResponseFn reply)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual void bind(net::NodeId node, HandlerFn handler) = 0;
  virtual void unbind(net::NodeId node) = 0;

  virtual void call(net::NodeId from, net::NodeId to, Method method,
                    Bytes request, ResponseFn on_response) = 0;
};

// Event-queue transport with symmetric one-way latency. Calls to nodes with
// no bound handler fail with kUnavailable after one round trip.
class SimTransport final : public Transport {
 public:
  SimTransport(sim::EventQueue& events,
               sim::SimTime one_way_latency = sim::SimTime::from_micros(200));

  void bind(net::NodeId node, HandlerFn handler) override;
  void unbind(net::NodeId node) override;
  void call(net::NodeId from, net::NodeId to, Method method, Bytes request,
            ResponseFn on_response) override;

  std::uint64_t calls() const { return calls_; }

 private:
  sim::EventQueue* events_;
  sim::SimTime latency_;
  std::unordered_map<net::NodeId, HandlerFn> handlers_;
  std::uint64_t calls_ = 0;
};

// Synchronous in-place delivery for unit tests.
class LoopbackTransport final : public Transport {
 public:
  void bind(net::NodeId node, HandlerFn handler) override;
  void unbind(net::NodeId node) override;
  void call(net::NodeId from, net::NodeId to, Method method, Bytes request,
            ResponseFn on_response) override;

 private:
  std::unordered_map<net::NodeId, HandlerFn> handlers_;
};

}  // namespace mayflower::fs
