#include "fs/rpc/messages.hpp"

#include "common/assert.hpp"

namespace mayflower::fs {
namespace {

void encode_uuid(Writer& w, const Uuid& u) {
  w.str(std::string(reinterpret_cast<const char*>(u.bytes().data()),
                    u.bytes().size()));
}

Uuid decode_uuid(Reader& r) {
  const std::string raw = r.str();
  if (raw.size() != 16) return {};
  // Round-trip through the canonical text form to reuse validation-free
  // byte loading.
  Uuid u;
  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < 16; ++i) {
    bytes[i] = static_cast<std::uint8_t>(raw[i]);
  }
  // Uuid has no raw-bytes setter by design; reconstruct via text.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string text;
  for (std::size_t i = 0; i < 16; ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) text.push_back('-');
    text.push_back(kHex[bytes[i] >> 4]);
    text.push_back(kHex[bytes[i] & 0x0f]);
  }
  return Uuid::parse(text);
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::kCreateFile: return "CreateFile";
    case Method::kDeleteFile: return "DeleteFile";
    case Method::kLookupFile: return "LookupFile";
    case Method::kListFiles: return "ListFiles";
    case Method::kAppend: return "Append";
    case Method::kAppendRelay: return "AppendRelay";
    case Method::kReadFile: return "ReadFile";
    case Method::kScanFiles: return "ScanFiles";
    case Method::kCreateReplica: return "CreateReplica";
    case Method::kDropReplica: return "DropReplica";
    case Method::kReportSize: return "ReportSize";
    case Method::kSelectReplicas: return "SelectReplicas";
    case Method::kFlowDropped: return "FlowDropped";
    case Method::kPing: return "Ping";
    case Method::kReplicateTo: return "ReplicateTo";
    case Method::kInstallReplica: return "InstallReplica";
    case Method::kUpdateReplicas: return "UpdateReplicas";
    case Method::kSelectReplicasBatch: return "SelectReplicasBatch";
    case Method::kGetShardMap: return "GetShardMap";
    case Method::kPlanWrite: return "PlanWrite";
    case Method::kPlanWriteBatch: return "PlanWriteBatch";
  }
  return "?";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not found";
    case Status::kAlreadyExists: return "already exists";
    case Status::kBadRequest: return "bad request";
    case Status::kUnavailable: return "unavailable";
    case Status::kIoError: return "io error";
    case Status::kNotPrimary: return "not primary";
    case Status::kWrongShard: return "wrong shard";
  }
  return "?";
}

std::uint64_t FileInfo::last_chunk_index() const {
  MAYFLOWER_ASSERT(chunk_size > 0);
  return size == 0 ? 0 : (size - 1) / chunk_size;
}

std::uint64_t FileInfo::last_chunk_offset() const {
  return last_chunk_index() * chunk_size;
}

void FileInfo::encode(Writer& w) const {
  encode_uuid(w, uuid);
  w.str(name);
  w.u64(size);
  w.u64(chunk_size);
  w.list(replicas,
         [](Writer& writer, net::NodeId n) { writer.u32(n); });
}

FileInfo FileInfo::decode(Reader& r) {
  FileInfo info;
  info.uuid = decode_uuid(r);
  info.name = r.str();
  info.size = r.u64();
  info.chunk_size = r.u64();
  info.replicas =
      r.list<net::NodeId>([](Reader& reader) { return reader.u32(); });
  return info;
}

Bytes CreateFileReq::encode() const {
  Writer w;
  w.str(name);
  w.u32(replication);
  w.u32(client);
  return w.take();
}

CreateFileReq CreateFileReq::decode(Reader& r) {
  CreateFileReq req;
  req.name = r.str();
  req.replication = r.u32();
  req.client = r.u32();
  return req;
}

Bytes FileInfoResp::encode() const {
  Writer w;
  info.encode(w);
  return w.take();
}

FileInfoResp FileInfoResp::decode(Reader& r) {
  FileInfoResp resp;
  resp.info = FileInfo::decode(r);
  return resp;
}

Bytes NameReq::encode() const {
  Writer w;
  w.str(name);
  return w.take();
}

NameReq NameReq::decode(Reader& r) {
  NameReq req;
  req.name = r.str();
  return req;
}

Bytes ListFilesResp::encode() const {
  Writer w;
  w.list(names,
         [](Writer& writer, const std::string& n) { writer.str(n); });
  return w.take();
}

ListFilesResp ListFilesResp::decode(Reader& r) {
  ListFilesResp resp;
  resp.names =
      r.list<std::string>([](Reader& reader) { return reader.str(); });
  return resp;
}

namespace {

void encode_u32_list(Writer& w, const std::vector<std::uint32_t>& v) {
  w.list(v, [](Writer& writer, std::uint32_t x) { writer.u32(x); });
}

std::vector<std::uint32_t> decode_u32_list(Reader& r) {
  return r.list<std::uint32_t>([](Reader& reader) { return reader.u32(); });
}

void encode_assignment(Writer& w, const WireAssignment& a) {
  w.u64(a.cookie);
  w.u32(a.replica);
  encode_u32_list(w, a.path_nodes);
  encode_u32_list(w, a.path_links);
  w.f64(a.bytes);
  w.f64(a.est_bw_bps);
}

WireAssignment decode_assignment(Reader& r) {
  WireAssignment a;
  a.cookie = r.u64();
  a.replica = r.u32();
  a.path_nodes = decode_u32_list(r);
  a.path_links = decode_u32_list(r);
  a.bytes = r.f64();
  a.est_bw_bps = r.f64();
  return a;
}

void encode_assignment_list(Writer& w,
                            const std::vector<WireAssignment>& list) {
  w.list(list, [](Writer& writer, const WireAssignment& a) {
    encode_assignment(writer, a);
  });
}

std::vector<WireAssignment> decode_assignment_list(Reader& r) {
  return r.list<WireAssignment>(
      [](Reader& reader) { return decode_assignment(reader); });
}

}  // namespace

Bytes AppendReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  data.encode(w);
  encode_assignment_list(w, chain);
  return w.take();
}

AppendReq AppendReq::decode(Reader& r) {
  AppendReq req;
  req.file = decode_uuid(r);
  req.data = ExtentList::decode(r);
  req.chain = decode_assignment_list(r);
  return req;
}

Bytes AppendResp::encode() const {
  Writer w;
  w.u64(offset);
  w.u64(new_size);
  return w.take();
}

AppendResp AppendResp::decode(Reader& r) {
  AppendResp resp;
  resp.offset = r.u64();
  resp.new_size = r.u64();
  return resp;
}

Bytes AppendRelayReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  w.u64(offset);
  data.encode(w);
  return w.take();
}

AppendRelayReq AppendRelayReq::decode(Reader& r) {
  AppendRelayReq req;
  req.file = decode_uuid(r);
  req.offset = r.u64();
  req.data = ExtentList::decode(r);
  return req;
}

Bytes ReadReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  w.u64(offset);
  w.u64(length);
  return w.take();
}

ReadReq ReadReq::decode(Reader& r) {
  ReadReq req;
  req.file = decode_uuid(r);
  req.offset = r.u64();
  req.length = r.u64();
  return req;
}

Bytes ReadResp::encode() const {
  Writer w;
  data.encode(w);
  w.u64(file_size);
  return w.take();
}

ReadResp ReadResp::decode(Reader& r) {
  ReadResp resp;
  resp.data = ExtentList::decode(r);
  resp.file_size = r.u64();
  return resp;
}

Bytes ScanFilesResp::encode() const {
  Writer w;
  w.list(files,
         [](Writer& writer, const FileInfo& f) { f.encode(writer); });
  return w.take();
}

ScanFilesResp ScanFilesResp::decode(Reader& r) {
  ScanFilesResp resp;
  resp.files =
      r.list<FileInfo>([](Reader& reader) { return FileInfo::decode(reader); });
  return resp;
}

Bytes CreateReplicaReq::encode() const {
  Writer w;
  info.encode(w);
  return w.take();
}

CreateReplicaReq CreateReplicaReq::decode(Reader& r) {
  CreateReplicaReq req;
  req.info = FileInfo::decode(r);
  return req;
}

Bytes DropReplicaReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  return w.take();
}

DropReplicaReq DropReplicaReq::decode(Reader& r) {
  DropReplicaReq req;
  req.file = decode_uuid(r);
  return req;
}

namespace {

void encode_select_req(Writer& w, const SelectReplicasReq& req) {
  w.u32(req.client);
  encode_u32_list(w, req.replicas);
  w.f64(req.bytes);
}

SelectReplicasReq decode_select_req(Reader& r) {
  SelectReplicasReq req;
  req.client = r.u32();
  req.replicas = decode_u32_list(r);
  req.bytes = r.f64();
  return req;
}

}  // namespace

Bytes SelectReplicasReq::encode() const {
  Writer w;
  encode_select_req(w, *this);
  return w.take();
}

SelectReplicasReq SelectReplicasReq::decode(Reader& r) {
  return decode_select_req(r);
}

Bytes SelectReplicasResp::encode() const {
  Writer w;
  w.list(assignments, [](Writer& writer, const WireAssignment& a) {
    encode_assignment(writer, a);
  });
  return w.take();
}

SelectReplicasResp SelectReplicasResp::decode(Reader& r) {
  SelectReplicasResp resp;
  resp.assignments = r.list<WireAssignment>(
      [](Reader& reader) { return decode_assignment(reader); });
  return resp;
}

Bytes SelectReplicasBatchReq::encode() const {
  Writer w;
  w.list(reads, [](Writer& writer, const SelectReplicasReq& one) {
    encode_select_req(writer, one);
  });
  return w.take();
}

SelectReplicasBatchReq SelectReplicasBatchReq::decode(Reader& r) {
  SelectReplicasBatchReq req;
  req.reads = r.list<SelectReplicasReq>(
      [](Reader& reader) { return decode_select_req(reader); });
  return req;
}

Bytes SelectReplicasBatchResp::encode() const {
  Writer w;
  w.list(plans, [](Writer& writer, const SelectReplicasResp& one) {
    writer.list(one.assignments, [](Writer& inner, const WireAssignment& a) {
      encode_assignment(inner, a);
    });
  });
  return w.take();
}

SelectReplicasBatchResp SelectReplicasBatchResp::decode(Reader& r) {
  SelectReplicasBatchResp resp;
  resp.plans = r.list<SelectReplicasResp>([](Reader& reader) {
    SelectReplicasResp one;
    one.assignments = reader.list<WireAssignment>(
        [](Reader& inner) { return decode_assignment(inner); });
    return one;
  });
  return resp;
}

namespace {

void encode_plan_write_req(Writer& w, const PlanWriteReq& req) {
  encode_u32_list(w, req.chain);
  w.f64(req.bytes);
}

PlanWriteReq decode_plan_write_req(Reader& r) {
  PlanWriteReq req;
  req.chain = decode_u32_list(r);
  req.bytes = r.f64();
  return req;
}

}  // namespace

Bytes PlanWriteReq::encode() const {
  Writer w;
  encode_plan_write_req(w, *this);
  return w.take();
}

PlanWriteReq PlanWriteReq::decode(Reader& r) {
  return decode_plan_write_req(r);
}

Bytes PlanWriteBatchReq::encode() const {
  Writer w;
  w.list(writes, [](Writer& writer, const PlanWriteReq& one) {
    encode_plan_write_req(writer, one);
  });
  return w.take();
}

PlanWriteBatchReq PlanWriteBatchReq::decode(Reader& r) {
  PlanWriteBatchReq req;
  req.writes = r.list<PlanWriteReq>(
      [](Reader& reader) { return decode_plan_write_req(reader); });
  return req;
}

Bytes FlowDroppedReq::encode() const {
  Writer w;
  w.u64(cookie);
  return w.take();
}

FlowDroppedReq FlowDroppedReq::decode(Reader& r) {
  FlowDroppedReq req;
  req.cookie = r.u64();
  return req;
}

Bytes ReplicateToReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  w.u32(target);
  encode_u32_list(w, replicas);
  return w.take();
}

ReplicateToReq ReplicateToReq::decode(Reader& r) {
  ReplicateToReq req;
  req.file = decode_uuid(r);
  req.target = r.u32();
  req.replicas = decode_u32_list(r);
  return req;
}

Bytes InstallReplicaReq::encode() const {
  Writer w;
  info.encode(w);
  data.encode(w);
  return w.take();
}

InstallReplicaReq InstallReplicaReq::decode(Reader& r) {
  InstallReplicaReq req;
  req.info = FileInfo::decode(r);
  req.data = ExtentList::decode(r);
  return req;
}

Bytes UpdateReplicasReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  encode_u32_list(w, replicas);
  return w.take();
}

UpdateReplicasReq UpdateReplicasReq::decode(Reader& r) {
  UpdateReplicasReq req;
  req.file = decode_uuid(r);
  req.replicas = decode_u32_list(r);
  return req;
}

Bytes ReportSizeReq::encode() const {
  Writer w;
  encode_uuid(w, file);
  w.u64(size);
  return w.take();
}

ReportSizeReq ReportSizeReq::decode(Reader& r) {
  ReportSizeReq req;
  req.file = decode_uuid(r);
  req.size = r.u64();
  return req;
}

Bytes ShardMapResp::encode() const {
  Writer w;
  map.encode(w);
  return w.take();
}

ShardMapResp ShardMapResp::decode(Reader& r) {
  ShardMapResp resp;
  resp.map = meta::ShardMap::decode(r);
  return resp;
}

}  // namespace mayflower::fs
