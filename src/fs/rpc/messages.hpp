// RPC message schema for the Mayflower filesystem (client <-> nameserver,
// client <-> dataserver, dataserver <-> dataserver).
//
// Every message round-trips through the binary serializer; decode failures
// surface as Status::kBadRequest at the server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/uuid.hpp"
#include "fs/data.hpp"
#include "fs/meta/shard_map.hpp"
#include "fs/rpc/serializer.hpp"
#include "net/topology.hpp"

namespace mayflower::fs {

enum class Method : std::uint16_t {
  kCreateFile = 1,
  kDeleteFile = 2,
  kLookupFile = 3,
  kListFiles = 4,
  kAppend = 5,        // client -> primary dataserver
  kAppendRelay = 6,   // primary -> secondary dataserver
  kReadFile = 7,      // client -> any dataserver
  kScanFiles = 8,     // nameserver -> dataserver (recovery)
  kCreateReplica = 9, // nameserver -> dataserver
  kDropReplica = 10,  // nameserver -> dataserver
  kReportSize = 11,   // primary dataserver -> nameserver (async, advisory)
  kSelectReplicas = 12,  // client -> Flowserver service (controller)
  kFlowDropped = 13,     // client -> Flowserver service (fire-and-forget)
  kPing = 14,            // nameserver -> dataserver (liveness probe)
  kReplicateTo = 15,     // nameserver -> surviving dataserver (recovery)
  kInstallReplica = 16,  // surviving -> replacement dataserver (data + meta)
  kUpdateReplicas = 17,  // nameserver -> dataserver (replica-list refresh)
  kSelectReplicasBatch = 18,  // client -> Flowserver service (batched)
  kGetShardMap = 19,          // client/router -> metadata coordinator
  kPlanWrite = 20,            // client -> Flowserver service (write chain)
  kPlanWriteBatch = 21,       // client -> Flowserver service (batched)
};

const char* to_string(Method method);

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kBadRequest = 3,
  kUnavailable = 4,
  kIoError = 5,
  kNotPrimary = 6,
  // A path-keyed metadata RPC landed on a shard that does not own the path
  // (stale shard map at the caller); refetch the map and retry.
  kWrongShard = 7,
};

const char* to_string(Status status);

// ---------------------------------------------------------------------------

struct FileInfo {
  Uuid uuid;
  std::string name;
  std::uint64_t size = 0;
  std::uint64_t chunk_size = 0;
  // replicas[0] is the primary dataserver (orders appends, §3.3.2).
  std::vector<net::NodeId> replicas;

  net::NodeId primary() const { return replicas.front(); }
  // Index of the chunk holding the last byte (0 when empty).
  std::uint64_t last_chunk_index() const;
  // Byte offset where the last chunk begins.
  std::uint64_t last_chunk_offset() const;

  void encode(Writer& w) const;
  static FileInfo decode(Reader& r);
};

struct CreateFileReq {
  std::string name;
  std::uint32_t replication = 3;
  // The creating client's host: lets the nameserver place the primary near
  // the writer when collaborative placement is enabled.
  net::NodeId client = net::kInvalidNode;
  Bytes encode() const;
  static CreateFileReq decode(Reader& r);
};

struct FileInfoResp {  // CreateFile / Lookup response
  FileInfo info;
  Bytes encode() const;
  static FileInfoResp decode(Reader& r);
};

struct NameReq {  // DeleteFile / Lookup request
  std::string name;
  Bytes encode() const;
  static NameReq decode(Reader& r);
};

struct ListFilesResp {
  std::vector<std::string> names;
  Bytes encode() const;
  static ListFilesResp decode(Reader& r);
};

// One planned flow: `bytes` over the path described by path_nodes/path_links
// under `cookie`. Read plans source it at `replica`; write-chain plans use
// it per hop (replica = the hop's source host, the path runs source -> next
// host in the chain).
struct WireAssignment {
  std::uint64_t cookie = 0;
  net::NodeId replica = net::kInvalidNode;
  std::vector<net::NodeId> path_nodes;
  std::vector<net::LinkId> path_links;
  double bytes = 0.0;
  double est_bw_bps = 0.0;
};

struct AppendReq {
  Uuid file;
  ExtentList data;
  // Flowserver-planned relay hops (primary -> secondary -> secondary, in
  // relay order), carried by the client from its kPlanWrite response so the
  // primary pipelines the relay without its own planning round trip. Empty:
  // legacy fan-out relay.
  std::vector<WireAssignment> chain;
  Bytes encode() const;
  static AppendReq decode(Reader& r);
};

struct AppendResp {
  std::uint64_t offset = 0;    // where the append landed
  std::uint64_t new_size = 0;  // file size afterwards
  Bytes encode() const;
  static AppendResp decode(Reader& r);
};

struct AppendRelayReq {
  Uuid file;
  std::uint64_t offset = 0;
  ExtentList data;
  Bytes encode() const;
  static AppendRelayReq decode(Reader& r);
};

struct ReadReq {
  Uuid file;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  Bytes encode() const;
  static ReadReq decode(Reader& r);
};

struct ReadResp {
  ExtentList data;
  // Current file size, piggybacked on every read so clients discover
  // appends without asking the nameserver (§3.3).
  std::uint64_t file_size = 0;
  Bytes encode() const;
  static ReadResp decode(Reader& r);
};

struct ScanFilesResp {
  std::vector<FileInfo> files;  // this dataserver's local view
  Bytes encode() const;
  static ScanFilesResp decode(Reader& r);
};

struct CreateReplicaReq {
  FileInfo info;
  Bytes encode() const;
  static CreateReplicaReq decode(Reader& r);
};

struct DropReplicaReq {
  Uuid file;
  Bytes encode() const;
  static DropReplicaReq decode(Reader& r);
};

// Client -> Flowserver (§5): "accepts a list of source/destination IP
// addresses, port numbers, and the size of the data to be transferred" and
// "returns a list of replicas and the corresponding data size to be
// downloaded from those replicas". Our addressing is NodeIds; the cookie
// stands in for the flow's 5-tuple.
struct SelectReplicasReq {
  net::NodeId client = net::kInvalidNode;
  std::vector<net::NodeId> replicas;
  double bytes = 0.0;
  Bytes encode() const;
  static SelectReplicasReq decode(Reader& r);
};

struct SelectReplicasResp {
  std::vector<WireAssignment> assignments;
  Bytes encode() const;
  static SelectReplicasResp decode(Reader& r);
};

struct FlowDroppedReq {
  std::uint64_t cookie = 0;
  Bytes encode() const;
  static FlowDroppedReq decode(Reader& r);
};

// Batched admission (§5 co-design): many outstanding reads travel as ONE
// request and the Flowserver decides them as one batch against a single
// network snapshot, amortizing the view build and the trace/metrics flush.
struct SelectReplicasBatchReq {
  std::vector<SelectReplicasReq> reads;
  Bytes encode() const;
  static SelectReplicasBatchReq decode(Reader& r);
};

struct SelectReplicasBatchResp {
  // plans[i] answers reads[i]; an empty assignment list means that read had
  // no reachable replica (per-read kUnavailable inside a kOk batch).
  std::vector<SelectReplicasResp> plans;
  Bytes encode() const;
  static SelectReplicasBatchResp decode(Reader& r);
};

// Client -> Flowserver: route one replication chain. `chain` is the host
// sequence the bytes traverse (writer, primary, secondaries in relay
// order; consecutive hosts distinct). The response reuses
// SelectReplicasResp: one assignment per routed hop in chain order, every
// hop SETBW'd to the chain bottleneck; fewer assignments than hops means
// the chain was truncated at the first unreachable hop.
struct PlanWriteReq {
  std::vector<net::NodeId> chain;
  double bytes = 0.0;
  Bytes encode() const;
  static PlanWriteReq decode(Reader& r);
};

// Batched variant: one request, one decision batch, one snapshot — the
// write-side mirror of kSelectReplicasBatch (answered with
// SelectReplicasBatchResp, plans[i] answering writes[i]).
struct PlanWriteBatchReq {
  std::vector<PlanWriteReq> writes;
  Bytes encode() const;
  static PlanWriteBatchReq decode(Reader& r);
};

// Nameserver -> surviving dataserver: "copy your replica of `file` to
// `target`, then both of you adopt `replicas` as the new replica list."
// The survivor ships the bytes as a fabric transfer and relays the
// target's install status back.
struct ReplicateToReq {
  Uuid file;
  net::NodeId target = net::kInvalidNode;
  std::vector<net::NodeId> replicas;  // post-recovery list, primary first
  Bytes encode() const;
  static ReplicateToReq decode(Reader& r);
};

// Surviving -> replacement dataserver: full metadata + chunk data of one
// replica (overwrites any stale local copy).
struct InstallReplicaReq {
  FileInfo info;
  ExtentList data;
  Bytes encode() const;
  static InstallReplicaReq decode(Reader& r);
};

// Nameserver -> dataserver: replace only the replica list of a file already
// held locally (size and data stay untouched — unlike kCreateReplica, which
// installs a whole FileInfo and would clobber a survivor's size).
struct UpdateReplicasReq {
  Uuid file;
  std::vector<net::NodeId> replicas;
  Bytes encode() const;
  static UpdateReplicasReq decode(Reader& r);
};

// Advisory: keeps the nameserver's size view fresh so lookups answer "the
// size of a file" (§3.3.1) without a dataserver round trip. Readers never
// depend on it — the authoritative size rides on every read reply.
struct ReportSizeReq {
  Uuid file;
  std::uint64_t size = 0;
  Bytes encode() const;
  static ReportSizeReq decode(Reader& r);
};

// kGetShardMap response payload: the metadata coordinator's current shard
// map (fs/meta/shard_map.hpp), epoch included, so routers can refresh a
// stale cache after a kWrongShard reply.
struct ShardMapResp {
  meta::ShardMap map;
  Bytes encode() const;
  static ShardMapResp decode(Reader& r);
};

}  // namespace mayflower::fs
