#include "fs/nameserver.hpp"

#include <algorithm>
#include <memory>

#include "common/logging.hpp"
#include "workload/catalog.hpp"

namespace mayflower::fs {
namespace {

std::string file_key(const std::string& name) { return "f/" + name; }

// Staged placement under the same fault-domain constraints as
// workload::Catalog::place_replicas, but each stage's winner is chosen by
// the advisor (Flowserver bandwidth ranking) instead of uniformly.
std::vector<net::NodeId> place_collaboratively(
    const net::ThreeTier& tree, std::size_t replication, net::NodeId writer,
    const PlacementAdvisorFn& advisor) {
  std::vector<net::NodeId> replicas;
  std::vector<int> used_racks;

  auto stage = [&](auto&& predicate) -> bool {
    std::vector<net::NodeId> pool;
    for (const net::NodeId h : tree.hosts) {
      const int rack = tree.rack_of(h);
      if (std::find(used_racks.begin(), used_racks.end(), rack) !=
          used_racks.end()) {
        continue;
      }
      if (predicate(h)) pool.push_back(h);
    }
    if (pool.empty()) return false;
    const net::NodeId pick = advisor(writer, pool);
    replicas.push_back(pick);
    used_racks.push_back(tree.rack_of(pick));
    return true;
  };

  bool ok = stage([](net::NodeId) { return true; });  // primary: any host
  MAYFLOWER_ASSERT(ok);
  const net::NodeId primary = replicas.front();
  if (replication >= 2) {
    ok = stage([&](net::NodeId h) {
      return tree.pod_of(h) == tree.pod_of(primary);
    });
    MAYFLOWER_ASSERT_MSG(ok, "pod too small for the second replica");
  }
  while (replicas.size() < replication) {
    ok = stage([&](net::NodeId h) {
      return tree.pod_of(h) != tree.pod_of(primary);
    });
    if (!ok) ok = stage([](net::NodeId) { return true; });
    MAYFLOWER_ASSERT_MSG(ok, "not enough racks for the replication factor");
  }
  return replicas;
}

}  // namespace

Nameserver::Nameserver(Transport& transport, net::NodeId node,
                       const net::ThreeTier& tree, NameserverConfig config,
                       std::uint64_t seed)
    : transport_(&transport),
      node_(node),
      tree_(&tree),
      config_(std::move(config)),
      rng_(seed) {
  MAYFLOWER_ASSERT(config_.chunk_size > 0);
  MAYFLOWER_ASSERT(!config_.kv_dir.empty());
  const bool ok = kv_.open(config_.kv_dir, config_.kv_options);
  MAYFLOWER_ASSERT_MSG(ok, "nameserver KV store failed to open");
  rebuild_uuid_index();
  transport_->bind(node_, [this](net::NodeId from, Method method,
                                 const Bytes& request, ResponseFn reply) {
    handle(from, method, request, std::move(reply));
  });
}

Nameserver::~Nameserver() { transport_->unbind(node_); }

std::optional<FileInfo> Nameserver::lookup(const std::string& name) const {
  const auto raw = kv_.get(file_key(name));
  if (!raw.has_value()) return std::nullopt;
  Reader r(*raw);
  FileInfo info = FileInfo::decode(r);
  if (!r.ok()) return std::nullopt;
  return info;
}

void Nameserver::persist(const FileInfo& info) {
  Writer w;
  info.encode(w);
  kv_.put(file_key(info.name), w.take());
  uuid_to_name_[info.uuid] = info.name;
}

void Nameserver::rebuild_uuid_index() {
  uuid_to_name_.clear();
  for (const auto& [key, value] : kv_.scan_prefix("f/")) {
    Reader r(value);
    const FileInfo info = FileInfo::decode(r);
    if (r.ok()) uuid_to_name_[info.uuid] = info.name;
  }
}

void Nameserver::handle(net::NodeId /*from*/, Method method,
                        const Bytes& request, ResponseFn reply) {
  switch (method) {
    case Method::kCreateFile:
      handle_create(request, std::move(reply));
      return;
    case Method::kDeleteFile:
      handle_delete(request, std::move(reply));
      return;
    case Method::kLookupFile: {
      Reader r(request);
      const NameReq req = NameReq::decode(r);
      if (!r.ok()) {
        reply(Status::kBadRequest, {});
        return;
      }
      const auto info = lookup(req.name);
      if (!info.has_value()) {
        reply(Status::kNotFound, {});
        return;
      }
      reply(Status::kOk, FileInfoResp{*info}.encode());
      return;
    }
    case Method::kReportSize:
      handle_report_size(request, std::move(reply));
      return;
    case Method::kListFiles: {
      ListFilesResp resp;
      for (const auto& [key, value] : kv_.scan_prefix("f/")) {
        resp.names.push_back(key.substr(2));
      }
      reply(Status::kOk, resp.encode());
      return;
    }
    default:
      reply(Status::kBadRequest, {});
  }
}

void Nameserver::handle_create(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const CreateFileReq req = CreateFileReq::decode(r);
  if (!r.ok() || req.name.empty() || req.replication == 0) {
    reply(Status::kBadRequest, {});
    return;
  }
  if (kv_.contains(file_key(req.name))) {
    reply(Status::kAlreadyExists, {});
    return;
  }

  FileInfo info;
  info.uuid = Uuid::generate(rng_);
  info.name = req.name;
  info.size = 0;
  info.chunk_size = config_.chunk_size;
  if (config_.placement_advisor && req.client != net::kInvalidNode) {
    info.replicas = place_collaboratively(*tree_, req.replication, req.client,
                                          config_.placement_advisor);
  } else {
    info.replicas =
        workload::Catalog::place_replicas(*tree_, req.replication, rng_);
  }
  persist(info);

  // Provision the replica on every chosen dataserver, reply once all ack.
  auto pending = std::make_shared<std::size_t>(info.replicas.size());
  auto failed = std::make_shared<bool>(false);
  auto shared_reply = std::make_shared<ResponseFn>(std::move(reply));
  for (const net::NodeId ds : info.replicas) {
    transport_->call(
        node_, ds, Method::kCreateReplica, CreateReplicaReq{info}.encode(),
        [this, info, pending, failed, shared_reply](Status status, Bytes) {
          if (status != Status::kOk) *failed = true;
          if (--*pending > 0) return;
          if (*failed) {
            // Roll the mapping back; the create is all-or-nothing.
            kv_.erase(file_key(info.name));
            (*shared_reply)(Status::kUnavailable, {});
            return;
          }
          (*shared_reply)(Status::kOk, FileInfoResp{info}.encode());
        });
  }
}

void Nameserver::handle_report_size(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const ReportSizeReq req = ReportSizeReq::decode(r);
  if (!r.ok()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto it = uuid_to_name_.find(req.file);
  if (it == uuid_to_name_.end()) {
    reply(Status::kNotFound, {});
    return;
  }
  auto info = lookup(it->second);
  if (info.has_value() && req.size > info->size) {
    info->size = req.size;
    persist(*info);
  }
  reply(Status::kOk, {});
}

void Nameserver::handle_delete(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const NameReq req = NameReq::decode(r);
  if (!r.ok()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto info = lookup(req.name);
  if (!info.has_value()) {
    reply(Status::kNotFound, {});
    return;
  }
  kv_.erase(file_key(req.name));
  uuid_to_name_.erase(info->uuid);
  for (const net::NodeId ds : info->replicas) {
    transport_->call(node_, ds, Method::kDropReplica,
                     DropReplicaReq{info->uuid}.encode(), nullptr);
  }
  reply(Status::kOk, {});
}

void Nameserver::rebuild_from_dataservers(
    const std::vector<net::NodeId>& dataservers, std::function<void()> done) {
  // "Instead of reading from the possibly stale database, the nameserver
  // rebuilds the mappings by scanning the file metadata stored at the
  // dataservers" (§3.3.1).
  for (const auto& [key, value] : kv_.scan_prefix("f/")) {
    kv_.erase(key);
  }
  uuid_to_name_.clear();
  auto pending = std::make_shared<std::size_t>(dataservers.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const net::NodeId ds : dataservers) {
    transport_->call(
        node_, ds, Method::kScanFiles, Bytes{},
        [this, pending, shared_done](Status status, Bytes payload) {
          if (status == Status::kOk) {
            Reader r(payload);
            const ScanFilesResp resp = ScanFilesResp::decode(r);
            if (r.ok()) {
              for (const FileInfo& info : resp.files) {
                // A dataserver's local size may lag the primary's (relay in
                // flight at crash time): keep the largest observed size.
                const auto existing = lookup(info.name);
                if (!existing.has_value() || existing->size < info.size) {
                  persist(info);
                }
              }
            }
          }
          if (--*pending == 0 && *shared_done) (*shared_done)();
        });
  }
}

}  // namespace mayflower::fs
