#include "fs/nameserver.hpp"

#include <algorithm>
#include <memory>

#include "common/logging.hpp"
#include "workload/catalog.hpp"

namespace mayflower::fs {

using meta::file_key;

Nameserver::Nameserver(Transport& transport, net::NodeId node,
                       const net::ThreeTier& tree, NameserverConfig config,
                       std::uint64_t seed)
    : transport_(&transport),
      node_(node),
      tree_(&tree),
      config_(std::move(config)),
      rng_(seed),
      alive_(std::make_shared<bool>(true)) {
  MAYFLOWER_ASSERT(config_.chunk_size > 0);
  MAYFLOWER_ASSERT(!config_.kv_dir.empty());
  if (config_.op_service_time > sim::SimTime{} || config_.async.enabled) {
    MAYFLOWER_ASSERT_MSG(config_.events != nullptr,
                         "service-time queueing and async commits need an "
                         "event queue in NameserverConfig");
  }
  if (config_.events != nullptr) {
    committer_ =
        std::make_unique<meta::AsyncCommitter>(*config_.events, config_.async);
  }
  const bool ok = kv_.open(config_.kv_dir, config_.kv_options);
  MAYFLOWER_ASSERT_MSG(ok, "nameserver KV store failed to open");
  rebuild_uuid_index();
  bind_handler();
}

Nameserver::~Nameserver() {
  *alive_ = false;
  stop_monitoring();
  transport_->unbind(node_);
}

void Nameserver::bind_handler() {
  transport_->bind(node_, [this](net::NodeId from, Method method,
                                 const Bytes& request, ResponseFn reply) {
    handle(from, method, request, std::move(reply));
  });
}

void Nameserver::detach() {
  if (!attached_) return;
  attached_ = false;
  transport_->unbind(node_);
}

void Nameserver::attach() {
  if (attached_) return;
  attached_ = true;
  busy_until_ = sim::SimTime{};
  bind_handler();
}

std::optional<FileInfo> Nameserver::lookup(const std::string& name) const {
  const auto raw = kv_.get(file_key(name));
  if (!raw.has_value()) return std::nullopt;
  Reader r(*raw);
  FileInfo info = FileInfo::decode(r);
  if (!r.ok()) return std::nullopt;
  return info;
}

void Nameserver::persist(const FileInfo& info) {
  Writer w;
  info.encode(w);
  kv_.put(file_key(info.name), w.take());
  uuid_to_name_[info.uuid] = info.name;
}

void Nameserver::rebuild_uuid_index() {
  uuid_to_name_.clear();
  for (const auto& [key, value] : kv_.scan_prefix("f/")) {
    Reader r(value);
    const FileInfo info = FileInfo::decode(r);
    if (r.ok()) uuid_to_name_[info.uuid] = info.name;
  }
}

void Nameserver::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    metrics_ = nullptr;
    ops_metric_ = probes_metric_ = rereplications_metric_ = obs::Counter{};
    if (committer_) committer_->set_obs(nullptr);
    return;
  }
  metrics_ = &hub->metrics;
  ops_metric_ = hub->metrics.counter(config_.metric_scope + ".ops");
  probes_metric_ = hub->metrics.counter(config_.metric_scope + ".probes_sent");
  rereplications_metric_ =
      hub->metrics.counter(config_.metric_scope + ".rereplications");
  if (committer_ && config_.async.enabled) committer_->set_obs(hub);
}

void Nameserver::handle(net::NodeId /*from*/, Method method,
                        const Bytes& request, ResponseFn reply) {
  if (method == Method::kPing) {
    // Liveness probes bypass the service queue: a loaded shard is slow, not
    // dead, and the plane's failover must not be tripped by queueing delay.
    reply(Status::kOk, {});
    return;
  }
  if (metrics_ != nullptr) {
    // Low-rate control path, so looking the counter up per call is fine and
    // avoids an eager array over every Method a nameserver never serves.
    metrics_
        ->counter(config_.metric_scope + ".rpc." + to_string(method))
        .inc();
  }
  if (config_.op_service_time > sim::SimTime{}) {
    // Modeled metadata CPU: one request at a time, FIFO. The handler runs
    // (and replies) only once the server has "spent" the service time on
    // every earlier request — the single-server throughput wall that the
    // sharded plane removes.
    const sim::SimTime start =
        std::max(config_.events->now(), busy_until_);
    busy_until_ = start + config_.op_service_time;
    auto alive = alive_;
    config_.events->schedule_at(
        busy_until_, [this, alive, method, request,
                      reply = std::move(reply)]() mutable {
          if (!*alive) return;
          if (!attached_) {
            reply(Status::kUnavailable, {});
            return;
          }
          dispatch(method, request, std::move(reply));
        });
    return;
  }
  dispatch(method, request, std::move(reply));
}

void Nameserver::dispatch(Method method, const Bytes& request,
                          ResponseFn reply) {
  ++ops_served_;
  ops_metric_.inc();
  switch (method) {
    case Method::kCreateFile:
      handle_create(request, std::move(reply));
      return;
    case Method::kDeleteFile:
      handle_delete(request, std::move(reply));
      return;
    case Method::kLookupFile: {
      Reader r(request);
      const NameReq req = NameReq::decode(r);
      if (!r.ok()) {
        reply(Status::kBadRequest, {});
        return;
      }
      if (!owns_path(req.name)) {
        ++wrong_shard_refusals_;
        reply(Status::kWrongShard, {});
        return;
      }
      const auto info = lookup(req.name);
      if (!info.has_value()) {
        reply(Status::kNotFound, {});
        return;
      }
      reply(Status::kOk, FileInfoResp{*info}.encode());
      return;
    }
    case Method::kReportSize:
      handle_report_size(request, std::move(reply));
      return;
    case Method::kListFiles: {
      // Serves this server's slice of the namespace; under sharding the
      // router fans the call out and merges.
      ListFilesResp resp;
      for (const auto& [key, value] : kv_.scan_prefix("f/")) {
        resp.names.push_back(key.substr(2));
      }
      reply(Status::kOk, resp.encode());
      return;
    }
    default:
      reply(Status::kBadRequest, {});
  }
}

void Nameserver::provision_replicas(const FileInfo& info,
                                    std::function<void(bool)> done) {
  auto pending = std::make_shared<std::size_t>(info.replicas.size());
  auto failed = std::make_shared<bool>(false);
  auto shared_done =
      std::make_shared<std::function<void(bool)>>(std::move(done));
  for (const net::NodeId ds : info.replicas) {
    transport_->call(node_, ds, Method::kCreateReplica,
                     CreateReplicaReq{info}.encode(),
                     [pending, failed, shared_done](Status status, Bytes) {
                       if (status != Status::kOk) *failed = true;
                       if (--*pending > 0) return;
                       (*shared_done)(!*failed);
                     });
  }
}

void Nameserver::handle_create(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const CreateFileReq req = CreateFileReq::decode(r);
  if (!r.ok() || req.name.empty() || req.replication == 0) {
    reply(Status::kBadRequest, {});
    return;
  }
  if (!owns_path(req.name)) {
    ++wrong_shard_refusals_;
    reply(Status::kWrongShard, {});
    return;
  }
  if (kv_.contains(file_key(req.name))) {
    reply(Status::kAlreadyExists, {});
    return;
  }

  FileInfo info;
  info.uuid = Uuid::generate(rng_);
  info.name = req.name;
  info.size = 0;
  info.chunk_size = config_.chunk_size;
  if (config_.placement_advisor && req.client != net::kInvalidNode) {
    info.replicas = meta::place_collaboratively(
        *tree_, req.replication, req.client, config_.placement_advisor);
  } else {
    info.replicas =
        workload::Catalog::place_replicas(*tree_, req.replication, rng_);
  }
  persist(info);

  if (config_.async.enabled) {
    // AsyncFS-style create: the client gets a provisional handle now and
    // its data flow starts immediately; replica provisioning commits in the
    // background within the committer's ack/retry window. On terminal
    // failure the provisional mapping is reconciled away (loudly), so a
    // client holding the handle sees kNotFound on its next touch and
    // recreates.
    reply(Status::kOk, FileInfoResp{info}.encode());
    committer_->launch(
        "create " + info.name,
        [this, info](std::function<void(bool)> done) {
          provision_replicas(info, std::move(done));
        },
        [this, info] {
          // Committed — unless the file was deleted while the commit was in
          // flight, in which case the freshly installed replicas are
          // orphans to sweep up.
          const auto cur = lookup(info.name);
          if (cur.has_value() && cur->uuid == info.uuid) return;
          for (const net::NodeId ds : info.replicas) {
            transport_->call(node_, ds, Method::kDropReplica,
                             DropReplicaReq{info.uuid}.encode(), nullptr);
          }
        },
        [this, info] {
          const auto cur = lookup(info.name);
          if (!cur.has_value() || cur->uuid != info.uuid) return;
          kv_.erase(file_key(info.name));
          uuid_to_name_.erase(info.uuid);
          for (const net::NodeId ds : info.replicas) {
            transport_->call(node_, ds, Method::kDropReplica,
                             DropReplicaReq{info.uuid}.encode(), nullptr);
          }
        });
    return;
  }

  // Synchronous path: provision the replica on every chosen dataserver,
  // reply once all ack.
  auto shared_reply = std::make_shared<ResponseFn>(std::move(reply));
  provision_replicas(info, [this, info, shared_reply](bool ok) {
    if (!ok) {
      // Roll the mapping back; the create is all-or-nothing.
      kv_.erase(file_key(info.name));
      uuid_to_name_.erase(info.uuid);
      (*shared_reply)(Status::kUnavailable, {});
      return;
    }
    (*shared_reply)(Status::kOk, FileInfoResp{info}.encode());
  });
}

void Nameserver::handle_report_size(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const ReportSizeReq req = ReportSizeReq::decode(r);
  if (!r.ok()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto it = uuid_to_name_.find(req.file);
  if (it == uuid_to_name_.end()) {
    reply(Status::kNotFound, {});
    return;
  }
  auto info = lookup(it->second);
  if (info.has_value() && req.size > info->size) {
    info->size = req.size;
    persist(*info);
  }
  reply(Status::kOk, {});
}

void Nameserver::handle_delete(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const NameReq req = NameReq::decode(r);
  if (!r.ok()) {
    reply(Status::kBadRequest, {});
    return;
  }
  if (!owns_path(req.name)) {
    ++wrong_shard_refusals_;
    reply(Status::kWrongShard, {});
    return;
  }
  const auto info = lookup(req.name);
  if (!info.has_value()) {
    reply(Status::kNotFound, {});
    return;
  }
  kv_.erase(file_key(req.name));
  uuid_to_name_.erase(info->uuid);
  for (const net::NodeId ds : info->replicas) {
    transport_->call(node_, ds, Method::kDropReplica,
                     DropReplicaReq{info->uuid}.encode(), nullptr);
  }
  reply(Status::kOk, {});
}

// --- failure detection + recovery ------------------------------------------

void Nameserver::monitor_dataservers(sim::EventQueue& events,
                                     std::vector<net::NodeId> dataservers,
                                     sim::SimTime interval) {
  MAYFLOWER_ASSERT(interval > sim::SimTime{});
  stop_monitoring();
  monitor_events_ = &events;
  monitored_ = std::move(dataservers);
  probe_interval_ = interval;
  probe_event_ =
      monitor_events_->schedule_in(probe_interval_, [this] { probe_cycle(); });
}

void Nameserver::stop_monitoring() {
  if (monitor_events_ != nullptr && probe_event_.valid()) {
    monitor_events_->cancel(probe_event_);
  }
  probe_event_ = {};
  monitor_events_ = nullptr;
  monitored_.clear();
}

void Nameserver::probe_cycle() {
  // Fixed cadence: re-arm first so a slow repair never skews the schedule.
  probe_event_ =
      monitor_events_->schedule_in(probe_interval_, [this] { probe_cycle(); });
  if (!attached_) return;  // a crashed shard probes nobody
  auto pending = std::make_shared<std::size_t>(monitored_.size());
  for (const net::NodeId ds : monitored_) {
    ++probes_sent_;
    probes_metric_.inc();
    transport_->call(node_, ds, Method::kPing, Bytes{},
                     [this, ds, pending](Status status, Bytes) {
                       if (status == Status::kOk) {
                         dead_.erase(ds);
                       } else {
                         dead_.insert(ds);
                       }
                       if (--*pending == 0 && !dead_.empty()) repair_sweep();
                     });
  }
}

void Nameserver::repair_sweep() {
  // Snapshot the degraded set first: repairs mutate the KV asynchronously.
  std::vector<FileInfo> degraded;
  for (const auto& [key, value] : kv_.scan_prefix("f/")) {
    Reader r(value);
    FileInfo info = FileInfo::decode(r);
    if (!r.ok()) continue;
    if (rerepl_inflight_.count(info.uuid) != 0) continue;
    for (const net::NodeId rep : info.replicas) {
      if (!dataserver_alive(rep)) {
        degraded.push_back(std::move(info));
        break;
      }
    }
  }
  for (const FileInfo& info : degraded) rereplicate_file(info);
}

net::NodeId Nameserver::pick_replacement(
    const std::vector<net::NodeId>& taken) {
  std::vector<int> taken_racks;
  for (const net::NodeId h : taken) taken_racks.push_back(tree_->rack_of(h));
  const auto eligible = [&](net::NodeId h, bool respect_racks) {
    if (!dataserver_alive(h)) return false;
    if (std::find(taken.begin(), taken.end(), h) != taken.end()) return false;
    return !respect_racks ||
           std::find(taken_racks.begin(), taken_racks.end(),
                     tree_->rack_of(h)) == taken_racks.end();
  };
  // Prefer a rack none of the survivors occupy (the create-time fault-domain
  // rule); relax only when the tree runs out of distinct racks.
  for (const bool respect_racks : {true, false}) {
    std::vector<net::NodeId> pool;
    for (const net::NodeId h : monitored_) {
      if (eligible(h, respect_racks)) pool.push_back(h);
    }
    if (!pool.empty()) return pool[rng_.next_below(pool.size())];
  }
  return net::kInvalidNode;
}

void Nameserver::rereplicate_file(const FileInfo& info) {
  std::vector<net::NodeId> survivors;
  for (const net::NodeId rep : info.replicas) {
    if (dataserver_alive(rep)) survivors.push_back(rep);
  }
  if (survivors.empty()) {
    if (lost_seen_.insert(info.uuid).second) {
      ++lost_files_;
      MAYFLOWER_LOG_WARN("nameserver: every replica of %s is dead",
                         info.name.c_str());
    }
    return;  // mapping kept: a restarted dataserver may bring the data back
  }
  lost_seen_.erase(info.uuid);

  // Survivors keep their order, so the first survivor is the new primary.
  std::vector<net::NodeId> new_list = survivors;
  while (new_list.size() < info.replicas.size()) {
    const net::NodeId pick = pick_replacement(new_list);
    if (pick == net::kInvalidNode) break;  // no eligible host: stay degraded
    new_list.push_back(pick);
  }
  if (new_list.size() == survivors.size()) {
    // Nowhere to copy to; at least stop pointing readers at dead hosts.
    auto cur = lookup(info.name);
    if (cur.has_value() && cur->replicas != survivors) {
      cur->replicas = survivors;
      persist(*cur);
      for (const net::NodeId s : survivors) {
        transport_->call(node_, s, Method::kUpdateReplicas,
                         UpdateReplicasReq{info.uuid, survivors}.encode(),
                         nullptr);
      }
    }
    return;
  }

  ++rereplications_;
  rereplications_metric_.inc();
  rerepl_inflight_.insert(info.uuid);
  const net::NodeId source = survivors.front();
  auto pending = std::make_shared<std::size_t>(new_list.size() -
                                               survivors.size());
  auto failed = std::make_shared<bool>(false);
  for (std::size_t i = survivors.size(); i < new_list.size(); ++i) {
    ReplicateToReq req;
    req.file = info.uuid;
    req.target = new_list[i];
    req.replicas = new_list;
    transport_->call(
        node_, source, Method::kReplicateTo, req.encode(),
        [this, uuid = info.uuid, name = info.name, new_list, survivors,
         pending, failed](Status status, Bytes) {
          if (status != Status::kOk) *failed = true;
          if (--*pending > 0) return;
          rerepl_inflight_.erase(uuid);
          // Any failed copy leaves the mapping untouched; the file still
          // lists a dead server, so the next probe cycle retries.
          if (*failed) return;
          auto cur = lookup(name);
          if (!cur.has_value()) return;  // deleted meanwhile
          cur->replicas = new_list;
          persist(*cur);
          // The copy source adopted the list in kReplicateTo and the targets
          // were installed with it; the other survivors still need it.
          for (std::size_t j = 1; j < survivors.size(); ++j) {
            transport_->call(node_, survivors[j], Method::kUpdateReplicas,
                             UpdateReplicasReq{uuid, new_list}.encode(),
                             nullptr);
          }
        });
  }
}

void Nameserver::rebuild_from_dataservers(
    const std::vector<net::NodeId>& dataservers, std::function<void()> done) {
  // "Instead of reading from the possibly stale database, the nameserver
  // rebuilds the mappings by scanning the file metadata stored at the
  // dataservers" (§3.3.1).
  for (const auto& [key, value] : kv_.scan_prefix("f/")) {
    kv_.erase(key);
  }
  uuid_to_name_.clear();
  adopt_from_dataservers([](const std::string&) { return true; }, dataservers,
                         std::move(done));
}

void Nameserver::adopt_from_dataservers(
    std::function<bool(const std::string&)> filter,
    const std::vector<net::NodeId>& dataservers, std::function<void()> done) {
  auto pending = std::make_shared<std::size_t>(dataservers.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  auto shared_filter =
      std::make_shared<std::function<bool(const std::string&)>>(
          std::move(filter));
  for (const net::NodeId ds : dataservers) {
    transport_->call(
        node_, ds, Method::kScanFiles, Bytes{},
        [this, pending, shared_done, shared_filter](Status status,
                                                    Bytes payload) {
          if (status == Status::kOk) {
            Reader r(payload);
            const ScanFilesResp resp = ScanFilesResp::decode(r);
            if (r.ok()) {
              for (const FileInfo& info : resp.files) {
                if (!(*shared_filter)(info.name)) continue;
                // A dataserver's local size may lag the primary's (relay in
                // flight at crash time): keep the largest observed size.
                const auto existing = lookup(info.name);
                if (!existing.has_value() || existing->size < info.size) {
                  if (!existing.has_value()) ++adopted_files_;
                  persist(info);
                }
              }
            }
          }
          if (--*pending == 0 && *shared_done) (*shared_done)();
        });
  }
}

}  // namespace mayflower::fs
