// ClusterHarness: wires a complete Mayflower deployment over the simulated
// datacenter — fabric, SDN controller + Flowserver (or a baseline scheme),
// one dataserver per host, a nameserver, and on-demand clients. This is the
// "real filesystem" configuration used by the Figure 8 comparison and the
// examples.
#pragma once

#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "flowserver/flowserver.hpp"
#include "fs/client.hpp"
#include "fs/flowserver_service.hpp"
#include "fs/dataserver.hpp"
#include "fs/meta/plane.hpp"
#include "fs/meta/router.hpp"
#include "fs/nameserver.hpp"
#include "policy/scheme.hpp"
#include "policy/write_placement.hpp"

namespace mayflower::fs {

// Read-scheduling configurations the full filesystem can run under.
enum class FsScheme {
  kMayflower,       // co-designed replica + path selection (the paper)
  kHdfsMayflower,   // HDFS rack-aware replica + Mayflower path scheduling
  kHdfsEcmp,        // HDFS rack-aware replica + ECMP (the Fig. 8 baseline)
  kNearestEcmp,
};

const char* to_string(FsScheme scheme);

struct ClusterConfig {
  net::ThreeTierConfig fabric{};
  FsScheme scheme = FsScheme::kMayflower;
  flowserver::FlowserverConfig flowserver{};
  NameserverConfig nameserver{};    // kv_dir auto-provisioned when empty
  DataserverConfig dataserver{};    // disk_root empty => in-memory servers
  ClientConfig client{};
  sim::SimTime rpc_latency = sim::SimTime::from_micros(200);
  std::uint64_t seed = 1;
  // Extensions beyond the paper's evaluated system (both default off, as in
  // the paper): Flowserver-collaborative replica placement at create time,
  // and Flowserver-scheduled append/relay flows (writes co-design).
  bool collaborative_placement = false;
  bool co_designed_writes = false;
  // Which ranking the write-placement decisions use (create-time advisor
  // and Flowserver write-target selection). kModel (default) is the
  // believed-share ranking — byte-identical to the historical behavior;
  // kMeasured ranks by measured residual headroom (Sinbad-style); kStatic
  // disables the placement advisor entirely (nameserver default spread).
  policy::WritePlacementKind write_placement =
      policy::WritePlacementKind::kModel;
  // Flowserver-planned pipelined chain replication for appends: clients
  // plan writer -> primary -> secondaries as one kPlanWrite chain and the
  // primary pipelines the relay instead of fanning out. Off = legacy.
  bool write_pipeline = false;
  // When true (default, matching the prototype in §5) the Flowserver is an
  // RPC service on a controller node and every selection costs a round
  // trip; when false clients call it in-process (pure-simulation shortcut).
  bool flowserver_over_rpc = true;
  // Nameserver liveness probing cadence; zero (default) disables monitoring
  // and with it failure detection + re-replication. Under a sharded
  // metadata plane the same cadence also drives the coordinator's shard
  // liveness probing and failover.
  sim::SimTime heartbeat_interval{};
  // --- sharded metadata plane (src/fs/meta/) ----------------------------
  // Number of nameserver shards; 0 (default) keeps the classic single
  // nameserver and changes nothing else. Shard servers are spread across
  // pods (fault domains) round-robin.
  std::size_t meta_shards = 0;
  meta::Partition meta_partition = meta::Partition::kHash;
  // AsyncFS-style background commit of create-time replica provisioning.
  bool meta_async = false;
  // Modeled per-RPC metadata service time on every shard (0 = free).
  sim::SimTime meta_service_time{};
  // Optional observability hub (not owned): wired through the fabric,
  // Flowserver, nameserver, clients and fault injector. Null measures
  // nothing.
  obs::Observability* obs = nullptr;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::EventQueue& events() { return events_; }
  const net::ThreeTier& tree() const { return tree_; }
  sdn::SdnFabric& fabric() { return *fabric_; }
  Transport& transport() { return *transport_; }
  // The single nameserver — or, under a sharded metadata plane, shard
  // server 0 (tests that inspect mappings should go through the plane).
  Nameserver& nameserver() {
    return meta_plane_ ? meta_plane_->shard_server(0) : *nameserver_;
  }
  // Null unless meta_shards > 0.
  meta::MetaPlane* meta_plane() { return meta_plane_.get(); }
  // Per-client shard routers (empty unless meta_shards > 0); telemetry.
  const std::vector<std::unique_ptr<meta::MetaRouter>>& meta_routers() const {
    return routers_;
  }
  Dataserver& dataserver_at(net::NodeId host);
  flowserver::Flowserver* flow_server() { return flow_server_.get(); }
  FlowserverService* flowserver_service() { return flowserver_service_.get(); }

  // Client bound to `host` (created on first use, cached afterwards).
  Client& client_at(net::NodeId host);

  // Fault injector wired to this cluster (created on first use). Crashing a
  // dataserver detaches its RPC server and downs its access links; restart
  // re-attaches it and reloads persistent state.
  fault::FaultInjector& fault_injector();

  // Drains the event queue (optionally up to a deadline).
  void run() { events_.run(); }
  void run_until(sim::SimTime t) { events_.run_until(t); }

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
  sim::EventQueue events_;
  net::ThreeTier tree_;
  net::NodeId nameserver_node_ = net::kInvalidNode;
  net::NodeId controller_node_ = net::kInvalidNode;
  std::unique_ptr<sdn::SdnFabric> fabric_;
  std::unique_ptr<SimTransport> transport_;
  Rng policy_rng_;
  std::unique_ptr<flowserver::Flowserver> flow_server_;
  std::unique_ptr<FlowserverService> flowserver_service_;
  std::unique_ptr<policy::ReplicaPolicy> replica_policy_;
  std::unique_ptr<policy::Scheme> scheme_;
  std::unique_ptr<RpcPlanner> rpc_planner_;
  std::unique_ptr<ReadPlanner> planner_;
  // Measured write placement (write_placement == kMeasured): its own path
  // cache over the shared topology, ranking against the Flowserver's view —
  // whose tx rates come from a port-counter monitor over every fabric link,
  // so the ranking sees ALL traffic, not just believed Flowserver flows.
  std::unique_ptr<net::PathCache> measured_paths_;
  std::unique_ptr<sdn::LinkRateMonitor> link_rates_;
  std::unique_ptr<policy::MeasuredWritePlacement> measured_placement_;
  // Chain planner handed to clients when write_pipeline is on: the
  // RpcPlanner above in RPC mode, an in-process LocalWritePlanner otherwise.
  std::unique_ptr<LocalWritePlanner> local_write_planner_;
  WritePlanner* write_planner_ = nullptr;
  std::unique_ptr<Nameserver> nameserver_;
  std::vector<net::NodeId> meta_shard_nodes_;
  std::unique_ptr<meta::MetaPlane> meta_plane_;
  std::vector<std::unique_ptr<Dataserver>> dataservers_;  // by host order
  // Declared before clients_: each client holds a raw pointer to its router.
  std::vector<std::unique_ptr<meta::MetaRouter>> routers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::filesystem::path scratch_dir_;  // owned temp dir (removed in dtor)
};

}  // namespace mayflower::fs
