#include "fs/data.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"

namespace mayflower::fs {
namespace {

// Pattern byte at absolute stream position i: cheap, stateless, and stable
// across slicing (the property appends/reads rely on for verification).
std::uint8_t pattern_byte(std::uint64_t seed, std::uint64_t i) {
  const std::uint64_t word = splitmix64(seed ^ (i >> 3));
  return static_cast<std::uint8_t>(word >> ((i & 7) * 8));
}

}  // namespace

Extent Extent::from_bytes(std::string bytes) {
  Extent e;
  e.kind_ = Kind::kInline;
  e.inline_bytes_ = std::move(bytes);
  return e;
}

Extent Extent::pattern(std::uint64_t seed, std::uint64_t size,
                       std::uint64_t offset) {
  Extent e;
  e.kind_ = Kind::kPattern;
  e.seed_ = seed;
  e.offset_ = offset;
  e.size_ = size;
  return e;
}

std::uint64_t Extent::size() const {
  return kind_ == Kind::kInline ? inline_bytes_.size() : size_;
}

Extent Extent::slice(std::uint64_t offset, std::uint64_t len) const {
  MAYFLOWER_ASSERT(offset <= size());
  len = std::min(len, size() - offset);
  if (kind_ == Kind::kInline) {
    return from_bytes(inline_bytes_.substr(offset, len));
  }
  return pattern(seed_, len, offset_ + offset);
}

std::uint8_t Extent::byte_at(std::uint64_t i) const {
  MAYFLOWER_ASSERT(i < size());
  if (kind_ == Kind::kInline) {
    return static_cast<std::uint8_t>(inline_bytes_[i]);
  }
  return pattern_byte(seed_, offset_ + i);
}

std::string Extent::materialize(std::uint64_t limit) const {
  if (size() > limit) return {};
  if (kind_ == Kind::kInline) return inline_bytes_;
  std::string out(size_, '\0');
  for (std::uint64_t i = 0; i < size_; ++i) {
    out[i] = static_cast<char>(pattern_byte(seed_, offset_ + i));
  }
  return out;
}

std::uint32_t Extent::checksum() const {
  if (kind_ == Kind::kInline) return crc32(inline_bytes_);
  // Stream in 4 KiB chunks so huge patterns never materialize.
  std::uint32_t crc = 0;
  std::uint8_t buf[4096];
  std::uint64_t done = 0;
  while (done < size_) {
    const auto n =
        static_cast<std::size_t>(std::min<std::uint64_t>(sizeof buf,
                                                         size_ - done));
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = pattern_byte(seed_, offset_ + done + i);
    }
    crc = crc32(buf, n, crc);
    done += n;
  }
  return crc;
}

bool Extent::content_equals(const Extent& other) const {
  if (size() != other.size()) return false;
  if (kind_ == Kind::kPattern && other.kind_ == Kind::kPattern) {
    if (seed_ == other.seed_ && offset_ == other.offset_) return true;
  }
  return checksum() == other.checksum();
}

void Extent::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  if (kind_ == Kind::kInline) {
    w.str(inline_bytes_);
  } else {
    w.u64(seed_);
    w.u64(offset_);
    w.u64(size_);
  }
}

Extent Extent::decode(Reader& r) {
  Extent e;
  const auto kind = r.u8();
  if (kind == static_cast<std::uint8_t>(Kind::kInline)) {
    e.kind_ = Kind::kInline;
    e.inline_bytes_ = r.str();
  } else if (kind == static_cast<std::uint8_t>(Kind::kPattern)) {
    e.kind_ = Kind::kPattern;
    e.seed_ = r.u64();
    e.offset_ = r.u64();
    e.size_ = r.u64();
  }
  return e;
}

void ExtentList::append(Extent e) {
  if (e.size() == 0) return;
  size_ += e.size();
  extents_.push_back(std::move(e));
}

void ExtentList::append(const ExtentList& other) {
  for (const Extent& e : other.extents_) append(e);
}

ExtentList ExtentList::slice(std::uint64_t offset, std::uint64_t len) const {
  ExtentList out;
  if (offset >= size_) return out;
  len = std::min(len, size_ - offset);
  std::uint64_t pos = 0;
  for (const Extent& e : extents_) {
    if (len == 0) break;
    const std::uint64_t end = pos + e.size();
    if (end <= offset) {
      pos = end;
      continue;
    }
    const std::uint64_t local = offset > pos ? offset - pos : 0;
    const std::uint64_t take = std::min(len, e.size() - local);
    out.append(e.slice(local, take));
    offset += take;
    len -= take;
    pos = end;
  }
  return out;
}

std::uint32_t ExtentList::checksum() const {
  // Chain per-byte CRC to be layout-independent: the same logical content
  // split into different extents yields the same checksum.
  std::uint32_t crc = 0;
  std::uint8_t buf[4096];
  for (const Extent& e : extents_) {
    std::uint64_t done = 0;
    while (done < e.size()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(sizeof buf, e.size() - done));
      for (std::size_t i = 0; i < n; ++i) {
        buf[i] = e.byte_at(done + i);
      }
      crc = crc32(buf, n, crc);
      done += n;
    }
  }
  return crc;
}

std::string ExtentList::materialize(std::uint64_t limit) const {
  if (size_ > limit) return {};
  std::string out;
  out.reserve(size_);
  for (const Extent& e : extents_) {
    out += e.materialize(limit);
  }
  return out;
}

bool ExtentList::content_equals(const ExtentList& other) const {
  return size_ == other.size_ && checksum() == other.checksum();
}

void ExtentList::encode(Writer& w) const {
  w.list(extents_, [](Writer& writer, const Extent& e) { e.encode(writer); });
}

ExtentList ExtentList::decode(Reader& r) {
  ExtentList out;
  const auto extents =
      r.list<Extent>([](Reader& reader) { return Extent::decode(reader); });
  for (const Extent& e : extents) out.append(e);
  return out;
}

}  // namespace mayflower::fs
