#include "fs/kv/kvstore.hpp"

#include <unistd.h>

#include <cstring>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "common/logging.hpp"

namespace mayflower::fs {
namespace {

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDel = 2;

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(const std::string& in, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (pos < in.size() && shift <= 63) {
    const auto byte = static_cast<std::uint8_t>(in[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

std::string encode_payload(std::uint8_t op, const std::string& key,
                           const std::string& value) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  put_varint(payload, key.size());
  payload.append(key);
  put_varint(payload, value.size());
  payload.append(value);
  return payload;
}

bool write_record(std::FILE* f, const std::string& payload, bool fsync) {
  const std::uint32_t crc = crc32(payload);
  const auto len = static_cast<std::uint32_t>(payload.size());
  if (std::fwrite(&crc, sizeof crc, 1, f) != 1) return false;
  if (std::fwrite(&len, sizeof len, 1, f) != 1) return false;
  if (!payload.empty() &&
      std::fwrite(payload.data(), payload.size(), 1, f) != 1) {
    return false;
  }
  if (std::fflush(f) != 0) return false;
  if (fsync) {
    // fileno+fsync: the one place the store touches POSIX directly.
    ::fsync(::fileno(f));
  }
  return true;
}

}  // namespace

KvStore::~KvStore() { close(); }

bool KvStore::open(const std::filesystem::path& dir, Options options) {
  MAYFLOWER_ASSERT_MSG(!is_open(), "store already open");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    MAYFLOWER_LOG_ERROR("kv: cannot create %s: %s", dir.c_str(),
                        ec.message().c_str());
    return false;
  }
  dir_ = dir;
  options_ = options;
  map_.clear();
  recovered_records_ = 0;

  replay_file(dir_ / "SNAPSHOT");
  replay_file(dir_ / "WAL");

  wal_ = std::fopen((dir_ / "WAL").c_str(), "ab");
  if (wal_ == nullptr) {
    MAYFLOWER_LOG_ERROR("kv: cannot open WAL in %s", dir_.c_str());
    return false;
  }
  wal_records_ = 0;
  return true;
}

void KvStore::close() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
}

bool KvStore::replay_file(const std::filesystem::path& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;  // absent is fine
  while (true) {
    std::uint32_t crc = 0;
    std::uint32_t len = 0;
    if (std::fread(&crc, sizeof crc, 1, f) != 1) break;
    if (std::fread(&len, sizeof len, 1, f) != 1) break;       // torn header
    if (len > (64u << 20)) break;                             // implausible
    std::string payload(len, '\0');
    if (len > 0 && std::fread(payload.data(), len, 1, f) != 1) break;
    if (crc32(payload) != crc) break;                         // torn/corrupt

    std::size_t pos = 0;
    if (payload.empty()) break;
    const auto op = static_cast<std::uint8_t>(payload[pos++]);
    std::uint64_t klen = 0;
    if (!get_varint(payload, pos, klen) || pos + klen > payload.size()) break;
    std::string key = payload.substr(pos, klen);
    pos += klen;
    std::uint64_t vlen = 0;
    if (!get_varint(payload, pos, vlen) || pos + vlen > payload.size()) break;
    std::string value = payload.substr(pos, vlen);

    if (op == kOpPut) {
      map_[std::move(key)] = std::move(value);
    } else if (op == kOpDel) {
      map_.erase(key);
    } else {
      break;  // unknown op: treat as corruption
    }
    ++recovered_records_;
  }
  std::fclose(f);
  return true;
}

bool KvStore::append_record(std::uint8_t op, const std::string& key,
                            const std::string& value) {
  MAYFLOWER_ASSERT_MSG(is_open(), "store not open");
  if (!write_record(wal_, encode_payload(op, key, value), options_.fsync)) {
    return false;
  }
  if (++wal_records_ >= options_.compact_after) {
    compact();
  }
  return true;
}

bool KvStore::put(const std::string& key, const std::string& value) {
  if (!append_record(kOpPut, key, value)) return false;
  map_[key] = value;
  return true;
}

bool KvStore::erase(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  if (!append_record(kOpDel, key, std::string())) return false;
  map_.erase(it);
  return true;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::contains(const std::string& key) const {
  return map_.find(key) != map_.end();
}

std::vector<std::pair<std::string, std::string>> KvStore::scan_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

bool KvStore::compact() {
  MAYFLOWER_ASSERT_MSG(is_open(), "store not open");
  const std::filesystem::path tmp = dir_ / "SNAPSHOT.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  for (const auto& [key, value] : map_) {
    if (!write_record(f, encode_payload(kOpPut, key, value), false)) {
      std::fclose(f);
      return false;
    }
  }
  if (options_.fsync) ::fsync(::fileno(f));
  std::fclose(f);

  std::error_code ec;
  std::filesystem::rename(tmp, dir_ / "SNAPSHOT", ec);
  if (ec) return false;

  // Truncate the WAL now that the snapshot covers everything.
  std::fclose(wal_);
  wal_ = std::fopen((dir_ / "WAL").c_str(), "wb");
  wal_records_ = 0;
  return wal_ != nullptr;
}

}  // namespace mayflower::fs
