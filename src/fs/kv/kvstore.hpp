// Persistent key-value store backing the nameserver's mappings — the
// project's stand-in for LevelDB (§3.3.1).
//
// Design: an in-memory ordered map, made durable by a CRC-framed append-only
// write-ahead log plus periodic full snapshots. Like the paper's deployment
// advice, fsync is OFF by default (the nameserver treats the store as a
// restart accelerator, not the source of truth — after an unclean restart it
// rebuilds from the dataservers).
//
// On-disk layout under the store directory:
//   SNAPSHOT      full dump at the last compaction (may be absent)
//   WAL           records appended since that snapshot
//
// Record framing (both files): [u32 crc][u32 len][payload], crc over payload.
// Payload: u8 op (1=put, 2=del), varint key_len, key, varint val_len, value.
// Recovery replays SNAPSHOT then WAL, stopping at the first torn/corrupt
// record (crash-safe prefix semantics).
#pragma once

#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mayflower::fs {

class KvStore {
 public:
  struct Options {
    bool fsync = false;            // paper default: off
    std::size_t compact_after = 4096;  // WAL records before auto-compaction
  };

  KvStore() = default;
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Opens (creating if needed) the store in `dir` and recovers state.
  // Returns false on unrecoverable I/O errors.
  bool open(const std::filesystem::path& dir, Options options);
  bool open(const std::filesystem::path& dir) { return open(dir, Options{}); }
  void close();
  bool is_open() const { return wal_ != nullptr; }

  bool put(const std::string& key, const std::string& value);
  bool erase(const std::string& key);
  std::optional<std::string> get(const std::string& key) const;
  bool contains(const std::string& key) const;

  // All (key, value) pairs whose key starts with `prefix`, key order.
  std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& prefix) const;

  std::size_t size() const { return map_.size(); }

  // Rewrites SNAPSHOT from memory and truncates the WAL.
  bool compact();

  // Telemetry.
  std::size_t wal_records() const { return wal_records_; }
  std::size_t recovered_records() const { return recovered_records_; }

 private:
  bool append_record(std::uint8_t op, const std::string& key,
                     const std::string& value);
  bool replay_file(const std::filesystem::path& path);

  std::filesystem::path dir_;
  Options options_;
  std::map<std::string, std::string> map_;
  std::FILE* wal_ = nullptr;
  std::size_t wal_records_ = 0;
  std::size_t recovered_records_ = 0;
};

}  // namespace mayflower::fs
