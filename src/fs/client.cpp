#include "fs/client.hpp"

#include <algorithm>
#include <memory>

#include "common/logging.hpp"

namespace mayflower::fs {

Client::Client(Transport& transport, sdn::SdnFabric& fabric,
               ReadPlanner& planner, net::NodeId node, net::NodeId nameserver,
               ClientConfig config)
    : transport_(&transport),
      fabric_(&fabric),
      planner_(&planner),
      node_(node),
      nameserver_(nameserver),
      config_(config),
      paths_(fabric.topology()),
      ecmp_(node) {}

sim::SimTime Client::retry_backoff(std::uint32_t attempt) const {
  // Capped exponential: 1x, 2x, 4x, ... up to 8x the base backoff.
  const std::int64_t mult = std::int64_t{1} << std::min(attempt, 3u);
  return sim::SimTime::from_nanos(config_.read_retry_backoff.nanos() * mult);
}

sim::SimTime Client::count_retry_backoff(std::uint32_t attempt) {
  const sim::SimTime backoff = retry_backoff(attempt);
  read_retries_metric_.inc();
  retry_backoff_hist_.observe(backoff.seconds());
  return backoff;
}

void Client::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    lookups_metric_ = cache_hits_metric_ = read_retries_metric_ =
        obs::Counter{};
    retry_backoff_hist_ = obs::Histogram{};
    return;
  }
  lookups_metric_ = hub->metrics.counter("fs.client.lookups");
  cache_hits_metric_ = hub->metrics.counter("fs.client.cache_hits");
  read_retries_metric_ = hub->metrics.counter("fs.client.read_retries");
  // Edges cover the capped-exponential ladder (base 20 ms, cap 8x).
  retry_backoff_hist_ = hub->metrics.histogram(
      "fs.client.retry_backoff_sec", {0.02, 0.04, 0.08, 0.16, 0.32});
}

void Client::cache_put(const FileInfo& info) {
  cache_[info.name] =
      CachedMeta{info, fabric_->events().now() + config_.meta_cache_ttl};
}

void Client::ns_call(const std::string& path, Method method, Bytes request,
                     ResponseFn done) {
  if (router_ != nullptr) {
    router_->call(path, method, std::move(request), std::move(done));
    return;
  }
  transport_->call(node_, nameserver_, method, std::move(request),
                   std::move(done));
}

void Client::with_meta(const std::string& name, bool allow_cache,
                       std::function<void(Status, const FileInfo&)> fn) {
  if (allow_cache) {
    const auto it = cache_.find(name);
    if (it != cache_.end() && fabric_->events().now() < it->second.expires) {
      ++cache_hits_;
      cache_hits_metric_.inc();
      fn(Status::kOk, it->second.info);
      return;
    }
  }
  ++lookups_sent_;
  lookups_metric_.inc();
  // Snapshot the invalidation generation at issue time: a delete (or any
  // other invalidation) racing this lookup bumps it, and the stale response
  // must then not repopulate the cache.
  const std::uint64_t gen = cache_gen(name);
  ns_call(name, Method::kLookupFile, NameReq{name}.encode(),
          [this, name, gen, fn = std::move(fn)](Status status,
                                                Bytes payload) {
            if (status != Status::kOk) {
              fn(status, FileInfo{});
              return;
            }
            Reader r(payload);
            const FileInfoResp resp = FileInfoResp::decode(r);
            if (!r.ok()) {
              fn(Status::kBadRequest, FileInfo{});
              return;
            }
            if (gen == cache_gen(name)) cache_put(resp.info);
            fn(Status::kOk, resp.info);
          });
}

void Client::create(const std::string& name, CreateFn done) {
  CreateFileReq req;
  req.name = name;
  req.replication = config_.replication;
  req.client = node_;
  const std::uint64_t gen = cache_gen(name);
  ns_call(name, Method::kCreateFile, req.encode(),
          [this, name, gen, done = std::move(done)](Status status,
                                                    Bytes payload) {
            if (status != Status::kOk) {
              done(status, FileInfo{});
              return;
            }
            Reader r(payload);
            const FileInfoResp resp = FileInfoResp::decode(r);
            if (!r.ok()) {
              done(Status::kBadRequest, FileInfo{});
              return;
            }
            if (gen == cache_gen(name)) cache_put(resp.info);
            done(Status::kOk, resp.info);
          });
}

void Client::remove(const std::string& name, SimpleFn done) {
  invalidate_cache(name);
  ns_call(name, Method::kDeleteFile, NameReq{name}.encode(),
          [done = std::move(done)](Status status, Bytes) { done(status); });
}

void Client::stat(const std::string& name, StatFn done) {
  with_meta(name, /*allow_cache=*/true, std::move(done));
}

void Client::list(ListFn done) {
  if (router_ != nullptr) {
    router_->list("", std::move(done));
    return;
  }
  transport_->call(node_, nameserver_, Method::kListFiles, Bytes{},
                   [done = std::move(done)](Status status, Bytes payload) {
                     if (status != Status::kOk) {
                       done(status, {});
                       return;
                     }
                     Reader r(payload);
                     ListFilesResp resp = ListFilesResp::decode(r);
                     if (!r.ok()) {
                       done(Status::kBadRequest, {});
                       return;
                     }
                     done(Status::kOk, std::move(resp.names));
                   });
}

// --- append ------------------------------------------------------------

void Client::append(const std::string& name, ExtentList data, AppendFn done) {
  if (data.empty()) {
    done(Status::kBadRequest, AppendResp{});
    return;
  }
  with_meta(name, /*allow_cache=*/true,
            [this, data = std::move(data), done = std::move(done)](
                Status status, const FileInfo& info) mutable {
              if (status != Status::kOk) {
                done(status, AppendResp{});
                return;
              }
              do_append(info, std::move(data), false, std::move(done));
            });
}

void Client::send_append_rpc(const FileInfo& info, ExtentList data,
                             std::vector<WireAssignment> chain, bool retried,
                             AppendFn done) {
  AppendReq req;
  req.file = info.uuid;
  req.data = data;
  req.chain = std::move(chain);
  transport_->call(
      node_, info.primary(), Method::kAppend, req.encode(),
      [this, info, data = std::move(data), retried,
       done = std::move(done)](Status status, Bytes payload) mutable {
        if ((status == Status::kNotFound || status == Status::kNotPrimary ||
             status == Status::kUnavailable) &&
            !retried) {
          // Stale mapping (file moved/recreated): refresh and retry once.
          // The retry re-plans from scratch — a fresh replica set needs a
          // fresh chain.
          invalidate_cache(info.name);
          with_meta(info.name, false,
                    [this, data = std::move(data), done = std::move(done)](
                        Status s2, const FileInfo& fresh) mutable {
                      if (s2 != Status::kOk) {
                        done(s2, AppendResp{});
                        return;
                      }
                      do_append(fresh, std::move(data), true, std::move(done));
                    });
          return;
        }
        if (status != Status::kOk) {
          done(status, AppendResp{});
          return;
        }
        Reader r(payload);
        const AppendResp resp = AppendResp::decode(r);
        if (!r.ok()) {
          done(Status::kBadRequest, AppendResp{});
          return;
        }
        // Keep the cached size fresh.
        const auto it = cache_.find(info.name);
        if (it != cache_.end()) it->second.info.size = resp.new_size;
        done(Status::kOk, resp);
      });
}

void Client::do_append(const FileInfo& info, ExtentList data, bool retried,
                       AppendFn done) {
  if (config_.write_pipeline && write_planner_ != nullptr &&
      info.replicas.size() > 1) {
    do_append_pipelined(info, std::move(data), retried, std::move(done));
    return;
  }
  const net::NodeId primary = info.primary();
  if (primary == node_) {
    // Node-local write: no network hop for the bytes.
    send_append_rpc(info, std::move(data), {}, retried, std::move(done));
    return;
  }
  // Ship the bytes to the primary first, then issue the append RPC. The
  // paper's system uses ECMP for writes (the co-design optimizes reads,
  // §3.3); the co_designed_writes extension asks the scheme instead.
  if (config_.co_designed_writes) {
    planner_->plan(
        primary, {node_}, static_cast<double>(data.size()),
        [this, info, data = std::move(data), retried,
         done = std::move(done)](
            Status pstatus, std::vector<policy::ReadAssignment> plan) mutable {
          MAYFLOWER_ASSERT(pstatus == Status::kOk && plan.size() == 1);
          fabric_->start_flow(
              plan[0].cookie, plan[0].path, plan[0].bytes,
              [this, info, data = std::move(data), retried,
               done = std::move(done)](sdn::Cookie cookie,
                                       sim::SimTime) mutable {
                planner_->flow_complete(node_, cookie);
                send_append_rpc(info, std::move(data), {}, retried,
                                std::move(done));
              });
        });
    return;
  }
  do_append_ecmp(info, std::move(data), retried, std::move(done));
}

void Client::do_append_ecmp(const FileInfo& info, ExtentList data,
                            bool retried, AppendFn done) {
  const net::NodeId primary = info.primary();
  const auto& candidates = paths_.get(node_, primary);
  MAYFLOWER_ASSERT(!candidates.empty());
  const sdn::Cookie cookie = fabric_->new_cookie();
  const net::Path& path = ecmp_.choose(candidates, node_, primary, cookie);
  fabric_->install_path(cookie, path);
  fabric_->start_flow(
      cookie, path, static_cast<double>(data.size()),
      [this, info, data = std::move(data), retried,
       done = std::move(done)](sdn::Cookie, sim::SimTime) mutable {
        send_append_rpc(info, std::move(data), {}, retried, std::move(done));
      });
}

void Client::do_append_pipelined(const FileInfo& info, ExtentList data,
                                 bool retried, AppendFn done) {
  const net::NodeId primary = info.primary();
  // The chain the bytes traverse: the upload hop (skipped when the writer
  // IS the primary), then the relay legs in replica order.
  std::vector<net::NodeId> chain;
  if (primary != node_) chain.push_back(node_);
  chain.insert(chain.end(), info.replicas.begin(), info.replicas.end());
  write_planner_->plan_write(
      node_, chain, static_cast<double>(data.size()),
      [this, info, primary, data = std::move(data), retried,
       done = std::move(done)](
          Status pstatus, std::vector<policy::ReadAssignment> plan) mutable {
        if (pstatus != Status::kOk || plan.empty()) {
          // Chain unroutable from its very first hop: degrade to the
          // unplanned upload + fan-out path (the next append re-plans).
          if (primary == node_) {
            send_append_rpc(info, std::move(data), {}, retried,
                            std::move(done));
          } else {
            do_append_ecmp(info, std::move(data), retried, std::move(done));
          }
          return;
        }
        // Hop 0 is the upload leg when the primary is remote; everything
        // after it rides to the primary as the relay chain.
        const std::size_t relay_begin = primary == node_ ? 0 : 1;
        std::vector<WireAssignment> relay;
        for (std::size_t i = relay_begin; i < plan.size(); ++i) {
          WireAssignment w;
          w.cookie = plan[i].cookie;
          w.replica = plan[i].replica;
          w.path_nodes = plan[i].path.nodes;
          w.path_links = plan[i].path.links;
          w.bytes = plan[i].bytes;
          w.est_bw_bps = plan[i].est_bw_bps;
          relay.push_back(std::move(w));
        }
        if (relay_begin == 0) {
          // Writer-local primary: no upload leg, the RPC goes straight out.
          send_append_rpc(info, std::move(data), std::move(relay), retried,
                          std::move(done));
          return;
        }
        fabric_->start_flow(
            plan[0].cookie, plan[0].path, plan[0].bytes,
            [this, info, data = std::move(data), relay = std::move(relay),
             retried, done = std::move(done)](sdn::Cookie cookie,
                                              sim::SimTime) mutable {
              write_planner_->flow_complete(node_, cookie);
              send_append_rpc(info, std::move(data), std::move(relay),
                              retried, std::move(done));
            });
      });
}

// --- read --------------------------------------------------------------

void Client::read_file(const std::string& name, ReadFn done) {
  read_file_from(name, 0, /*retried=*/false, /*rounds=*/0,
                 std::make_shared<ExtentList>(), std::move(done));
}

void Client::read_file_from(const std::string& name, std::uint64_t offset,
                            bool retried, int rounds,
                            std::shared_ptr<ExtentList> acc, ReadFn done) {
  // A file can keep growing while we chase its tail; bound the pursuit.
  constexpr int kMaxRounds = 32;
  with_meta(
      name, /*allow_cache=*/!retried,
      [this, name, offset, retried, rounds, acc, done = std::move(done)](
          Status status, const FileInfo& info) mutable {
        if (status != Status::kOk) {
          done(status, ReadResult{});
          return;
        }
        if (info.size <= offset) {
          // Metadata claims nothing (more) to read: confirm against the
          // primary, whose reply carries the authoritative size.
          ReadReq probe;
          probe.file = info.uuid;
          probe.offset = offset;
          transport_->call(
              node_, info.primary(), Method::kReadFile, probe.encode(),
              [this, name, offset, retried, rounds, acc, info,
               done = std::move(done)](Status pstatus,
                                       Bytes payload) mutable {
                if ((pstatus == Status::kNotFound ||
                     pstatus == Status::kUnavailable) &&
                    !retried) {
                  // Stale mapping (file recreated / replica moved).
                  invalidate_cache(name);
                  read_file_from(name, offset, true, rounds, acc,
                                 std::move(done));
                  return;
                }
                if (pstatus != Status::kOk) {
                  done(pstatus, ReadResult{});
                  return;
                }
                Reader r(payload);
                const ReadResp resp = ReadResp::decode(r);
                if (!r.ok()) {
                  done(Status::kBadRequest, ReadResult{});
                  return;
                }
                if (resp.file_size > offset && rounds < kMaxRounds) {
                  FileInfo fresh = info;
                  fresh.size = resp.file_size;
                  const auto it = cache_.find(name);
                  if (it != cache_.end() &&
                      it->second.info.uuid == fresh.uuid) {
                    it->second.info.size = fresh.size;
                  }
                  read_file_from(name, offset, retried, rounds + 1, acc,
                                 std::move(done));
                  return;
                }
                done(Status::kOk, ReadResult{std::move(*acc), offset});
              });
          return;
        }
        const std::uint64_t target = info.size;
        do_read(info, offset, target - offset, retried,
                [this, name, target, rounds, acc, done = std::move(done)](
                    Status rstatus, ReadResult result) mutable {
                  if (rstatus != Status::kOk) {
                    done(rstatus, ReadResult{});
                    return;
                  }
                  acc->append(result.data);
                  if (result.file_size > target && rounds < kMaxRounds) {
                    // More appended while we were reading: keep going.
                    read_file_from(name, target, false, rounds + 1, acc,
                                   std::move(done));
                    return;
                  }
                  done(Status::kOk,
                       ReadResult{std::move(*acc),
                                  std::max(result.file_size, target)});
                });
      });
}

void Client::read(const std::string& name, std::uint64_t offset,
                  std::uint64_t length, ReadFn done) {
  with_meta(name, /*allow_cache=*/true,
            [this, offset, length, done = std::move(done)](
                Status status, const FileInfo& info) mutable {
              if (status != Status::kOk) {
                done(status, ReadResult{});
                return;
              }
              do_read(info, offset, length, false, std::move(done));
            });
}

void Client::do_read(const FileInfo& info, std::uint64_t offset,
                     std::uint64_t length, bool retried, ReadFn done) {
  if (length == 0) {
    done(Status::kOk, ReadResult{{}, info.size});
    return;
  }
  // Split per the consistency mode: in strong mode the range overlapping
  // the last chunk (per our view of the size) must be served by the primary;
  // everything before it is immutable (§3.4).
  struct Piece {
    std::uint64_t offset;
    std::uint64_t length;
    std::vector<net::NodeId> replicas;
  };
  std::vector<Piece> pieces;
  if (config_.consistency == Consistency::kStrong) {
    const std::uint64_t boundary = info.last_chunk_offset();
    if (offset < boundary) {
      const std::uint64_t head = std::min(length, boundary - offset);
      pieces.push_back(Piece{offset, head, info.replicas});
      if (length > head) {
        pieces.push_back(Piece{boundary, length - head, {info.primary()}});
      }
    } else {
      pieces.push_back(Piece{offset, length, {info.primary()}});
    }
  } else {
    pieces.push_back(Piece{offset, length, info.replicas});
  }

  struct Collected {
    Status status = Status::kOk;
    std::vector<ExtentList> parts;  // indexed by global part order
    std::size_t outstanding = 0;
    std::uint64_t file_size = 0;
    bool failed_not_found = false;
  };
  auto state = std::make_shared<Collected>();
  auto finish = [this, info, offset, length, retried,
                 done](std::shared_ptr<Collected> st) mutable {
    // kNotFound and kUnavailable both point at stale metadata: the file may
    // have been recreated, or its replicas re-homed after a crash. Refetch
    // the mapping and retry the whole read once.
    if ((st->failed_not_found || st->status == Status::kUnavailable) &&
        !retried) {
      invalidate_cache(info.name);
      with_meta(info.name, false,
                [this, offset, length, done](Status s2,
                                             const FileInfo& fresh) mutable {
                  if (s2 != Status::kOk) {
                    done(s2, ReadResult{});
                    return;
                  }
                  do_read(fresh, offset, length, true, std::move(done));
                });
      return;
    }
    if (st->status != Status::kOk) {
      // Terminal failure: whatever mapping we used did not work — never
      // serve it from cache again.
      invalidate_cache(info.name);
      done(st->status, ReadResult{});
      return;
    }
    ReadResult result;
    for (ExtentList& part : st->parts) result.data.append(part);
    result.file_size = st->file_size;
    // Piggybacked size: how clients discover appends (§3.3).
    const auto cit = cache_.find(info.name);
    if (cit != cache_.end() && result.file_size > cit->second.info.size) {
      cit->second.info.size = result.file_size;
    }
    done(Status::kOk, std::move(result));
  };

  // Launch every piece; each may fan out into multiple subflows.
  std::size_t part_index = 0;
  struct Launch {
    Piece piece;
    std::size_t first_part;
  };
  std::vector<Launch> launches;
  for (const Piece& piece : pieces) {
    launches.push_back(Launch{piece, part_index});
    // Reserve at most 2 parts per piece (single or split read).
    part_index += 2;
  }
  state->parts.resize(part_index);
  state->outstanding = launches.size();

  for (const Launch& launch : launches) {
    read_piece(info, launch.piece.offset, launch.piece.length,
               launch.piece.replicas, /*attempt=*/0,
               [state, first = launch.first_part, finish](
                   Status status, ExtentList data, std::uint64_t fsize) mutable {
                 if (status == Status::kNotFound) {
                   state->failed_not_found = true;
                 } else if (status != Status::kOk &&
                            state->status == Status::kOk) {
                   state->status = status;
                 }
                 state->parts[first] = std::move(data);
                 state->file_size = std::max(state->file_size, fsize);
                 if (--state->outstanding == 0) finish(state);
               });
  }
}

void Client::read_piece(
    const FileInfo& info, std::uint64_t offset, std::uint64_t length,
    const std::vector<net::NodeId>& replicas, std::uint32_t attempt,
    std::function<void(Status, ExtentList, std::uint64_t)> done) {
  planner_->plan(node_, replicas, static_cast<double>(length),
                 [this, info, offset, length, replicas, attempt,
                  done = std::move(done)](
                     Status status,
                     std::vector<policy::ReadAssignment> plan) mutable {
                   if (status == Status::kUnavailable &&
                       attempt + 1 < config_.max_read_attempts) {
                     // No replica reachable right now (failed links or
                     // switches). Links come back and mappings get repaired;
                     // wait out the backoff and ask again.
                     fabric_->events().schedule_in(
                         count_retry_backoff(attempt),
                         [this, info, offset, length, replicas, attempt,
                          done = std::move(done)]() mutable {
                           read_piece(info, offset, length, replicas,
                                      attempt + 1, std::move(done));
                         });
                     return;
                   }
                   if (status != Status::kOk) {
                     done(status, ExtentList{}, 0);
                     return;
                   }
                   execute_plan(info, offset, length, replicas,
                                std::move(plan), attempt, std::move(done));
                 });
}

void Client::execute_plan(
    const FileInfo& info, std::uint64_t offset, std::uint64_t length,
    const std::vector<net::NodeId>& replicas,
    std::vector<policy::ReadAssignment> plan, std::uint32_t attempt,
    std::function<void(Status, ExtentList, std::uint64_t)> done) {
  MAYFLOWER_ASSERT(!plan.empty());

  struct PieceState {
    Status status = Status::kOk;
    std::vector<ExtentList> parts;
    std::size_t outstanding = 0;
    std::uint64_t file_size = 0;
  };
  auto st = std::make_shared<PieceState>();
  st->parts.resize(plan.size());
  st->outstanding = plan.size();
  auto shared_done = std::make_shared<decltype(done)>(std::move(done));

  std::uint64_t sub_offset = offset;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const policy::ReadAssignment& a = plan[i];
    // The planner sized subflows in fractional bytes; round so the ranges
    // tile [offset, offset+length) exactly.
    const std::uint64_t sub_len =
        i + 1 == plan.size()
            ? offset + length - sub_offset
            : std::min<std::uint64_t>(static_cast<std::uint64_t>(a.bytes),
                                      offset + length - sub_offset);
    ReadReq req;
    req.file = info.uuid;
    req.offset = sub_offset;
    req.length = sub_len;
    sub_offset += sub_len;

    // Shared: exactly one of the transfer-complete / transfer-failed /
    // RPC-error continuations delivers this part.
    using PartFn = std::function<void(Status, ExtentList, std::uint64_t)>;
    auto on_part_done = std::make_shared<PartFn>(
        [this, st, i, shared_done](Status status, ExtentList data,
                                   std::uint64_t fsize) {
          if (status != Status::kOk && st->status == Status::kOk) {
            st->status = status;
          }
          st->parts[i] = std::move(data);
          st->file_size = std::max(st->file_size, fsize);
          if (--st->outstanding == 0) {
            ExtentList all;
            for (ExtentList& part : st->parts) all.append(part);
            (*shared_done)(st->status, std::move(all), st->file_size);
          }
        });

    // Retry engine for this subrange: back off, then re-plan against the
    // replicas other than the one that just failed (all of them when no
    // alternative exists — a restored link may make it reachable again).
    auto retry_elsewhere = [this, info, replicas, attempt, on_part_done](
                               net::NodeId failed_replica,
                               std::uint64_t piece_offset,
                               std::uint64_t piece_len) {
      if (attempt + 1 >= config_.max_read_attempts) {
        (*on_part_done)(Status::kUnavailable, ExtentList{}, 0);
        return;
      }
      std::vector<net::NodeId> rest;
      for (const net::NodeId r : replicas) {
        if (r != failed_replica) rest.push_back(r);
      }
      if (rest.empty()) rest = replicas;
      fabric_->events().schedule_in(
          count_retry_backoff(attempt),
          [this, info, piece_offset, piece_len, rest = std::move(rest),
           attempt, on_part_done]() mutable {
            read_piece(info, piece_offset, piece_len, rest, attempt + 1,
                       [on_part_done](Status s, ExtentList data,
                                      std::uint64_t fsize) {
                         (*on_part_done)(s, std::move(data), fsize);
                       });
          });
    };

    transport_->call(
        node_, a.replica, Method::kReadFile, req.encode(),
        [this, a, info, replicas, sub_len, req_offset = req.offset,
         on_part_done, retry_elsewhere](Status status, Bytes payload) mutable {
          if (status == Status::kUnavailable && replicas.size() > 1) {
            // Replica host unreachable: fail over to the remaining replicas
            // for this subrange (replica redundancy is the whole point).
            planner_->flow_complete(node_, a.cookie);
            fabric_->remove_path(a.cookie);
            std::vector<net::NodeId> rest;
            for (const net::NodeId r : replicas) {
              if (r != a.replica) rest.push_back(r);
            }
            read_piece(info, req_offset, sub_len, rest, /*attempt=*/0,
                       [on_part_done](Status s, ExtentList data,
                                      std::uint64_t fsize) {
                         (*on_part_done)(s, std::move(data), fsize);
                       });
            return;
          }
          if (status != Status::kOk) {
            planner_->flow_complete(node_, a.cookie);
            fabric_->remove_path(a.cookie);
            (*on_part_done)(status, ExtentList{}, 0);
            return;
          }
          Reader r(payload);
          ReadResp resp = ReadResp::decode(r);
          if (!r.ok()) {
            planner_->flow_complete(node_, a.cookie);
            fabric_->remove_path(a.cookie);
            (*on_part_done)(Status::kBadRequest, ExtentList{}, 0);
            return;
          }
          const double bulk_bytes = static_cast<double>(resp.data.size());
          if (bulk_bytes <= 0.0) {
            planner_->flow_complete(node_, a.cookie);
            fabric_->remove_path(a.cookie);
            (*on_part_done)(Status::kOk, std::move(resp.data),
                            resp.file_size);
            return;
          }
          // The payload leaves the dataserver as a fabric flow along the
          // installed path; completion hands the extents to the caller. A
          // failure (link/switch death mid-transfer, or a path that died
          // since planning) re-reads this subrange from the survivors.
          fabric_->start_flow(
              a.cookie, a.path, bulk_bytes,
              [this, resp = std::move(resp), on_part_done](
                  sdn::Cookie cookie, sim::SimTime) mutable {
                planner_->flow_complete(node_, cookie);
                (*on_part_done)(Status::kOk, std::move(resp.data),
                                resp.file_size);
              },
              [replica = a.replica, req_offset, sub_len, retry_elsewhere](
                  sdn::Cookie, const net::FlowRecord&) {
                retry_elsewhere(replica, req_offset, sub_len);
              });
        });
  }
}

}  // namespace mayflower::fs
