#include "fs/dataserver.hpp"

#include <fstream>
#include <memory>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace mayflower::fs {

Dataserver::Dataserver(Transport& transport, sdn::SdnFabric& fabric,
                       net::NodeId node, DataserverConfig config,
                       std::uint64_t seed)
    : transport_(&transport),
      fabric_(&fabric),
      node_(node),
      config_(std::move(config)),
      paths_(fabric.topology()),
      ecmp_(seed) {
  if (!config_.disk_root.empty()) {
    std::filesystem::create_directories(config_.disk_root);
    load_from_disk();
  }
  transport_->bind(node_, [this](net::NodeId from, Method method,
                                 const Bytes& request, ResponseFn reply) {
    handle(from, method, request, std::move(reply));
  });
}

Dataserver::~Dataserver() { transport_->unbind(node_); }

void Dataserver::set_obs(obs::Observability* hub) {
  if (hub == nullptr) {
    relay_failed_metric_ = obs::Counter{};
    chain_appends_metric_ = obs::Counter{};
    return;
  }
  relay_failed_metric_ = hub->metrics.counter("fs.ds.relay_failed");
  chain_appends_metric_ = hub->metrics.counter("fs.ds.chain_appends");
}

const ExtentList* Dataserver::file_data(const Uuid& uuid) const {
  const auto it = files_.find(uuid);
  return it == files_.end() ? nullptr : &it->second.data;
}

std::uint64_t Dataserver::file_size(const Uuid& uuid) const {
  const auto it = files_.find(uuid);
  return it == files_.end() ? 0 : it->second.info.size;
}

void Dataserver::restart() {
  files_.clear();
  if (!config_.disk_root.empty()) load_from_disk();
}

void Dataserver::detach() {
  if (!attached_) return;
  attached_ = false;
  transport_->unbind(node_);
}

void Dataserver::attach() {
  if (attached_) return;
  attached_ = true;
  transport_->bind(node_, [this](net::NodeId from, Method method,
                                 const Bytes& request, ResponseFn reply) {
    handle(from, method, request, std::move(reply));
  });
}

void Dataserver::handle(net::NodeId /*from*/, Method method,
                        const Bytes& request, ResponseFn reply) {
  switch (method) {
    case Method::kCreateReplica: {
      Reader r(request);
      CreateReplicaReq req = CreateReplicaReq::decode(r);
      if (!r.ok() || req.info.uuid.is_nil()) {
        reply(Status::kBadRequest, {});
        return;
      }
      Stored& file = files_[req.info.uuid];
      file.info = std::move(req.info);
      persist_meta(file);
      reply(Status::kOk, {});
      return;
    }
    case Method::kDropReplica: {
      Reader r(request);
      const DropReplicaReq req = DropReplicaReq::decode(r);
      if (!r.ok()) {
        reply(Status::kBadRequest, {});
        return;
      }
      const auto it = files_.find(req.file);
      if (it != files_.end()) {
        // Fail queued appends before erasing: the transport owes every
        // request exactly one reply, and dropping the queue would strand
        // their clients waiting forever.
        for (PendingAppend& queued : it->second.queue) {
          queued.reply(Status::kNotFound, {});
        }
        files_.erase(it);
      }
      remove_dir(req.file);
      reply(Status::kOk, {});
      return;
    }
    case Method::kAppend:
      handle_append(request, std::move(reply));
      return;
    case Method::kAppendRelay:
      handle_append_relay(request, std::move(reply));
      return;
    case Method::kReadFile:
      handle_read(request, std::move(reply));
      return;
    case Method::kScanFiles: {
      ScanFilesResp resp;
      for (const auto& [uuid, file] : files_) {
        resp.files.push_back(file.info);
      }
      reply(Status::kOk, resp.encode());
      return;
    }
    case Method::kPing:
      // Liveness probe: reaching the handler at all is the answer (a
      // detached server's probe fails in the transport with kUnavailable).
      reply(Status::kOk, {});
      return;
    case Method::kUpdateReplicas: {
      Reader r(request);
      UpdateReplicasReq req = UpdateReplicasReq::decode(r);
      if (!r.ok() || req.replicas.empty()) {
        reply(Status::kBadRequest, {});
        return;
      }
      const auto it = files_.find(req.file);
      if (it == files_.end()) {
        reply(Status::kNotFound, {});
        return;
      }
      it->second.info.replicas = std::move(req.replicas);
      persist_meta(it->second);
      reply(Status::kOk, {});
      return;
    }
    case Method::kInstallReplica: {
      Reader r(request);
      InstallReplicaReq req = InstallReplicaReq::decode(r);
      if (!r.ok() || req.info.uuid.is_nil() ||
          req.data.size() != req.info.size) {
        reply(Status::kBadRequest, {});
        return;
      }
      Stored& file = files_[req.info.uuid];
      file.info = std::move(req.info);
      file.data = std::move(req.data);
      persist_meta(file);
      persist_chunks(file, 0, file.info.size);
      reply(Status::kOk, {});
      return;
    }
    case Method::kReplicateTo:
      handle_replicate_to(request, std::move(reply));
      return;
    default:
      reply(Status::kBadRequest, {});
  }
}

void Dataserver::apply_append(Stored& file, std::uint64_t offset,
                              const ExtentList& data) {
  MAYFLOWER_ASSERT(offset == file.info.size);
  file.data.append(data);
  file.info.size += data.size();
  persist_chunks(file, offset, data.size());
  persist_meta(file);
}

void Dataserver::handle_append(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  AppendReq req = AppendReq::decode(r);
  if (!r.ok() || req.data.empty()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto it = files_.find(req.file);
  if (it == files_.end()) {
    reply(Status::kNotFound, {});
    return;
  }
  Stored& file = it->second;
  if (file.info.primary() != node_) {
    reply(Status::kNotPrimary, {});
    return;
  }
  // "The dataserver only services one append request at a time for each
  // file" (§3.3.2): queue and pump.
  file.queue.push_back(PendingAppend{std::move(req.data), std::move(req.chain),
                                     std::move(reply)});
  pump_appends(file);
}

void Dataserver::pump_appends(Stored& file) {
  if (file.append_in_progress || file.queue.empty()) return;
  file.append_in_progress = true;
  PendingAppend pending = std::move(file.queue.front());
  file.queue.pop_front();

  const std::uint64_t offset = file.info.size;
  apply_append(file, offset, pending.data);
  ++appends_served_;
  const net::NodeId size_sink = config_.nameserver_resolver
                                    ? config_.nameserver_resolver(
                                          file.info.name)
                                    : config_.nameserver;
  if (size_sink != net::kInvalidNode) {
    ReportSizeReq report;
    report.file = file.info.uuid;
    report.size = file.info.size;
    transport_->call(node_, size_sink, Method::kReportSize, report.encode(),
                     nullptr);
  }

  // Relay to the other replica hosts "while servicing the request locally"
  // (§3.3.2): ship the bytes as a fabric flow, then the relay RPC, and ack
  // the client once every secondary settled (confirmed or degraded).
  const Uuid uuid = file.info.uuid;
  std::vector<net::NodeId> secondaries;
  for (const net::NodeId rep : file.info.replicas) {
    if (rep != node_) secondaries.push_back(rep);
  }

  auto finish = [this, uuid, offset,
                 reply = std::move(pending.reply)]() mutable {
    const auto fit = files_.find(uuid);
    if (fit == files_.end()) {
      reply(Status::kNotFound, {});
      return;
    }
    AppendResp resp;
    resp.offset = offset;
    resp.new_size = fit->second.info.size;
    reply(Status::kOk, resp.encode());
    fit->second.append_in_progress = false;
    pump_appends(fit->second);
  };

  if (secondaries.empty()) {
    finish();
    return;
  }

  // Encode the relay request ONCE and share the buffer: the old per-
  // secondary `relay.data = pending.data` copies pinned one payload clone
  // per secondary for the whole life of its relay flow (seconds at
  // datacenter block sizes). The shared buffer frees when the last relay
  // settles.
  const double relay_bytes = static_cast<double>(pending.data.size());
  auto wire = std::make_shared<const Bytes>(
      AppendRelayReq{uuid, offset, std::move(pending.data)}.encode());

  if (!pending.chain.empty()) {
    relay_pipelined(uuid, offset, std::move(wire), std::move(pending.chain),
                    secondaries, std::move(finish));
    return;
  }
  relay_fanout(uuid, std::move(wire), relay_bytes, secondaries,
               std::move(finish));
}

void Dataserver::count_relay_failure(const Uuid& uuid, net::NodeId secondary) {
  ++relay_failures_;
  relay_failed_metric_.inc();
  MAYFLOWER_LOG_WARN(
      "dataserver %u: relay of %s to %u failed; settling degraded", node_,
      uuid.to_string().c_str(), secondary);
}

void Dataserver::relay_fanout(const Uuid& uuid,
                              std::shared_ptr<const Bytes> wire, double bytes,
                              const std::vector<net::NodeId>& secondaries,
                              std::function<void()> finish) {
  auto pending_acks = std::make_shared<std::size_t>(secondaries.size());
  auto shared_finish =
      std::make_shared<std::function<void()>>(std::move(finish));
  for (const net::NodeId secondary : secondaries) {
    auto send_rpc = [this, secondary, wire, pending_acks,
                     shared_finish]() mutable {
      transport_->call(node_, secondary, Method::kAppendRelay, *wire,
                       [pending_acks, shared_finish](Status, Bytes) {
                         if (--*pending_acks == 0) (*shared_finish)();
                       });
    };
    // Bulk bytes travel the fabric first. By default writes use ECMP (the
    // paper optimizes the read path); with a write scheduler attached, the
    // Flowserver picks the relay path by Eq. 2 instead.
    // If a failure kills the relay flow, the secondary simply misses this
    // append (its replica falls behind; recovery re-copies whole replicas),
    // but the client's ack must not hang: count the relay as settled.
    auto relay_failed = [this, uuid, secondary, pending_acks, shared_finish](
                            sdn::Cookie, const net::FlowRecord&) {
      count_relay_failure(uuid, secondary);
      if (--*pending_acks == 0) (*shared_finish)();
    };
    if (config_.write_scheduler != nullptr) {
      const auto assignment = config_.write_scheduler->select_path_for_replica(
          /*client=*/secondary, /*replica=*/node_, bytes);
      if (assignment.cookie == 0) {  // secondary unreachable right now
        // Stillborn relay: no fabric flow ever started, so no failure
        // callback will fire — settle (degraded) here, visibly.
        count_relay_failure(uuid, secondary);
        if (--*pending_acks == 0) (*shared_finish)();
        continue;
      }
      flowserver::Flowserver* scheduler = config_.write_scheduler;
      fabric_->start_flow(
          assignment.cookie, assignment.path, assignment.bytes,
          [scheduler, send_rpc = std::move(send_rpc)](
              sdn::Cookie cookie, sim::SimTime) mutable {
            scheduler->flow_dropped(cookie);
            send_rpc();
          },
          relay_failed);
      continue;
    }
    const auto& candidates = paths_.get(node_, secondary);
    MAYFLOWER_ASSERT(!candidates.empty());
    const sdn::Cookie cookie = fabric_->new_cookie();
    const net::Path& path =
        ecmp_.choose(candidates, node_, secondary, cookie);
    fabric_->install_path(cookie, path);
    fabric_->start_flow(cookie, path, bytes,
                        [send_rpc = std::move(send_rpc)](
                            sdn::Cookie, sim::SimTime) mutable { send_rpc(); },
                        relay_failed);
  }
}

void Dataserver::relay_pipelined(const Uuid& uuid, std::uint64_t offset,
                                 std::shared_ptr<const Bytes> wire,
                                 std::vector<WireAssignment> hops,
                                 const std::vector<net::NodeId>& secondaries,
                                 std::function<void()> finish) {
  // Validate the client-carried plan against OUR replica view (the client's
  // metadata may be stale): hop j must run from the previous chain host to
  // secondaries[j]. Truncate at the first mismatch — the tail degrades.
  std::size_t covered = 0;
  while (covered < hops.size() && covered < secondaries.size()) {
    const WireAssignment& hop = hops[covered];
    const net::NodeId want_src =
        covered == 0 ? node_ : secondaries[covered - 1];
    if (hop.replica != want_src || hop.path_nodes.empty() ||
        hop.path_nodes.back() != secondaries[covered]) {
      break;
    }
    ++covered;
  }
  hops.resize(covered);

  ++chain_appends_;
  chain_appends_metric_.inc();

  auto st = std::make_shared<ChainRelay>();
  st->uuid = uuid;
  st->offset = offset;
  st->wire = std::move(wire);
  st->hops = std::move(hops);
  st->targets.assign(secondaries.begin(),
                     secondaries.begin() + static_cast<long>(covered));
  st->flow_done.assign(covered, false);
  st->rpc_sent.assign(covered, false);
  st->state.assign(covered, 0);
  st->total = secondaries.size();
  st->finish = std::move(finish);

  // Secondaries beyond the planned prefix (chain truncated at an
  // unreachable hop, or plan/replica mismatch) settle degraded immediately.
  for (std::size_t j = covered; j < secondaries.size(); ++j) {
    count_relay_failure(uuid, secondaries[j]);
    ++st->settled;
  }
  if (st->settled == st->total) {
    st->finish();
    return;
  }

  // Cut-through: every hop flow starts now and runs concurrently — each
  // relay host forwards bytes as they stream in, so the chain completes in
  // roughly bytes/bottleneck instead of hops * bytes/bottleneck, and no two
  // hops share this primary's uplink (unlike fan-out).
  flowserver::Flowserver* scheduler = config_.write_scheduler;
  for (std::size_t j = 0; j < st->hops.size(); ++j) {
    const WireAssignment& hop = st->hops[j];
    net::Path path;
    path.nodes = hop.path_nodes;
    path.links = hop.path_links;
    fabric_->start_flow(
        hop.cookie, path, hop.bytes,
        [this, st, j, scheduler](sdn::Cookie cookie, sim::SimTime) {
          if (scheduler != nullptr) scheduler->flow_dropped(cookie);
          st->flow_done[j] = true;
          chain_advance(st);
        },
        [this, st, j](sdn::Cookie, const net::FlowRecord&) {
          // Hop j's bytes never landed: every downstream host is cut off
          // from this append. Degrade the suffix, keep the settled prefix.
          chain_fail_from(st, j);
        });
  }
}

void Dataserver::chain_advance(const std::shared_ptr<ChainRelay>& st) {
  for (std::size_t j = 0; j < st->hops.size(); ++j) {
    if (st->state[j] == 2) return;  // suffix from here is degraded
    if (st->rpc_sent[j]) {
      if (st->state[j] == 0) return;  // ack outstanding gates j+1
      continue;
    }
    if (!st->flow_done[j]) return;
    // In-order gate: relay j applies after relay j-1 confirmed, preserving
    // the prefix-consistency property (a settled chain is always a prefix).
    st->rpc_sent[j] = true;
    transport_->call(node_, st->targets[j], Method::kAppendRelay, *st->wire,
                     [this, st, j](Status status, Bytes) {
                       if (status == Status::kOk) {
                         chain_settle(st, j, true);
                         chain_advance(st);
                       } else {
                         // The secondary rejected or is unreachable: it and
                         // everything downstream missed this append.
                         chain_fail_from(st, j);
                       }
                     });
    return;
  }
}

void Dataserver::chain_fail_from(const std::shared_ptr<ChainRelay>& st,
                                 std::size_t k) {
  for (std::size_t j = k; j < st->hops.size(); ++j) {
    if (st->state[j] != 0) continue;
    count_relay_failure(st->uuid, st->targets[j]);
    chain_settle(st, j, false);
  }
}

void Dataserver::chain_settle(const std::shared_ptr<ChainRelay>& st,
                              std::size_t j, bool ok) {
  MAYFLOWER_ASSERT(st->state[j] == 0);
  st->state[j] = ok ? 1 : 2;
  if (++st->settled == st->total) st->finish();
}

void Dataserver::handle_append_relay(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  AppendRelayReq req = AppendRelayReq::decode(r);
  if (!r.ok()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto it = files_.find(req.file);
  if (it == files_.end()) {
    reply(Status::kNotFound, {});
    return;
  }
  Stored& file = it->second;
  if (req.offset + req.data.size() <= file.info.size) {
    reply(Status::kOk, {});  // duplicate delivery: idempotent
    return;
  }
  if (req.offset != file.info.size) {
    // Gap: the primary serializes appends and the transport preserves
    // order, so this indicates corruption.
    reply(Status::kBadRequest, {});
    return;
  }
  apply_append(file, req.offset, req.data);
  reply(Status::kOk, {});
}

void Dataserver::handle_replicate_to(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  ReplicateToReq req = ReplicateToReq::decode(r);
  if (!r.ok() || req.target == net::kInvalidNode || req.replicas.empty()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto it = files_.find(req.file);
  if (it == files_.end()) {
    reply(Status::kNotFound, {});
    return;
  }
  Stored& file = it->second;
  // Adopt the post-recovery replica list up front: even if the copy fails,
  // the dead server must not stay listed here.
  file.info.replicas = req.replicas;
  persist_meta(file);

  InstallReplicaReq install;
  install.info = file.info;
  install.data = file.data;
  const net::NodeId target = req.target;
  auto send_install = [this, target, install = std::move(install),
                       reply]() mutable {
    transport_->call(node_, target, Method::kInstallReplica, install.encode(),
                     [reply](Status status, Bytes) { reply(status, {}); });
  };

  // An empty file has no bulk bytes to ship — straight to the install RPC.
  if (file.info.size == 0) {
    send_install();
    return;
  }

  // Recovery copies travel as ordinary ECMP fabric transfers (the paper
  // optimizes the read path; re-replication is background traffic). A flow
  // killed by a further failure surfaces as kUnavailable; the nameserver
  // retries on its next probe cycle.
  const auto& candidates = paths_.get(node_, target);
  MAYFLOWER_ASSERT(!candidates.empty());
  const sdn::Cookie cookie = fabric_->new_cookie();
  const net::Path& path = ecmp_.choose(candidates, node_, target, cookie);
  fabric_->install_path(cookie, path);
  fabric_->start_flow(
      cookie, path, static_cast<double>(file.info.size),
      [send_install = std::move(send_install)](sdn::Cookie,
                                               sim::SimTime) mutable {
        send_install();
      },
      [reply](sdn::Cookie, const net::FlowRecord&) {
        reply(Status::kUnavailable, {});
      });
}

void Dataserver::handle_read(const Bytes& request, ResponseFn reply) {
  Reader r(request);
  const ReadReq req = ReadReq::decode(r);
  if (!r.ok()) {
    reply(Status::kBadRequest, {});
    return;
  }
  const auto it = files_.find(req.file);
  if (it == files_.end()) {
    reply(Status::kNotFound, {});
    return;
  }
  const Stored& file = it->second;
  ++reads_served_;
  ReadResp resp;
  resp.file_size = file.info.size;
  if (req.offset < file.info.size) {
    resp.data = file.data.slice(req.offset, req.length);
  }
  reply(Status::kOk, resp.encode());
}

// --- persistence -----------------------------------------------------------

std::filesystem::path Dataserver::dir_of(const Uuid& uuid) const {
  return config_.disk_root / uuid.to_string();
}

void Dataserver::persist_meta(const Stored& file) {
  if (config_.disk_root.empty()) return;
  const auto dir = dir_of(file.info.uuid);
  std::filesystem::create_directories(dir);
  Writer w;
  file.info.encode(w);
  std::ofstream out(dir / "meta", std::ios::binary | std::ios::trunc);
  out.write(w.bytes().data(), static_cast<std::streamsize>(w.bytes().size()));
}

void Dataserver::persist_chunks(const Stored& file, std::uint64_t offset,
                                std::uint64_t length) {
  if (config_.disk_root.empty() || length == 0) return;
  const auto dir = dir_of(file.info.uuid);
  std::filesystem::create_directories(dir);
  const std::uint64_t chunk = file.info.chunk_size;
  const std::uint64_t first = offset / chunk;
  const std::uint64_t last = (offset + length - 1) / chunk;
  for (std::uint64_t c = first; c <= last; ++c) {
    Writer w;
    file.data.slice(c * chunk, chunk).encode(w);
    // Chunks are numbered files starting at 1 (§3.3.2).
    std::ofstream out(dir / strfmt("%llu", static_cast<unsigned long long>(c + 1)),
                      std::ios::binary | std::ios::trunc);
    out.write(w.bytes().data(),
              static_cast<std::streamsize>(w.bytes().size()));
  }
}

void Dataserver::remove_dir(const Uuid& uuid) {
  if (config_.disk_root.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir_of(uuid), ec);
}

void Dataserver::load_from_disk() {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.disk_root, ec)) {
    if (!entry.is_directory()) continue;
    const Uuid uuid = Uuid::parse(entry.path().filename().string());
    if (uuid.is_nil()) continue;

    std::ifstream meta_in(entry.path() / "meta", std::ios::binary);
    if (!meta_in) continue;
    const Bytes meta_bytes((std::istreambuf_iterator<char>(meta_in)),
                           std::istreambuf_iterator<char>());
    Reader r(meta_bytes);
    FileInfo info = FileInfo::decode(r);
    if (!r.ok() || info.uuid != uuid) continue;

    Stored file;
    file.info = info;
    const std::uint64_t chunk = info.chunk_size;
    const std::uint64_t n_chunks =
        info.size == 0 ? 0 : (info.size - 1) / chunk + 1;
    bool intact = true;
    for (std::uint64_t c = 0; c < n_chunks && intact; ++c) {
      std::ifstream in(entry.path() /
                           strfmt("%llu", static_cast<unsigned long long>(c + 1)),
                       std::ios::binary);
      if (!in) {
        intact = false;
        break;
      }
      const Bytes bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      Reader cr(bytes);
      ExtentList extents = ExtentList::decode(cr);
      if (!cr.ok()) {
        intact = false;
        break;
      }
      file.data.append(extents);
    }
    if (!intact || file.data.size() != info.size) {
      MAYFLOWER_LOG_WARN("dataserver %u: dropping damaged replica of %s",
                         node_, info.name.c_str());
      continue;
    }
    files_.emplace(uuid, std::move(file));
  }
}

}  // namespace mayflower::fs
