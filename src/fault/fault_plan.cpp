#include "fault/fault.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace mayflower::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kSwitchCrash: return "switch-crash";
    case FaultKind::kSwitchRestore: return "switch-restore";
    case FaultKind::kDataserverCrash: return "ds-crash";
    case FaultKind::kDataserverRestart: return "ds-restart";
    case FaultKind::kDataserverDegrade: return "ds-degrade";
    case FaultKind::kDataserverRecover: return "ds-recover";
  }
  return "?";
}

namespace {

// Directed links whose both endpoints are switches (edge<->agg, agg<->core).
// Host access links are excluded here: killing them is what a dataserver
// crash does, and the two fault classes should stay distinguishable.
std::vector<net::LinkId> switch_links(const net::ThreeTier& tree) {
  std::vector<net::LinkId> out;
  for (net::LinkId l = 0; l < tree.topo.link_count(); ++l) {
    const net::Link& link = tree.topo.link(l);
    if (tree.topo.node(link.from).kind != net::NodeKind::kHost &&
        tree.topo.node(link.to).kind != net::NodeKind::kHost) {
      out.push_back(l);
    }
  }
  return out;
}

}  // namespace

FaultPlan FaultPlan::random(const net::ThreeTier& tree,
                            const RandomFaultConfig& config,
                            std::uint64_t seed) {
  FaultPlan plan;
  if (config.events_per_minute <= 0.0) return plan;

  Rng rng(seed);
  const std::vector<net::LinkId> links = switch_links(tree);
  // Crash candidates: aggregation and core switches. Edge switches are
  // deliberately excluded from *random* plans — an edge crash silences a
  // whole rack of dataservers at once, which swamps the per-category signal
  // the degradation bench measures. Scripted plans may still crash them.
  std::vector<net::NodeId> crashable;
  for (const auto& pod : tree.agg_switches) {
    crashable.insert(crashable.end(), pod.begin(), pod.end());
  }
  crashable.insert(crashable.end(), tree.core_switches.begin(),
                   tree.core_switches.end());

  const std::vector<double> weights{config.link_weight, config.switch_weight,
                                    config.dataserver_weight,
                                    config.degrade_weight};
  // When a target is faulted we remember its repair time and skip later
  // injections aimed at it while still down.
  std::map<net::LinkId, sim::SimTime> link_busy;
  std::map<net::NodeId, sim::SimTime> node_busy;

  const double rate_per_sec = config.events_per_minute / 60.0;
  double t = 0.0;
  while (true) {
    t += rng.exponential(rate_per_sec);
    const sim::SimTime at = sim::SimTime::from_seconds(t);
    if (at >= config.horizon) break;
    const sim::SimTime up =
        at + sim::SimTime::from_seconds(
                 rng.exponential(1.0 / config.mean_downtime_sec));

    switch (rng.weighted_index(weights)) {
      case 0: {  // link
        if (links.empty()) break;
        const net::LinkId link = links[rng.next_below(links.size())];
        if (const auto it = link_busy.find(link);
            it != link_busy.end() && it->second > at) {
          break;
        }
        link_busy[link] = up;
        plan.events.push_back({at, FaultKind::kLinkDown, link});
        plan.events.push_back({up, FaultKind::kLinkUp, link});
        break;
      }
      case 1: {  // switch
        if (crashable.empty()) break;
        const net::NodeId node = crashable[rng.next_below(crashable.size())];
        if (const auto it = node_busy.find(node);
            it != node_busy.end() && it->second > at) {
          break;
        }
        node_busy[node] = up;
        plan.events.push_back(
            {at, FaultKind::kSwitchCrash, net::kInvalidLink, node});
        plan.events.push_back(
            {up, FaultKind::kSwitchRestore, net::kInvalidLink, node});
        break;
      }
      case 2: {  // dataserver crash
        const net::NodeId host = tree.hosts[rng.next_below(tree.hosts.size())];
        if (const auto it = node_busy.find(host);
            it != node_busy.end() && it->second > at) {
          break;
        }
        node_busy[host] = up;
        plan.events.push_back(
            {at, FaultKind::kDataserverCrash, net::kInvalidLink, host});
        plan.events.push_back(
            {up, FaultKind::kDataserverRestart, net::kInvalidLink, host});
        break;
      }
      default: {  // degrade
        const net::NodeId host = tree.hosts[rng.next_below(tree.hosts.size())];
        if (const auto it = node_busy.find(host);
            it != node_busy.end() && it->second > at) {
          break;
        }
        node_busy[host] = up;
        plan.events.push_back({at, FaultKind::kDataserverDegrade,
                               net::kInvalidLink, host,
                               config.degrade_factor});
        plan.events.push_back(
            {up, FaultKind::kDataserverRecover, net::kInvalidLink, host});
        break;
      }
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace mayflower::fault
