// FaultInjector: applies FaultEvents to a live SdnFabric (and, via hooks,
// to the filesystem processes running on the affected hosts) at their
// scheduled simulated timestamps.
//
// The injector owns the mapping from abstract fault classes to concrete
// actions:
//   * link faults       -> SdnFabric::fail_link / restore_link;
//   * switch faults     -> SdnFabric::fail_switch / restore_switch;
//   * dataserver crash  -> both access links down (killing in-flight
//     transfers to/from the host) + the dataserver_crash hook (the cluster
//     detaches the RPC server so control messages fail with kUnavailable);
//   * dataserver restart-> access links restored + the dataserver_restart
//     hook (re-attach, reload persistent state);
//   * degrade/recover   -> capacity factor on the access links.
//
// Everything is idempotent-tolerant: crashing a dead host or restoring a
// live link is a no-op, so overlapping scripted plans cannot corrupt state.
#pragma once

#include <array>
#include <functional>
#include <set>
#include <string>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "sdn/fabric.hpp"

namespace mayflower::fault {

// Filesystem-side reactions to host faults, wired in by the cluster (the
// injector itself has no knowledge of dataserver objects).
struct FaultHooks {
  std::function<void(net::NodeId)> dataserver_crash;
  std::function<void(net::NodeId)> dataserver_restart;
};

class FaultInjector {
 public:
  FaultInjector(sdn::SdnFabric& fabric, const net::ThreeTier& tree)
      : fabric_(&fabric), tree_(&tree) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_hooks(FaultHooks hooks) { hooks_ = std::move(hooks); }

  // Schedules every event of `plan` on the fabric's event queue. Events
  // whose time already passed fire immediately (in plan order).
  void arm(const FaultPlan& plan);

  // Applies one event right now (scripted tests drive this directly).
  void apply(const FaultEvent& event);

  // False while the host's dataserver is crashed (access links down).
  bool host_up(net::NodeId host) const {
    return down_hosts_.find(host) == down_hosts_.end();
  }

  // Telemetry: events applied, per kind and in total.
  std::uint64_t injected(FaultKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected() const;

  // Publishes per-kind injection counters (fault.injected.<kind>) into
  // `registry`. Null detaches.
  void set_metrics(obs::MetricsRegistry* registry) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      metrics_[i] =
          registry == nullptr
              ? obs::Counter{}
              : registry->counter(std::string("fault.injected.") +
                                  to_string(static_cast<FaultKind>(i)));
    }
  }

 private:
  sdn::SdnFabric* fabric_;
  const net::ThreeTier* tree_;
  FaultHooks hooks_;
  std::set<net::NodeId> down_hosts_;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
  std::array<obs::Counter, kFaultKindCount> metrics_{};
};

}  // namespace mayflower::fault
