// Fault model: what can break in the simulated datacenter, and when.
//
// A FaultPlan is a time-ordered schedule of failure/repair events — written
// by hand for scripted tests, or drawn from a seeded Poisson process for
// degradation benchmarks (FaultPlan::random). Plans are pure data: applying
// them to a running fabric is the FaultInjector's job, which keeps plan
// generation deterministic and replayable independent of simulation state.
//
// Covered fault classes (ISSUE: failure-aware co-design across layers):
//   * link down/up           — one directed fabric link dies and returns;
//   * switch crash/restore   — every adjacent link dies, flow table wiped;
//   * dataserver crash/restart — host unreachable (access links down, RPC
//     server detached), later restarted from its persistent state;
//   * dataserver degrade/recover — access links throttled to a factor of
//     their capacity (slow NIC / failing disk behind a working network).
#pragma once

#include <cstdint>
#include <vector>

#include "net/tree.hpp"
#include "sim/time.hpp"

namespace mayflower::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown = 0,
  kLinkUp = 1,
  kSwitchCrash = 2,
  kSwitchRestore = 3,
  kDataserverCrash = 4,
  kDataserverRestart = 5,
  kDataserverDegrade = 6,
  kDataserverRecover = 7,
};
inline constexpr std::size_t kFaultKindCount = 8;

const char* to_string(FaultKind kind);

struct FaultEvent {
  sim::SimTime at;
  FaultKind kind = FaultKind::kLinkDown;
  net::LinkId link = net::kInvalidLink;   // link faults
  net::NodeId node = net::kInvalidNode;   // switch / dataserver faults
  double factor = 1.0;                    // kDataserverDegrade only
};

// Parameters of a random fault schedule. `events_per_minute` is the Poisson
// rate of *injections* (each injection also schedules its paired repair);
// zero disables fault generation entirely.
struct RandomFaultConfig {
  double events_per_minute = 0.0;
  sim::SimTime horizon = sim::SimTime::from_seconds(60.0);
  // Downtime between a fault and its repair: exponential with this mean.
  double mean_downtime_sec = 5.0;
  // Relative weights of the fault categories.
  double link_weight = 1.0;        // random switch-switch link
  double switch_weight = 0.5;      // random agg/core switch
  double dataserver_weight = 1.0;  // random host crash+restart
  double degrade_weight = 0.5;     // random host access-link slowdown
  double degrade_factor = 0.1;     // degraded links run at 10% capacity
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // non-decreasing `at`

  // Draws a schedule from `config` over `tree`, deterministically for a
  // fixed seed. Targets that are still down when drawn are skipped (the
  // injection is dropped, not re-rolled), so the realized rate can fall
  // slightly below the configured one at high rates.
  static FaultPlan random(const net::ThreeTier& tree,
                          const RandomFaultConfig& config, std::uint64_t seed);
};

}  // namespace mayflower::fault
