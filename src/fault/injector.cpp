#include "fault/injector.hpp"

#include "common/logging.hpp"

namespace mayflower::fault {

void FaultInjector::arm(const FaultPlan& plan) {
  sim::EventQueue& events = fabric_->events();
  for (const FaultEvent& event : plan.events) {
    const sim::SimTime delay =
        event.at > events.now() ? event.at - events.now() : sim::SimTime{};
    events.schedule_in(delay, [this, event] { apply(event); });
  }
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

void FaultInjector::apply(const FaultEvent& event) {
  ++counts_[static_cast<std::size_t>(event.kind)];
  metrics_[static_cast<std::size_t>(event.kind)].inc();
  switch (event.kind) {
    case FaultKind::kLinkDown:
      fabric_->fail_link(event.link);
      return;
    case FaultKind::kLinkUp:
      fabric_->restore_link(event.link);
      return;
    case FaultKind::kSwitchCrash:
      fabric_->fail_switch(event.node);
      return;
    case FaultKind::kSwitchRestore:
      fabric_->restore_switch(event.node);
      return;
    case FaultKind::kDataserverCrash: {
      if (!down_hosts_.insert(event.node).second) return;  // already down
      // Detach the RPC server first: transfers killed by the link failure
      // trigger client retries, which must already see the host dead.
      if (hooks_.dataserver_crash) hooks_.dataserver_crash(event.node);
      fabric_->fail_link(tree_->host_uplink(event.node));
      fabric_->fail_link(tree_->host_downlink(event.node));
      return;
    }
    case FaultKind::kDataserverRestart: {
      if (down_hosts_.erase(event.node) == 0) return;  // not down
      fabric_->restore_link(tree_->host_uplink(event.node));
      fabric_->restore_link(tree_->host_downlink(event.node));
      if (hooks_.dataserver_restart) hooks_.dataserver_restart(event.node);
      return;
    }
    case FaultKind::kDataserverDegrade:
      fabric_->set_link_capacity_factor(tree_->host_uplink(event.node),
                                        event.factor);
      fabric_->set_link_capacity_factor(tree_->host_downlink(event.node),
                                        event.factor);
      return;
    case FaultKind::kDataserverRecover:
      fabric_->set_link_capacity_factor(tree_->host_uplink(event.node), 1.0);
      fabric_->set_link_capacity_factor(tree_->host_downlink(event.node), 1.0);
      return;
  }
}

}  // namespace mayflower::fault
