#include "workload/catalog.hpp"

#include <algorithm>

namespace mayflower::workload {

std::vector<net::NodeId> Catalog::place_replicas(const net::ThreeTier& tree,
                                                 std::size_t replication,
                                                 Rng& rng) {
  MAYFLOWER_ASSERT(replication >= 1);
  const auto& hosts = tree.hosts;
  std::vector<net::NodeId> replicas;
  std::vector<int> used_racks;

  // Primary: uniform over all servers.
  const net::NodeId primary = hosts[rng.next_below(hosts.size())];
  replicas.push_back(primary);
  used_racks.push_back(tree.rack_of(primary));

  auto pick_from = [&](auto&& predicate) -> bool {
    std::vector<net::NodeId> pool;
    for (const net::NodeId h : hosts) {
      const int rack = tree.rack_of(h);
      if (std::find(used_racks.begin(), used_racks.end(), rack) !=
          used_racks.end()) {
        continue;  // one replica per rack
      }
      if (predicate(h)) pool.push_back(h);
    }
    if (pool.empty()) return false;
    const net::NodeId pick = pool[rng.next_below(pool.size())];
    replicas.push_back(pick);
    used_racks.push_back(tree.rack_of(pick));
    return true;
  };

  // Second replica: same pod, different rack.
  if (replication >= 2) {
    const bool ok = pick_from([&](net::NodeId h) {
      return tree.pod_of(h) == tree.pod_of(primary);
    });
    MAYFLOWER_ASSERT_MSG(ok, "pod too small for the second replica");
  }

  // Third and later replicas: other pods.
  while (replicas.size() < replication) {
    bool ok = pick_from([&](net::NodeId h) {
      return tree.pod_of(h) != tree.pod_of(primary);
    });
    if (!ok) {
      // Tiny fabrics: fall back to any unused rack.
      ok = pick_from([](net::NodeId) { return true; });
    }
    MAYFLOWER_ASSERT_MSG(ok, "not enough racks for the replication factor");
  }
  return replicas;
}

Catalog::Catalog(const net::ThreeTier& tree, const CatalogConfig& config,
                 Rng& rng) {
  MAYFLOWER_ASSERT(config.num_files > 0);
  MAYFLOWER_ASSERT(config.file_bytes > 0.0);
  files_.reserve(config.num_files);
  for (std::size_t i = 0; i < config.num_files; ++i) {
    FileMeta f;
    f.id = static_cast<std::uint32_t>(i);
    f.bytes = config.file_bytes;
    f.replicas = place_replicas(tree, config.replication, rng);
    files_.push_back(std::move(f));
  }
}

}  // namespace mayflower::workload
