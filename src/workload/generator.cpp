#include "workload/generator.hpp"

#include <algorithm>

namespace mayflower::workload {
namespace {

bool is_replica(const FileMeta& file, net::NodeId host) {
  return std::find(file.replicas.begin(), file.replicas.end(), host) !=
         file.replicas.end();
}

std::vector<net::NodeId> candidates_for(const net::ThreeTier& tree,
                                        const FileMeta& file, int bucket) {
  const net::NodeId primary = file.primary();
  const int p_rack = tree.rack_of(primary);
  const int p_pod = tree.pod_of(primary);
  std::vector<net::NodeId> out;
  for (const net::NodeId h : tree.hosts) {
    if (is_replica(file, h)) continue;
    const bool rack_match = tree.rack_of(h) == p_rack;
    const bool pod_match = tree.pod_of(h) == p_pod;
    switch (bucket) {
      case 0:  // same rack as the primary
        if (rack_match) out.push_back(h);
        break;
      case 1:  // same pod, different rack
        if (pod_match && !rack_match) out.push_back(h);
        break;
      default:  // different pod
        if (!pod_match) out.push_back(h);
        break;
    }
  }
  return out;
}

}  // namespace

net::NodeId place_client(const net::ThreeTier& tree, const FileMeta& file,
                         const Locality& locality, Rng& rng) {
  MAYFLOWER_ASSERT(locality.same_rack >= 0.0 && locality.same_pod >= 0.0 &&
                   locality.other_pod() >= -1e-12);
  const double u = rng.next_double();
  int bucket;
  if (u < locality.same_rack) {
    bucket = 0;
  } else if (u < locality.same_rack + locality.same_pod) {
    bucket = 1;
  } else {
    bucket = 2;
  }
  // Fall through to the next bucket when the preferred one has no eligible
  // host (e.g. every same-rack host is a replica).
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto pool = candidates_for(tree, file, (bucket + attempt) % 3);
    if (!pool.empty()) return pool[rng.next_below(pool.size())];
  }
  MAYFLOWER_ASSERT_MSG(false, "no eligible client host");
  return net::kInvalidNode;
}

std::vector<ReadJob> generate_jobs(const net::ThreeTier& tree,
                                   const Catalog& catalog,
                                   const GeneratorConfig& config, Rng& rng) {
  MAYFLOWER_ASSERT(config.total_jobs > 0);
  const double system_rate =
      config.lambda_per_server * static_cast<double>(tree.hosts.size());
  const ZipfSampler zipf(catalog.size(), config.zipf_skew);

  std::vector<ReadJob> jobs;
  jobs.reserve(config.total_jobs);
  double now = 0.0;
  for (std::size_t i = 0; i < config.total_jobs; ++i) {
    now += rng.exponential(system_rate);
    ReadJob job;
    job.id = static_cast<std::uint32_t>(i);
    job.arrival_sec = now;
    job.file = static_cast<std::uint32_t>(zipf.sample(rng));
    job.client =
        place_client(tree, catalog.file(job.file), config.locality, rng);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace mayflower::workload
