#include "workload/meta_workload.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace mayflower::workload {
namespace {

// Popularity window: Zipf ranks are drawn over the most recently created
// files (rank 0 = newest), capped so the sampler's CDF is built once.
constexpr std::size_t kPopularityWindow = 1024;

}  // namespace

const char* to_string(MetaOpKind kind) {
  switch (kind) {
    case MetaOpKind::kCreate: return "create";
    case MetaOpKind::kLookup: return "lookup";
    case MetaOpKind::kDelete: return "delete";
    case MetaOpKind::kAppend: return "append";
  }
  return "?";
}

std::string meta_path(const MetaWorkloadConfig& config, std::size_t id) {
  return strfmt("d%03zu/f%07zu", id % std::max<std::size_t>(config.dirs, 1),
                id);
}

std::vector<MetaOp> generate_meta_ops(const MetaWorkloadConfig& config,
                                      Rng& rng) {
  MAYFLOWER_ASSERT(config.total_ops > 0);
  MAYFLOWER_ASSERT(config.path_space > 0);
  MAYFLOWER_ASSERT(config.ops_per_sec > 0.0);
  const double mix_total = config.mix.create + config.mix.lookup +
                           config.mix.del + config.mix.append;
  MAYFLOWER_ASSERT_MSG(mix_total > 0.0, "op mix must have positive weight");

  // Bursty arrivals: on/off modulated Poisson whose long-run mean rate is
  // ops_per_sec. During a burst the rate is burst_factor * base; the off
  // rate is solved so duty*on + (1-duty)*off = base (floored at base/100
  // when the duty/factor combination would demand a negative off rate).
  const bool bursty = config.burst_factor > 1.0 && config.burst_duty > 0.0 &&
                      config.burst_duty < 1.0 && config.burst_len_sec > 0.0;
  const double rate_on = config.ops_per_sec * config.burst_factor;
  const double rate_off =
      bursty ? std::max(config.ops_per_sec *
                            (1.0 - config.burst_duty * config.burst_factor) /
                            (1.0 - config.burst_duty),
                        config.ops_per_sec / 100.0)
             : config.ops_per_sec;
  const double mean_on = config.burst_len_sec;
  const double mean_off =
      config.burst_len_sec * (1.0 - config.burst_duty) / config.burst_duty;

  const ZipfSampler zipf(kPopularityWindow, config.zipf_skew);

  // Namespace liveness: live ids (creation order, newest at the back) plus
  // a flag per id so creates can find a free name after deletes.
  std::vector<std::size_t> live;
  std::vector<bool> is_live(config.path_space, false);
  std::size_t create_cursor = 0;

  const auto next_free_id = [&]() -> std::size_t {
    for (std::size_t tries = 0; tries < config.path_space; ++tries) {
      const std::size_t id = create_cursor;
      create_cursor = (create_cursor + 1) % config.path_space;
      if (!is_live[id]) return id;
    }
    MAYFLOWER_ASSERT_MSG(false, "path space exhausted");
    __builtin_unreachable();
  };
  const auto pick_live_index = [&]() -> std::size_t {
    const std::size_t rank = zipf.sample(rng) % live.size();
    return live.size() - 1 - rank;  // rank 0 = most recently created
  };

  std::vector<MetaOp> ops;
  ops.reserve(config.total_ops);
  double now = 0.0;
  bool burst_on = false;
  double phase_end = bursty ? rng.exponential(1.0 / mean_off) : 0.0;
  while (ops.size() < config.total_ops) {
    if (bursty) {
      // Exponential gaps are memoryless, so truncating a gap at a phase
      // boundary and redrawing at the new rate stays a valid modulated
      // Poisson process.
      double gap = rng.exponential(burst_on ? rate_on : rate_off);
      while (now + gap > phase_end) {
        now = phase_end;
        burst_on = !burst_on;
        phase_end =
            now + rng.exponential(1.0 / (burst_on ? mean_on : mean_off));
        gap = rng.exponential(burst_on ? rate_on : rate_off);
      }
      now += gap;
    } else {
      now += rng.exponential(config.ops_per_sec);
    }

    // Draw the op kind from the mix; ops that need a live file fall back to
    // create while the namespace is empty, and creates fall back to lookup
    // if every name is taken.
    const double u = rng.uniform(0.0, mix_total);
    MetaOpKind kind;
    if (u < config.mix.create) {
      kind = MetaOpKind::kCreate;
    } else if (u < config.mix.create + config.mix.lookup) {
      kind = MetaOpKind::kLookup;
    } else if (u < config.mix.create + config.mix.lookup + config.mix.del) {
      kind = MetaOpKind::kDelete;
    } else {
      kind = MetaOpKind::kAppend;
    }
    if (live.empty()) kind = MetaOpKind::kCreate;
    if (kind == MetaOpKind::kCreate && live.size() == config.path_space) {
      kind = MetaOpKind::kLookup;
    }

    MetaOp op;
    op.arrival_sec = now;
    op.kind = kind;
    if (kind == MetaOpKind::kCreate) {
      const std::size_t id = next_free_id();
      is_live[id] = true;
      live.push_back(id);
      op.path = meta_path(config, id);
    } else if (kind == MetaOpKind::kDelete) {
      const std::size_t idx = pick_live_index();
      const std::size_t id = live[idx];
      is_live[id] = false;
      live[idx] = live.back();
      live.pop_back();
      op.path = meta_path(config, id);
    } else {
      op.path = meta_path(config, live[pick_live_index()]);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace mayflower::workload
