// Metadata-heavy workload (ROADMAP "metadata plane for millions of files"):
// a stream of small-file metadata operations — create / lookup / delete /
// append in a configurable mix — over a large path space laid out as
// top-level directories ("d007/f000123"), with Zipf popularity over the
// live file set and bursty (on/off modulated Poisson) arrivals.
//
// The generator tracks namespace liveness itself so the emitted trace is
// always valid: lookups/deletes/appends only ever reference a file that a
// prior create brought to life (and deletes free the name for recreation,
// which is exactly the pattern the client cache-invalidation fix guards).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace mayflower::workload {

enum class MetaOpKind : std::uint8_t {
  kCreate = 0,
  kLookup = 1,
  kDelete = 2,
  kAppend = 3,
};

const char* to_string(MetaOpKind kind);

struct MetaOp {
  double arrival_sec = 0.0;
  MetaOpKind kind = MetaOpKind::kCreate;
  std::string path;
};

struct MetaMix {
  double create = 0.35;
  double lookup = 0.45;
  double del = 0.10;
  double append = 0.10;
};

struct MetaWorkloadConfig {
  std::size_t total_ops = 10'000;
  // Path space: file ids cycle through [0, path_space) and map to
  // "d<id % dirs>/f<id>", so each top-level directory holds an equal slice.
  std::size_t path_space = 100'000;
  std::size_t dirs = 64;
  MetaMix mix{};
  double zipf_skew = 1.1;  // popularity over the live set (most recent = 0)
  // Arrivals: base open-loop rate, optionally modulated by on/off bursts.
  // During a burst the instantaneous rate is burst_factor * the on/off-
  // corrected base; bursts cover ~burst_duty of the time with mean length
  // burst_len_sec, and the long-run mean rate stays ops_per_sec.
  double ops_per_sec = 20'000.0;
  double burst_factor = 1.0;  // 1 = plain Poisson
  double burst_duty = 0.1;
  double burst_len_sec = 0.05;
};

// Path for file id `i` under `config`'s directory layout.
std::string meta_path(const MetaWorkloadConfig& config, std::size_t id);

// Generates the arrival-ordered op trace (deterministic for a given rng
// state).
std::vector<MetaOp> generate_meta_ops(const MetaWorkloadConfig& config,
                                      Rng& rng);

}  // namespace mayflower::workload
