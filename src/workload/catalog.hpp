// File catalog with the replica placement constraints of §6.1.1:
//   * the primary replica on a uniform-randomly selected server,
//   * the second replica in the same pod as the primary but a different rack
//     (fault domains: "replicas should not be on the same rack", §3.1),
//   * the third and further replicas in other pods, on distinct racks.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/tree.hpp"

namespace mayflower::workload {

struct FileMeta {
  std::uint32_t id = 0;
  double bytes = 0.0;
  // replicas[0] is the primary.
  std::vector<net::NodeId> replicas;

  net::NodeId primary() const { return replicas.front(); }
};

struct CatalogConfig {
  std::size_t num_files = 400;
  double file_bytes = 256e6;   // the paper's default 256 MB block
  std::size_t replication = 3;
};

class Catalog {
 public:
  Catalog(const net::ThreeTier& tree, const CatalogConfig& config, Rng& rng);

  const FileMeta& file(std::size_t i) const {
    MAYFLOWER_ASSERT(i < files_.size());
    return files_[i];
  }
  std::size_t size() const { return files_.size(); }

  // Places one file's replicas (exposed for tests and for the FS-level
  // nameserver, which uses the same strategy).
  static std::vector<net::NodeId> place_replicas(const net::ThreeTier& tree,
                                                 std::size_t replication,
                                                 Rng& rng);

 private:
  std::vector<FileMeta> files_;
};

}  // namespace mayflower::workload
