// Synthetic read workload (§6.1.1):
//  * job arrivals: Poisson with rate lambda per server (system-wide rate is
//    lambda * |hosts|),
//  * file popularity: Zipf with skew 1.1,
//  * client placement: "staggered" relative to the requested file's primary
//    replica — same rack with probability R, same pod (different rack) with
//    probability P, different pod with probability O = 1 - R - P — always
//    excluding the replica hosts themselves (co-located reads have no
//    network activity and are ignored, §6.4).
#pragma once

#include <vector>

#include "workload/catalog.hpp"

namespace mayflower::workload {

struct Locality {
  double same_rack = 0.5;
  double same_pod = 0.3;
  double other_pod() const { return 1.0 - same_rack - same_pod; }
};

struct ReadJob {
  std::uint32_t id = 0;
  double arrival_sec = 0.0;
  std::uint32_t file = 0;
  net::NodeId client = net::kInvalidNode;
};

struct GeneratorConfig {
  double lambda_per_server = 0.07;  // jobs/s per server
  double zipf_skew = 1.1;
  Locality locality;
  std::size_t total_jobs = 1000;
};

// Picks a client host for a file per the staggered locality distribution.
net::NodeId place_client(const net::ThreeTier& tree, const FileMeta& file,
                         const Locality& locality, Rng& rng);

// Generates the full arrival-ordered job trace.
std::vector<ReadJob> generate_jobs(const net::ThreeTier& tree,
                                   const Catalog& catalog,
                                   const GeneratorConfig& config, Rng& rng);

}  // namespace mayflower::workload
