// Metadata-plane experiment driver: runs the metadata-heavy workload
// (workload/meta_workload.hpp) against a full fs::Cluster with a sharded
// metadata plane, and reports metadata ops/s, lookup latency percentiles,
// and create-to-first-byte latency — the metrics the MetaFlow/AsyncFS
// literature plots. All timing is simulated time, so results are exactly
// reproducible for a fixed seed.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "fs/cluster.hpp"
#include "workload/meta_workload.hpp"

namespace mayflower::harness {

struct MetaExperimentConfig {
  std::size_t shards = 1;
  fs::meta::Partition partition = fs::meta::Partition::kHash;
  bool async_commits = false;
  // Modeled per-RPC metadata CPU cost on every shard. This is the
  // single-server throughput wall; the workload's offered rate should
  // exceed 1e6/service_time_us to saturate one shard.
  double service_time_us = 100.0;
  workload::MetaWorkloadConfig workload{};
  net::ThreeTierConfig fabric{};
  // Ops round-robin over this many client hosts (capped at the host count).
  std::size_t client_hosts = 8;
  std::uint32_t replication = 3;
  // Bytes streamed to the primary right after every create (the "small
  // file" body) and per append op. Exercises the provisional-handle data
  // path under async commits.
  double append_bytes = 64'000.0;
  std::uint64_t seed = 1;
  // Shard + dataserver liveness probing (0 = off). Needed for failover.
  sim::SimTime heartbeat{};
  // Fault scenario: crash shard server `kill_server` at this time (sim
  // seconds; negative = never). Requires heartbeat > 0 to recover.
  double kill_server_at_sec = -1.0;
  std::size_t kill_server = 0;
  double sim_time_cap_sec = 1000.0;
  obs::Observability* obs = nullptr;  // optional; null measures nothing
};

struct MetaRunResult {
  std::uint64_t ops = 0;  // metadata ops completed (ok or error)
  std::uint64_t creates = 0;
  std::uint64_t lookups = 0;
  std::uint64_t deletes = 0;
  std::uint64_t appends = 0;
  std::uint64_t errors = 0;  // non-kOk completions (races, failover window)
  double makespan_sec = 0.0;   // first arrival -> last metadata completion
  double ops_per_sec = 0.0;    // ops / makespan (simulated throughput)
  Summary lookup_latency;      // per-lookup issue->reply, seconds
  // Mean create issue -> provisional handle (the moment the client may
  // start streaming data), seconds. Async commits shrink this.
  double mean_create_to_first_byte_sec = 0.0;
  std::uint64_t wrong_shard_retries = 0;
  std::uint64_t map_fetches = 0;
  std::uint64_t failovers = 0;
  std::uint64_t adoptions_completed = 0;
};

MetaRunResult run_meta_experiment(const MetaExperimentConfig& config);

}  // namespace mayflower::harness
