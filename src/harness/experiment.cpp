#include "harness/experiment.hpp"

#include <algorithm>
#include <memory>

#include <functional>

#include "common/logging.hpp"
#include "fault/injector.hpp"
#include "policy/hedera.hpp"
#include "policy/scheme.hpp"
#include "sdn/fabric.hpp"
#include "sdn/link_rate_monitor.hpp"
#include "workload/catalog.hpp"

namespace mayflower::harness {
namespace {

struct JobState {
  double arrival_sec = 0.0;
  // Active transfers plus pending retries: a killed transfer keeps its slot
  // until the replacement read finishes, so a job can never complete while a
  // piece of it is still being recovered.
  std::size_t outstanding = 0;
  bool measured = false;
  bool split = false;
  double first_subflow_done = -1.0;
};

// Bounded backoff between read retries after an injected failure.
sim::SimTime retry_backoff(std::uint32_t attempt) {
  const std::int64_t ms =
      std::min<std::int64_t>(200 * (static_cast<std::int64_t>(attempt) + 1),
                             2000);
  return sim::SimTime::from_millis(static_cast<double>(ms));
}

bool uses_flowserver(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSinbadEcmp:
    case SchemeKind::kNearestEcmp:
    case SchemeKind::kRandomEcmp:
    case SchemeKind::kHdfsEcmp:
    case SchemeKind::kNearestHedera:
    case SchemeKind::kSinbadHedera:
      return false;
    default:
      return true;
  }
}

bool uses_sinbad(SchemeKind kind) {
  return kind == SchemeKind::kSinbadMayflower ||
         kind == SchemeKind::kSinbadEcmp ||
         kind == SchemeKind::kSinbadHedera;
}

bool uses_hedera(SchemeKind kind) {
  return kind == SchemeKind::kNearestHedera ||
         kind == SchemeKind::kSinbadHedera;
}

}  // namespace

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kMayflower: return "mayflower";
    case SchemeKind::kSinbadMayflower: return "sinbad-r mayflower";
    case SchemeKind::kSinbadEcmp: return "sinbad-r ecmp";
    case SchemeKind::kNearestMayflower: return "nearest mayflower";
    case SchemeKind::kNearestEcmp: return "nearest ecmp";
    case SchemeKind::kRandomEcmp: return "random ecmp";
    case SchemeKind::kNearestHedera: return "nearest hedera";
    case SchemeKind::kSinbadHedera: return "sinbad-r hedera";
    case SchemeKind::kHdfsEcmp: return "hdfs ecmp";
    case SchemeKind::kHdfsMayflower: return "hdfs mayflower";
    case SchemeKind::kMayflowerNoMultiread: return "mayflower (no multiread)";
    case SchemeKind::kMayflowerNoFreeze: return "mayflower (no freeze)";
    case SchemeKind::kMayflowerGreedy: return "mayflower (greedy bw)";
  }
  return "?";
}

RunResult run_experiment(const ExperimentConfig& config) {
  // Independent random streams: the workload draw is identical for every
  // scheme given the same seed; policy tie-breaking is a separate stream.
  Rng workload_rng(splitmix64(config.seed ^ 0x57a99e12d0c1f00dULL));
  Rng policy_rng(splitmix64(config.seed ^ 0x9021bc0ffee12345ULL));

  net::ThreeTier tree = config.fabric_kind == FabricKind::kFatTree
                            ? net::three_tier_from_fat_tree(config.fat_tree)
                            : net::build_three_tier(config.fabric);
  workload::Catalog catalog(tree, config.catalog, workload_rng);
  const std::vector<workload::ReadJob> jobs =
      generate_jobs(tree, catalog, config.gen, workload_rng);

  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);
  fabric.set_obs(config.obs);
  obs::Counter harness_retries;
  if (config.obs != nullptr) {
    harness_retries = config.obs->metrics.counter("harness.read_retries");
  }

  // --- scheme construction ----------------------------------------------
  flowserver::FlowserverConfig fs_config = config.flowserver;
  fs_config.obs = config.obs;
  switch (config.scheme) {
    case SchemeKind::kMayflowerNoMultiread:
      fs_config.multiread_enabled = false;
      break;
    case SchemeKind::kMayflowerNoFreeze:
      fs_config.freeze_enabled = false;
      break;
    case SchemeKind::kMayflowerGreedy:
      fs_config.impact_aware = false;
      break;
    default:
      break;
  }

  std::unique_ptr<flowserver::Flowserver> flow_server;
  if (uses_flowserver(config.scheme)) {
    flow_server = std::make_unique<flowserver::Flowserver>(fabric, fs_config);
    flow_server->start();
  }
  // Sinbad-R's NIC telemetry: one LinkRateMonitor over every host uplink
  // (rack-major host order), publishing rates into whichever views the
  // scheme builds. The monitor's ctor starts the poll timer — keep it at
  // the position the old in-policy sampler started, so event sequences
  // (and therefore every downstream random draw) are unchanged.
  std::unique_ptr<sdn::LinkRateMonitor> nic_monitor;
  std::unique_ptr<policy::SinbadRReplica> sinbad;
  if (uses_sinbad(config.scheme)) {
    std::vector<net::LinkId> uplinks;
    uplinks.reserve(tree.hosts.size());
    for (const net::NodeId h : tree.hosts) {
      uplinks.push_back(tree.host_uplink(h));
    }
    nic_monitor = std::make_unique<sdn::LinkRateMonitor>(
        fabric, std::move(uplinks), config.sinbad_poll);
    if (flow_server) flow_server->set_rate_monitor(nic_monitor.get());
    sinbad = std::make_unique<policy::SinbadRReplica>(tree, policy_rng);
  }
  std::unique_ptr<policy::HederaScheduler> hedera;
  if (uses_hedera(config.scheme)) {
    hedera = std::make_unique<policy::HederaScheduler>(
        fabric, policy::HederaConfig{});
    hedera->start();
  }
  policy::NearestReplica nearest(tree.topo, policy_rng);
  policy::RandomReplica random_replica(policy_rng);
  policy::HdfsRackAwareReplica hdfs(tree.topo, policy_rng);

  std::unique_ptr<policy::Scheme> scheme;
  const std::string scheme_name = to_string(config.scheme);
  switch (config.scheme) {
    case SchemeKind::kMayflower:
    case SchemeKind::kMayflowerNoMultiread:
    case SchemeKind::kMayflowerNoFreeze:
    case SchemeKind::kMayflowerGreedy:
      scheme = std::make_unique<policy::MayflowerScheme>(*flow_server,
                                                         scheme_name);
      break;
    case SchemeKind::kSinbadMayflower:
      scheme = std::make_unique<policy::ReplicaPlusMayflowerPath>(
          *sinbad, *flow_server, scheme_name);
      break;
    case SchemeKind::kNearestMayflower:
      scheme = std::make_unique<policy::ReplicaPlusMayflowerPath>(
          nearest, *flow_server, scheme_name);
      break;
    case SchemeKind::kHdfsMayflower:
      scheme = std::make_unique<policy::ReplicaPlusMayflowerPath>(
          hdfs, *flow_server, scheme_name);
      break;
    case SchemeKind::kSinbadEcmp: {
      auto ecmp = std::make_unique<policy::ReplicaPlusEcmp>(
          *sinbad, fabric, scheme_name, config.seed);
      ecmp->set_rate_monitor(nic_monitor.get());
      scheme = std::move(ecmp);
      break;
    }
    case SchemeKind::kNearestEcmp:
      scheme = std::make_unique<policy::ReplicaPlusEcmp>(
          nearest, fabric, scheme_name, config.seed);
      break;
    case SchemeKind::kRandomEcmp:
      scheme = std::make_unique<policy::ReplicaPlusEcmp>(
          random_replica, fabric, scheme_name, config.seed);
      break;
    case SchemeKind::kNearestHedera:
      scheme = std::make_unique<policy::ReplicaPlusHedera>(
          nearest, fabric, *hedera, scheme_name, config.seed);
      break;
    case SchemeKind::kSinbadHedera: {
      auto hed = std::make_unique<policy::ReplicaPlusHedera>(
          *sinbad, fabric, *hedera, scheme_name, config.seed);
      hed->set_rate_monitor(nic_monitor.get());
      scheme = std::move(hed);
      break;
    }
    case SchemeKind::kHdfsEcmp:
      scheme = std::make_unique<policy::ReplicaPlusEcmp>(
          hdfs, fabric, scheme_name, config.seed);
      break;
  }

  // --- fault injection -----------------------------------------------------
  std::unique_ptr<fault::FaultInjector> injector;
  if (config.faults.events_per_minute > 0.0) {
    injector = std::make_unique<fault::FaultInjector>(fabric, tree);
    injector->set_metrics(
        config.obs == nullptr ? nullptr : &config.obs->metrics);
    injector->arm(fault::FaultPlan::random(
        tree, config.faults, splitmix64(config.seed ^ 0xfa017b0b5ULL)));
  }

  // --- job scheduling ------------------------------------------------------
  RunResult result;
  result.scheme = scheme_name;
  std::vector<JobState> states(jobs.size());
  std::vector<double> durations(jobs.size(), -1.0);
  std::size_t jobs_done = 0;

  // Launches (or, after a failure, re-launches) a read of `bytes` for job
  // `job_id`. The caller has already reserved one outstanding slot for it;
  // a split plan claims the extra slots here. The function object outlives
  // the event loop (both live in this frame; leftover scheduled callbacks
  // are destroyed unrun), so callbacks may hold it by reference.
  using LaunchFn = std::function<void(std::size_t, net::NodeId,
                                      const std::vector<net::NodeId>&, double,
                                      std::uint32_t)>;
  LaunchFn launch_read;
  launch_read = [&](std::size_t job_id, net::NodeId client,
                    const std::vector<net::NodeId>& replicas, double bytes,
                    std::uint32_t attempt) {
    const auto retry_later = [&, job_id, client, replicas, bytes, attempt] {
      harness_retries.inc();
      events.schedule_in(
          retry_backoff(attempt),
          [&launch_read, job_id, client, replicas, bytes, attempt] {
            launch_read(job_id, client, replicas, bytes, attempt + 1);
          });
    };
    std::vector<net::NodeId> live = replicas;
    if (injector) {
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](net::NodeId h) {
                                  return !injector->host_up(h);
                                }),
                 live.end());
    }
    if (live.empty()) {  // every replica crashed: wait out a repair
      retry_later();
      return;
    }
    // The plan may arrive later (batched admission defers the decision to
    // the batch drain), so the continuation captures its parameters by
    // value; by-reference captures are frame-locals that outlive the event
    // loop, same as launch_read itself.
    scheme->plan_read_async(
        client, live, bytes,
        [&, job_id, client, replicas, bytes, attempt](
            std::vector<policy::ReadAssignment> plan) {
          if (plan.empty()) {  // no live path to any live replica right now
            MAYFLOWER_ASSERT_MSG(injector != nullptr,
                                 "empty read plan without fault injection");
            harness_retries.inc();
            events.schedule_in(
                retry_backoff(attempt),
                [&launch_read, job_id, client, replicas, bytes, attempt] {
                  launch_read(job_id, client, replicas, bytes, attempt + 1);
                });
            return;
          }
          JobState& st = states[job_id];
          st.outstanding += plan.size() - 1;  // launch already holds one slot
          if (plan.size() > 1) st.split = true;
          for (const auto& assignment : plan) {
            fabric.start_flow(
                assignment.cookie, assignment.path, assignment.bytes,
                [&, job_id](sdn::Cookie cookie, sim::SimTime) {
                  scheme->on_flow_complete(cookie);
                  JobState& js = states[job_id];
                  MAYFLOWER_ASSERT(js.outstanding > 0);
                  const double now_sec = events.now().seconds();
                  if (js.split && js.first_subflow_done < 0.0) {
                    js.first_subflow_done = now_sec;
                  }
                  if (--js.outstanding == 0) {
                    durations[job_id] = now_sec - js.arrival_sec;
                    if (js.split && js.measured) {
                      result.subflow_finish_gaps.push_back(
                          now_sec - js.first_subflow_done);
                    }
                    ++jobs_done;
                  }
                },
                [&, job_id, client, replicas, attempt](
                    sdn::Cookie cookie, const net::FlowRecord& record) {
                  // A fault killed this transfer mid-flight (or at birth).
                  // Release scheme state and retry the unread remainder
                  // against the replica set; the slot carries over to the
                  // replacement read.
                  scheme->on_flow_complete(cookie);
                  ++result.flow_failures;
                  harness_retries.inc();
                  const double rest = std::max(record.remaining_bytes, 1.0);
                  events.schedule_in(
                      retry_backoff(attempt),
                      [&launch_read, job_id, client, replicas, rest,
                       attempt] {
                        launch_read(job_id, client, replicas, rest,
                                    attempt + 1);
                      });
                });
          }
        });
  };

  for (const workload::ReadJob& job : jobs) {
    events.schedule_at(
        sim::SimTime::from_seconds(job.arrival_sec), [&, job] {
          JobState& st = states[job.id];
          st.arrival_sec = job.arrival_sec;
          st.measured = job.id >= config.warmup_jobs;
          st.outstanding = 1;
          const workload::FileMeta& file = catalog.file(job.file);
          launch_read(job.id, job.client, file.replicas, file.bytes,
                      /*attempt=*/0);
        });
  }

  // --- run -----------------------------------------------------------------
  const sim::SimTime cap = sim::SimTime::from_seconds(config.sim_time_cap_sec);
  while (jobs_done < jobs.size() && !events.empty() && events.now() < cap) {
    events.step();
  }
  result.sim_duration_sec = events.now().seconds();

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].id < config.warmup_jobs) continue;
    if (durations[i] >= 0.0) {
      result.completions.push_back(durations[i]);
    } else {
      // Censored: still running (or never started) at the cap.
      ++result.incomplete;
      result.completions.push_back(
          std::max(result.sim_duration_sec - jobs[i].arrival_sec, 0.0));
    }
  }
  result.summary = summarize(result.completions);
  if (injector) result.faults_injected = injector->total_injected();
  if (flow_server) {
    result.split_reads = flow_server->split_reads();
    result.selections = flow_server->selections();
    result.samples_applied = flow_server->stats_samples();
    result.samples_deferred_mouse = flow_server->telemetry().deferred_mouse();
    result.samples_deferred_budget =
        flow_server->telemetry().deferred_budget();
    result.telemetry_promotions = flow_server->telemetry().promotions();
    result.telemetry_demotions = flow_server->telemetry().demotions();
    result.poll_cycles =
        flow_server->polls() / flow_server->config().poll_groups;
    flow_server->stop();
  }
  if (nic_monitor) nic_monitor->stop();
  if (hedera) hedera->stop();
  return result;
}

}  // namespace mayflower::harness
