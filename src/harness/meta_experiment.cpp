#include "harness/meta_experiment.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"

namespace mayflower::harness {

using workload::MetaOp;
using workload::MetaOpKind;

MetaRunResult run_meta_experiment(const MetaExperimentConfig& config) {
  fs::ClusterConfig cluster_config;
  cluster_config.fabric = config.fabric;
  // Nearest+ECMP keeps the read scheme out of the measurement: this
  // experiment loads the metadata plane, not the Flowserver.
  cluster_config.scheme = fs::FsScheme::kNearestEcmp;
  cluster_config.seed = config.seed;
  cluster_config.obs = config.obs;
  cluster_config.meta_shards = config.shards;
  cluster_config.meta_partition = config.partition;
  cluster_config.meta_async = config.async_commits;
  cluster_config.meta_service_time =
      sim::SimTime::from_micros(config.service_time_us);
  cluster_config.heartbeat_interval = config.heartbeat;
  cluster_config.client.replication = config.replication;
  // Metadata-heavy means lookups hit the servers, not a warm client cache.
  cluster_config.client.meta_cache_ttl = sim::SimTime{};
  fs::Cluster cluster(std::move(cluster_config));

  Rng rng(config.seed);
  const std::vector<MetaOp> trace =
      workload::generate_meta_ops(config.workload, rng);
  MAYFLOWER_ASSERT(!trace.empty());

  const auto& hosts = cluster.tree().hosts;
  const std::size_t n_clients =
      std::max<std::size_t>(1, std::min(config.client_hosts, hosts.size()));

  MetaRunResult result;
  std::vector<double> lookup_samples;
  std::vector<double> create_fb_samples;
  double last_completion = trace.front().arrival_sec;
  const auto complete = [&](MetaOpKind kind, fs::Status status) {
    ++result.ops;
    switch (kind) {
      case MetaOpKind::kCreate: ++result.creates; break;
      case MetaOpKind::kLookup: ++result.lookups; break;
      case MetaOpKind::kDelete: ++result.deletes; break;
      case MetaOpKind::kAppend: ++result.appends; break;
    }
    if (status != fs::Status::kOk) ++result.errors;
    last_completion =
        std::max(last_completion, cluster.events().now().seconds());
  };

  const auto body = [&](std::uint64_t seed) {
    return fs::ExtentList(fs::Extent::pattern(
        seed, static_cast<std::uint64_t>(config.append_bytes)));
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const MetaOp& op = trace[i];
    cluster.events().schedule_at(
        sim::SimTime::from_seconds(op.arrival_sec), [&, i, &op = trace[i]] {
          fs::Client& client = cluster.client_at(hosts[i % n_clients]);
          const sim::SimTime t0 = cluster.events().now();
          switch (op.kind) {
            case MetaOpKind::kCreate:
              client.create(op.path, [&, i, t0](fs::Status status,
                                                const fs::FileInfo&) {
                complete(MetaOpKind::kCreate, status);
                if (status != fs::Status::kOk) return;
                // The ack hands back a (possibly provisional) handle: data
                // may start flowing now. Stream the small-file body.
                create_fb_samples.push_back(
                    (cluster.events().now() - t0).seconds());
                fs::Client& c = cluster.client_at(hosts[i % n_clients]);
                c.append(trace[i].path, body(config.seed + i),
                         [](fs::Status, const fs::AppendResp&) {});
              });
              break;
            case MetaOpKind::kLookup:
              client.stat(op.path, [&, t0](fs::Status status,
                                           const fs::FileInfo&) {
                complete(MetaOpKind::kLookup, status);
                if (status == fs::Status::kOk) {
                  lookup_samples.push_back(
                      (cluster.events().now() - t0).seconds());
                }
              });
              break;
            case MetaOpKind::kDelete:
              client.remove(op.path, [&](fs::Status status) {
                complete(MetaOpKind::kDelete, status);
              });
              break;
            case MetaOpKind::kAppend:
              client.append(op.path, body(config.seed ^ i),
                            [&](fs::Status status, const fs::AppendResp&) {
                              complete(MetaOpKind::kAppend, status);
                            });
              break;
          }
        });
  }

  if (config.kill_server_at_sec >= 0.0 && cluster.meta_plane() != nullptr) {
    const std::size_t victim =
        std::min(config.kill_server, cluster.meta_plane()->server_count() - 1);
    cluster.events().schedule_at(
        sim::SimTime::from_seconds(config.kill_server_at_sec),
        [&cluster, victim] { cluster.meta_plane()->crash_server(victim); });
  }

  cluster.run_until(sim::SimTime::from_seconds(config.sim_time_cap_sec));

  result.makespan_sec = last_completion - trace.front().arrival_sec;
  result.ops_per_sec = result.makespan_sec > 0.0
                           ? static_cast<double>(result.ops) /
                                 result.makespan_sec
                           : 0.0;
  result.lookup_latency = summarize(lookup_samples);
  if (!create_fb_samples.empty()) {
    double sum = 0.0;
    for (double s : create_fb_samples) sum += s;
    result.mean_create_to_first_byte_sec =
        sum / static_cast<double>(create_fb_samples.size());
  }
  for (const auto& router : cluster.meta_routers()) {
    result.map_fetches += router->map_fetches();
    result.wrong_shard_retries += router->wrong_shard_retries();
  }
  if (cluster.meta_plane() != nullptr) {
    result.failovers = cluster.meta_plane()->failovers();
    result.adoptions_completed = cluster.meta_plane()->adoptions_completed();
  }
  return result;
}

}  // namespace mayflower::harness
