// Write-heavy mixed-tenant experiment driver: a single tenant issuing an
// open-loop Poisson mix of writes (create + append one block) and reads of
// previously written files against a full fs::Cluster, parameterized by the
// write-placement policy (static / model / measured) and the replication
// transport (legacy primary fan-out vs the Flowserver-planned pipelined
// chain). This is the write-side companion of harness/experiment.hpp's
// read-only workload: all timing is simulated, so results are exactly
// reproducible for a fixed seed.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "fs/cluster.hpp"

namespace mayflower::harness {

struct WriteExperimentConfig {
  policy::WritePlacementKind placement = policy::WritePlacementKind::kStatic;
  bool pipeline = false;
  // Fraction of jobs that write; the rest read a file some earlier write
  // produced (a job with nothing to read writes instead, so the trace is
  // always valid).
  double write_fraction = 0.7;
  double lambda_per_server = 0.03;  // jobs/s per host
  std::size_t total_jobs = 200;
  std::size_t warmup_jobs = 25;
  double block_bytes = 256e6;
  std::size_t decision_threads = 0;
  net::ThreeTierConfig fabric{};
  double sim_time_cap_sec = 30000.0;
  std::uint64_t seed = 1;
  obs::Observability* obs = nullptr;  // optional; null measures nothing
};

struct WriteRunResult {
  Summary write_completion;  // create -> append ack, seconds (post-warmup)
  Summary read_completion;   // read_file issue -> last byte, seconds
  std::size_t writes = 0;    // measured (post-warmup) write jobs
  std::size_t reads = 0;     // measured read jobs
  std::size_t incomplete = 0;
  // Flowserver / dataserver write-path telemetry for the whole run.
  std::uint64_t chains_planned = 0;
  std::uint64_t chain_appends = 0;
  std::uint64_t relay_failures = 0;
  double makespan_sec = 0.0;
};

WriteRunResult run_write_experiment(const WriteExperimentConfig& config);

}  // namespace mayflower::harness
