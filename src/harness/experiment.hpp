// Experiment harness: wires topology + SDN fabric + scheme + workload,
// runs the event loop to completion, and reports the metrics the paper
// plots (average and 95th-percentile job completion time).
//
// For a fixed seed, the catalog, job trace and client placement are
// identical across schemes — comparisons measure the scheme, not the draw.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "flowserver/flowserver.hpp"
#include "net/fat_tree.hpp"
#include "net/tree.hpp"
#include "workload/generator.hpp"

namespace mayflower::harness {

enum class SchemeKind {
  kMayflower,
  kSinbadMayflower,
  kSinbadEcmp,
  kNearestMayflower,
  kNearestEcmp,
  kRandomEcmp,
  kNearestHedera,   // Hedera-style dynamic flow scheduler (§1's strawman)
  kSinbadHedera,
  kHdfsEcmp,        // Fig. 8 baseline
  kHdfsMayflower,   // Fig. 8 middle bar
  // Ablations:
  kMayflowerNoMultiread,
  kMayflowerNoFreeze,
  kMayflowerGreedy,  // cost = own completion time only (no impact term)
};

const char* to_string(SchemeKind kind);

// Which fabric the experiment runs on: the paper's oversubscribed 3-tier
// tree (Fig. 3) or a full-bisection k-ary fat-tree (the sensitivity /
// datacenter-scale fabric).
enum class FabricKind {
  kThreeTier,
  kFatTree,
};

struct ExperimentConfig {
  FabricKind fabric_kind = FabricKind::kThreeTier;
  net::ThreeTierConfig fabric{};
  net::FatTreeConfig fat_tree{};  // used when fabric_kind == kFatTree
  workload::CatalogConfig catalog{};
  workload::GeneratorConfig gen{};
  SchemeKind scheme = SchemeKind::kMayflower;
  flowserver::FlowserverConfig flowserver{};
  sim::SimTime sinbad_poll = sim::SimTime::from_seconds(1.0);
  std::uint64_t seed = 1;
  std::size_t warmup_jobs = 100;        // excluded from reported stats
  double sim_time_cap_sec = 200000.0;   // safety net for saturated schemes
  // Random fault injection (events_per_minute == 0 disables it). When on,
  // killed transfers are retried against surviving replicas with a bounded
  // backoff, so jobs complete late rather than never.
  fault::RandomFaultConfig faults{};
  // Optional observability hub (not owned): fabric/Flowserver/injector
  // counters, per-flow traces and decision audits land here. Use a fresh
  // hub per run — cookies repeat across seeds. Null measures nothing.
  obs::Observability* obs = nullptr;
};

struct RunResult {
  std::string scheme;
  // Completion time (s) per measured job, job order. Jobs still unfinished
  // at the cap are censored at (cap - arrival) and counted in `incomplete`.
  std::vector<double> completions;
  Summary summary;
  std::size_t incomplete = 0;
  std::uint64_t split_reads = 0;
  std::uint64_t selections = 0;
  double sim_duration_sec = 0.0;
  // Gap between first and last subflow finish per split read (s) — the §4.3
  // "subflows finish within a second" claim.
  std::vector<double> subflow_finish_gaps;
  // Fault telemetry: transfers killed by an injected failure (each triggers
  // a retry) and fault events applied over the run.
  std::uint64_t flow_failures = 0;
  std::uint64_t faults_injected = 0;
  // Adaptive-telemetry accounting (all zero unless the budgeted poll layer
  // is enabled via FlowserverConfig::telemetry — DESIGN.md §14).
  std::uint64_t samples_applied = 0;
  std::uint64_t samples_deferred_mouse = 0;
  std::uint64_t samples_deferred_budget = 0;
  std::uint64_t telemetry_promotions = 0;
  std::uint64_t telemetry_demotions = 0;
  std::uint64_t poll_cycles = 0;
};

RunResult run_experiment(const ExperimentConfig& config);

}  // namespace mayflower::harness
