#include "harness/report.hpp"

#include <cstdio>

#include "common/stats.hpp"
#include "common/strings.hpp"

namespace mayflower::harness {
namespace {

// p95 has no clean closed-form ratio CI; report the plain ratio and mark the
// avg column with its Fieller interval, as the paper's error bars do.
std::string ratio_cell(const RatioInterval& ri) {
  if (!ri.bounded) return strfmt("%5.2fx (unbounded CI)", ri.ratio);
  return strfmt("%5.2fx [%4.2f, %4.2f]", ri.ratio, ri.lo, ri.hi);
}

}  // namespace

void print_normalized_group(const std::string& title,
                            const std::vector<RunResult>& results) {
  if (results.empty()) return;
  const RunResult& base = results.front();
  std::printf("\n%s\n", title.c_str());
  std::printf("%-28s %26s %9s %12s %10s %7s\n", "scheme",
              "avg (norm, 95%CI)", "p95", "avg (s)", "p95 (s)", "incompl");
  for (const RunResult& r : results) {
    const RatioInterval avg_ratio =
        fieller_ratio_interval(r.completions, base.completions);
    const double p95_ratio =
        base.summary.p95 > 0.0 ? r.summary.p95 / base.summary.p95 : 0.0;
    std::printf("%-28s %26s %8.2fx %12.3f %10.3f %7zu\n", r.scheme.c_str(),
                ratio_cell(avg_ratio).c_str(), p95_ratio, r.summary.mean,
                r.summary.p95, r.incomplete);
  }
}

void print_sweep_header(const std::string& x_name) {
  std::printf("%-28s %10s %12s %22s %10s %8s\n", "scheme", x_name.c_str(),
              "avg (s)", "avg 95% CI", "p95 (s)", "incompl");
}

void print_sweep_row(const std::string& series, double x,
                     const RunResult& result) {
  const Interval ci = mean_confidence_interval(result.completions);
  std::printf("%-28s %10.3f %12.3f %10.3f - %8.3f %10.3f %8zu\n",
              series.c_str(), x, result.summary.mean, ci.lo, ci.hi,
              result.summary.p95, result.incomplete);
}

}  // namespace mayflower::harness
