// Report printers that mirror how the paper presents results:
//  * normalized bar groups (Figs. 4, 5): avg and p95 completion time
//    normalized to Mayflower, with 95% Fieller ratio CIs;
//  * sweep series (Figs. 6, 7, 8): absolute seconds per x-value with
//    Student-t mean CIs.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace mayflower::harness {

// Prints a header + one row per result, all normalized to `results[0]`.
void print_normalized_group(const std::string& title,
                            const std::vector<RunResult>& results);

// Prints one absolute-seconds row: "<label>  avg±ci  p95" for a sweep point.
void print_sweep_row(const std::string& series, double x,
                     const RunResult& result);

void print_sweep_header(const std::string& x_name);

}  // namespace mayflower::harness
