#include "harness/write_experiment.hpp"

#include <string>
#include <vector>

#include "common/strings.hpp"

namespace mayflower::harness {

WriteRunResult run_write_experiment(const WriteExperimentConfig& config) {
  fs::ClusterConfig cluster_cfg;
  cluster_cfg.scheme = fs::FsScheme::kMayflower;
  cluster_cfg.fabric = config.fabric;
  cluster_cfg.write_placement = config.placement;
  cluster_cfg.collaborative_placement =
      config.placement != policy::WritePlacementKind::kStatic;
  cluster_cfg.write_pipeline = config.pipeline;
  cluster_cfg.nameserver.chunk_size =
      static_cast<std::uint64_t>(config.block_bytes);
  cluster_cfg.flowserver.decision_threads = config.decision_threads;
  cluster_cfg.obs = config.obs;
  cluster_cfg.seed = config.seed;
  fs::Cluster cluster(cluster_cfg);
  const net::ThreeTier& tree = cluster.tree();

  const std::size_t jobs = config.total_jobs;
  Rng arrivals(splitmix64(config.seed ^ 0x3717eULL));
  Rng mix(splitmix64(config.seed ^ 0xead5ULL));

  struct JobOutcome {
    double duration = -1.0;
    bool write = false;
  };
  std::vector<JobOutcome> outcomes(jobs);
  std::vector<std::string> live;  // names whose append has been acked
  std::size_t done = 0;

  const double system_rate =
      config.lambda_per_server * static_cast<double>(tree.hosts.size());
  double arrival = 0.0;
  for (std::size_t j = 0; j < jobs; ++j) {
    arrival += arrivals.exponential(system_rate);
    const net::NodeId host =
        tree.hosts[arrivals.next_below(tree.hosts.size())];
    const bool wants_write = arrivals.uniform(0.0, 1.0) < config.write_fraction;
    cluster.events().schedule_at(
        sim::SimTime::from_seconds(arrival),
        [&cluster, &outcomes, &live, &mix, &done, &config, j, host,
         wants_write] {
          const double start = cluster.events().now().seconds();
          fs::Client& client = cluster.client_at(host);
          // Read tenant half: read back a finished write, if any exists yet.
          if (!wants_write && !live.empty()) {
            const std::string& name = live[mix.next_below(live.size())];
            outcomes[j].write = false;
            client.read_file(name, [&cluster, &outcomes, &done, j, start](
                                       fs::Status s, fs::ReadResult) {
              MAYFLOWER_ASSERT(s == fs::Status::kOk);
              outcomes[j].duration =
                  cluster.events().now().seconds() - start;
              ++done;
            });
            return;
          }
          outcomes[j].write = true;
          const std::string name = strfmt("w-%04zu", j);
          client.create(name, [&cluster, &outcomes, &live, &done, &config, j,
                               name, start, &client](fs::Status s,
                                                     const fs::FileInfo&) {
            MAYFLOWER_ASSERT(s == fs::Status::kOk);
            client.append(
                name,
                fs::ExtentList(fs::Extent::pattern(
                    j, static_cast<std::uint64_t>(config.block_bytes))),
                [&cluster, &outcomes, &live, &done, j, name, start](
                    fs::Status as, const fs::AppendResp&) {
                  MAYFLOWER_ASSERT(as == fs::Status::kOk);
                  outcomes[j].duration =
                      cluster.events().now().seconds() - start;
                  live.push_back(name);
                  ++done;
                });
          });
        });
  }

  const auto cap = sim::SimTime::from_seconds(config.sim_time_cap_sec);
  while (done < jobs && !cluster.events().empty() &&
         cluster.events().now() < cap) {
    cluster.events().step();
  }

  WriteRunResult result;
  result.makespan_sec = cluster.events().now().seconds();
  std::vector<double> write_samples;
  std::vector<double> read_samples;
  for (std::size_t j = config.warmup_jobs; j < jobs; ++j) {
    if (outcomes[j].duration < 0.0) {
      ++result.incomplete;
      continue;
    }
    if (outcomes[j].write) {
      write_samples.push_back(outcomes[j].duration);
    } else {
      read_samples.push_back(outcomes[j].duration);
    }
  }
  result.writes = write_samples.size();
  result.reads = read_samples.size();
  result.write_completion = summarize(write_samples);
  result.read_completion = summarize(read_samples);
  if (cluster.flow_server() != nullptr) {
    result.chains_planned = cluster.flow_server()->write_chains();
  }
  for (const net::NodeId host : tree.hosts) {
    result.chain_appends += cluster.dataserver_at(host).chain_appends();
    result.relay_failures += cluster.dataserver_at(host).relay_failures();
  }
  return result;
}

}  // namespace mayflower::harness
