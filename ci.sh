#!/usr/bin/env bash
# CI entry point: invariant linter first (fails in seconds), then build + test
# the default configuration, again under ASan+UBSan, again under TSan, then
# the cheap end-to-end checks (CLI determinism, microbenchmark speedup bars).
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

echo "=== invariant linter (self-test, then all eight checks) ==="
python3 tools/lint_invariants.py --self-test
python3 tools/lint_invariants.py --check=all --max-waivers=2

echo "=== default build (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DMAYFLOWER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "${jobs}"
(cd build-asan && ctest --output-on-failure -j "${jobs}")

echo "=== fault + write suites under sanitizers (explicit pass) ==="
(cd build-asan && ctest --output-on-failure -j "${jobs}" \
    -R "Fault|FlowSim.IncrementalMatchesFullUnderLinkFaultChurn|WritePath|WriteChain|WritePlacement|RpcRoundtrip")

echo "=== thread-sanitized build (TSan, full suite) ==="
cmake -B build-tsan -S . -DMAYFLOWER_TSAN=ON >/dev/null
cmake --build build-tsan -j "${jobs}"
(cd build-tsan && ctest --output-on-failure -j "${jobs}")

echo "=== mayflower_sim determinism (same seed => identical report) ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 >/tmp/mayflower_sim_run1.txt
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 >/tmp/mayflower_sim_run2.txt
diff /tmp/mayflower_sim_run1.txt /tmp/mayflower_sim_run2.txt
echo "identical"

echo "=== metrics export determinism + schema (same seed => identical JSON) ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --metrics-out=/tmp/mayflower_metrics_run1.json >/dev/null
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --metrics-out=/tmp/mayflower_metrics_run2.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_run2.json
python3 tools/check_metrics.py /tmp/mayflower_metrics_run1.json
echo "identical"

echo "=== link-index churn microbenchmark (>= 5x bar) ==="
./build/bench/micro_link_index

echo "=== fault bench determinism (same seeds => identical table) ==="
./build/bench/fault_degradation >/tmp/mayflower_fault_run1.txt
./build/bench/fault_degradation >/tmp/mayflower_fault_run2.txt
diff /tmp/mayflower_fault_run1.txt /tmp/mayflower_fault_run2.txt
echo "identical"

echo "=== batched admission bench (>= 2x bar + decision identity) ==="
./build/bench/micro_selector --batch >/tmp/mayflower_batch_run1.txt
./build/bench/micro_selector --batch >/tmp/mayflower_batch_run2.txt
diff /tmp/mayflower_batch_run1.txt /tmp/mayflower_batch_run2.txt
echo "deterministic"

echo "=== batch-of-one is decision-identical to the sync path ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --batch-size=1 --metrics-out=/tmp/mayflower_metrics_batch1.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_batch1.json
echo "identical"

echo "=== threaded admission: byte-identical decisions + >= 1.8x bar ==="
./build/bench/micro_selector --threads >/tmp/mayflower_threads_run1.txt
./build/bench/micro_selector --threads >/tmp/mayflower_threads_run2.txt
diff /tmp/mayflower_threads_run1.txt /tmp/mayflower_threads_run2.txt
echo "deterministic"

echo "=== sharded state plane is decision- and metrics-identical to legacy ==="
# Seeded fig4-style config at decision_threads 1 and 8: partitioning the
# state plane by edge switch must not move a single decision or metric.
# (The report's "wrote metrics to" line names the output file; drop it.)
for threads in 1 8; do
  ./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
      --decision-threads="${threads}" \
      --metrics-out=/tmp/mayflower_metrics_legacy_t"${threads}".json \
      >/tmp/mayflower_sim_legacy_t"${threads}".txt
  ./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
      --decision-threads="${threads}" --shard-state \
      --metrics-out=/tmp/mayflower_metrics_sharded_t"${threads}".json \
      >/tmp/mayflower_sim_sharded_t"${threads}".txt
  diff <(grep -v "^wrote metrics" /tmp/mayflower_sim_legacy_t"${threads}".txt) \
       <(grep -v "^wrote metrics" /tmp/mayflower_sim_sharded_t"${threads}".txt)
  diff /tmp/mayflower_metrics_legacy_t"${threads}".json \
       /tmp/mayflower_metrics_sharded_t"${threads}".json
done
# Second shape (fig6-style arrival-rate point): same identity contract.
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 >/tmp/mayflower_sim_fig6_legacy.txt
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 --shard-state >/tmp/mayflower_sim_fig6_sharded.txt
diff /tmp/mayflower_sim_fig6_legacy.txt /tmp/mayflower_sim_fig6_sharded.txt
echo "identical"

echo "=== rotated polling (poll-groups) is deterministic ==="
# Rotation deliberately staggers WHEN each edge's samples land, so it is not
# identity-diffed against the single sweep — but same seed => same report.
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 --shard-state --poll-groups=4 \
    >/tmp/mayflower_sim_rotate_run1.txt
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 --shard-state --poll-groups=4 \
    >/tmp/mayflower_sim_rotate_run2.txt
diff /tmp/mayflower_sim_rotate_run1.txt /tmp/mayflower_sim_rotate_run2.txt
echo "deterministic"

echo "=== unconstrained poll budget is a byte-identical no-op ==="
# A budget large enough to admit every sample (with mouse-period 1) applies
# exactly what legacy full-rate polling applies, so it must not move a
# single decision, sample, or metric — only the "telemetry" report lines
# and the flowserver.poll.* metric family may appear (DESIGN.md §14).
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --poll-budget=1000000000 --mouse-period=1 >/tmp/mayflower_sim_budget_inf.txt
diff /tmp/mayflower_sim_run1.txt \
     <(grep -v "^telemetry" /tmp/mayflower_sim_budget_inf.txt)
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --poll-budget=1000000000 --mouse-period=1 \
    --metrics-out=/tmp/mayflower_metrics_budget_inf.json >/dev/null
python3 - <<'EOF'
import json
legacy = json.load(open("/tmp/mayflower_metrics_run1.json"))
budget = json.load(open("/tmp/mayflower_metrics_budget_inf.json"))
for rl, rb in zip(legacy["runs"], budget["runs"], strict=True):
    assert rl["seed"] == rb["seed"]
    stripped = 0
    for fam in ("counters", "gauges"):
        kept = {k: v for k, v in rb["obs"][fam].items()
                if not k.startswith("flowserver.poll.")}
        stripped += len(rb["obs"][fam]) - len(kept)
        rb["obs"][fam] = kept
    assert stripped == 7, f"seed {rl['seed']}: expected 7 poll metrics"
    assert rl["obs"] == rb["obs"], f"seed {rl['seed']}: obs diverged"
print("metrics identical modulo the flowserver.poll.* family")
EOF
echo "identical"

echo "=== constrained poll budget: deterministic + coherent metrics ==="
# Both runs write to the same --metrics-out path (first JSON is copied
# aside) so the "wrote metrics to ..." report line is identical too.
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 --poll-budget=8 --mouse-period=4 \
    --metrics-out=/tmp/mayflower_metrics_budget8.json \
    >/tmp/mayflower_sim_budget8_run1.txt
cp /tmp/mayflower_metrics_budget8.json /tmp/mayflower_metrics_budget8_run1.json
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 --poll-budget=8 --mouse-period=4 \
    --metrics-out=/tmp/mayflower_metrics_budget8.json \
    >/tmp/mayflower_sim_budget8_run2.txt
diff /tmp/mayflower_sim_budget8_run1.txt /tmp/mayflower_sim_budget8_run2.txt
diff /tmp/mayflower_metrics_budget8_run1.json \
     /tmp/mayflower_metrics_budget8.json
python3 tools/check_metrics.py /tmp/mayflower_metrics_budget8_run1.json
echo "deterministic"

echo "=== adaptive telemetry bench (>= 5x samples cut within 2x belief error) ==="
./build/bench/micro_telemetry >/tmp/mayflower_telemetry_run1.txt
./build/bench/micro_telemetry >/tmp/mayflower_telemetry_run2.txt
diff /tmp/mayflower_telemetry_run1.txt /tmp/mayflower_telemetry_run2.txt
echo "deterministic"

echo "=== shard metrics export on a fat-tree (schema + coherence) ==="
./build/tools/mayflower_sim --jobs=60 --warmup=10 --files=30 --seeds=7 \
    --topology=fat_tree --fat-k=8 --shard-state --shard-metrics \
    --metrics-out=/tmp/mayflower_metrics_shard.json >/dev/null
python3 tools/check_metrics.py /tmp/mayflower_metrics_shard.json

echo "=== metadata flags alone change nothing (byte identity, meta-ops=0) ==="
# With no metadata ops requested the meta plane is never built, so the
# seeded fig4-style report and metrics must match the default run exactly.
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --meta-shards=1 --meta-partition=hash >/tmp/mayflower_sim_meta0.txt
diff /tmp/mayflower_sim_run1.txt /tmp/mayflower_sim_meta0.txt
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --meta-shards=1 --meta-partition=hash \
    --metrics-out=/tmp/mayflower_metrics_meta0.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_meta0.json
echo "identical"

echo "=== metadata plane leaves the data path untouched (shards 1 vs 4) ==="
# Running a metadata workload alongside the main experiment must not move a
# single flow or decision: only the "meta " report lines and the per-run
# meta_obs export may differ between shard counts.
for shards in 1 4; do
  ./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
      --meta-shards="${shards}" --meta-ops=2000 --meta-async \
      --metrics-out=/tmp/mayflower_metrics_meta_s"${shards}".json \
      >/tmp/mayflower_sim_meta_s"${shards}".txt
  python3 tools/check_metrics.py /tmp/mayflower_metrics_meta_s"${shards}".json
done
diff <(grep -v "^meta \|^wrote metrics" /tmp/mayflower_sim_meta_s1.txt) \
     <(grep -v "^meta \|^wrote metrics" /tmp/mayflower_sim_meta_s4.txt)
python3 - <<'EOF'
import json
a = json.load(open("/tmp/mayflower_metrics_meta_s1.json"))
b = json.load(open("/tmp/mayflower_metrics_meta_s4.json"))
for ra, rb in zip(a["runs"], b["runs"], strict=True):
    assert ra["seed"] == rb["seed"]
    assert ra["obs"] == rb["obs"], f"seed {ra['seed']}: main obs diverged"
print("main obs identical across meta shard counts")
EOF
echo "identical"

echo "=== write flags alone change nothing (byte identity, write-jobs=0) ==="
# With no write jobs requested the write phase never runs, and the legacy
# placement/transport selection (--write-placement=static --write-pipeline=off)
# is the code default, so the seeded fig4- and fig6-style reports and metrics
# must match the default runs exactly.
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --write-placement=static --write-pipeline=off >/tmp/mayflower_sim_write0.txt
diff /tmp/mayflower_sim_run1.txt /tmp/mayflower_sim_write0.txt
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --write-placement=static --write-pipeline=off \
    --metrics-out=/tmp/mayflower_metrics_write0.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_write0.json
./build/tools/mayflower_sim --jobs=160 --warmup=20 --files=60 --seeds=11 \
    --lambda=4.0 --write-placement=static --write-pipeline=off \
    >/tmp/mayflower_sim_fig6_write0.txt
diff /tmp/mayflower_sim_fig6_legacy.txt /tmp/mayflower_sim_fig6_write0.txt
echo "identical"

echo "=== write phase leaves the main run untouched (schema + identity) ==="
# Running the write-heavy tenant alongside the main experiment must not move
# a single flow or decision of the main run: only the "write " report lines
# and the per-run write_obs export may appear.
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --write-jobs=40 --write-placement=measured --write-pipeline=on \
    >/tmp/mayflower_sim_writephase.txt
diff /tmp/mayflower_sim_run1.txt \
     <(grep -v "^write \|^write path" /tmp/mayflower_sim_writephase.txt)
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --write-jobs=40 --write-placement=measured --write-pipeline=on \
    --metrics-out=/tmp/mayflower_metrics_writephase.json >/dev/null
python3 tools/check_metrics.py /tmp/mayflower_metrics_writephase.json
python3 - <<'EOF'
import json
legacy = json.load(open("/tmp/mayflower_metrics_run1.json"))
write = json.load(open("/tmp/mayflower_metrics_writephase.json"))
for rl, rw in zip(legacy["runs"], write["runs"], strict=True):
    assert rl["seed"] == rw["seed"]
    assert rl["obs"] == rw["obs"], f"seed {rl['seed']}: main obs diverged"
    assert "write_obs" in rw, f"seed {rl['seed']}: write_obs missing"
    counters = rw["write_obs"]["counters"]
    assert counters.get("flowserver.write.chains", 0) > 0, \
        f"seed {rl['seed']}: write phase planned no chains"
print("main obs identical; write_obs carries flowserver.write.*")
EOF
echo "identical"

echo "=== write-path bench (>= 2x bar + decision-thread identity) ==="
# The bench exits non-zero unless pipelined+measured beats static fan-out by
# >= 2x mean append completion AND write decisions are byte-identical across
# decision_threads 1 and 8; the diff pins rerun determinism.
./build/bench/write_path >/tmp/mayflower_write_run1.txt
./build/bench/write_path >/tmp/mayflower_write_run2.txt
diff /tmp/mayflower_write_run1.txt /tmp/mayflower_write_run2.txt
echo "deterministic"

echo "=== metadata scaling bench (>= 3x bar at 4 shards, async < sync) ==="
./build/bench/meta_scale >/tmp/mayflower_meta_run1.txt
./build/bench/meta_scale >/tmp/mayflower_meta_run2.txt
diff /tmp/mayflower_meta_run1.txt /tmp/mayflower_meta_run2.txt
echo "deterministic"

echo "=== background-flow sweep (sharded decisions == legacy, deterministic) ==="
./build/bench/micro_selector --flows >/tmp/mayflower_flows_run1.txt
./build/bench/micro_selector --flows >/tmp/mayflower_flows_run2.txt
diff /tmp/mayflower_flows_run1.txt /tmp/mayflower_flows_run2.txt
echo "deterministic"

echo "=== macro-scale fat-tree sweep (>= 5x bar at k=16 + decision identity) ==="
./build/bench/macro_scale >/tmp/mayflower_macro_run1.txt
./build/bench/macro_scale >/tmp/mayflower_macro_run2.txt
diff /tmp/mayflower_macro_run1.txt /tmp/mayflower_macro_run2.txt
echo "deterministic"

echo "=== formatting (clang-format, skipped when unavailable) ==="
if command -v clang-format >/dev/null 2>&1; then
  find src bench tests -name '*.cpp' -o -name '*.hpp' | sort | \
      xargs clang-format --dry-run -Werror
  clang-format --dry-run -Werror tools/*.cpp
  echo "formatted"
else
  echo "clang-format not installed; skipping"
fi

echo "=== static analysis (clang-tidy, skipped when unavailable) ==="
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build -quiet -j "${jobs}" \
      "$(pwd)/(src|bench|tools|tests)/.*\.cpp$"
  echo "tidy"
else
  echo "run-clang-tidy not installed; skipping"
fi

echo "CI OK"
