#!/usr/bin/env bash
# CI entry point: build + test the default configuration, then again under
# ASan+UBSan, then the cheap end-to-end checks (CLI determinism, link-index
# microbenchmark speedup bar).
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

echo "=== default build (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DMAYFLOWER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "${jobs}"
(cd build-asan && ctest --output-on-failure -j "${jobs}")

echo "=== fault-injection suite under sanitizers (explicit pass) ==="
(cd build-asan && ctest --output-on-failure -j "${jobs}" \
    -R "Fault|FlowSim.IncrementalMatchesFullUnderLinkFaultChurn")

echo "=== mayflower_sim determinism (same seed => identical report) ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 >/tmp/mayflower_sim_run1.txt
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 >/tmp/mayflower_sim_run2.txt
diff /tmp/mayflower_sim_run1.txt /tmp/mayflower_sim_run2.txt
echo "identical"

echo "=== metrics export determinism + schema (same seed => identical JSON) ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --metrics-out=/tmp/mayflower_metrics_run1.json >/dev/null
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --metrics-out=/tmp/mayflower_metrics_run2.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_run2.json
python3 tools/check_metrics.py /tmp/mayflower_metrics_run1.json
echo "identical"

echo "=== link-index churn microbenchmark (>= 5x bar) ==="
./build/bench/micro_link_index

echo "=== fault bench determinism (same seeds => identical table) ==="
./build/bench/fault_degradation >/tmp/mayflower_fault_run1.txt
./build/bench/fault_degradation >/tmp/mayflower_fault_run2.txt
diff /tmp/mayflower_fault_run1.txt /tmp/mayflower_fault_run2.txt
echo "identical"

echo "=== batched admission bench (>= 2x bar + decision identity) ==="
./build/bench/micro_selector --batch >/tmp/mayflower_batch_run1.txt
./build/bench/micro_selector --batch >/tmp/mayflower_batch_run2.txt
diff /tmp/mayflower_batch_run1.txt /tmp/mayflower_batch_run2.txt
echo "deterministic"

echo "=== batch-of-one is decision-identical to the sync path ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --batch-size=1 --metrics-out=/tmp/mayflower_metrics_batch1.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_batch1.json
echo "identical"

echo "=== decision paths read only the NetworkView (no raw fabric state) ==="
if grep -nE 'flow_sim|port_bytes|poll_port_stats|flow_record' \
    src/policy/*.cpp src/policy/*.hpp \
    src/flowserver/selector.cpp src/flowserver/selector.hpp \
    src/flowserver/multiread.cpp src/flowserver/multiread.hpp \
    src/flowserver/bandwidth_model.cpp src/flowserver/bandwidth_model.hpp; then
  echo "FAIL: decision code reads fabric/sim state directly" >&2
  exit 1
fi
echo "clean"

echo "=== formatting (clang-format, skipped when unavailable) ==="
if command -v clang-format >/dev/null 2>&1; then
  clang-format --dry-run -Werror \
      src/net/network_view.cpp src/net/network_view.hpp \
      src/flowserver/flowserver.cpp src/flowserver/flowserver.hpp
  echo "formatted"
else
  echo "clang-format not installed; skipping"
fi

echo "CI OK"
