#!/usr/bin/env bash
# CI entry point: invariant linter first (fails in seconds), then build + test
# the default configuration, again under ASan+UBSan, again under TSan, then
# the cheap end-to-end checks (CLI determinism, microbenchmark speedup bars).
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

echo "=== invariant linter (self-test, then the tree) ==="
python3 tools/lint_invariants.py --self-test
python3 tools/lint_invariants.py --check=boundary
python3 tools/lint_invariants.py --check=nondet
python3 tools/lint_invariants.py --check=guards

echo "=== default build (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DMAYFLOWER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "${jobs}"
(cd build-asan && ctest --output-on-failure -j "${jobs}")

echo "=== fault-injection suite under sanitizers (explicit pass) ==="
(cd build-asan && ctest --output-on-failure -j "${jobs}" \
    -R "Fault|FlowSim.IncrementalMatchesFullUnderLinkFaultChurn")

echo "=== thread-sanitized build (TSan, full suite) ==="
cmake -B build-tsan -S . -DMAYFLOWER_TSAN=ON >/dev/null
cmake --build build-tsan -j "${jobs}"
(cd build-tsan && ctest --output-on-failure -j "${jobs}")

echo "=== mayflower_sim determinism (same seed => identical report) ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 >/tmp/mayflower_sim_run1.txt
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 >/tmp/mayflower_sim_run2.txt
diff /tmp/mayflower_sim_run1.txt /tmp/mayflower_sim_run2.txt
echo "identical"

echo "=== metrics export determinism + schema (same seed => identical JSON) ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --metrics-out=/tmp/mayflower_metrics_run1.json >/dev/null
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --metrics-out=/tmp/mayflower_metrics_run2.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_run2.json
python3 tools/check_metrics.py /tmp/mayflower_metrics_run1.json
echo "identical"

echo "=== link-index churn microbenchmark (>= 5x bar) ==="
./build/bench/micro_link_index

echo "=== fault bench determinism (same seeds => identical table) ==="
./build/bench/fault_degradation >/tmp/mayflower_fault_run1.txt
./build/bench/fault_degradation >/tmp/mayflower_fault_run2.txt
diff /tmp/mayflower_fault_run1.txt /tmp/mayflower_fault_run2.txt
echo "identical"

echo "=== batched admission bench (>= 2x bar + decision identity) ==="
./build/bench/micro_selector --batch >/tmp/mayflower_batch_run1.txt
./build/bench/micro_selector --batch >/tmp/mayflower_batch_run2.txt
diff /tmp/mayflower_batch_run1.txt /tmp/mayflower_batch_run2.txt
echo "deterministic"

echo "=== batch-of-one is decision-identical to the sync path ==="
./build/tools/mayflower_sim --jobs=220 --warmup=20 --files=60 --seeds=7 \
    --batch-size=1 --metrics-out=/tmp/mayflower_metrics_batch1.json >/dev/null
diff /tmp/mayflower_metrics_run1.json /tmp/mayflower_metrics_batch1.json
echo "identical"

echo "=== threaded admission: byte-identical decisions + >= 1.8x bar ==="
./build/bench/micro_selector --threads >/tmp/mayflower_threads_run1.txt
./build/bench/micro_selector --threads >/tmp/mayflower_threads_run2.txt
diff /tmp/mayflower_threads_run1.txt /tmp/mayflower_threads_run2.txt
echo "deterministic"

echo "=== formatting (clang-format, skipped when unavailable) ==="
if command -v clang-format >/dev/null 2>&1; then
  find src bench tests -name '*.cpp' -o -name '*.hpp' | sort | \
      xargs clang-format --dry-run -Werror
  clang-format --dry-run -Werror tools/*.cpp
  echo "formatted"
else
  echo "clang-format not installed; skipping"
fi

echo "=== static analysis (clang-tidy, skipped when unavailable) ==="
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build -quiet -j "${jobs}" \
      "$(pwd)/(src|bench|tools|tests)/.*\.cpp$"
  echo "tidy"
else
  echo "run-clang-tidy not installed; skipping"
fi

echo "CI OK"
