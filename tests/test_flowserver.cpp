// Integration tests of the Flowserver service against the SDN fabric.
#include "flowserver/flowserver.hpp"

#include <gtest/gtest.h>

#include "net/tree.hpp"

namespace mayflower::flowserver {
namespace {

class FlowserverTest : public ::testing::Test {
 protected:
  FlowserverTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo) {}

  FlowserverConfig default_config() {
    FlowserverConfig cfg;
    cfg.poll_interval = sim::SimTime::from_seconds(1.0);
    return cfg;
  }

  // Runs assignments to completion, reporting drops like a real client.
  void execute(Flowserver& server,
               const std::vector<ReadAssignment>& assignments,
               double* finished_at = nullptr) {
    for (const auto& a : assignments) {
      fabric_.start_flow(a.cookie, a.path, a.bytes,
                         [&server, finished_at, this](sdn::Cookie cookie,
                                                      sim::SimTime) {
                           server.flow_dropped(cookie);
                           if (finished_at != nullptr) {
                             *finished_at = events_.now().seconds();
                           }
                         });
    }
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
};

TEST_F(FlowserverTest, SelectInstallsPathsAndRegistersFlows) {
  Flowserver server(fabric_, default_config());
  const auto& file_replicas = std::vector<net::NodeId>{
      tree_.hosts[5], tree_.hosts[20], tree_.hosts[40]};
  const auto assignments =
      server.select_for_read(tree_.hosts[0], file_replicas, 256e6);
  ASSERT_FALSE(assignments.empty());
  for (const auto& a : assignments) {
    EXPECT_TRUE(a.cookie != 0);
    EXPECT_GT(a.bytes, 0.0);
    EXPECT_GT(a.est_bw_bps, 0.0);
    EXPECT_NE(a.replica, net::kInvalidNode);
    EXPECT_NE(server.table().find(a.cookie), nullptr);
    // Installed: starting must not trip the hop-by-hop verification.
    fabric_.start_flow(a.cookie, a.path, a.bytes, nullptr);
  }
  events_.run_until(sim::SimTime::from_seconds(0.5));
}

TEST_F(FlowserverTest, IdleFabricSelectionUsesFullEdgeBandwidth) {
  Flowserver server(fabric_, default_config());
  const auto assignments = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[1]}, 125e6);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_NEAR(assignments[0].est_bw_bps, 125e6, 1.0);  // idle 1 Gbps edge
  double done = -1.0;
  execute(server, assignments, &done);
  events_.run();
  EXPECT_NEAR(done, 1.0, 1e-6);
  EXPECT_EQ(server.table().size(), 0u);  // drop removed it
}

TEST_F(FlowserverTest, SplitReadCompletesAndCountsAsOne) {
  Flowserver server(fabric_, default_config());
  // Two replicas in different pods: paths are disjoint until the client's
  // access link, which at 1 Gbps is wide enough that splitting wins when
  // the cross-pod core links (0.5 Gbps equivalent) are the per-flow caps.
  const auto assignments = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[16], tree_.hosts[32]}, 256e6);
  // Whether a split happens is a modelled decision; both outcomes are
  // valid, but the counters must agree with it.
  EXPECT_EQ(server.split_reads(), assignments.size() == 2 ? 1u : 0u);
  EXPECT_EQ(server.selections(), 1u);
  double total = 0.0;
  for (const auto& a : assignments) total += a.bytes;
  EXPECT_NEAR(total, 256e6, 1e-3);
  execute(server, assignments);
  events_.run_until(sim::SimTime::from_seconds(60.0));
  EXPECT_EQ(server.table().size(), 0u);
}

TEST_F(FlowserverTest, PathOnlySelectionRespectsReplica) {
  Flowserver server(fabric_, default_config());
  const net::NodeId replica = tree_.hosts[16];
  const auto a =
      server.select_path_for_replica(tree_.hosts[0], replica, 64e6);
  EXPECT_EQ(a.replica, replica);
  EXPECT_EQ(a.path.nodes.front(), replica);
  EXPECT_EQ(a.path.nodes.back(), tree_.hosts[0]);
  EXPECT_DOUBLE_EQ(a.bytes, 64e6);
}

TEST_F(FlowserverTest, PathSchedulerSpreadsLoadAcrossCorePaths) {
  // Repeated cross-pod reads from the same replica: the thin agg->core
  // links (62.5 MB/s at 8:1) are the bottleneck, so the cost term must
  // route consecutive flows over disjoint core paths instead of stacking
  // one (this is what "Mayflower path selection" buys over ECMP's luck).
  Flowserver server(fabric_, default_config());
  const net::NodeId replica = tree_.hosts[16];  // pod 1
  const net::NodeId client = tree_.hosts[0];    // pod 0
  std::set<std::vector<net::LinkId>> distinct_paths;
  std::vector<ReadAssignment> all;
  for (int i = 0; i < 4; ++i) {
    const auto a = server.select_path_for_replica(client, replica, 256e6);
    distinct_paths.insert(a.path.links);
    all.push_back(a);
    fabric_.start_flow(a.cookie, a.path, a.bytes, nullptr);
  }
  // 4 pairwise core-link-disjoint choices exist. The first three flows see
  // strictly cheaper costs on fresh core links; the fourth ties (the shared
  // replica uplink dominates) and may reuse one, so we require >= 3.
  EXPECT_GE(distinct_paths.size(), 3u);
  // The first two flows see a full thin-link share each (disjoint paths);
  // afterwards the shared replica uplink becomes the limit.
  EXPECT_NEAR(all[0].est_bw_bps, 62.5e6, 1e3);
  EXPECT_NEAR(all[1].est_bw_bps, 62.5e6, 1e3);
  EXPECT_LT(all[3].est_bw_bps, 62.5e6);
}

TEST_F(FlowserverTest, StatsPollRefreshesUnfrozenEstimates) {
  FlowserverConfig cfg = default_config();
  cfg.freeze_enabled = false;  // accept every sample
  Flowserver server(fabric_, cfg);
  server.start();

  const auto assignments = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[1]}, 250e6);
  ASSERT_EQ(assignments.size(), 1u);
  const sdn::Cookie cookie = assignments[0].cookie;
  execute(server, assignments);

  // Competing flow on the same edge link halves the real rate to 62.5e6.
  const auto competing = server.select_path_for_replica(
      tree_.hosts[2], tree_.hosts[1], 500e6);
  fabric_.start_flow(competing.cookie, competing.path, competing.bytes,
                     nullptr);

  events_.run_until(sim::SimTime::from_seconds(1.5));
  const TrackedFlow* f = server.table().find(cookie);
  ASSERT_NE(f, nullptr);
  EXPECT_GT(server.polls(), 0u);
  EXPECT_NEAR(f->bw_bps, 62.5e6, 1e6);
  server.stop();
}

TEST_F(FlowserverTest, FrozenEstimateSurvivesFirstPoll) {
  FlowserverConfig cfg = default_config();
  cfg.freeze_enabled = true;
  Flowserver server(fabric_, cfg);
  server.start();
  const auto assignments = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[1]}, 250e6);
  const sdn::Cookie cookie = assignments[0].cookie;
  const double estimate = assignments[0].est_bw_bps;
  execute(server, assignments);
  // Competing flow makes the measured rate diverge from the estimate...
  const auto competing = server.select_path_for_replica(
      tree_.hosts[2], tree_.hosts[1], 500e6);
  fabric_.start_flow(competing.cookie, competing.path, competing.bytes,
                     nullptr);
  events_.run_until(sim::SimTime::from_seconds(1.5));
  // ...but the flow is inside its freeze window, so the estimate holds.
  const TrackedFlow* f = server.table().find(cookie);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->bw_bps, estimate);  // SETBW from the competing selection...
  EXPECT_TRUE(f->frozen);
  server.stop();
}

TEST_F(FlowserverTest, DropIsIdempotentAndPollsSkipGone) {
  Flowserver server(fabric_, default_config());
  server.start();
  const auto assignments = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[1]}, 1e6);
  execute(server, assignments);
  events_.run_until(sim::SimTime::from_seconds(3.0));
  EXPECT_EQ(server.table().size(), 0u);
  server.flow_dropped(assignments[0].cookie);  // late duplicate drop
  EXPECT_EQ(server.table().size(), 0u);
  server.stop();
}


TEST_F(FlowserverTest, BestWriteTargetPrefersUncontendedHost) {
  Flowserver server(fabric_, default_config());
  // All in one pod so the access links (not the oversubscribed core)
  // differentiate the candidates.
  const net::NodeId writer = tree_.hosts[16];
  const net::NodeId busy = tree_.hosts[20];
  const net::NodeId quiet = tree_.hosts[24];

  // Saturate `busy`'s downlink with a tracked flow (a read INTO it).
  const auto a = server.select_path_for_replica(busy, tree_.hosts[21], 1e9);
  fabric_.start_flow(a.cookie, a.path, a.bytes, nullptr);

  EXPECT_EQ(server.best_write_target(writer, {busy, quiet}), quiet);
}

TEST_F(FlowserverTest, BestWriteTargetPrefersWriterLocalHost) {
  Flowserver server(fabric_, default_config());
  const net::NodeId writer = tree_.hosts[0];
  // Zero network hops beats any network path.
  EXPECT_EQ(server.best_write_target(writer, {tree_.hosts[5], writer}),
            writer);
}

TEST_F(FlowserverTest, EstimatesAgreeWithGroundTruthAfterPoll) {
  // Cross-validation: once a stats poll lands after the freeze expires, the
  // Flowserver's tracked bandwidth must match the fluid simulator's actual
  // max-min rate for a steady flow.
  FlowserverConfig cfg = default_config();
  cfg.freeze_enabled = false;
  Flowserver server(fabric_, cfg);
  server.start();

  // Two long flows sharing host[1]'s uplink: true rate 62.5 MB/s each.
  std::vector<sdn::Cookie> cookies;
  for (const net::NodeId dst : {tree_.hosts[0], tree_.hosts[2]}) {
    const auto a = server.select_path_for_replica(dst, tree_.hosts[1], 1e9);
    fabric_.start_flow(a.cookie, a.path, a.bytes, nullptr);
    cookies.push_back(a.cookie);
  }
  events_.run_until(sim::SimTime::from_seconds(2.5));
  for (const sdn::Cookie c : cookies) {
    const TrackedFlow* f = server.table().find(c);
    ASSERT_NE(f, nullptr);
    EXPECT_NEAR(f->bw_bps, 62.5e6, 1e5);
    // Remaining size tracked through byte counters, not guesses.
    const net::FlowRecord* actual = fabric_.flow_sim().find(
        [&]() -> net::FlowId {
          // The fabric flow carries the cookie as its tag; scan for it.
          for (net::FlowId id = 1; id < 100; ++id) {
            const auto* rec = fabric_.flow_sim().find(id);
            if (rec != nullptr && rec->tag == c) return id;
          }
          return net::kInvalidFlow;
        }());
    ASSERT_NE(actual, nullptr);
    EXPECT_NEAR(f->remaining_bytes, actual->remaining_bytes, 2e6);
  }
  server.stop();
}

// --- decision snapshot staleness ------------------------------------------

TEST_F(FlowserverTest, ViewReuseAcrossDecisionsWhenNothingMoved) {
  Flowserver server(fabric_, default_config());
  (void)server.view();
  const std::uint64_t builds = server.view_rebuilds();
  // Nothing moved between these calls: same snapshot, same epoch.
  const std::uint64_t epoch = server.view().epoch();
  EXPECT_EQ(server.view_rebuilds(), builds);
  EXPECT_EQ(server.view().epoch(), epoch);
}

TEST_F(FlowserverTest, PollStalesTheViewViaTableVersion) {
  FlowserverConfig cfg = default_config();
  cfg.freeze_enabled = false;
  Flowserver server(fabric_, cfg);
  const auto assignments = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[1]}, 250e6);
  execute(server, assignments);
  const std::uint64_t builds = server.view_rebuilds();
  // A stats poll rewrites bandwidth estimates -> table version moves -> the
  // snapshot taken before the poll is rejected and rebuilt.
  server.collect_stats();
  (void)server.view();
  EXPECT_GT(server.view_rebuilds(), builds);
}

TEST_F(FlowserverTest, FaultStalesTheViewViaFabricEpoch) {
  Flowserver server(fabric_, default_config());
  (void)server.view();
  const std::uint64_t builds = server.view_rebuilds();
  const std::uint64_t old_epoch = server.view().epoch();
  fabric_.fail_link(tree_.host_uplink(tree_.hosts[16]));
  // The pre-fault snapshot is stale: the next decision rebuilds and sees
  // the link down.
  const net::NetworkView& v = server.view();
  EXPECT_GT(server.view_rebuilds(), builds);
  EXPECT_GT(v.epoch(), old_epoch);
  EXPECT_FALSE(v.link_up(tree_.host_uplink(tree_.hosts[16])));
}

TEST_F(FlowserverTest, DecisionsAfterFaultAvoidTheDeadReplica) {
  Flowserver server(fabric_, default_config());
  (void)server.view();  // snapshot taken BEFORE the fault
  fabric_.fail_link(tree_.host_uplink(tree_.hosts[16]));
  fabric_.fail_link(tree_.host_downlink(tree_.hosts[16]));
  // Batch-of-one admission rebuilds at decision time, so the unreachable
  // replica is filtered rather than planned over a dead path.
  const auto plan = server.select_for_read(
      tree_.hosts[0], {tree_.hosts[16], tree_.hosts[32]}, 64e6);
  ASSERT_FALSE(plan.empty());
  for (const auto& a : plan) EXPECT_EQ(a.replica, tree_.hosts[32]);
  EXPECT_TRUE(
      server.select_for_read(tree_.hosts[0], {tree_.hosts[16]}, 64e6)
          .empty());
}

TEST_F(FlowserverTest, OwnCommitsDoNotStaleTheView) {
  Flowserver server(fabric_, default_config());
  (void)server.select_for_read(tree_.hosts[0], {tree_.hosts[16]}, 64e6);
  const std::uint64_t builds = server.view_rebuilds();
  // The commit moved the table version, but the drain wrote through to the
  // view and absorbed the delta: the next decision reuses the snapshot.
  (void)server.select_for_read(tree_.hosts[2], {tree_.hosts[20]}, 64e6);
  EXPECT_EQ(server.view_rebuilds(), builds);
}

// --- batched admission ------------------------------------------------------

TEST_F(FlowserverTest, BatchDrainsWhenSizeThresholdReached) {
  FlowserverConfig cfg = default_config();
  cfg.batch_size = 3;
  Flowserver server(fabric_, cfg);
  std::size_t delivered = 0;
  const auto done = [&delivered](std::vector<ReadAssignment> plan) {
    EXPECT_FALSE(plan.empty());
    ++delivered;
  };
  server.enqueue_read(tree_.hosts[0], {tree_.hosts[16]}, 64e6, done);
  server.enqueue_read(tree_.hosts[1], {tree_.hosts[20]}, 64e6, done);
  EXPECT_EQ(server.queued(), 2u);
  EXPECT_EQ(delivered, 0u);
  // The third enqueue trips the size trigger: the whole batch decides now.
  server.enqueue_read(tree_.hosts[2], {tree_.hosts[24]}, 64e6, done);
  EXPECT_EQ(server.queued(), 0u);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(server.selections(), 3u);
}

TEST_F(FlowserverTest, BatchWindowFlushesAPartialBatch) {
  FlowserverConfig cfg = default_config();
  cfg.batch_size = 16;
  cfg.batch_window = sim::SimTime::from_millis(5.0);
  Flowserver server(fabric_, cfg);
  std::size_t delivered = 0;
  server.enqueue_read(tree_.hosts[0], {tree_.hosts[16]}, 64e6,
                      [&delivered](std::vector<ReadAssignment> plan) {
                        EXPECT_FALSE(plan.empty());
                        ++delivered;
                      });
  EXPECT_EQ(server.queued(), 1u);
  events_.run_until(sim::SimTime::from_millis(10.0));
  EXPECT_EQ(server.queued(), 0u);
  EXPECT_EQ(delivered, 1u);
}

TEST_F(FlowserverTest, BatchDecidesAgainstOneSnapshotAndInstallsInBulk) {
  FlowserverConfig cfg = default_config();
  cfg.batch_size = 4;
  Flowserver server(fabric_, cfg);
  (void)server.view();
  const std::uint64_t builds = server.view_rebuilds();
  std::vector<ReadAssignment> all;
  const auto keep = [&all](std::vector<ReadAssignment> plan) {
    for (auto& a : plan) all.push_back(std::move(a));
  };
  for (std::size_t i = 0; i < 4; ++i) {
    server.enqueue_read(tree_.hosts[i], {tree_.hosts[16 + 4 * i]}, 64e6,
                        keep);
  }
  // One batch, one view: no rebuild happened mid-batch, and every chosen
  // path was installed (starting the flow trips the strict fabric check
  // if it was not).
  EXPECT_EQ(server.view_rebuilds(), builds);
  ASSERT_EQ(all.size(), 4u);
  for (const auto& a : all) {
    fabric_.start_flow(a.cookie, a.path, a.bytes, nullptr);
  }
  events_.run_until(sim::SimTime::from_seconds(0.1));
}

TEST_F(FlowserverTest, EnqueueWithChooserFixesTheReplica) {
  FlowserverConfig cfg = default_config();
  cfg.batch_size = 2;
  Flowserver server(fabric_, cfg);
  std::vector<ReadAssignment> all;
  const auto keep = [&all](std::vector<ReadAssignment> plan) {
    for (auto& a : plan) all.push_back(std::move(a));
  };
  // The chooser sees only replicas with a live path and the batch's view.
  const auto pick_last = [](net::NodeId, const std::vector<net::NodeId>& live,
                            const net::NetworkView& view) {
    EXPECT_GT(view.link_count(), 0u);
    return live.back();
  };
  server.enqueue_read(tree_.hosts[0], {tree_.hosts[16], tree_.hosts[32]},
                      64e6, keep, pick_last);
  server.enqueue_read(tree_.hosts[1], {tree_.hosts[20], tree_.hosts[36]},
                      64e6, keep, pick_last);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].replica, tree_.hosts[32]);
  EXPECT_EQ(all[1].replica, tree_.hosts[36]);
  // Chooser-fixed decisions are path-only: no split happens.
  EXPECT_EQ(server.split_reads(), 0u);
}

TEST_F(FlowserverTest, ExplicitDrainFlushesWithoutWaiting) {
  FlowserverConfig cfg = default_config();
  cfg.batch_size = 16;
  Flowserver server(fabric_, cfg);
  std::size_t delivered = 0;
  server.enqueue_read(tree_.hosts[0], {tree_.hosts[16]}, 64e6,
                      [&delivered](std::vector<ReadAssignment>) {
                        ++delivered;
                      });
  EXPECT_EQ(server.drain(), 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(server.drain(), 0u);  // empty queue: no-op
}

}  // namespace
}  // namespace mayflower::flowserver
