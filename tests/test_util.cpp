#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "common/uuid.hpp"

namespace mayflower {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 test vectors.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(Crc32, SeedChaining) {
  const std::string data = "hello world";
  const std::uint32_t whole = crc32(data);
  const std::uint32_t part = crc32(data.substr(5), crc32(data.substr(0, 5)));
  EXPECT_EQ(whole, part);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "some wal record payload";
  const std::uint32_t before = crc32(data);
  data[3] = static_cast<char>(data[3] ^ 1);
  EXPECT_NE(before, crc32(data));
}

TEST(Uuid, GenerateRoundTripsThroughString) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::generate(rng);
    EXPECT_FALSE(u.is_nil());
    const Uuid parsed = Uuid::parse(u.to_string());
    EXPECT_EQ(u, parsed);
  }
}

TEST(Uuid, StringFormIsCanonicalV4) {
  Rng rng(2);
  const std::string s = Uuid::generate(rng).to_string();
  ASSERT_EQ(s.size(), 36u);
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[13], '-');
  EXPECT_EQ(s[18], '-');
  EXPECT_EQ(s[23], '-');
  EXPECT_EQ(s[14], '4');                       // version nibble
  EXPECT_TRUE(std::string("89ab").find(s[19]) != std::string::npos);  // variant
}

TEST(Uuid, ParseRejectsMalformed) {
  EXPECT_TRUE(Uuid::parse("").is_nil());
  EXPECT_TRUE(Uuid::parse("not-a-uuid").is_nil());
  EXPECT_TRUE(
      Uuid::parse("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz").is_nil());
  EXPECT_TRUE(
      Uuid::parse("123456781234-1234-1234-123456789abc").is_nil());
}

TEST(Uuid, GeneratedAreDistinct) {
  Rng rng(3);
  const Uuid a = Uuid::generate(rng);
  const Uuid b = Uuid::generate(rng);
  EXPECT_NE(a, b);
  EXPECT_NE(UuidHash{}(a), UuidHash{}(b));
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 1.005), "1.00");
  EXPECT_EQ(strfmt(""), "");
}

TEST(Strings, HumanUnits) {
  EXPECT_EQ(human_bytes(1.5e9), "1.50 GB");
  EXPECT_EQ(human_bytes(256e6), "256.00 MB");
  EXPECT_EQ(human_bytes(12), "12.00 B");
  EXPECT_EQ(human_seconds(0.0123), "12.30 ms");
  EXPECT_EQ(human_seconds(4.5), "4.50 s");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gbps(1.0), 125e6);     // 1 Gbps = 125 MB/s
  EXPECT_DOUBLE_EQ(mbps(10.0), 1.25e6);   // Figure 2's 10 Mbps links
  EXPECT_DOUBLE_EQ(megabits(9.0), 1.125e6);
}

}  // namespace
}  // namespace mayflower
