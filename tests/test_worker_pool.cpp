// WorkerPool contract tests: every index of a round runs exactly once,
// worker ids stay in range, the pool is reusable across rounds, and the
// threads <= 1 pool runs inline on the caller.
#include "common/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mayflower::common {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kCount, [&](std::size_t, std::size_t index) {
    hits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, WorkerIdsStayInRange) {
  WorkerPool pool(3);
  ASSERT_EQ(pool.threads(), 3u);
  std::atomic<bool> out_of_range{false};
  pool.parallel_for(5000, [&](std::size_t worker, std::size_t) {
    if (worker >= 3) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(WorkerPool, ReusableAcrossRoundsAndCountsThem) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.rounds(), 0u);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
  EXPECT_EQ(pool.rounds(), 50u);
}

TEST(WorkerPool, SingleThreadRunsInlineOnCaller) {
  WorkerPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t ran = 0;
  bool same_thread = true;
  bool worker_zero = true;
  pool.parallel_for(100, [&](std::size_t worker, std::size_t) {
    // Inline execution: no data race possible, plain writes are fine.
    ++ran;
    if (std::this_thread::get_id() != caller) same_thread = false;
    if (worker != 0) worker_zero = false;
  });
  EXPECT_EQ(ran, 100u);
  EXPECT_TRUE(same_thread);
  EXPECT_TRUE(worker_zero);
}

TEST(WorkerPool, EmptyRoundCompletes) {
  WorkerPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, FewerIndicesThanThreads) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(3, [&](std::size_t, std::size_t index) {
    hits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

// Per-index result slots written in parallel must come out identical to a
// serial fill — the determinism contract the decision pipeline relies on.
TEST(WorkerPool, PerIndexSlotsMatchSerialFill) {
  WorkerPool pool(4);
  constexpr std::size_t kCount = 4096;
  std::vector<std::uint64_t> parallel_out(kCount, 0);
  pool.parallel_for(kCount, [&](std::size_t, std::size_t index) {
    parallel_out[index] = index * 2654435761ULL + 17;
  });
  std::vector<std::uint64_t> serial_out(kCount, 0);
  for (std::size_t i = 0; i < kCount; ++i) {
    serial_out[i] = i * 2654435761ULL + 17;
  }
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace mayflower::common
