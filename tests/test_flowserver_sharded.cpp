// The sharded state plane's contract, end to end through the Flowserver:
//  * decisions are byte-identical to the legacy single-shard layout;
//  * churn reloads only the shard it touched;
//  * a switch crash stales exactly the crashed edge's shard;
//  * staggered poll groups apply the same samples per interval as one sweep.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "flowserver/flowserver.hpp"
#include "net/paths.hpp"
#include "net/tree.hpp"

namespace mayflower::flowserver {
namespace {

class ShardedFlowserverTest : public ::testing::Test {
 protected:
  ShardedFlowserverTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo) {}

  FlowserverConfig sharded_config() {
    FlowserverConfig cfg;
    cfg.shard_by_edge = true;
    cfg.seed = 7;
    return cfg;
  }

  // Preloads `n` intra-pod flows (same draw for every server under test).
  void preload(Flowserver& server, std::size_t n) {
    Rng rng(42);
    net::PathCache cache(tree_.topo);
    const std::size_t hosts_per_pod =
        tree_.hosts.size() / tree_.config.pods;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pod = rng.next_below(tree_.config.pods);
      const net::NodeId src =
          tree_.hosts[pod * hosts_per_pod + rng.next_below(hosts_per_pod)];
      net::NodeId dst = src;
      while (dst == src) {
        dst = tree_.hosts[pod * hosts_per_pod +
                          rng.next_below(hosts_per_pod)];
      }
      const auto& paths = cache.get(src, dst);
      server.table().add(static_cast<sdn::Cookie>(1000000 + i),
                         paths[rng.next_below(paths.size())], 256e6,
                         rng.uniform(1e6, 125e6), sim::SimTime{});
    }
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
};

TEST_F(ShardedFlowserverTest, DecisionsMatchLegacyByteForByte) {
  // Same fabric, same preload, same churny request stream: the sharded
  // layout must emit the exact decision sequence the legacy layout does.
  FlowserverConfig legacy_cfg;
  legacy_cfg.seed = 7;
  Flowserver legacy(fabric_, legacy_cfg);
  Flowserver sharded(fabric_, sharded_config());
  ASSERT_GT(sharded.state_shards(), 1u);
  ASSERT_EQ(legacy.state_shards(), 1u);
  preload(legacy, 256);
  preload(sharded, 256);

  Rng req(9);
  Rng churn(11);
  for (int i = 0; i < 32; ++i) {
    // Background churn between decisions: stales one shard vs the table.
    const auto victim = static_cast<sdn::Cookie>(
        1000000 + churn.next_below(256));
    const double bw = churn.uniform(1e6, 125e6);
    legacy.table().setbw(victim, bw, sim::SimTime{});
    sharded.table().setbw(victim, bw, sim::SimTime{});

    const net::NodeId client = tree_.hosts[req.next_below(tree_.hosts.size())];
    std::vector<net::NodeId> reps;
    while (reps.size() < 3) {
      const net::NodeId r = tree_.hosts[req.next_below(tree_.hosts.size())];
      bool dup = r == client;
      for (const net::NodeId seen : reps) dup |= (seen == r);
      if (!dup) reps.push_back(r);
    }
    const auto a = legacy.select_for_read(client, reps, 64e6);
    const auto b = sharded.select_for_read(client, reps, 64e6);
    ASSERT_EQ(a.size(), b.size()) << "request " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].replica, b[j].replica) << "request " << i;
      EXPECT_EQ(a[j].path.nodes, b[j].path.nodes) << "request " << i;
      EXPECT_EQ(a[j].bytes, b[j].bytes) << "request " << i;
      EXPECT_EQ(a[j].est_bw_bps, b[j].est_bw_bps) << "request " << i;
    }
    // Keep the two tables in lockstep (cookies differ across servers, so
    // drop both plans rather than letting the flows linger).
    for (const auto& x : a) legacy.flow_dropped(x.cookie);
    for (const auto& x : b) sharded.flow_dropped(x.cookie);
  }
}

TEST_F(ShardedFlowserverTest, ChurnReloadsOnlyTheTouchedShard) {
  Flowserver server(fabric_, sharded_config());
  preload(server, 64);
  const auto plan =
      server.select_for_read(tree_.hosts[0], {tree_.hosts[20]}, 64e6);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(server.full_view_rebuilds(), 1u);
  const std::uint64_t reloads_before = server.shard_reloads();

  // SETBW on one background flow: exactly one shard goes stale.
  server.table().setbw(1000000, 9e6, sim::SimTime{});
  const auto plan2 =
      server.select_for_read(tree_.hosts[0], {tree_.hosts[20]}, 64e6);
  ASSERT_FALSE(plan2.empty());
  EXPECT_EQ(server.full_view_rebuilds(), 1u);  // no full rebuild
  EXPECT_EQ(server.shard_reloads(), reloads_before + 1);
}

TEST_F(ShardedFlowserverTest, SwitchCrashStalesExactlyOneShard) {
  Flowserver server(fabric_, sharded_config());

  // One fabric-started intra-rack flow per rack 0 and rack 1: the crash
  // below must kill (and so stale) rack 0's only, leaving rack 1 loaded.
  net::PathCache cache(tree_.topo);
  const auto start = [&](net::NodeId src, net::NodeId dst) {
    const net::Path path = cache.get(src, dst)[0];
    const sdn::Cookie c = fabric_.new_cookie();
    fabric_.install_path(c, path);
    fabric_.start_flow(c, path, 1e9);
    server.table().add(c, path, 1e9, 60e6, sim::SimTime{});
    return c;
  };
  const sdn::Cookie rack0_flow = start(tree_.hosts[0], tree_.hosts[1]);
  const sdn::Cookie rack1_flow = start(tree_.hosts[4], tree_.hosts[5]);

  const auto plan =
      server.select_for_read(tree_.hosts[8], {tree_.hosts[12]}, 64e6);
  ASSERT_FALSE(plan.empty());
  for (const auto& a : plan) server.flow_dropped(a.cookie);
  server.view();  // absorb the drop before the fault
  const std::uint64_t full_before = server.full_view_rebuilds();
  const std::uint64_t reloads_before = server.shard_reloads();
  const std::uint64_t links_before = server.link_refreshes();

  // Crash rack 0's edge switch: the failure listener drops rack0_flow from
  // the table, staling rack 0's shard — and no other.
  fabric_.fail_switch(tree_.edge_switches[0]);
  EXPECT_EQ(server.table().find(rack0_flow), nullptr);
  ASSERT_NE(server.table().find(rack1_flow), nullptr);

  const net::NetworkView& view = server.view();
  EXPECT_EQ(server.full_view_rebuilds(), full_before);
  EXPECT_EQ(server.shard_reloads(), reloads_before + 1);  // exactly one
  EXPECT_EQ(server.link_refreshes(), links_before + 1);   // fault epoch moved
  EXPECT_EQ(view.find(rack0_flow), nullptr);
  EXPECT_NE(view.find(rack1_flow), nullptr);
  EXPECT_FALSE(view.link_up(
      tree_.topo.find_link(tree_.hosts[0], tree_.edge_switches[0])));
}

TEST_F(ShardedFlowserverTest, PollGroupsApplySameSamplesPerInterval) {
  // A rotated poll (poll_groups > 1) must apply the same per-flow samples
  // over one full interval as the legacy single sweep — each edge is still
  // visited exactly once per interval, just on staggered ticks.
  sim::EventQueue events_a, events_b;
  sdn::SdnFabric fabric_a(events_a, tree_.topo);
  sdn::SdnFabric fabric_b(events_b, tree_.topo);
  FlowserverConfig cfg_a = sharded_config();
  FlowserverConfig cfg_b = sharded_config();
  cfg_b.poll_groups = 4;
  Flowserver sweep(fabric_a, cfg_a);
  Flowserver rotated(fabric_b, cfg_b);

  net::PathCache cache(tree_.topo);
  for (int i = 0; i < 8; ++i) {
    const net::NodeId src = tree_.hosts[static_cast<std::size_t>(i) * 4];
    const net::NodeId dst = tree_.hosts[static_cast<std::size_t>(i) * 4 + 1];
    const net::Path path = cache.get(src, dst)[0];
    for (sdn::SdnFabric* fabric : {&fabric_a, &fabric_b}) {
      const sdn::Cookie c = static_cast<sdn::Cookie>(500 + i);
      fabric->install_path(c, path);
      fabric->start_flow(c, path, 1e9);
    }
    sweep.table().add(static_cast<sdn::Cookie>(500 + i), path, 1e9, 60e6,
                      sim::SimTime{});
    rotated.table().add(static_cast<sdn::Cookie>(500 + i), path, 1e9, 60e6,
                        sim::SimTime{});
  }
  sweep.start();
  rotated.start();
  // Two full poll intervals: the first poll of a flow only seeds last_poll
  // bookkeeping; the second yields a measurement.
  events_a.run_until(sim::SimTime::from_seconds(2.1));
  events_b.run_until(sim::SimTime::from_seconds(2.1));

  EXPECT_EQ(sweep.stats_samples(), rotated.stats_samples());
  EXPECT_GT(rotated.stats_samples(), 0u);
  for (int i = 0; i < 8; ++i) {
    const auto* a = sweep.table().find(static_cast<sdn::Cookie>(500 + i));
    const auto* b = rotated.table().find(static_cast<sdn::Cookie>(500 + i));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_DOUBLE_EQ(a->bw_bps, b->bw_bps) << "flow " << i;
  }
}

}  // namespace
}  // namespace mayflower::flowserver
