#include "net/link_index.hpp"

#include <gtest/gtest.h>

namespace mayflower::net {
namespace {

using Keys = std::vector<LinkIndex::Key>;

TEST(LinkIndex, AddMakesKeysVisibleOnEveryLink) {
  LinkIndex idx(4);
  idx.add(7, {0, 2});
  EXPECT_EQ(idx.on_link(0), (Keys{7}));
  EXPECT_EQ(idx.on_link(1), Keys{});
  EXPECT_EQ(idx.on_link(2), (Keys{7}));
  EXPECT_EQ(idx.count_on(0), 1u);
}

TEST(LinkIndex, KeysStayAscendingRegardlessOfInsertOrder) {
  LinkIndex idx(2);
  idx.add(9, {0});
  idx.add(3, {0});
  idx.add(6, {0});
  EXPECT_EQ(idx.on_link(0), (Keys{3, 6, 9}));
}

TEST(LinkIndex, RemoveErasesOnlyTheGivenKey) {
  LinkIndex idx(2);
  idx.add(1, {0, 1});
  idx.add(2, {0});
  idx.remove(1, {0, 1});
  EXPECT_EQ(idx.on_link(0), (Keys{2}));
  EXPECT_EQ(idx.on_link(1), Keys{});
}

TEST(LinkIndex, OnLinksUnionsAndDeduplicates) {
  LinkIndex idx(3);
  idx.add(5, {0, 1});  // crosses both query links
  idx.add(2, {1});
  idx.add(8, {2});     // not in the query
  EXPECT_EQ(idx.on_links({0, 1}), (Keys{2, 5}));
  EXPECT_EQ(idx.on_links({}), Keys{});
}

TEST(LinkIndex, UnseenLinksAreEmptyAndIndexGrowsOnDemand) {
  LinkIndex idx;
  EXPECT_EQ(idx.on_link(42), Keys{});
  idx.add(1, {42});
  EXPECT_EQ(idx.on_link(42), (Keys{1}));
  EXPECT_EQ(idx.on_link(41), Keys{});
}

TEST(LinkIndex, ClearEmptiesEveryLink) {
  LinkIndex idx(2);
  idx.add(1, {0, 1});
  idx.clear();
  EXPECT_EQ(idx.on_link(0), Keys{});
  EXPECT_EQ(idx.on_link(1), Keys{});
}

TEST(LinkIndex, AddRemoveChurnKeepsOrder) {
  LinkIndex idx(1);
  for (LinkIndex::Key k = 1; k <= 50; ++k) idx.add(k, {0});
  for (LinkIndex::Key k = 2; k <= 50; k += 2) idx.remove(k, {0});
  const Keys& got = idx.on_link(0);
  ASSERT_EQ(got.size(), 25u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], 2 * i + 1);
  }
}

}  // namespace
}  // namespace mayflower::net
