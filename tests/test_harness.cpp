// End-to-end harness runs at reduced scale: these are the smoke versions of
// the paper's Figure 4/6 comparisons, checking directional results rather
// than exact factors.
#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace mayflower::harness {
namespace {

ExperimentConfig small_config(SchemeKind scheme, double lambda = 0.07) {
  ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.catalog.num_files = 60;
  cfg.catalog.file_bytes = 64e6;  // smaller blocks keep tests quick
  cfg.gen.total_jobs = 220;
  cfg.gen.lambda_per_server = lambda;
  cfg.warmup_jobs = 20;
  cfg.seed = 7;
  return cfg;
}

TEST(Harness, CompletesAllJobs) {
  const RunResult r = run_experiment(small_config(SchemeKind::kMayflower));
  EXPECT_EQ(r.scheme, "mayflower");
  EXPECT_EQ(r.completions.size(), 200u);
  EXPECT_EQ(r.incomplete, 0u);
  EXPECT_GT(r.summary.mean, 0.0);
  EXPECT_GE(r.summary.p95, r.summary.p50);
  EXPECT_GT(r.selections, 0u);
}

TEST(Harness, DeterministicForSeed) {
  // Same seed + workload => the entire report is bitwise identical: every
  // completion time, every selection/split counter, the simulated duration.
  // This is what `mayflower_sim` prints, so two CLI runs diff clean too.
  const RunResult a = run_experiment(small_config(SchemeKind::kMayflower));
  const RunResult b = run_experiment(small_config(SchemeKind::kMayflower));
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.completions[i], b.completions[i]);
  }
  EXPECT_EQ(a.incomplete, b.incomplete);
  EXPECT_EQ(a.selections, b.selections);
  EXPECT_EQ(a.split_reads, b.split_reads);
  EXPECT_DOUBLE_EQ(a.sim_duration_sec, b.sim_duration_sec);
  EXPECT_DOUBLE_EQ(a.summary.mean, b.summary.mean);
  EXPECT_DOUBLE_EQ(a.summary.p95, b.summary.p95);
  ASSERT_EQ(a.subflow_finish_gaps.size(), b.subflow_finish_gaps.size());
  for (std::size_t i = 0; i < a.subflow_finish_gaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.subflow_finish_gaps[i], b.subflow_finish_gaps[i]);
  }
}

TEST(Harness, EverySchemeRunsToCompletion) {
  for (const SchemeKind kind :
       {SchemeKind::kSinbadMayflower, SchemeKind::kSinbadEcmp,
        SchemeKind::kNearestMayflower, SchemeKind::kNearestEcmp,
        SchemeKind::kRandomEcmp, SchemeKind::kNearestHedera,
        SchemeKind::kSinbadHedera, SchemeKind::kHdfsEcmp,
        SchemeKind::kHdfsMayflower, SchemeKind::kMayflowerNoMultiread,
        SchemeKind::kMayflowerNoFreeze, SchemeKind::kMayflowerGreedy}) {
    const RunResult r = run_experiment(small_config(kind));
    EXPECT_EQ(r.completions.size(), 200u) << to_string(kind);
    EXPECT_GT(r.summary.mean, 0.0) << to_string(kind);
  }
}

TEST(Harness, MayflowerBeatsNearestEcmpUnderLoad) {
  // The paper's headline (Fig. 4): with 50% rack-local clients the nearest
  // replica's edge link congests and static selection pays for it.
  const RunResult mf =
      run_experiment(small_config(SchemeKind::kMayflower, 0.10));
  const RunResult ne =
      run_experiment(small_config(SchemeKind::kNearestEcmp, 0.10));
  EXPECT_LT(mf.summary.mean, ne.summary.mean);
  EXPECT_LT(mf.summary.p95, ne.summary.p95);
}

TEST(Harness, MultireadNeverHurtsOnAverage) {
  const RunResult with =
      run_experiment(small_config(SchemeKind::kMayflower, 0.09));
  const RunResult without =
      run_experiment(small_config(SchemeKind::kMayflowerNoMultiread, 0.09));
  EXPECT_GT(with.split_reads, 0u);
  EXPECT_EQ(without.split_reads, 0u);
  // §4.3: splitting reduces completion time (allow 5% noise either way).
  EXPECT_LT(with.summary.mean, without.summary.mean * 1.05);
}

TEST(Harness, CensoredJobsAreCounted) {
  // Absurdly low cap: every job is censored, none crash the harness.
  ExperimentConfig cfg = small_config(SchemeKind::kNearestEcmp, 0.12);
  cfg.sim_time_cap_sec = 1.0;
  const RunResult r = run_experiment(cfg);
  EXPECT_GT(r.incomplete, 0u);
  EXPECT_EQ(r.completions.size(), 200u);
}

TEST(Harness, SubflowGapsAreRecordedForSplits) {
  const RunResult r =
      run_experiment(small_config(SchemeKind::kMayflower, 0.09));
  if (r.split_reads > 0) {
    EXPECT_FALSE(r.subflow_finish_gaps.empty());
    for (const double gap : r.subflow_finish_gaps) {
      EXPECT_GE(gap, 0.0);
    }
  }
}

}  // namespace
}  // namespace mayflower::harness
