#include <gtest/gtest.h>

#include <vector>

#include "net/tree.hpp"
#include "sdn/fabric.hpp"
#include "sdn/link_rate_monitor.hpp"
#include "sdn/stats_poller.hpp"

namespace mayflower::sdn {
namespace {

using net::NodeId;
using net::Path;

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo) {}

  Path first_path(NodeId from, NodeId to) {
    return net::shortest_paths(tree_.topo, from, to).at(0);
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  SdnFabric fabric_;
};

TEST_F(FabricTest, CookiesAreUnique) {
  const Cookie a = fabric_.new_cookie();
  const Cookie b = fabric_.new_cookie();
  EXPECT_NE(a, b);
}

TEST_F(FabricTest, InstallWritesEveryIntermediateSwitch) {
  const Path p = first_path(tree_.hosts[0], tree_.hosts[16]);  // 6 links
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  // Switches are nodes[1..n-2]; each must forward onto the next link.
  for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
    const auto out = fabric_.switch_at(p.nodes[i]).lookup(c);
    ASSERT_TRUE(out.has_value()) << "switch " << i;
    EXPECT_EQ(*out, p.links[i]);
  }
}

TEST_F(FabricTest, RemoveClearsEntries) {
  const Path p = first_path(tree_.hosts[0], tree_.hosts[16]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.remove_path(c);
  for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
    EXPECT_FALSE(fabric_.switch_at(p.nodes[i]).lookup(c).has_value());
  }
}

TEST_F(FabricTest, FlowRunsAndReportsCompletion) {
  const Path p = first_path(tree_.hosts[0], tree_.hosts[1]);  // same rack
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  bool done = false;
  fabric_.start_flow(c, p, 125e6, [&](Cookie cookie, sim::SimTime start) {
    EXPECT_EQ(cookie, c);
    EXPECT_EQ(start, sim::SimTime::from_seconds(0));
    done = true;
  });
  EXPECT_TRUE(fabric_.flow_active(c));
  events_.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(fabric_.flow_active(c));
  // 125 MB over a 125 MB/s edge link: 1 second.
  EXPECT_EQ(events_.now(), sim::SimTime::from_seconds(1.0));
}

TEST_F(FabricTest, CompletionTearsDownFlowTableEntries) {
  const Path p = first_path(tree_.hosts[0], tree_.hosts[4]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 1e6);
  events_.run();
  for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
    EXPECT_FALSE(fabric_.switch_at(p.nodes[i]).lookup(c).has_value());
  }
}

TEST_F(FabricTest, CancelStopsTheTransfer) {
  const Path p = first_path(tree_.hosts[0], tree_.hosts[1]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  bool done = false;
  fabric_.start_flow(c, p, 125e6,
                     [&](Cookie, sim::SimTime) { done = true; });
  events_.schedule_at(sim::SimTime::from_seconds(0.5),
                      [&] { EXPECT_TRUE(fabric_.cancel_flow(c)); });
  events_.run();
  EXPECT_FALSE(done);
}

TEST_F(FabricTest, EdgeFlowStatsTrackSourceSideFlows) {
  const NodeId src = tree_.hosts[0];
  const NodeId dst = tree_.hosts[16];
  const Path p = first_path(src, dst);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 1e9);

  events_.schedule_at(sim::SimTime::from_seconds(1.0), [&] {
    // Poll the *source* edge: must include the flow with partial bytes.
    const auto stats = fabric_.poll_edge_flow_stats(tree_.edge_of_host(src));
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].cookie, c);
    EXPECT_TRUE(stats[0].active);
    EXPECT_GT(stats[0].bytes, 0.0);
    EXPECT_LT(stats[0].bytes, 1e9);
    // The destination edge reports nothing (paper polls the source side).
    EXPECT_TRUE(
        fabric_.poll_edge_flow_stats(tree_.edge_of_host(dst)).empty());
  });
  events_.run();
}

TEST_F(FabricTest, FinalCounterDeliveredOncePostCompletion) {
  const NodeId src = tree_.hosts[0];
  const Path p = first_path(src, tree_.hosts[1]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 1e6);
  events_.run();
  auto stats = fabric_.poll_edge_flow_stats(tree_.edge_of_host(src));
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].active);
  EXPECT_DOUBLE_EQ(stats[0].bytes, 1e6);
  // Consumed by the poll: a second poll is empty.
  EXPECT_TRUE(fabric_.poll_edge_flow_stats(tree_.edge_of_host(src)).empty());
}

TEST_F(FabricTest, PortStatsCoverAllOutLinks) {
  const NodeId edge = tree_.edge_switches[0];
  const auto stats = fabric_.poll_port_stats(edge);
  EXPECT_EQ(stats.size(), tree_.topo.out_links(edge).size());
  for (const auto& s : stats) {
    EXPECT_DOUBLE_EQ(s.bytes, 0.0);
    EXPECT_GT(s.capacity_bps, 0.0);
  }
}

TEST_F(FabricTest, PortBytesAdvanceWithTraffic) {
  const NodeId src = tree_.hosts[0];
  const Path p = first_path(src, tree_.hosts[1]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 125e6);
  events_.schedule_at(sim::SimTime::from_seconds(0.5), [&] {
    EXPECT_NEAR(fabric_.port_bytes(tree_.host_uplink(src)), 62.5e6, 1e3);
  });
  events_.run();
}

TEST(StatsPoller, TicksAtInterval) {
  sim::EventQueue events;
  int ticks = 0;
  StatsPoller poller(events, sim::SimTime::from_seconds(1.0),
                     [&] { ++ticks; });
  poller.start();
  events.run_until(sim::SimTime::from_seconds(5.5));
  EXPECT_EQ(ticks, 5);
  poller.stop();
  events.run_until(sim::SimTime::from_seconds(10.0));
  EXPECT_EQ(ticks, 5);
}

TEST(StatsPoller, StartIsIdempotent) {
  sim::EventQueue events;
  int ticks = 0;
  StatsPoller poller(events, sim::SimTime::from_seconds(1.0),
                     [&] { ++ticks; });
  poller.start();
  poller.start();
  events.run_until(sim::SimTime::from_seconds(3.5));
  EXPECT_EQ(ticks, 3);  // not doubled
}

// Regression: arm() used to re-arm unconditionally after the tick callback,
// so stop() issued from *within* a tick was silently undone — the stale
// chain kept firing, and a later start() double-ticked forever.
TEST(StatsPoller, StopFromWithinTickSticksAndRestartDoesNotDoubleTick) {
  sim::EventQueue events;
  int ticks = 0;
  StatsPoller* self = nullptr;
  StatsPoller poller(events, sim::SimTime::from_seconds(1.0), [&] {
    ++ticks;
    if (ticks == 1) self->stop();  // controller pauses collection mid-cycle
  });
  self = &poller;

  poller.start();
  events.run_until(sim::SimTime::from_seconds(1.5));
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(poller.running());

  // Nothing may fire while stopped.
  events.run_until(sim::SimTime::from_seconds(2.2));
  EXPECT_EQ(ticks, 1);

  // Restart at t=2.2: ticks at 3.2 and 4.2 only — a resurrected stale chain
  // would add extras at 2.5/3.5/4.5 (7 ticks by t=4.6 pre-fix).
  poller.start();
  events.run_until(sim::SimTime::from_seconds(4.6));
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(poller.ticks(), 3u);
}

// Regression: ticks() (and sdn.poller.ticks) count staggered SUB-ticks, so
// with groups > 1 they run groups x faster than collection cycles — the old
// docs claimed cycles and work-per-cycle accounting was off by that factor.
// cycles() has the cycle semantics regardless of grouping.
TEST(StatsPoller, CyclesCountSweepsNotSubTicks) {
  sim::EventQueue events;
  int ticks = 0;
  StatsPoller poller(events, sim::SimTime::from_seconds(1.0),
                     [&] { ++ticks; });
  poller.set_groups(4);
  poller.start();
  // Sub-ticks fire at 0.25, 0.5, ... — by t=2.6, 10 sub-ticks = 2 complete
  // sweeps of all four groups (the 9th/10th sub-ticks open cycle 3).
  events.run_until(sim::SimTime::from_seconds(2.6));
  EXPECT_EQ(poller.ticks(), 10u);
  EXPECT_EQ(poller.cycles(), 2u);
  poller.stop();
}

TEST(StatsPoller, UngroupedCyclesEqualTicks) {
  sim::EventQueue events;
  StatsPoller poller(events, sim::SimTime::from_seconds(1.0), [] {});
  poller.start();
  events.run_until(sim::SimTime::from_seconds(3.5));
  EXPECT_EQ(poller.ticks(), 3u);
  EXPECT_EQ(poller.cycles(), 3u);
}

TEST_F(FabricTest, LinkRateMonitorIndexedLookupMatchesSampledRates) {
  // Monitor every host uplink; drive one known flow and check the indexed
  // lookup returns the right rate for the busy link and zero elsewhere.
  std::vector<net::LinkId> links;
  links.reserve(tree_.hosts.size());
  for (const NodeId h : tree_.hosts) links.push_back(tree_.host_uplink(h));
  LinkRateMonitor monitor(fabric_, links, sim::SimTime::from_seconds(1.0));

  const Path p = first_path(tree_.hosts[0], tree_.hosts[1]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 1e9);
  events_.run_until(sim::SimTime::from_seconds(2.5));

  EXPECT_NEAR(monitor.tx_rate_bps(tree_.host_uplink(tree_.hosts[0])), 125e6,
              1e3);
  for (std::size_t i = 1; i < tree_.hosts.size(); ++i) {
    EXPECT_EQ(monitor.tx_rate_bps(tree_.host_uplink(tree_.hosts[i])), 0.0);
  }
}

// Regression: start() after a stop() used to resume with the stale
// last-sample baseline, so the first post-restart sample divided ALL bytes
// sent during the stopped interval by the sample gap — here reporting a
// phantom ~375 MB/s on an idle link (3 s of stopped traffic / 1 s window).
TEST_F(FabricTest, LinkRateMonitorRestartDoesNotSmearStoppedInterval) {
  const net::LinkId uplink = tree_.host_uplink(tree_.hosts[0]);
  LinkRateMonitor monitor(fabric_, {uplink}, sim::SimTime::from_seconds(1.0));

  const Path p = first_path(tree_.hosts[0], tree_.hosts[1]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 125e6 * 4.5);  // 125 MB/s until t=4.5
  events_.run_until(sim::SimTime::from_seconds(1.5));
  EXPECT_NEAR(monitor.tx_rate_bps(uplink), 125e6, 1e3);

  monitor.stop();
  // Traffic keeps flowing while the monitor is down (t=1.5 .. 4.5).
  events_.run_until(sim::SimTime::from_seconds(4.6));
  events_.schedule_at(sim::SimTime::from_seconds(4.7),
                      [&] { monitor.start(); });
  // First post-restart sample at t=5.7 covers only the idle 4.7..5.7 window.
  events_.run_until(sim::SimTime::from_seconds(5.8));
  EXPECT_EQ(monitor.tx_rate_bps(uplink), 0.0);
}

TEST_F(FabricTest, LinkRateMonitorStartWhileRunningIsIdempotent) {
  const net::LinkId uplink = tree_.host_uplink(tree_.hosts[0]);
  LinkRateMonitor monitor(fabric_, {uplink}, sim::SimTime::from_seconds(1.0));
  const Path p = first_path(tree_.hosts[0], tree_.hosts[1]);
  const Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  fabric_.start_flow(c, p, 1e9);
  events_.schedule_at(sim::SimTime::from_seconds(1.5), [&] {
    monitor.start();  // must NOT re-baseline a running monitor
  });
  events_.run_until(sim::SimTime::from_seconds(2.5));
  EXPECT_NEAR(monitor.tx_rate_bps(uplink), 125e6, 1e3);
}

}  // namespace
}  // namespace mayflower::sdn
