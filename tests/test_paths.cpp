#include "net/paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/ecmp.hpp"
#include "net/tree.hpp"

namespace mayflower::net {
namespace {

class TreePaths : public ::testing::Test {
 protected:
  TreePaths() : tree_(build_three_tier(ThreeTierConfig{})) {}
  ThreeTier tree_;
};

TEST_F(TreePaths, SameRackHasOneTwoLinkPath) {
  const auto paths =
      shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[1]);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 2u);
  EXPECT_EQ(paths[0].nodes.front(), tree_.hosts[0]);
  EXPECT_EQ(paths[0].nodes.back(), tree_.hosts[1]);
}

TEST_F(TreePaths, SamePodHasTwoFourLinkPaths) {
  const auto paths =
      shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[4]);
  ASSERT_EQ(paths.size(), 2u);  // one per aggregation switch
  for (const Path& p : paths) {
    EXPECT_EQ(p.length(), 4u);
  }
}

TEST_F(TreePaths, CrossPodHasEightSixLinkPaths) {
  // 2 src aggs x 2 cores x 2 dst aggs = 8 distinct shortest paths.
  const auto paths =
      shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[16]);
  ASSERT_EQ(paths.size(), 8u);
  std::set<std::vector<LinkId>> distinct;
  for (const Path& p : paths) {
    EXPECT_EQ(p.length(), 6u);
    distinct.insert(p.links);
  }
  EXPECT_EQ(distinct.size(), 8u);
}

TEST_F(TreePaths, PathLinksAreConsistentWithNodes) {
  const auto paths =
      shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[16]);
  for (const Path& p : paths) {
    ASSERT_EQ(p.nodes.size(), p.links.size() + 1);
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      EXPECT_EQ(tree_.topo.link(p.links[i]).from, p.nodes[i]);
      EXPECT_EQ(tree_.topo.link(p.links[i]).to, p.nodes[i + 1]);
    }
  }
}

TEST_F(TreePaths, SelfPathIsZeroLength) {
  const auto paths =
      shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[0]);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 0u);
}

TEST(Paths, UnreachableReturnsEmpty) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::kHost, "a");
  const NodeId b = t.add_node(NodeKind::kHost, "b");
  const NodeId s = t.add_node(NodeKind::kEdgeSwitch, "s");
  t.add_link(a, s, 1.0);
  t.add_link(s, b, 1.0);
  EXPECT_EQ(shortest_paths(t, a, b).size(), 1u);
  EXPECT_TRUE(shortest_paths(t, b, a).empty());  // directed: no way back
}

TEST(Paths, OnlyShortestLengthIsEnumerated) {
  // Diamond with an extra longer detour: a->s1->b (2 links) and
  // a->s2->s3->b (3 links). Only the 2-link path must be returned.
  Topology t;
  const NodeId a = t.add_node(NodeKind::kHost, "a");
  const NodeId b = t.add_node(NodeKind::kHost, "b");
  const NodeId s1 = t.add_node(NodeKind::kEdgeSwitch, "s1");
  const NodeId s2 = t.add_node(NodeKind::kEdgeSwitch, "s2");
  const NodeId s3 = t.add_node(NodeKind::kEdgeSwitch, "s3");
  t.add_link(a, s1, 1.0);
  t.add_link(s1, b, 1.0);
  t.add_link(a, s2, 1.0);
  t.add_link(s2, s3, 1.0);
  t.add_link(s3, b, 1.0);
  const auto paths = shortest_paths(t, a, b);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 2u);
}

TEST(Paths, ContainsLink) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::kHost, "a");
  const NodeId s = t.add_node(NodeKind::kEdgeSwitch, "s");
  const NodeId b = t.add_node(NodeKind::kHost, "b");
  const LinkId l1 = t.add_link(a, s, 1.0);
  const LinkId l2 = t.add_link(s, b, 1.0);
  const auto paths = shortest_paths(t, a, b);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].contains_link(l1));
  EXPECT_TRUE(paths[0].contains_link(l2));
  EXPECT_FALSE(paths[0].contains_link(kInvalidLink));
}

TEST_F(TreePaths, CacheReturnsSameResults) {
  PathCache cache(tree_.topo);
  const auto& first = cache.get(tree_.hosts[0], tree_.hosts[16]);
  const auto& second = cache.get(tree_.hosts[0], tree_.hosts[16]);
  EXPECT_EQ(&first, &second);  // memoized
  EXPECT_EQ(first.size(), 8u);
}

TEST_F(TreePaths, EcmpIsDeterministicPerNonce) {
  PathCache cache(tree_.topo);
  const auto& paths = cache.get(tree_.hosts[0], tree_.hosts[16]);
  const EcmpHasher ecmp(0);
  const std::size_t i1 =
      ecmp.choose_index(paths.size(), tree_.hosts[0], tree_.hosts[16], 77);
  const std::size_t i2 =
      ecmp.choose_index(paths.size(), tree_.hosts[0], tree_.hosts[16], 77);
  EXPECT_EQ(i1, i2);
}

TEST_F(TreePaths, EcmpSpreadsAcrossPaths) {
  PathCache cache(tree_.topo);
  const auto& paths = cache.get(tree_.hosts[0], tree_.hosts[16]);
  const EcmpHasher ecmp(0);
  std::vector<int> counts(paths.size(), 0);
  constexpr int kFlows = 8000;
  for (int nonce = 0; nonce < kFlows; ++nonce) {
    ++counts[ecmp.choose_index(paths.size(), tree_.hosts[0], tree_.hosts[16],
                               static_cast<std::uint64_t>(nonce))];
  }
  const double expected = kFlows / static_cast<double>(paths.size());
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.15);
  }
}

}  // namespace
}  // namespace mayflower::net
