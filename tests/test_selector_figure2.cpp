// Golden tests: the replica–path selector must reproduce the paper's
// Figure 2 cost arithmetic exactly (C1 = 4.257, C2 = 3.607, second path
// selected; with a 20 Mbps Es->A link, C1 = 2.4 and the first path wins).
#include "flowserver/selector.hpp"

#include <gtest/gtest.h>

#include "figure2_fixture.hpp"

namespace mayflower::flowserver {
namespace {

using testing::Figure2;

class SelectorFigure2 : public ::testing::Test {
 protected:
  static constexpr double kRequest = 9.0;  // Mb
};

TEST_F(SelectorFigure2, FirstPathCostIs4point25) {
  Figure2 fig;
  BandwidthModel model;
  const Candidate c = evaluate_path(model, fig.view(), fig.S,
                                    fig.path_via(fig.A), kRequest);
  EXPECT_NEAR(c.est_bw_bps, 3.0, 1e-9);
  EXPECT_NEAR(c.cost.own_time, 3.0, 1e-9);
  // (6/3 - 6/6) + (6/7 - 6/10) = 1 + 0.2571...
  EXPECT_NEAR(c.cost.impact, 1.0 + 6.0 / 7.0 - 0.6, 1e-9);
  EXPECT_NEAR(c.cost.total, 4.2571428571, 1e-6);  // paper rounds to 4.25
}

TEST_F(SelectorFigure2, SecondPathCostIs3point6) {
  Figure2 fig;
  BandwidthModel model;
  const Candidate c = evaluate_path(model, fig.view(), fig.S,
                                    fig.path_via(fig.B), kRequest);
  EXPECT_NEAR(c.est_bw_bps, 3.0, 1e-9);
  // (6/3 - 6/4) + (6/7 - 6/8) = 0.5 + 0.107...
  EXPECT_NEAR(c.cost.total, 3.6071428571, 1e-6);  // paper rounds to 3.6
}

TEST_F(SelectorFigure2, SelectorPicksTheSecondPath) {
  Figure2 fig;
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  const auto best = selector.select(fig.view(), fig.D, {fig.S}, kRequest);
  ASSERT_TRUE(best.has_value());
  // Winning path goes via aggregation switch B.
  bool via_b = false;
  for (const net::NodeId n : best->path.nodes) via_b |= (n == fig.B);
  EXPECT_TRUE(via_b);
  EXPECT_NEAR(best->cost.total, 3.6071428571, 1e-6);
}

TEST_F(SelectorFigure2, WiderFirstLinkFlipsTheDecision) {
  // "if we assume that the second link in the first path has 20Mbps
  //  capacity, then the cost of the first path will become 2.4" (§4.2).
  Figure2 fig(/*cap_es_a=*/20.0);
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  const auto best = selector.select(fig.view(), fig.D, {fig.S}, kRequest);
  ASSERT_TRUE(best.has_value());
  bool via_a = false;
  for (const net::NodeId n : best->path.nodes) via_a |= (n == fig.A);
  EXPECT_TRUE(via_a);
  EXPECT_NEAR(best->est_bw_bps, 5.0, 1e-9);
  EXPECT_NEAR(best->cost.total, 2.4, 1e-6);
}

TEST_F(SelectorFigure2, BumpedListNamesOnlySlowedFlows) {
  Figure2 fig;
  BandwidthModel model;
  const Candidate c = evaluate_path(model, fig.view(), fig.S,
                                    fig.path_via(fig.A), kRequest);
  // Only the 6-share and 10-share flows are slowed; the 2-share flows keep
  // their demand.
  ASSERT_EQ(c.bumped.size(), 2u);
  for (const auto& [cookie, bw] : c.bumped) {
    EXPECT_TRUE(cookie == fig.flow6 || cookie == fig.flow10);
    if (cookie == fig.flow6) EXPECT_NEAR(bw, 3.0, 1e-9);
    if (cookie == fig.flow10) EXPECT_NEAR(bw, 7.0, 1e-9);
  }
}

TEST_F(SelectorFigure2, CommitAppliesSetBwAndRegistersFlow) {
  Figure2 fig;
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  net::NetworkView view = fig.view();
  const auto best = selector.select(view, fig.D, {fig.S}, kRequest);
  ASSERT_TRUE(best.has_value());
  const sim::SimTime now = sim::SimTime::from_seconds(1.0);
  selector.commit(view, *best, /*cookie=*/999, kRequest, now);

  // New flow registered, frozen, with its estimate.
  const TrackedFlow* nf = fig.table.find(999);
  ASSERT_NE(nf, nullptr);
  EXPECT_NEAR(nf->bw_bps, 3.0, 1e-9);
  EXPECT_TRUE(nf->frozen);
  EXPECT_DOUBLE_EQ(nf->remaining_bytes, kRequest);

  // Second path chosen: flow4 (share 4 -> 3) and flow8 (8 -> 7) were SETBW'd
  // and frozen; first-path flows untouched.
  EXPECT_NEAR(fig.table.find(fig.flow4)->bw_bps, 3.0, 1e-9);
  EXPECT_TRUE(fig.table.find(fig.flow4)->frozen);
  EXPECT_NEAR(fig.table.find(fig.flow8)->bw_bps, 7.0, 1e-9);
  EXPECT_NEAR(fig.table.find(fig.flow6)->bw_bps, 6.0, 1e-9);
  EXPECT_NEAR(fig.table.find(fig.flow10)->bw_bps, 10.0, 1e-9);

  // Write-through: the batch's view mirrors every commit, so later
  // decisions in the same batch see identical state.
  ASSERT_NE(view.find(999), nullptr);
  EXPECT_NEAR(view.find(999)->bw_bps, 3.0, 1e-9);
  EXPECT_NEAR(view.find(fig.flow4)->bw_bps, 3.0, 1e-9);
  EXPECT_NEAR(view.find(fig.flow8)->bw_bps, 7.0, 1e-9);
  EXPECT_NEAR(view.find(fig.flow6)->bw_bps, 6.0, 1e-9);
}

TEST_F(SelectorFigure2, GreedyModeIgnoresImpact) {
  // With impact accounting off both paths cost 3.0; the selector takes the
  // first one it evaluates. Verify the cost reduction is reflected.
  Figure2 fig;
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  selector.set_impact_aware(false);
  const auto best = selector.select(fig.view(), fig.D, {fig.S}, kRequest);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->cost.total, 3.0, 1e-9);
}

// Regression: commit() used to apply the bumped shares computed at select()
// time verbatim. If a stats poll (or another selection's commit) lowered a
// flow's share in between, the stale SETBW *raised* the flow back above what
// the fabric actually gives it — and froze the over-estimate. commit() must
// clamp to the fresher table value.
TEST_F(SelectorFigure2, CommitNeverRaisesAFlowAboveItsCurrentShare) {
  Figure2 fig;
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);

  // The selection reads a snapshot taken BEFORE the interleaving below: the
  // view is about to go stale, which is exactly the hazard the commit-time
  // clamp guards against.
  net::NetworkView view = fig.view();
  const std::uint64_t version_at_snapshot = fig.table.version();

  // Selection sees flow4 at share 4 and plans to bump it to 3 (path via B).
  const auto best = selector.select(view, fig.D, {fig.S}, kRequest);
  ASSERT_TRUE(best.has_value());
  double planned_flow4 = -1.0;
  for (const auto& [cookie, bw] : best->bumped) {
    if (cookie == fig.flow4) planned_flow4 = bw;
  }
  ASSERT_NEAR(planned_flow4, 3.0, 1e-9);

  // Before commit, an interleaved poll measured flow4 at only 2. The table
  // version moves — this is the signal the Flowserver uses to rebuild its
  // cached view before the NEXT batch; the in-flight decision still holds
  // the old snapshot.
  fig.table.setbw(fig.flow4, 2.0, sim::SimTime{});
  EXPECT_NE(fig.table.version(), version_at_snapshot);
  EXPECT_NEAR(view.find(fig.flow4)->bw_bps, 4.0, 1e-9);  // snapshot unmoved

  selector.commit(view, *best, fig.next_cookie, kRequest, sim::SimTime{});

  // The stale estimate (3) must not override the fresher, lower share (2):
  // commit clamps to min(current, planned) against the authoritative table.
  EXPECT_NEAR(fig.table.find(fig.flow4)->bw_bps, 2.0, 1e-9);
  // The write-through mirrors the CLAMPED value, not the stale plan.
  EXPECT_NEAR(view.find(fig.flow4)->bw_bps, 2.0, 1e-9);
  // Flows whose planned share is still below their current one drop as
  // planned.
  EXPECT_NEAR(fig.table.find(fig.flow8)->bw_bps, 7.0, 1e-9);
  EXPECT_NEAR(view.find(fig.flow8)->bw_bps, 7.0, 1e-9);
}

TEST_F(SelectorFigure2, MultipleReplicasWidenTheSearch) {
  // Add a second replica co-located on the destination edge: its 2-link
  // path is idle, so it must win over both 4-link paths.
  Figure2 fig;
  const net::NodeId s2 = fig.topo.add_node(net::NodeKind::kHost, "S2");
  fig.topo.add_duplex(s2, fig.Ed, 10.0);
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  const auto best = selector.select(fig.view(), fig.D, {fig.S, s2}, kRequest);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->replica, s2);
  EXPECT_NEAR(best->est_bw_bps, 10.0, 1e-9);
  EXPECT_NEAR(best->cost.total, 0.9, 1e-9);
}

}  // namespace
}  // namespace mayflower::flowserver
