// End-to-end tests of the full filesystem stack over the simulated fabric:
// create/append/read/delete through real RPC encode/decode, bulk bytes as
// network flows, replica relays, consistency modes, cache behavior, and
// nameserver recovery.
#include "fs/cluster.hpp"

#include "common/strings.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace mayflower::fs {
namespace {

ClusterConfig small_config(FsScheme scheme = FsScheme::kMayflower) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.nameserver.chunk_size = 1000;  // small chunks exercise boundaries
  cfg.client.replication = 3;
  cfg.seed = 5;
  return cfg;
}

// Runs the cluster until `flag` is set (all callbacks in these tests set
// their flag synchronously from the event loop).
void run_until_done(Cluster& cluster, const bool& flag,
                    double timeout_sec = 300.0) {
  while (!flag && !cluster.events().empty() &&
         cluster.events().now() < sim::SimTime::from_seconds(timeout_sec)) {
    cluster.events().step();
  }
  ASSERT_TRUE(flag) << "operation did not complete";
}

TEST(Cluster, CreateLookupAndPlacement) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[3]);
  bool done = false;
  client.create("alpha", [&](Status status, const FileInfo& info) {
    EXPECT_EQ(status, Status::kOk);
    EXPECT_FALSE(info.uuid.is_nil());
    ASSERT_EQ(info.replicas.size(), 3u);
    // Placement constraints (§6.1.1): distinct racks; second replica in the
    // primary's pod; third in another pod.
    const auto& tree = cluster.tree();
    EXPECT_NE(tree.rack_of(info.replicas[0]), tree.rack_of(info.replicas[1]));
    EXPECT_EQ(tree.pod_of(info.replicas[0]), tree.pod_of(info.replicas[1]));
    EXPECT_NE(tree.pod_of(info.replicas[0]), tree.pod_of(info.replicas[2]));
    done = true;
  });
  run_until_done(cluster, done);
  EXPECT_EQ(cluster.nameserver().file_count(), 1u);
}

TEST(Cluster, DuplicateCreateRejected) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[0]);
  bool done = false;
  client.create("dup", [&](Status s1, const FileInfo&) {
    EXPECT_EQ(s1, Status::kOk);
    client.create("dup", [&](Status s2, const FileInfo&) {
      EXPECT_EQ(s2, Status::kAlreadyExists);
      done = true;
    });
  });
  run_until_done(cluster, done);
}

TEST(Cluster, AppendReplicatesToAllHosts) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[7]);
  bool done = false;
  FileInfo created;
  client.create("log", [&](Status status, const FileInfo& info) {
    ASSERT_EQ(status, Status::kOk);
    created = info;
    client.append("log", ExtentList(Extent::pattern(1, 2500)),
                  [&](Status astatus, const AppendResp& resp) {
                    EXPECT_EQ(astatus, Status::kOk);
                    EXPECT_EQ(resp.offset, 0u);
                    EXPECT_EQ(resp.new_size, 2500u);
                    done = true;
                  });
  });
  run_until_done(cluster, done);
  // Every replica host holds the full, identical content.
  for (const net::NodeId rep : created.replicas) {
    const Dataserver& ds = cluster.dataserver_at(rep);
    EXPECT_EQ(ds.file_size(created.uuid), 2500u);
    const ExtentList* data = ds.file_data(created.uuid);
    ASSERT_NE(data, nullptr);
    EXPECT_TRUE(data->content_equals(ExtentList(Extent::pattern(1, 2500))));
  }
}

TEST(Cluster, ConcurrentAppendsAreOrderedByPrimary) {
  Cluster cluster(small_config());
  const auto& hosts = cluster.tree().hosts;
  Client& c1 = cluster.client_at(hosts[1]);
  Client& c2 = cluster.client_at(hosts[33]);
  bool created = false;
  FileInfo info;
  c1.create("shared", [&](Status s, const FileInfo& i) {
    ASSERT_EQ(s, Status::kOk);
    info = i;
    created = true;
  });
  run_until_done(cluster, created);

  int acks = 0;
  std::vector<std::uint64_t> offsets;
  auto on_append = [&](Status s, const AppendResp& resp) {
    EXPECT_EQ(s, Status::kOk);
    offsets.push_back(resp.offset);
    ++acks;
  };
  c1.append("shared", ExtentList(Extent::pattern(10, 700)), on_append);
  c2.append("shared", ExtentList(Extent::pattern(11, 800)), on_append);
  bool both = false;
  cluster.events().schedule_in(sim::SimTime::from_seconds(0), [&] {});
  while (acks < 2 && !cluster.events().empty()) cluster.events().step();
  both = acks == 2;
  ASSERT_TRUE(both);
  // Atomic appends: offsets are distinct and tile [0, 1500).
  std::sort(offsets.begin(), offsets.end());
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_TRUE(offsets[1] == 700u || offsets[1] == 800u);
  // All replicas converge to the same 1500-byte content.
  const auto* primary_data =
      cluster.dataserver_at(info.primary()).file_data(info.uuid);
  ASSERT_NE(primary_data, nullptr);
  EXPECT_EQ(primary_data->size(), 1500u);
  for (const net::NodeId rep : info.replicas) {
    const auto* data = cluster.dataserver_at(rep).file_data(info.uuid);
    ASSERT_NE(data, nullptr);
    EXPECT_TRUE(data->content_equals(*primary_data));
  }
}

TEST(Cluster, ReadBackMatchesAppendedContent) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[12]);
  bool done = false;
  const ExtentList payload(Extent::pattern(42, 5000));  // 5 chunks
  client.create("blob", [&](Status s, const FileInfo&) {
    ASSERT_EQ(s, Status::kOk);
    client.append("blob", payload, [&](Status as, const AppendResp&) {
      ASSERT_EQ(as, Status::kOk);
      client.read_file("blob", [&](Status rs, ReadResult result) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_EQ(result.file_size, 5000u);
        EXPECT_TRUE(result.data.content_equals(payload));
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
}

TEST(Cluster, RangedReadReturnsExactSlice) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[20]);
  bool done = false;
  const ExtentList payload(Extent::pattern(7, 3000));
  client.create("ranged", [&](Status, const FileInfo&) {
    client.append("ranged", payload, [&](Status, const AppendResp&) {
      client.read("ranged", 1234, 777, [&](Status rs, ReadResult result) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_EQ(result.data.size(), 777u);
        EXPECT_TRUE(result.data.content_equals(payload.slice(1234, 777)));
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
}

TEST(Cluster, ReadPastEofReturnsAvailableBytes) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[2]);
  bool done = false;
  client.create("short", [&](Status, const FileInfo&) {
    client.append("short", ExtentList(Extent::pattern(3, 100)),
                  [&](Status, const AppendResp&) {
                    client.read("short", 50, 500,
                                [&](Status rs, ReadResult result) {
                                  EXPECT_EQ(rs, Status::kOk);
                                  EXPECT_EQ(result.data.size(), 50u);
                                  done = true;
                                });
                  });
  });
  run_until_done(cluster, done);
}

TEST(Cluster, EverySchemeServesReads) {
  for (const FsScheme scheme :
       {FsScheme::kMayflower, FsScheme::kHdfsMayflower, FsScheme::kHdfsEcmp,
        FsScheme::kNearestEcmp}) {
    Cluster cluster(small_config(scheme));
    Client& client = cluster.client_at(cluster.tree().hosts[9]);
    bool done = false;
    const ExtentList payload(Extent::pattern(9, 2000));
    client.create("f", [&](Status s, const FileInfo&) {
      ASSERT_EQ(s, Status::kOk);
      client.append("f", payload, [&](Status, const AppendResp&) {
        client.read_file("f", [&](Status rs, ReadResult result) {
          EXPECT_EQ(rs, Status::kOk) << to_string(scheme);
          EXPECT_TRUE(result.data.content_equals(payload));
          done = true;
        });
      });
    });
    run_until_done(cluster, done);
  }
}

TEST(Cluster, MetadataCacheAvoidsSecondLookup) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[4]);
  bool done = false;
  client.create("cached", [&](Status, const FileInfo&) {
    client.append("cached", ExtentList(Extent::pattern(1, 10)),
                  [&](Status, const AppendResp&) {
                    client.read_file("cached", [&](Status, ReadResult) {
                      client.read_file("cached", [&](Status, ReadResult) {
                        done = true;
                      });
                    });
                  });
  });
  run_until_done(cluster, done);
  // create caches the meta; append + both reads hit the cache.
  EXPECT_EQ(client.lookups_sent(), 0u);
  EXPECT_GE(client.cache_hits(), 3u);
}

TEST(Cluster, ExpiredCacheTriggersFreshLookup) {
  ClusterConfig cfg = small_config();
  cfg.client.meta_cache_ttl = sim::SimTime::from_seconds(1.0);
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[4]);
  bool done = false;
  client.create("ttl", [&](Status, const FileInfo&) {
    // Wait out the TTL before touching the file again.
    cluster.events().schedule_in(sim::SimTime::from_seconds(5.0), [&] {
      client.append("ttl", ExtentList(Extent::pattern(1, 10)),
                    [&](Status, const AppendResp&) { done = true; });
    });
  });
  run_until_done(cluster, done);
  EXPECT_GE(client.lookups_sent(), 1u);  // TTL expired between create/append
}

TEST(Cluster, DeleteRemovesEverywhereAndStaleCacheRecovers) {
  Cluster cluster(small_config());
  const auto& hosts = cluster.tree().hosts;
  Client& writer = cluster.client_at(hosts[1]);
  Client& reader = cluster.client_at(hosts[50]);
  bool done = false;
  FileInfo created;
  writer.create("victim", [&](Status, const FileInfo& info) {
    created = info;
    writer.append("victim", ExtentList(Extent::pattern(2, 500)),
                  [&](Status, const AppendResp&) {
                    // Prime the reader's cache, then delete.
                    reader.read_file("victim", [&](Status rs, ReadResult) {
                      ASSERT_EQ(rs, Status::kOk);
                      writer.remove("victim", [&](Status ds) {
                        ASSERT_EQ(ds, Status::kOk);
                        // Reader retries with a fresh lookup, which fails:
                        // deletes win eventually (§3.4's concession).
                        reader.read_file("victim",
                                         [&](Status rs2, ReadResult) {
                                           EXPECT_EQ(rs2, Status::kNotFound);
                                           done = true;
                                         });
                      });
                    });
                  });
  });
  run_until_done(cluster, done);
  for (const net::NodeId rep : created.replicas) {
    EXPECT_EQ(cluster.dataserver_at(rep).file_data(created.uuid), nullptr);
  }
  EXPECT_EQ(cluster.nameserver().file_count(), 0u);
}

TEST(Cluster, StrongConsistencyReadsLastChunkFromPrimary) {
  ClusterConfig cfg = small_config();
  cfg.client.consistency = Consistency::kStrong;
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[18]);
  bool done = false;
  FileInfo created;
  const ExtentList payload(Extent::pattern(6, 3500));  // chunks of 1000
  client.create("strong", [&](Status, const FileInfo& info) {
    created = info;
    client.append("strong", payload, [&](Status, const AppendResp&) {
      client.read_file("strong", [&](Status rs, ReadResult result) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_TRUE(result.data.content_equals(payload));
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
  // The primary must have served at least one read RPC (the tail piece).
  EXPECT_GE(cluster.dataserver_at(created.primary()).reads_served(), 1u);
}

TEST(Cluster, NameserverRebuildRecoversMappingsFromDataservers) {
  ClusterConfig cfg = small_config();
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[6]);
  bool wrote = false;
  client.create("persisted", [&](Status, const FileInfo&) {
    client.append("persisted", ExtentList(Extent::pattern(4, 1200)),
                  [&](Status, const AppendResp&) { wrote = true; });
  });
  run_until_done(cluster, wrote);

  // Unclean restart: discard the KV state and rebuild from dataservers.
  bool rebuilt = false;
  std::vector<net::NodeId> all_ds(cluster.tree().hosts.begin(),
                                  cluster.tree().hosts.end());
  cluster.nameserver().rebuild_from_dataservers(all_ds,
                                                [&] { rebuilt = true; });
  run_until_done(cluster, rebuilt);

  const auto info = cluster.nameserver().lookup("persisted");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 1200u);
  EXPECT_EQ(info->replicas.size(), 3u);

  // The file remains readable through a fresh client.
  bool read_ok = false;
  Client& fresh = cluster.client_at(cluster.tree().hosts[40]);
  fresh.read_file("persisted", [&](Status rs, ReadResult result) {
    EXPECT_EQ(rs, Status::kOk);
    EXPECT_EQ(result.data.size(), 1200u);
    read_ok = true;
  });
  run_until_done(cluster, read_ok);
}

TEST(Cluster, MissingFileLookupFails) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[0]);
  bool done = false;
  client.read_file("ghost", [&](Status status, ReadResult) {
    EXPECT_EQ(status, Status::kNotFound);
    done = true;
  });
  run_until_done(cluster, done);
}

TEST(Cluster, LargePatternFileRoundTripsWithoutMaterializing) {
  ClusterConfig cfg = small_config();
  cfg.nameserver.chunk_size = 256'000'000;
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[25]);
  bool done = false;
  // A full 256 MB block, as in the paper's experiments.
  const ExtentList payload(Extent::pattern(123, 256'000'000));
  double finished_at = -1.0;
  client.create("block", [&](Status, const FileInfo&) {
    client.append("block", payload, [&](Status as, const AppendResp& resp) {
      ASSERT_EQ(as, Status::kOk);
      EXPECT_EQ(resp.new_size, 256'000'000u);
      client.read_file("block", [&](Status rs, ReadResult result) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_EQ(result.data.size(), 256'000'000u);
        EXPECT_TRUE(result.data.content_equals(payload));
        finished_at = cluster.events().now().seconds();
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
  // Sanity: moving 256 MB twice (append + read) through 125 MB/s edges
  // takes simulated seconds, not microseconds.
  EXPECT_GT(finished_at, 2.0);
}


TEST(Cluster, ReadFailsOverToSurvivingReplica) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[11]);
  bool wrote = false;
  FileInfo created;
  client.create("resilient", [&](Status, const FileInfo& info) {
    created = info;
    client.append("resilient", ExtentList(Extent::pattern(8, 1800)),
                  [&](Status, const AppendResp&) { wrote = true; });
  });
  run_until_done(cluster, wrote);

  // Kill all but one replica host; the read must still succeed.
  for (std::size_t i = 0; i + 1 < created.replicas.size(); ++i) {
    cluster.dataserver_at(created.replicas[i]).detach();
  }
  bool read_ok = false;
  client.read_file("resilient", [&](Status rs, ReadResult result) {
    EXPECT_EQ(rs, Status::kOk);
    EXPECT_EQ(result.data.size(), 1800u);
    EXPECT_TRUE(
        result.data.content_equals(ExtentList(Extent::pattern(8, 1800))));
    read_ok = true;
  });
  run_until_done(cluster, read_ok);
  EXPECT_GE(cluster.dataserver_at(created.replicas.back()).reads_served(),
            1u);
}

TEST(Cluster, AppendFailsWhilePrimaryDownThenRecovers) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[11]);
  bool created = false;
  FileInfo info;
  client.create("flaky", [&](Status, const FileInfo& i) {
    info = i;
    created = true;
  });
  run_until_done(cluster, created);

  cluster.dataserver_at(info.primary()).detach();
  bool failed = false;
  client.append("flaky", ExtentList(Extent::pattern(1, 100)),
                [&](Status s, const AppendResp&) {
                  EXPECT_EQ(s, Status::kUnavailable);
                  failed = true;
                });
  run_until_done(cluster, failed);

  cluster.dataserver_at(info.primary()).attach();
  bool ok = false;
  client.append("flaky", ExtentList(Extent::pattern(1, 100)),
                [&](Status s, const AppendResp& resp) {
                  EXPECT_EQ(s, Status::kOk);
                  EXPECT_EQ(resp.new_size, 100u);
                  ok = true;
                });
  run_until_done(cluster, ok);
}

TEST(Cluster, CollaborativePlacementKeepsFaultDomains) {
  ClusterConfig cfg = small_config();
  cfg.collaborative_placement = true;
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[22]);
  bool done = false;
  client.create("placed", [&](Status status, const FileInfo& info) {
    EXPECT_EQ(status, Status::kOk);
    const auto& tree = cluster.tree();
    std::set<int> racks;
    for (const net::NodeId r : info.replicas) racks.insert(tree.rack_of(r));
    EXPECT_EQ(racks.size(), 3u);
    EXPECT_EQ(tree.pod_of(info.replicas[1]), tree.pod_of(info.replicas[0]));
    EXPECT_NE(tree.pod_of(info.replicas[2]), tree.pod_of(info.replicas[0]));
    done = true;
  });
  run_until_done(cluster, done);
}

TEST(Cluster, CoDesignedWritesRoundTrip) {
  ClusterConfig cfg = small_config();
  cfg.co_designed_writes = true;
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[3]);
  bool done = false;
  const ExtentList payload(Extent::pattern(77, 4200));
  client.create("codesigned", [&](Status, const FileInfo&) {
    client.append("codesigned", payload, [&](Status as, const AppendResp&) {
      ASSERT_EQ(as, Status::kOk);
      client.read_file("codesigned", [&](Status rs, ReadResult result) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_TRUE(result.data.content_equals(payload));
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
  // Upload + two relays + the read all consulted the Flowserver.
  EXPECT_GE(cluster.flow_server()->selections(), 4u);
}


TEST(Cluster, StatAndListApis) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[5]);
  bool done = false;
  client.create("x/one", [&](Status, const FileInfo&) {
    client.create("x/two", [&](Status, const FileInfo&) {
      client.append("x/one", ExtentList(Extent::pattern(1, 750)),
                    [&](Status, const AppendResp&) {
        client.invalidate_cache("x/one");
        client.stat("x/one", [&](Status ss, const FileInfo& info) {
          EXPECT_EQ(ss, Status::kOk);
          EXPECT_EQ(info.name, "x/one");
          // Size reported via the primary's async ReportSize.
          EXPECT_EQ(info.size, 750u);
          client.list([&](Status ls, std::vector<std::string> names) {
            EXPECT_EQ(ls, Status::kOk);
            ASSERT_EQ(names.size(), 2u);
            EXPECT_EQ(names[0], "x/one");
            EXPECT_EQ(names[1], "x/two");
            done = true;
          });
        });
      });
    });
  });
  run_until_done(cluster, done);
  bool missing = false;
  client.stat("ghost", [&](Status s, const FileInfo&) {
    EXPECT_EQ(s, Status::kNotFound);
    missing = true;
  });
  run_until_done(cluster, missing);
}


TEST(Cluster, FlowserverRpcServiceHandlesSelections) {
  // Default mode: selections travel as RPCs to the controller node (§5).
  Cluster cluster(small_config());
  ASSERT_NE(cluster.flowserver_service(), nullptr);
  Client& client = cluster.client_at(cluster.tree().hosts[8]);
  bool done = false;
  client.create("rpc-file", [&](Status, const FileInfo&) {
    client.append("rpc-file", ExtentList(Extent::pattern(4, 1500)),
                  [&](Status, const AppendResp&) {
                    client.read_file("rpc-file", [&](Status rs, ReadResult) {
                      EXPECT_EQ(rs, Status::kOk);
                      done = true;
                    });
                  });
  });
  run_until_done(cluster, done);
  EXPECT_GE(cluster.flowserver_service()->requests_served(), 1u);
  // Drops arrive over RPC too: eventually the table empties.
  bool drained = false;
  cluster.events().schedule_in(sim::SimTime::from_seconds(1.0), [&] {
    drained = cluster.flow_server()->table().size() == 0;
  });
  run_until_done(cluster, drained);
}

TEST(Cluster, InProcessFlowserverModeStillWorks) {
  ClusterConfig cfg = small_config();
  cfg.flowserver_over_rpc = false;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.flowserver_service(), nullptr);
  Client& client = cluster.client_at(cluster.tree().hosts[8]);
  bool done = false;
  const ExtentList payload(Extent::pattern(4, 1500));
  client.create("local-file", [&](Status, const FileInfo&) {
    client.append("local-file", payload, [&](Status, const AppendResp&) {
      client.read_file("local-file", [&](Status rs, ReadResult r) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_TRUE(r.data.content_equals(payload));
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
}

TEST(Cluster, StrongReadsSeePrefixesUnderConcurrentAppends) {
  // Writers keep appending while a strong-consistency reader polls: every
  // read must return a prefix of the final content with a consistent size.
  ClusterConfig cfg = small_config();
  cfg.client.consistency = Consistency::kStrong;
  Cluster cluster(cfg);
  Client& writer = cluster.client_at(cluster.tree().hosts[1]);
  Client& reader = cluster.client_at(cluster.tree().hosts[44]);

  const Extent full = Extent::pattern(31, 8000);
  bool created = false;
  writer.create("growing", [&](Status s, const FileInfo&) {
    ASSERT_EQ(s, Status::kOk);
    created = true;
  });
  run_until_done(cluster, created);

  // 8 appends of 1000 bytes each, spaced 0.5s apart.
  for (int i = 0; i < 8; ++i) {
    cluster.events().schedule_in(
        sim::SimTime::from_seconds(0.5 * i), [&, i] {
          writer.append(
              "growing",
              ExtentList(full.slice(static_cast<std::uint64_t>(i) * 1000,
                                    1000)),
              [](Status s, const AppendResp&) {
                ASSERT_EQ(s, Status::kOk);
              });
        });
  }
  // Reader polls every 0.7s; sizes must be multiples of the append unit
  // (atomic appends) and non-decreasing, content always a prefix.
  auto last_size = std::make_shared<std::uint64_t>(0);
  int reads_done = 0;
  for (int i = 0; i < 6; ++i) {
    cluster.events().schedule_in(
        sim::SimTime::from_seconds(0.2 + 0.7 * i), [&, last_size] {
          reader.invalidate_cache("growing");
          reader.read_file("growing", [&, last_size](Status s,
                                                     ReadResult result) {
            ASSERT_EQ(s, Status::kOk);
            EXPECT_EQ(result.data.size() % 1000, 0u);
            EXPECT_GE(result.data.size(), *last_size);
            *last_size = result.data.size();
            EXPECT_TRUE(result.data.content_equals(
                ExtentList(full.slice(0, result.data.size()))));
            ++reads_done;
          });
        });
  }
  bool all = false;
  while (!all && !cluster.events().empty() &&
         cluster.events().now() < sim::SimTime::from_seconds(300)) {
    cluster.events().step();
    all = reads_done == 6;
  }
  EXPECT_TRUE(all);
}

TEST(Cluster, ScalesToLargerFabrics) {
  // 8 pods x 6 racks x 6 hosts = 288 hosts; exercise generality end to end.
  ClusterConfig cfg = small_config();
  cfg.fabric.pods = 8;
  cfg.fabric.racks_per_pod = 6;
  cfg.fabric.hosts_per_rack = 6;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.tree().hosts.size(), 288u);
  Client& client = cluster.client_at(cluster.tree().hosts[200]);
  bool done = false;
  const ExtentList payload(Extent::pattern(3, 2500));
  client.create("big-fabric", [&](Status s, const FileInfo&) {
    ASSERT_EQ(s, Status::kOk);
    client.append("big-fabric", payload, [&](Status, const AppendResp&) {
      client.read_file("big-fabric", [&](Status rs, ReadResult r) {
        EXPECT_EQ(rs, Status::kOk);
        EXPECT_TRUE(r.data.content_equals(payload));
        done = true;
      });
    });
  });
  run_until_done(cluster, done);
}

// Model-checking chaos test: a random interleaving of create / append /
// read / delete across many clients, validated against an in-memory
// reference model of expected contents.
class ClusterChaos : public ::testing::TestWithParam<int> {};

TEST_P(ClusterChaos, MatchesReferenceModel) {
  ClusterConfig cfg;
  cfg.nameserver.chunk_size = 700;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  Cluster cluster(cfg);
  Rng rng(cfg.seed * 101 + 7);

  struct RefFile {
    ExtentList content;
    bool exists = false;
  };
  std::map<std::string, RefFile> reference;
  int pending = 0;

  // Sequential op driver: each op completes before the next is issued, so
  // the reference model is exact (concurrency is exercised elsewhere).
  std::function<void(int)> next_op = [&](int remaining) {
    if (remaining == 0) return;
    const std::string name = strfmt("chaos-%llu",
        static_cast<unsigned long long>(rng.next_below(6)));
    Client& client = cluster.client_at(
        cluster.tree().hosts[rng.next_below(cluster.tree().hosts.size())]);
    const auto continue_next = [&next_op, remaining] {
      next_op(remaining - 1);
    };
    switch (rng.next_below(4)) {
      case 0:  // create
        client.create(name, [&, name, continue_next](Status s,
                                                     const FileInfo&) {
          if (reference[name].exists) {
            EXPECT_EQ(s, Status::kAlreadyExists) << name;
          } else {
            ASSERT_EQ(s, Status::kOk) << name;
            reference[name].exists = true;
            reference[name].content = ExtentList{};
          }
          continue_next();
        });
        break;
      case 1: {  // append
        const std::uint64_t n = 1 + rng.next_below(2000);
        const ExtentList data(Extent::pattern(rng.next_u64(), n));
        client.append(name, data,
                      [&, name, data, continue_next](Status s,
                                                     const AppendResp&) {
          if (!reference[name].exists) {
            EXPECT_EQ(s, Status::kNotFound) << name;
          } else {
            ASSERT_EQ(s, Status::kOk) << name;
            reference[name].content.append(data);
          }
          continue_next();
        });
        break;
      }
      case 2:  // read
        client.read_file(name, [&, name, continue_next](Status s,
                                                        ReadResult r) {
          if (!reference[name].exists) {
            EXPECT_EQ(s, Status::kNotFound) << name;
          } else {
            ASSERT_EQ(s, Status::kOk) << name;
            EXPECT_TRUE(r.data.content_equals(reference[name].content))
                << name;
          }
          continue_next();
        });
        break;
      default:  // delete
        client.remove(name, [&, name, continue_next](Status s) {
          if (!reference[name].exists) {
            EXPECT_EQ(s, Status::kNotFound) << name;
          } else {
            EXPECT_EQ(s, Status::kOk) << name;
            reference[name].exists = false;
          }
          continue_next();
        });
        break;
    }
  };
  pending = 60;
  next_op(pending);
  cluster.run_until(sim::SimTime::from_seconds(5000));

  // Final audit: every existing file reads back exactly its reference.
  int audits = 0;
  int expected_audits = 0;
  for (const auto& [name, ref] : reference) {
    if (!ref.exists) continue;
    ++expected_audits;
    cluster.client_at(cluster.tree().hosts[0])
        .read_file(name, [&, name](Status s, ReadResult r) {
          EXPECT_EQ(s, Status::kOk) << name;
          EXPECT_TRUE(r.data.content_equals(reference[name].content)) << name;
          ++audits;
        });
  }
  cluster.run_until(sim::SimTime::from_seconds(10000));
  EXPECT_EQ(audits, expected_audits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterChaos, ::testing::Range(1, 7));

// Unclean nameserver restart while one dataserver is also gone: the rebuild
// must skip the unreachable server and still recover every mapping from the
// survivors (each replica stores the full FileInfo, including the replica
// list, so two of three reporters suffice).
TEST(Cluster, RebuildToleratesMissingDataserver) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[6]);
  bool wrote = false;
  client.create("sturdy", [&](Status, const FileInfo&) {
    client.append("sturdy", ExtentList(Extent::pattern(4, 1200)),
                  [&](Status, const AppendResp&) { wrote = true; });
  });
  run_until_done(cluster, wrote);

  const auto before = cluster.nameserver().lookup("sturdy");
  ASSERT_TRUE(before.has_value());
  cluster.dataserver_at(before->replicas[0]).detach();  // primary, no less

  bool rebuilt = false;
  std::vector<net::NodeId> all_ds(cluster.tree().hosts.begin(),
                                  cluster.tree().hosts.end());
  cluster.nameserver().rebuild_from_dataservers(all_ds,
                                                [&] { rebuilt = true; });
  run_until_done(cluster, rebuilt);

  const auto info = cluster.nameserver().lookup("sturdy");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 1200u);
  EXPECT_EQ(info->replicas, before->replicas);

  // Still readable: plans that land on the dead primary fail over.
  bool read_ok = false;
  Client& fresh = cluster.client_at(cluster.tree().hosts[40]);
  fresh.read_file("sturdy", [&](Status rs, ReadResult result) {
    EXPECT_EQ(rs, Status::kOk);
    EXPECT_EQ(result.data.size(), 1200u);
    read_ok = true;
  });
  run_until_done(cluster, read_ok);
}

// A crashed dataserver is detected by the heartbeat monitor and every file
// it held is re-replicated back to full strength on surviving servers.
TEST(Cluster, CrashedDataserverTriggersRereplication) {
  ClusterConfig cfg = small_config();
  cfg.heartbeat_interval = sim::SimTime::from_seconds(1.0);
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[10]);
  bool wrote = false;
  client.create("precious", [&](Status, const FileInfo&) {
    client.append("precious", ExtentList(Extent::pattern(9, 5000)),
                  [&](Status, const AppendResp&) { wrote = true; });
  });
  run_until_done(cluster, wrote);

  const auto before = cluster.nameserver().lookup("precious");
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->replicas.size(), 3u);
  const net::NodeId victim = before->replicas[1];

  fault::FaultPlan plan;
  plan.events.push_back({cluster.events().now() + sim::SimTime::from_millis(500.0),
                         fault::FaultKind::kDataserverCrash, net::kInvalidLink,
                         victim});
  cluster.fault_injector().arm(plan);
  cluster.run_until(cluster.events().now() + sim::SimTime::from_seconds(30.0));

  EXPECT_FALSE(cluster.nameserver().dataserver_alive(victim));
  EXPECT_GE(cluster.nameserver().rereplications(), 1u);
  const auto after = cluster.nameserver().lookup("precious");
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->replicas.size(), 3u);
  EXPECT_EQ(std::find(after->replicas.begin(), after->replicas.end(), victim),
            after->replicas.end());
  EXPECT_EQ(after->replicas[0], before->replicas[0]);  // primary survives
  // Replacement respects the fault-domain spread: still three distinct racks.
  std::set<int> racks;
  for (const net::NodeId r : after->replicas) {
    racks.insert(cluster.tree().rack_of(r));
  }
  EXPECT_EQ(racks.size(), 3u);

  // The re-replicated copy holds the bytes: read via the replacement only.
  const net::NodeId replacement = after->replicas[2];
  bool read_ok = false;
  bool probe_done = false;
  ReadReq req;
  req.file = after->uuid;
  req.offset = 0;
  req.length = 5000;
  cluster.transport().call(
      cluster.tree().hosts[0], replacement, Method::kReadFile, req.encode(),
      [&](Status s, Bytes payload) {
        EXPECT_EQ(s, Status::kOk);
        Reader r(payload);
        const ReadResp resp = ReadResp::decode(r);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(resp.data.size(), 5000u);
        read_ok = true;
        probe_done = true;
      });
  run_until_done(cluster, probe_done);
  EXPECT_TRUE(read_ok);
}

// Reads keep succeeding when replicas die under the client: failed plans are
// retried against survivors and stale cached metadata is invalidated.
TEST(Cluster, ClientReadsSurviveReplicaCrashes) {
  Cluster cluster(small_config());
  Client& client = cluster.client_at(cluster.tree().hosts[22]);
  bool wrote = false;
  client.create("durable", [&](Status, const FileInfo&) {
    client.append("durable", ExtentList(Extent::pattern(7, 3000)),
                  [&](Status, const AppendResp&) { wrote = true; });
  });
  run_until_done(cluster, wrote);
  // Warm the metadata cache so the failure path also exercises
  // invalidate-on-error + refetch.
  bool warm = false;
  client.read_file("durable", [&](Status s, ReadResult) {
    EXPECT_EQ(s, Status::kOk);
    warm = true;
  });
  run_until_done(cluster, warm);

  const auto info = cluster.nameserver().lookup("durable");
  ASSERT_TRUE(info.has_value());
  // Kill two of the three replicas outright (RPC servers gone; links still
  // up, so plans keep nominating them until the failures teach the client).
  cluster.dataserver_at(info->replicas[0]).detach();
  cluster.dataserver_at(info->replicas[1]).detach();

  bool read_ok = false;
  client.read_file("durable", [&](Status s, ReadResult result) {
    EXPECT_EQ(s, Status::kOk);
    EXPECT_EQ(result.data.size(), 3000u);
    EXPECT_TRUE(result.data.content_equals(ExtentList(Extent::pattern(7, 3000))));
    read_ok = true;
  });
  run_until_done(cluster, read_ok);
}

TEST(Cluster, InFlightLookupCannotRepopulateCacheAfterDelete) {
  // Regression: a lookup reply that was already in flight when the same
  // client deleted the file must not repopulate the metadata cache. A
  // delete-then-recreate would otherwise serve the pre-delete replica set
  // from cache until the TTL expired.
  Cluster cluster(small_config());
  Client& writer = cluster.client_at(cluster.tree().hosts[0]);
  Client& racer = cluster.client_at(cluster.tree().hosts[1]);

  bool created = false;
  writer.create("phoenix", [&](Status status, const FileInfo&) {
    ASSERT_EQ(status, Status::kOk);
    created = true;
  });
  run_until_done(cluster, created);

  // Same tick: the stat's lookup RPC goes out first, then the delete. The
  // lookup reply (carrying the old mapping) lands after the delete already
  // bumped the invalidation generation.
  bool stat_done = false;
  bool removed = false;
  racer.stat("phoenix", [&](Status, const FileInfo&) { stat_done = true; });
  racer.remove("phoenix", [&](Status status) {
    EXPECT_EQ(status, Status::kOk);
    removed = true;
  });
  run_until_done(cluster, stat_done);
  run_until_done(cluster, removed);

  Uuid fresh_uuid;
  bool recreated = false;
  writer.create("phoenix", [&](Status status, const FileInfo& info) {
    ASSERT_EQ(status, Status::kOk);
    fresh_uuid = info.uuid;
    recreated = true;
  });
  run_until_done(cluster, recreated);

  // The racer must see the recreated file, not a cached pre-delete mapping.
  bool verified = false;
  racer.stat("phoenix", [&](Status status, const FileInfo& info) {
    EXPECT_EQ(status, Status::kOk);
    EXPECT_EQ(info.uuid, fresh_uuid);
    verified = true;
  });
  run_until_done(cluster, verified);
}

}  // namespace
}  // namespace mayflower::fs
