#include "policy/replica_policy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "policy/scheme.hpp"
#include "sdn/link_rate_monitor.hpp"
#include "sdn/view_builder.hpp"

namespace mayflower::policy {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo),
        views_(fabric_),
        rng_(7) {}

  // NIC telemetry for Sinbad-R: one monitor over every host uplink, rates
  // published into the views the policies decide against.
  void start_monitor(sim::SimTime interval = sim::SimTime::from_seconds(1.0)) {
    std::vector<net::LinkId> uplinks;
    for (const net::NodeId h : tree_.hosts) {
      uplinks.push_back(tree_.host_uplink(h));
    }
    monitor_ = std::make_unique<sdn::LinkRateMonitor>(fabric_,
                                                      std::move(uplinks),
                                                      interval);
    views_.set_rate_monitor(monitor_.get());
  }

  const net::NetworkView& view() { return views_.view(); }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
  sdn::ViewBuilder views_;
  std::unique_ptr<sdn::LinkRateMonitor> monitor_;
  Rng rng_;
};

TEST_F(PolicyTest, NearestPrefersSameRack) {
  NearestReplica nearest(tree_.topo, rng_);
  // replicas: same rack (hosts[1]), same pod (hosts[4]), other pod (16).
  const net::NodeId pick = nearest.choose(
      tree_.hosts[0], {tree_.hosts[16], tree_.hosts[4], tree_.hosts[1]},
      view());
  EXPECT_EQ(pick, tree_.hosts[1]);
}

TEST_F(PolicyTest, NearestBreaksTiesRandomly) {
  NearestReplica nearest(tree_.topo, rng_);
  // Both replicas are 6 hops away: over many draws both must appear.
  std::set<net::NodeId> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(nearest.choose(tree_.hosts[0],
                               {tree_.hosts[16], tree_.hosts[32]}, view()));
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(PolicyTest, HdfsPrefersLocalThenRackThenRandom) {
  HdfsRackAwareReplica hdfs(tree_.topo, rng_);
  // Node-local wins outright.
  EXPECT_EQ(hdfs.choose(tree_.hosts[0], {tree_.hosts[16], tree_.hosts[0]},
                        view()),
            tree_.hosts[0]);
  // Rack-local beats remote.
  EXPECT_EQ(hdfs.choose(tree_.hosts[0], {tree_.hosts[16], tree_.hosts[2]},
                        view()),
            tree_.hosts[2]);
  // Otherwise uniformly random — unlike Nearest, a same-pod replica gets no
  // preference over a cross-pod one.
  std::set<net::NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(hdfs.choose(tree_.hosts[0],
                            {tree_.hosts[4], tree_.hosts[16]}, view()));
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(PolicyTest, RandomCoversAllReplicas) {
  RandomReplica random(rng_);
  std::set<net::NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(random.choose(
        tree_.hosts[0], {tree_.hosts[1], tree_.hosts[4], tree_.hosts[16]},
        view()));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(PolicyTest, SinbadRestrictsToClientPodWhenPossible) {
  start_monitor();
  SinbadRReplica sinbad(tree_, rng_);
  // Client in pod 0; replicas in pod 0 and pod 1: pod-0 replica must win
  // regardless of load (both idle here).
  const net::NodeId pick = sinbad.choose(
      tree_.hosts[0], {tree_.hosts[16], tree_.hosts[4]}, view());
  EXPECT_EQ(pick, tree_.hosts[4]);
}

TEST_F(PolicyTest, SinbadAvoidsTheLoadedReplica) {
  start_monitor(sim::SimTime::from_seconds(0.5));
  SinbadRReplica sinbad(tree_, rng_);
  // Saturate replica A's uplink with background traffic, then ask.
  const net::NodeId loaded = tree_.hosts[16];   // pod 1
  const net::NodeId quiet = tree_.hosts[32];    // pod 2
  const net::NodeId client = tree_.hosts[0];    // pod 0 (no pod restriction)
  const auto path = net::shortest_paths(tree_.topo, loaded,
                                        tree_.hosts[17]).at(0);
  const auto cookie = fabric_.new_cookie();
  fabric_.install_path(cookie, path);
  fabric_.start_flow(cookie, path, 1e9);

  events_.run_until(sim::SimTime::from_seconds(1.1));  // two samples
  EXPECT_LT(sinbad.headroom(loaded, client, view()),
            sinbad.headroom(quiet, client, view()));
  EXPECT_EQ(sinbad.choose(client, {loaded, quiet}, view()), quiet);
}

TEST_F(PolicyTest, SinbadHeadroomStagesDependOnClientLocality) {
  start_monitor();
  SinbadRReplica sinbad(tree_, rng_);
  const net::NodeId replica = tree_.hosts[0];
  // Same-rack client: only the host uplink constrains (1 Gbps idle).
  EXPECT_NEAR(sinbad.headroom(replica, tree_.hosts[1], view()), 125e6, 1.0);
  // Cross-pod client: the thinner agg->core capacity (62.5e6) constrains.
  EXPECT_NEAR(sinbad.headroom(replica, tree_.hosts[16], view()), 62.5e6, 1.0);
}

TEST_F(PolicyTest, EcmpSchemePlansSingleInstalledFlow) {
  NearestReplica nearest(tree_.topo, rng_);
  ReplicaPlusEcmp scheme(nearest, fabric_, "nearest ecmp");
  const auto plan = scheme.plan_read(
      tree_.hosts[0], {tree_.hosts[16], tree_.hosts[4]}, 64e6);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].replica, tree_.hosts[4]);
  EXPECT_DOUBLE_EQ(plan[0].bytes, 64e6);
  // Path pre-installed: the strict fabric accepts the start.
  fabric_.start_flow(plan[0].cookie, plan[0].path, plan[0].bytes, nullptr);
  events_.run();
}

TEST_F(PolicyTest, EcmpSpreadsRepeatedPlansAcrossPaths) {
  RandomReplica fixed(rng_);
  ReplicaPlusEcmp scheme(fixed, fabric_, "random ecmp");
  std::set<std::vector<net::LinkId>> paths;
  for (int i = 0; i < 64; ++i) {
    const auto plan =
        scheme.plan_read(tree_.hosts[0], {tree_.hosts[16]}, 1.0);
    paths.insert(plan[0].path.links);
  }
  EXPECT_GE(paths.size(), 4u);  // 8 equal-cost paths exist
}

// Satellite hardening: the shared external-scheme planner returns an empty
// plan (never asserts) for an empty replica list and for a replica set that
// is entirely cut off from the client.
TEST_F(PolicyTest, EcmpPlanReadEmptyReplicaListIsEmptyPlan) {
  NearestReplica nearest(tree_.topo, rng_);
  ReplicaPlusEcmp scheme(nearest, fabric_, "nearest ecmp");
  EXPECT_TRUE(scheme.plan_read(tree_.hosts[0], {}, 1e6).empty());
}

TEST_F(PolicyTest, EcmpPlanReadAllReplicasUnreachableIsEmptyPlan) {
  NearestReplica nearest(tree_.topo, rng_);
  ReplicaPlusEcmp scheme(nearest, fabric_, "nearest ecmp");
  // Cut the replica's host uplink: every path to it dies with the link.
  const net::NodeId replica = tree_.hosts[16];
  fabric_.fail_link(tree_.host_uplink(replica));
  fabric_.fail_link(tree_.host_downlink(replica));
  EXPECT_TRUE(scheme.plan_read(tree_.hosts[0], {replica}, 1e6).empty());
  // A live replica alongside the dead one still plans (and never picks the
  // unreachable replica).
  const auto plan =
      scheme.plan_read(tree_.hosts[0], {replica, tree_.hosts[4]}, 1e6);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].replica, tree_.hosts[4]);
}

}  // namespace
}  // namespace mayflower::policy
