#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "net/tree.hpp"

namespace mayflower::net {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::kHost, "a");
  const NodeId b = t.add_node(NodeKind::kEdgeSwitch, "b");
  const LinkId ab = t.add_link(a, b, 100.0);
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.link(ab).from, a);
  EXPECT_EQ(t.link(ab).to, b);
  EXPECT_DOUBLE_EQ(t.link(ab).capacity_bps, 100.0);
  EXPECT_EQ(t.find_link(a, b), ab);
  EXPECT_EQ(t.find_link(b, a), kInvalidLink);
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::kHost, "a");
  const NodeId b = t.add_node(NodeKind::kEdgeSwitch, "b");
  t.add_duplex(a, b, 10.0);
  EXPECT_NE(t.find_link(a, b), kInvalidLink);
  EXPECT_NE(t.find_link(b, a), kInvalidLink);
  EXPECT_NE(t.find_link(a, b), t.find_link(b, a));
}

TEST(Topology, OutAndInLinks) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::kHost, "a");
  const NodeId b = t.add_node(NodeKind::kEdgeSwitch, "b");
  const NodeId c = t.add_node(NodeKind::kEdgeSwitch, "c");
  t.add_link(a, b, 1.0);
  t.add_link(a, c, 1.0);
  t.add_link(b, a, 1.0);
  EXPECT_EQ(t.out_links(a).size(), 2u);
  EXPECT_EQ(t.in_links(a).size(), 1u);
}

class ThreeTierTest : public ::testing::Test {
 protected:
  ThreeTierTest() : tree_(build_three_tier(ThreeTierConfig{})) {}
  ThreeTier tree_;
};

TEST_F(ThreeTierTest, NodeCounts) {
  // 4 pods x 4 racks x 4 hosts = 64 hosts; 16 edge; 8 agg; 2 core.
  EXPECT_EQ(tree_.hosts.size(), 64u);
  EXPECT_EQ(tree_.edge_switches.size(), 16u);
  EXPECT_EQ(tree_.agg_switches.size(), 4u);
  EXPECT_EQ(tree_.agg_switches[0].size(), 2u);
  EXPECT_EQ(tree_.core_switches.size(), 2u);
  EXPECT_EQ(tree_.topo.node_count(), 64u + 16u + 8u + 2u);
}

TEST_F(ThreeTierTest, LinkCounts) {
  // Duplex: hosts 64, edge->agg 16*2, agg->core 8*2; x2 directions.
  EXPECT_EQ(tree_.topo.link_count(), 2u * (64 + 32 + 16));
}

TEST_F(ThreeTierTest, HopDistances) {
  const NodeId h0 = tree_.hosts[0];
  const NodeId same_rack = tree_.hosts[1];
  const NodeId same_pod = tree_.hosts[4];    // next rack, same pod
  const NodeId other_pod = tree_.hosts[16];  // first host of pod 1
  EXPECT_EQ(tree_.topo.hop_distance(h0, same_rack), 2);
  EXPECT_EQ(tree_.topo.hop_distance(h0, same_pod), 4);
  EXPECT_EQ(tree_.topo.hop_distance(h0, other_pod), 6);
}

TEST_F(ThreeTierTest, RackAndPodCoordinates) {
  const NodeId h0 = tree_.hosts[0];
  EXPECT_TRUE(tree_.topo.same_rack(h0, tree_.hosts[3]));
  EXPECT_FALSE(tree_.topo.same_rack(h0, tree_.hosts[4]));
  EXPECT_TRUE(tree_.topo.same_pod(h0, tree_.hosts[15]));
  EXPECT_FALSE(tree_.topo.same_pod(h0, tree_.hosts[16]));
}

TEST_F(ThreeTierTest, HostUplinkAndDownlink) {
  for (const NodeId h : tree_.hosts) {
    const LinkId up = tree_.host_uplink(h);
    const LinkId down = tree_.host_downlink(h);
    EXPECT_EQ(tree_.topo.link(up).from, h);
    EXPECT_EQ(tree_.topo.link(down).to, h);
    EXPECT_EQ(tree_.topo.link(up).to, tree_.edge_of_host(h));
  }
}

TEST_F(ThreeTierTest, RackUplinksFaceTheAggTier) {
  const auto ups = tree_.rack_uplinks(tree_.hosts[0]);
  ASSERT_EQ(ups.size(), 2u);
  for (const LinkId l : ups) {
    EXPECT_EQ(tree_.topo.node(tree_.topo.link(l).from).kind,
              NodeKind::kEdgeSwitch);
    EXPECT_EQ(tree_.topo.node(tree_.topo.link(l).to).kind,
              NodeKind::kAggSwitch);
  }
}

TEST(ThreeTierConfig, DefaultIsEightToOne) {
  EXPECT_NEAR(ThreeTierConfig{}.oversubscription(), 8.0, 1e-9);
}

TEST(ThreeTierConfig, WithOversubscriptionHitsRequestedRatio) {
  for (const double ratio : {8.0, 16.0, 24.0}) {
    const auto cfg = ThreeTierConfig::with_oversubscription(ratio);
    EXPECT_NEAR(cfg.oversubscription(), ratio, 1e-9) << ratio;
    const ThreeTier t = build_three_tier(cfg);
    EXPECT_EQ(t.hosts.size(), 64u);
  }
}

TEST(ThreeTierConfig, HigherRatioMeansThinnerCoreLinks) {
  const auto r8 = ThreeTierConfig::with_oversubscription(8.0);
  const auto r16 = ThreeTierConfig::with_oversubscription(16.0);
  EXPECT_GT(r8.agg_uplink_bps, r16.agg_uplink_bps);
  EXPECT_NEAR(r8.agg_uplink_bps / r16.agg_uplink_bps, 2.0, 1e-9);
}

}  // namespace
}  // namespace mayflower::net
