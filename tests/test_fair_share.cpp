#include "net/fair_share.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "net/tree.hpp"

namespace mayflower::net {
namespace {

TEST(WaterfillLink, EqualSplitWhenAllElastic) {
  const auto s = waterfill_link(12.0, {kInfiniteDemand, kInfiniteDemand,
                                       kInfiniteDemand});
  for (const double v : s) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(WaterfillLink, SmallDemandsKeepTheirDemand) {
  // Figure 2, path 1, second link: demands {2,2,6} + elastic newcomer on a
  // 10 Mbps link -> {2, 2, 3, 3}.
  const auto s = waterfill_link(10.0, {2.0, 2.0, 6.0, kInfiniteDemand});
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_DOUBLE_EQ(s[3], 3.0);
}

TEST(WaterfillLink, Figure2ThirdLinks) {
  // {10} + demand-3 newcomer on 10 -> {7, 3}; {8} + 3 on 10 -> {7, 3}.
  const auto a = waterfill_link(10.0, {10.0, 3.0});
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  EXPECT_DOUBLE_EQ(a[1], 3.0);
  const auto b = waterfill_link(10.0, {8.0, 3.0});
  EXPECT_DOUBLE_EQ(b[0], 7.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);
}

TEST(WaterfillLink, UndersubscribedGivesEveryoneDemand) {
  const auto s = waterfill_link(100.0, {10.0, 20.0, 5.0});
  EXPECT_DOUBLE_EQ(s[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 20.0);
  EXPECT_DOUBLE_EQ(s[2], 5.0);
}

TEST(WaterfillLink, NeverExceedsCapacityNorDemand) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(10);
    std::vector<double> demands;
    for (std::size_t i = 0; i < n; ++i) {
      demands.push_back(rng.bernoulli(0.3) ? kInfiniteDemand
                                           : rng.uniform(0.1, 20.0));
    }
    const double cap = rng.uniform(1.0, 30.0);
    const auto s = waterfill_link(cap, demands);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(s[i], demands[i] + 1e-9);
      EXPECT_GE(s[i], 0.0);
      total += s[i];
    }
    EXPECT_LE(total, cap + 1e-6);
    // Work-conserving: either capacity is filled or all demands are met.
    bool all_met = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (s[i] < demands[i] - 1e-9) all_met = false;
    }
    EXPECT_TRUE(all_met || std::abs(total - cap) < 1e-6);
  }
}

TEST(SolveMaxMin, SingleFlowGetsFullCapacity) {
  std::vector<FlowDemand> flows(1);
  flows[0].links = {0};
  const auto r = solve_max_min(flows, {10.0});
  EXPECT_DOUBLE_EQ(r[0], 10.0);
}

TEST(SolveMaxMin, TwoFlowsShareEqually) {
  std::vector<FlowDemand> flows(2);
  flows[0].links = {0};
  flows[1].links = {0};
  const auto r = solve_max_min(flows, {10.0});
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
}

TEST(SolveMaxMin, ClassicTandemExample) {
  // Classic: link A shared by f0,f1; link B shared by f1,f2; caps 10.
  // f1 is bottlenecked to 5 on both; f0 and f2 then get 5 more? No:
  // progressive filling -> all reach 5 simultaneously, links saturate at 10.
  std::vector<FlowDemand> flows(3);
  flows[0].links = {0};
  flows[1].links = {0, 1};
  flows[2].links = {1};
  const auto r = solve_max_min(flows, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
  EXPECT_DOUBLE_EQ(r[2], 5.0);
}

TEST(SolveMaxMin, AsymmetricBottleneck) {
  // f0 on small link (cap 2) and big link; f1 only on big link (cap 10).
  // f0 freezes at 2, f1 continues to 8.
  std::vector<FlowDemand> flows(2);
  flows[0].links = {0, 1};
  flows[1].links = {1};
  const auto r = solve_max_min(flows, {2.0, 10.0});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 8.0);
}

TEST(SolveMaxMin, DemandsCapAllocation) {
  std::vector<FlowDemand> flows(2);
  flows[0].links = {0};
  flows[0].demand = 1.5;
  flows[1].links = {0};
  const auto r = solve_max_min(flows, {10.0});
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 8.5);
}

TEST(SolveMaxMin, ZeroHopFlowGetsItsDemand) {
  std::vector<FlowDemand> flows(1);
  flows[0].demand = 123.0;  // no links
  const auto r = solve_max_min(flows, {});
  EXPECT_DOUBLE_EQ(r[0], 123.0);
}

// Property sweep: random topologies/flows; check feasibility and max-min
// optimality (every flow is either demand-limited or crosses a saturated
// link where it has a maximal share).
class SolveMaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveMaxMinProperty, FeasibleAndBottleneckOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n_links = 2 + rng.next_below(8);
  std::vector<double> caps;
  for (std::size_t l = 0; l < n_links; ++l) caps.push_back(rng.uniform(1.0, 20.0));

  const std::size_t n_flows = 1 + rng.next_below(12);
  std::vector<FlowDemand> flows(n_flows);
  for (auto& f : flows) {
    const std::size_t path_len = 1 + rng.next_below(std::min<std::size_t>(n_links, 4));
    std::vector<std::size_t> order(n_links);
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::size_t> shuffled = order;
    rng.shuffle(shuffled);
    for (std::size_t i = 0; i < path_len; ++i) {
      f.links.push_back(static_cast<LinkId>(shuffled[i]));
    }
    if (rng.bernoulli(0.3)) f.demand = rng.uniform(0.1, 10.0);
  }

  const auto rates = solve_max_min(flows, caps);

  // Feasibility.
  std::vector<double> used(n_links, 0.0);
  for (std::size_t i = 0; i < n_flows; ++i) {
    EXPECT_GE(rates[i], -1e-9);
    EXPECT_LE(rates[i], flows[i].demand + 1e-9);
    for (const LinkId l : flows[i].links) used[l] += rates[i];
  }
  for (std::size_t l = 0; l < n_links; ++l) {
    EXPECT_LE(used[l], caps[l] + 1e-6) << "link " << l;
  }

  // Max-min optimality.
  for (std::size_t i = 0; i < n_flows; ++i) {
    if (rates[i] >= flows[i].demand - 1e-6) continue;  // demand-limited
    bool justified = false;
    for (const LinkId l : flows[i].links) {
      if (used[l] < caps[l] - 1e-6) continue;  // link not saturated
      // On a saturated link, i must have a maximal share among flows there.
      bool is_max = true;
      for (std::size_t j = 0; j < n_flows; ++j) {
        if (j == i) continue;
        if (flows[j].links.end() !=
                std::find(flows[j].links.begin(), flows[j].links.end(), l) &&
            rates[j] > rates[i] + 1e-6) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "flow " << i << " could be increased";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, SolveMaxMinProperty,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace mayflower::net
