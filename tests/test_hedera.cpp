#include "policy/hedera.hpp"

#include <gtest/gtest.h>

#include "net/tree.hpp"

namespace mayflower::policy {
namespace {

class HederaTest : public ::testing::Test {
 protected:
  HederaTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo) {}

  // Starts a tracked flow on a specific path.
  sdn::Cookie start_on(HederaScheduler& hedera, const net::Path& path,
                       double bytes) {
    const sdn::Cookie cookie = fabric_.new_cookie();
    fabric_.install_path(cookie, path);
    fabric_.start_flow(cookie, path, bytes,
                       [&hedera](sdn::Cookie c, sim::SimTime) {
                         hedera.untrack(c);
                       });
    hedera.track(cookie, path.nodes.front(), path.nodes.back(), bytes);
    return cookie;
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
};

TEST_F(HederaTest, MovesCollidingElephantsToDisjointCorePaths) {
  // Two cross-pod elephants hashed (adversarially) onto the SAME core path:
  // each gets 31.25 MB/s of the shared 62.5 MB/s links. After one Hedera
  // tick, one of them must move to a disjoint path and both speed up.
  HederaScheduler hedera(fabric_, HederaConfig{});
  hedera.start();

  const auto& paths01 =
      net::shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[16]);
  const auto& paths23 =
      net::shortest_paths(tree_.topo, tree_.hosts[4], tree_.hosts[20]);
  // Find two paths sharing an agg->core link.
  const net::Path* p1 = &paths01[0];
  const net::Path* p2 = nullptr;
  for (const net::Path& q : paths23) {
    for (const net::LinkId l : q.links) {
      if (tree_.topo.node(tree_.topo.link(l).from).kind ==
              net::NodeKind::kAggSwitch &&
          p1->contains_link(l)) {
        p2 = &q;
        break;
      }
    }
    if (p2 != nullptr) break;
  }
  ASSERT_NE(p2, nullptr) << "no colliding core path found";

  double t1 = -1.0, t2 = -1.0;
  const sdn::Cookie c1 = start_on(hedera, *p1, 1e9);
  const sdn::Cookie c2 = start_on(hedera, *p2, 1e9);
  fabric_.flow_record(c1);  // touch to silence unused warnings
  (void)c2;

  // Completion watchers.
  events_.schedule_in(sim::SimTime::from_seconds(0), [&] {});
  // Re-register completions (start_on's lambda only untracks): poll instead.
  while (!events_.empty() &&
         events_.now() < sim::SimTime::from_seconds(60.0)) {
    events_.step();
    if (t1 < 0.0 && fabric_.flow_record(c1) == nullptr) {
      t1 = events_.now().seconds();
    }
    if (t2 < 0.0 && fabric_.flow_record(c2) == nullptr) {
      t2 = events_.now().seconds();
    }
  }

  EXPECT_GE(hedera.reroutes(), 1u);
  // Shared path would take 1e9 / 31.25e6 = 32 s. With the reroute at the
  // first 5 s tick, both finish by ~21 s (5 s shared + remainder at full
  // thin-link rate).
  EXPECT_LT(t1, 25.0);
  EXPECT_LT(t2, 25.0);
  hedera.stop();
}

TEST_F(HederaTest, LeavesMiceAndFittingFlowsAlone) {
  HederaScheduler hedera(fabric_, HederaConfig{});
  hedera.start();
  // A lone flow fits its path; nothing to do.
  const auto paths =
      net::shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[16]);
  start_on(hedera, paths[0], 5e8);
  events_.run_until(sim::SimTime::from_seconds(12.0));
  EXPECT_EQ(hedera.reroutes(), 0u);
  hedera.stop();
}

TEST_F(HederaTest, CannotHelpSingleAccessLinkCongestion) {
  // The paper's §1 argument: every path between the chosen endpoints shares
  // the replica's access link, so a flow scheduler has nothing to move.
  HederaScheduler hedera(fabric_, HederaConfig{});
  hedera.start();
  const auto paths =
      net::shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[1]);
  ASSERT_EQ(paths.size(), 1u);  // same rack: a single 2-link path
  start_on(hedera, paths[0], 5e8);
  start_on(hedera, paths[0], 5e8);
  events_.run_until(sim::SimTime::from_seconds(12.0));
  EXPECT_EQ(hedera.reroutes(), 0u);
  hedera.stop();
}

// Regression: tick() used to divide every flow's byte delta by the full
// tick dt, so a flow tracked mid-interval (here at t=2.5 of a 5 s tick) was
// measured at half its true rate — below many an elephant threshold — and
// its detection slipped a full extra tick.
TEST_F(HederaTest, MidIntervalFlowIsMeasuredOverItsOwnWindow) {
  HederaScheduler hedera(fabric_, HederaConfig{});
  hedera.start();
  const auto paths =
      net::shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[16]);
  sdn::Cookie cookie = 0;
  events_.schedule_at(sim::SimTime::from_seconds(2.5), [&] {
    cookie = start_on(hedera, paths[0], 1e9);  // runs well past t=5
  });
  events_.run_until(sim::SimTime::from_seconds(5.5));
  // A lone cross-pod flow runs at the 62.5 MB/s core-link rate. The first
  // tick at t=5 observed it for 2.5 s; the old full-dt division reported
  // 31.25 MB/s.
  EXPECT_NEAR(hedera.measured_rate(cookie), 62.5e6, 1e3);
  hedera.stop();
}

TEST_F(HederaTest, SchemeTracksAndUntracksFlows) {
  HederaScheduler hedera(fabric_, HederaConfig{});
  Rng rng(3);
  NearestReplica nearest(tree_.topo, rng);
  ReplicaPlusHedera scheme(nearest, fabric_, hedera, "nearest hedera");
  const auto plan = scheme.plan_read(
      tree_.hosts[0], {tree_.hosts[4], tree_.hosts[16]}, 1e6);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].replica, tree_.hosts[4]);
  bool done = false;
  fabric_.start_flow(plan[0].cookie, plan[0].path, plan[0].bytes,
                     [&](sdn::Cookie cookie, sim::SimTime) {
                       scheme.on_flow_complete(cookie);
                       done = true;
                     });
  events_.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace mayflower::policy
