// Observability layer: registry semantics (null handles, bucket edges,
// sorted deterministic JSON), flow-tracer lifecycle arithmetic, the
// freeze-suppression hook in the FlowStateTable, and the end-to-end
// guarantee the CLI relies on — two identical seeded runs export
// byte-identical JSON.
#include "obs/observability.hpp"

#include <gtest/gtest.h>

#include "flowserver/flow_state.hpp"
#include "harness/experiment.hpp"

namespace mayflower {
namespace {

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, CountersAndGaugesAccumulate) {
  obs::MetricsRegistry reg;
  obs::Counter c = reg.counter("a.count");
  c.inc();
  c.inc(3);
  obs::Gauge g = reg.gauge("a.gauge");
  g.set(2.5);
  g.set(-1.25);  // gauges overwrite
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(reg.counter_value("a.count"), 4u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("a.gauge"), -1.25);
  // Re-registration returns a handle onto the same cell.
  reg.counter("a.count").inc(6);
  EXPECT_EQ(c.value(), 10u);
  // Absent names read as zero.
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
}

TEST(MetricsRegistry, HandlesStayValidAsTheRegistryGrows) {
  obs::MetricsRegistry reg;
  obs::Counter first = reg.counter("first");
  for (int i = 0; i < 64; ++i) {
    reg.counter("filler." + std::to_string(i)).inc();
  }
  first.inc(5);  // node-based storage: no reallocation invalidates `first`
  EXPECT_EQ(reg.counter_value("first"), 5u);
  EXPECT_EQ(reg.metric_count(), 65u);
}

TEST(MetricsRegistry, HistogramEdgesAreInclusiveUpperBounds) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram("h", {1.0, 2.0, 4.0});
  // bucket i counts v <= edges[i]; one extra overflow bucket at the end.
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive upper bound)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // overflow bucket
  const obs::HistogramData* d = reg.find_histogram("h");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->edges.size(), 3u);
  ASSERT_EQ(d->buckets.size(), 4u);  // edges + overflow
  EXPECT_EQ(d->buckets[0], 2u);
  EXPECT_EQ(d->buckets[1], 1u);
  EXPECT_EQ(d->buckets[2], 1u);
  EXPECT_EQ(d->buckets[3], 1u);
  EXPECT_EQ(d->count, 5u);
  EXPECT_DOUBLE_EQ(d->sum, 16.0);
  EXPECT_DOUBLE_EQ(d->min, 0.5);
  EXPECT_DOUBLE_EQ(d->max, 9.0);
  // Bucket counts tile the sample count.
  std::uint64_t total = 0;
  for (const std::uint64_t b : d->buckets) total += b;
  EXPECT_EQ(total, d->count);
}

TEST(MetricsRegistry, FirstHistogramRegistrationWins) {
  obs::MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0});
  obs::Histogram again = reg.histogram("h", {99.0});  // ignored
  again.observe(1.5);
  const obs::HistogramData* d = reg.find_histogram("h");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(d->edges[0], 1.0);
  EXPECT_EQ(d->buckets[1], 1u);
}

TEST(MetricsRegistry, DisabledRegistryHandsOutNullHandles) {
  obs::MetricsRegistry reg(/*enabled=*/false);
  obs::Counter c = reg.counter("c");
  obs::Gauge g = reg.gauge("g");
  obs::Histogram h = reg.histogram("h", {1.0});
  c.inc(7);  // all safe no-ops
  g.set(3.0);
  h.observe(2.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.data(), nullptr);
  EXPECT_EQ(reg.metric_count(), 0u);  // registration allocated nothing
  std::string json;
  reg.write_json(&json);
  EXPECT_EQ(json,
            "\"counters\":{},\"gauges\":{},\"histograms\":{}");
}

TEST(MetricsRegistry, JsonIsIndependentOfRegistrationOrder) {
  obs::MetricsRegistry a;
  a.counter("z").inc(2);
  a.counter("a").inc(1);
  a.gauge("m").set(0.5);
  a.histogram("h", {1.0}).observe(0.25);

  obs::MetricsRegistry b;
  b.histogram("h", {1.0}).observe(0.25);
  b.gauge("m").set(0.5);
  b.counter("a").inc(1);
  b.counter("z").inc(2);

  std::string ja, jb;
  a.write_json(&ja);
  b.write_json(&jb);
  EXPECT_EQ(ja, jb);
  // Name-sorted: "a" before "z".
  EXPECT_LT(ja.find("\"a\""), ja.find("\"z\""));
}

// --- flow tracer -----------------------------------------------------------

TEST(FlowTracer, LifecycleSeparatesPlanRevisionsFromPostStartBumps) {
  obs::FlowTracer t;
  t.flow_planned(7, 0.0, 100.0, 10.0);
  t.flow_bw_set(7, 8.0);     // still planning: revises the plan
  t.flow_resized(7, 80.0);   // multi-read split sizing
  t.mark_split(7);
  t.flow_started(7, 1.0);
  t.flow_bw_set(7, 6.0);     // after start: a bump, plan untouched
  t.flow_rerouted(7);
  t.flow_completed(7, 11.0, 80.0);  // 80 bytes over 10 s

  ASSERT_EQ(t.finished().size(), 1u);
  const obs::FlowTraceRecord& r = t.finished()[0];
  EXPECT_EQ(r.cookie, 7u);
  EXPECT_DOUBLE_EQ(r.planned_bw_bps, 8.0);
  EXPECT_DOUBLE_EQ(r.planned_bytes, 80.0);
  EXPECT_DOUBLE_EQ(r.start_sec, 1.0);
  EXPECT_DOUBLE_EQ(r.end_sec, 11.0);
  EXPECT_DOUBLE_EQ(r.realized_bw_bps, 8.0);
  EXPECT_EQ(r.resizes, 1u);
  EXPECT_EQ(r.setbw_bumps, 1u);
  EXPECT_EQ(r.reroutes, 1u);
  EXPECT_TRUE(r.split);
  EXPECT_FALSE(r.killed);
  EXPECT_EQ(t.active_count(), 0u);

  // Plan matched reality exactly: zero estimator error.
  const std::vector<double> errs = t.estimator_errors();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_DOUBLE_EQ(errs[0], 0.0);
}

TEST(FlowTracer, EstimatorErrorsSkipKilledAndZeroDurationFlows) {
  obs::FlowTracer t;
  t.flow_planned(1, 0.0, 40.0, 10.0);  // planned 10, realizes 5 => error 1.0
  t.flow_started(1, 0.0);
  t.flow_completed(1, 8.0, 40.0);

  t.flow_planned(2, 0.0, 40.0, 10.0);  // killed: excluded
  t.flow_started(2, 0.0);
  t.flow_killed(2, 1.0, 5.0);

  t.flow_planned(3, 0.0, 40.0, 10.0);  // zero duration: excluded
  t.flow_started(3, 2.0);
  t.flow_completed(3, 2.0, 0.0);

  ASSERT_EQ(t.finished().size(), 3u);
  EXPECT_TRUE(t.finished()[1].killed);
  const std::vector<double> errs = t.estimator_errors();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_DOUBLE_EQ(errs[0], 1.0);
}

TEST(FlowTracer, AbandonedFlowsLeaveNoTrace) {
  obs::FlowTracer t;
  t.flow_planned(9, 0.0, 10.0, 1.0);
  EXPECT_EQ(t.active_count(), 1u);
  t.flow_abandoned(9);  // rejected multi-read tentative leg rolled back
  EXPECT_EQ(t.active_count(), 0u);
  t.flow_completed(9, 1.0, 10.0);  // late event for the dead cookie: no-op
  EXPECT_TRUE(t.finished().empty());
}

TEST(FlowTracer, ToleratesUnknownCookies) {
  obs::FlowTracer t;
  t.flow_resized(42, 1.0);
  t.flow_bw_set(42, 1.0);
  t.freeze_hit(42);
  t.flow_started(42, 0.0);
  t.flow_rerouted(42);
  t.flow_completed(42, 1.0, 1.0);
  t.flow_killed(42, 1.0, 1.0);
  EXPECT_EQ(t.active_count(), 0u);
  EXPECT_TRUE(t.finished().empty());
}

TEST(FlowTracer, DisabledTracerRecordsNothing) {
  obs::FlowTracer t(/*enabled=*/false);
  t.flow_planned(1, 0.0, 10.0, 1.0);
  t.decision(obs::DecisionAudit{});
  t.belief_error_sample(0.5);
  EXPECT_EQ(t.active_count(), 0u);
  EXPECT_TRUE(t.decisions().empty());
  EXPECT_TRUE(t.belief_errors().empty());
}

TEST(FlowTracer, BeliefErrorSamplesAccumulateInOrder) {
  obs::FlowTracer t;
  t.belief_error_sample(0.25);
  t.belief_error_sample(0.0);
  ASSERT_EQ(t.belief_errors().size(), 2u);
  EXPECT_DOUBLE_EQ(t.belief_errors()[0], 0.25);
  EXPECT_DOUBLE_EQ(t.belief_errors()[1], 0.0);
}

// --- flow-state table hook -------------------------------------------------

TEST(FlowStateTableObs, FreezeSuppressionCountsAndMarksTheFlow) {
  obs::Observability hub;
  flowserver::FlowStateTable table;
  table.set_obs(&hub);

  // 100 bytes at 10 B/s: frozen until t = 10.
  table.add(1, net::Path{}, 100.0, 10.0, sim::SimTime{});
  EXPECT_EQ(table.frozen_count(sim::SimTime::from_seconds(1.0)), 1u);

  // A poll during the freeze measures 20 B/s — suppressed.
  table.update_from_stats(1, 20.0, sim::SimTime::from_seconds(1.0));
  EXPECT_DOUBLE_EQ(table.find(1)->bw_bps, 10.0);
  EXPECT_EQ(table.freeze_suppressed_total(), 1u);
  EXPECT_EQ(hub.metrics.counter_value("flowserver.table.freeze_suppressed"),
            1u);
  const obs::FlowTraceRecord* rec = hub.trace.find_active(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->freeze_hits, 1u);

  // After the freeze expires the measurement lands, nothing suppressed.
  table.update_from_stats(1, 60.0, sim::SimTime::from_seconds(11.0));
  EXPECT_NE(table.find(1)->bw_bps, 10.0);
  EXPECT_EQ(table.freeze_suppressed_total(), 1u);
  EXPECT_EQ(table.frozen_count(sim::SimTime::from_seconds(11.0)), 0u);
}

// --- end to end ------------------------------------------------------------

harness::ExperimentConfig tiny_config() {
  harness::ExperimentConfig cfg;
  cfg.scheme = harness::SchemeKind::kMayflower;
  cfg.catalog.num_files = 60;
  cfg.catalog.file_bytes = 64e6;
  cfg.gen.total_jobs = 120;
  cfg.warmup_jobs = 20;
  cfg.seed = 7;
  return cfg;
}

TEST(Observability, HarnessExportIsByteIdenticalAcrossIdenticalRuns) {
  // The property ci.sh enforces with `diff` on two --metrics-out files.
  obs::Observability a;
  obs::Observability b;
  harness::ExperimentConfig cfg = tiny_config();
  cfg.obs = &a;
  harness::run_experiment(cfg);
  cfg.obs = &b;
  harness::run_experiment(cfg);

  const std::string ja = a.to_json();
  const std::string jb = b.to_json();
  EXPECT_EQ(ja, jb);

  // And the run actually measured something at every layer.
  EXPECT_GT(a.metrics.counter_value("sdn.fabric.flows_started"), 0u);
  EXPECT_GT(a.metrics.counter_value("sdn.fabric.flows_completed"), 0u);
  EXPECT_GT(a.metrics.counter_value("flowserver.selections"), 0u);
  EXPECT_GT(a.metrics.counter_value("sdn.poller.ticks"), 0u);
  EXPECT_FALSE(a.trace.finished().empty());
  EXPECT_FALSE(a.trace.decisions().empty());
  EXPECT_FALSE(a.trace.estimator_errors().empty());
  EXPECT_NE(ja.find("\"estimator_error\":{"), std::string::npos);
  EXPECT_NE(ja.find("\"belief_error\":{"), std::string::npos);
}

TEST(Observability, AttachingAHubDoesNotChangeTheSimulation) {
  // Zero-cost also means zero-effect: measured results are identical with
  // and without the hub attached.
  harness::ExperimentConfig plain = tiny_config();
  const harness::RunResult r0 = harness::run_experiment(plain);

  obs::Observability hub;
  harness::ExperimentConfig instrumented = tiny_config();
  instrumented.obs = &hub;
  const harness::RunResult r1 = harness::run_experiment(instrumented);

  ASSERT_EQ(r0.completions.size(), r1.completions.size());
  for (std::size_t i = 0; i < r0.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(r0.completions[i], r1.completions[i]);
  }
  EXPECT_EQ(r0.selections, r1.selections);
  EXPECT_EQ(r0.split_reads, r1.split_reads);
  EXPECT_DOUBLE_EQ(r0.sim_duration_sec, r1.sim_duration_sec);
}

}  // namespace
}  // namespace mayflower
