// Threaded batch admission: the snapshot pipeline must produce
// byte-identical decisions at every thread count (the WorkerPool determinism
// contract, DESIGN.md §11), match the legacy serial pipeline on batches of
// one, and keep the exported metrics byte-identical across thread counts.
// The stress test at the end is the TSan lane's target: producer threads
// hammer post_read() while the control thread drains, polls and injects
// fabric faults.
#include <gtest/gtest.h>

#include <atomic>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "flowserver/flowserver.hpp"
#include "net/tree.hpp"
#include "obs/observability.hpp"

namespace mayflower::flowserver {
namespace {

struct RunOutput {
  std::string transcript;    // every decision, hexfloat (bit-exact) doubles
  std::string metrics_json;  // the --metrics-out payload for the run
};

// One deterministic admission workload: kRequests reads posted in groups of
// `group`, each group drained and its flows started so later batches see the
// load, with a stats poll between groups. `hotspot` concentrates clients in
// pod 0 reading from pods 2-3 (a fig4-style incast pattern); otherwise
// clients and replicas are uniform over the cluster (fig6-style).
RunOutput run_workload(std::size_t decision_threads, std::size_t group,
                       std::uint64_t seed, bool hotspot) {
  constexpr int kRequests = 48;
  sim::EventQueue events;
  net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  sdn::SdnFabric fabric(events, tree.topo);
  obs::Observability hub;

  FlowserverConfig cfg;
  cfg.decision_threads = decision_threads;
  cfg.batch_size = group;
  cfg.obs = &hub;
  Flowserver server(fabric, cfg);

  const std::size_t hosts = tree.hosts.size();
  const std::size_t pod = hosts / 4;
  Rng rng(seed);
  std::vector<std::vector<ReadAssignment>> plans(kRequests);
  int posted = 0;
  while (posted < kRequests) {
    const int n = static_cast<int>(
        std::min<std::size_t>(group, static_cast<std::size_t>(kRequests - posted)));
    for (int k = 0; k < n; ++k) {
      const int idx = posted + k;
      const net::NodeId client =
          hotspot ? tree.hosts[rng.next_below(pod)]
                  : tree.hosts[rng.next_below(hosts)];
      std::vector<net::NodeId> replicas;
      while (replicas.size() < 3) {
        const net::NodeId r =
            hotspot ? tree.hosts[2 * pod + rng.next_below(2 * pod)]
                    : tree.hosts[rng.next_below(hosts)];
        if (r == client) continue;
        bool dup = false;
        for (const net::NodeId have : replicas) dup = dup || have == r;
        if (!dup) replicas.push_back(r);
      }
      const double bytes = rng.uniform(64e6, 512e6);
      server.post_read(client, replicas, bytes,
                       [&plans, idx](std::vector<ReadAssignment> plan) {
                         plans[static_cast<std::size_t>(idx)] = std::move(plan);
                       });
    }
    server.drain();
    for (int k = posted; k < posted + n; ++k) {
      for (const auto& a : plans[static_cast<std::size_t>(k)]) {
        fabric.start_flow(a.cookie, a.path, a.bytes, nullptr);
      }
    }
    posted += n;
    server.collect_stats();  // refresh estimates between batches
  }

  std::ostringstream out;
  out << std::hexfloat;
  for (int i = 0; i < kRequests; ++i) {
    out << "req " << i << "\n";
    for (const auto& a : plans[static_cast<std::size_t>(i)]) {
      out << "  replica=" << a.replica << " bytes=" << a.bytes
          << " est=" << a.est_bw_bps << " path=";
      for (const net::NodeId node : a.path.nodes) out << node << ",";
      out << "\n";
    }
  }
  out << "selections=" << server.selections()
      << " splits=" << server.split_reads()
      << " table=" << server.table().size() << "\n";
  return RunOutput{out.str(), hub.to_json()};
}

constexpr std::uint64_t kSeeds[] = {0xfee1d, 0xf16};

TEST(FlowserverThreadedBatch, BatchOfOneMatchesLegacyAtEveryThreadCount) {
  for (const std::uint64_t seed : kSeeds) {
    for (const bool hotspot : {false, true}) {
      const RunOutput legacy = run_workload(0, 1, seed, hotspot);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const RunOutput got = run_workload(threads, 1, seed, hotspot);
        EXPECT_EQ(got.transcript, legacy.transcript)
            << "threads=" << threads << " seed=" << seed
            << " hotspot=" << hotspot;
      }
    }
  }
}

TEST(FlowserverThreadedBatch, BatchedDecisionsIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : kSeeds) {
    for (const bool hotspot : {false, true}) {
      const RunOutput one = run_workload(1, 8, seed, hotspot);
      EXPECT_NE(one.transcript.find("selections=48"), std::string::npos);
      for (const std::size_t threads : {2u, 8u}) {
        const RunOutput got = run_workload(threads, 8, seed, hotspot);
        EXPECT_EQ(got.transcript, one.transcript)
            << "threads=" << threads << " seed=" << seed
            << " hotspot=" << hotspot;
      }
    }
  }
}

TEST(FlowserverThreadedBatch, MetricsJsonByteIdenticalAcrossThreadCounts) {
  const RunOutput one = run_workload(1, 8, kSeeds[0], false);
  ASSERT_FALSE(one.metrics_json.empty());
  EXPECT_NE(one.metrics_json.find("decisions"), std::string::npos);
  for (const std::size_t threads : {2u, 8u}) {
    const RunOutput got = run_workload(threads, 8, kSeeds[0], false);
    EXPECT_EQ(got.metrics_json, one.metrics_json) << "threads=" << threads;
  }
}

// TSan target: four producer threads post reads while the control thread
// drains with an 8-worker pool, polls stats, and fails a core switch
// mid-run. Nothing here asserts on decision content — the point is that
// every queue hand-off, worker round and fault-path lock scope is exercised
// under contention with the race detector watching.
TEST(FlowserverThreadedStress, ConcurrentPostersDrainsPollsAndFaults) {
  sim::EventQueue events;
  net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  sdn::SdnFabric fabric(events, tree.topo);

  FlowserverConfig cfg;
  cfg.decision_threads = 8;
  cfg.batch_size = 100000;  // never auto-drain; the control loop drains
  Flowserver server(fabric, cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 32;
  constexpr int kTotal = kProducers * kPerProducer;
  std::atomic<int> delivered{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000u + static_cast<std::uint64_t>(p));
      const std::size_t hosts = tree.hosts.size();
      for (int i = 0; i < kPerProducer; ++i) {
        const net::NodeId client = tree.hosts[rng.next_below(hosts)];
        std::vector<net::NodeId> replicas;
        while (replicas.size() < 2) {
          const net::NodeId r = tree.hosts[rng.next_below(hosts)];
          if (r != client &&
              (replicas.empty() || replicas.front() != r)) {
            replicas.push_back(r);
          }
        }
        server.post_read(client, replicas, 64e6,
                         [&delivered](std::vector<ReadAssignment>) {
                           delivered.fetch_add(1, std::memory_order_relaxed);
                         });
      }
    });
  }

  std::size_t decided = 0;
  bool faulted = false;
  std::uint64_t spins = 0;
  while (delivered.load(std::memory_order_relaxed) < kTotal) {
    const std::size_t n = server.drain();
    decided += n;
    server.collect_stats();
    if (!faulted && decided > 16) {
      fabric.fail_switch(tree.core_switches[0]);
      faulted = true;
    }
    if (n == 0) std::this_thread::yield();
    ASSERT_LT(++spins, 10000000u) << "admission queue stalled";
  }
  for (auto& t : producers) t.join();
  decided += server.drain();

  EXPECT_EQ(decided, static_cast<std::size_t>(kTotal));
  EXPECT_EQ(delivered.load(), kTotal);
  EXPECT_TRUE(faulted);
  EXPECT_EQ(server.selections(), static_cast<std::uint64_t>(kTotal));
}

}  // namespace
}  // namespace mayflower::flowserver
