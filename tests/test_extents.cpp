#include "fs/data.hpp"

#include <gtest/gtest.h>

#include "common/crc32.hpp"

namespace mayflower::fs {
namespace {

TEST(Extent, InlineBasics) {
  const Extent e = Extent::from_bytes("hello world");
  EXPECT_EQ(e.size(), 11u);
  EXPECT_EQ(e.materialize(), "hello world");
  EXPECT_EQ(e.byte_at(0), 'h');
  EXPECT_EQ(e.byte_at(10), 'd');
}

TEST(Extent, InlineSlice) {
  const Extent e = Extent::from_bytes("hello world");
  EXPECT_EQ(e.slice(6, 5).materialize(), "world");
  EXPECT_EQ(e.slice(6, 100).materialize(), "world");  // clamped
  EXPECT_EQ(e.slice(11, 5).size(), 0u);
}

TEST(Extent, PatternIsDeterministic) {
  const Extent a = Extent::pattern(42, 1000);
  const Extent b = Extent::pattern(42, 1000);
  EXPECT_EQ(a.materialize(), b.materialize());
  EXPECT_NE(Extent::pattern(43, 1000).checksum(), a.checksum());
}

TEST(Extent, PatternSliceMatchesMaterializedSlice) {
  const Extent whole = Extent::pattern(7, 4096);
  const std::string bytes = whole.materialize();
  for (const auto& [off, len] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 100}, {1, 7}, {4000, 96}, {1023, 1}, {512, 2048}}) {
    const Extent s = whole.slice(off, len);
    EXPECT_EQ(s.materialize(), bytes.substr(off, len)) << off << "," << len;
  }
}

TEST(Extent, ChecksumMatchesMaterializedCrcWithoutMaterializing) {
  const Extent p = Extent::pattern(99, 100000);
  const std::string bytes = p.materialize(1u << 20);
  EXPECT_EQ(p.checksum(), crc32(bytes));
  // Huge pattern: checksum works where materialize refuses.
  const Extent huge = Extent::pattern(1, 1ull << 33);
  EXPECT_TRUE(huge.materialize(1u << 20).empty());
  EXPECT_NE(huge.checksum(), 0u);  // computed, streaming
}

TEST(Extent, ContentEqualsAcrossKinds) {
  const Extent p = Extent::pattern(11, 500);
  const Extent inl = Extent::from_bytes(p.materialize());
  EXPECT_TRUE(p.content_equals(inl));
  EXPECT_TRUE(inl.content_equals(p));
  EXPECT_FALSE(p.content_equals(Extent::pattern(12, 500)));
}

TEST(Extent, EncodeDecodeRoundTrip) {
  for (const Extent& e :
       {Extent::from_bytes("binary\x00payload"), Extent::pattern(5, 123, 45)}) {
    Writer w;
    e.encode(w);
    const Bytes bytes = w.bytes();
    Reader r(bytes);
    const Extent back = Extent::decode(r);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(e.content_equals(back));
    EXPECT_EQ(e.kind(), back.kind());
  }
}

TEST(ExtentList, AppendAndSize) {
  ExtentList list;
  EXPECT_TRUE(list.empty());
  list.append(Extent::from_bytes("abc"));
  list.append(Extent::pattern(1, 10));
  list.append(Extent::from_bytes(""));  // dropped
  EXPECT_EQ(list.size(), 13u);
  EXPECT_EQ(list.extents().size(), 2u);
}

TEST(ExtentList, SliceSpansExtentBoundaries) {
  ExtentList list;
  list.append(Extent::from_bytes("0123456789"));
  list.append(Extent::from_bytes("abcdefghij"));
  list.append(Extent::from_bytes("ABCDEFGHIJ"));
  EXPECT_EQ(list.slice(8, 4).materialize(), "89ab");
  EXPECT_EQ(list.slice(0, 30).materialize(),
            "0123456789abcdefghijABCDEFGHIJ");
  EXPECT_EQ(list.slice(19, 2).materialize(), "jA");
  EXPECT_EQ(list.slice(30, 5).size(), 0u);
  EXPECT_EQ(list.slice(25, 100).materialize(), "FGHIJ");
}

TEST(ExtentList, ChecksumIsLayoutIndependent) {
  // Same logical bytes, different extent splits => same checksum.
  ExtentList a;
  a.append(Extent::from_bytes("hello "));
  a.append(Extent::from_bytes("world"));
  ExtentList b;
  b.append(Extent::from_bytes("hello world"));
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_TRUE(a.content_equals(b));
}

TEST(ExtentList, PatternSplitEqualsWhole) {
  const Extent whole = Extent::pattern(77, 1000);
  ExtentList parts;
  parts.append(whole.slice(0, 400));
  parts.append(whole.slice(400, 600));
  ExtentList one(whole);
  EXPECT_TRUE(parts.content_equals(one));
}

TEST(ExtentList, EncodeDecodeRoundTrip) {
  ExtentList list;
  list.append(Extent::from_bytes("xyz"));
  list.append(Extent::pattern(3, 50, 10));
  Writer w;
  list.encode(w);
  const Bytes bytes = w.bytes();
  Reader r(bytes);
  const ExtentList back = ExtentList::decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(list.content_equals(back));
}

TEST(ExtentList, SliceOfSliceComposes) {
  ExtentList list;
  list.append(Extent::pattern(9, 1000));
  list.append(Extent::pattern(10, 1000));
  const ExtentList outer = list.slice(500, 1000);
  const ExtentList inner = outer.slice(250, 500);
  EXPECT_TRUE(inner.content_equals(list.slice(750, 500)));
}

}  // namespace
}  // namespace mayflower::fs
