#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fs/rpc/messages.hpp"
#include "fs/rpc/transport.hpp"

namespace mayflower::fs {
namespace {

TEST(Serializer, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.boolean(true);
  const Bytes bytes = w.bytes();
  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serializer, VarintBoundaries) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
        0xffffffffULL, 0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    const Bytes bytes = w.bytes();
    Reader r(bytes);
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(Serializer, StringsWithEmbeddedNul) {
  Writer w;
  w.str(std::string("a\0b", 3));
  w.str("");
  const Bytes bytes = w.bytes();
  Reader r(bytes);
  EXPECT_EQ(r.str(), std::string("a\0b", 3));
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Serializer, TruncatedInputFailsSticky) {
  Writer w;
  w.u64(42);
  Bytes bytes = w.bytes();
  bytes.resize(3);  // truncate
  Reader r(bytes);
  r.u64();
  EXPECT_FALSE(r.ok());
  // Sticky: further reads stay failed and return zeroes.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Serializer, CorruptListCountDoesNotOverAllocate) {
  Writer w;
  w.varint(0xffffffffffULL);  // absurd element count, no elements
  const Bytes bytes = w.bytes();
  Reader r(bytes);
  const auto items = r.list<std::uint32_t>([](Reader& rr) { return rr.u32(); });
  EXPECT_FALSE(r.ok());
  EXPECT_LT(items.size(), 4097u);
}

TEST(Messages, FileInfoRoundTrip) {
  Rng rng(1);
  FileInfo info;
  info.uuid = Uuid::generate(rng);
  info.name = "dataset/part-00042";
  info.size = 1234567890123ULL;
  info.chunk_size = 256'000'000;
  info.replicas = {7, 21, 42};
  Writer w;
  info.encode(w);
  const Bytes bytes = w.bytes();
  Reader r(bytes);
  const FileInfo back = FileInfo::decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(back.uuid, info.uuid);
  EXPECT_EQ(back.name, info.name);
  EXPECT_EQ(back.size, info.size);
  EXPECT_EQ(back.replicas, info.replicas);
  EXPECT_EQ(back.primary(), 7u);
}

TEST(Messages, FileInfoChunkArithmetic) {
  FileInfo info;
  info.chunk_size = 100;
  info.size = 0;
  EXPECT_EQ(info.last_chunk_index(), 0u);
  info.size = 100;
  EXPECT_EQ(info.last_chunk_index(), 0u);  // exactly one full chunk
  info.size = 101;
  EXPECT_EQ(info.last_chunk_index(), 1u);
  EXPECT_EQ(info.last_chunk_offset(), 100u);
  info.size = 250;
  EXPECT_EQ(info.last_chunk_index(), 2u);
  EXPECT_EQ(info.last_chunk_offset(), 200u);
}

TEST(Messages, RequestResponsePairsRoundTrip) {
  Rng rng(2);
  const Uuid uuid = Uuid::generate(rng);
  {
    const Bytes b = CreateFileReq{"x", 3}.encode();
    Reader r(b);
    const auto back = CreateFileReq::decode(r);
    EXPECT_EQ(back.name, "x");
    EXPECT_EQ(back.replication, 3u);
  }
  {
    AppendReq req;
    req.file = uuid;
    req.data.append(Extent::pattern(5, 1000));
    const Bytes b = req.encode();
    Reader r(b);
    const auto back = AppendReq::decode(r);
    EXPECT_EQ(back.file, uuid);
    EXPECT_EQ(back.data.size(), 1000u);
  }
  {
    ReadReq req;
    req.file = uuid;
    req.offset = 128;
    req.length = 256;
    const Bytes b = req.encode();
    Reader r(b);
    const auto back = ReadReq::decode(r);
    EXPECT_EQ(back.offset, 128u);
    EXPECT_EQ(back.length, 256u);
  }
  {
    ReadResp resp;
    resp.data.append(Extent::from_bytes("abc"));
    resp.file_size = 999;
    const Bytes b = resp.encode();
    Reader r(b);
    const auto back = ReadResp::decode(r);
    EXPECT_EQ(back.file_size, 999u);
    EXPECT_EQ(back.data.materialize(), "abc");
  }
}

TEST(SimTransport, DeliversWithRoundTripLatency) {
  sim::EventQueue events;
  SimTransport transport(events, sim::SimTime::from_millis(1.0));
  transport.bind(2, [](net::NodeId from, Method method, const Bytes& req,
                       ResponseFn reply) {
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(method, Method::kLookupFile);
    EXPECT_EQ(req, "ping");
    reply(Status::kOk, "pong");
  });
  double replied_at = -1.0;
  transport.call(1, 2, Method::kLookupFile, "ping",
                 [&](Status status, Bytes payload) {
                   EXPECT_EQ(status, Status::kOk);
                   EXPECT_EQ(payload, "pong");
                   replied_at = events.now().seconds();
                 });
  events.run();
  EXPECT_NEAR(replied_at, 0.002, 1e-9);  // two one-way legs
}

TEST(SimTransport, UnboundDestinationIsUnavailable) {
  sim::EventQueue events;
  SimTransport transport(events, sim::SimTime::from_millis(1.0));
  Status seen = Status::kOk;
  transport.call(1, 99, Method::kLookupFile, "x",
                 [&](Status status, Bytes) { seen = status; });
  events.run();
  EXPECT_EQ(seen, Status::kUnavailable);
}

TEST(SimTransport, UnbindStopsDelivery) {
  sim::EventQueue events;
  SimTransport transport(events, sim::SimTime::from_millis(1.0));
  transport.bind(2, [](net::NodeId, Method, const Bytes&, ResponseFn reply) {
    reply(Status::kOk, {});
  });
  transport.unbind(2);
  Status seen = Status::kOk;
  transport.call(1, 2, Method::kLookupFile, "x",
                 [&](Status status, Bytes) { seen = status; });
  events.run();
  EXPECT_EQ(seen, Status::kUnavailable);
}

TEST(SimTransport, AsynchronousServerReply) {
  // A handler may hold the reply and fire it later; latency still applies.
  sim::EventQueue events;
  SimTransport transport(events, sim::SimTime::from_millis(1.0));
  transport.bind(2, [&events](net::NodeId, Method, const Bytes&,
                              ResponseFn reply) {
    events.schedule_in(sim::SimTime::from_millis(5.0),
                       [reply = std::move(reply)] {
                         reply(Status::kOk, "late");
                       });
  });
  double replied_at = -1.0;
  transport.call(1, 2, Method::kReadFile, "x", [&](Status, Bytes payload) {
    EXPECT_EQ(payload, "late");
    replied_at = events.now().seconds();
  });
  events.run();
  EXPECT_NEAR(replied_at, 0.007, 1e-9);
}

TEST(LoopbackTransport, SynchronousDelivery) {
  LoopbackTransport transport;
  transport.bind(5, [](net::NodeId, Method, const Bytes& req,
                       ResponseFn reply) { reply(Status::kOk, req + "!"); });
  Bytes got;
  transport.call(1, 5, Method::kListFiles, "hi",
                 [&](Status, Bytes payload) { got = std::move(payload); });
  EXPECT_EQ(got, "hi!");
}

}  // namespace
}  // namespace mayflower::fs
