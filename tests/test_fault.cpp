// Fault-injection subsystem: plan generation, injector semantics over a
// live fabric, per-layer reactions (FlowSim allocation consistency, SDN
// flow-table wipes, Flowserver path re-selection), and end-to-end recovery
// through the full filesystem (re-replication, client retries) plus the
// fault-aware experiment harness.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fs/cluster.hpp"
#include "harness/experiment.hpp"
#include "net/paths.hpp"

namespace mayflower::fault {
namespace {

// --- FaultPlan generation -------------------------------------------------

RandomFaultConfig busy_config() {
  RandomFaultConfig cfg;
  cfg.events_per_minute = 30.0;
  cfg.horizon = sim::SimTime::from_seconds(120.0);
  return cfg;
}

TEST(FaultPlan, RandomPlanIsDeterministicInSeed) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  const FaultPlan a = FaultPlan::random(tree, busy_config(), 42);
  const FaultPlan b = FaultPlan::random(tree, busy_config(), 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_FALSE(a.events.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].link, b.events[i].link);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
  }
  const FaultPlan c = FaultPlan::random(tree, busy_config(), 43);
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST(FaultPlan, EventsAreSortedAndEveryFaultHasARepair) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  const FaultPlan plan = FaultPlan::random(tree, busy_config(), 7);
  ASSERT_FALSE(plan.events.empty());
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
  std::size_t faults = 0, repairs = 0;
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kSwitchCrash:
      case FaultKind::kDataserverCrash:
      case FaultKind::kDataserverDegrade:
        ++faults;
        break;
      default:
        ++repairs;
    }
  }
  EXPECT_EQ(faults, repairs);  // repairs may land past the horizon, but exist
}

TEST(FaultPlan, TargetsOnlyValidObjects) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  std::set<net::NodeId> hosts(tree.hosts.begin(), tree.hosts.end());
  std::set<net::NodeId> crashable(tree.core_switches.begin(),
                                  tree.core_switches.end());
  for (const auto& pod : tree.agg_switches) {
    crashable.insert(pod.begin(), pod.end());
  }
  const FaultPlan plan = FaultPlan::random(tree, busy_config(), 99);
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp: {
        const net::Link& link = tree.topo.link(e.link);
        EXPECT_NE(tree.topo.node(link.from).kind, net::NodeKind::kHost);
        EXPECT_NE(tree.topo.node(link.to).kind, net::NodeKind::kHost);
        break;
      }
      case FaultKind::kSwitchCrash:
      case FaultKind::kSwitchRestore:
        EXPECT_TRUE(crashable.count(e.node)) << "node " << e.node;
        break;
      default:
        EXPECT_TRUE(hosts.count(e.node)) << "node " << e.node;
    }
  }
}

TEST(FaultPlan, ZeroRateYieldsEmptyPlan) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  EXPECT_TRUE(FaultPlan::random(tree, RandomFaultConfig{}, 1).events.empty());
}

// --- fabric-level reactions ----------------------------------------------

class FaultFabricTest : public ::testing::Test {
 protected:
  FaultFabricTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo) {}

  net::Path first_path(net::NodeId from, net::NodeId to) {
    return net::shortest_paths(tree_.topo, from, to).at(0);
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
};

TEST_F(FaultFabricTest, LinkFailureKillsCrossingFlowAndAllocationStaysExact) {
  // One cross-pod flow plus two rack-local flows in other racks, so the
  // failed link is crossed by exactly the first flow.
  const net::Path pa = first_path(tree_.hosts[0], tree_.hosts[16]);
  const net::Path pb = first_path(tree_.hosts[8], tree_.hosts[9]);
  const net::Path pc = first_path(tree_.hosts[12], tree_.hosts[13]);
  bool failed = false, completed_a = false;
  for (const auto* p : {&pa, &pb, &pc}) {
    const sdn::Cookie c = fabric_.new_cookie();
    fabric_.install_path(c, *p);
    fabric_.start_flow(
        c, *p, 500e6,
        [&, p](sdn::Cookie, sim::SimTime) { completed_a |= (p == &pa); },
        [&, p](sdn::Cookie, const net::FlowRecord& record) {
          EXPECT_EQ(p, &pa);
          EXPECT_GT(record.remaining_bytes, 0.0);
          EXPECT_LT(record.remaining_bytes, record.size_bytes);  // progressed
          failed = true;
        });
  }
  events_.run_until(sim::SimTime::from_seconds(0.5));
  ASSERT_TRUE(fabric_.fail_link(pa.links[1]));  // edge->agg hop of path A
  EXPECT_TRUE(failed);
  EXPECT_FALSE(completed_a);
  EXPECT_FALSE(fabric_.path_alive(pa));
  // The survivors' incremental allocation must equal a from-scratch solve.
  EXPECT_TRUE(fabric_.flow_sim().rates_match_full_solve());
  EXPECT_EQ(fabric_.flow_sim().active_flow_count(), 2u);
  // Restore: path is alive again; no allocation disturbance occurred.
  ASSERT_TRUE(fabric_.restore_link(pa.links[1]));
  EXPECT_TRUE(fabric_.path_alive(pa));
  EXPECT_TRUE(fabric_.flow_sim().rates_match_full_solve());
}

TEST_F(FaultFabricTest, DegradedLinkSlowsFlowWithoutKillingIt) {
  const net::Path p = first_path(tree_.hosts[0], tree_.hosts[1]);
  const sdn::Cookie c = fabric_.new_cookie();
  const double base = fabric_.flow_sim().link_capacity(p.links[0]);
  fabric_.install_path(c, p);
  bool done = false;
  fabric_.start_flow(c, p, 125e6,
                     [&](sdn::Cookie, sim::SimTime) { done = true; });
  fabric_.set_link_capacity_factor(p.links[0], 0.25);
  EXPECT_DOUBLE_EQ(fabric_.flow_sim().link_capacity(p.links[0]), base * 0.25);
  events_.run();
  EXPECT_TRUE(done);  // slow, not dead
  EXPECT_EQ(events_.now(), sim::SimTime::from_seconds(4.0));  // 4x slower
}

TEST_F(FaultFabricTest, StillbornFlowOverDeadPathFailsAsynchronously) {
  const net::Path p = first_path(tree_.hosts[0], tree_.hosts[16]);
  ASSERT_TRUE(fabric_.fail_link(p.links[2]));
  const sdn::Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, p);
  bool failed = false;
  fabric_.start_flow(c, p, 1e6, nullptr,
                     [&](sdn::Cookie, const net::FlowRecord& record) {
                       EXPECT_EQ(record.remaining_bytes, record.size_bytes);
                       failed = true;
                     });
  EXPECT_FALSE(failed);  // reported asynchronously, like a real timeout
  EXPECT_FALSE(fabric_.flow_active(c));
  events_.run();
  EXPECT_TRUE(failed);
}

TEST_F(FaultFabricTest, SwitchCrashDownsAdjacentLinksWipesTableAndRestores) {
  const net::NodeId agg = tree_.agg_switches[0][0];
  const net::Path via_agg = [&] {
    for (const net::Path& p :
         net::shortest_paths(tree_.topo, tree_.hosts[0], tree_.hosts[8])) {
      if (std::find(p.nodes.begin(), p.nodes.end(), agg) != p.nodes.end()) {
        return p;
      }
    }
    ADD_FAILURE() << "no path through agg switch";
    return net::Path{};
  }();
  const sdn::Cookie c = fabric_.new_cookie();
  fabric_.install_path(c, via_agg);
  bool failed = false;
  fabric_.start_flow(c, via_agg, 1e9, nullptr,
                     [&](sdn::Cookie, const net::FlowRecord&) {
                       failed = true;
                     });

  fabric_.fail_switch(agg);
  EXPECT_FALSE(fabric_.switch_up(agg));
  EXPECT_TRUE(failed);
  EXPECT_FALSE(fabric_.switch_at(agg).lookup(c).has_value());  // table wiped
  for (const net::LinkId l : tree_.topo.out_links(agg)) {
    EXPECT_FALSE(fabric_.link_up(l));
  }
  EXPECT_TRUE(fabric_.flow_sim().rates_match_full_solve());

  fabric_.restore_switch(agg);
  EXPECT_TRUE(fabric_.switch_up(agg));
  for (const net::LinkId l : tree_.topo.out_links(agg)) {
    EXPECT_TRUE(fabric_.link_up(l));
  }
}

// --- flowserver reactions -------------------------------------------------

TEST_F(FaultFabricTest, FlowserverRoutesAroundDeadSwitchAndDropsKilledFlows) {
  flowserver::Flowserver server(fabric_, flowserver::FlowserverConfig{});
  server.start();

  // Kill one of pod 0's aggregation switches: selections must avoid it.
  const net::NodeId dead_agg = tree_.agg_switches[0][0];
  fabric_.fail_switch(dead_agg);
  for (int i = 0; i < 8; ++i) {
    const auto plan = server.select_for_read(
        tree_.hosts[0], {tree_.hosts[9], tree_.hosts[17]}, 64e6);
    ASSERT_FALSE(plan.empty());
    for (const auto& a : plan) {
      EXPECT_TRUE(fabric_.path_alive(a.path));
      EXPECT_EQ(std::find(a.path.nodes.begin(), a.path.nodes.end(), dead_agg),
                a.path.nodes.end());
      fabric_.start_flow(a.cookie, a.path, a.bytes);
    }
  }

  // A fault that kills a selected flow must also purge its SETBW state.
  const auto plan = server.select_for_read(tree_.hosts[2], {tree_.hosts[18]},
                                           64e6);
  ASSERT_FALSE(plan.empty());
  const sdn::Cookie cookie = plan[0].cookie;
  fabric_.start_flow(cookie, plan[0].path, plan[0].bytes);
  ASSERT_TRUE(server.table().contains(cookie));
  fabric_.fail_link(plan[0].path.links[0]);
  EXPECT_FALSE(server.table().contains(cookie));
  server.stop();
}

TEST_F(FaultFabricTest, FlowserverReturnsEmptyWhenClientIsUnreachable) {
  flowserver::Flowserver server(fabric_, flowserver::FlowserverConfig{});
  server.start();
  // The client's only downlink is dead: no replica can reach it.
  const net::ThreeTier& t = tree_;
  fabric_.fail_link(t.host_downlink(t.hosts[0]));
  const auto plan =
      server.select_for_read(t.hosts[0], {t.hosts[9], t.hosts[17]}, 64e6);
  EXPECT_TRUE(plan.empty());
  server.stop();
}

// --- injector over the full cluster --------------------------------------

TEST(FaultInjectorTest, ScriptedDataserverCrashAndRestartDriveHooks) {
  fs::ClusterConfig cfg;
  cfg.seed = 5;
  fs::Cluster cluster(cfg);
  FaultInjector& injector = cluster.fault_injector();
  const net::NodeId victim = cluster.tree().hosts[4];

  FaultPlan plan;
  plan.events.push_back({sim::SimTime::from_seconds(1.0),
                         FaultKind::kDataserverCrash, net::kInvalidLink,
                         victim});
  plan.events.push_back({sim::SimTime::from_seconds(2.0),
                         FaultKind::kDataserverRestart, net::kInvalidLink,
                         victim});
  injector.arm(plan);

  EXPECT_TRUE(injector.host_up(victim));
  cluster.run_until(sim::SimTime::from_seconds(1.5));
  EXPECT_FALSE(injector.host_up(victim));
  EXPECT_FALSE(cluster.dataserver_at(victim).attached());
  EXPECT_FALSE(cluster.fabric().link_up(cluster.tree().host_uplink(victim)));

  cluster.run_until(sim::SimTime::from_seconds(2.5));
  EXPECT_TRUE(injector.host_up(victim));
  EXPECT_TRUE(cluster.dataserver_at(victim).attached());
  EXPECT_TRUE(cluster.fabric().link_up(cluster.tree().host_uplink(victim)));
  EXPECT_EQ(injector.injected(FaultKind::kDataserverCrash), 1u);
  EXPECT_EQ(injector.injected(FaultKind::kDataserverRestart), 1u);
  EXPECT_EQ(injector.total_injected(), 2u);
}

// --- harness integration --------------------------------------------------

harness::ExperimentConfig tiny_fault_experiment(harness::SchemeKind kind) {
  harness::ExperimentConfig cfg;
  cfg.scheme = kind;
  cfg.catalog.num_files = 40;
  cfg.catalog.file_bytes = 32e6;
  cfg.gen.total_jobs = 120;
  cfg.warmup_jobs = 20;
  cfg.seed = 3;
  cfg.faults.events_per_minute = 20.0;
  cfg.faults.horizon = sim::SimTime::from_seconds(120.0);
  cfg.faults.mean_downtime_sec = 4.0;
  return cfg;
}

TEST(FaultHarness, FaultRunIsDeterministicAndJobsStillComplete) {
  const auto cfg = tiny_fault_experiment(harness::SchemeKind::kMayflower);
  const harness::RunResult a = harness::run_experiment(cfg);
  const harness::RunResult b = harness::run_experiment(cfg);
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.incomplete, 0u);  // retries recover every read
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.completions[i], b.completions[i]) << "job " << i;
  }
  EXPECT_EQ(a.flow_failures, b.flow_failures);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

TEST(FaultHarness, EcmpSchemeSurvivesFaultsThroughRetries) {
  const auto cfg = tiny_fault_experiment(harness::SchemeKind::kNearestEcmp);
  const harness::RunResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_EQ(r.incomplete, 0u);
}

TEST(FaultHarness, IdleInjectorReproducesTheFaultFreeRun) {
  auto cfg = tiny_fault_experiment(harness::SchemeKind::kMayflower);
  cfg.faults = RandomFaultConfig{};  // rate 0: injector never constructed
  const harness::RunResult baseline = harness::run_experiment(cfg);
  // Armed injector whose plan is empty (zero horizon): the fault-aware code
  // path (replica liveness filtering, retry plumbing) runs but must change
  // nothing relative to the plain run.
  auto idle = cfg;
  idle.faults.events_per_minute = 5.0;
  idle.faults.horizon = sim::SimTime{};
  const harness::RunResult armed = harness::run_experiment(idle);
  EXPECT_EQ(armed.faults_injected, 0u);
  EXPECT_EQ(armed.flow_failures, 0u);
  ASSERT_EQ(armed.completions.size(), baseline.completions.size());
  for (std::size_t i = 0; i < armed.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(armed.completions[i], baseline.completions[i]);
  }
}

}  // namespace
}  // namespace mayflower::fault
