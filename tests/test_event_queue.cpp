#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mayflower::sim {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(sec(3.0), [&] { order.push_back(3); });
  q.schedule_at(sec(1.0), [&] { order.push_back(1); });
  q.schedule_at(sec(2.0), [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), sec(3.0));
}

TEST(EventQueue, SameInstantIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(sec(1.0), [&, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(sec(5.0), [&] {
    q.schedule_in(sec(2.0), [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, sec(7.0));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(sec(1.0), [&] { ran = true; });
  q.cancel(id);
  EXPECT_EQ(q.run(), 0u);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterRunIsNoop) {
  EventQueue q;
  const EventId id = q.schedule_at(sec(1.0), [] {});
  q.schedule_at(sec(2.0), [] {});
  q.run();
  q.cancel(id);  // must not corrupt state
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.schedule_at(sec(1.0), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, InvalidIdCancelIsNoop) {
  EventQueue q;
  q.schedule_at(sec(1.0), [] {});
  q.cancel(EventId{});
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(sec(1.0), [&] { order.push_back(1); });
  q.schedule_at(sec(2.0), [&] { order.push_back(2); });
  q.schedule_at(sec(5.0), [&] { order.push_back(5); });
  EXPECT_EQ(q.run_until(sec(3.0)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), sec(3.0));
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(order.back(), 5);
}

TEST(EventQueue, RunUntilIncludesDeadlineInstant) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(sec(3.0), [&] { ran = true; });
  q.run_until(sec(3.0));
  EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) q.schedule_in(sec(0.001), recurse);
  };
  q.schedule_at(sec(0.0), recurse);
  q.run();
  EXPECT_EQ(depth, 100);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(sec(1.0), [&] { ++count; });
  q.schedule_at(sec(2.0), [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, PendingCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule_at(sec(1.0), [] {});
  q.schedule_at(sec(2.0), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelInsideEarlierEvent) {
  EventQueue q;
  bool second_ran = false;
  EventId second;
  q.schedule_at(sec(1.0), [&] { q.cancel(second); });
  second = q.schedule_at(sec(2.0), [&] { second_ran = true; });
  q.run();
  EXPECT_FALSE(second_ran);
}

}  // namespace
}  // namespace mayflower::sim
