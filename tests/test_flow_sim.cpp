#include "net/flow_sim.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/tree.hpp"

namespace mayflower::net {
namespace {

// Minimal dumbbell: a -- s1 -- s2 -- b, all 10 units/s.
struct Dumbbell {
  Topology topo;
  NodeId a, b, c, s1, s2;

  Dumbbell() {
    a = topo.add_node(NodeKind::kHost, "a");
    b = topo.add_node(NodeKind::kHost, "b");
    c = topo.add_node(NodeKind::kHost, "c");
    s1 = topo.add_node(NodeKind::kEdgeSwitch, "s1");
    s2 = topo.add_node(NodeKind::kEdgeSwitch, "s2");
    topo.add_duplex(a, s1, 10.0);
    topo.add_duplex(b, s2, 10.0);
    topo.add_duplex(c, s1, 10.0);
    topo.add_duplex(s1, s2, 10.0);
  }

  Path path(NodeId from, NodeId to) const {
    const auto ps = shortest_paths(topo, from, to);
    return ps.at(0);
  }
};

TEST(FlowSim, SingleFlowFinishesAtSizeOverCapacity) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  double completed_at = -1.0;
  fs.start_flow(d.path(d.a, d.b), 50.0, [&](const FlowRecord& f) {
    completed_at = events.now().seconds();
    EXPECT_DOUBLE_EQ(f.remaining_bytes, 0.0);
  });
  events.run();
  EXPECT_NEAR(completed_at, 5.0, 1e-6);
  EXPECT_EQ(fs.active_flow_count(), 0u);
}

TEST(FlowSim, TwoFlowsShareTheBottleneck) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  double t_ab = -1.0, t_cb = -1.0;
  // Both flows cross s1->s2: each gets 5/s. Equal sizes finish together at 10s.
  fs.start_flow(d.path(d.a, d.b), 50.0,
                [&](const FlowRecord&) { t_ab = events.now().seconds(); });
  fs.start_flow(d.path(d.c, d.b), 50.0,
                [&](const FlowRecord&) { t_cb = events.now().seconds(); });
  events.run();
  EXPECT_NEAR(t_ab, 10.0, 1e-6);
  EXPECT_NEAR(t_cb, 10.0, 1e-6);
}

TEST(FlowSim, RatesRiseWhenACompetitorFinishes) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  double t_small = -1.0, t_big = -1.0;
  // Shared bottleneck at 10/s. Small flow: 10 bytes; big: 60 bytes.
  // Phase 1 (both active, 5/s each): small done at t=2 (10/5).
  // Phase 2: big has 50 left at 10/s -> +5s. Total 7s.
  fs.start_flow(d.path(d.a, d.b), 60.0,
                [&](const FlowRecord&) { t_big = events.now().seconds(); });
  fs.start_flow(d.path(d.c, d.b), 10.0,
                [&](const FlowRecord&) { t_small = events.now().seconds(); });
  events.run();
  EXPECT_NEAR(t_small, 2.0, 1e-6);
  EXPECT_NEAR(t_big, 7.0, 1e-6);
}

TEST(FlowSim, NewArrivalSlowsExistingFlow) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  double t_first = -1.0;
  fs.start_flow(d.path(d.a, d.b), 100.0,
                [&](const FlowRecord&) { t_first = events.now().seconds(); });
  // At t=5 the first flow has 50 left. A competitor arrives; both run at 5/s.
  events.schedule_at(sim::SimTime::from_seconds(5.0), [&] {
    fs.start_flow(d.path(d.c, d.b), 1000.0, nullptr);
  });
  events.run_until(sim::SimTime::from_seconds(16.0));
  // First flow: 50 remaining at 5/s -> finishes at t = 15.
  EXPECT_NEAR(t_first, 15.0, 1e-6);
}

TEST(FlowSim, CancelRemovesFlowWithoutCallback) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  bool fired = false;
  const FlowId id = fs.start_flow(d.path(d.a, d.b), 50.0,
                                  [&](const FlowRecord&) { fired = true; });
  events.schedule_at(sim::SimTime::from_seconds(1.0),
                     [&] { EXPECT_TRUE(fs.cancel(id)); });
  events.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(fs.active_flow_count(), 0u);
  EXPECT_FALSE(fs.cancel(id));  // second cancel reports failure
}

TEST(FlowSim, LinkByteCountersAccumulate) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  const Path p = d.path(d.a, d.b);
  fs.start_flow(p, 50.0, nullptr);
  events.run();
  fs.sync();
  for (const LinkId l : p.links) {
    EXPECT_NEAR(fs.link_tx_bytes(l), 50.0, 1e-6);
  }
  // Reverse-direction links carried nothing.
  EXPECT_DOUBLE_EQ(fs.link_tx_bytes(d.topo.find_link(d.s1, d.a)), 0.0);
}

TEST(FlowSim, PartialProgressVisibleMidTransfer) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  const FlowId id = fs.start_flow(d.path(d.a, d.b), 50.0, nullptr);
  events.schedule_at(sim::SimTime::from_seconds(2.0), [&] {
    fs.sync();
    const FlowRecord* f = fs.find(id);
    ASSERT_NE(f, nullptr);
    EXPECT_NEAR(f->bytes_sent(), 20.0, 1e-6);
    EXPECT_NEAR(f->rate_bps, 10.0, 1e-9);
  });
  events.run();
}

TEST(FlowSim, ZeroHopFlowUsesLocalRate) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim::Config cfg;
  cfg.zero_hop_bps = 100.0;
  FlowSim fs(events, d.topo, cfg);
  Path local;
  local.nodes = {d.a};
  double done = -1.0;
  fs.start_flow(local, 500.0,
                [&](const FlowRecord&) { done = events.now().seconds(); });
  events.run();
  EXPECT_NEAR(done, 5.0, 1e-6);
}

TEST(FlowSim, DemandLimitedFlowLeavesHeadroom) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  fs.start_flow(d.path(d.a, d.b), 100.0, nullptr, 0, /*demand=*/2.0);
  const LinkId bottleneck = d.topo.find_link(d.s1, d.s2);
  events.schedule_at(sim::SimTime::from_seconds(1.0), [&] {
    EXPECT_NEAR(fs.link_utilization(bottleneck), 0.2, 1e-9);
  });
  events.run_until(sim::SimTime::from_seconds(2.0));
}

TEST(FlowSim, ManyFlowsDeterministicCompletionOrder) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    // Staggered sizes: 10, 20, ... bytes, all a->b.
    fs.start_flow(d.path(d.a, d.b), 10.0 * (i + 1),
                  [&, i](const FlowRecord&) { order.push_back(i); });
  }
  events.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FlowSim, CompletionCallbackCanStartNextFlow) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  double second_done = -1.0;
  fs.start_flow(d.path(d.a, d.b), 50.0, [&](const FlowRecord&) {
    fs.start_flow(d.path(d.a, d.b), 50.0, [&](const FlowRecord&) {
      second_done = events.now().seconds();
    });
  });
  events.run();
  EXPECT_NEAR(second_done, 10.0, 1e-6);
}


TEST(FlowSim, ReroutePreservesByteProgress) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  // a->b via s1/s2; at t=2 (20 bytes sent) move it to the equal-cost... the
  // dumbbell has only one route, so reroute onto the same links re-indexes
  // the flow; progress and rate must survive the remove/add cycle.
  const FlowId id = fs.start_flow(d.path(d.a, d.b), 50.0, nullptr);
  events.schedule_at(sim::SimTime::from_seconds(2.0), [&] {
    fs.sync();
    EXPECT_NEAR(fs.find(id)->bytes_sent(), 20.0, 1e-6);
    EXPECT_TRUE(fs.reroute(id, d.path(d.a, d.b)));
    const FlowRecord* f = fs.find(id);
    ASSERT_NE(f, nullptr);
    EXPECT_NEAR(f->bytes_sent(), 20.0, 1e-6);
    EXPECT_NEAR(f->rate_bps, 10.0, 1e-9);
    // The index followed the move: the flow is still on its (new) links.
    for (const LinkId l : f->path.links) {
      EXPECT_EQ(fs.flows_on_link(l).size(), 1u);
    }
  });
  events.schedule_at(sim::SimTime::from_seconds(2.5), [&] {
    // Progress keeps accruing on the new placement: 25 bytes left at 10/s.
    fs.sync();
    EXPECT_NEAR(fs.find(id)->remaining_bytes, 25.0, 1e-6);
  });
  events.run();
  EXPECT_EQ(fs.active_flow_count(), 0u);
}

TEST(FlowSim, CancelLiftsSharersThroughDirtySet) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  // Two flows share only the a->s1 access link (10/s): 5/s each.
  const FlowId f1 = fs.start_flow(d.path(d.a, d.b), 1000.0, nullptr);
  const FlowId f2 = fs.start_flow(d.path(d.a, d.c), 1000.0, nullptr);
  events.schedule_at(sim::SimTime::from_seconds(1.0), [&] {
    fs.sync();
    EXPECT_NEAR(fs.find(f1)->rate_bps, 5.0, 1e-9);
    EXPECT_NEAR(fs.find(f2)->rate_bps, 5.0, 1e-9);
    EXPECT_NEAR(fs.find(f1)->bytes_sent(), 5.0, 1e-6);
    // Cancel f2: f1's dirty-set recompute must lift it to the full 10/s.
    EXPECT_TRUE(fs.cancel(f2));
    EXPECT_NEAR(fs.find(f1)->rate_bps, 10.0, 1e-9);
    EXPECT_TRUE(fs.rates_match_full_solve());
  });
  events.run_until(sim::SimTime::from_seconds(2.0));
}

TEST(FlowSim, FlowsOnLinkReturnsIdOrderViaIndex) {
  Dumbbell d;
  sim::EventQueue events;
  FlowSim fs(events, d.topo);
  const LinkId shared = d.topo.find_link(d.s1, d.s2);
  const FlowId f1 = fs.start_flow(d.path(d.a, d.b), 100.0, nullptr);
  const FlowId f2 = fs.start_flow(d.path(d.c, d.b), 100.0, nullptr);
  const auto on = fs.flows_on_link(shared);
  ASSERT_EQ(on.size(), 2u);
  EXPECT_EQ(on[0]->id, f1);
  EXPECT_EQ(on[1]->id, f2);
  EXPECT_LT(on[0]->id, on[1]->id);
  EXPECT_TRUE(fs.flows_on_link(d.topo.find_link(d.s2, d.s1)).empty());
}

// Twin simulators, one incremental and one full-solve, driven through an
// identical random start/cancel/complete schedule on the 3-tier fabric:
// allocations must agree at every step and both must match a from-scratch
// progressive-filling solve.
TEST(FlowSim, IncrementalMatchesFullUnderRandomChurn) {
  const ThreeTier tree = build_three_tier(ThreeTierConfig{});
  Rng rng(1234);

  sim::EventQueue ev_inc, ev_full;
  FlowSim::Config inc_cfg, full_cfg;
  inc_cfg.incremental = true;
  full_cfg.incremental = false;
  FlowSim inc(ev_inc, tree.topo, inc_cfg);
  FlowSim full(ev_full, tree.topo, full_cfg);

  std::vector<std::pair<FlowId, FlowId>> live;  // (incremental id, full id)
  for (int step = 0; step < 300; ++step) {
    const bool do_cancel = !live.empty() && rng.bernoulli(0.4);
    if (do_cancel) {
      const std::size_t i = rng.next_below(live.size());
      EXPECT_TRUE(inc.cancel(live[i].first));
      EXPECT_TRUE(full.cancel(live[i].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
      NodeId dst = src;
      while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
      const auto paths = shortest_paths(tree.topo, src, dst);
      const Path& p = paths[rng.next_below(paths.size())];
      live.emplace_back(inc.start_flow(p, 1e9, nullptr),
                        full.start_flow(p, 1e9, nullptr));
    }
    ASSERT_TRUE(inc.rates_match_full_solve()) << "step " << step;
    for (const auto& [ii, fi] : live) {
      const FlowRecord* a = inc.find(ii);
      const FlowRecord* b = full.find(fi);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_NEAR(a->rate_bps, b->rate_bps, 1e-6 * (1.0 + b->rate_bps))
          << "step " << step;
    }
  }
}

// Same twin-simulator setup, with link faults mixed into the churn: random
// link-down (killing crossing flows on both sims), link-up, and capacity
// degradation. The incremental allocation must track the full solve through
// every transition, and both sims must kill exactly the same flows.
TEST(FlowSim, IncrementalMatchesFullUnderLinkFaultChurn) {
  const ThreeTier tree = build_three_tier(ThreeTierConfig{});
  Rng rng(4321);

  sim::EventQueue ev_inc, ev_full;
  FlowSim::Config inc_cfg, full_cfg;
  inc_cfg.incremental = true;
  full_cfg.incremental = false;
  FlowSim inc(ev_inc, tree.topo, inc_cfg);
  FlowSim full(ev_full, tree.topo, full_cfg);

  std::set<FlowId> killed_inc, killed_full;
  inc.set_kill_handler([&](const FlowRecord& r) { killed_inc.insert(r.id); });
  full.set_kill_handler([&](const FlowRecord& r) { killed_full.insert(r.id); });

  // Faultable links: switch-switch only, so host uplinks never strand a host.
  std::vector<LinkId> faultable;
  for (LinkId l = 0; l < tree.topo.link_count(); ++l) {
    const Link& link = tree.topo.link(l);
    if (tree.topo.node(link.from).kind != NodeKind::kHost &&
        tree.topo.node(link.to).kind != NodeKind::kHost) {
      faultable.push_back(l);
    }
  }
  std::vector<LinkId> down;

  std::vector<std::pair<FlowId, FlowId>> live;  // (incremental id, full id)
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.12) {  // fail a random up link
      const LinkId l = faultable[rng.next_below(faultable.size())];
      if (inc.link_up(l)) {
        EXPECT_TRUE(inc.fail_link(l));
        EXPECT_TRUE(full.fail_link(l));
        down.push_back(l);
      }
    } else if (dice < 0.24 && !down.empty()) {  // repair one
      const std::size_t i = rng.next_below(down.size());
      EXPECT_TRUE(inc.restore_link(down[i]));
      EXPECT_TRUE(full.restore_link(down[i]));
      down.erase(down.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (dice < 0.32) {  // degrade or restore capacity on an up link
      const LinkId l = faultable[rng.next_below(faultable.size())];
      if (inc.link_up(l)) {
        const double factor = rng.bernoulli(0.5) ? 0.5 : 1.0;
        inc.set_link_capacity_factor(l, factor);
        full.set_link_capacity_factor(l, factor);
      }
    } else if (!live.empty() && rng.bernoulli(0.35)) {  // cancel
      const std::size_t i = rng.next_below(live.size());
      EXPECT_TRUE(inc.cancel(live[i].first));
      EXPECT_TRUE(full.cancel(live[i].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {  // start a flow over a currently-alive path, if any
      const NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
      NodeId dst = src;
      while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
      const auto paths = shortest_paths(tree.topo, src, dst);
      std::vector<const Path*> alive;
      for (const Path& p : paths) {
        if (inc.path_alive(p)) alive.push_back(&p);
      }
      if (!alive.empty()) {
        const Path& p = *alive[rng.next_below(alive.size())];
        live.emplace_back(inc.start_flow(p, 1e9, nullptr),
                          full.start_flow(p, 1e9, nullptr));
      }
    }

    // Purge pairs where a fault killed the flow — on both sims, identically.
    std::erase_if(live, [&](const std::pair<FlowId, FlowId>& pair) {
      const bool ki = killed_inc.count(pair.first) > 0;
      const bool kf = killed_full.count(pair.second) > 0;
      EXPECT_EQ(ki, kf) << "twin sims disagree on which flows a fault kills";
      return ki || kf;
    });

    ASSERT_TRUE(inc.rates_match_full_solve()) << "step " << step;
    for (const auto& [ii, fi] : live) {
      const FlowRecord* a = inc.find(ii);
      const FlowRecord* b = full.find(fi);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_NEAR(a->rate_bps, b->rate_bps, 1e-6 * (1.0 + b->rate_bps))
          << "step " << step;
    }
  }
  EXPECT_FALSE(killed_inc.empty()) << "churn never exercised a fault kill";
}

// Satellite guardrails: interrogating the utilization or capacity of a link
// id that does not exist must abort loudly instead of reading garbage.
TEST(FlowSimDeathTest, UnknownLinkLookupsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const ThreeTier tree = build_three_tier(ThreeTierConfig{});
  sim::EventQueue events;
  FlowSim fs(events, tree.topo);
  const LinkId bogus = tree.topo.link_count() + 7;
  EXPECT_DEATH((void)fs.link_utilization(bogus), "assertion failed");
  EXPECT_DEATH((void)fs.link_capacity(bogus), "assertion failed");
  EXPECT_DEATH(fs.set_link_capacity_factor(0, 0.0), "assertion failed");
}

// Property sweep on the real 3-tier fabric: random flows between random
// hosts; every flow must deliver exactly its size, per-link counters must
// equal the sum of sizes of flows crossing that link, and completion times
// must be bounded below by size / bottleneck-capacity.
class FlowSimConservation : public ::testing::TestWithParam<int> {};

TEST_P(FlowSimConservation, BytesAreConserved) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const ThreeTier tree = build_three_tier(ThreeTierConfig{});
  sim::EventQueue events;
  FlowSim fs(events, tree.topo);

  struct Planned {
    Path path;
    double bytes;
    double start;
    double completed = -1.0;
  };
  std::vector<Planned> plan;
  const std::size_t n_flows = 5 + rng.next_below(20);
  for (std::size_t i = 0; i < n_flows; ++i) {
    const NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto paths = shortest_paths(tree.topo, src, dst);
    Planned p;
    p.path = paths[rng.next_below(paths.size())];
    p.bytes = rng.uniform(1e6, 3e8);
    p.start = rng.uniform(0.0, 5.0);
    plan.push_back(std::move(p));
  }

  for (std::size_t i = 0; i < plan.size(); ++i) {
    events.schedule_at(sim::SimTime::from_seconds(plan[i].start), [&, i] {
      fs.start_flow(plan[i].path, plan[i].bytes,
                    [&, i](const FlowRecord& f) {
                      EXPECT_NEAR(f.bytes_sent(), plan[i].bytes, 1e-2);
                      plan[i].completed = events.now().seconds();
                    });
    });
  }
  events.run();
  fs.sync();

  // Every flow finished, never faster than its bottleneck allows.
  std::vector<double> link_expected(tree.topo.link_count(), 0.0);
  for (const Planned& p : plan) {
    ASSERT_GE(p.completed, 0.0);
    double bottleneck = kInfiniteDemand;
    for (const LinkId l : p.path.links) {
      bottleneck = std::min(bottleneck, tree.topo.link(l).capacity_bps);
      link_expected[l] += p.bytes;
    }
    EXPECT_GE(p.completed - p.start, p.bytes / bottleneck - 1e-6);
  }
  // Link counters: cumulative bytes == sum of crossing flows' sizes.
  for (LinkId l = 0; l < tree.topo.link_count(); ++l) {
    EXPECT_NEAR(fs.link_tx_bytes(l), link_expected[l],
                1e-3 * (1.0 + link_expected[l]))
        << tree.topo.link(l).name;
  }
  EXPECT_EQ(fs.active_flow_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Random, FlowSimConservation, ::testing::Range(0, 20));

}  // namespace
}  // namespace mayflower::net
