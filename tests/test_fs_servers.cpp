// Focused server tests: dataserver append/read semantics and disk
// persistence, nameserver RPC handling — below the full-cluster level.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>

#include "common/strings.hpp"
#include "fs/cluster.hpp"
#include "fs/dataserver.hpp"
#include "fs/nameserver.hpp"

namespace mayflower::fs {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo),
        transport_(events_, sim::SimTime::from_micros(100)) {}

  FileInfo make_info(const std::string& name, std::uint64_t chunk_size,
                     std::vector<net::NodeId> replicas) {
    FileInfo info;
    info.uuid = Uuid::generate(rng_);
    info.name = name;
    info.chunk_size = chunk_size;
    info.replicas = std::move(replicas);
    return info;
  }

  void provision(const FileInfo& info) {
    for (const net::NodeId rep : info.replicas) {
      bool acked = false;
      transport_.call(0, rep, Method::kCreateReplica,
                      CreateReplicaReq{info}.encode(),
                      [&](Status s, Bytes) {
                        EXPECT_EQ(s, Status::kOk);
                        acked = true;
                      });
      events_.run();
      EXPECT_TRUE(acked);
    }
  }

  AppendResp append_to_primary(const FileInfo& info, const ExtentList& data) {
    AppendReq req;
    req.file = info.uuid;
    req.data = data;
    AppendResp out;
    bool done = false;
    transport_.call(1, info.primary(), Method::kAppend, req.encode(),
                    [&](Status s, Bytes payload) {
                      EXPECT_EQ(s, Status::kOk);
                      Reader r(payload);
                      out = AppendResp::decode(r);
                      done = true;
                    });
    events_.run();
    EXPECT_TRUE(done);
    return out;
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
  SimTransport transport_;
  Rng rng_{77};
};

TEST_F(ServerTest, AppendAppliesLocallyAndRelays) {
  Dataserver primary(transport_, fabric_, tree_.hosts[0], {}, 1);
  Dataserver secondary(transport_, fabric_, tree_.hosts[20], {}, 2);
  const FileInfo info =
      make_info("f", 1000, {tree_.hosts[0], tree_.hosts[20]});
  provision(info);

  const AppendResp resp =
      append_to_primary(info, ExtentList(Extent::pattern(1, 1500)));
  EXPECT_EQ(resp.offset, 0u);
  EXPECT_EQ(resp.new_size, 1500u);
  EXPECT_EQ(primary.file_size(info.uuid), 1500u);
  EXPECT_EQ(secondary.file_size(info.uuid), 1500u);
  EXPECT_EQ(primary.appends_served(), 1u);
}

TEST_F(ServerTest, AppendToNonPrimaryRejected) {
  Dataserver primary(transport_, fabric_, tree_.hosts[0], {}, 1);
  Dataserver secondary(transport_, fabric_, tree_.hosts[20], {}, 2);
  const FileInfo info =
      make_info("f", 1000, {tree_.hosts[0], tree_.hosts[20]});
  provision(info);

  AppendReq req;
  req.file = info.uuid;
  req.data = ExtentList(Extent::pattern(1, 10));
  Status seen = Status::kOk;
  transport_.call(1, tree_.hosts[20], Method::kAppend, req.encode(),
                  [&](Status s, Bytes) { seen = s; });
  events_.run();
  EXPECT_EQ(seen, Status::kNotPrimary);
}

TEST_F(ServerTest, DuplicateRelayIsIdempotent) {
  Dataserver secondary(transport_, fabric_, tree_.hosts[20], {}, 2);
  const FileInfo info = make_info("f", 1000, {tree_.hosts[0], tree_.hosts[20]});
  bool acked = false;
  transport_.call(0, tree_.hosts[20], Method::kCreateReplica,
                  CreateReplicaReq{info}.encode(),
                  [&](Status, Bytes) { acked = true; });
  events_.run();
  ASSERT_TRUE(acked);

  AppendRelayReq relay;
  relay.file = info.uuid;
  relay.offset = 0;
  relay.data = ExtentList(Extent::pattern(1, 100));
  for (int i = 0; i < 2; ++i) {
    Status seen = Status::kBadRequest;
    transport_.call(0, tree_.hosts[20], Method::kAppendRelay, relay.encode(),
                    [&](Status s, Bytes) { seen = s; });
    events_.run();
    EXPECT_EQ(seen, Status::kOk) << "delivery " << i;
  }
  EXPECT_EQ(secondary.file_size(info.uuid), 100u);
}

TEST_F(ServerTest, RelayWithGapRejected) {
  Dataserver secondary(transport_, fabric_, tree_.hosts[20], {}, 2);
  const FileInfo info = make_info("f", 1000, {tree_.hosts[0], tree_.hosts[20]});
  transport_.call(0, tree_.hosts[20], Method::kCreateReplica,
                  CreateReplicaReq{info}.encode(), nullptr);
  events_.run();

  AppendRelayReq relay;
  relay.file = info.uuid;
  relay.offset = 500;  // hole: nothing before it
  relay.data = ExtentList(Extent::pattern(1, 100));
  Status seen = Status::kOk;
  transport_.call(0, tree_.hosts[20], Method::kAppendRelay, relay.encode(),
                  [&](Status s, Bytes) { seen = s; });
  events_.run();
  EXPECT_EQ(seen, Status::kBadRequest);
}

TEST_F(ServerTest, QueuedAppendsServiceOneAtATime) {
  Dataserver primary(transport_, fabric_, tree_.hosts[0], {}, 1);
  Dataserver secondary(transport_, fabric_, tree_.hosts[20], {}, 2);
  const FileInfo info = make_info("f", 1000, {tree_.hosts[0], tree_.hosts[20]});
  provision(info);

  // Fire three appends back to back without waiting.
  std::vector<std::uint64_t> offsets;
  for (int i = 0; i < 3; ++i) {
    AppendReq req;
    req.file = info.uuid;
    req.data = ExtentList(Extent::pattern(static_cast<std::uint64_t>(i), 200));
    transport_.call(1, info.primary(), Method::kAppend, req.encode(),
                    [&](Status s, Bytes payload) {
                      ASSERT_EQ(s, Status::kOk);
                      Reader r(payload);
                      offsets.push_back(AppendResp::decode(r).offset);
                    });
  }
  events_.run();
  ASSERT_EQ(offsets.size(), 3u);
  // FIFO atomic appends: offsets are 0, 200, 400 in submission order.
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 200, 400}));
  EXPECT_EQ(secondary.file_size(info.uuid), 600u);
}

TEST_F(ServerTest, ReadReturnsSliceAndFileSize) {
  Dataserver primary(transport_, fabric_, tree_.hosts[0], {}, 1);
  const FileInfo info = make_info("f", 1000, {tree_.hosts[0]});
  provision(info);
  append_to_primary(info, ExtentList(Extent::pattern(5, 2000)));

  ReadReq req;
  req.file = info.uuid;
  req.offset = 500;
  req.length = 300;
  bool done = false;
  transport_.call(1, tree_.hosts[0], Method::kReadFile, req.encode(),
                  [&](Status s, Bytes payload) {
                    ASSERT_EQ(s, Status::kOk);
                    Reader r(payload);
                    const ReadResp resp = ReadResp::decode(r);
                    EXPECT_EQ(resp.file_size, 2000u);
                    EXPECT_EQ(resp.data.size(), 300u);
                    EXPECT_TRUE(resp.data.content_equals(
                        ExtentList(Extent::pattern(5, 2000)).slice(500, 300)));
                    done = true;
                  });
  events_.run();
  EXPECT_TRUE(done);
}

TEST_F(ServerTest, DiskPersistenceSurvivesRestart) {
  const auto root = std::filesystem::temp_directory_path() /
                    strfmt("mayflower-ds-test-%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(root);

  DataserverConfig cfg;
  cfg.disk_root = root;
  Dataserver primary(transport_, fabric_, tree_.hosts[0], cfg, 1);
  const FileInfo info = make_info("persist-me", 1000, {tree_.hosts[0]});
  provision(info);
  const ExtentList payload(Extent::pattern(9, 2750));  // 3 chunk files
  append_to_primary(info, payload);

  // Crash + restart: reload from the UUID-named directory layout.
  primary.restart();
  EXPECT_EQ(primary.file_size(info.uuid), 2750u);
  const ExtentList* data = primary.file_data(info.uuid);
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->content_equals(payload));

  // Layout matches §3.3.2: a directory named by UUID, numbered chunk files.
  const auto dir = root / info.uuid.to_string();
  EXPECT_TRUE(std::filesystem::exists(dir / "meta"));
  EXPECT_TRUE(std::filesystem::exists(dir / "1"));
  EXPECT_TRUE(std::filesystem::exists(dir / "2"));
  EXPECT_TRUE(std::filesystem::exists(dir / "3"));
  std::filesystem::remove_all(root);
}

TEST_F(ServerTest, InMemoryRestartLosesState) {
  Dataserver primary(transport_, fabric_, tree_.hosts[0], {}, 1);
  const FileInfo info = make_info("volatile", 1000, {tree_.hosts[0]});
  provision(info);
  append_to_primary(info, ExtentList(Extent::pattern(1, 100)));
  primary.restart();
  EXPECT_EQ(primary.file_data(info.uuid), nullptr);
}

TEST_F(ServerTest, ScanFilesListsLocalReplicas) {
  Dataserver ds(transport_, fabric_, tree_.hosts[0], {}, 1);
  for (int i = 0; i < 3; ++i) {
    const FileInfo info =
        make_info(strfmt("file%d", i), 1000, {tree_.hosts[0]});
    provision(info);
  }
  bool done = false;
  transport_.call(9, tree_.hosts[0], Method::kScanFiles, Bytes{},
                  [&](Status s, Bytes payload) {
                    ASSERT_EQ(s, Status::kOk);
                    Reader r(payload);
                    const ScanFilesResp resp = ScanFilesResp::decode(r);
                    EXPECT_EQ(resp.files.size(), 3u);
                    done = true;
                  });
  events_.run();
  EXPECT_TRUE(done);
}


TEST_F(ServerTest, NameserverGracefulRestartKeepsMappings) {
  const auto kv_dir =
      std::filesystem::temp_directory_path() /
      strfmt("mayflower-ns-restart-%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(kv_dir);

  // Dataservers everywhere except the nameserver's own host so any random
  // placement can be provisioned.
  const net::NodeId ns = tree_.hosts[1];
  std::vector<std::unique_ptr<Dataserver>> servers;
  for (const net::NodeId h : tree_.hosts) {
    if (h == ns) continue;
    servers.push_back(
        std::make_unique<Dataserver>(transport_, fabric_, h, DataserverConfig{}, h));
  }
  NameserverConfig cfg;
  cfg.kv_dir = kv_dir;
  cfg.chunk_size = 1000;
  {
    Nameserver nameserver(transport_, ns, tree_, cfg, 42);
    CreateFileReq req;
    req.name = "durable";
    req.replication = 1;
    bool done = false;
    transport_.call(tree_.hosts[2], ns, Method::kCreateFile, req.encode(),
                    [&](Status s, Bytes) {
                      EXPECT_EQ(s, Status::kOk);
                      done = true;
                    });
    events_.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(nameserver.file_count(), 1u);
  }  // graceful shutdown: WAL flushed, handler unbound

  Nameserver reborn(transport_, ns, tree_, cfg, 43);
  EXPECT_EQ(reborn.file_count(), 1u);
  const auto info = reborn.lookup("durable");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "durable");
  EXPECT_EQ(info->replicas.size(), 1u);
  std::filesystem::remove_all(kv_dir);
}

TEST_F(ServerTest, NameserverListAndStatRpcs) {
  const net::NodeId ns_host = tree_.hosts[1];
  std::vector<std::unique_ptr<Dataserver>> servers;
  for (const net::NodeId h : tree_.hosts) {
    if (h == ns_host) continue;
    servers.push_back(
        std::make_unique<Dataserver>(transport_, fabric_, h, DataserverConfig{}, h));
  }
  const auto kv_dir =
      std::filesystem::temp_directory_path() /
      strfmt("mayflower-ns-list-%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(kv_dir);
  NameserverConfig cfg;
  cfg.kv_dir = kv_dir;
  Nameserver nameserver(transport_, tree_.hosts[1], tree_, cfg, 7);

  for (const char* name : {"b-file", "a-file", "c-file"}) {
    CreateFileReq req;
    req.name = name;
    req.replication = 1;
    transport_.call(tree_.hosts[2], tree_.hosts[1], Method::kCreateFile,
                    req.encode(), nullptr);
  }
  events_.run();

  bool listed = false;
  transport_.call(tree_.hosts[2], tree_.hosts[1], Method::kListFiles, Bytes{},
                  [&](Status s, Bytes payload) {
                    ASSERT_EQ(s, Status::kOk);
                    Reader r(payload);
                    const ListFilesResp resp = ListFilesResp::decode(r);
                    ASSERT_EQ(resp.names.size(), 3u);
                    // Key order: lexicographic.
                    EXPECT_EQ(resp.names[0], "a-file");
                    EXPECT_EQ(resp.names[2], "c-file");
                    listed = true;
                  });
  events_.run();
  EXPECT_TRUE(listed);
  std::filesystem::remove_all(kv_dir);
}

// --- batched Flowserver RPC -------------------------------------------------

TEST_F(ServerTest, SelectReplicasBatchPlansEveryReadInOneRpc) {
  flowserver::Flowserver server(fabric_, {});
  const net::NodeId controller = tree_.hosts[47];
  FlowserverService service(transport_, controller, server);
  RpcPlanner planner(transport_, controller);

  std::vector<SelectReplicasReq> reads;
  for (std::size_t i = 0; i < 3; ++i) {
    SelectReplicasReq one;
    one.client = tree_.hosts[i];
    one.replicas = {tree_.hosts[16 + 4 * i]};
    one.bytes = 64e6;
    reads.push_back(one);
  }
  bool done = false;
  planner.plan_batch(
      tree_.hosts[0], reads,
      [&](Status s, std::vector<std::vector<policy::ReadAssignment>> plans) {
        ASSERT_EQ(s, Status::kOk);
        ASSERT_EQ(plans.size(), 3u);
        for (std::size_t i = 0; i < plans.size(); ++i) {
          ASSERT_FALSE(plans[i].empty());
          // plans[i] answers reads[i]: the right replica, a path ending at
          // the right client, and an installed cookie.
          for (const auto& a : plans[i]) {
            EXPECT_EQ(a.replica, reads[i].replicas[0]);
            EXPECT_EQ(a.path.nodes.back(), reads[i].client);
            fabric_.start_flow(a.cookie, a.path, a.bytes, nullptr);
          }
        }
        done = true;
      });
  events_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(service.requests_served(), 3u);
}

TEST_F(ServerTest, SelectReplicasBatchMarksUnreachableReadsEmpty) {
  flowserver::Flowserver server(fabric_, {});
  const net::NodeId controller = tree_.hosts[47];
  FlowserverService service(transport_, controller, server);
  RpcPlanner planner(transport_, controller);

  // Cut off the first read's only replica; the second must still plan.
  const net::NodeId dead = tree_.hosts[16];
  fabric_.fail_link(tree_.host_uplink(dead));
  fabric_.fail_link(tree_.host_downlink(dead));

  std::vector<SelectReplicasReq> reads(2);
  reads[0].client = tree_.hosts[0];
  reads[0].replicas = {dead};
  reads[0].bytes = 1e6;
  reads[1].client = tree_.hosts[1];
  reads[1].replicas = {tree_.hosts[32]};
  reads[1].bytes = 1e6;

  bool done = false;
  planner.plan_batch(
      tree_.hosts[0], reads,
      [&](Status s, std::vector<std::vector<policy::ReadAssignment>> plans) {
        ASSERT_EQ(s, Status::kOk);  // the batch succeeds as a whole
        ASSERT_EQ(plans.size(), 2u);
        EXPECT_TRUE(plans[0].empty());  // per-read kUnavailable
        ASSERT_FALSE(plans[1].empty());
        EXPECT_EQ(plans[1][0].replica, tree_.hosts[32]);
        done = true;
      });
  events_.run();
  EXPECT_TRUE(done);
}

TEST_F(ServerTest, SelectReplicasBatchRejectsMalformedReads) {
  flowserver::Flowserver server(fabric_, {});
  const net::NodeId controller = tree_.hosts[47];
  FlowserverService service(transport_, controller, server);
  RpcPlanner planner(transport_, controller);

  // An empty batch and a batch containing a zero-byte read both bounce.
  for (const bool with_bad_read : {false, true}) {
    std::vector<SelectReplicasReq> reads;
    if (with_bad_read) {
      SelectReplicasReq bad;
      bad.client = tree_.hosts[0];
      bad.replicas = {tree_.hosts[16]};
      bad.bytes = 0.0;
      reads.push_back(bad);
    }
    Status seen = Status::kOk;
    planner.plan_batch(
        tree_.hosts[0], reads,
        [&](Status s, std::vector<std::vector<policy::ReadAssignment>>) {
          seen = s;
        });
    events_.run();
    EXPECT_EQ(seen, Status::kBadRequest);
  }
}

}  // namespace
}  // namespace mayflower::fs
