#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mayflower::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})), rng_(11) {}

  net::ThreeTier tree_;
  Rng rng_;
};

TEST_F(WorkloadTest, PlacementRespectsFaultDomains) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto replicas = Catalog::place_replicas(tree_, 3, rng_);
    ASSERT_EQ(replicas.size(), 3u);
    // All distinct racks.
    std::set<int> racks;
    for (const net::NodeId r : replicas) {
      racks.insert(tree_.rack_of(r));
    }
    EXPECT_EQ(racks.size(), 3u);
    // Second replica shares the primary's pod; third is in a different pod.
    EXPECT_EQ(tree_.pod_of(replicas[1]), tree_.pod_of(replicas[0]));
    EXPECT_NE(tree_.pod_of(replicas[2]), tree_.pod_of(replicas[0]));
  }
}

TEST_F(WorkloadTest, PrimaryIsRoughlyUniform) {
  std::vector<int> counts(tree_.hosts.size(), 0);
  constexpr int kTrials = 64000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto replicas = Catalog::place_replicas(tree_, 3, rng_);
    const auto it = std::find(tree_.hosts.begin(), tree_.hosts.end(),
                              replicas[0]);
    ++counts[static_cast<std::size_t>(it - tree_.hosts.begin())];
  }
  const double expected = kTrials / static_cast<double>(tree_.hosts.size());
  for (const int c : counts) EXPECT_NEAR(c, expected, expected * 0.25);
}

TEST_F(WorkloadTest, CatalogBuildsRequestedFiles) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 37}, rng_);
  EXPECT_EQ(catalog.size(), 37u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.file(i).id, i);
    EXPECT_DOUBLE_EQ(catalog.file(i).bytes, 256e6);
    EXPECT_EQ(catalog.file(i).replicas.size(), 3u);
  }
}

TEST_F(WorkloadTest, ClientNeverLandsOnAReplica) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 20}, rng_);
  const Locality loc{0.5, 0.3};
  for (int trial = 0; trial < 500; ++trial) {
    const FileMeta& f = catalog.file(rng_.next_below(catalog.size()));
    const net::NodeId client = place_client(tree_, f, loc, rng_);
    EXPECT_EQ(std::find(f.replicas.begin(), f.replicas.end(), client),
              f.replicas.end());
  }
}

TEST_F(WorkloadTest, LocalityBucketsMatchProbabilities) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 50}, rng_);
  const Locality loc{0.5, 0.3};
  int same_rack = 0, same_pod = 0, other = 0;
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const FileMeta& f = catalog.file(rng_.next_below(catalog.size()));
    const net::NodeId client = place_client(tree_, f, loc, rng_);
    const net::NodeId primary = f.primary();
    if (tree_.rack_of(client) == tree_.rack_of(primary)) {
      ++same_rack;
    } else if (tree_.pod_of(client) == tree_.pod_of(primary)) {
      ++same_pod;
    } else {
      ++other;
    }
  }
  EXPECT_NEAR(same_rack / double(kTrials), 0.5, 0.02);
  EXPECT_NEAR(same_pod / double(kTrials), 0.3, 0.02);
  EXPECT_NEAR(other / double(kTrials), 0.2, 0.02);
}

TEST_F(WorkloadTest, JobsArriveAtTheConfiguredRate) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 50}, rng_);
  GeneratorConfig cfg;
  cfg.lambda_per_server = 0.07;
  cfg.total_jobs = 20000;
  const auto jobs = generate_jobs(tree_, catalog, cfg, rng_);
  ASSERT_EQ(jobs.size(), cfg.total_jobs);
  // System rate = 0.07 * 64 = 4.48 jobs/s.
  const double measured = jobs.size() / jobs.back().arrival_sec;
  EXPECT_NEAR(measured, 4.48, 0.15);
  // Arrival times strictly increase; ids are sequential.
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GT(jobs[i].arrival_sec, jobs[i - 1].arrival_sec);
    EXPECT_EQ(jobs[i].id, i);
  }
}

TEST_F(WorkloadTest, FilePopularityIsZipfSkewed) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 100}, rng_);
  GeneratorConfig cfg;
  cfg.total_jobs = 50000;
  const auto jobs = generate_jobs(tree_, catalog, cfg, rng_);
  std::vector<int> counts(catalog.size(), 0);
  for (const auto& j : jobs) ++counts[j.file];
  // Rank-0 file must dominate; expected mass ratio pmf(0)/pmf(9) = 10^1.1.
  EXPECT_GT(counts[0], counts[9] * 6);
  // Every rank is still reachable in expectation for 50k draws... at least
  // the head of the distribution is.
  EXPECT_GT(counts[1], 0);
}

TEST_F(WorkloadTest, SameSeedSameTrace) {
  const Catalog c1(tree_, CatalogConfig{.num_files = 10}, rng_);
  Rng a(123), b(123);
  GeneratorConfig cfg;
  cfg.total_jobs = 100;
  const auto j1 = generate_jobs(tree_, c1, cfg, a);
  const auto j2 = generate_jobs(tree_, c1, cfg, b);
  for (std::size_t i = 0; i < j1.size(); ++i) {
    EXPECT_EQ(j1[i].file, j2[i].file);
    EXPECT_EQ(j1[i].client, j2[i].client);
    EXPECT_DOUBLE_EQ(j1[i].arrival_sec, j2[i].arrival_sec);
  }
}

}  // namespace
}  // namespace mayflower::workload
