#include "workload/generator.hpp"
#include "workload/meta_workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mayflower::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})), rng_(11) {}

  net::ThreeTier tree_;
  Rng rng_;
};

TEST_F(WorkloadTest, PlacementRespectsFaultDomains) {
  for (int trial = 0; trial < 200; ++trial) {
    const auto replicas = Catalog::place_replicas(tree_, 3, rng_);
    ASSERT_EQ(replicas.size(), 3u);
    // All distinct racks.
    std::set<int> racks;
    for (const net::NodeId r : replicas) {
      racks.insert(tree_.rack_of(r));
    }
    EXPECT_EQ(racks.size(), 3u);
    // Second replica shares the primary's pod; third is in a different pod.
    EXPECT_EQ(tree_.pod_of(replicas[1]), tree_.pod_of(replicas[0]));
    EXPECT_NE(tree_.pod_of(replicas[2]), tree_.pod_of(replicas[0]));
  }
}

TEST_F(WorkloadTest, PrimaryIsRoughlyUniform) {
  std::vector<int> counts(tree_.hosts.size(), 0);
  constexpr int kTrials = 64000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto replicas = Catalog::place_replicas(tree_, 3, rng_);
    const auto it = std::find(tree_.hosts.begin(), tree_.hosts.end(),
                              replicas[0]);
    ++counts[static_cast<std::size_t>(it - tree_.hosts.begin())];
  }
  const double expected = kTrials / static_cast<double>(tree_.hosts.size());
  for (const int c : counts) EXPECT_NEAR(c, expected, expected * 0.25);
}

TEST_F(WorkloadTest, CatalogBuildsRequestedFiles) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 37}, rng_);
  EXPECT_EQ(catalog.size(), 37u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.file(i).id, i);
    EXPECT_DOUBLE_EQ(catalog.file(i).bytes, 256e6);
    EXPECT_EQ(catalog.file(i).replicas.size(), 3u);
  }
}

TEST_F(WorkloadTest, ClientNeverLandsOnAReplica) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 20}, rng_);
  const Locality loc{0.5, 0.3};
  for (int trial = 0; trial < 500; ++trial) {
    const FileMeta& f = catalog.file(rng_.next_below(catalog.size()));
    const net::NodeId client = place_client(tree_, f, loc, rng_);
    EXPECT_EQ(std::find(f.replicas.begin(), f.replicas.end(), client),
              f.replicas.end());
  }
}

TEST_F(WorkloadTest, LocalityBucketsMatchProbabilities) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 50}, rng_);
  const Locality loc{0.5, 0.3};
  int same_rack = 0, same_pod = 0, other = 0;
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const FileMeta& f = catalog.file(rng_.next_below(catalog.size()));
    const net::NodeId client = place_client(tree_, f, loc, rng_);
    const net::NodeId primary = f.primary();
    if (tree_.rack_of(client) == tree_.rack_of(primary)) {
      ++same_rack;
    } else if (tree_.pod_of(client) == tree_.pod_of(primary)) {
      ++same_pod;
    } else {
      ++other;
    }
  }
  EXPECT_NEAR(same_rack / double(kTrials), 0.5, 0.02);
  EXPECT_NEAR(same_pod / double(kTrials), 0.3, 0.02);
  EXPECT_NEAR(other / double(kTrials), 0.2, 0.02);
}

TEST_F(WorkloadTest, JobsArriveAtTheConfiguredRate) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 50}, rng_);
  GeneratorConfig cfg;
  cfg.lambda_per_server = 0.07;
  cfg.total_jobs = 20000;
  const auto jobs = generate_jobs(tree_, catalog, cfg, rng_);
  ASSERT_EQ(jobs.size(), cfg.total_jobs);
  // System rate = 0.07 * 64 = 4.48 jobs/s.
  const double measured = jobs.size() / jobs.back().arrival_sec;
  EXPECT_NEAR(measured, 4.48, 0.15);
  // Arrival times strictly increase; ids are sequential.
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GT(jobs[i].arrival_sec, jobs[i - 1].arrival_sec);
    EXPECT_EQ(jobs[i].id, i);
  }
}

TEST_F(WorkloadTest, FilePopularityIsZipfSkewed) {
  const Catalog catalog(tree_, CatalogConfig{.num_files = 100}, rng_);
  GeneratorConfig cfg;
  cfg.total_jobs = 50000;
  const auto jobs = generate_jobs(tree_, catalog, cfg, rng_);
  std::vector<int> counts(catalog.size(), 0);
  for (const auto& j : jobs) ++counts[j.file];
  // Rank-0 file must dominate; expected mass ratio pmf(0)/pmf(9) = 10^1.1.
  EXPECT_GT(counts[0], counts[9] * 6);
  // Every rank is still reachable in expectation for 50k draws... at least
  // the head of the distribution is.
  EXPECT_GT(counts[1], 0);
}

TEST_F(WorkloadTest, SameSeedSameTrace) {
  const Catalog c1(tree_, CatalogConfig{.num_files = 10}, rng_);
  Rng a(123), b(123);
  GeneratorConfig cfg;
  cfg.total_jobs = 100;
  const auto j1 = generate_jobs(tree_, c1, cfg, a);
  const auto j2 = generate_jobs(tree_, c1, cfg, b);
  for (std::size_t i = 0; i < j1.size(); ++i) {
    EXPECT_EQ(j1[i].file, j2[i].file);
    EXPECT_EQ(j1[i].client, j2[i].client);
    EXPECT_DOUBLE_EQ(j1[i].arrival_sec, j2[i].arrival_sec);
  }
}

// --- metadata-heavy workload (workload/meta_workload.hpp) ---------------

TEST(MetaWorkload, TraceIsDeterministicForAGivenSeed) {
  MetaWorkloadConfig cfg;
  cfg.total_ops = 2000;
  cfg.path_space = 500;
  Rng a(42), b(42);
  const auto t1 = generate_meta_ops(cfg, a);
  const auto t2 = generate_meta_ops(cfg, b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].kind, t2[i].kind);
    EXPECT_EQ(t1[i].path, t2[i].path);
    EXPECT_DOUBLE_EQ(t1[i].arrival_sec, t2[i].arrival_sec);
  }
}

TEST(MetaWorkload, TraceReferencesOnlyLiveFiles) {
  MetaWorkloadConfig cfg;
  cfg.total_ops = 5000;
  cfg.path_space = 300;  // small space forces delete/recreate cycles
  Rng rng(7);
  const auto trace = generate_meta_ops(cfg, rng);
  ASSERT_EQ(trace.size(), cfg.total_ops);
  std::set<std::string> live;
  double last_arrival = 0.0;
  for (const MetaOp& op : trace) {
    EXPECT_GE(op.arrival_sec, last_arrival);  // arrival-ordered
    last_arrival = op.arrival_sec;
    switch (op.kind) {
      case MetaOpKind::kCreate:
        EXPECT_EQ(live.count(op.path), 0u) << "created a live path";
        live.insert(op.path);
        break;
      case MetaOpKind::kDelete:
        EXPECT_EQ(live.count(op.path), 1u) << "deleted a dead path";
        live.erase(op.path);
        break;
      case MetaOpKind::kLookup:
      case MetaOpKind::kAppend:
        EXPECT_EQ(live.count(op.path), 1u) << "referenced a dead path";
        break;
    }
  }
}

TEST(MetaWorkload, MixRatiosAreRoughlyHonored) {
  MetaWorkloadConfig cfg;
  cfg.total_ops = 20'000;
  cfg.path_space = 100'000;  // huge space: create never falls back
  Rng rng(3);
  const auto trace = generate_meta_ops(cfg, rng);
  double counts[4] = {0, 0, 0, 0};
  for (const MetaOp& op : trace) ++counts[static_cast<std::size_t>(op.kind)];
  const double n = static_cast<double>(cfg.total_ops);
  // The early empty-namespace create fallback skews a hair toward creates.
  EXPECT_NEAR(counts[0] / n, cfg.mix.create, 0.05);
  EXPECT_NEAR(counts[1] / n, cfg.mix.lookup, 0.05);
  EXPECT_NEAR(counts[2] / n, cfg.mix.del, 0.05);
  EXPECT_NEAR(counts[3] / n, cfg.mix.append, 0.05);
}

TEST(MetaWorkload, BurstyArrivalsKeepLongRunRateAndBunchOps) {
  MetaWorkloadConfig cfg;
  cfg.total_ops = 30'000;
  cfg.path_space = 100'000;
  cfg.ops_per_sec = 10'000.0;
  cfg.burst_factor = 8.0;
  cfg.burst_duty = 0.1;
  cfg.burst_len_sec = 0.02;
  Rng rng(5);
  const auto trace = generate_meta_ops(cfg, rng);
  const double span = trace.back().arrival_sec - trace.front().arrival_sec;
  const double realized_rate = static_cast<double>(trace.size()) / span;
  EXPECT_NEAR(realized_rate, cfg.ops_per_sec, cfg.ops_per_sec * 0.25);
  // Burstiness: the squared coefficient of variation of inter-arrival gaps
  // is 1 for plain Poisson and well above for an on/off modulated process.
  double mean = span / static_cast<double>(trace.size() - 1);
  double var = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double gap = trace[i].arrival_sec - trace[i - 1].arrival_sec - mean;
    var += gap * gap;
  }
  var /= static_cast<double>(trace.size() - 2);
  EXPECT_GT(var / (mean * mean), 2.0);
}

TEST(MetaWorkload, PathsFollowDirectoryLayout) {
  MetaWorkloadConfig cfg;
  cfg.dirs = 8;
  EXPECT_EQ(meta_path(cfg, 0), "d000/f0000000");
  EXPECT_EQ(meta_path(cfg, 13), "d005/f0000013");
  EXPECT_EQ(meta_path(cfg, 16), "d000/f0000016");
}

}  // namespace
}  // namespace mayflower::workload
