#include "net/shard_map.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/fat_tree.hpp"
#include "net/paths.hpp"
#include "net/tree.hpp"

namespace mayflower::net {
namespace {

TEST(ShardMap, DefaultIsSingleShard) {
  const ShardMap map;
  EXPECT_EQ(map.shard_count(), 1u);
  EXPECT_FALSE(map.sharded());
  EXPECT_EQ(map.shard_of_node(0), 0u);
  EXPECT_EQ(map.shard_of_node(12345), 0u);  // out of range -> catch-all
}

TEST(ShardMap, ByEdgeSwitchCoversThreeTier) {
  const ThreeTier t = build_three_tier(ThreeTierConfig{});
  const ShardMap map = ShardMap::by_edge_switch(t.topo);
  ASSERT_TRUE(map.sharded());
  // One shard per edge switch plus the catch-all shard 0.
  EXPECT_EQ(map.shard_count(), t.edge_switches.size() + 1);

  // Edge switches own distinct non-zero shards.
  std::set<std::uint32_t> edge_shards;
  for (const NodeId e : t.edge_switches) {
    const std::uint32_t s = map.shard_of_node(e);
    EXPECT_NE(s, 0u);
    edge_shards.insert(s);
  }
  EXPECT_EQ(edge_shards.size(), t.edge_switches.size());

  // Every host lands in its own edge switch's shard.
  for (const NodeId h : t.hosts) {
    EXPECT_EQ(map.shard_of_node(h), map.shard_of_node(t.edge_of_host(h)));
  }

  // Agg and core switches fall through to the catch-all.
  for (const auto& pod : t.agg_switches) {
    for (const NodeId a : pod) EXPECT_EQ(map.shard_of_node(a), 0u);
  }
  for (const NodeId c : t.core_switches) {
    EXPECT_EQ(map.shard_of_node(c), 0u);
  }
}

TEST(ShardMap, ByEdgeSwitchCoversFatTree) {
  const ThreeTier t = three_tier_from_fat_tree(FatTreeConfig{.k = 8});
  const ShardMap map = ShardMap::by_edge_switch(t.topo);
  EXPECT_EQ(map.shard_count(), 33u);  // 32 edge switches + catch-all
  for (const NodeId h : t.hosts) {
    EXPECT_EQ(map.shard_of_node(h), map.shard_of_node(t.edge_of_host(h)));
  }
}

TEST(ShardMap, ShardOfPathUsesSourceEndpoint) {
  const ThreeTier t = build_three_tier(ThreeTierConfig{});
  const ShardMap map = ShardMap::by_edge_switch(t.topo);
  // A cross-rack path is sharded by where it STARTS — the source's edge
  // switch — no matter which racks it crosses.
  const auto paths = shortest_paths(t.topo, t.hosts[0], t.hosts.back());
  ASSERT_FALSE(paths.empty());
  for (const Path& p : paths) {
    EXPECT_EQ(map.shard_of_path(p), map.shard_of_node(t.hosts[0]));
  }
  const auto reverse = shortest_paths(t.topo, t.hosts.back(), t.hosts[0]);
  for (const Path& p : reverse) {
    EXPECT_EQ(map.shard_of_path(p), map.shard_of_node(t.hosts.back()));
  }
}

TEST(ShardMap, UnshardedMapToleratesSyntheticPaths) {
  // Unit tests elsewhere build Path objects with empty node lists; the
  // default (single-shard) map must accept them without asserting.
  const ShardMap map;
  EXPECT_EQ(map.shard_of_path(Path{}), 0u);
}

}  // namespace
}  // namespace mayflower::net
