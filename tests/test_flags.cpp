#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace mayflower {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, KeyEqualsValue) {
  const Flags f = make({"--scheme=mayflower", "--lambda=0.07"});
  EXPECT_EQ(f.get_string("scheme", "x"), "mayflower");
  EXPECT_DOUBLE_EQ(f.get_double("lambda", 0.0), 0.07);
}

TEST(Flags, KeySpaceValue) {
  const Flags f = make({"--jobs", "500", "--scheme", "nearest-ecmp"});
  EXPECT_EQ(f.get_int("jobs", 0), 500);
  EXPECT_EQ(f.get_string("scheme", ""), "nearest-ecmp");
}

TEST(Flags, BareBooleanSwitch) {
  const Flags f = make({"--verbose", "--no-freeze", "--jobs=3"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_TRUE(f.get_bool("no-freeze"));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, BooleanValues) {
  const Flags f = make({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_FALSE(f.get_bool("b"));
  EXPECT_TRUE(f.get_bool("c"));
  EXPECT_FALSE(f.get_bool("d"));
}

TEST(Flags, Positional) {
  const Flags f = make({"input.txt", "--k=v", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, DoubleList) {
  const Flags f = make({"--locality=0.5,0.3,0.2"});
  const auto v = f.get_double_list("locality");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 0.2);
  EXPECT_TRUE(f.get_double_list("absent").empty());
}

TEST(Flags, BadNumberRecordsError) {
  const Flags f = make({"--jobs=abc"});
  EXPECT_EQ(f.get_int("jobs", 7), 7);
  ASSERT_EQ(f.errors().size(), 1u);
  EXPECT_NE(f.errors()[0].find("jobs"), std::string::npos);
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get_string("x", "def"), "def");
  EXPECT_EQ(f.get_int("x", -3), -3);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
}

TEST(Flags, Validate) {
  const Flags f = make({"--known=1", "--mystery=2"});
  std::string offender;
  EXPECT_FALSE(f.validate({"known"}, &offender));
  EXPECT_EQ(offender, "mystery");
  EXPECT_TRUE(f.validate({"known", "mystery"}, nullptr));
}

TEST(Flags, LastValueWins) {
  const Flags f = make({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

}  // namespace
}  // namespace mayflower
