// Tests for the sharded metadata plane (src/fs/meta/): shard map
// partitioning, the async commit engine, client-side routing, end-to-end
// sharded clusters, and shard failover with adoption-based recovery.
#include "fs/meta/plane.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "fs/cluster.hpp"
#include "fs/meta/async_commit.hpp"
#include "fs/meta/shard_map.hpp"

namespace mayflower::fs {
namespace {

using meta::Partition;
using meta::ShardMap;

// Runs the cluster until `flag` is set (callbacks set flags synchronously
// from the event loop).
void run_until_done(Cluster& cluster, const bool& flag,
                    double timeout_sec = 300.0) {
  while (!flag && !cluster.events().empty() &&
         cluster.events().now() < sim::SimTime::from_seconds(timeout_sec)) {
    cluster.events().step();
  }
  ASSERT_TRUE(flag) << "operation did not complete";
}

ClusterConfig sharded_config(std::size_t shards,
                             Partition partition = Partition::kHash) {
  ClusterConfig cfg;
  cfg.scheme = FsScheme::kNearestEcmp;
  cfg.meta_shards = shards;
  cfg.meta_partition = partition;
  cfg.client.replication = 3;
  cfg.seed = 7;
  return cfg;
}

// --- shard map ----------------------------------------------------------

TEST(ShardMapMeta, HashModeIsDeterministicAndSpreads) {
  ShardMap map;
  map.mode = Partition::kHash;
  map.owners = {101, 102, 103, 104};
  std::set<std::size_t> used;
  for (int i = 0; i < 200; ++i) {
    const std::string path = strfmt("d%03d/f%07d", i % 8, i);
    const std::size_t shard = map.shard_of_path(path);
    EXPECT_EQ(shard, map.shard_of_path(path));  // stable
    EXPECT_LT(shard, map.owners.size());
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u);  // 200 paths cover every shard
}

TEST(ShardMapMeta, SubtreeModeKeepsDirectoriesTogether) {
  ShardMap map;
  map.mode = Partition::kSubtree;
  map.owners = {11, 12, 13};
  for (int d = 0; d < 16; ++d) {
    const std::size_t shard =
        map.shard_of_path(strfmt("d%03d/f0000000", d));
    for (int f = 1; f < 10; ++f) {
      EXPECT_EQ(map.shard_of_path(strfmt("d%03d/f%07d", d, f)), shard)
          << "directory d" << d << " split across shards";
    }
  }
}

TEST(ShardMapMeta, EncodeDecodeRoundTrips) {
  ShardMap map;
  map.mode = Partition::kSubtree;
  map.epoch = 42;
  map.owners = {5, 9, 13};
  Writer w;
  map.encode(w);
  Bytes bytes = w.take();
  Reader r(bytes);
  const ShardMap back = ShardMap::decode(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back.mode, Partition::kSubtree);
  EXPECT_EQ(back.epoch, 42u);
  EXPECT_EQ(back.owners, map.owners);
}

// --- async commit engine ------------------------------------------------

TEST(AsyncCommitMeta, RetriesThenCommits) {
  sim::EventQueue events;
  meta::AsyncCommitConfig cfg;
  cfg.enabled = true;
  cfg.max_attempts = 3;
  meta::AsyncCommitter committer(events, cfg);
  int attempts = 0;
  bool committed = false;
  bool reconciled = false;
  committer.launch(
      "create x",
      [&](std::function<void(bool)> done) { done(++attempts >= 2); },
      [&] { committed = true; }, [&] { reconciled = true; });
  events.run();
  EXPECT_EQ(attempts, 2);
  EXPECT_TRUE(committed);
  EXPECT_FALSE(reconciled);
  EXPECT_EQ(committer.committed(), 1u);
  EXPECT_EQ(committer.inflight(), 0u);
}

TEST(AsyncCommitMeta, ExhaustedAttemptsReconcile) {
  sim::EventQueue events;
  meta::AsyncCommitConfig cfg;
  cfg.enabled = true;
  cfg.max_attempts = 3;
  meta::AsyncCommitter committer(events, cfg);
  int attempts = 0;
  bool committed = false;
  bool reconciled = false;
  committer.launch(
      "create y",
      [&](std::function<void(bool)> done) {
        ++attempts;
        done(false);
      },
      [&] { committed = true; }, [&] { reconciled = true; });
  events.run();
  EXPECT_EQ(attempts, 3);
  EXPECT_FALSE(committed);
  EXPECT_TRUE(reconciled);
  EXPECT_EQ(committer.failed(), 1u);
}

// --- sharded cluster end-to-end -----------------------------------------

TEST(MetaPlaneCluster, OpsSpreadAcrossShardsAndRoundTrip) {
  Cluster cluster(sharded_config(4));
  ASSERT_NE(cluster.meta_plane(), nullptr);
  Client& client = cluster.client_at(cluster.tree().hosts[2]);

  std::vector<std::string> names;
  for (int i = 0; i < 24; ++i) names.push_back(strfmt("d%02d/f%05d", i % 6, i));

  std::size_t created = 0;
  bool all_created = false;
  for (const std::string& name : names) {
    client.create(name, [&](Status status, const FileInfo& info) {
      ASSERT_EQ(status, Status::kOk);
      EXPECT_EQ(info.replicas.size(), 3u);
      if (++created == names.size()) all_created = true;
    });
  }
  run_until_done(cluster, all_created);

  // Every shard served some traffic, and each name landed on the shard the
  // map says owns it.
  meta::MetaPlane& plane = *cluster.meta_plane();
  for (std::size_t i = 0; i < plane.server_count(); ++i) {
    EXPECT_GT(plane.shard_server(i).ops_served(), 0u) << "shard " << i;
  }
  std::size_t total_files = 0;
  for (std::size_t i = 0; i < plane.server_count(); ++i) {
    total_files += plane.shard_server(i).file_count();
  }
  EXPECT_EQ(total_files, names.size());
  for (const std::string& name : names) {
    const std::size_t shard = plane.shard_map().shard_of_path(name);
    bool found = false;
    client.stat(name, [&](Status status, const FileInfo& info) {
      EXPECT_EQ(status, Status::kOk);
      EXPECT_EQ(info.name, name);
      found = true;
    });
    run_until_done(cluster, found);
    EXPECT_GT(plane.shard_server(shard).file_count(), 0u);
  }

  // Merged listing sees the union, sorted.
  bool listed = false;
  client.list([&](Status status, std::vector<std::string> listing) {
    EXPECT_EQ(status, Status::kOk);
    EXPECT_EQ(listing.size(), names.size());
    EXPECT_TRUE(std::is_sorted(listing.begin(), listing.end()));
    listed = true;
  });
  run_until_done(cluster, listed);
}

TEST(MetaPlaneCluster, SubtreePartitionKeepsDirectoryOnOneShard) {
  Cluster cluster(sharded_config(3, Partition::kSubtree));
  Client& client = cluster.client_at(cluster.tree().hosts[0]);
  std::size_t created = 0;
  bool all_created = false;
  for (int i = 0; i < 9; ++i) {
    client.create(strfmt("logs/f%04d", i), [&](Status status,
                                               const FileInfo&) {
      ASSERT_EQ(status, Status::kOk);
      if (++created == 9) all_created = true;
    });
  }
  run_until_done(cluster, all_created);
  meta::MetaPlane& plane = *cluster.meta_plane();
  const std::size_t owner = plane.shard_map().shard_of_path("logs/f0000");
  EXPECT_EQ(plane.shard_server(owner).file_count(), 9u);
  for (std::size_t i = 0; i < plane.server_count(); ++i) {
    if (i != owner) {
      EXPECT_EQ(plane.shard_server(i).file_count(), 0u);
    }
  }
}

TEST(MetaPlaneCluster, DeleteAndRecreateOnShardedPlane) {
  Cluster cluster(sharded_config(2));
  Client& client = cluster.client_at(cluster.tree().hosts[1]);
  Uuid first_uuid;
  bool cycled = false;
  client.create("dir/a", [&](Status status, const FileInfo& info) {
    ASSERT_EQ(status, Status::kOk);
    first_uuid = info.uuid;
    client.remove("dir/a", [&](Status rm_status) {
      ASSERT_EQ(rm_status, Status::kOk);
      client.create("dir/a", [&](Status cr_status, const FileInfo& fresh) {
        ASSERT_EQ(cr_status, Status::kOk);
        EXPECT_NE(fresh.uuid, first_uuid);
        cycled = true;
      });
    });
  });
  run_until_done(cluster, cycled);
}

TEST(MetaPlaneCluster, AsyncCommitAcksBeforeSyncAndStaysDurable) {
  // Same create on two clusters differing only in the commit mode: the
  // async ack must come strictly earlier (it skips the provisioning round
  // trips), and the file must still be fully readable afterwards.
  sim::SimTime acks[2];
  for (const bool async : {false, true}) {
    ClusterConfig cfg = sharded_config(2);
    cfg.meta_async = async;
    Cluster cluster(cfg);
    Client& client = cluster.client_at(cluster.tree().hosts[3]);
    bool done = false;
    client.create("d/file", [&](Status status, const FileInfo& info) {
      ASSERT_EQ(status, Status::kOk);
      EXPECT_EQ(info.replicas.size(), 3u);  // placement decided up front
      acks[async ? 1 : 0] = cluster.events().now();
      done = true;
    });
    run_until_done(cluster, done);
    cluster.run();  // drain the background commit

    // Append + read back through the committed replica set.
    bool verified = false;
    client.append("d/file", ExtentList(Extent::from_bytes("payload")),
                  [&](Status status, const AppendResp&) {
                    ASSERT_EQ(status, Status::kOk);
                    client.read_file("d/file", [&](Status rstatus,
                                                   ReadResult result) {
                      ASSERT_EQ(rstatus, Status::kOk);
                      EXPECT_EQ(result.data.size(), 7u);
                      verified = true;
                    });
                  });
    run_until_done(cluster, verified);
  }
  EXPECT_LT(acks[1], acks[0]);
}

TEST(MetaPlaneCluster, AsyncCommitReconcilesWhenProvisioningCannotFinish) {
  // Kill every dataserver replica target before the background commit can
  // provision: the committer must retry, then reconcile by erasing the
  // provisional mapping (loudly, via meta.async.failed).
  ClusterConfig cfg = sharded_config(2);
  cfg.meta_async = true;
  Cluster cluster(cfg);
  Client& client = cluster.client_at(cluster.tree().hosts[0]);

  // Crash every host's dataserver so no kCreateReplica can land.
  for (const net::NodeId host : cluster.tree().hosts) {
    fault::FaultEvent crash;
    crash.kind = fault::FaultKind::kDataserverCrash;
    crash.node = host;
    cluster.fault_injector().apply(crash);
  }
  bool acked = false;
  client.create("d/ghost", [&](Status status, const FileInfo&) {
    // The provisional ack still succeeds: that is the async contract.
    EXPECT_EQ(status, Status::kOk);
    acked = true;
  });
  run_until_done(cluster, acked);
  cluster.run();  // let retries exhaust and reconciliation run

  meta::MetaPlane& plane = *cluster.meta_plane();
  std::uint64_t failed = 0;
  std::size_t files = 0;
  for (std::size_t i = 0; i < plane.server_count(); ++i) {
    const meta::AsyncCommitter* committer =
        plane.shard_server(i).async_committer();
    ASSERT_NE(committer, nullptr);
    failed += committer->failed();
    files += plane.shard_server(i).file_count();
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(files, 0u);  // the provisional mapping was reconciled away
}

// --- shard failover (satellite: kill one shard mid-workload) ------------

TEST(MetaPlaneCluster, ShardFailoverKeepsSurvivorsServingAndRecoversKeys) {
  ClusterConfig cfg = sharded_config(3);
  cfg.heartbeat_interval = sim::SimTime::from_millis(50.0);
  // No client-side metadata cache: every stat must reach the plane, so the
  // test exercises the shard servers and not a warm cache.
  cfg.client.meta_cache_ttl = sim::SimTime{};
  Cluster cluster(cfg);
  meta::MetaPlane& plane = *cluster.meta_plane();
  Client& client = cluster.client_at(cluster.tree().hosts[4]);

  // Create files until every shard owns at least one, and append a body so
  // the dataservers hold recoverable state.
  std::vector<std::string> names;
  for (int i = 0; i < 18; ++i) names.push_back(strfmt("d%02d/f%05d", i % 9, i));
  std::size_t created = 0;
  bool seeded = false;
  for (const std::string& name : names) {
    client.create(name, [&](Status status, const FileInfo&) {
      ASSERT_EQ(status, Status::kOk);
      client.append(name, ExtentList(Extent::from_bytes("0123456789")),
                    [&](Status astatus, const AppendResp&) {
                      ASSERT_EQ(astatus, Status::kOk);
                      if (++created == names.size()) seeded = true;
                    });
    });
  }
  run_until_done(cluster, seeded);
  for (std::size_t i = 0; i < plane.server_count(); ++i) {
    ASSERT_GT(plane.shard_server(i).file_count(), 0u) << "shard " << i;
  }

  // Victim: the shard owning names[0]. Partition the names by owner now,
  // while the map still has its pre-failover assignment.
  const std::size_t victim = plane.shard_map().shard_of_path(names[0]);
  std::vector<std::string> victim_names, survivor_names;
  for (const std::string& name : names) {
    (plane.shard_map().shard_of_path(name) == victim ? victim_names
                                                     : survivor_names)
        .push_back(name);
  }
  ASSERT_FALSE(victim_names.empty());
  ASSERT_FALSE(survivor_names.empty());
  const net::NodeId old_owner_node =
      plane.shard_map().owner_of_path(victim_names[0]);
  plane.crash_server(victim);

  // Survivor shards keep serving immediately (no failover needed).
  bool survivor_ok = false;
  client.stat(survivor_names[0], [&](Status status, const FileInfo&) {
    EXPECT_EQ(status, Status::kOk);
    survivor_ok = true;
  });
  run_until_done(cluster, survivor_ok);

  // Let the heartbeat detect the dead server, reassign its shards, and let
  // the adopting server finish rescanning the dataservers.
  while (plane.adoptions_completed() == 0 && !cluster.events().empty() &&
         cluster.events().now() < sim::SimTime::from_seconds(300.0)) {
    cluster.events().step();
  }
  ASSERT_GE(plane.adoptions_completed(), 1u) << "adoption never completed";

  // A victim-owned key: the client's router still holds the pre-failover
  // map, gets kUnavailable from the dead owner, refetches, and lands on the
  // adopting shard.
  bool recovered = false;
  client.stat(victim_names[0], [&](Status status, const FileInfo& info) {
    EXPECT_EQ(status, Status::kOk);
    EXPECT_EQ(info.name, victim_names[0]);
    recovered = true;
  });
  run_until_done(cluster, recovered);
  EXPECT_GE(plane.failovers(), 1u);
  EXPECT_NE(plane.shard_map().owner_of_path(victim_names[0]),
            old_owner_node);
  EXPECT_GT(plane.shard_map().epoch, 1u);

  // Every victim-owned file is reachable again, and writes to adopted keys
  // work (the adopting shard is a full owner, not a read-only cache).
  std::size_t checked = 0;
  bool all_recovered = false;
  for (const std::string& name : victim_names) {
    client.stat(name, [&](Status status, const FileInfo&) {
      EXPECT_EQ(status, Status::kOk) << "lost " << name;
      if (++checked == victim_names.size()) all_recovered = true;
    });
  }
  run_until_done(cluster, all_recovered);
  bool appended = false;
  client.append(victim_names[0], ExtentList(Extent::from_bytes("more")),
                [&](Status status, const AppendResp&) {
                  EXPECT_EQ(status, Status::kOk);
                  appended = true;
                });
  run_until_done(cluster, appended);
}

// --- dataserver regression ----------------------------------------------

TEST(MetaPlaneCluster, DeleteWithQueuedAppendsStillAnswersEveryClient) {
  // A delete racing queued appends used to erase the dataserver's pending
  // queue without replying, stranding the appending clients forever.
  Cluster cluster(sharded_config(2));
  Client& writer_a = cluster.client_at(cluster.tree().hosts[0]);
  Client& writer_b = cluster.client_at(cluster.tree().hosts[1]);
  Client& remover = cluster.client_at(cluster.tree().hosts[2]);

  int outcomes = 0;
  bool all_done = false;
  const auto track = [&](Status) {
    if (++outcomes == 3) all_done = true;
  };
  writer_a.create("d/contended", [&](Status status, const FileInfo&) {
    ASSERT_EQ(status, Status::kOk);
    // Two bulk appends pile into the primary's per-file queue; the delete
    // lands while they are queued/in flight.
    writer_a.append("d/contended",
                    ExtentList(Extent::pattern(1, 2'000'000)),
                    [&](Status s, const AppendResp&) { track(s); });
    writer_b.append("d/contended",
                    ExtentList(Extent::pattern(2, 2'000'000)),
                    [&](Status s, const AppendResp&) { track(s); });
    remover.remove("d/contended", [&](Status s) { track(s); });
  });
  // The only assertion that matters: every callback fired.
  run_until_done(cluster, all_done);
}

}  // namespace
}  // namespace mayflower::fs
