// Adaptive budgeted telemetry (DESIGN.md §14): classification hysteresis,
// per-tick budget enforcement, mouse staleness bounds, and the identity
// contract — an unconstrained budget must not move a single decision or
// applied sample relative to legacy full-rate polling.
#include "flowserver/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flowserver/flowserver.hpp"
#include "net/tree.hpp"

namespace mayflower::flowserver {
namespace {

using Verdict = AdaptiveTelemetry::Verdict;
using FlowClass = AdaptiveTelemetry::FlowClass;

constexpr double kCap = 125e6;  // 1 Gbps edge uplink

TelemetryConfig unit_config() {
  TelemetryConfig cfg;
  cfg.mouse_period = 4;
  cfg.elephant_fraction = 0.10;
  cfg.mouse_fraction = 0.05;
  cfg.demote_after = 2;
  return cfg;
}

TEST(AdaptiveTelemetryUnit, NewFlowsStartAsElephants) {
  AdaptiveTelemetry tel(unit_config());
  tel.begin_tick(0);
  EXPECT_EQ(tel.admit(7, 1e6, kCap), Verdict::kApply);
  // One slow sample is not enough to demote (demote_after = 2), and a new
  // flow must be polled at full rate until proven slow.
  EXPECT_EQ(tel.flow_class(7), FlowClass::kElephant);
  EXPECT_EQ(tel.elephants(), 1u);
}

TEST(AdaptiveTelemetryUnit, DemotionNeedsConsecutiveSlowSamples) {
  AdaptiveTelemetry tel(unit_config());
  tel.begin_tick(0);
  tel.admit(8, 1e6, kCap);  // slow sample 1
  tel.begin_tick(1);
  // A fast sample resets the streak...
  tel.admit(8, 50e6, kCap);
  tel.begin_tick(2);
  tel.admit(8, 1e6, kCap);  // slow sample 1 (again)
  EXPECT_EQ(tel.flow_class(8), FlowClass::kElephant);
  tel.begin_tick(3);
  tel.admit(8, 1e6, kCap);  // slow sample 2: demoted
  EXPECT_EQ(tel.flow_class(8), FlowClass::kMouse);
  EXPECT_EQ(tel.demotions(), 1u);
  EXPECT_EQ(tel.mice(), 1u);
}

TEST(AdaptiveTelemetryUnit, HysteresisBandHoldsTheCurrentClass) {
  AdaptiveTelemetry tel(unit_config());
  // Demote cookie 8 (8 % 4 == 0, so it is due again the very next cycle).
  tel.begin_tick(0);
  tel.admit(8, 1e6, kCap);
  tel.begin_tick(1);
  tel.admit(8, 1e6, kCap);
  ASSERT_EQ(tel.flow_class(8), FlowClass::kMouse);
  // 7% of the uplink is between mouse_fraction (5%) and elephant_fraction
  // (10%): a mouse stays a mouse there...
  tel.begin_tick(2);
  ASSERT_EQ(tel.admit(8, 0.07 * kCap, kCap), Verdict::kApply);
  EXPECT_EQ(tel.flow_class(8), FlowClass::kMouse);
  // ...and an elephant hovering there stays an elephant, streak cleared.
  tel.begin_tick(3);
  tel.admit(21, 1e6, kCap);  // elephant, one slow sample banked
  tel.begin_tick(4);
  tel.admit(21, 0.07 * kCap, kCap);  // band: streak resets
  tel.begin_tick(5);
  tel.admit(21, 1e6, kCap);  // slow sample 1 again — still elephant
  EXPECT_EQ(tel.flow_class(21), FlowClass::kElephant);
}

TEST(AdaptiveTelemetryUnit, PromotionIsImmediate) {
  AdaptiveTelemetry tel(unit_config());
  tel.begin_tick(0);
  tel.admit(8, 1e6, kCap);
  tel.begin_tick(1);
  tel.admit(8, 1e6, kCap);
  ASSERT_EQ(tel.flow_class(8), FlowClass::kMouse);
  tel.begin_tick(2);
  tel.admit(8, 0.5 * kCap, kCap);  // running hot: back to full-rate polling
  EXPECT_EQ(tel.flow_class(8), FlowClass::kElephant);
  EXPECT_EQ(tel.promotions(), 1u);
}

TEST(AdaptiveTelemetryUnit, MiceAreDeferredUntilTheirPeriodElapses) {
  AdaptiveTelemetry tel(unit_config());
  tel.begin_tick(0);
  tel.admit(8, 1e6, kCap);
  tel.begin_tick(1);
  tel.admit(8, 1e6, kCap);  // demoted at cycle 1; phase 8 % 4 = 0 -> due at 2
  tel.begin_tick(2);
  ASSERT_EQ(tel.admit(8, 1e6, kCap), Verdict::kApply);  // applied -> due at 6
  for (std::uint64_t c = 3; c < 6; ++c) {
    tel.begin_tick(c);
    EXPECT_EQ(tel.admit(8, 1e6, kCap), Verdict::kDeferMouse) << "cycle " << c;
  }
  tel.begin_tick(6);
  EXPECT_EQ(tel.admit(8, 1e6, kCap), Verdict::kApply);
  EXPECT_EQ(tel.deferred_mouse(), 3u);
}

TEST(AdaptiveTelemetryUnit, BudgetCapsAppliedSamplesPerTick) {
  TelemetryConfig cfg = unit_config();
  cfg.mouse_period = 1;
  cfg.samples_budget = 2;
  AdaptiveTelemetry tel(cfg);
  tel.begin_tick(0);
  EXPECT_EQ(tel.admit(1, 50e6, kCap), Verdict::kApply);
  EXPECT_EQ(tel.admit(2, 50e6, kCap), Verdict::kApply);
  EXPECT_EQ(tel.admit(3, 50e6, kCap), Verdict::kDeferBudget);
  EXPECT_EQ(tel.admit(4, 50e6, kCap), Verdict::kDeferBudget);
  EXPECT_EQ(tel.applied_this_tick(), 2u);
  // Next tick the budget resets and the deferred flows are still due.
  tel.begin_tick(1);
  EXPECT_EQ(tel.admit(3, 50e6, kCap), Verdict::kApply);
  EXPECT_EQ(tel.admit(4, 50e6, kCap), Verdict::kApply);
  EXPECT_EQ(tel.deferred_budget(), 2u);
}

TEST(AdaptiveTelemetryUnit, ForgetDropsClassificationState) {
  AdaptiveTelemetry tel(unit_config());
  tel.begin_tick(0);
  tel.admit(1, 50e6, kCap);
  tel.admit(2, 1e6, kCap);
  EXPECT_EQ(tel.tracked(), 2u);
  tel.forget(1);
  EXPECT_EQ(tel.tracked(), 1u);
  EXPECT_EQ(tel.elephants(), 1u);
  tel.forget(1);  // double-forget is harmless
  EXPECT_EQ(tel.tracked(), 1u);
}

TEST(AdaptiveTelemetryUnit, DefaultConfigIsInactive) {
  EXPECT_FALSE(AdaptiveTelemetry(TelemetryConfig{}).active());
  TelemetryConfig budget_only;
  budget_only.samples_budget = 10;
  EXPECT_TRUE(AdaptiveTelemetry(budget_only).active());
  TelemetryConfig period_only;
  period_only.mouse_period = 4;
  EXPECT_TRUE(AdaptiveTelemetry(period_only).active());
}

// --- integration against the Flowserver's poll sweep ----------------------

class TelemetryTest : public ::testing::Test {
 protected:
  TelemetryTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})),
        fabric_(events_, tree_.topo) {}

  // Registers `count` reads of `replica` from distinct clients and starts
  // the flows. With many readers the replica's uplink share per flow drops
  // below the mouse threshold; a lone reader stays an elephant.
  std::vector<sdn::Cookie> start_reads(Flowserver& server,
                                       net::NodeId replica,
                                       std::size_t first_client,
                                       std::size_t count, double bytes) {
    std::vector<sdn::Cookie> cookies;
    for (std::size_t i = 0; i < count; ++i) {
      const net::NodeId client = tree_.hosts[first_client + i];
      const auto plan = server.select_for_read(client, {replica}, bytes);
      for (const auto& a : plan) {
        cookies.push_back(a.cookie);
        fabric_.start_flow(a.cookie, a.path, a.bytes,
                           [&server](sdn::Cookie c, sim::SimTime) {
                             server.flow_dropped(c);
                           });
      }
    }
    return cookies;
  }

  sim::EventQueue events_;
  net::ThreeTier tree_;
  sdn::SdnFabric fabric_;
};

TEST_F(TelemetryTest, SweepNeverAppliesMoreThanBudgetPerTick) {
  FlowserverConfig cfg;
  cfg.telemetry.samples_budget = 5;
  cfg.telemetry.mouse_period = 1;
  Flowserver server(fabric_, cfg);
  // 24 long-lived reads of host 0: every poll offers 24 samples.
  start_reads(server, tree_.hosts[0], 1, 24, 1e10);
  server.start();
  std::uint64_t last = server.stats_samples();
  for (int tick = 0; tick < 12; ++tick) {
    events_.run_until(sim::SimTime::from_seconds(1.0 * (tick + 1) + 0.5));
    const std::uint64_t applied = server.stats_samples() - last;
    last = server.stats_samples();
    EXPECT_LE(applied, 5u) << "tick " << tick;
  }
  EXPECT_GT(server.telemetry().deferred_budget(), 0u);
  server.stop();
}

TEST_F(TelemetryTest, MouseStalenessStaysWithinItsPeriod) {
  FlowserverConfig cfg;
  cfg.telemetry.mouse_period = 4;
  Flowserver server(fabric_, cfg);
  // 24 readers of host 0 share its 125 MB/s uplink: ~5.2 MB/s each, under
  // the 5% mouse threshold (6.25 MB/s). A lone reader of host 28 holds the
  // full uplink and stays an elephant.
  const auto mice = start_reads(server, tree_.hosts[0], 1, 24, 1e10);
  const auto elephants = start_reads(server, tree_.hosts[28], 30, 1, 1e10);
  server.start();
  events_.run_until(sim::SimTime::from_seconds(20.25));

  const sim::SimTime now = events_.now();
  const double period_sec =
      4.0 * server.config().poll_interval.seconds();
  for (const sdn::Cookie c : mice) {
    const TrackedFlow* f = server.table().find(c);
    ASSERT_NE(f, nullptr);
    // The freeze contract's staleness bound: a mouse's belief bookkeeping is
    // at most mouse_period poll intervals old.
    EXPECT_LE((now - f->last_poll_time).seconds(), period_sec + 1e-9);
  }
  // The elephant was applied on the most recent cycle (t=20).
  const TrackedFlow* e = server.table().find(elephants.at(0));
  ASSERT_NE(e, nullptr);
  EXPECT_LE((now - e->last_poll_time).seconds(), 1.0 + 1e-9);
  EXPECT_EQ(server.telemetry().flow_class(elephants.at(0)),
            FlowClass::kElephant);
  // The sweep really did defer work: far fewer samples applied than the
  // ~24 x 20 a full-rate sweep would have applied.
  EXPECT_GT(server.telemetry().deferred_mouse(), 0u);
  EXPECT_LT(server.stats_samples(), 25u * 20u / 2u);
  server.stop();
}

class TelemetryIdentityTest : public ::testing::Test {
 protected:
  TelemetryIdentityTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})) {}

  // A seeded read/poll/complete script; returns its decision records plus a
  // final accounting line. Every config below must produce the same bytes.
  std::vector<std::string> run_script(const FlowserverConfig& base) {
    sim::EventQueue events;
    sdn::SdnFabric fabric(events, tree_.topo);
    FlowserverConfig cfg = base;
    cfg.poll_interval = sim::SimTime::from_seconds(1.0);
    Flowserver server(fabric, cfg);
    server.start();
    Rng rng(0xFEEDULL);
    std::vector<std::string> out;
    for (int i = 0; i < 60; ++i) {
      const net::NodeId client =
          tree_.hosts[rng.next_below(tree_.hosts.size())];
      std::vector<net::NodeId> replicas = {
          tree_.hosts[rng.next_below(tree_.hosts.size())],
          tree_.hosts[rng.next_below(tree_.hosts.size())],
          tree_.hosts[rng.next_below(tree_.hosts.size())]};
      const auto plan = server.select_for_read(client, replicas, 96e6);
      for (const auto& a : plan) {
        char line[96];
        std::snprintf(line, sizeof(line), "%llu %u %zu %.9g %.9g",
                      static_cast<unsigned long long>(a.cookie), a.replica,
                      a.path.links.size(), a.bytes, a.est_bw_bps);
        out.emplace_back(line);
        fabric.start_flow(a.cookie, a.path, a.bytes,
                          [&server](sdn::Cookie c, sim::SimTime) {
                            server.flow_dropped(c);
                          });
      }
      events.run_until(events.now() + sim::SimTime::from_seconds(0.65));
    }
    events.run_until(events.now() + sim::SimTime::from_seconds(30.0));
    server.stop();
    char tail[96];
    std::snprintf(tail, sizeof(tail), "samples %llu selections %llu",
                  static_cast<unsigned long long>(server.stats_samples()),
                  static_cast<unsigned long long>(server.selections()));
    out.emplace_back(tail);
    return out;
  }

  net::ThreeTier tree_;
};

// The tentpole's identity contract: with an unconstrained budget (huge cap,
// mouse period 1) the adaptive layer classifies but defers nothing, so the
// decision records AND the applied-sample count must be byte-identical to
// legacy full polling — even though the budgeted sweep rotates its start.
TEST_F(TelemetryIdentityTest, UnconstrainedBudgetMatchesLegacyByteForByte) {
  const std::vector<std::string> legacy = run_script(FlowserverConfig{});
  FlowserverConfig adaptive;
  adaptive.telemetry.samples_budget = 1000000000;
  adaptive.telemetry.mouse_period = 1;
  const std::vector<std::string> unconstrained = run_script(adaptive);
  ASSERT_EQ(legacy.size(), unconstrained.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], unconstrained[i]) << "record " << i;
  }
}

// Same contract under a grouped (staggered) sweep.
TEST_F(TelemetryIdentityTest, UnconstrainedBudgetMatchesLegacyWithPollGroups) {
  FlowserverConfig legacy_cfg;
  legacy_cfg.poll_groups = 4;
  const std::vector<std::string> legacy = run_script(legacy_cfg);
  FlowserverConfig adaptive = legacy_cfg;
  adaptive.telemetry.samples_budget = 1000000000;
  adaptive.telemetry.mouse_period = 1;
  const std::vector<std::string> unconstrained = run_script(adaptive);
  EXPECT_EQ(legacy, unconstrained);
}

// A constrained run is still deterministic: same seed, same bytes.
TEST_F(TelemetryIdentityTest, ConstrainedBudgetIsDeterministic) {
  FlowserverConfig cfg;
  cfg.telemetry.samples_budget = 8;
  cfg.telemetry.mouse_period = 4;
  const std::vector<std::string> a = run_script(cfg);
  const std::vector<std::string> b = run_script(cfg);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mayflower::flowserver
