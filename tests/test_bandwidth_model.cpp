#include "flowserver/bandwidth_model.hpp"

#include <gtest/gtest.h>

#include "figure2_fixture.hpp"

namespace mayflower::flowserver {
namespace {

using testing::Figure2;

TEST(BandwidthModel, NewFlowShareOnEmptyPathIsLocalRate) {
  Figure2 fig;
  BandwidthModel model;
  model.set_zero_hop_bps(42.0);
  net::Path p;
  p.nodes = {fig.S};
  EXPECT_DOUBLE_EQ(model.new_flow_share(fig.view(), p), 42.0);
}

TEST(BandwidthModel, NewFlowShareIsBottleneckShare) {
  Figure2 fig;
  BandwidthModel model;
  const net::NetworkView view = fig.view();
  // First path: S->Es free (10), Es->A water-fills to 3, A->Ed to 5,
  // Ed->D free (10). Bottleneck: 3.
  EXPECT_NEAR(model.new_flow_share(view, fig.path_via(fig.A)), 3.0, 1e-9);
  // Second path is also 3 (Es->B bottleneck).
  EXPECT_NEAR(model.new_flow_share(view, fig.path_via(fig.B)), 3.0, 1e-9);
}

TEST(BandwidthModel, NewFlowShareOnIdlePathIsLinkCapacity) {
  Figure2 fig;
  FlowStateTable empty;
  BandwidthModel model;
  const net::NetworkView view = make_decision_view(fig.topo, empty);
  EXPECT_NEAR(model.new_flow_share(view, fig.path_via(fig.A)), 10.0, 1e-9);
}

TEST(BandwidthModel, ReducedShareMatchesPaperNumbers) {
  Figure2 fig;
  BandwidthModel model;
  const net::NetworkView view = fig.view();
  const net::Path p1 = fig.path_via(fig.A);

  // Flow with share 6 on Es->A drops to 3 when the new flow (demand 3) joins.
  const net::NetworkView::Flow* f6 = view.find(fig.flow6);
  ASSERT_NE(f6, nullptr);
  EXPECT_NEAR(model.reduced_share(view, *f6, p1, 3.0), 3.0, 1e-9);

  // Flow with share 10 on A->Ed drops to 7.
  const net::NetworkView::Flow* f10 = view.find(fig.flow10);
  ASSERT_NE(f10, nullptr);
  EXPECT_NEAR(model.reduced_share(view, *f10, p1, 3.0), 7.0, 1e-9);
}

TEST(BandwidthModel, ReducedShareSecondPath) {
  Figure2 fig;
  BandwidthModel model;
  const net::NetworkView view = fig.view();
  const net::Path p2 = fig.path_via(fig.B);
  EXPECT_NEAR(model.reduced_share(view, *view.find(fig.flow4), p2, 3.0), 3.0,
              1e-9);
  EXPECT_NEAR(model.reduced_share(view, *view.find(fig.flow8), p2, 3.0), 7.0,
              1e-9);
}

TEST(BandwidthModel, FlowOffThePathIsUntouched) {
  Figure2 fig;
  BandwidthModel model;
  const net::NetworkView view = fig.view();
  // flow8 lives on the second path; adding load to the first path cannot
  // reduce it under the paper's simplified (path-local) model.
  const net::Path p1 = fig.path_via(fig.A);
  EXPECT_DOUBLE_EQ(model.reduced_share(view, *view.find(fig.flow8), p1, 3.0),
                   8.0);
}

TEST(BandwidthModel, ReducedShareNeverExceedsCurrent) {
  // Even when the link has spare capacity, the model never *raises* an
  // existing flow (it only answers "how much would this drop").
  Figure2 fig(/*cap_es_a=*/20.0);
  BandwidthModel model;
  const net::NetworkView view = fig.view();
  const net::Path p1 = fig.path_via(fig.A);
  const net::NetworkView::Flow* f6 = view.find(fig.flow6);
  // Es->A at 20: demands {2,2,6} + new 5 fit; f6 keeps 6.
  EXPECT_NEAR(model.reduced_share(view, *f6, p1, 5.0), 6.0, 1e-9);
}

TEST(BandwidthModel, WiderLinkRaisesNewFlowShare) {
  Figure2 fig(/*cap_es_a=*/20.0);
  BandwidthModel model;
  // Es->A now yields 10 to an elastic newcomer; A->Ed still limits to 5.
  EXPECT_NEAR(model.new_flow_share(fig.view(), fig.path_via(fig.A)), 5.0,
              1e-9);
}

}  // namespace
}  // namespace mayflower::flowserver
